// Package client is the typed Go client of the dualsimd serving API
// (internal/server, cmd/dualsimd): queries with buffered or streamed
// (NDJSON) results, batches, live deltas, compaction, snapshot/health
// introspection — with bounded retries that honour the server's
// Retry-After shedding hints.
//
// Consistency: every response is epoch-tagged. A streamed result's
// header and stats trailer carry the same epoch, and Stream.Epoch
// exposes it, so callers interleaving reads with Apply can pin their
// view the same way in-process sessions do.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"dualsim"
	"dualsim/internal/persist"
	"dualsim/internal/wire"
)

// Triple is the wire form of one RDF triple (re-exported so callers
// need not import internal packages).
type Triple = wire.Triple

// FromTriple converts an engine triple to wire form.
func FromTriple(t dualsim.Triple) Triple { return wire.FromTriple(t) }

// QueryResponse, BatchResponse, ApplyResponse, SnapshotResponse and
// HealthResponse mirror the server's JSON bodies.
type (
	QueryResponse      = wire.QueryResponse
	BatchItem          = wire.BatchItem
	BatchResponse      = wire.BatchResponse
	ApplyResponse      = wire.ApplyResponse
	CheckpointResponse = wire.CheckpointResponse
	SnapshotResponse   = wire.SnapshotResponse
	HealthResponse     = wire.HealthResponse
	ExportResponse     = wire.ExportResponse
	WALEvent           = wire.WALEvent
	ExplainResponse    = wire.ExplainResponse
	SlowLogResponse    = wire.SlowLogResponse
	StatementsResponse = wire.StatementsResponse
)

// APIError is a non-2xx server reply.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error string.
	Message string
	// RetryAfter is the server's backoff hint (0 when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("dualsimd: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// IsOverloaded reports whether err is the server shedding load (429);
// the request was never admitted, so retrying after the hint is safe
// for every endpoint, writes included.
func IsOverloaded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}

// Option configures a Client.
type Option func(*Client) error

// WithHTTPClient substitutes the transport (default http.DefaultClient).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) error {
		if hc == nil {
			return fmt.Errorf("client: nil http client")
		}
		c.hc = hc
		return nil
	}
}

// WithRetries bounds how many times a retryable failure (429, 503, or a
// transport error on an idempotent call) is retried (default 2; 0
// disables).
func WithRetries(n int) Option {
	return func(c *Client) error {
		if n < 0 {
			return fmt.Errorf("client: negative retry count %d", n)
		}
		c.retries = n
		return nil
	}
}

// WithRetryBackoff sets the base backoff between retries when the
// server sent no Retry-After hint (default 100ms, doubled per attempt
// with jitter).
func WithRetryBackoff(d time.Duration) Option {
	return func(c *Client) error {
		if d <= 0 {
			return fmt.Errorf("client: retry backoff must be positive, got %v", d)
		}
		c.backoff = d
		return nil
	}
}

// Client talks to one dualsimd server. Safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// New returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8321").
func New(baseURL string, opts ...Option) (*Client, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("client: empty base URL")
	}
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      http.DefaultClient,
		retries: 2,
		backoff: 100 * time.Millisecond,
	}
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// BaseURL returns the normalized server URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

// Query executes one query and buffers the whole result. timeoutMs > 0
// asks the server to bound the execution; pair it with a ctx deadline
// for end-to-end bounds.
func (c *Client) Query(ctx context.Context, src string, opts ...QueryOpt) (*QueryResponse, error) {
	o := collect(opts)
	req := wire.QueryRequest{Query: src, TimeoutMs: o.timeoutMs, Limit: o.limit, Trace: o.trace}
	var out QueryResponse
	if err := c.doJSONHdr(ctx, "POST", "/v1/query", &req, &out, true, o.header()); err != nil {
		return nil, err
	}
	return &out, nil
}

// Explain asks the server for the compiled plan of src without
// executing it (mode "plan"), or with an instrumented execution behind
// it (mode "analyze") — the serving form of EXPLAIN / EXPLAIN ANALYZE.
func (c *Client) Explain(ctx context.Context, src, mode string, opts ...QueryOpt) (*ExplainResponse, error) {
	o := collect(opts)
	req := wire.QueryRequest{Query: src, TimeoutMs: o.timeoutMs, Explain: mode}
	var out ExplainResponse
	if err := c.doJSONHdr(ctx, "POST", "/v1/query", &req, &out, true, o.header()); err != nil {
		return nil, err
	}
	return &out, nil
}

// SlowQueries fetches the server's slow-query ring (GET /v1/debug/slow),
// newest first. A server without -slowlog answers with an empty ring and
// threshold 0.
func (c *Client) SlowQueries(ctx context.Context) (*SlowLogResponse, error) {
	var out SlowLogResponse
	if err := c.doJSON(ctx, "GET", "/v1/debug/slow", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Statements fetches the server's workload statistics table
// (GET /v1/debug/statements): per-normalized-statement aggregates,
// ordered by total execution time descending. Against a router, the
// rows are the fingerprint-keyed merge across every shard.
func (c *Client) Statements(ctx context.Context) (*StatementsResponse, error) {
	return c.statements(ctx, false)
}

// StatementsReset fetches the workload statistics table and then resets
// it — the returned snapshot is the last view of the cleared counters.
func (c *Client) StatementsReset(ctx context.Context) (*StatementsResponse, error) {
	return c.statements(ctx, true)
}

func (c *Client) statements(ctx context.Context, reset bool) (*StatementsResponse, error) {
	path := "/v1/debug/statements"
	if reset {
		path += "?reset=1"
	}
	var out StatementsResponse
	if err := c.doJSON(ctx, "GET", path, nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// reqOpts is the resolved form of a QueryOpt list.
type reqOpts struct {
	timeoutMs   int64
	limit       int
	failFast    bool
	trace       bool
	traceparent string
}

// header renders the option set's extra request headers (nil when none).
func (o reqOpts) header() http.Header {
	if o.traceparent == "" {
		return nil
	}
	return http.Header{"Traceparent": []string{o.traceparent}}
}

func collect(opts []QueryOpt) reqOpts {
	var o reqOpts
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// QueryOpt tweaks one query (or a batch).
type QueryOpt func(*reqOpts)

// Timeout asks the server to abort the execution after d (rounded to
// milliseconds, minimum 1ms).
func Timeout(d time.Duration) QueryOpt {
	return func(r *reqOpts) {
		ms := d.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		r.timeoutMs = ms
	}
}

// Limit truncates the response to n rows (per batch member on Batch).
func Limit(n int) QueryOpt {
	return func(r *reqOpts) { r.limit = n }
}

// FailFast makes a Batch abort on its first failing query: the
// remaining members are cancelled and report the cancellation in their
// error slots. Ignored by Query/QueryStream.
func FailFast() QueryOpt {
	return func(r *reqOpts) { r.failFast = true }
}

// Trace asks the server for the request's span tree, returned in the
// response stats (ExecStats.Trace) alongside the X-Dualsim-Trace
// response header.
func Trace() QueryOpt {
	return func(r *reqOpts) { r.trace = true }
}

// Traceparent propagates an existing W3C trace context: the header is
// sent verbatim, the server adopts its trace ID and returns the span
// tree (a valid traceparent implies Trace).
func Traceparent(tp string) QueryOpt {
	return func(r *reqOpts) { r.traceparent = tp }
}

// Batch executes queries concurrently on the server's batch pool and
// returns positional results, each with its own error slot — a failing
// query does not fail the batch (unless FailFast is given, which
// cancels the rest after the first failure).
func (c *Client) Batch(ctx context.Context, srcs []string, opts ...QueryOpt) (*BatchResponse, error) {
	o := collect(opts)
	req := wire.BatchRequest{Queries: srcs, TimeoutMs: o.timeoutMs, Limit: o.limit, FailFast: o.failFast, Trace: o.trace}
	var out BatchResponse
	if err := c.doJSONHdr(ctx, "POST", "/v1/batch", &req, &out, true, o.header()); err != nil {
		return nil, err
	}
	return &out, nil
}

// Apply submits a live delta: dels before adds, atomic, publishing the
// next epoch. Not retried on transport errors (the outcome would be
// ambiguous); 429 shedding is retried — the server never admitted the
// request.
func (c *Client) Apply(ctx context.Context, adds, dels []Triple) (*ApplyResponse, error) {
	req := wire.ApplyRequest{Adds: adds, Dels: dels}
	var out ApplyResponse
	if err := c.doJSON(ctx, "POST", "/v1/apply", &req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// ApplyDelta is Apply for an engine-level Delta value.
func (c *Client) ApplyDelta(ctx context.Context, d dualsim.Delta) (*ApplyResponse, error) {
	adds := make([]Triple, len(d.Adds))
	for i, t := range d.Adds {
		adds[i] = wire.FromTriple(t)
	}
	dels := make([]Triple, len(d.Dels))
	for i, t := range d.Dels {
		dels[i] = wire.FromTriple(t)
	}
	return c.Apply(ctx, adds, dels)
}

// Compact asks the server to consolidate the live-update overlay.
func (c *Client) Compact(ctx context.Context) (*ApplyResponse, error) {
	var out ApplyResponse
	if err := c.doJSON(ctx, "POST", "/v1/compact", nil, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Checkpoint asks a durable server (dualsimd -data) to roll its WAL
// into a fresh on-disk snapshot. A server without a data dir answers
// 409.
func (c *Client) Checkpoint(ctx context.Context) (*CheckpointResponse, error) {
	var out CheckpointResponse
	if err := c.doJSON(ctx, "POST", "/v1/checkpoint", nil, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Snapshot reports the server's current epoch and store shape.
func (c *Client) Snapshot(ctx context.Context) (*SnapshotResponse, error) {
	var out SnapshotResponse
	if err := c.doJSON(ctx, "GET", "/v1/snapshot", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes /healthz. A draining server returns an *APIError with
// StatusCode 503.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.doJSON(ctx, "GET", "/healthz", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready probes /readyz — the routing decision, as opposed to Health's
// liveness. A draining, bootstrapping or lagging server returns an
// *APIError with StatusCode 503 immediately (no retries: not-ready IS
// the answer a prober needs).
func (c *Client) Ready(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.doJSON(ctx, "GET", "/readyz", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Export fetches every triple of the named predicates at one pinned
// epoch (GET /v1/export) — the cluster router's cross-shard gather path.
func (c *Client) Export(ctx context.Context, preds []string) (*ExportResponse, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("client: export needs at least one predicate")
	}
	q := url.Values{"pred": preds}
	var out ExportResponse
	if err := c.doJSON(ctx, "GET", "/v1/export?"+q.Encode(), nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// BootstrapSnapshot downloads the server's streamed bootstrap snapshot
// (GET /v1/wal/snapshot) and decodes it: the store state and the epoch
// it represents. A replica opens a session at that epoch and tails the
// WAL from there.
func (c *Client) BootstrapSnapshot(ctx context.Context) (*dualsim.Store, uint64, error) {
	resp, err := c.do(ctx, "GET", "/v1/wal/snapshot", nil, "", true)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return persist.DecodeSnapshot(blob)
}

// ErrWALGap reports a 410 from GET /v1/wal: the records after the
// requested epoch were checkpointed away, so tailing cannot continue —
// the replica must re-bootstrap from BootstrapSnapshot.
var ErrWALGap = errors.New("client: requested WAL epochs were checkpointed away; re-bootstrap from a snapshot")

// TailWAL opens the replication tail: every WAL record with epoch >
// fromEpoch as a WALStream. wait > 0 asks the server to long-poll an
// empty tail for that long before answering, so an idle primary does
// not force tight client-side polling. Returns ErrWALGap (wrapped) when
// the range is gone, and an *APIError with StatusCode 409 when the
// server has no WAL at all (not durable).
func (c *Client) TailWAL(ctx context.Context, fromEpoch uint64, wait time.Duration) (*WALStream, error) {
	path := fmt.Sprintf("/v1/wal?fromEpoch=%d", fromEpoch)
	if wait > 0 {
		path += fmt.Sprintf("&waitMs=%d", wait.Milliseconds())
	}
	resp, err := c.do(ctx, "GET", path, nil, "", true)
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.StatusCode == http.StatusGone {
			return nil, fmt.Errorf("%w: %s", ErrWALGap, ae.Message)
		}
		return nil, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 256<<20)
	ws := &WALStream{body: resp.Body, sc: sc}
	if !sc.Scan() {
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("client: empty WAL stream")
	}
	var header wire.WALEvent
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil || header.Kind != wire.WALHeader {
		resp.Body.Close()
		return nil, fmt.Errorf("client: WAL stream did not start with a header (%v)", err)
	}
	ws.primaryEpoch, ws.ckptEpoch = header.Epoch, header.CheckpointEpoch
	return ws, nil
}

// WALStream is an in-flight replication tail. Iterate with Next until
// false, then check Err; Close releases the connection. Not safe for
// concurrent use.
type WALStream struct {
	body   io.ReadCloser
	sc     *bufio.Scanner
	cur    wire.WALEvent
	err    error
	done   bool
	closed bool

	primaryEpoch uint64
	ckptEpoch    uint64
}

// PrimaryEpoch is the primary's current epoch when the tail was cut —
// the catch-up target (available immediately from the header).
func (s *WALStream) PrimaryEpoch() uint64 { return s.primaryEpoch }

// CheckpointEpoch is the primary's last checkpoint epoch: the oldest
// epoch a fresh bootstrap snapshot can start from.
func (s *WALStream) CheckpointEpoch() uint64 { return s.ckptEpoch }

// Next advances to the next WAL record event ("apply" or "compact").
// It returns false at the end trailer or on error — check Err.
func (s *WALStream) Next() bool {
	if s.err != nil || s.closed || s.done {
		return false
	}
	for s.sc.Scan() {
		var ev wire.WALEvent
		if err := json.Unmarshal(s.sc.Bytes(), &ev); err != nil {
			s.err = fmt.Errorf("client: bad WAL stream line: %w", err)
			return false
		}
		switch ev.Kind {
		case wire.WALApply, wire.WALCompact:
			s.cur = ev
			return true
		case wire.WALEnd:
			s.done = true
			return false
		default:
			s.err = fmt.Errorf("client: unexpected WAL stream event %q", ev.Kind)
			return false
		}
	}
	if err := s.sc.Err(); err != nil {
		s.err = err
	} else {
		// A tail that just stops is torn — the primary always writes the
		// end trailer; applying a possibly-truncated tail could diverge.
		s.err = fmt.Errorf("client: WAL stream ended without end trailer")
	}
	return false
}

// Event returns the current record event after a true Next.
func (s *WALStream) Event() WALEvent { return s.cur }

// Err returns the terminal error, nil on a clean end of stream.
func (s *WALStream) Err() error { return s.err }

// Close releases the connection. Safe to call twice.
func (s *WALStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.body.Close()
}

// Metrics fetches the raw Prometheus-style metrics page.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, "GET", "/metrics", nil, "", true)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	return string(buf), err
}

// ---------------------------------------------------------------------------
// Streaming

// Row is one streamed solution mapping: decoded bindings positional
// over Stream.Vars, nil for unbound variables.
type Row []*string

// Stream is an in-flight NDJSON query response. Iterate with Next until
// it returns false, then check Err; Stats is available afterwards.
// Close aborts early. A Stream is not safe for concurrent use.
type Stream struct {
	body   io.ReadCloser
	sc     *bufio.Scanner
	vars   []string
	epoch  uint64
	stats  *dualsim.ExecStats
	rows   int
	trunc  bool
	cur    Row
	err    error
	closed bool

	// ctx is the QueryStream context; a watcher goroutine closes body
	// when it cancels so a Next blocked on a stalled server returns
	// promptly. stopWatch retires the watcher (idempotent).
	ctx       context.Context
	stopWatch func()
}

// Vars returns the result columns (available immediately: the header is
// read during QueryStream).
func (s *Stream) Vars() []string { return s.vars }

// Epoch returns the store epoch the execution answers from.
func (s *Stream) Epoch() uint64 { return s.epoch }

// Next advances to the next row. It returns false at the end of the
// stream or on error — check Err.
func (s *Stream) Next() bool {
	if s.err != nil || s.closed || s.stats != nil {
		return false
	}
	for s.sc.Scan() {
		var ev wire.Event
		if err := json.Unmarshal(s.sc.Bytes(), &ev); err != nil {
			s.err = fmt.Errorf("client: bad stream line: %w", err)
			return false
		}
		switch ev.Kind {
		case wire.EventRow:
			if ev.Epoch != s.epoch {
				s.err = fmt.Errorf("client: epoch tear: header %d, row %d", s.epoch, ev.Epoch)
				return false
			}
			s.cur = Row(ev.Values)
			return true
		case wire.EventStats:
			s.stats = ev.Stats
			s.rows = ev.Rows
			s.trunc = ev.Truncated
			if s.stats != nil && s.stats.Epoch != s.epoch {
				s.err = fmt.Errorf("client: epoch tear: header %d, stats %d", s.epoch, s.stats.Epoch)
			}
			return false
		case wire.EventError:
			s.err = fmt.Errorf("dualsimd: mid-stream: %s", ev.Error)
			return false
		default:
			s.err = fmt.Errorf("client: unexpected stream event %q", ev.Kind)
			return false
		}
	}
	if err := s.sc.Err(); err != nil {
		// A cancelled context closes the body out from under the scanner;
		// report the cancellation, not the induced read error.
		if s.ctx != nil && s.ctx.Err() != nil {
			err = s.ctx.Err()
		}
		s.err = err
	} else if s.ctx != nil && s.ctx.Err() != nil {
		s.err = s.ctx.Err()
	} else if s.stats == nil {
		s.err = fmt.Errorf("client: stream ended without stats trailer")
	}
	return false
}

// Row returns the current row after a true Next.
func (s *Stream) Row() Row { return s.cur }

// Stats returns the execution statistics once the stream is drained
// (nil before).
func (s *Stream) Stats() *dualsim.ExecStats { return s.stats }

// Rows returns the server-reported total row count (valid after the
// stream is drained); Truncated whether a Limit cut it short.
func (s *Stream) Rows() int       { return s.rows }
func (s *Stream) Truncated() bool { return s.trunc }

// Err returns the terminal error, nil on a clean end of stream.
func (s *Stream) Err() error { return s.err }

// Close releases the connection. Safe to call twice; Next returns false
// afterwards.
func (s *Stream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.stopWatch != nil {
		s.stopWatch()
	}
	return s.body.Close()
}

// QueryStream executes one query and decodes the result incrementally.
// The returned Stream must be Closed (draining it fully also releases
// the connection for reuse).
func (c *Client) QueryStream(ctx context.Context, src string, opts ...QueryOpt) (*Stream, error) {
	o := collect(opts)
	req := wire.QueryRequest{Query: src, TimeoutMs: o.timeoutMs, Limit: o.limit, Stream: true, Trace: o.trace}
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	resp, err := c.doHdr(ctx, "POST", "/v1/query", body, wire.ContentTypeJSON, true, o.header())
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	st := &Stream{body: resp.Body, sc: sc, ctx: ctx}
	// Watch the context for the stream's whole lifetime — started before
	// the header read, because a server can stall before the first line
	// just as well as between rows. Closing the body is the only reliable
	// way to unblock a Read pinned inside the scanner; without it a
	// cancelled caller would hang until the server deigns to write.
	stop := make(chan struct{})
	var stopOnce sync.Once
	st.stopWatch = func() { stopOnce.Do(func() { close(stop) }) }
	go func() {
		select {
		case <-ctx.Done():
			resp.Body.Close()
		case <-stop:
		}
	}()
	fail := func(err error) (*Stream, error) {
		st.stopWatch()
		resp.Body.Close()
		return nil, err
	}
	// The header is always the first line; reading it here lets callers
	// see Vars/Epoch before the first Next.
	if !sc.Scan() {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		if err := sc.Err(); err != nil {
			return fail(err)
		}
		return fail(fmt.Errorf("client: empty stream"))
	}
	var header wire.Event
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil || header.Kind != wire.EventHeader {
		return fail(fmt.Errorf("client: stream did not start with a header (%v)", err))
	}
	st.vars, st.epoch = header.Vars, header.Epoch
	return st, nil
}

// ---------------------------------------------------------------------------
// Transport

// doJSON runs one round-trip with retries and decodes the JSON reply.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	return c.doJSONHdr(ctx, method, path, in, out, idempotent, nil)
}

// doJSONHdr is doJSON with extra request headers (the trace-context
// propagation path).
func (c *Client) doJSONHdr(ctx context.Context, method, path string, in, out any, idempotent bool, hdr http.Header) error {
	var body []byte
	contentType := ""
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
		contentType = wire.ContentTypeJSON
	}
	resp, err := c.doHdr(ctx, method, path, body, contentType, idempotent, hdr)
	if err != nil {
		return err
	}
	// Drain to EOF after decoding (the server appends a trailing newline
	// the decoder may leave unread) so the connection goes back to the
	// idle pool instead of being torn down by Close. Bounded like the
	// error path: a hostile never-ending 2xx body must not hang the
	// deferred drain — past the cap the connection is simply dropped.
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxDrainBytes))
		resp.Body.Close()
	}()
	return json.NewDecoder(resp.Body).Decode(out)
}

// do performs the request, retrying shed (429) and unavailable (503)
// replies — and transport errors when the call is idempotent — up to the
// configured retry budget. Non-2xx replies come back as *APIError.
func (c *Client) do(ctx context.Context, method, path string, body []byte, contentType string, idempotent bool) (*http.Response, error) {
	return c.doHdr(ctx, method, path, body, contentType, idempotent, nil)
}

// doHdr is do with extra request headers.
func (c *Client) doHdr(ctx context.Context, method, path string, body []byte, contentType string, idempotent bool, hdr http.Header) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		for k, vs := range hdr {
			for _, v := range vs {
				req.Header.Set(k, v)
			}
		}
		resp, err := c.hc.Do(req)
		switch {
		case err != nil:
			lastErr = err
			if !idempotent || attempt >= c.retries {
				return nil, lastErr
			}
		case resp.StatusCode < 300:
			return resp, nil
		default:
			ae := readAPIError(resp)
			lastErr = ae
			// 429 (shed before admission) and 503 are transient — except
			// on the probe endpoints, where 503 IS the answer (draining,
			// bootstrapping, lagging) and must be reported immediately.
			retryable := resp.StatusCode == http.StatusTooManyRequests ||
				(resp.StatusCode == http.StatusServiceUnavailable && path != "/healthz" && path != "/readyz")
			if !retryable || attempt >= c.retries {
				return nil, lastErr
			}
		}
		if err := c.sleep(ctx, attempt, lastErr); err != nil {
			return nil, err
		}
	}
}

// maxBackoff caps the exponential retry backoff — it also keeps the
// shift below from overflowing time.Duration at high retry counts.
const maxBackoff = 30 * time.Second

// sleep waits out the backoff before the next attempt.
func (c *Client) sleep(ctx context.Context, attempt int, cause error) error {
	t := time.NewTimer(c.backoffFor(attempt, cause))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoffFor computes the wait before the next attempt: the server's
// Retry-After hint when present, else exponential with jitter. Every
// wait — hint-derived included — is clamped to maxBackoff: a bogus or
// hostile Retry-After header must not stall the client for hours.
func (c *Client) backoffFor(attempt int, cause error) time.Duration {
	d := c.backoff
	for i := 0; i < attempt && d < maxBackoff; i++ {
		d <<= 1
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	var ae *APIError
	if errors.As(cause, &ae) && ae.RetryAfter > 0 {
		// An explicit server hint is honoured as a lower bound — only a
		// little extra jitter on top, never a shorter wait — up to the
		// same ceiling the exponential path respects.
		hint := ae.RetryAfter
		if hint > maxBackoff {
			hint = maxBackoff
		}
		d = hint + time.Duration(rand.Int63n(int64(hint/4)+1))
	} else {
		// Full jitter halves the thundering-herd on synchronized retries.
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	return d
}

// maxDrainBytes bounds how much of an unread response body is drained
// for the sake of connection reuse; a body even larger than this is
// hostile or broken and the connection is closed instead.
const maxDrainBytes = 4 << 20

// readAPIError drains a non-2xx body into an *APIError. The body is
// read to EOF (bounded) before Close: a retryable 429/503 that left
// unread bytes behind would force the transport to tear down the
// connection, so every retry would pay a fresh dial instead of reusing
// the idle connection.
func readAPIError(resp *http.Response) *APIError {
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxDrainBytes))
		resp.Body.Close()
	}()
	ae := &APIError{StatusCode: resp.StatusCode}
	var wireErr wire.ErrorResponse
	buf, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if json.Unmarshal(buf, &wireErr) == nil && wireErr.Error != "" {
		ae.Message = wireErr.Error
		if wireErr.RetryAfterMs > 0 {
			ae.RetryAfter = time.Duration(wireErr.RetryAfterMs) * time.Millisecond
		}
	} else {
		ae.Message = strings.TrimSpace(string(buf))
	}
	if ae.RetryAfter == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}
