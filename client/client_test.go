package client

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"dualsim"
	"dualsim/internal/queries"
	"dualsim/internal/server"
)

const queryX1 = `SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }`

func testClient(t *testing.T, opts ...Option) (*Client, *dualsim.DB) {
	t.Helper()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st, dualsim.WithPlanCache(16))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(db)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		db.Close()
	})
	c, err := New(hs.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, db
}

func TestClientQueryRoundTrip(t *testing.T) {
	c, _ := testClient(t)
	ctx := context.Background()

	out, err := c.Query(ctx, queryX1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 || out.Epoch != 0 || out.Stats == nil {
		t.Fatalf("query: %+v", out)
	}

	lim, err := c.Query(ctx, queryX1, Limit(1), Timeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(lim.Rows) != 1 || !lim.Truncated {
		t.Fatalf("limited query: %+v", lim)
	}

	if _, err := c.Query(ctx, "SELECT broken"); err == nil {
		t.Fatal("broken query succeeded")
	} else if IsOverloaded(err) {
		t.Fatalf("parse error misclassified: %v", err)
	}
}

func TestClientStreamDecode(t *testing.T) {
	c, _ := testClient(t)
	st, err := c.QueryStream(context.Background(), queryX1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(st.Vars()) != 3 || st.Epoch() != 0 {
		t.Fatalf("header: vars %v epoch %d", st.Vars(), st.Epoch())
	}
	n := 0
	for st.Next() {
		row := st.Row()
		if len(row) != len(st.Vars()) {
			t.Fatalf("row arity %d", len(row))
		}
		for _, v := range row {
			if v == nil {
				t.Fatal("unexpected unbound binding in X1")
			}
		}
		n++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 2 || st.Rows() != 2 || st.Stats() == nil || st.Stats().Epoch != 0 {
		t.Fatalf("stream end: n=%d rows=%d stats=%+v", n, st.Rows(), st.Stats())
	}
}

func TestClientApplyQueryEpochs(t *testing.T) {
	c, db := testClient(t)
	ctx := context.Background()

	ar, err := c.ApplyDelta(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("J._McTiernan", "directed", "Die_Hard"),
		dualsim.T("J._McTiernan", "worked_with", "S._de_Souza"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Stats.Epoch != 1 || ar.Stats.Added != 2 {
		t.Fatalf("apply: %+v", ar.Stats)
	}

	out, err := c.Query(ctx, queryX1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 3 || out.Epoch != 1 {
		t.Fatalf("post-apply query: %d rows, epoch %d", len(out.Rows), out.Epoch)
	}

	// Empty delta: no-op on the wire too.
	ar, err = c.Apply(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ar.Stats.NoOp || ar.Stats.Epoch != 1 || db.Epoch() != 1 {
		t.Fatalf("empty apply: %+v (session epoch %d)", ar.Stats, db.Epoch())
	}

	cr, err := c.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Stats.Epoch != 2 || !cr.Stats.Compacted {
		t.Fatalf("compact: %+v", cr.Stats)
	}

	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 2 || snap.Compactions != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

func TestClientBatch(t *testing.T) {
	c, _ := testClient(t)
	out, err := c.Batch(context.Background(), []string{queryX1, queryX1, "SELECT broken"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Requests != 3 || out.Stats.Failed != 1 || out.Stats.CacheHits < 1 {
		t.Fatalf("batch stats: %+v", out.Stats)
	}
	if len(out.Results[0].Rows) != 2 || out.Results[2].Error == "" {
		t.Fatalf("batch items: %+v", out.Results)
	}

	// FailFast reaches the server: the broken first query aborts the
	// batch, and the response still reports per-item outcomes.
	ff, err := c.Batch(context.Background(), []string{"SELECT broken", queryX1}, FailFast())
	if err != nil {
		t.Fatal(err)
	}
	if ff.Results[0].Error == "" || ff.Stats.Failed < 1 {
		t.Fatalf("fail-fast batch: %+v", ff)
	}
}

func TestClientHealthAndMetrics(t *testing.T) {
	c, _ := testClient(t)
	ctx := context.Background()
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health: %+v", h)
	}
	if _, err := c.Query(ctx, queryX1); err != nil {
		t.Fatal(err)
	}
	page, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if page == "" || !containsLine(page, "dualsimd_queries_total 1") {
		t.Fatalf("metrics page:\n%s", page)
	}
}

func containsLine(page, line string) bool {
	for len(page) > 0 {
		i := 0
		for i < len(page) && page[i] != '\n' {
			i++
		}
		if page[:i] == line {
			return true
		}
		if i == len(page) {
			break
		}
		page = page[i+1:]
	}
	return false
}

// TestClientRetriesShedding points the client at a fake server that
// sheds twice before answering, and asserts the retry loop honours the
// Retry-After hint and eventually succeeds.
func TestClientRetriesShedding(t *testing.T) {
	var calls atomic.Int64
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"overloaded","retryAfterMs":1}`))
			return
		}
		w.Write([]byte(`{"vars":["x"],"rows":[],"epoch":0}`))
	}))
	defer fake.Close()

	c, err := New(fake.URL, WithRetries(3), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), "SELECT * WHERE { ?x <p> ?y . }"); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}

	// With the budget exhausted the 429 surfaces as an APIError.
	calls.Store(-100)
	c2, err := New(fake.URL, WithRetries(1), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c2.Query(context.Background(), "SELECT * WHERE { ?x <p> ?y . }")
	if !IsOverloaded(err) {
		t.Fatalf("want overload error, got %v", err)
	}
}

// TestClientHealthNoRetryOnDrain: a 503 from /healthz is the answer
// (the server is draining), not a transient failure — the probe must
// report it on the first round-trip instead of burning the retry
// budget.
func TestClientHealthNoRetryOnDrain(t *testing.T) {
	var calls atomic.Int64
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"draining"}`))
	}))
	defer fake.Close()
	c, err := New(fake.URL, WithRetries(3), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Health(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("health on draining server: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("health probe retried: %d calls", got)
	}
}

func TestClientOptionValidation(t *testing.T) {
	if _, err := New(""); err == nil {
		t.Fatal("empty base URL accepted")
	}
	for _, opt := range []Option{WithHTTPClient(nil), WithRetries(-1), WithRetryBackoff(0)} {
		if _, err := New("http://x", opt); err == nil {
			t.Fatal("invalid option accepted")
		}
	}
}

// TestClientRetryReusesConnection is the leak regression for the retry
// loop: a retryable 429/503 whose body is left partially unread forces
// the transport to tear the connection down, so every retry pays a
// fresh dial. The error bodies here exceed the 1 MB decode cap on
// purpose — the drain (not the decode) is what must reach EOF.
func TestClientRetryReusesConnection(t *testing.T) {
	big := make([]byte, 2<<20) // > the 1 MB decode cap, < the drain cap
	for i := range big {
		big[i] = ' '
	}
	var calls atomic.Int64
	fake := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Length", strconv.Itoa(len(big)))
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write(big)
			return
		}
		w.Write([]byte(`{"vars":["x"],"rows":[],"epoch":0}` + "\n"))
	}))
	var conns atomic.Int64
	fake.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	fake.Start()
	defer fake.Close()

	// A dedicated transport so the shared DefaultClient's idle pool
	// cannot mask (or donate) connections.
	hc := &http.Client{Transport: &http.Transport{}}
	defer hc.CloseIdleConnections()
	c, err := New(fake.URL, WithHTTPClient(hc), WithRetries(3), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), "SELECT * WHERE { ?x <p> ?y . }"); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("retries dialed %d connections, want 1 (drained bodies reuse the conn)", got)
	}
	// A follow-up request keeps riding the same connection.
	if _, err := c.Query(context.Background(), "SELECT * WHERE { ?x <p> ?y . }"); err != nil {
		t.Fatal(err)
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("follow-up request dialed a new connection (%d total)", got)
	}
}

// TestClientBackoffClampsRetryAfter pins the hint cap: a bogus huge
// Retry-After must not stall the client past maxBackoff.
func TestClientBackoffClampsRetryAfter(t *testing.T) {
	c, err := New("http://x", WithRetryBackoff(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	hostile := &APIError{StatusCode: http.StatusTooManyRequests, RetryAfter: 12 * time.Hour}
	for attempt := 0; attempt < 4; attempt++ {
		if d := c.backoffFor(attempt, hostile); d > maxBackoff {
			t.Fatalf("attempt %d: hint-derived backoff %v exceeds maxBackoff %v", attempt, d, maxBackoff)
		}
	}
	// A sane hint is still honoured as a lower bound…
	sane := &APIError{StatusCode: http.StatusTooManyRequests, RetryAfter: 2 * time.Second}
	if d := c.backoffFor(0, sane); d < 2*time.Second || d > maxBackoff {
		t.Fatalf("sane hint gave %v", d)
	}
	// …and the exponential path keeps its own cap at high attempt counts
	// (the shift must not overflow time.Duration either).
	if d := c.backoffFor(200, errors.New("transport")); d > maxBackoff {
		t.Fatalf("exponential backoff %v exceeds maxBackoff", d)
	}
}

// TestClientReadyNoRetryOnNotReady mirrors the /healthz rule for the
// readiness probe: 503 is the answer, not a transient failure.
func TestClientReadyNoRetryOnNotReady(t *testing.T) {
	var calls atomic.Int64
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"notready"}`))
	}))
	defer fake.Close()
	c, err := New(fake.URL, WithRetries(3), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Ready(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ready on not-ready server: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("ready probe retried: %d calls", got)
	}
}

// TestQueryStreamCtxCancelMidStream is the regression for a caller
// cancelling while the server stalls between NDJSON rows: Next must
// return promptly with the context error instead of hanging on a read
// the server never finishes.
func TestQueryStreamCtxCancelMidStream(t *testing.T) {
	unblock := make(chan struct{})
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fl := w.(http.Flusher)
		io.WriteString(w, `{"kind":"header","vars":["x"],"epoch":0}`+"\n")
		io.WriteString(w, `{"kind":"row","values":["<a>"],"epoch":0}`+"\n")
		fl.Flush()
		<-unblock // stall mid-stream: no further bytes, no trailer
	}))
	t.Cleanup(func() {
		close(unblock)
		fake.Close()
	})
	c, err := New(fake.URL, WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := c.QueryStream(ctx, queryX1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Next() {
		t.Fatalf("first row missing: %v", st.Err())
	}
	done := make(chan struct{})
	go func() {
		for st.Next() {
		}
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let the reader block on the stalled body
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Next hung after ctx cancel while the server stalled")
	}
	if !errors.Is(st.Err(), context.Canceled) {
		t.Fatalf("stream err = %v, want context.Canceled", st.Err())
	}
}

// TestClientReplication drives the replica-facing client surface
// against a durable server: readiness, bootstrap snapshot, WAL tail,
// predicate export, and the gap signal after a checkpoint.
func TestClientReplication(t *testing.T) {
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st, dualsim.WithDataDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(db)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		db.Close()
	})
	c, err := New(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	ready, err := c.Ready(ctx)
	if err != nil || ready.Status != "ready" {
		t.Fatalf("ready: %+v, %v", ready, err)
	}

	if _, err := db.Apply(ctx, dualsim.Delta{Adds: []dualsim.Triple{dualsim.T("n1", "directed", "m1")}}); err != nil {
		t.Fatal(err)
	}

	bst, epoch, err := c.BootstrapSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || bst.NumTriples() != db.Store().NumTriples() {
		t.Fatalf("bootstrap: epoch %d, %d triples", epoch, bst.NumTriples())
	}

	ws, err := c.TailWAL(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if ws.PrimaryEpoch() != 1 {
		t.Fatalf("primary epoch = %d", ws.PrimaryEpoch())
	}
	var got []WALEvent
	for ws.Next() {
		got = append(got, ws.Event())
	}
	if err := ws.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Epoch != 1 || len(got[0].Adds) != 1 {
		t.Fatalf("tail events = %+v", got)
	}

	ex, err := c.Export(ctx, []string{"directed"})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Epoch != 1 || len(ex.Triples) == 0 {
		t.Fatalf("export: %+v", ex)
	}
	for _, tr := range ex.Triples {
		if tr.P != "directed" {
			t.Fatalf("export leaked predicate %q", tr.P)
		}
	}

	if _, err := db.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TailWAL(ctx, 0, 0); !errors.Is(err, ErrWALGap) {
		t.Fatalf("tail across checkpoint = %v, want ErrWALGap", err)
	}
}
