package dualsim

import (
	"dualsim/internal/datagen"
)

// GenerateLUBM synthesizes the LUBM-like benchmark dataset (Lehigh
// University Benchmark shape: 18 predicates, structurally repetitive) at
// the given scale, deterministically in the seed.
func GenerateLUBM(universities int, seed int64) []Triple {
	return datagen.LUBM(datagen.DefaultLUBM(universities, seed))
}

// GenerateLUBMStore generates and loads the LUBM-like dataset.
func GenerateLUBMStore(universities int, seed int64) (*Store, error) {
	return datagen.LUBMStore(datagen.DefaultLUBM(universities, seed))
}

// GenerateKG synthesizes the DBpedia-like knowledge graph (Zipfian
// predicate distribution, typed entities) at the given scale,
// deterministically in the seed.
func GenerateKG(scale int, seed int64) []Triple {
	return datagen.KG(datagen.DefaultKG(scale, seed))
}

// GenerateKGStore generates and loads the DBpedia-like dataset.
func GenerateKGStore(scale int, seed int64) (*Store, error) {
	return datagen.KGStore(datagen.DefaultKG(scale, seed))
}
