package dualsim_test

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dualsim"
)

// decodedRows renders a result as sorted decoded binding rows, so
// results from sessions with different dictionaries (e.g. one compacted,
// one not) compare by content.
func decodedRows(st *dualsim.Store, res *dualsim.Result) []string {
	rows := make([]string, 0, res.Len())
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			if v == dualsim.Unbound {
				parts[j] = "—"
			} else {
				parts[j] = st.Term(v).String()
			}
		}
		rows = append(rows, strings.Join(parts, "\t"))
	}
	sort.Strings(rows)
	return rows
}

// TestApplyInvalidatesCachedQuery is the headline live-update
// acceptance path: after Apply of a delta that changes a query's
// answer, a cached Query for the same text returns the new answer
// (epoch-keyed cache miss), while a Snapshot pinned before the apply
// still returns the old one.
func TestApplyInvalidatesCachedQuery(t *testing.T) {
	ctx := context.Background()
	st := fig1a(t)
	db, err := dualsim.Open(st, dualsim.WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const q = `SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }`
	res, stats, err := db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 0 {
		t.Fatalf("fresh session served epoch %d", stats.Epoch)
	}
	before := res.Len()
	if before != 2 {
		t.Fatalf("baseline X1 results = %d, want 2", before)
	}
	if _, stats, err = db.Query(ctx, q); err != nil || !stats.CacheHit {
		t.Fatalf("warm query not served from cache (err %v)", err)
	}

	pinned := db.Snapshot()
	if pinned.Epoch() != 0 {
		t.Fatalf("pinned epoch = %d, want 0", pinned.Epoch())
	}

	// A new director with a coworker: one more X1 match.
	as, err := db.Apply(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("J._McTiernan", "directed", "Die_Hard"),
		dualsim.T("J._McTiernan", "worked_with", "S._de_Souza"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if as.Epoch != 1 || as.Added != 2 || as.Deleted != 0 || as.Compacted {
		t.Fatalf("ApplyStats = %+v", as)
	}
	if as.OverlaySize != 2 {
		t.Fatalf("OverlaySize = %d, want 2", as.OverlaySize)
	}
	if db.Epoch() != 1 {
		t.Fatalf("db.Epoch() = %d, want 1", db.Epoch())
	}

	// Same text, post-update: the epoch-keyed cache must miss, re-plan,
	// and answer from the new snapshot.
	res, stats, err = db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHit {
		t.Fatal("post-update query served a pre-update plan")
	}
	if stats.Epoch != 1 {
		t.Fatalf("post-update query served epoch %d, want 1", stats.Epoch)
	}
	if res.Len() != before+1 {
		t.Fatalf("post-update results = %d, want %d", res.Len(), before+1)
	}

	// The pinned snapshot keeps answering from epoch 0.
	oldRes, oldStats, err := pinned.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if oldStats.Epoch != 0 {
		t.Fatalf("pinned query served epoch %d, want 0", oldStats.Epoch)
	}
	if oldRes.Len() != before {
		t.Fatalf("pinned results = %d, want %d", oldRes.Len(), before)
	}

	// Deleting the new edges restores the old answer at epoch 2.
	as, err = db.Apply(ctx, dualsim.Delta{Dels: []dualsim.Triple{
		dualsim.T("J._McTiernan", "directed", "Die_Hard"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if as.Deleted != 1 || as.OverlaySize != 1 {
		t.Fatalf("delete ApplyStats = %+v", as)
	}
	res, stats, err = db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 2 || res.Len() != before {
		t.Fatalf("epoch %d results %d, want epoch 2 results %d", stats.Epoch, res.Len(), before)
	}

	if inv := db.CacheStats().Invalidations; inv < 1 {
		t.Fatalf("Invalidations = %d, want ≥ 1", inv)
	}
}

// TestPreparedQueryPinsEpoch: a PreparedQuery keeps answering from the
// snapshot it was planned on, while fresh prepares see updates.
// TestApplyEmptyDeltaNoOp is the session-level regression test for the
// empty-Delta contract: no epoch bump, no snapshot swap, and — the
// serving-relevant part — no plan-cache invalidation, so the next Query
// still hits its cached plan.
func TestApplyEmptyDeltaNoOp(t *testing.T) {
	ctx := context.Background()
	db, err := dualsim.Open(fig1a(t), dualsim.WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const q = `SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }`
	if _, _, err := db.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	storeBefore := db.Store()
	csBefore := db.CacheStats()

	as, err := db.Apply(ctx, dualsim.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if !as.NoOp || as.Epoch != 0 || as.Added != 0 || as.Deleted != 0 || as.Compacted {
		t.Fatalf("empty apply stats: %+v", as)
	}
	if db.Epoch() != 0 {
		t.Fatalf("empty apply bumped the epoch to %d", db.Epoch())
	}
	if db.Store() != storeBefore {
		t.Fatal("empty apply swapped the snapshot")
	}
	if cs := db.CacheStats(); cs.Invalidations != csBefore.Invalidations {
		t.Fatalf("empty apply invalidated cached plans: %+v", cs)
	}

	res, stats, err := db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CacheHit || stats.Epoch != 0 {
		t.Fatalf("post-no-op query re-planned: hit=%v epoch=%d", stats.CacheHit, stats.Epoch)
	}
	if res.Len() != 2 {
		t.Fatalf("post-no-op results = %d, want 2", res.Len())
	}
}

func TestPreparedQueryPinsEpoch(t *testing.T) {
	ctx := context.Background()
	db, err := dualsim.Open(fig1a(t))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const q = `SELECT * WHERE { ?m <genre> <Action> . }`
	pq0, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	res0, _, err := pq0.Exec(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := db.Apply(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("Die_Hard", "genre", "Action"),
	}}); err != nil {
		t.Fatal(err)
	}

	resOld, statsOld, err := pq0.Exec(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if statsOld.Epoch != 0 || resOld.Len() != res0.Len() {
		t.Fatalf("pinned prepared query drifted: epoch %d, %d rows (want 0, %d)",
			statsOld.Epoch, resOld.Len(), res0.Len())
	}

	pq1, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	resNew, statsNew, err := pq1.Exec(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if statsNew.Epoch != 1 || resNew.Len() != res0.Len()+1 {
		t.Fatalf("fresh prepare missed the update: epoch %d, %d rows", statsNew.Epoch, resNew.Len())
	}
}

// TestApplyCompaction: crossing WithCompactionThreshold consolidates the
// store mid-Apply; answers stay correct and the ledger resets.
func TestApplyCompaction(t *testing.T) {
	ctx := context.Background()
	db, err := dualsim.Open(fig1a(t), dualsim.WithCompactionThreshold(3))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Apply(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("A1", "directed", "M1"),
		dualsim.T("A1", "worked_with", "C1"),
	}}); err != nil {
		t.Fatal(err)
	}
	as, err := db.Apply(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("A2", "directed", "M2"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !as.Compacted || as.OverlaySize != 0 || db.Compactions() != 1 {
		t.Fatalf("threshold crossing did not compact: %+v (compactions %d)", as, db.Compactions())
	}

	res, stats, err := db.Exec(ctx, `SELECT * WHERE { ?d <directed> ?m . }`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", stats.Epoch)
	}
	if res.Len() != 6 { // 4 original directors' movies + M1 + M2
		t.Fatalf("post-compaction results = %d, want 6", res.Len())
	}

	// Explicit Compact is a no-op data-wise but advances the epoch.
	as, err = db.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !as.Compacted || as.Epoch != 3 {
		t.Fatalf("Compact stats = %+v", as)
	}
}

// TestApplyMaintainsFingerprint: a WithFingerprint session stays sound
// across incremental applies (partition advanced around the touched
// nodes) and across compaction (full re-refinement).
func TestApplyMaintainsFingerprint(t *testing.T) {
	ctx := context.Background()
	db, err := dualsim.Open(fig1a(t), dualsim.WithFingerprint(2), dualsim.WithCompactionThreshold(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Reference session without a fingerprint, fed the same deltas.
	ref, err := dualsim.Open(fig1a(t))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	const q = `SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }`
	deltas := []dualsim.Delta{
		{Adds: []dualsim.Triple{
			dualsim.T("J._McTiernan", "directed", "Die_Hard"),
			dualsim.T("J._McTiernan", "worked_with", "S._de_Souza"),
		}},
		{Dels: []dualsim.Triple{dualsim.T("G._Hamilton", "worked_with", "H._Saltzman")}},
		{Adds: []dualsim.Triple{dualsim.T("G._Hamilton", "worked_with", "R._Maibaum")}},
	}
	for i, d := range deltas {
		as, err := db.Apply(ctx, d)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		if !as.FingerprintRebuilt {
			t.Fatalf("delta %d: fingerprint not maintained", i)
		}
		if _, err := ref.Apply(ctx, d); err != nil {
			t.Fatalf("delta %d (ref): %v", i, err)
		}
		got, gotStats, err := db.Exec(ctx, q)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		want, _, err := ref.Exec(ctx, q)
		if err != nil {
			t.Fatalf("delta %d (ref): %v", i, err)
		}
		// Compare decoded content: the fingerprinted session may have
		// compacted (fresh dictionary), so node ids need not line up.
		gotRows := decodedRows(db.Store(), got)
		wantRows := decodedRows(ref.Store(), want)
		if !reflect.DeepEqual(gotRows, wantRows) {
			t.Fatalf("delta %d: fingerprinted session diverged at epoch %d:\n got %v\nwant %v",
				i, gotStats.Epoch, gotRows, wantRows)
		}
	}
	if db.Fingerprint() == nil {
		t.Fatal("session lost its fingerprint")
	}
}

// TestApplyAtomicDelta: an invalid triple anywhere in the delta fails
// the whole Apply with nothing changed.
func TestApplyAtomicDelta(t *testing.T) {
	ctx := context.Background()
	db, err := dualsim.Open(fig1a(t))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	bad := dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("fine", "p", "ok"),
		{S: dualsim.Literal("bad"), P: "p", O: dualsim.IRI("x")},
	}}
	if _, err := db.Apply(ctx, bad); err == nil {
		t.Fatal("Apply accepted an invalid delta")
	}
	if db.Epoch() != 0 || db.OverlaySize() != 0 {
		t.Fatalf("failed Apply left state: epoch %d, overlay %d", db.Epoch(), db.OverlaySize())
	}
	if db.Store().NumTriples() != 20 {
		t.Fatalf("failed Apply changed the store: %d triples", db.Store().NumTriples())
	}
}

// The stress tests share one shape: the store holds exactly one
// <counter> <value> ?v triple at any epoch, and apply k swaps v(k-1)
// for v(k). A request is consistent iff its single row's ?v binding is
// the value of the epoch its stats report — a mixed-epoch read (pruned
// store from one epoch, evaluation on another) or a stale cached plan
// surfaces as a value/epoch mismatch or a wrong row count.

const stressQuery = `SELECT * WHERE { <counter> <value> ?v . }`

func stressStore(t *testing.T) *dualsim.Store {
	t.Helper()
	st, err := dualsim.FromTriples([]dualsim.Triple{
		dualsim.T("counter", "value", "v0"),
		// Background triples so pruning has something to discard.
		dualsim.T("a", "p", "b"),
		dualsim.T("b", "p", "c"),
		dualsim.T("c", "q", "a"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func stressDelta(k int) dualsim.Delta {
	return dualsim.Delta{
		Adds: []dualsim.Triple{
			dualsim.T("counter", "value", fmt.Sprintf("v%d", k)),
			// A persistent log edge per apply, so the overlay ledger
			// actually grows (the value swap alone oscillates at size 2)
			// and compaction thresholds are crossed.
			dualsim.T("log", "entry", fmt.Sprintf("e%d", k)),
		},
		Dels: []dualsim.Triple{dualsim.T("counter", "value", fmt.Sprintf("v%d", k-1))},
	}
}

// checkEpochRow asserts a stress result is internally consistent:
// exactly one row, whose ?v binding (decoded against st) is the value
// triple of the epoch the stats claim the request was answered from.
func checkEpochRow(st *dualsim.Store, res *dualsim.Result, stats *dualsim.ExecStats) error {
	if res.Len() != 1 {
		return fmt.Errorf("epoch %d: %d rows, want 1", stats.Epoch, res.Len())
	}
	vi := res.VarIndex("v")
	if vi < 0 {
		return fmt.Errorf("epoch %d: variable v missing from %v", stats.Epoch, res.Vars)
	}
	want := fmt.Sprintf("v%d", stats.Epoch)
	got := st.Term(res.Rows[0][vi]).Value
	if got != want {
		return fmt.Errorf("answer %q served with epoch %d stats (want %q): stale or mixed-epoch read", got, stats.Epoch, want)
	}
	return nil
}

// TestLiveStress interleaves Apply with concurrent Query and ExecBatch
// under -race. No compaction here, so node ids are stable across the
// whole lineage and any later snapshot decodes earlier results.
func TestLiveStress(t *testing.T) {
	ctx := context.Background()
	db, err := dualsim.Open(stressStore(t), dualsim.WithPlanCache(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const (
		applies = 60
		readers = 4
	)
	var wg sync.WaitGroup
	var stop atomic.Bool
	errc := make(chan error, readers+1)

	// Readers: single queries through the epoch-keyed plan cache.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				res, stats, err := db.Query(ctx, stressQuery)
				if err == nil {
					err = checkEpochRow(db.Store(), res, stats)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	// One batch reader: the same text fanned out; every request must be
	// individually consistent even when an Apply lands mid-batch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reqs := make([]dualsim.BatchRequest, 4)
		for i := range reqs {
			reqs[i] = dualsim.BatchRequest{Src: stressQuery}
		}
		for !stop.Load() {
			out, err := db.ExecBatch(ctx, reqs)
			if err != nil {
				errc <- err
				return
			}
			for _, br := range out {
				if br.Err != nil {
					errc <- br.Err
					return
				}
				if err := checkEpochRow(db.Store(), br.Result, br.Stats); err != nil {
					errc <- err
					return
				}
			}
		}
	}()

	// The single writer. The query between applies guarantees a cached
	// plan exists at every epoch, so each following apply must invalidate
	// it — and exercises the read-your-writes path.
	for k := 1; k <= applies; k++ {
		as, err := db.Apply(ctx, stressDelta(k))
		if err != nil {
			t.Fatal(err)
		}
		if as.Epoch != uint64(k) {
			t.Fatalf("apply %d landed at epoch %d", k, as.Epoch)
		}
		res, stats, err := db.Query(ctx, stressQuery)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Epoch < uint64(k) {
			t.Fatalf("read-your-writes violated: apply %d, query answered epoch %d", k, stats.Epoch)
		}
		if err := checkEpochRow(db.Store(), res, stats); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Post-update, the cache serves the final epoch's answer.
	res, stats, err := db.Query(ctx, stressQuery)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != uint64(applies) {
		t.Fatalf("final query at epoch %d, want %d", stats.Epoch, applies)
	}
	if err := checkEpochRow(db.Store(), res, stats); err != nil {
		t.Fatal(err)
	}
	if cs := db.CacheStats(); cs.Invalidations == 0 {
		t.Fatalf("no stale plans invalidated across %d applies: %+v", applies, cs)
	}
}

// TestLiveStressCompaction repeats the interleaving with compaction in
// the writer loop. Compaction renumbers node ids, so readers pin a
// Snapshot per request and decode against the pinned store — exactly
// the repeatable-read pattern the API prescribes.
func TestLiveStressCompaction(t *testing.T) {
	ctx := context.Background()
	db, err := dualsim.Open(stressStore(t), dualsim.WithPlanCache(4), dualsim.WithCompactionThreshold(5))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const (
		applies = 40
		readers = 4
	)
	var wg sync.WaitGroup
	var stop atomic.Bool
	errc := make(chan error, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				snap := db.Snapshot()
				res, stats, err := snap.Query(ctx, stressQuery)
				if err == nil && stats.Epoch != snap.Epoch() {
					err = fmt.Errorf("pinned query answered epoch %d, pinned %d", stats.Epoch, snap.Epoch())
				}
				if err == nil {
					err = checkEpochRow(snap.Store(), res, stats)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}()
	}

	for k := 1; k <= applies; k++ {
		if _, err := db.Apply(ctx, stressDelta(k)); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if db.Compactions() == 0 {
		t.Fatal("compaction threshold never crossed")
	}
	res, stats, err := db.Query(ctx, stressQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkEpochRow(db.Store(), res, stats); err != nil {
		t.Fatal(err)
	}
}
