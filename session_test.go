package dualsim_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dualsim"
	"dualsim/internal/queries"
)

// TestSessionPipeline: the Open → Prepare → Exec(ctx) flow on the
// paper's running example, with per-stage statistics.
func TestSessionPipeline(t *testing.T) {
	st := fig1a(t)
	db, err := dualsim.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	pq, err := db.Prepare(queries.QueryX1)
	if err != nil {
		t.Fatal(err)
	}
	prep := pq.PrepareStats()
	if prep.Branches != 1 || prep.Inequalities == 0 || prep.Variables == 0 {
		t.Fatalf("prepare stats = %+v", prep)
	}

	res, stats, err := pq.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("results = %d, want 2", res.Len())
	}
	// The default pipeline prunes: 4 of 20 triples survive (cf. the
	// quickstart test of the one-shot API).
	if stats.TriplesBefore != 20 || stats.TriplesAfter != 4 {
		t.Fatalf("pruning %d -> %d, want 20 -> 4", stats.TriplesBefore, stats.TriplesAfter)
	}
	if stats.PrunedRatio() != 0.8 {
		t.Fatalf("ratio = %f", stats.PrunedRatio())
	}
	if stats.Solver.Rounds < 1 || stats.Solver.Evaluations < 1 {
		t.Fatalf("solver stats missing: %+v", stats.Solver)
	}
	if ps := stats.Stage("prune"); ps == nil || ps.In != 20 || ps.Out != 4 {
		t.Fatalf("prune stage stats = %+v", ps)
	}
	if es := stats.Stage("evaluate"); es == nil || es.In != 4 || es.Out != 2 {
		t.Fatalf("evaluate stage stats = %+v", es)
	}
	if stats.Stage("fingerprint") != nil {
		t.Fatal("fingerprint stage present without WithFingerprint")
	}
	if stats.Results != 2 || stats.Unsatisfiable {
		t.Fatalf("stats = %+v", stats)
	}

	// Exec matches the deprecated one-shot path.
	legacy, err := dualsim.Evaluate(st, pq.Query(), dualsim.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(legacy) {
		t.Fatal("session results differ from deprecated Evaluate")
	}
}

// TestPreparedQueryPlansOnce: N executions of one prepared query perform
// the parse + planning work exactly once; every execution still reports
// its own solver effort.
func TestPreparedQueryPlansOnce(t *testing.T) {
	st := fig1a(t)
	db, err := dualsim.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := db.Prepare(queries.QueryX2)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.PlanBuilds(); got != 1 {
		t.Fatalf("PlanBuilds after Prepare = %d, want 1", got)
	}

	var first *dualsim.ExecStats
	for i := 0; i < 10; i++ {
		res, stats, err := pq.Exec(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 4 {
			t.Fatalf("exec %d: %d results, want 4", i, res.Len())
		}
		if stats.Solver.Rounds < 1 {
			t.Fatalf("exec %d: no solver work reported: %+v", i, stats.Solver)
		}
		if first == nil {
			first = stats
			continue
		}
		// Same plan, same store: the solver effort is identical per run —
		// the plan is not rebuilt or reordered between executions.
		if stats.Solver != first.Solver {
			t.Fatalf("exec %d solver stats drifted: %+v vs %+v", i, stats.Solver, first.Solver)
		}
	}
	if got := db.PlanBuilds(); got != 1 {
		t.Fatalf("PlanBuilds after 10 Execs = %d, want 1 (plan must be reused)", got)
	}
}

// TestPreparedQueryConcurrentExec: one PreparedQuery shared by many
// goroutines (run under -race) yields identical results, with no plan
// rebuilds.
func TestPreparedQueryConcurrentExec(t *testing.T) {
	st, err := dualsim.GenerateKGStore(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st, dualsim.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	pq, err := db.Prepare(`SELECT * WHERE {
		?film <dbo:starring> ?actor .
		?actor <dbo:birthPlace> ?place .
		OPTIONAL { ?film <dbo:writer> ?writer . } }`)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := pq.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const execs = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*execs)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < execs; i++ {
				res, stats, err := pq.Exec(context.Background())
				if err != nil {
					errs <- err
					return
				}
				if !res.Equal(want) {
					errs <- errors.New("concurrent Exec result mismatch")
					return
				}
				if stats.TriplesAfter > stats.TriplesBefore {
					errs <- errors.New("nonsense pruning stats")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := db.PlanBuilds(); got != 1 {
		t.Fatalf("PlanBuilds = %d after concurrent Execs, want 1", got)
	}
}

// TestConcurrentPrepare: concurrent Prepare calls on one session (run
// under -race) — planning is serialized internally over the store's
// lazily built matrices.
func TestConcurrentPrepare(t *testing.T) {
	st := fig1a(t)
	db, err := dualsim.Open(st, dualsim.WithFingerprint(2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pq, err := db.Prepare(queries.QueryX1)
			if err != nil {
				t.Error(err)
				return
			}
			if _, _, err := pq.Exec(context.Background()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestExecCancellation: a cancelled context aborts Exec before any work,
// and a deadline expiring mid-flight interrupts a large LUBM execution
// promptly instead of completing it.
func TestExecCancellation(t *testing.T) {
	st, err := dualsim.GenerateLUBMStore(32, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := db.Prepare(`SELECT * WHERE {
		?publication <rdf:type> <ub:Publication> .
		?publication <ub:publicationAuthor> ?student .
		?publication <ub:publicationAuthor> ?professor .
		?student <ub:degreeFrom> ?university .
		?professor <ub:worksFor> ?department .
		?student <ub:memberOf> ?department .
		?department <ub:subOrganizationOf> ?university . }`)
	if err != nil {
		t.Fatal(err)
	}

	// Already-cancelled context: no result, no stats, ctx.Err(), and the
	// solve must not have run at all.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, stats, err := pq.Exec(cancelled)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Exec(cancelled) err = %v, want context.Canceled", err)
	}
	if res != nil || stats != nil {
		t.Fatalf("Exec(cancelled) returned result/stats: %v, %v", res, stats)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("Exec(cancelled) took %v", waited)
	}

	// Baseline: the full execution takes a while on this store (~100k
	// triples; the L1 join dominates).
	start = time.Now()
	if _, _, err := pq.Exec(context.Background()); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	// Mid-flight cancellation: cancel at a fraction of the full runtime
	// and require a return well before completion.
	ctx, cancel2 := context.WithTimeout(context.Background(), full/8)
	defer cancel2()
	start = time.Now()
	_, _, err = pq.Exec(ctx)
	interrupted := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Exec(deadline) err = %v, want context.DeadlineExceeded (full=%v, returned in %v)",
			err, full, interrupted)
	}
	if interrupted > full/2+50*time.Millisecond {
		t.Fatalf("Exec(deadline %v) returned after %v — not prompt (full run %v)", full/8, interrupted, full)
	}
}

// TestSolverCancellation: cancellation reaches the SOI round loop, not
// just the engines — DualSimulate on a session honours ctx.
func TestSolverCancellation(t *testing.T) {
	st := fig1a(t)
	db, err := dualsim.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	q := dualsim.MustParseQuery(queries.QueryX1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.DualSimulate(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("DualSimulate(cancelled) err = %v", err)
	}
	if _, err := db.Prune(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("Prune(cancelled) err = %v", err)
	}
}

// TestFingerprintPipeline: WithFingerprint adds the pre-filter stage;
// results are identical (the lifting is sound) and the stage reports a
// tightened candidate bound.
func TestFingerprintPipeline(t *testing.T) {
	st := fig1a(t)
	plain, err := dualsim.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := dualsim.Open(st, dualsim.WithFingerprint(2))
	if err != nil {
		t.Fatal(err)
	}
	if fp.Fingerprint() == nil || plain.Fingerprint() != nil {
		t.Fatal("Fingerprint() accessor wrong")
	}

	for _, src := range []string{queries.QueryX1, queries.QueryX2} {
		want, _, err := plain.Exec(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		pq, err := fp.Prepare(src)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := pq.Exec(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: fingerprint pipeline changed the result set", src)
		}
		fs := stats.Stage("fingerprint")
		if fs == nil {
			t.Fatal("fingerprint stage missing")
		}
		if !fs.Skipped {
			if pq.PrepareStats().RestrictedVars == 0 {
				t.Fatal("stage ran but no vars restricted")
			}
			if fs.Out >= fs.In {
				t.Fatalf("fingerprint did not tighten: %d -> %d", fs.In, fs.Out)
			}
		}
	}
}

// TestStagesOverride: WithStages composes a custom pipeline — here
// pruning-only (no evaluation): Exec returns stats but a nil Result.
func TestStagesOverride(t *testing.T) {
	st := fig1a(t)
	db, err := dualsim.Open(st, dualsim.WithStages(dualsim.PruneStage()))
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := db.Exec(context.Background(), queries.QueryX1)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatal("pruning-only pipeline returned a result")
	}
	if stats.TriplesAfter != 4 || stats.Stage("evaluate") != nil {
		t.Fatalf("stats = %+v", stats)
	}

	// A fingerprint stage ordered after the pruning stage cannot
	// constrain the solve; it must report itself skipped rather than
	// advertise a bound that was never applied.
	misordered, err := dualsim.Open(st, dualsim.WithFingerprint(2),
		dualsim.WithStages(dualsim.PruneStage(), dualsim.FingerprintStage(), dualsim.EvaluateStage()))
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err = misordered.Exec(context.Background(), queries.QueryX1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("misordered pipeline results = %d", res.Len())
	}
	if fs := stats.Stage("fingerprint"); fs == nil || !fs.Skipped {
		t.Fatalf("fingerprint stage after prune = %+v, want skipped", fs)
	}
}

// TestSessionOptionsEquivalence: every solver option accepted by Open
// leaves the pipeline result unchanged (they are heuristics, not
// semantics), and engine selection works.
func TestSessionOptionsEquivalence(t *testing.T) {
	st := fig1a(t)
	variants := [][]dualsim.Option{
		{},
		{dualsim.WithStrategy(dualsim.RowWiseStrategy)},
		{dualsim.WithStrategy(dualsim.ColWiseStrategy)},
		{dualsim.WithDeclarationOrder()},
		{dualsim.WithPlainInit()},
		{dualsim.WithCompressed()},
		{dualsim.WithShortCircuit()},
		{dualsim.WithWorkers(4)},
		{dualsim.WithEngine(dualsim.IndexNL)},
		{dualsim.WithPruning(false)},
		{dualsim.WithFingerprint(-1)},
		{dualsim.WithOptions(dualsim.Options{Workers: 2, Compressed: true})},
	}
	var want *dualsim.Result
	for i, opts := range variants {
		db, err := dualsim.Open(st, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := db.Exec(context.Background(), queries.QueryX2)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if i == 0 {
			want = res
			continue
		}
		if !res.Equal(want) {
			t.Fatalf("variant %d changed the result set", i)
		}
	}
}

// TestSessionErrors: closed sessions, invalid options, nil stores.
func TestSessionErrors(t *testing.T) {
	if _, err := dualsim.Open(nil); err == nil {
		t.Fatal("Open(nil) accepted")
	}
	if _, err := dualsim.Open(fig1a(t), dualsim.WithWorkers(-1)); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := dualsim.Open(fig1a(t), dualsim.WithEngine(dualsim.EngineKind(99))); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := dualsim.Open(fig1a(t), dualsim.WithStages()); err == nil {
		t.Fatal("empty stage list accepted")
	}

	db, err := dualsim.Open(fig1a(t))
	if err != nil {
		t.Fatal(err)
	}
	pq, err := db.Prepare(queries.QueryX1)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Prepare(queries.QueryX1); !errors.Is(err, dualsim.ErrClosed) {
		t.Fatalf("Prepare on closed session: %v", err)
	}
	if _, _, err := pq.Exec(context.Background()); !errors.Is(err, dualsim.ErrClosed) {
		t.Fatalf("Exec on closed session: %v", err)
	}
	if _, err := db.DualSimulate(context.Background(), pq.Query()); !errors.Is(err, dualsim.ErrClosed) {
		t.Fatalf("DualSimulate on closed session: %v", err)
	}

	// Parse errors surface as parse errors even on a closed session:
	// Prepare parses before the closed check.
	if _, err := db.Prepare("SELECT nonsense"); err == nil || errors.Is(err, dualsim.ErrClosed) {
		t.Fatalf("Prepare(garbage) on closed session = %v, want a parse error", err)
	}
}

// TestExecNilContext: a nil ctx is treated as context.Background().
func TestExecNilContext(t *testing.T) {
	db, err := dualsim.Open(fig1a(t))
	if err != nil {
		t.Fatal(err)
	}
	pq, err := db.Prepare(queries.QueryX1)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := pq.Exec(nil)
	if err != nil || res.Len() != 2 {
		t.Fatalf("Exec(nil) = %v, %v", res, err)
	}
}
