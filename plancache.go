package dualsim

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"unicode"
)

// PlanCacheStats reports the state and traffic of a session's plan cache
// (see WithPlanCache). The zero value is returned for sessions without a
// cache. JSON tags are part of the serving wire format (see ExecStats).
//
//dualsim:wire
type PlanCacheStats struct {
	// Capacity is the configured maximum number of cached plans.
	Capacity int `json:"capacity"`
	// Size is the current number of cached plans.
	Size int `json:"size"`
	// Hits and Misses count Query/ExecBatch lookups by outcome.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts plans dropped by the LRU policy.
	Evictions int64 `json:"evictions,omitempty"`
	// Invalidations counts plans of superseded store epochs dropped
	// eagerly by Apply/Compact. (Stale plans can never be served either
	// way — keys carry the epoch — the eager drop just frees their
	// pinned snapshots.)
	Invalidations int64 `json:"invalidations,omitempty"`
}

// HitRate returns Hits / (Hits + Misses) in [0, 1], 0 with no traffic.
func (s PlanCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cacheKey scopes a normalized query text to a store epoch, so a plan
// built before an Apply structurally misses afterwards instead of
// serving candidates of a superseded store.
func cacheKey(epoch uint64, normalized string) string {
	return strconv.FormatUint(epoch, 10) + "\x00" + normalized
}

// planCache is a mutex-guarded LRU of prepared queries keyed by
// normalized query text.
type planCache struct {
	mu            sync.Mutex
	cap           int
	ll            *list.List // front = most recently used; Value is *planEntry
	items         map[string]*list.Element
	hits          int64
	misses        int64
	evictions     int64
	invalidations int64
	// minEpoch is the fence dropStaleEpochs leaves behind: unpinned
	// inserts below it are refused, so a plan built against a snapshot
	// that was superseded mid-build cannot slip in after the sweep and
	// keep the dead store alive. Guarded by mu, like the sweep itself.
	minEpoch uint64

	// buildMu serializes plan builds after a miss so concurrent Query
	// calls for the same text plan it once (single-flight): the second
	// caller blocks, re-probes, and finds the first caller's plan.
	buildMu sync.Mutex
}

type planEntry struct {
	key string
	pq  *PreparedQuery
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// lookup returns the cached plan for key (updating recency), or nil.
// record controls whether the hit/miss counters move — the double-check
// probe under buildMu must not count the same miss twice.
func (c *planCache) lookup(key string, record bool) *PreparedQuery {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		if record {
			c.hits++
		}
		return el.Value.(*planEntry).pq
	}
	if record {
		c.misses++
	}
	return nil
}

// promoteMiss reclassifies one recorded miss as a hit: the double-check
// probe found a plan a concurrent caller had just built, so the request
// was served from the cache after all. Keeps Hits+Misses == lookups and
// the counters consistent with the per-request CacheHit flags.
func (c *planCache) promoteMiss() {
	c.mu.Lock()
	c.misses--
	c.hits++
	c.mu.Unlock()
}

// insert adds (or refreshes) a plan and evicts the least recently used
// entries beyond capacity. Unpinned plans of epochs below the
// invalidation fence are refused (see minEpoch); pinned inserts — from
// Snapshot handles deliberately reading an old epoch — bypass the fence
// and live until the next sweep or LRU eviction.
func (c *planCache) insert(key string, pq *PreparedQuery, pinned bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !pinned && pq.snap.epoch < c.minEpoch {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*planEntry).pq = pq
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&planEntry{key: key, pq: pq})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*planEntry).key)
		c.evictions++
	}
}

// dropStaleEpochs removes every cached plan pinned to an epoch other
// than cur, releasing the superseded snapshots those plans keep alive.
// Called by Apply/Compact after the snapshot swap.
func (c *planCache) dropStaleEpochs(cur uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.minEpoch = cur
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		entry := el.Value.(*planEntry)
		if entry.pq.snap.epoch != cur {
			c.ll.Remove(el)
			delete(c.items, entry.key)
			c.invalidations++
		}
	}
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Capacity:      c.cap,
		Size:          c.ll.Len(),
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}

// normalizeQuery derives the plan-cache key: whitespace runs collapse to
// single spaces and comments drop, but only where the lexer itself would
// ignore them — quoted literals and <…> IRIs are copied verbatim, so two
// texts share a key only when they lex identically. Anything deeper
// (variable renaming, pattern reordering) would change plan identity and
// is deliberately out of scope.
func normalizeQuery(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	pendingSpace := false
	emit := func(s string) {
		if pendingSpace {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
		}
		b.WriteString(s)
	}
	for i, n := 0, len(src); i < n; {
		c := src[i]
		switch {
		case c == '#': // comment to end of line: dropped, but separates tokens
			for i < n && src[i] != '\n' {
				i++
			}
			pendingSpace = true
		case unicode.IsSpace(rune(c)):
			pendingSpace = true
			i++
		case c == '<': // IRI: verbatim through '>' ('#' and spaces inside are significant)
			j := strings.IndexByte(src[i:], '>')
			if j < 0 {
				emit(src[i:])
				i = n
				break
			}
			emit(src[i : i+j+1])
			i += j + 1
		case c == '"' || c == '\'': // literal: verbatim through the matching quote, honoring escapes
			j := i + 1
			for j < n && src[j] != c {
				if src[j] == '\\' && j+1 < n {
					j++
				}
				j++
			}
			if j < n {
				j++ // include the closing quote
			}
			emit(src[i:j])
			i = j
		default:
			emit(src[i : i+1])
			i++
		}
	}
	return b.String()
}
