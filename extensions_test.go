package dualsim_test

import (
	"testing"

	"dualsim"
)

func fig4Store(t *testing.T) *dualsim.Store {
	t.Helper()
	st, err := dualsim.FromTriples([]dualsim.Triple{
		dualsim.T("p1", "knows", "p2"),
		dualsim.T("p2", "knows", "p1"),
		dualsim.T("p2", "knows", "p3"),
		dualsim.T("p3", "knows", "p2"),
		dualsim.T("p3", "knows", "p4"),
		dualsim.T("p4", "knows", "p1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStrongSimulatePublicAPI(t *testing.T) {
	st := fig4Store(t)
	p := dualsim.NewPattern().
		Edge("v", "knows", "w").
		Edge("w", "knows", "v")

	matches, err := dualsim.StrongSimulate(st, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("expected matches")
	}
	// No match may include p4 (the Fig. 4 counterexample node).
	for _, m := range matches {
		for v, terms := range m.Candidates {
			for _, term := range terms {
				if term.Value == "p4" {
					t.Fatalf("p4 leaked into %s of match centered at %s", v, m.Center.Value)
				}
			}
		}
	}
	// But plain dual simulation does include p4.
	rel, err := dualsim.SimulatePattern(st, p, dualsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, term := range rel.Candidates("v") {
		if term.Value == "p4" {
			found = true
		}
	}
	if !found {
		t.Fatal("dual simulation should keep p4 — fixture drifted")
	}
}

func TestFingerprintPublicAPI(t *testing.T) {
	st, err := dualsim.GenerateLUBMStore(2, 42)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := dualsim.BuildFingerprint(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Blocks() <= 2 {
		t.Fatalf("blocks = %d; refinement did nothing", fp.Blocks())
	}
	if fp.Triples() >= st.NumTriples() {
		t.Fatalf("fingerprint not smaller: %d vs %d", fp.Triples(), st.NumTriples())
	}
	if r := fp.CompressionRatio(); r <= 0 || r >= 1 {
		t.Fatalf("compression ratio = %f", r)
	}

	// Lifted candidates over-approximate the exact dual simulation.
	p := dualsim.NewPattern().
		Edge("student", "ub:advisor", "prof").
		Edge("prof", "ub:worksFor", "dept")
	exact, err := dualsim.SimulatePattern(st, p, dualsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"student", "prof", "dept"} {
		lifted := fp.CandidateCount(p, v)
		if lifted < len(exact.Candidates(v)) {
			t.Fatalf("%s: lifted %d < exact %d (unsound)", v, lifted, len(exact.Candidates(v)))
		}
		if lifted > st.NumNodes() {
			t.Fatalf("%s: lifted %d exceeds node count", v, lifted)
		}
	}
	if fp.CandidateCount(p, "nope") != 0 {
		t.Fatal("unknown variable should count 0")
	}
}

func TestExtensionsNilStore(t *testing.T) {
	p := dualsim.NewPattern().Edge("a", "p", "b")
	if _, err := dualsim.StrongSimulate(nil, p); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := dualsim.BuildFingerprint(nil, 1); err == nil {
		t.Fatal("nil store accepted")
	}
}
