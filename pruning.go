package dualsim

import (
	"context"
	"io"

	"dualsim/internal/core"
	"dualsim/internal/prune"
	"dualsim/internal/rdf"
	"dualsim/internal/sparql"
)

// Pruning is the result of dual-simulation database pruning for one
// query (the paper's Sect. 5 application): the subset of triples that
// survive the largest dual simulation.
type Pruning struct {
	p   *prune.Pruning
	rel *core.QueryRelation
}

// Prune computes the pruned database for q: every triple not certified by
// the largest dual simulation is removed. Evaluating q on Store() yields
// every match the full store yields (Theorem 2).
//
// Deprecated: use a session — Open(st, WithOptions(opts)) followed by
// db.Prune(ctx, q), or the full pipeline via Prepare/Exec — for
// cancellation and plan reuse.
func Prune(st *Store, q *Query, opts Options) (*Pruning, error) {
	if err := requireStore(st); err != nil {
		return nil, err
	}
	db, err := Open(st, WithOptions(opts))
	if err != nil {
		return nil, err
	}
	return db.Prune(context.Background(), q)
}

// Store materializes the pruned database. Node ids and dictionaries are
// shared with the original store, so results remain comparable.
func (p *Pruning) Store() *Store { return p.p.Store() }

// Kept returns the number of surviving triples.
func (p *Pruning) Kept() int { return p.p.Kept }

// Total returns the original store size.
func (p *Pruning) Total() int { return p.p.Total }

// Ratio returns the pruned fraction in [0, 1].
func (p *Pruning) Ratio() float64 { return p.p.Ratio() }

// RequiredTriples counts the triples participating in at least one actual
// match of q on st — the ground truth the pruning overapproximates.
func RequiredTriples(st *Store, q *Query, kind EngineKind) (int, error) {
	if err := requireStore(st); err != nil {
		return 0, err
	}
	return prune.RequiredCount(context.Background(), st, q, kind.engine())
}

// ---------------------------------------------------------------------------
// Pattern-graph level API (Sect. 2–3, no SPARQL involved).

// Pattern is a hand-built pattern graph: named variables connected by
// labeled edges, optionally bound to constants.
type Pattern struct {
	p *core.Pattern
}

// NewPattern returns an empty pattern graph.
func NewPattern() *Pattern { return &Pattern{p: core.NewPattern()} }

// Edge adds the pattern edge (from, pred, to); variables are interned by
// name.
func (p *Pattern) Edge(from, pred, to string) *Pattern {
	p.p.Edge(from, pred, to)
	return p
}

// Bind restricts a variable to a constant term.
func (p *Pattern) Bind(name string, t Term) *Pattern {
	p.p.Bind(name, t)
	return p
}

// IsCyclic reports whether the pattern contains an (undirected) cycle.
func (p *Pattern) IsCyclic() bool { return p.p.IsCyclic() }

// PatternRelation is the largest dual simulation of a pattern graph.
type PatternRelation struct {
	rel *core.Relation
	st  *Store
}

// SimulatePattern computes the largest dual simulation between the
// pattern graph and the store.
//
// Deprecated: use a session — Open(st, WithOptions(opts)) followed by
// db.SimulatePattern(ctx, p) — for cancellation and configuration reuse.
func SimulatePattern(st *Store, p *Pattern, opts Options) (*PatternRelation, error) {
	if err := requireStore(st); err != nil {
		return nil, err
	}
	db, err := Open(st, WithOptions(opts))
	if err != nil {
		return nil, err
	}
	return db.SimulatePattern(context.Background(), p)
}

// Candidates returns the simulating nodes of a pattern variable in
// deterministic (ascending node id) order, or nil for an unknown
// variable — mirroring VarIndex.
func (r *PatternRelation) Candidates(varName string) []Term {
	i, ok := r.rel.Pattern.VarIndex(varName)
	if !ok {
		return nil
	}
	chi := r.rel.Chi[i]
	out := make([]Term, 0, chi.Count())
	chi.ForEach(func(n int) bool {
		out = append(out, r.st.Term(uint32(n)))
		return true
	})
	return out
}

// Empty reports whether the relation is the empty dual simulation.
func (r *PatternRelation) Empty() bool { return r.rel.IsEmpty() }

// Stats returns solver statistics.
func (r *PatternRelation) Stats() Stats {
	return Stats{
		Rounds:      r.rel.Stats.Rounds,
		Evaluations: r.rel.Stats.Evaluations,
		Updates:     r.rel.Stats.Updates,
	}
}

// ---------------------------------------------------------------------------
// Query analyses re-exported for downstream users.

// QueryVars returns vars(Q), sorted.
func QueryVars(q *Query) []string { return sparql.Vars(q.Expr) }

// MandatoryVars returns mand(Q) (Sect. 4.3).
func MandatoryVars(q *Query) []string {
	m := sparql.Mand(q.Expr)
	out := make([]string, 0, len(m))
	for _, v := range sparql.Vars(q.Expr) {
		if m[v] {
			out = append(out, v)
		}
	}
	return out
}

// IsWellDesigned reports well-designedness (Pérez et al.; Sect. 4.5).
func IsWellDesigned(q *Query) bool { return sparql.IsWellDesigned(q.Expr) }

// ReadTriples parses an N-Triples-style stream without building a store.
func ReadTriples(r io.Reader) ([]Triple, error) { return rdf.ReadAll(r) }
