// Cluster walks through the scale-out subsystem on the movie database
// of Fig. 1(a): the store is partitioned over two predicate-hash shards
// (each holds EVERY triple of its predicates — what makes per-branch
// query push-down exact), a scatter-gather router speaks the
// single-node protocol in front of them, a WAL-streaming read replica
// bootstraps from shard 0's snapshot and tails its log, and finally the
// shard 0 primary is killed: the router's next probe routes reads to
// the caught-up replica and the cluster keeps answering.
//
// In production the same topology is:
//
//	dualsimd -store db.nt -shard 0/2 -data /var/lib/shard0 -addr :8321
//	dualsimd -store db.nt -shard 1/2 -addr :8322
//	dualsimd -follow http://localhost:8321 -addr :8323
//	dualsimrouter -shard http://localhost:8321,http://localhost:8323 \
//	              -shard http://localhost:8322 -addr :8320
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/cluster"
	"dualsim/internal/cluster/router"
	"dualsim/internal/queries"
	"dualsim/internal/server"
)

const queryX1 = `
SELECT * WHERE {
  ?director <directed> ?movie .
  ?director <worked_with> ?coworker . }`

// serve puts a server on a loopback listener; the returned stop closes
// the listener (the "kill" in the failover step).
func serve(h http.Handler) (url string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

func main() {
	ctx := context.Background()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		log.Fatal(err)
	}

	// --- Partition: two shards by predicate hash ------------------------
	dataDir, err := os.MkdirTemp("", "dualsim-cluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	var shardURLs [][]string
	var stops []func()
	var shard0URL string
	for i := 0; i < 2; i++ {
		shardStore, err := cluster.ShardStore(st, cluster.ShardSpec{Index: i, N: 2})
		if err != nil {
			log.Fatal(err)
		}
		// Shard 0 is durable so a replica can stream its WAL.
		opts := []dualsim.Option{dualsim.WithPlanCache(8)}
		if i == 0 {
			opts = append(opts, dualsim.WithDataDir(dataDir))
		}
		db, err := dualsim.Open(shardStore, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()
		srv, err := server.New(db)
		if err != nil {
			log.Fatal(err)
		}
		url, stop, err := serve(srv)
		if err != nil {
			log.Fatal(err)
		}
		stops = append(stops, stop)
		shardURLs = append(shardURLs, []string{url})
		if i == 0 {
			shard0URL = url
		}
		fmt.Printf("shard %d/2: %d of %d triples at %s\n",
			i, shardStore.NumTriples(), st.NumTriples(), url)
	}

	// --- Replica: bootstrap + WAL tail of shard 0 -----------------------
	f, err := cluster.Follow(shard0URL, cluster.WithPollWait(100*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Bootstrap(ctx); err != nil {
		log.Fatal(err)
	}
	fctx, stopFollowing := context.WithCancel(ctx)
	defer stopFollowing()
	go f.Run(fctx)
	rsrv, err := server.New(f.DB(), server.WithReadOnly(), server.WithReadiness(f.Ready))
	if err != nil {
		log.Fatal(err)
	}
	replicaURL, stopReplica, err := serve(rsrv)
	if err != nil {
		log.Fatal(err)
	}
	defer stopReplica()
	shardURLs[0] = append(shardURLs[0], replicaURL)
	fmt.Printf("replica of shard 0 at %s (epoch %d after bootstrap)\n\n",
		replicaURL, f.DB().Epoch())

	// --- Router: the cluster behind one URL -----------------------------
	rt, err := router.New(shardURLs)
	if err != nil {
		log.Fatal(err)
	}
	rt.Probe(ctx)
	go rt.Run(ctx) // keep probing so failover below is automatic
	routerURL, stopRouter, err := serve(rt.Handler())
	if err != nil {
		log.Fatal(err)
	}
	defer stopRouter()
	c, err := client.New(routerURL)
	if err != nil {
		log.Fatal(err)
	}

	out, err := c.Query(ctx, queryX1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(X1) through the router: %d rows, vars %v, epoch %d\n",
		len(out.Rows), out.Vars, out.Epoch)
	if len(out.Rows) != 2 {
		log.Fatal("router answers diverge from the single node")
	}

	// --- A write through the router, split by placement ----------------
	if _, err := c.ApplyDelta(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("J._McTiernan", "directed", "Die_Hard"),
		dualsim.T("J._McTiernan", "worked_with", "S._de_Souza"),
	}}); err != nil {
		log.Fatal(err)
	}
	out, err = c.Query(ctx, queryX1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after a routed apply: %d rows\n", len(out.Rows))

	// --- Failover: kill shard 0's primary -------------------------------
	// Wait until the replica has replayed everything the primary holds
	// (f.Stats().Lag only refreshes with tail headers, so ask the
	// primary directly), then kill it and wait for a probe round to
	// mark it down.
	pc, err := client.New(shard0URL)
	if err != nil {
		log.Fatal(err)
	}
	psnap, err := pc.Snapshot(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for f.DB().Epoch() < psnap.Epoch {
		time.Sleep(10 * time.Millisecond)
	}
	stops[0]()
	time.Sleep(1500 * time.Millisecond) // > one probe period
	out, err = c.Query(ctx, queryX1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after killing shard 0's primary: %d rows (reads fail over to the replica)\n",
		len(out.Rows))
	if len(out.Rows) != 3 {
		log.Fatal("failover lost rows")
	}
}
