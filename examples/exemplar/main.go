// Exemplar shows the pattern-graph API on an exemplar-query scenario
// (cf. Mottin et al., "Exemplar Queries", discussed in the paper's
// related work): the user points at one example constellation — an
// organisation whose founder shares a birthplace with an employee — and
// dual simulation retrieves every node that can play each role, without
// enumerating full homomorphic matches.
//
// It also reproduces the paper's Fig. 4 counterexample on a small social
// graph: dual simulation keeps p4 for the mutual-knows exemplar although
// p4 belongs to no homomorphic match.
//
// Pattern-graph simulation runs through the session API too: Open a DB
// over the store once, then db.SimulatePattern(ctx, p) per exemplar —
// cancellable like every other session operation.
package main

import (
	"context"
	"fmt"
	"log"

	"dualsim"
)

func main() {
	ctx := context.Background()
	knowledgeGraphExemplar(ctx)
	fig4Counterexample(ctx)
}

func knowledgeGraphExemplar(ctx context.Context) {
	st, err := dualsim.GenerateKGStore(2, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge graph: %d triples\n\n", st.NumTriples())

	db, err := dualsim.Open(st)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The exemplar: an organisation whose founder shares a birthplace
	// with one of its employees. Expressed as a pattern graph:
	p := dualsim.NewPattern().
		Edge("org", "dbo:foundedBy", "founder").
		Edge("employee", "dbo:employer", "org").
		Edge("founder", "dbo:birthPlace", "hometown").
		Edge("employee", "dbo:birthPlace", "hometown")

	rel, err := db.SimulatePattern(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	if rel.Empty() {
		fmt.Println("no constellation like the exemplar exists")
		return
	}
	stats := rel.Stats()
	fmt.Printf("exemplar roles filled (SOI: %d rounds, %d evaluations):\n",
		stats.Rounds, stats.Evaluations)
	for _, role := range []string{"founder", "org", "employee", "hometown"} {
		cands := rel.Candidates(role)
		fmt.Printf("  %-9s %3d candidates, e.g.", role, len(cands))
		for i, c := range cands {
			if i == 3 {
				fmt.Print(" …")
				break
			}
			fmt.Printf(" %s", c.Value)
		}
		fmt.Println()
	}
	fmt.Println()
}

func fig4Counterexample(ctx context.Context) {
	// Fig. 4(b): the knows-graph K.
	st, err := dualsim.FromTriples([]dualsim.Triple{
		dualsim.T("p1", "knows", "p2"),
		dualsim.T("p2", "knows", "p1"),
		dualsim.T("p2", "knows", "p3"),
		dualsim.T("p3", "knows", "p2"),
		dualsim.T("p3", "knows", "p4"),
		dualsim.T("p4", "knows", "p1"),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 4(a): the mutual-knows exemplar P.
	p := dualsim.NewPattern().
		Edge("v", "knows", "w").
		Edge("w", "knows", "v")

	db, err := dualsim.Open(st)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := db.SimulatePattern(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 4: mutual-knows exemplar on the 4-person graph K")
	for _, role := range []string{"v", "w"} {
		fmt.Printf("  %s dual-simulated by:", role)
		for _, c := range rel.Candidates(role) {
			fmt.Printf(" %s", c.Value)
		}
		fmt.Println()
	}
	fmt.Println("  note: p4 is kept although it is in no homomorphic match —")
	fmt.Println("  p1 and p3 distribute its obligations (Sect. 4.1).")
}
