// Filters walks the query-language surface added around the streaming
// Volcano executor: FILTER expressions (comparisons, the && / || / !
// connectives, bound()), their SPARQL three-valued semantics against
// OPTIONAL, string equality on literals, LIMIT/OFFSET, the cursor API,
// and the line:column positions of parse errors. Every query runs on
// the paper's Fig. 1(a) movie database.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"dualsim"
)

var fig1a = []dualsim.Triple{
	dualsim.T("B._De_Palma", "directed", "Mission:_Impossible"),
	dualsim.T("B._De_Palma", "awarded", "Oscar"),
	dualsim.T("B._De_Palma", "born_in", "Newark"),
	dualsim.T("B._De_Palma", "worked_with", "D._Koepp"),
	dualsim.T("Mission:_Impossible", "genre", "Action"),
	dualsim.T("Goldfinger", "genre", "Action"),
	dualsim.T("G._Hamilton", "directed", "Goldfinger"),
	dualsim.T("G._Hamilton", "born_in", "Paris"),
	dualsim.T("G._Hamilton", "worked_with", "H._Saltzman"),
	dualsim.T("Thunderball", "sequel_of", "Goldfinger"),
	dualsim.T("Thunderball", "awarded", "Oscar"),
	dualsim.T("H._Saltzman", "born_in", "Saint_John"),
	dualsim.T("From_Russia_with_Love", "prequel_of", "Goldfinger"),
	dualsim.T("T._Young", "directed", "From_Russia_with_Love"),
	dualsim.T("T._Young", "awarded", "BAFTA_Awards"),
	dualsim.T("P.R._Hunt", "worked_with", "D._Koepp"),
	dualsim.T("D._Koepp", "directed", "Mortdecai"),
	dualsim.TL("Newark", "population", "277140"),
	dualsim.TL("Paris", "population", "2220445"),
	dualsim.TL("Saint_John", "population", "70063"),
}

func main() {
	ctx := context.Background()
	st, err := dualsim.FromTriples(fig1a)
	if err != nil {
		log.Fatal(err)
	}
	db, err := dualsim.Open(st) // default engine: streaming Volcano + cost-based planner
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	run := func(title, src string) *dualsim.Result {
		res, _, err := db.Exec(ctx, src)
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		fmt.Printf("%s — %d row(s)\n%s\n", title, res.Len(), res.Format(st))
		return res
	}
	expect := func(res *dualsim.Result, n int, what string) {
		if res.Len() != n {
			fmt.Fprintf(os.Stderr, "expected %d rows (%s), got %d\n", n, what, res.Len())
			os.Exit(1)
		}
	}

	// 1. Comparisons. Orderings compare numerically when both operands
	// parse as numbers (population literals here) and lexically
	// otherwise; = and != are term equality, so an IRI never equals a
	// literal of the same spelling.
	expect(run("cities larger than 100 000",
		`SELECT * WHERE { ?city <population> ?pop . FILTER(?pop > 100000) }`),
		2, "Newark and Paris")

	// 2. Connectives. && / || / ! nest with parentheses; the printed
	// form of a prepared query re-parses to the same tree.
	expect(run("directors awarded an Oscar or born somewhere",
		`SELECT * WHERE { ?d <directed> ?m . ?d <awarded> ?a .
		   FILTER(?a = <Oscar> || !(?d = <T._Young>)) }`),
		1, "only De Palma: T. Young's BAFTA is excluded")

	// 3. bound() and three-valued logic. A comparison on an unbound
	// variable ERRORS (the row is dropped) rather than evaluating false
	// — so the two queries below are not complements of each other;
	// bound() is the way to test for absence.
	expect(run("directors with a coworker named D. Koepp",
		`SELECT * WHERE { ?d <directed> ?m . OPTIONAL { ?d <worked_with> ?c . }
		   FILTER(?c = <D._Koepp>) }`),
		1, "De Palma; unbound ?c errors the comparison, dropping T. Young and Koepp")
	expect(run("directors with no coworker at all",
		`SELECT * WHERE { ?d <directed> ?m . OPTIONAL { ?d <worked_with> ?c . }
		   FILTER(!bound(?c)) }`),
		2, "T. Young and D. Koepp")

	// 4. String equality on literals. Literals and IRIs are distinct
	// term kinds: the population literal "277140" matches a quoted
	// string, never <277140>.
	expect(run("the city counting exactly 277140 heads",
		`SELECT * WHERE { ?city <population> ?pop . FILTER(?pop = "277140") }`),
		1, "Newark")

	// 5. LIMIT/OFFSET. Results are sets, so the window is over distinct
	// rows; OFFSET skips, LIMIT caps what remains.
	expect(run("two awarded entities, skipping one",
		`SELECT * WHERE { ?x <awarded> ?a . } LIMIT 2 OFFSET 1`),
		2, "3 awarded pairs minus 1 offset, capped at 2")

	// 6. The cursor. Stream delivers rows as the iterator produces them
	// — the daemon's ?stream=1 NDJSON path pulls from the same operators
	// — and the finalized stats expose the planner's work.
	pq, err := db.Prepare(`SELECT * WHERE { ?d <directed> ?m . ?d <born_in> ?city .
	   ?city <population> ?pop . FILTER(?pop >= 70000 && bound(?city)) }`)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := pq.Stream(ctx)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	rows.Close()
	fmt.Printf("streamed %d row(s); the planner decided:\n", n)
	for _, d := range rows.Stats().PlanDecisions {
		fmt.Printf("  %s\n", d)
	}
	for _, op := range rows.Stats().Operators {
		fmt.Printf("  %-9s %-32s est=%.0f rows=%d\n", op.Op, op.Detail, op.EstRows, op.Rows)
	}
	if n != 2 {
		fmt.Fprintln(os.Stderr, "expected De Palma and Hamilton through the cursor")
		os.Exit(1)
	}

	// 7. Parse errors carry line:column positions.
	_, err = db.Prepare("SELECT * WHERE {\n  ?d <directed> ?m .\n  FILTER(?pop >< 3) }")
	if err == nil {
		fmt.Fprintln(os.Stderr, "malformed FILTER was accepted")
		os.Exit(1)
	}
	fmt.Printf("\nparse errors point at the offending token:\n  %v\n", err)
}
