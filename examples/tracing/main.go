// Tracing demonstrates the end-to-end observability surface on a
// scale-out topology: the Fig. 1(a) store partitioned over two
// predicate-hash shards behind the scatter-gather router, with the
// slow-query log enabled everywhere.
//
// A single `?trace=1` query through the router produces ONE span tree:
// the router's fan-out span on top, one branch span per top-level UNION
// arm (attributed with its routing mode and shard), and — for pushed-down
// branches — the owning shard's entire pipeline subtree (parse/plan,
// prune, evaluate, per-operator spans) stitched underneath, all carrying
// the same 128-bit trace ID the router injected as a W3C `traceparent`
// header. The example prints the stitched tree indented, then reads the
// router's slow-query ring back through the client.
//
// In production the same surfaces hang off the daemons' flags:
//
//	dualsimd       -slowlog 64 -slowthreshold 50ms -debugaddr :6060 -accesslog -
//	dualsimrouter  -slowlog 64 -debugaddr :6061 -accesslog -
//
// with pprof at http://…:6060/debug/pprof/ and the ring at
// GET /v1/debug/slow on both the serving and debug listeners.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/cluster"
	"dualsim/internal/cluster/router"
	"dualsim/internal/server"
	"dualsim/internal/trace"
)

var fig1a = []dualsim.Triple{
	dualsim.T("B._De_Palma", "directed", "Mission:_Impossible"),
	dualsim.T("B._De_Palma", "awarded", "Oscar"),
	dualsim.T("B._De_Palma", "born_in", "Newark"),
	dualsim.T("B._De_Palma", "worked_with", "D._Koepp"),
	dualsim.T("Mission:_Impossible", "genre", "Action"),
	dualsim.T("Goldfinger", "genre", "Action"),
	dualsim.T("G._Hamilton", "directed", "Goldfinger"),
	dualsim.T("G._Hamilton", "born_in", "Paris"),
	dualsim.T("G._Hamilton", "worked_with", "H._Saltzman"),
	dualsim.T("Thunderball", "sequel_of", "Goldfinger"),
	dualsim.T("Thunderball", "awarded", "Oscar"),
	dualsim.T("H._Saltzman", "born_in", "Saint_John"),
	dualsim.T("From_Russia_with_Love", "prequel_of", "Goldfinger"),
	dualsim.T("T._Young", "directed", "From_Russia_with_Love"),
	dualsim.T("T._Young", "awarded", "BAFTA_Awards"),
	dualsim.T("P.R._Hunt", "worked_with", "D._Koepp"),
	dualsim.T("D._Koepp", "directed", "Mortdecai"),
	dualsim.TL("Newark", "population", "277140"),
	dualsim.TL("Paris", "population", "2220445"),
	dualsim.TL("Saint_John", "population", "70063"),
}

// Two single-predicate branches: each pushes down verbatim to whichever
// shard owns its predicate, so each branch span carries a full shard
// pipeline subtree.
const tracedQuery = `
SELECT * WHERE {
  { ?movie <genre> ?g . } UNION { ?city <population> ?n . } }`

func main() {
	ctx := context.Background()
	st, err := dualsim.FromTriples(fig1a)
	if err != nil {
		log.Fatal(err)
	}

	// Two in-process shard daemons, slow-query log on.
	var shardURLs [][]string
	for i := 0; i < 2; i++ {
		shardStore, err := cluster.ShardStore(st, cluster.ShardSpec{Index: i, N: 2})
		if err != nil {
			log.Fatal(err)
		}
		sdb, err := dualsim.Open(shardStore, dualsim.WithPlanCache(8))
		if err != nil {
			log.Fatal(err)
		}
		defer sdb.Close()
		ssrv, err := server.New(sdb, server.WithSlowQueryLog(16, 0))
		if err != nil {
			log.Fatal(err)
		}
		sln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		shs := &http.Server{Handler: ssrv}
		go shs.Serve(sln)
		defer shs.Close()
		shardURLs = append(shardURLs, []string{"http://" + sln.Addr().String()})
	}

	// The router in front, its own slow-query ring enabled.
	rt, err := router.New(shardURLs, router.WithSlowQueryLog(16, 0))
	if err != nil {
		log.Fatal(err)
	}
	rt.Probe(ctx)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	rhs := &http.Server{Handler: rt.Handler()}
	go rhs.Serve(rln)
	defer rhs.Close()

	// One traced query through the router.
	c, err := client.New("http://" + rln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	out, err := c.Query(ctx, tracedQuery, client.Trace())
	if err != nil {
		log.Fatal(err)
	}
	root := out.Stats.Trace
	if root == nil {
		fmt.Fprintln(os.Stderr, "traced query returned no span tree")
		os.Exit(1)
	}
	fmt.Printf("%d rows; one distributed trace %s:\n\n", len(out.Rows), root.TraceID)
	printSpan(root, 0, root.TraceID)

	// The router's slow-query ring has the same tree (threshold 0 records
	// everything — production sets -slowthreshold to a real budget).
	slow, err := c.SlowQueries(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nslow-query log: %d entr(ies), newest %q in %v (statement %s)\n",
		slow.Total, slow.Entries[0].Query, slow.Entries[0].Duration.Round(time.Microsecond),
		slow.Entries[0].Fingerprint)

	// The cluster-wide workload statistics: the router scrapes every
	// shard's /v1/debug/statements and merges by normalized statement
	// fingerprint — here, the two UNION branches the fan-out pushed down,
	// one recorded per owning shard. `dualsim -top -server <router>`
	// renders the same view live.
	stmts, err := c.Statements(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload statistics, merged across %d shard(s):\n", stmts.Shards)
	for _, s := range stmts.Statements {
		fmt.Printf("  %s calls=%d rows=%d  %s\n", s.Fingerprint, s.Calls, s.Rows, s.Query)
	}

	if root.Name != "router.fanout" || root.Find("evaluate") == nil {
		fmt.Fprintln(os.Stderr, "span tree misses the fan-out root or a shard's evaluate stage")
		os.Exit(1)
	}
	if slow.Entries[0].Fingerprint == "" || stmts.Shards != 2 || len(stmts.Statements) == 0 {
		fmt.Fprintln(os.Stderr, "workload statistics missing: fingerprint, shard count or merged rows")
		os.Exit(1)
	}
}

// printSpan renders the tree one span per line. Subtree roots that
// crossed a process boundary repeat the trace ID; flagging them shows
// where the router stitched a shard's spans in.
func printSpan(s *trace.Span, depth int, traceID string) {
	for i := 0; i < depth; i++ {
		fmt.Print("  ")
	}
	fmt.Print(s.Name)
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf(" %s=%s", k, s.Attrs[k])
		}
	}
	if s.Duration > 0 {
		fmt.Printf(" (%v)", s.Duration.Round(time.Microsecond))
	}
	if depth > 0 && s.TraceID == traceID {
		fmt.Print("  [stitched shard subtree]")
	}
	fmt.Println()
	for _, c := range s.Children {
		printSpan(c, depth+1, traceID)
	}
}
