// Serving walks through the network subsystem end to end, in process:
// a dualsimd-style HTTP server (internal/server) is started on a
// loopback listener over the paper's Fig. 1(a) database, and the typed
// Go client drives every endpoint — health, a buffered query, an NDJSON
// row stream, a concurrent batch, a live delta with epoch-tagged
// re-query, compaction, metrics — before the server drains gracefully.
//
// The same flow works against a standalone daemon:
//
//	go run ./cmd/datagen -dataset kg -out kg.nt
//	go run ./cmd/dualsimd -store kg.nt -addr 127.0.0.1:8321
//	# then point client.New at http://127.0.0.1:8321
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/queries"
	"dualsim/internal/server"
)

const queryX1 = `SELECT * WHERE {
  ?director <directed> ?movie .
  ?director <worked_with> ?coworker . }`

const queryX2 = `SELECT * WHERE {
  ?director <directed> ?movie .
  OPTIONAL { ?director <worked_with> ?coworker . } }`

func main() {
	ctx := context.Background()

	// --- Step 1: a session, exactly as in examples/quickstart -----------
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		log.Fatal(err)
	}
	db, err := dualsim.Open(st, dualsim.WithPlanCache(16))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// --- Step 2: the serving subsystem on a loopback listener -----------
	// Admission control: at most 8 queries execute concurrently, 16 more
	// may queue, the rest shed with 429 + Retry-After.
	srv, err := server.New(db, server.WithMaxInFlight(8), server.WithQueueDepth(16))
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving Fig. 1(a) on %s\n", base)

	// --- Step 3: the typed client ----------------------------------------
	c, err := client.New(base, client.WithRetries(2))
	if err != nil {
		log.Fatal(err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("health: %s (epoch %d)\n", h.Status, h.Epoch)

	// A buffered query: one JSON envelope, epoch-tagged.
	out, err := c.Query(ctx, queryX1, client.Timeout(5*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(X1) over HTTP: %d rows at epoch %d (solver rounds %d, pruned %.0f%%)\n",
		len(out.Rows), out.Epoch, out.Stats.Solver.Rounds, 100*out.Stats.PrunedRatio())
	for _, row := range out.Rows {
		fmt.Printf("  %s\n", renderRow(out.Vars, row))
	}

	// --- Step 4: NDJSON streaming ----------------------------------------
	// Large results arrive row by row; the header and the stats trailer
	// carry the same epoch (MVCC consistency on the wire).
	stream, err := c.QueryStream(ctx, queryX2)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for stream.Next() {
		n++
	}
	if err := stream.Err(); err != nil {
		log.Fatal(err)
	}
	stream.Close()
	fmt.Printf("\n(X2) streamed: %d rows, header epoch %d == stats epoch %d\n",
		n, stream.Epoch(), stream.Stats().Epoch)

	// --- Step 5: a concurrent batch ---------------------------------------
	batch, err := c.Batch(ctx, []string{queryX1, queryX2, queryX1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch: %d queries, %d rows total, %d plan-cache hits in %v\n",
		batch.Stats.Requests, batch.Stats.Results, batch.Stats.CacheHits,
		batch.Stats.Duration.Round(time.Microsecond))

	// --- Step 6: a live delta over the wire -------------------------------
	ar, err := c.ApplyDelta(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("J._McTiernan", "directed", "Die_Hard"),
		dualsim.T("J._McTiernan", "worked_with", "S._de_Souza"),
	}})
	if err != nil {
		log.Fatal(err)
	}
	out2, err := c.Query(ctx, queryX1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter Apply (+%d triples): epoch %d → %d, (X1) now %d rows\n",
		ar.Stats.Added, out.Epoch, out2.Epoch, len(out2.Rows))
	if len(out2.Rows) != len(out.Rows)+1 || out2.Epoch != ar.Stats.Epoch {
		log.Fatal("post-apply responses are not epoch-consistent")
	}

	// An empty delta is a no-op: the epoch stays, cached plans survive.
	nop, err := c.Apply(ctx, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("empty delta: noOp=%v, epoch still %d\n", nop.Stats.NoOp, nop.Stats.Epoch)

	// --- Step 7: compaction and the snapshot view -------------------------
	if _, err := c.Compact(ctx); err != nil {
		log.Fatal(err)
	}
	snap, err := c.Snapshot(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot: epoch %d, %d triples, overlay %d, %d compaction(s)\n",
		snap.Epoch, snap.Triples, snap.OverlaySize, snap.Compactions)

	// --- Step 8: live metrics ---------------------------------------------
	page, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselected /metrics series:")
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "dualsimd_queries_total") ||
			strings.HasPrefix(line, "dualsimd_plan_cache_hit_rate") ||
			strings.HasPrefix(line, "dualsimd_epoch") ||
			strings.HasPrefix(line, "dualsimd_shed_total") {
			fmt.Printf("  %s\n", line)
		}
	}

	// --- Step 9: graceful drain -------------------------------------------
	srv.StartDrain() // health flips to 503; in-flight work finishes
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != http.ErrServerClosed {
		log.Fatal(err)
	}
	fmt.Println("\ndrained cleanly")
}

// renderRow joins decoded bindings for display (— marks unbound).
func renderRow(vars []string, row []*string) string {
	parts := make([]string, len(vars))
	for i := range vars {
		if row[i] == nil {
			parts[i] = "—"
		} else {
			parts[i] = *row[i]
		}
	}
	return strings.Join(parts, "  ")
}
