// Pruning demonstrates the paper's headline application (Sect. 5) on the
// DBpedia-like dataset: for a join-heavy query, dual simulation removes
// the overwhelming majority of triples, and evaluating on the pruned
// store is faster while producing identical results.
package main

import (
	"fmt"
	"log"
	"time"

	"dualsim"
)

var benchQueries = []struct {
	id, text string
}{
	{"stars+places", `SELECT * WHERE {
		?film <dbo:starring> ?actor .
		?actor <dbo:birthPlace> ?place .
		?place <dbo:locatedIn> ?region . }`},
	{"writers+awards", `SELECT * WHERE {
		?film <dbo:writer> ?writer .
		?writer <dbo:award> ?award .
		OPTIONAL { ?writer <dbo:spouse> ?spouse . } }`},
	{"empty-core", `SELECT * WHERE {
		?person <dbo:award> ?award .
		?award <dbo:director> ?x . }`},
}

func main() {
	st, err := dualsim.GenerateKGStore(4, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DBpedia-like store: %d triples, %d nodes, %d predicates\n\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds())

	for _, bq := range benchQueries {
		q := dualsim.MustParseQuery(bq.text)

		t0 := time.Now()
		p, err := dualsim.Prune(st, q, dualsim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		tPrune := time.Since(t0)
		pruned := p.Store()

		t0 = time.Now()
		full, err := dualsim.Evaluate(st, q, dualsim.HashJoin)
		if err != nil {
			log.Fatal(err)
		}
		tFull := time.Since(t0)

		t0 = time.Now()
		prunedRes, err := dualsim.Evaluate(pruned, q, dualsim.HashJoin)
		if err != nil {
			log.Fatal(err)
		}
		tPruned := time.Since(t0)

		fmt.Printf("query %q:\n", bq.id)
		fmt.Printf("  triples     %8d → %d (%.2f%% pruned, %v pruning time)\n",
			p.Total(), p.Kept(), 100*p.Ratio(), tPrune.Round(time.Microsecond))
		fmt.Printf("  results     %8d (identical on pruned store: %v)\n",
			full.Len(), full.Equal(prunedRes))
		fmt.Printf("  t_DB        %8v\n", tFull.Round(time.Microsecond))
		fmt.Printf("  t_DB_pruned %8v (+ pruning = %v)\n\n",
			tPruned.Round(time.Microsecond),
			(tPruned + tPrune).Round(time.Microsecond))
	}
}
