// Pruning demonstrates the paper's headline application (Sect. 5) on the
// DBpedia-like dataset through the session pipeline: for join-heavy
// queries, dual simulation removes the overwhelming majority of triples,
// and the per-stage ExecStats show the split between pruning time
// (t_SPARQLSIM) and join time (t_DB pruned). A second, pruning-free
// session provides the t_DB baseline on the full store.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dualsim"
)

var benchQueries = []struct {
	id, text string
}{
	{"stars+places", `SELECT * WHERE {
		?film <dbo:starring> ?actor .
		?actor <dbo:birthPlace> ?place .
		?place <dbo:locatedIn> ?region . }`},
	{"writers+awards", `SELECT * WHERE {
		?film <dbo:writer> ?writer .
		?writer <dbo:award> ?award .
		OPTIONAL { ?writer <dbo:spouse> ?spouse . } }`},
	{"empty-core", `SELECT * WHERE {
		?person <dbo:award> ?award .
		?award <dbo:director> ?x . }`},
}

func main() {
	ctx := context.Background()
	st, err := dualsim.GenerateKGStore(4, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DBpedia-like store: %d triples, %d nodes, %d predicates\n\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds())

	// Two sessions over the same store: the pipeline session prunes
	// before evaluating, the baseline session evaluates directly.
	pipeline, err := dualsim.Open(st)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := dualsim.Open(st, dualsim.WithPruning(false))
	if err != nil {
		log.Fatal(err)
	}

	for _, bq := range benchQueries {
		res, stats, err := pipeline.Exec(ctx, bq.text)
		if err != nil {
			log.Fatal(err)
		}

		t0 := time.Now()
		full, _, err := baseline.Exec(ctx, bq.text)
		if err != nil {
			log.Fatal(err)
		}
		tFull := time.Since(t0)

		fmt.Printf("query %q:\n", bq.id)
		fmt.Printf("  triples     %8d → %d (%.2f%% pruned, %v pruning time)\n",
			stats.TriplesBefore, stats.TriplesAfter, 100*stats.PrunedRatio(),
			stats.PruneTime().Round(time.Microsecond))
		fmt.Printf("  results     %8d (identical on pruned store: %v)\n",
			full.Len(), full.Equal(res))
		fmt.Printf("  t_DB        %8v\n", tFull.Round(time.Microsecond))
		fmt.Printf("  t_DB_pruned %8v (+ pruning = %v)\n\n",
			stats.JoinTime().Round(time.Microsecond),
			(stats.JoinTime() + stats.PruneTime()).Round(time.Microsecond))
	}
}
