// Lubm reproduces the paper's §5.3 discussion on the LUBM-like dataset:
// the cyclic queries L0 and L1 (mandatory cores exactly as in Fig. 6),
// their SOI convergence behaviour, and L1's dual-simulation
// over-retention — leftover triples far exceeding the required ones,
// caused by the counterexample effect of Sect. 4.1.
package main

import (
	"fmt"
	"log"
	"time"

	"dualsim"
)

// L0: the advisor/teacher/assistant triangle of Fig. 6(a).
const queryL0 = `SELECT * WHERE {
  ?student <ub:advisor> ?professor .
  ?professor <ub:teacherOf> ?course .
  ?student <ub:teachingAssistantOf> ?course . }`

// L1: the publication constellation of Fig. 6(b).
const queryL1 = `SELECT * WHERE {
  ?publication <rdf:type> <ub:Publication> .
  ?publication <ub:publicationAuthor> ?student .
  ?publication <ub:publicationAuthor> ?professor .
  ?student <ub:degreeFrom> ?university .
  ?professor <ub:worksFor> ?department .
  ?student <ub:memberOf> ?department .
  ?department <ub:subOrganizationOf> ?university . }`

func main() {
	st, err := dualsim.GenerateLUBMStore(8, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LUBM-like store: %d triples, %d nodes, %d predicates\n\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds())

	for _, entry := range []struct{ id, text string }{
		{"L0 (Fig. 6a triangle)", queryL0},
		{"L1 (Fig. 6b publication cycle)", queryL1},
	} {
		q := dualsim.MustParseQuery(entry.text)

		t0 := time.Now()
		rel, err := dualsim.DualSimulate(st, q, dualsim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		simTime := time.Since(t0)
		stats := rel.Stats()

		p, err := dualsim.Prune(st, q, dualsim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		req, err := dualsim.RequiredTriples(st, q, dualsim.HashJoin)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dualsim.Evaluate(st, q, dualsim.HashJoin)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s\n", entry.id)
		fmt.Printf("  SOI solved in %v: %d rounds, %d evaluations, %d updates\n",
			simTime.Round(time.Microsecond), stats.Rounds, stats.Evaluations, stats.Updates)
		fmt.Printf("  results:             %d\n", res.Len())
		fmt.Printf("  required triples:    %d\n", req)
		fmt.Printf("  triples aft pruning: %d (%.2f%% pruned)\n",
			p.Kept(), 100*p.Ratio())
		if req > 0 {
			fmt.Printf("  over-retention:      %.1fx\n", float64(p.Kept())/float64(req))
		}
		fmt.Println()
	}

	fmt.Println("The L1 over-retention illustrates Sect. 4.1: dual simulation keeps")
	fmt.Println("students whose degree university and department mimic a match through")
	fmt.Println("*different* publications — non-transitive relationships appearing")
	fmt.Println("transitive under dual simulation.")
}
