// Lubm reproduces the paper's §5.3 discussion on the LUBM-like dataset
// through the session API: the cyclic queries L0 and L1 (mandatory cores
// exactly as in Fig. 6), their SOI convergence behaviour (read off
// ExecStats.Solver), and L1's dual-simulation over-retention — leftover
// triples far exceeding the required ones, caused by the counterexample
// effect of Sect. 4.1. A deadline on the context bounds the whole
// pipeline run.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dualsim"
)

// L0: the advisor/teacher/assistant triangle of Fig. 6(a).
const queryL0 = `SELECT * WHERE {
  ?student <ub:advisor> ?professor .
  ?professor <ub:teacherOf> ?course .
  ?student <ub:teachingAssistantOf> ?course . }`

// L1: the publication constellation of Fig. 6(b).
const queryL1 = `SELECT * WHERE {
  ?publication <rdf:type> <ub:Publication> .
  ?publication <ub:publicationAuthor> ?student .
  ?publication <ub:publicationAuthor> ?professor .
  ?student <ub:degreeFrom> ?university .
  ?professor <ub:worksFor> ?department .
  ?student <ub:memberOf> ?department .
  ?department <ub:subOrganizationOf> ?university . }`

func main() {
	// A generous deadline: cancellation reaches the solver's round loop
	// and the engines' join loops, so a runaway query cannot hang the
	// process.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	st, err := dualsim.GenerateLUBMStore(8, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LUBM-like store: %d triples, %d nodes, %d predicates\n\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds())

	db, err := dualsim.Open(st)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for _, entry := range []struct{ id, text string }{
		{"L0 (Fig. 6a triangle)", queryL0},
		{"L1 (Fig. 6b publication cycle)", queryL1},
	} {
		pq, err := db.Prepare(entry.text)
		if err != nil {
			log.Fatal(err)
		}
		res, stats, err := pq.Exec(ctx)
		if err != nil {
			log.Fatal(err)
		}
		req, err := dualsim.RequiredTriples(st, pq.Query(), dualsim.HashJoin)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s\n", entry.id)
		fmt.Printf("  prepared in %v (%d inequalities); SOI solved in %v: %d rounds, %d evaluations, %d updates\n",
			pq.PrepareStats().PlanTime.Round(time.Microsecond),
			pq.PrepareStats().Inequalities,
			stats.PruneTime().Round(time.Microsecond),
			stats.Solver.Rounds, stats.Solver.Evaluations, stats.Solver.Updates)
		fmt.Printf("  results:             %d (join %v)\n", res.Len(), stats.JoinTime().Round(time.Microsecond))
		fmt.Printf("  required triples:    %d\n", req)
		fmt.Printf("  triples aft pruning: %d (%.2f%% pruned)\n",
			stats.TriplesAfter, 100*stats.PrunedRatio())
		if req > 0 {
			fmt.Printf("  over-retention:      %.1fx\n", float64(stats.TriplesAfter)/float64(req))
		}
		fmt.Println()
	}

	fmt.Println("The L1 over-retention illustrates Sect. 4.1: dual simulation keeps")
	fmt.Println("students whose degree university and department mimic a match through")
	fmt.Println("*different* publications — non-transitive relationships appearing")
	fmt.Println("transitive under dual simulation.")
}
