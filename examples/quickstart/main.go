// Quickstart walks through the paper's running example with the session
// API: the movie database of Fig. 1(a), query (X1) and its optional
// variant (X2). A session is opened over the store, each query is
// prepared once, and Exec(ctx) runs the pruning pipeline — the
// per-stage ExecStats expose the dual simulation's effect (16 of 20
// triples disqualified) alongside the final solution mappings. Later
// steps show the serving paths: db.Query resolves repeated query text
// through the session's LRU plan cache (only the first call pays parse
// + planning), Apply publishes live updates as epoch-numbered
// snapshots, the session is served over HTTP — the dualsimd subsystem —
// through the typed Go client, the database is made durable (a
// WAL-logged apply survives Close and OpenDir warm-restarts it from
// disk at the same epoch), the store scales out — partitioned over two
// predicate-hash shards with a scatter-gather router answering (X1)
// exactly like the single node — step 10 runs a FILTER + LIMIT
// query through the streaming Volcano executor, printing the cost-based
// planner's decisions and per-operator row counters from ExecStats, and
// step 11 explains a plan without executing it (EXPLAIN) and with real
// executed counters and the request's span tree (EXPLAIN ANALYZE), and
// step 12 reads the server's always-on workload statistics — three
// spellings of (X1) folding into one normalized fingerprint.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/cluster"
	"dualsim/internal/cluster/router"
	"dualsim/internal/server"
)

// fig1a is the example graph database of the paper's Fig. 1(a).
var fig1a = []dualsim.Triple{
	dualsim.T("B._De_Palma", "directed", "Mission:_Impossible"),
	dualsim.T("B._De_Palma", "awarded", "Oscar"),
	dualsim.T("B._De_Palma", "born_in", "Newark"),
	dualsim.T("B._De_Palma", "worked_with", "D._Koepp"),
	dualsim.T("Mission:_Impossible", "genre", "Action"),
	dualsim.T("Goldfinger", "genre", "Action"),
	dualsim.T("G._Hamilton", "directed", "Goldfinger"),
	dualsim.T("G._Hamilton", "born_in", "Paris"),
	dualsim.T("G._Hamilton", "worked_with", "H._Saltzman"),
	dualsim.T("Thunderball", "sequel_of", "Goldfinger"),
	dualsim.T("Thunderball", "awarded", "Oscar"),
	dualsim.T("H._Saltzman", "born_in", "Saint_John"),
	dualsim.T("From_Russia_with_Love", "prequel_of", "Goldfinger"),
	dualsim.T("T._Young", "directed", "From_Russia_with_Love"),
	dualsim.T("T._Young", "awarded", "BAFTA_Awards"),
	dualsim.T("P.R._Hunt", "worked_with", "D._Koepp"),
	dualsim.T("D._Koepp", "directed", "Mortdecai"),
	dualsim.TL("Newark", "population", "277140"),
	dualsim.TL("Paris", "population", "2220445"),
	dualsim.TL("Saint_John", "population", "70063"),
}

const queryX1 = `
SELECT * WHERE {
  ?director <directed> ?movie .
  ?director <worked_with> ?coworker . }`

const queryX2 = `
SELECT * WHERE {
  ?director <directed> ?movie .
  OPTIONAL { ?director <worked_with> ?coworker . } }`

func main() {
	ctx := context.Background()
	st, err := dualsim.FromTriples(fig1a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d triples, %d nodes, %d predicates\n\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds())

	// --- Step 1: open a session ----------------------------------------
	// The session fixes engine and pipeline for every query prepared on
	// it; the default pipeline is dual-sim prune → evaluate. The plan
	// cache holds up to 8 prepared plans for the db.Query serving path.
	db, err := dualsim.Open(st, dualsim.WithEngine(dualsim.HashJoin), dualsim.WithPlanCache(8))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// --- Step 2: the largest dual simulation of (X1) -------------------
	q := dualsim.MustParseQuery(queryX1)
	rel, err := db.DualSimulate(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("largest dual simulation of (X1) — the paper's relation (2):")
	for _, v := range dualsim.QueryVars(q) {
		fmt.Printf("  ?%-10s →", v)
		for _, t := range rel.Candidates(v) {
			fmt.Printf(" %s", t.Value)
		}
		fmt.Println()
	}

	// --- Step 3: prepare once, execute the pipeline --------------------
	pq, err := db.PrepareQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	res, stats, err := pq.Exec(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npruning: %d of %d triples survive (%.0f%% pruned)\n",
		stats.TriplesAfter, stats.TriplesBefore, 100*stats.PrunedRatio())
	fmt.Printf("(X1) results (pruned pipeline, %d rows):\n%s", res.Len(), res.Format(st))

	// Identical to evaluating the full store directly (Theorem 2).
	full, err := db.Evaluate(ctx, st, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identical on the full store: %v\n", full.Equal(res))

	// --- Step 4: the optional variant (X2) ------------------------------
	res2, _, err := db.Exec(ctx, queryX2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(X2) results (%d rows — D. Koepp and T. Young join without a coworker):\n%s",
		res2.Len(), res2.Format(st))

	if res.Len() != 2 || res2.Len() != 4 {
		fmt.Fprintln(os.Stderr, "unexpected result sizes")
		os.Exit(1)
	}

	// --- Step 5: the cached serving path --------------------------------
	// db.Query plans (X1) once and serves every repeat from the LRU plan
	// cache; ExecStats.CacheHit and CacheStats expose the traffic.
	for i := 0; i < 3; i++ {
		if _, stats, err := db.Query(ctx, queryX1); err != nil {
			log.Fatal(err)
		} else if i > 0 && !stats.CacheHit {
			fmt.Fprintln(os.Stderr, "expected a plan cache hit")
			os.Exit(1)
		}
	}
	cs := db.CacheStats()
	fmt.Printf("\nserving (X1) three times: %d plan cache hit(s), %d miss(es), %d plan build(s) total\n",
		cs.Hits, cs.Misses, db.PlanBuilds())

	// --- Step 6: live updates -------------------------------------------
	// Apply publishes a new epoch-numbered snapshot; the epoch-scoped
	// plan cache re-plans, so the same text now returns the new answer,
	// while a snapshot pinned beforehand keeps reading the old epoch.
	pinned := db.Snapshot()
	as, err := db.Apply(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("J._McTiernan", "directed", "Die_Hard"),
		dualsim.T("J._McTiernan", "worked_with", "S._de_Souza"),
	}})
	if err != nil {
		log.Fatal(err)
	}
	newRes, newStats, err := db.Query(ctx, queryX1)
	if err != nil {
		log.Fatal(err)
	}
	oldRes, _, err := pinned.Query(ctx, queryX1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter Apply (+%d triples, epoch %d): (X1) has %d rows at epoch %d, still %d at pinned epoch %d\n",
		as.Added, as.Epoch, newRes.Len(), newStats.Epoch, oldRes.Len(), pinned.Epoch())
	if newRes.Len() != 3 || oldRes.Len() != 2 || newStats.CacheHit {
		fmt.Fprintln(os.Stderr, "live update served inconsistent epochs")
		os.Exit(1)
	}

	// --- Step 7: serving over the network --------------------------------
	// The same session behind the dualsimd HTTP subsystem: NDJSON row
	// streaming, admission control, epoch-tagged responses. In production
	// this is `dualsimd -store db.nt -addr :8321`; here the server runs
	// in-process on a loopback listener and the typed Go client streams
	// (X1). See examples/serving for the full endpoint tour.
	srv, err := server.New(db)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	cl, err := client.New("http://" + ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	stream, err := cl.QueryStream(ctx, queryX1)
	if err != nil {
		log.Fatal(err)
	}
	streamed := 0
	for stream.Next() {
		streamed++
	}
	if err := stream.Err(); err != nil {
		log.Fatal(err)
	}
	stream.Close()
	fmt.Printf("\nserving (X1) over HTTP (dualsimd): %d rows streamed from epoch %d\n",
		streamed, stream.Epoch())
	if streamed != 3 || stream.Epoch() != as.Epoch {
		fmt.Fprintln(os.Stderr, "HTTP serving returned inconsistent results")
		os.Exit(1)
	}
	hs.Close()

	// --- Step 8: durable serving ----------------------------------------
	// With a data dir the database survives restarts: every Apply is
	// WAL-logged (fsync'd) before it is acknowledged, checkpoints roll
	// the log into binary snapshots, and OpenDir warm starts from disk —
	// same epoch, same answers, no N-Triples re-parse. In production this
	// is `dualsimd -store db.nt -data /var/lib/dualsim` (and, restarted,
	// just `dualsimd -data /var/lib/dualsim`).
	dataDir, err := os.MkdirTemp("", "dualsim-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	dur, err := dualsim.Open(st, dualsim.WithDataDir(dataDir), dualsim.WithPlanCache(8))
	if err != nil {
		log.Fatal(err)
	}
	das, err := dur.Apply(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("J._McTiernan", "directed", "Die_Hard"),
		dualsim.T("J._McTiernan", "worked_with", "S._de_Souza"),
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndurable apply: epoch %d, %d WAL bytes fsync'd in %v\n",
		das.Epoch, das.WALBytes, das.FsyncLatency)
	dur.Close()

	warm, err := dualsim.OpenDir(dataDir, dualsim.WithPlanCache(8))
	if err != nil {
		log.Fatal(err)
	}
	defer warm.Close()
	warmRes, warmStats, err := warm.Query(ctx, queryX1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm restart from %s: (X1) has %d rows at epoch %d — no RDF re-parse\n",
		dataDir, warmRes.Len(), warmStats.Epoch)
	if warmRes.Len() != 3 || warmStats.Epoch != das.Epoch {
		fmt.Fprintln(os.Stderr, "warm restart lost state")
		os.Exit(1)
	}

	// --- Step 9: scale out ----------------------------------------------
	// The database partitions over shards by predicate hash — each shard
	// holds EVERY triple of its predicates — and a scatter-gather router
	// speaks the single-node protocol in front of them. In production
	// this is one `dualsimd -store db.nt -shard i/N` per shard behind
	// `dualsimrouter -shard http://… -shard http://…`; here both shards
	// and the router run in-process. See examples/cluster for replicas
	// and failover.
	var shardURLs [][]string
	for i := 0; i < 2; i++ {
		shardStore, err := cluster.ShardStore(st, cluster.ShardSpec{Index: i, N: 2})
		if err != nil {
			log.Fatal(err)
		}
		sdb, err := dualsim.Open(shardStore, dualsim.WithPlanCache(8))
		if err != nil {
			log.Fatal(err)
		}
		defer sdb.Close()
		ssrv, err := server.New(sdb)
		if err != nil {
			log.Fatal(err)
		}
		sln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		shs := &http.Server{Handler: ssrv}
		go shs.Serve(sln)
		defer shs.Close()
		shardURLs = append(shardURLs, []string{"http://" + sln.Addr().String()})
		fmt.Printf("\nshard %d/2: %d of %d triples", i, shardStore.NumTriples(), st.NumTriples())
	}
	rt, err := router.New(shardURLs)
	if err != nil {
		log.Fatal(err)
	}
	rt.Probe(ctx)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	rhs := &http.Server{Handler: rt.Handler()}
	go rhs.Serve(rln)
	defer rhs.Close()
	rcl, err := client.New("http://" + rln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	routed, err := rcl.Query(ctx, queryX1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscatter-gather (X1) through the router: %d rows over 2 shards\n", len(routed.Rows))
	if len(routed.Rows) != 2 { // the original Fig. 1(a) store: De Palma and Hamilton
		fmt.Fprintln(os.Stderr, "router answers diverge from the single node")
		os.Exit(1)
	}

	// --- Step 10: filters, cost-based planning, streaming ---------------
	// The default session engine is the streaming Volcano executor behind
	// the cost-based planner: FILTER and LIMIT/OFFSET are part of the
	// query surface, the planner orders joins sparsest-first and sinks
	// filter conjuncts below the joins that bind their variables, and
	// ExecStats documents each decision plus per-operator row counters.
	// pq.Stream returns a cursor — the first row is available before the
	// last one is computed; dualsimd's ?stream=1 path pulls from the same
	// iterator. See examples/filters for the full query-language surface.
	vdb, err := dualsim.Open(st)
	if err != nil {
		log.Fatal(err)
	}
	defer vdb.Close()
	fpq, err := vdb.Prepare(`
SELECT * WHERE {
  ?director <directed> ?movie .
  ?director <born_in> ?city .
  ?city <population> ?pop .
  FILTER(?pop > 100000 && ?director != <G._Hamilton>) } LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := fpq.Stream(ctx)
	if err != nil {
		log.Fatal(err)
	}
	filtered := 0
	for rows.Next() {
		filtered++
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	rows.Close()
	fstats := rows.Stats()
	fmt.Printf("\nfiltered (X1 + population filter) streams %d row(s)\nplanner decisions:\n", filtered)
	for _, d := range fstats.PlanDecisions {
		fmt.Printf("  %s\n", d)
	}
	fmt.Println("operator tree (execution order, with row counters):")
	for _, op := range fstats.Operators {
		fmt.Printf("  %-9s %-32s rows=%d\n", op.Op, op.Detail, op.Rows)
	}
	if filtered != 1 { // only De Palma: Hamilton is filtered out, the rest lack born_in
		fmt.Fprintln(os.Stderr, "expected exactly B. De Palma through the filter")
		os.Exit(1)
	}

	// --- Step 11: observability — EXPLAIN and tracing -------------------
	// db.Explain compiles a query's plan without executing it; the render
	// is deterministic, so the same text against the same epoch always
	// explains identically. ExplainAnalyze executes with per-operator
	// clocks on and reports real row counts plus the request's span tree
	// — the same tree dualsimd returns for `?trace=1` and the router
	// stitches across shards. See examples/tracing for the distributed
	// version.
	exp, err := vdb.Explain(ctx, queryX1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEXPLAIN (X1):\n%s", exp.Text())
	an, err := vdb.ExplainAnalyze(ctx, queryX1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EXPLAIN ANALYZE (X1):\n%s", an.Text())
	if ev := an.Stats.Trace.Find("evaluate"); ev != nil {
		fmt.Printf("evaluate stage: %v for %d row(s)\n", ev.Duration.Round(time.Microsecond), ev.Counters["out"])
	}

	// --- Step 12: workload statistics ------------------------------------
	// Every dualsimd aggregates per-statement workload statistics —
	// pg_stat_statements for dualsim: executions are keyed by a
	// normalized fingerprint (whitespace, literal values and variable
	// names do not matter), each key accumulating calls, errors, rows,
	// cache hits, latency quantiles and peak buffered memory. The table
	// is always on (the record path is allocation-free) and served at
	// GET /v1/debug/statements; the router merges it across shards;
	// `dualsim -top` renders it live. A per-query memory budget
	// (-maxquerymem / WithMaxQueryMemory) turns the same accounting into
	// an enforcement point: a query whose buffered state outgrows the
	// budget fails with 413 while the daemon keeps serving.
	ssrv, err := server.New(vdb)
	if err != nil {
		log.Fatal(err)
	}
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	shs := &http.Server{Handler: ssrv}
	go shs.Serve(sln)
	scl, err := client.New("http://" + sln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	// The same statement three ways: verbatim, re-whitespaced, renamed
	// variables — one fingerprint, three calls.
	for _, q := range []string{
		queryX1,
		"SELECT * WHERE {?d <directed> ?m.\n\t?d <worked_with> ?c.}",
		`SELECT * WHERE { ?who <directed> ?film . ?who <worked_with> ?with . }`,
	} {
		if _, err := scl.Query(ctx, q); err != nil {
			log.Fatal(err)
		}
	}
	stmts, err := scl.Statements(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload statistics (%d statement(s) tracked):\n", stmts.Tracked)
	for _, s := range stmts.Statements {
		fmt.Printf("  %s calls=%d rows=%d cached=%d p95=%v  %s\n",
			s.Fingerprint, s.Calls, s.Rows, s.CacheHits, s.P95.Round(time.Microsecond), s.Query)
	}
	shs.Close()
	if stmts.Tracked != 1 || stmts.Statements[0].Calls != 3 {
		fmt.Fprintln(os.Stderr, "expected the three spellings to share one fingerprint")
		os.Exit(1)
	}
}
