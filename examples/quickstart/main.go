// Quickstart walks through the paper's running example: the movie
// database of Fig. 1(a), query (X1) and its optional variant (X2),
// computing the largest dual simulation, pruning the database and
// evaluating the query on both versions.
package main

import (
	"fmt"
	"log"
	"os"

	"dualsim"
)

// fig1a is the example graph database of the paper's Fig. 1(a).
var fig1a = []dualsim.Triple{
	dualsim.T("B._De_Palma", "directed", "Mission:_Impossible"),
	dualsim.T("B._De_Palma", "awarded", "Oscar"),
	dualsim.T("B._De_Palma", "born_in", "Newark"),
	dualsim.T("B._De_Palma", "worked_with", "D._Koepp"),
	dualsim.T("Mission:_Impossible", "genre", "Action"),
	dualsim.T("Goldfinger", "genre", "Action"),
	dualsim.T("G._Hamilton", "directed", "Goldfinger"),
	dualsim.T("G._Hamilton", "born_in", "Paris"),
	dualsim.T("G._Hamilton", "worked_with", "H._Saltzman"),
	dualsim.T("Thunderball", "sequel_of", "Goldfinger"),
	dualsim.T("Thunderball", "awarded", "Oscar"),
	dualsim.T("H._Saltzman", "born_in", "Saint_John"),
	dualsim.T("From_Russia_with_Love", "prequel_of", "Goldfinger"),
	dualsim.T("T._Young", "directed", "From_Russia_with_Love"),
	dualsim.T("T._Young", "awarded", "BAFTA_Awards"),
	dualsim.T("P.R._Hunt", "worked_with", "D._Koepp"),
	dualsim.T("D._Koepp", "directed", "Mortdecai"),
	dualsim.TL("Newark", "population", "277140"),
	dualsim.TL("Paris", "population", "2220445"),
	dualsim.TL("Saint_John", "population", "70063"),
}

const queryX1 = `
SELECT * WHERE {
  ?director <directed> ?movie .
  ?director <worked_with> ?coworker . }`

const queryX2 = `
SELECT * WHERE {
  ?director <directed> ?movie .
  OPTIONAL { ?director <worked_with> ?coworker . } }`

func main() {
	st, err := dualsim.FromTriples(fig1a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d triples, %d nodes, %d predicates\n\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds())

	// --- Step 1: the largest dual simulation of (X1) -------------------
	q := dualsim.MustParseQuery(queryX1)
	rel, err := dualsim.DualSimulate(st, q, dualsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("largest dual simulation of (X1) — the paper's relation (2):")
	for _, v := range dualsim.QueryVars(q) {
		fmt.Printf("  ?%-10s →", v)
		for _, t := range rel.Candidates(v) {
			fmt.Printf(" %s", t.Value)
		}
		fmt.Println()
	}

	// --- Step 2: prune the database ------------------------------------
	p, err := dualsim.Prune(st, q, dualsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npruning: %d of %d triples survive (%.0f%% pruned)\n",
		p.Kept(), p.Total(), 100*p.Ratio())

	// --- Step 3: evaluate on full and pruned stores --------------------
	full, err := dualsim.Evaluate(st, q, dualsim.HashJoin)
	if err != nil {
		log.Fatal(err)
	}
	pruned, err := dualsim.Evaluate(p.Store(), q, dualsim.HashJoin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(X1) results (full store, %d rows):\n%s", full.Len(), full.Format(st))
	fmt.Printf("identical on the pruned store: %v\n", full.Equal(pruned))

	// --- Step 4: the optional variant (X2) ------------------------------
	q2 := dualsim.MustParseQuery(queryX2)
	res2, err := dualsim.Evaluate(st, q2, dualsim.HashJoin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(X2) results (%d rows — D. Koepp and T. Young join without a coworker):\n%s",
		res2.Len(), res2.Format(st))

	if full.Len() != 2 || res2.Len() != 4 {
		fmt.Fprintln(os.Stderr, "unexpected result sizes")
		os.Exit(1)
	}
}
