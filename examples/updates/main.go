// Updates walks through the live-update subsystem on a LUBM slice: load
// a generated store, serve a query through the plan cache, apply a delta
// that changes its answer — a new advisor/teacher/assistant triangle and
// a deleted advisor edge — and re-query. The epoch-scoped plan cache
// re-plans on the new snapshot (no stale candidates can survive an
// update), while a Snapshot pinned before the apply keeps answering from
// the old epoch: MVCC-lite with a single writer.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"dualsim"
)

// The L0 triangle of the paper's Fig. 6(a).
const queryL0 = `SELECT * WHERE {
  ?student <ub:advisor> ?professor .
  ?professor <ub:teacherOf> ?course .
  ?student <ub:teachingAssistantOf> ?course . }`

func main() {
	ctx := context.Background()
	st, err := dualsim.GenerateLUBMStore(2, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LUBM slice: %d triples, %d nodes, %d predicates\n\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds())

	// --- Step 1: a serving session over the store ----------------------
	// The plan cache makes repeated texts cheap; the compaction threshold
	// arms automatic consolidation of the update overlay.
	db, err := dualsim.Open(st,
		dualsim.WithPlanCache(16),
		dualsim.WithCompactionThreshold(1<<14))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	res, stats, err := db.Query(ctx, queryL0)
	if err != nil {
		log.Fatal(err)
	}
	before := res.Len()
	fmt.Printf("epoch %d: L0 has %d matches (%.0f%% of triples pruned)\n",
		stats.Epoch, before, 100*stats.PrunedRatio())

	// --- Step 2: pin a snapshot before writing -------------------------
	pinned := db.Snapshot()

	// --- Step 3: apply a delta that changes the answer -----------------
	// A brand-new triangle joins (one new match); deleting one existing
	// advisor edge can only remove matches.
	adds := []dualsim.Triple{
		dualsim.T("NewStudent", "ub:advisor", "NewProf"),
		dualsim.T("NewProf", "ub:teacherOf", "NewCourse"),
		dualsim.T("NewStudent", "ub:teachingAssistantOf", "NewCourse"),
	}
	as, err := db.Apply(ctx, dualsim.Delta{Adds: adds})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplied +%d/−%d triples in %v: epoch %d, overlay %d, %d predicate indexes rebuilt\n",
		as.Added, as.Deleted, as.Duration, as.Epoch, as.OverlaySize, as.TouchedPreds)

	// --- Step 4: re-query — the cache re-plans on the new epoch --------
	res, stats, err = db.Query(ctx, queryL0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %d: L0 has %d matches (cache hit: %v — the epoch key forced a re-plan)\n",
		stats.Epoch, res.Len(), stats.CacheHit)
	if res.Len() != before+1 {
		log.Fatalf("expected %d matches after the delta, got %d", before+1, res.Len())
	}

	// --- Step 5: the pinned snapshot still answers from epoch 0 --------
	oldRes, oldStats, err := pinned.Query(ctx, queryL0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned snapshot (epoch %d): still %d matches\n", oldStats.Epoch, oldRes.Len())
	if oldRes.Len() != before {
		log.Fatalf("pinned snapshot drifted: %d matches, want %d", oldRes.Len(), before)
	}

	// --- Step 6: deletes, and on-demand compaction ---------------------
	as, err = db.Apply(ctx, dualsim.Delta{Dels: adds})
	if err != nil {
		log.Fatal(err)
	}
	res, stats, err = db.Query(ctx, queryL0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreverted the delta: epoch %d, %d matches again\n", stats.Epoch, res.Len())
	if res.Len() != before {
		log.Fatalf("revert failed: %d matches, want %d", res.Len(), before)
	}
	cs, err := db.Compact(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compacted in %v: epoch %d, %d triples, overlay ledger reset\n",
		cs.Duration, cs.Epoch, db.Store().NumTriples())

	fmt.Printf("\nplan cache: %+v\n", db.CacheStats())

	// --- Step 7: durability — checkpoint and warm restart ---------------
	// The steps above lose everything on process exit. With a data dir
	// the same write path is durable: Apply WAL-logs (and fsyncs) every
	// delta before acknowledging it, Checkpoint rolls the log into a
	// binary snapshot, and OpenDir restarts from disk — same epoch, same
	// answers, no re-ingestion of the generated store.
	dataDir, err := os.MkdirTemp("", "dualsim-updates-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	dur, err := dualsim.Open(st, dualsim.WithPlanCache(16), dualsim.WithDataDir(dataDir))
	if err != nil {
		log.Fatal(err)
	}
	das, err := dur.Apply(ctx, dualsim.Delta{Adds: adds})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndurable apply: epoch %d, %d WAL bytes (fsync %v)\n",
		das.Epoch, das.WALBytes, das.FsyncLatency)
	ck, err := dur.Checkpoint(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: epoch %d snapshot (%d bytes), %d WAL bytes reclaimed\n",
		ck.Epoch, ck.SnapshotBytes, ck.WALReclaimed)
	dur.Close()

	warm, err := dualsim.OpenDir(dataDir, dualsim.WithPlanCache(16))
	if err != nil {
		log.Fatal(err)
	}
	defer warm.Close()
	warmRes, warmStats, err := warm.Query(ctx, queryL0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm restart: epoch %d, L0 has %d matches (from snapshot + WAL tail, no RDF re-parse)\n",
		warmStats.Epoch, warmRes.Len())
	if warmStats.Epoch != das.Epoch || warmRes.Len() != before+1 {
		log.Fatalf("warm restart drifted: epoch %d with %d matches, want %d with %d",
			warmStats.Epoch, warmRes.Len(), das.Epoch, before+1)
	}
}
