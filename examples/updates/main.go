// Updates walks through the live-update subsystem on a LUBM slice: load
// a generated store, serve a query through the plan cache, apply a delta
// that changes its answer — a new advisor/teacher/assistant triangle and
// a deleted advisor edge — and re-query. The epoch-scoped plan cache
// re-plans on the new snapshot (no stale candidates can survive an
// update), while a Snapshot pinned before the apply keeps answering from
// the old epoch: MVCC-lite with a single writer.
package main

import (
	"context"
	"fmt"
	"log"

	"dualsim"
)

// The L0 triangle of the paper's Fig. 6(a).
const queryL0 = `SELECT * WHERE {
  ?student <ub:advisor> ?professor .
  ?professor <ub:teacherOf> ?course .
  ?student <ub:teachingAssistantOf> ?course . }`

func main() {
	ctx := context.Background()
	st, err := dualsim.GenerateLUBMStore(2, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LUBM slice: %d triples, %d nodes, %d predicates\n\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds())

	// --- Step 1: a serving session over the store ----------------------
	// The plan cache makes repeated texts cheap; the compaction threshold
	// arms automatic consolidation of the update overlay.
	db, err := dualsim.Open(st,
		dualsim.WithPlanCache(16),
		dualsim.WithCompactionThreshold(1<<14))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	res, stats, err := db.Query(ctx, queryL0)
	if err != nil {
		log.Fatal(err)
	}
	before := res.Len()
	fmt.Printf("epoch %d: L0 has %d matches (%.0f%% of triples pruned)\n",
		stats.Epoch, before, 100*stats.PrunedRatio())

	// --- Step 2: pin a snapshot before writing -------------------------
	pinned := db.Snapshot()

	// --- Step 3: apply a delta that changes the answer -----------------
	// A brand-new triangle joins (one new match); deleting one existing
	// advisor edge can only remove matches.
	adds := []dualsim.Triple{
		dualsim.T("NewStudent", "ub:advisor", "NewProf"),
		dualsim.T("NewProf", "ub:teacherOf", "NewCourse"),
		dualsim.T("NewStudent", "ub:teachingAssistantOf", "NewCourse"),
	}
	as, err := db.Apply(ctx, dualsim.Delta{Adds: adds})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplied +%d/−%d triples in %v: epoch %d, overlay %d, %d predicate indexes rebuilt\n",
		as.Added, as.Deleted, as.Duration, as.Epoch, as.OverlaySize, as.TouchedPreds)

	// --- Step 4: re-query — the cache re-plans on the new epoch --------
	res, stats, err = db.Query(ctx, queryL0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %d: L0 has %d matches (cache hit: %v — the epoch key forced a re-plan)\n",
		stats.Epoch, res.Len(), stats.CacheHit)
	if res.Len() != before+1 {
		log.Fatalf("expected %d matches after the delta, got %d", before+1, res.Len())
	}

	// --- Step 5: the pinned snapshot still answers from epoch 0 --------
	oldRes, oldStats, err := pinned.Query(ctx, queryL0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned snapshot (epoch %d): still %d matches\n", oldStats.Epoch, oldRes.Len())
	if oldRes.Len() != before {
		log.Fatalf("pinned snapshot drifted: %d matches, want %d", oldRes.Len(), before)
	}

	// --- Step 6: deletes, and on-demand compaction ---------------------
	as, err = db.Apply(ctx, dualsim.Delta{Dels: adds})
	if err != nil {
		log.Fatal(err)
	}
	res, stats, err = db.Query(ctx, queryL0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreverted the delta: epoch %d, %d matches again\n", stats.Epoch, res.Len())
	if res.Len() != before {
		log.Fatalf("revert failed: %d matches, want %d", res.Len(), before)
	}
	cs, err := db.Compact(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compacted in %v: epoch %d, %d triples, overlay ledger reset\n",
		cs.Duration, cs.Epoch, db.Store().NumTriples())

	fmt.Printf("\nplan cache: %+v\n", db.CacheStats())
}
