package dualsim

import (
	"context"
	"fmt"
	"strings"

	"dualsim/internal/engine"
	"dualsim/internal/plan"
	"dualsim/internal/trace"
)

// Explain is a query's execution plan, rendered without (EXPLAIN) or
// with (EXPLAIN ANALYZE) an execution behind it. The operator list is
// the compiled iterator tree in post-order with per-node depth — the
// same shape ExecStats.Operators reports — so an analyzed explain's row
// counts are the executed counters, not a re-estimate.
//
// JSON tags are part of the serving wire format (see ExecStats); Text
// renders the deterministic human-readable tree.
//
//dualsim:wire
type Explain struct {
	// Query is the normalized query text the plan was built from.
	Query string `json:"query"`
	// Epoch is the store epoch the plan was compiled against.
	Epoch uint64 `json:"epoch"`
	// Analyzed reports that the query was executed: Operators carries
	// real row counts (and per-operator time) and Stats the execution.
	Analyzed bool `json:"analyzed,omitempty"`
	// Operators is the compiled operator tree, post-order with Depth
	// (see ExecStats.Operators). Rows/NextCalls/Time are zero unless
	// Analyzed.
	Operators []OperatorStats `json:"operators"`
	// Decisions is the cost-based optimizer's decision log.
	Decisions []string `json:"planDecisions,omitempty"`
	// Stats is the full execution report, including the span tree with
	// pipeline-stage timings; only set when Analyzed.
	Stats *ExecStats `json:"stats,omitempty"`
}

// Explain compiles the prepared query's plan against its pinned
// snapshot without executing it. The render is deterministic: the same
// plan (same query text, same epoch) explains identically, cached or
// not. Note the plan is compiled over the full snapshot store — the
// executed plan runs on the dual-simulation-pruned store, so ANALYZE
// estimates can differ from the plain EXPLAIN's.
func (pq *PreparedQuery) Explain(ctx context.Context) (*Explain, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if pq.db.closed.Load() {
		return nil, ErrClosed
	}
	ex, err := engine.Compile(pq.snap.st, pq.q, plan.Options{})
	if err != nil {
		return nil, err
	}
	return &Explain{
		Query:     pq.q.String(),
		Epoch:     pq.snap.epoch,
		Operators: ex.Operators(),
		Decisions: ex.Decisions(),
	}, nil
}

// ExplainAnalyze executes the prepared query with per-operator timing
// and full tracing enabled and reports the executed plan: real row
// counts, Next calls and inclusive per-operator time, plus the
// execution's ExecStats (span tree included).
func (pq *PreparedQuery) ExplainAnalyze(ctx context.Context) (*Explain, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// A private trace turns on the per-operator clocks and the stage
	// spans even when the caller's context carries none.
	sp := trace.SpanFromContext(ctx)
	if sp == nil {
		tr := trace.New("explain")
		sp = tr.Root()
		ctx = trace.ContextWithSpan(ctx, sp)
	}
	recordPrepareSpans(ctx, pq, false)
	_, stats, err := pq.Exec(ctx)
	if err != nil {
		return nil, err
	}
	stats.Trace = sp
	return &Explain{
		Query:     pq.q.String(),
		Epoch:     pq.snap.epoch,
		Analyzed:  true,
		Operators: stats.Operators,
		Decisions: stats.PlanDecisions,
		Stats:     stats,
	}, nil
}

// Explain resolves src through the session's plan cache and explains it
// without executing — the serving layer's EXPLAIN. A cached plan
// explains identically to its first explain (same epoch, same text).
func (db *DB) Explain(ctx context.Context, src string) (*Explain, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	pq, _, err := db.prepareCached(db.snap.Load(), src, false)
	if err != nil {
		return nil, err
	}
	return pq.Explain(ctx)
}

// ExplainAnalyze resolves src through the session's plan cache and
// executes it with timing — the serving layer's EXPLAIN ANALYZE.
func (db *DB) ExplainAnalyze(ctx context.Context, src string) (*Explain, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	pq, hit, err := db.prepareCached(db.snap.Load(), src, false)
	if err != nil {
		return nil, err
	}
	ex, err := pq.ExplainAnalyze(ctx)
	if err != nil {
		return nil, err
	}
	ex.Stats.CacheHit = hit
	return ex, nil
}

// explainNode is one operator with its children resolved, for the text
// render.
type explainNode struct {
	op       OperatorStats
	children []*explainNode
}

// operatorTree rebuilds the plan-tree shape from the post-order
// operator list and each entry's Depth (the inverse of the executor's
// registration walk — see Exec.Operators).
func operatorTree(ops []OperatorStats) []*explainNode {
	pending := make(map[int][]*explainNode)
	for _, op := range ops {
		n := &explainNode{op: op, children: pending[op.Depth+1]}
		delete(pending, op.Depth+1)
		pending[op.Depth] = append(pending[op.Depth], n)
	}
	return pending[0]
}

// Text renders the plan as an indented tree, one operator per line,
// outermost first — stable across renders of the same plan. Analyzed
// explains append the executed counters to each line.
func (e *Explain) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- epoch %d\n", e.Epoch)
	for _, d := range e.Decisions {
		fmt.Fprintf(&b, "-- %s\n", d)
	}
	for _, n := range operatorTree(e.Operators) {
		e.renderNode(&b, n, 0)
	}
	return b.String()
}

func (e *Explain) renderNode(b *strings.Builder, n *explainNode, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.op.Op)
	if n.op.Detail != "" {
		b.WriteString(" ")
		b.WriteString(n.op.Detail)
	}
	if n.op.EstRows > 0 {
		fmt.Fprintf(b, " (est %.0f)", n.op.EstRows)
	}
	if e.Analyzed {
		fmt.Fprintf(b, " [rows=%d nextCalls=%d", n.op.Rows, n.op.NextCalls)
		if n.op.Time > 0 {
			fmt.Fprintf(b, " time=%s", n.op.Time)
		}
		b.WriteString("]")
	}
	b.WriteByte('\n')
	for _, c := range n.children {
		e.renderNode(b, c, depth+1)
	}
}
