package dualsim_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"dualsim"
	"dualsim/internal/queries"
)

const durableQueryX1 = `SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }`

func durableDelta(i int) dualsim.Delta {
	return dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T(fmt.Sprintf("dur:s%d", i), "dur:edge", fmt.Sprintf("dur:o%d", i)),
	}}
}

// TestDurableSessionWarmRestart is the round-trip the tentpole exists
// for: applies on a durable session survive Close, and OpenDir resumes
// at the same epoch with the same query answers — without the original
// store.
func TestDurableSessionWarmRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st, dualsim.WithDataDir(dir), dualsim.WithPlanCache(4))
	if err != nil {
		t.Fatal(err)
	}
	if !db.Durable() {
		t.Fatal("session not durable")
	}
	res, _, err := db.Query(ctx, durableQueryX1)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := res.Len()

	for i := 0; i < 5; i++ {
		as, err := db.Apply(ctx, durableDelta(i))
		if err != nil {
			t.Fatal(err)
		}
		if as.WALBytes <= 0 {
			t.Fatalf("apply %d: WALBytes = %d, want > 0", i, as.WALBytes)
		}
	}
	// One delta that changes the X1 answer.
	if _, err := db.Apply(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("J._McTiernan", "directed", "Die_Hard"),
		dualsim.T("J._McTiernan", "worked_with", "S._de_Souza"),
	}}); err != nil {
		t.Fatal(err)
	}
	res, _, err = db.Query(ctx, durableQueryX1)
	if err != nil {
		t.Fatal(err)
	}
	wantRows = res.Len()
	wantEpoch := db.Epoch()
	ps := db.PersistStats()
	if !ps.Durable || ps.WALRecords != 6 || ps.WALBytes <= 0 {
		t.Fatalf("persist stats: %+v", ps)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm restart: no original store in sight.
	db2, err := dualsim.OpenDir(dir, dualsim.WithPlanCache(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Epoch() != wantEpoch {
		t.Fatalf("epoch after restart: %d, want %d", db2.Epoch(), wantEpoch)
	}
	res, stats, err := db2.Query(ctx, durableQueryX1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != wantRows || stats.Epoch != wantEpoch {
		t.Fatalf("restarted answers: %d rows at epoch %d, want %d at %d",
			res.Len(), stats.Epoch, wantRows, wantEpoch)
	}
	// The restarted session keeps the same WAL going.
	as, err := db2.Apply(ctx, durableDelta(99))
	if err != nil {
		t.Fatal(err)
	}
	if as.Epoch != wantEpoch+1 {
		t.Fatalf("post-restart apply epoch %d, want %d", as.Epoch, wantEpoch+1)
	}
}

// TestDurableCheckpointSkipsReplay pins the checkpoint contract: after
// Checkpoint the WAL is empty and OpenDir boots straight from the
// snapshot at the same epoch.
func TestDurableCheckpointSkipsReplay(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st, dualsim.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Apply(ctx, durableDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	cs, err := db.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Epoch != 3 || cs.SnapshotBytes <= 0 || cs.WALReclaimed <= 0 {
		t.Fatalf("checkpoint stats: %+v", cs)
	}
	if ps := db.PersistStats(); ps.WALRecords != 0 || ps.LastCheckpointEpoch != 3 {
		t.Fatalf("post-checkpoint persist stats: %+v", ps)
	}
	db.Close()

	db2, err := dualsim.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Epoch() != 3 {
		t.Fatalf("epoch after checkpointed restart: %d, want 3", db2.Epoch())
	}
	if db2.Store().NumTriples() != st.NumTriples()+3 {
		t.Fatalf("triples after restart: %d, want %d", db2.Store().NumTriples(), st.NumTriples()+3)
	}
}

// TestDurableCheckpointEveryAndCompact covers the two automatic
// checkpoint triggers: the WithCheckpointEvery record threshold and the
// checkpoint-on-Compact rule.
func TestDurableCheckpointEveryAndCompact(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st, dualsim.WithDataDir(dir), dualsim.WithCheckpointEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	as, err := db.Apply(ctx, durableDelta(0))
	if err != nil || as.Checkpointed {
		t.Fatalf("first apply: %+v, %v", as, err)
	}
	as, err = db.Apply(ctx, durableDelta(1))
	if err != nil || !as.Checkpointed {
		t.Fatalf("second apply should checkpoint: %+v, %v", as, err)
	}
	if ps := db.PersistStats(); ps.WALRecords != 0 || ps.LastCheckpointEpoch != 2 {
		t.Fatalf("persist stats after auto-checkpoint: %+v", ps)
	}
	// Compact always checkpoints on a durable session.
	cs, err := db.Compact(ctx)
	if err != nil || !cs.Checkpointed || cs.WALBytes <= 0 {
		t.Fatalf("compact: %+v, %v", cs, err)
	}
	if ps := db.PersistStats(); ps.LastCheckpointEpoch != 3 || ps.WALRecords != 0 {
		t.Fatalf("persist stats after compact: %+v", ps)
	}
}

// TestDurableOpenErrors pins the boot-path error contract.
func TestDurableOpenErrors(t *testing.T) {
	dir := t.TempDir()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	// OpenDir on an empty dir: nothing to recover.
	if _, err := dualsim.OpenDir(dir); err == nil {
		t.Fatal("OpenDir on an empty dir succeeded")
	}
	db, err := dualsim.Open(st, dualsim.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	// Open (cold start) over a dir that already holds a store is refused.
	if _, err := dualsim.Open(st, dualsim.WithDataDir(dir)); err == nil {
		t.Fatal("Open over an existing durable dir succeeded")
	}
	// Checkpoint on a non-durable session.
	plain, err := dualsim.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.Checkpoint(context.Background()); !errors.Is(err, dualsim.ErrNotDurable) {
		t.Fatalf("Checkpoint on non-durable session: %v", err)
	}
	if plain.Durable() {
		t.Fatal("plain session claims durability")
	}
}
