package dualsim

import (
	"fmt"

	"dualsim/internal/core"
)

// Option configures a session opened with Open. Options replace the flat
// Options struct of the one-shot API: the solver switches (strategy,
// ordering, initialization, compression, parallelism) and the pipeline
// composition (engine choice, pruning, fingerprint pre-filter) are all
// fixed per session, so every query prepared on the session inherits
// them.
type Option func(*settings) error

// settings is the resolved session configuration.
type settings struct {
	engine       EngineKind
	strategy     Strategy
	declOrder    bool
	plainInit    bool
	compressed   bool
	shortCircuit bool
	workers      int

	pruning      bool
	fingerprint  bool
	fingerprintK int

	planCache    int // > 0 enables the LRU plan cache with that capacity
	batchWorkers int // > 0 fixes the ExecBatch pool width

	compactThreshold int // > 0 arms automatic overlay compaction

	dataDir         string // non-empty makes the session durable (snapshot + WAL)
	checkpointEvery int    // > 0 checkpoints automatically every n WAL records

	maxQueryMemory int64 // > 0 caps per-query buffered bytes in the Volcano executor

	stages []Stage // non-nil overrides the default pipeline composition
}

func defaultSettings() settings {
	return settings{engine: Volcano, pruning: true}
}

// coreConfig lowers the session settings to the solver configuration,
// through the legacy Options mapping so the two paths cannot diverge.
func (s settings) coreConfig() core.Config {
	return Options{
		Strategy:         s.strategy,
		DeclarationOrder: s.declOrder,
		PlainInit:        s.plainInit,
		Compressed:       s.compressed,
		ShortCircuit:     s.shortCircuit,
		Workers:          s.workers,
	}.config()
}

// WithEngine selects the evaluation engine of the pipeline's final stage
// (default Volcano).
func WithEngine(k EngineKind) Option {
	return func(s *settings) error {
		switch k {
		case HashJoin, IndexNL, Reference, Volcano:
			s.engine = k
			return nil
		default:
			return fmt.Errorf("dualsim: unknown engine kind %d", k)
		}
	}
}

// WithStrategy selects the ×b evaluation strategy of the solver (default
// AutoStrategy, the paper's popcount heuristic).
func WithStrategy(st Strategy) Option {
	return func(s *settings) error {
		switch st {
		case AutoStrategy, RowWiseStrategy, ColWiseStrategy:
			s.strategy = st
			return nil
		default:
			return fmt.Errorf("dualsim: unknown strategy %d", st)
		}
	}
}

// WithDeclarationOrder disables the sparsest-first inequality ordering
// (ablation switch; the ordering itself is planned once per prepared
// query).
func WithDeclarationOrder() Option {
	return func(s *settings) error { s.declOrder = true; return nil }
}

// WithPlainInit disables the summary-vector initialization (13).
func WithPlainInit() Option {
	return func(s *settings) error { s.plainInit = true; return nil }
}

// WithCompressed solves on gap-length encoded matrices (§5.1 storage
// ablation).
func WithCompressed() Option {
	return func(s *settings) error { s.compressed = true; return nil }
}

// WithShortCircuit stops a solve as soon as the query is proven
// unsatisfiable (an empty mandatory variable, Theorem 1).
func WithShortCircuit() Option {
	return func(s *settings) error { s.shortCircuit = true; return nil }
}

// WithWorkers parallelizes each bit-matrix multiplication over n
// goroutines.
func WithWorkers(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("dualsim: negative worker count %d", n)
		}
		s.workers = n
		return nil
	}
}

// WithPruning enables or disables the dual-simulation pruning stage of
// the execution pipeline (default enabled — the paper's headline
// application). With pruning disabled, Exec evaluates directly on the
// session store.
func WithPruning(enabled bool) Option {
	return func(s *settings) error { s.pruning = enabled; return nil }
}

// WithFingerprint enables the fingerprint pre-filter stage: Open
// refines the store into k-bounded bisimulation classes (k < 0 refines
// to the fixpoint) and condenses it into a summary graph once; Prepare
// then lifts summary-level candidates per query variable, and Exec
// starts the exact solver from those tightened bounds. Sound: the
// lifted sets over-approximate the largest dual simulation.
// The pre-filter feeds the pruning stage and is ignored when pruning is
// disabled.
func WithFingerprint(k int) Option {
	return func(s *settings) error {
		s.fingerprint = true
		s.fingerprintK = k
		return nil
	}
}

// WithPlanCache equips the session with an LRU cache of up to n prepared
// plans, keyed by whitespace-normalized query text. DB.Query (and
// ExecBatch requests given as text) consult it: a hit skips parsing, SOI
// lowering and fingerprint lifting and executes the cached PreparedQuery
// directly; a miss plans once and caches. n = 0 (the default) disables
// the cache. Inspect traffic with DB.CacheStats.
func WithPlanCache(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("dualsim: negative plan cache capacity %d", n)
		}
		s.planCache = n
		return nil
	}
}

// WithCompactionThreshold arms automatic compaction of the live-update
// overlay: once the ledger of staged adds and tombstoned deletes (see
// Apply) holds n or more entries, the next Apply compacts the store into
// a pristine snapshot — fresh dictionary, no tombstone slack — as part
// of the same epoch step. n = 0 (the default) leaves compaction to
// explicit Compact calls. ApplyStats.Compacted reports when it ran.
func WithCompactionThreshold(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("dualsim: negative compaction threshold %d", n)
		}
		s.compactThreshold = n
		return nil
	}
}

// WithDataDir makes the session durable: Open writes an initial
// checkpoint of the store into dir (refusing a dir that already holds
// one — warm starts go through OpenDir) and every subsequent Apply or
// Compact is recorded in an fsync'd write-ahead log before it is
// acknowledged, so an acknowledged delta survives a crash. Checkpoint —
// or WithCheckpointEvery — rolls the WAL into a fresh snapshot; a
// restart via OpenDir loads the latest snapshot and replays the WAL
// tail instead of re-ingesting the original RDF input. See
// internal/persist for the on-disk format.
func WithDataDir(dir string) Option {
	return func(s *settings) error {
		if dir == "" {
			return fmt.Errorf("dualsim: empty data dir")
		}
		s.dataDir = dir
		return nil
	}
}

// WithCheckpointEvery arms automatic checkpointing on a durable session
// (WithDataDir/OpenDir): once n WAL records have accumulated since the
// last checkpoint, the next Apply rolls them into a fresh snapshot and
// truncates the log, bounding both recovery time and WAL growth. n = 0
// (the default) leaves checkpointing to explicit Checkpoint calls and
// Compact. ApplyStats.Checkpointed reports when it ran.
func WithCheckpointEvery(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("dualsim: negative checkpoint interval %d", n)
		}
		s.checkpointEvery = n
		return nil
	}
}

// WithMaxQueryMemory caps the memory one execution may buffer inside the
// streaming Volcano executor — hash-join build sides, DISTINCT and
// LIMIT/OFFSET seen-sets — at n bytes (estimated; see
// ExecStats.Resources for the cost model's per-operator attribution).
// An execution that exceeds the budget fails with ErrQueryMemoryExceeded
// instead of growing without bound; dualsimd maps the error to HTTP 413.
// n = 0 (the default) leaves queries unbudgeted. The budget applies to
// the Volcano engine's buffering only — the materializing engines and
// the solver are not metered.
func WithMaxQueryMemory(n int64) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("dualsim: negative query memory budget %d", n)
		}
		s.maxQueryMemory = n
		return nil
	}
}

// WithBatchWorkers fixes the width of the session's ExecBatch worker
// pool (default GOMAXPROCS). Per call, BatchWorkers overrides it.
func WithBatchWorkers(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("dualsim: negative batch worker count %d", n)
		}
		s.batchWorkers = n
		return nil
	}
}

// WithStages overrides the default pipeline composition with an explicit
// stage sequence (see FingerprintStage, PruneStage, EvaluateStage). The
// default is equivalent to
//
//	WithStages(FingerprintStage(), PruneStage(), EvaluateStage())
//
// minus the stages the session configuration disables. A pipeline
// without EvaluateStage yields Exec calls that return a nil Result —
// useful for pruning-only services.
func WithStages(stages ...Stage) Option {
	return func(s *settings) error {
		if len(stages) == 0 {
			return fmt.Errorf("dualsim: WithStages requires at least one stage")
		}
		s.stages = append([]Stage(nil), stages...)
		return nil
	}
}

// WithOptions imports a legacy flat Options value into the session
// configuration — the bridge for code migrating from the one-shot API.
func WithOptions(o Options) Option {
	return func(s *settings) error {
		s.strategy = o.Strategy
		s.declOrder = o.DeclarationOrder
		s.plainInit = o.PlainInit
		s.compressed = o.Compressed
		s.shortCircuit = o.ShortCircuit
		s.workers = o.Workers
		return nil
	}
}
