package dualsim

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"sync"
	"time"

	"dualsim/internal/trace"
)

// BatchRequest is one query of an ExecBatch call.
type BatchRequest struct {
	// Src is the query text. It is resolved through the session's plan
	// cache when one is configured (WithPlanCache), so repeated texts in
	// and across batches plan once.
	Src string
	// Prepared, when non-nil, is executed directly and Src is ignored —
	// the fast path for callers that manage prepared queries themselves.
	Prepared *PreparedQuery
}

// BatchResult is the outcome of one BatchRequest, at the same index.
type BatchResult struct {
	// Result and Stats are the request's execution outcome, as from
	// PreparedQuery.Exec; both are nil when Err is set.
	Result *Result
	Stats  *ExecStats
	// Store is the snapshot the request answered from (the epoch in
	// Stats.Epoch). Result rows must be decoded against this store, not
	// the session's current one: requests of one batch may span two
	// epochs when an Apply lands mid-batch, and a compaction renumbers
	// every node id.
	Store *Store
	// Err is the request's failure: a parse/plan error, an execution
	// error, or the batch context's error for requests cancelled (or
	// never started) after the batch was aborted.
	Err error
}

// BatchStats aggregates the outcome of one batch execution. JSON tags
// are part of the serving wire format (see ExecStats).
//
//dualsim:wire
type BatchStats struct {
	// Requests is the number of requests in the batch; Failed how many
	// carried an error.
	Requests int `json:"requests"`
	Failed   int `json:"failed,omitempty"`
	// CacheHits counts requests served from the plan cache.
	CacheHits int `json:"cacheHits"`
	// Results is the total number of solution mappings across the batch.
	Results int `json:"results"`
	// Duration is the caller-observed wall time of the whole batch (0
	// when summarized without timing).
	Duration time.Duration `json:"duration"`
	// Trace is the batch's span tree when tracing was enabled on the
	// serving request: one child per batch query, each carrying its
	// pipeline and operator spans. Nil by default.
	Trace *trace.Span `json:"trace,omitempty"`
}

// SummarizeBatch folds per-request batch results into a BatchStats.
// elapsed is the caller-measured wall time of the ExecBatch call.
func SummarizeBatch(out []BatchResult, elapsed time.Duration) BatchStats {
	bs := BatchStats{Requests: len(out), Duration: elapsed}
	for i := range out {
		if out[i].Err != nil {
			bs.Failed++
			continue
		}
		if out[i].Stats != nil {
			if out[i].Stats.CacheHit {
				bs.CacheHits++
			}
			bs.Results += out[i].Stats.Results
		}
	}
	return bs
}

// BatchOption configures one ExecBatch call.
type BatchOption func(*batchConfig)

type batchConfig struct {
	failFast bool
	workers  int
}

// BatchFailFast aborts the batch on the first per-request error: the
// remaining requests are cancelled, and ExecBatch returns that first
// error. Without it ExecBatch collects — every request runs and reports
// its own BatchResult.Err.
func BatchFailFast() BatchOption {
	return func(c *batchConfig) { c.failFast = true }
}

// BatchWorkers overrides the session's batch width (WithBatchWorkers)
// for one call.
func BatchWorkers(n int) BatchOption {
	return func(c *batchConfig) { c.workers = n }
}

// errEmptyRequest reports a BatchRequest with neither Src nor Prepared.
var errEmptyRequest = errors.New("dualsim: batch request has neither Src nor Prepared")

// ExecBatch executes a slice of queries concurrently over the session's
// worker pool (WithBatchWorkers, default GOMAXPROCS) and returns one
// BatchResult per request, positionally. Request texts go through the
// session's plan cache when one is configured.
//
// Error semantics are collect-by-default: each request carries its own
// BatchResult.Err and ExecBatch returns a nil error unless the session
// is closed or ctx is cancelled (then ctx.Err() is returned and
// not-yet-started requests are marked with it). With BatchFailFast the
// first per-request error additionally cancels the rest of the batch and
// is returned as the call's error.
func (db *DB) ExecBatch(ctx context.Context, reqs []BatchRequest, opts ...BatchOption) ([]BatchResult, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := batchConfig{workers: db.set.batchWorkers}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	if cfg.workers > len(reqs) {
		cfg.workers = len(reqs)
	}
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}

	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	parent := trace.SpanFromContext(ctx)
	idx := make(chan int)
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				sctx := bctx
				sp := parent.StartChild("batch.query")
				if sp != nil {
					sp.SetAttr("index", strconv.Itoa(i))
					sctx = trace.ContextWithSpan(bctx, sp)
				}
				out[i] = db.execOne(sctx, reqs[i])
				sp.End()
				if out[i].Err != nil {
					err := out[i].Err
					errOnce.Do(func() {
						firstErr = err
						if cfg.failFast {
							cancel()
						}
					})
				}
			}
		}()
	}
feed:
	for i := range reqs {
		select {
		case idx <- i:
		case <-bctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	// Requests the abort raced past never produced a result; mark them
	// with the batch error instead of leaving silent zero values.
	if err := bctx.Err(); err != nil {
		for i := range out {
			if out[i].Result == nil && out[i].Stats == nil && out[i].Err == nil {
				out[i].Err = err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if cfg.failFast && firstErr != nil {
		return out, firstErr
	}
	return out, nil
}

// execOne resolves and executes a single batch request. Each request
// resolves the session snapshot exactly once, at planning, so it is
// answered from a single consistent epoch even when an Apply lands
// mid-batch (requests of one batch may then span two epochs — each
// reports its own in ExecStats.Epoch).
func (db *DB) execOne(ctx context.Context, req BatchRequest) BatchResult {
	pq, hit := req.Prepared, false
	if pq == nil {
		if req.Src == "" {
			return BatchResult{Err: errEmptyRequest}
		}
		var err error
		pq, hit, err = db.prepareCached(db.snap.Load(), req.Src, false)
		if err != nil {
			return BatchResult{Err: err}
		}
	}
	recordPrepareSpans(ctx, pq, hit)
	res, stats, err := pq.Exec(ctx)
	if err != nil {
		return BatchResult{Err: err}
	}
	stats.CacheHit = hit
	return BatchResult{Result: res, Stats: stats, Store: pq.snap.st}
}
