package dualsim

import "testing"

// TestNormalizeQuery: the cache key collapses only whitespace the lexer
// ignores — quoted literals and IRIs keep theirs, comments drop but
// still separate tokens. Two texts share a key iff they lex identically.
func TestNormalizeQuery(t *testing.T) {
	same := [][2]string{
		{"SELECT * WHERE { ?a <p> ?b . }", "  SELECT\n*\tWHERE  {\n?a <p> ?b\n.\n} "},
		{"SELECT * WHERE { ?a <p> ?b . }", "SELECT * WHERE { # comment\n ?a <p> ?b . }"},
		{"a b", "a#x\nb"}, // a comment separates tokens like whitespace
	}
	for _, c := range same {
		if normalizeQuery(c[0]) != normalizeQuery(c[1]) {
			t.Errorf("keys differ:\n  %q -> %q\n  %q -> %q", c[0], normalizeQuery(c[0]), c[1], normalizeQuery(c[1]))
		}
	}
	distinct := [][2]string{
		// Whitespace inside a literal is significant.
		{`{ ?x <name> "a b" . }`, `{ ?x <name> "a  b" . }`},
		{`{ ?x <name> "a b" . }`, `{ ?x <name> 'a  b' . }`},
		// An escaped quote does not close the literal.
		{`{ ?x <name> "a\" b" . }`, `{ ?x <name> "a\"  b" . }`},
		// '#' inside an IRI is not a comment; IRI whitespace is kept.
		{`{ ?x <http://e/p#a> ?y . }`, `{ ?x <http://e/p#b> ?y . }`},
		{`{ ?x <p a> ?y . }`, `{ ?x <p  a> ?y . }`},
		// A commented-out pattern is not an active one.
		{"{ ?a <p> ?b . ?c <q> ?d . }", "{ ?a <p> ?b . # ?c <q> ?d .\n}"},
	}
	for _, c := range distinct {
		if normalizeQuery(c[0]) == normalizeQuery(c[1]) {
			t.Errorf("distinct queries collide on key %q:\n  %q\n  %q", normalizeQuery(c[0]), c[0], c[1])
		}
	}
	// Unterminated trailing regions must not panic or loop.
	for _, src := range []string{`{ "unterminated`, `{ <unterminated`, `x \`, "#only a comment", ""} {
		_ = normalizeQuery(src)
	}
}

// TestQueryLiteralWhitespaceDistinct: end-to-end guard for the key rule —
// two queries differing only inside a string literal must not share a
// cached plan.
func TestQueryLiteralWhitespaceDistinct(t *testing.T) {
	st, err := FromTriples([]Triple{
		TL("s1", "name", "a b"),
		TL("s2", "name", "a  b"),
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(st, WithPlanCache(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	r1, _, err := db.Query(nil, `SELECT * WHERE { ?x <name> "a b" . }`)
	if err != nil {
		t.Fatal(err)
	}
	r2, stats, err := db.Query(nil, `SELECT * WHERE { ?x <name> "a  b" . }`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHit {
		t.Fatal("literal-differing query served from the cache")
	}
	if r1.Len() != 1 || r2.Len() != 1 || r1.Equal(r2) {
		t.Fatalf("results wrong: %v / %v", r1.Rows, r2.Rows)
	}
}
