package dualsim_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"dualsim"
	"dualsim/internal/queries"
)

func fig1a(t *testing.T) *dualsim.Store {
	t.Helper()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPublicAPIQuickstart(t *testing.T) {
	st := fig1a(t)
	q, err := dualsim.ParseQuery(queries.QueryX1)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Dual simulation: candidate sets.
	rel, err := dualsim.DualSimulate(st, q, dualsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Empty() {
		t.Fatal("X1 relation should be non-empty")
	}
	got := termValues(rel.Candidates("director"))
	want := []string{"B._De_Palma", "G._Hamilton"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("directors = %v, want %v", got, want)
	}
	if rel.CandidateCount("movie") != 2 {
		t.Fatalf("movies = %d", rel.CandidateCount("movie"))
	}
	if rel.Stats().Rounds < 1 {
		t.Fatal("stats missing")
	}

	// 2. Pruning: 16 of 20 triples disqualified.
	p, err := dualsim.Prune(st, q, dualsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kept() != 4 || p.Total() != 20 {
		t.Fatalf("kept/total = %d/%d", p.Kept(), p.Total())
	}
	if p.Ratio() != 0.8 {
		t.Fatalf("ratio = %f", p.Ratio())
	}

	// 3. Evaluation, full vs. pruned: identical results.
	full, err := dualsim.Evaluate(st, q, dualsim.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := dualsim.Evaluate(p.Store(), q, dualsim.IndexNL)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != 2 || !full.Equal(pruned) {
		t.Fatalf("full %d rows vs pruned %d rows", full.Len(), pruned.Len())
	}

	// 4. Required triples = kept triples on this example.
	req, err := dualsim.RequiredTriples(st, q, dualsim.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	if req != 4 {
		t.Fatalf("required = %d", req)
	}
}

func termValues(ts []dualsim.Term) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Value
	}
	sort.Strings(out)
	return out
}

func TestPublicAPIPattern(t *testing.T) {
	st := fig1a(t)
	p := dualsim.NewPattern().
		Edge("director", "directed", "movie").
		Edge("movie", "genre", "g")
	p.Bind("g", dualsim.IRI("Action"))
	if p.IsCyclic() {
		t.Fatal("pattern is acyclic")
	}
	rel, err := dualsim.SimulatePattern(st, p, dualsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Empty() {
		t.Fatal("relation should be non-empty")
	}
	movies := termValues(rel.Candidates("movie"))
	if strings.Join(movies, ",") != "Goldfinger,Mission:_Impossible" {
		t.Fatalf("movies = %v", movies)
	}
}

func TestPublicAPIAllOptions(t *testing.T) {
	st := fig1a(t)
	q := dualsim.MustParseQuery(queries.QueryX2)
	variants := []dualsim.Options{
		{},
		{Strategy: dualsim.RowWiseStrategy},
		{Strategy: dualsim.ColWiseStrategy},
		{DeclarationOrder: true},
		{PlainInit: true},
		{Compressed: true},
		{ShortCircuit: true},
		{Workers: 4},
		{Workers: 4, Strategy: dualsim.ColWiseStrategy},
	}
	var baselineCount int
	for i, opts := range variants {
		rel, err := dualsim.DualSimulate(st, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		c := rel.CandidateCount("director")
		if i == 0 {
			baselineCount = c
			continue
		}
		if c != baselineCount {
			t.Fatalf("options %+v changed the relation: %d vs %d", opts, c, baselineCount)
		}
	}
}

func TestPublicAPINTriplesRoundTrip(t *testing.T) {
	st := fig1a(t)
	var buf bytes.Buffer
	if err := dualsim.DumpNTriples(&buf, st); err != nil {
		t.Fatal(err)
	}
	st2, err := dualsim.LoadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.NumTriples() != st.NumTriples() {
		t.Fatalf("roundtrip lost triples: %d vs %d", st2.NumTriples(), st.NumTriples())
	}
	ts, err := dualsim.ReadTriples(strings.NewReader("<a> <p> <b> ."))
	if err != nil || len(ts) != 1 {
		t.Fatalf("ReadTriples = %v, %v", ts, err)
	}
}

func TestPublicAPIQueryAnalyses(t *testing.T) {
	q := dualsim.MustParseQuery(queries.QueryX2)
	if got := dualsim.QueryVars(q); len(got) != 3 {
		t.Fatalf("QueryVars = %v", got)
	}
	if got := dualsim.MandatoryVars(q); len(got) != 2 {
		t.Fatalf("MandatoryVars = %v", got)
	}
	if !dualsim.IsWellDesigned(q) {
		t.Fatal("X2 is well-designed")
	}
	if dualsim.IsWellDesigned(dualsim.MustParseQuery(queries.QueryX3)) {
		t.Fatal("X3 is not well-designed")
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	lubm, err := dualsim.GenerateLUBMStore(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lubm.NumTriples() < 500 {
		t.Fatalf("LUBM too small: %d", lubm.NumTriples())
	}
	kg, err := dualsim.GenerateKGStore(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if kg.NumTriples() < 2000 {
		t.Fatalf("KG too small: %d", kg.NumTriples())
	}
	if len(dualsim.GenerateLUBM(1, 3)) != lubm.NumTriples() {
		// Generator emits unique triples only if dedup is a no-op; allow
		// slight slack from dedup.
		if len(dualsim.GenerateLUBM(1, 3)) < lubm.NumTriples() {
			t.Fatal("triple slice smaller than store")
		}
	}
	if dualsim.HashJoin.String() != "hashjoin" || dualsim.IndexNL.String() != "indexnl" {
		t.Fatal("engine names changed")
	}
}

func TestPublicAPINilStore(t *testing.T) {
	q := dualsim.MustParseQuery(`SELECT * WHERE { ?s <p> ?o }`)
	if _, err := dualsim.Prune(nil, q, dualsim.Options{}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := dualsim.SimulatePattern(nil, dualsim.NewPattern(), dualsim.Options{}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := dualsim.RequiredTriples(nil, q, dualsim.HashJoin); err == nil {
		t.Fatal("nil store accepted")
	}
}
