package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestPlannerInvariants(t *testing.T) {
	d := tiny(t)
	rows, err := Planner(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Baseline <= 0 || r.Optimized <= 0 {
			t.Fatalf("%s: non-positive timing %+v", r.Case, r)
		}
		if r.Speedup <= 0 {
			t.Fatalf("%s: speedup %f", r.Case, r.Speedup)
		}
		if r.Rows <= 0 {
			t.Fatalf("%s: empty result", r.Case)
		}
	}
	// The acceptance property of the cost-based planner: on the skewed
	// store the reordered plan beats the declared order outright.
	if rows[0].Optimized >= rows[0].Baseline {
		t.Fatalf("reorder: optimized %v not faster than declared order %v",
			rows[0].Optimized, rows[0].Baseline)
	}
	var buf bytes.Buffer
	RenderPlanner(&buf, rows)
	out := buf.String()
	for _, want := range []string{"case", "speedup", "join reorder", "first row"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table misses %q:\n%s", want, out)
		}
	}
}
