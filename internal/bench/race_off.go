//go:build !race

package bench

// raceEnabled reports whether the race detector instruments this build.
// Timing-based invariants (SOI-vs-baseline speed comparisons) are not
// meaningful under the detector's 5–10x slowdown and are relaxed.
const raceEnabled = false
