package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"dualsim"
	"dualsim/internal/engine"
	"dualsim/internal/plan"
	"dualsim/internal/rdf"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// PlannerRow is one planner/executor measurement: a baseline strategy
// (declared pattern order, filter at the root, or full materialization)
// against the optimized one (cost-based reorder, pushdown, or the
// streaming cursor's first row).
//
//dualsim:wire
type PlannerRow struct {
	Case      string        `json:"case"`
	Baseline  time.Duration `json:"baseline"`
	Optimized time.Duration `json:"optimized"`
	Speedup   float64       `json:"speedup"`
	Rows      int           `json:"rows"`
}

// plannerSkewStore builds a store with two-orders-of-magnitude predicate
// skew: p:dense carries denseN triples over denseN subjects, p:sparse
// only sparseN, all landing on a shared hub. A join written dense-first
// forces the declared-order plan through the large relation before the
// sparse one can restrict it.
func plannerSkewStore(denseN, sparseN int) (*storage.Store, error) {
	ts := make([]rdf.Triple, 0, denseN+sparseN)
	for i := 0; i < denseN; i++ {
		ts = append(ts, rdf.T(fmt.Sprintf("s%d", i), "p:dense", fmt.Sprintf("o%d", i%97)))
	}
	for i := 0; i < sparseN; i++ {
		ts = append(ts, rdf.T(fmt.Sprintf("s%d", i), "p:sparse", "hub"))
	}
	return storage.FromTriples(ts)
}

// Planner measures what the cost-based planner and the streaming
// executor buy over the ablated paths: greedy join reordering and filter
// pushdown on a predicate-skewed store, and time-to-first-row of the
// cursor against full materialization on the LUBM store.
func Planner(d *Datasets, repeats int) ([]PlannerRow, error) {
	st, err := plannerSkewStore(40_000, 40)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// run times Compile+Drain under the given planner options.
	run := func(q *sparql.Query, opts plan.Options) (time.Duration, int, error) {
		var n int
		var evalErr error
		dur := timeIt(repeats, func() {
			ex, err := engine.Compile(st, q, opts)
			if err != nil {
				evalErr = err
				return
			}
			res, err := engine.Drain(ctx, ex)
			if err != nil {
				evalErr = err
				return
			}
			n = res.Len()
		})
		return dur, n, evalErr
	}

	row := func(name, src string, ablation plan.Options) (PlannerRow, error) {
		q, err := sparql.Parse(src)
		if err != nil {
			return PlannerRow{}, err
		}
		base, n, err := run(q, ablation)
		if err != nil {
			return PlannerRow{}, err
		}
		opt, _, err := run(q, plan.Options{})
		if err != nil {
			return PlannerRow{}, err
		}
		return PlannerRow{Case: name, Baseline: base, Optimized: opt, Speedup: speedup(base, opt), Rows: n}, nil
	}

	var rows []PlannerRow
	r, err := row("join reorder, skewed store",
		`SELECT * WHERE { ?s <p:dense> ?o . ?s <p:sparse> ?h . }`,
		plan.Options{DisableReorder: true})
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)

	r, err = row("filter pushdown, skewed store",
		`SELECT * WHERE { ?s <p:dense> ?o . ?s <p:sparse> ?h . FILTER(?o = <o13>) }`,
		plan.Options{DisablePushdown: true, DisableReorder: true})
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)

	r, err = firstRowRow(st, repeats)
	if err != nil {
		return nil, err
	}
	return append(rows, r), nil
}

// firstRowRow compares how long a caller waits for the first answer:
// the materializing Exec path (baseline) against the cursor's first
// Next (optimized), p50 over repeated runs of a dense scan whose full
// answer is large enough that materialization dominates.
func firstRowRow(st *storage.Store, repeats int) (PlannerRow, error) {
	db, err := dualsim.Open(st)
	if err != nil {
		return PlannerRow{}, err
	}
	defer db.Close()
	pq, err := db.Prepare(`SELECT * WHERE { ?s <p:dense> ?o . }`)
	if err != nil {
		return PlannerRow{}, err
	}
	ctx := context.Background()

	samples := repeats * 5
	if samples < 15 {
		samples = 15
	}
	full := make([]time.Duration, 0, samples)
	first := make([]time.Duration, 0, samples)
	var n int
	for i := 0; i < samples; i++ {
		start := time.Now()
		res, _, err := pq.Exec(ctx)
		if err != nil {
			return PlannerRow{}, err
		}
		full = append(full, time.Since(start))
		n = res.Len()

		start = time.Now()
		cur, err := pq.Stream(ctx)
		if err != nil {
			return PlannerRow{}, err
		}
		cur.Next()
		first = append(first, time.Since(start))
		if err := cur.Close(); err != nil {
			return PlannerRow{}, err
		}
	}
	sort.Slice(full, func(i, j int) bool { return full[i] < full[j] })
	sort.Slice(first, func(i, j int) bool { return first[i] < first[j] })
	p50Full, p50First := Quantile(full, 0.5), Quantile(first, 0.5)
	return PlannerRow{
		Case: "first row p50, stream vs exec", Baseline: p50Full, Optimized: p50First,
		Speedup: speedup(p50Full, p50First), Rows: n,
	}, nil
}

func speedup(base, opt time.Duration) float64 {
	if opt <= 0 {
		return 0
	}
	return float64(base) / float64(opt)
}

// RenderPlanner prints the planner table.
func RenderPlanner(w io.Writer, rows []PlannerRow) {
	header := []string{"case", "baseline", "optimized", "speedup", "rows"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			r.Case, Millis(r.Baseline), Millis(r.Optimized),
			fmt.Sprintf("%.1fx", r.Speedup), fmt.Sprintf("%d", r.Rows),
		})
	}
	WriteTable(w, header, cells)
}
