package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dualsim/internal/engine"
	"dualsim/internal/queries"
)

// tiny builds a minimal dataset pair once per test run.
func tiny(t *testing.T) *Datasets {
	t.Helper()
	d, err := Setup(2, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSetupAndSummary(t *testing.T) {
	d := tiny(t)
	if d.LUBM.NumTriples() == 0 || d.KG.NumTriples() == 0 {
		t.Fatal("empty datasets")
	}
	var buf bytes.Buffer
	DatasetSummary(&buf, d)
	if !strings.Contains(buf.String(), "LUBM-like") || !strings.Contains(buf.String(), "DBpedia-like") {
		t.Fatalf("summary = %q", buf.String())
	}
	lubmSpec, _ := queries.ByID("L0")
	kgSpec, _ := queries.ByID("B0")
	if d.StoreFor(lubmSpec) != d.LUBM || d.StoreFor(kgSpec) != d.KG {
		t.Fatal("StoreFor routing broken")
	}
}

func TestTable2Invariants(t *testing.T) {
	d := tiny(t)
	rows, err := Table2(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	soiWins := 0
	for _, r := range rows {
		if r.TSOI <= 0 || r.TMa <= 0 || r.THHK <= 0 {
			t.Fatalf("%s: non-positive timing %+v", r.Query, r)
		}
		if r.SOIRounds < 1 || r.MaIters < 1 {
			t.Fatalf("%s: missing iteration counts", r.Query)
		}
		if r.TSOI < r.TMa {
			soiWins++
		}
	}
	// The paper's Table 2 claim: SOI outperforms Ma et al. in every
	// case. Allow a little timing noise at tiny scale, but the trend
	// must be overwhelming. Under the race detector the instrumentation
	// overhead distorts relative timings too much to assert the trend.
	if soiWins < 15 && !raceEnabled {
		t.Fatalf("SOI only faster on %d/20 queries", soiWins)
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "B19") {
		t.Fatal("render lost rows")
	}
}

func TestTable3Invariants(t *testing.T) {
	d := tiny(t)
	rows, err := Table3(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 32 {
		t.Fatalf("rows = %d, want 32", len(rows))
	}
	byID := map[string]Table3Row{}
	for _, r := range rows {
		byID[r.Query] = r
		if r.AfterPruning > r.Total {
			t.Fatalf("%s: kept more than total", r.Query)
		}
		if r.ReqTriples > r.AfterPruning {
			t.Fatalf("%s: required %d > kept %d (soundness!)", r.Query, r.ReqTriples, r.AfterPruning)
		}
		spec, err := queries.ByID(r.Query)
		if err != nil {
			t.Fatal(err)
		}
		if spec.ExpectEmpty && (r.Results != 0 || r.AfterPruning != 0) {
			t.Fatalf("%s: expected empty, got %d results / %d kept", r.Query, r.Results, r.AfterPruning)
		}
		if r.PrunedFraction() < 0 || r.PrunedFraction() > 1 {
			t.Fatalf("%s: fraction %f", r.Query, r.PrunedFraction())
		}
	}
	// The paper's L1 over-retention: leftover triples strictly exceed
	// the required ones.
	if l1 := byID["L1"]; l1.AfterPruning <= l1.ReqTriples {
		t.Fatalf("L1 should over-retain: kept %d, required %d", l1.AfterPruning, l1.ReqTriples)
	}
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Pruned") {
		t.Fatal("render header missing")
	}
}

func TestEngineComparisonInvariants(t *testing.T) {
	d := tiny(t)
	for _, eng := range []engine.Engine{engine.NewHashJoin(), engine.NewIndexNL()} {
		rows, err := EngineComparison(d, eng, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 32 {
			t.Fatalf("%s: rows = %d", eng.Name(), len(rows))
		}
		for _, r := range rows {
			if r.TotalPruned() != r.TDBPruned+r.TPrune {
				t.Fatalf("%s/%s: TotalPruned arithmetic", eng.Name(), r.Query)
			}
		}
		var buf bytes.Buffer
		RenderEngineTable(&buf, rows)
		if !strings.Contains(buf.String(), "t_DB_pruned") {
			t.Fatal("render header missing")
		}
	}
}

func TestIterationShapesInvariants(t *testing.T) {
	d := tiny(t)
	rows, err := IterationShapes(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 32 {
		t.Fatalf("rows = %d", len(rows))
	}
	maxCyclic, maxAcyclic := 0, 0
	for _, r := range rows {
		if r.Rounds < 1 || r.Evaluations < r.Rounds {
			t.Fatalf("%s: implausible stats %+v", r.Query, r)
		}
		if r.Cyclic && r.Rounds > maxCyclic {
			maxCyclic = r.Rounds
		}
		if !r.Cyclic && r.Rounds > maxAcyclic {
			maxAcyclic = r.Rounds
		}
	}
	// §5.3: the cyclic LUBM queries drive the iteration maximum.
	if maxCyclic < maxAcyclic {
		t.Fatalf("cyclic max %d < acyclic max %d", maxCyclic, maxAcyclic)
	}
	var buf bytes.Buffer
	RenderIterations(&buf, rows)
	if !strings.Contains(buf.String(), "cyclic") {
		t.Fatal("render missing shapes")
	}
}

func TestOrderSearchInvariants(t *testing.T) {
	d := tiny(t)
	rows, err := OrderSearch(d, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BestRounds > r.HeuristicRounds || r.BestRounds > r.WorstRounds {
			t.Fatalf("%s: implausible spread %+v", r.Query, r)
		}
	}
	var buf bytes.Buffer
	RenderOrderSearch(&buf, rows)
	if !strings.Contains(buf.String(), "best_rounds") {
		t.Fatal("render header missing")
	}
}

func TestThroughputInvariants(t *testing.T) {
	d := tiny(t)
	rows, err := Throughput(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.TCold <= 0 || r.THot <= 0 {
			t.Fatalf("%s: non-positive timing %+v", r.Query, r)
		}
		if r.Hits != 3 {
			t.Fatalf("%s: %d cache hits over 3 hot runs", r.Query, r.Hits)
		}
		if r.Speedup() <= 0 {
			t.Fatalf("%s: speedup %f", r.Query, r.Speedup())
		}
	}
	var buf bytes.Buffer
	RenderThroughput(&buf, rows)
	if !strings.Contains(buf.String(), "t_hot_cached") {
		t.Fatal("render header missing")
	}
}

func TestWriteTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	WriteTable(&buf, []string{"a", "long-header"}, [][]string{{"xx", "y"}, {"z", "wwwwwwwwwwww"}})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "--") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}

func TestMillis(t *testing.T) {
	if got := Millis(1230 * time.Microsecond); got != "0.00123" {
		t.Fatalf("Millis = %q", got)
	}
}

func TestParseAll(t *testing.T) {
	if err := ParseAll(); err != nil {
		t.Fatal(err)
	}
}

func TestStripOptionalQuery(t *testing.T) {
	spec, _ := queries.ByID("B0")
	pat, err := StripOptionalQuery(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pat.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3 (2 mandatory + 1 formerly optional)", pat.NumEdges())
	}
}

func TestPersistInvariants(t *testing.T) {
	d := tiny(t)
	rows, err := Persist(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (lubm + kg)", len(rows))
	}
	for _, r := range rows {
		if r.SnapshotBytes <= 0 || r.NTBytes <= 0 {
			t.Fatalf("%s: sizes %d/%d", r.Dataset, r.SnapshotBytes, r.NTBytes)
		}
		if r.TSave <= 0 || r.TLoad <= 0 || r.TReparse <= 0 || r.TAppend <= 0 || r.TReplay <= 0 {
			t.Fatalf("%s: non-positive timings %+v", r.Dataset, r)
		}
		if r.WALRecords != persistWALRecords {
			t.Fatalf("%s: %d WAL records", r.Dataset, r.WALRecords)
		}
		// The ≥5x acceptance number is asserted against the real bench
		// table in CI; here only the structural sanity of the derived
		// ratio is pinned — a single scheduler stall during the
		// low-millisecond timed sections must not flake tier-1.
		if r.ColdBootSpeedup() <= 0 {
			t.Errorf("%s: cold-boot speedup not computable (%.2fx)", r.Dataset, r.ColdBootSpeedup())
		}
		t.Logf("%s: cold boot from snapshot %.1fx faster than re-parse", r.Dataset, r.ColdBootSpeedup())
		if r.ReplayRate() <= 0 || r.SaveMBps() <= 0 || r.LoadMBps() <= 0 {
			t.Fatalf("%s: derived rates %+v", r.Dataset, r)
		}
	}
	var buf bytes.Buffer
	RenderPersist(&buf, rows)
	if !strings.Contains(buf.String(), "speedup") || !strings.Contains(buf.String(), "lubm") {
		t.Fatalf("render = %q", buf.String())
	}
}
