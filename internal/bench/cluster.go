package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/cluster"
	"dualsim/internal/cluster/router"
	"dualsim/internal/queries"
)

// ClusterRow reports the scale-out benchmark: queries fanned through a
// real dualsimrouter-style scatter-gather router over in-process shard
// servers (p50/p95 as a router client observes them), plus one row for
// the replica catch-up rate — how fast a WAL-streaming follower replays
// a primary's backlog. JSON tags are part of the benchtables -json
// artifact.
//
//dualsim:wire
type ClusterRow struct {
	Query  string `json:"query"`
	Shards int    `json:"shards"`
	// Requests is the completed read count across all router clients
	// (0 for the catch-up row).
	Requests int `json:"requests"`
	// P50 and P95 are client-observed router round-trips: scatter,
	// shard execution, merge, decode.
	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	// Throughput is completed requests per second over the run.
	Throughput float64 `json:"throughputRps"`
	// CatchUpRecords and CatchUpRate are set on the replica row only:
	// WAL records in the backlog and records replayed per second from
	// bootstrap to convergence.
	CatchUpRecords int     `json:"catchupRecords,omitempty"`
	CatchUpRate    float64 `json:"catchupRecsPerSec,omitempty"`
}

// routedCluster is an in-process cluster: shard daemons on loopback
// listeners plus a router in front, torn down back-to-front.
type routedCluster struct {
	c        *client.Client
	shutdown []func() error
}

func (rc *routedCluster) Close() error {
	var first error
	for i := len(rc.shutdown) - 1; i >= 0; i-- {
		if err := rc.shutdown[i](); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// startCluster partitions st over n shard servers and fronts them with
// a probed router.
func startCluster(st *dualsim.Store, n int) (*routedCluster, error) {
	rc := &routedCluster{}
	var endpoints [][]string
	for i := 0; i < n; i++ {
		shard, err := cluster.ShardStore(st, cluster.ShardSpec{Index: i, N: n})
		if err != nil {
			rc.Close()
			return nil, err
		}
		db, err := dualsim.Open(shard, dualsim.WithPlanCache(16))
		if err != nil {
			rc.Close()
			return nil, err
		}
		c, shutdown, err := Loopback(db)
		if err != nil {
			db.Close()
			rc.Close()
			return nil, err
		}
		rc.shutdown = append(rc.shutdown, func() error {
			serr := shutdown()
			db.Close()
			return serr
		})
		endpoints = append(endpoints, []string{c.BaseURL()})
	}
	rt, err := router.New(endpoints)
	if err != nil {
		rc.Close()
		return nil, err
	}
	rt.Probe(context.Background())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rc.Close()
		return nil, err
	}
	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	rc.shutdown = append(rc.shutdown, func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; err != http.ErrServerClosed {
			return err
		}
		return nil
	})
	rc.c, err = client.New("http://"+ln.Addr().String(), client.WithRetries(0))
	if err != nil {
		rc.Close()
		return nil, err
	}
	return rc, nil
}

// routerLoad drives one query through the router: clients goroutines ×
// perClient requests, returning sorted latencies and the run duration.
func routerLoad(rc *routedCluster, src string, clients, perClient int) ([]time.Duration, time.Duration, error) {
	ctx := context.Background()
	// Warm shard matrices and plan caches outside the measured window.
	if _, err := rc.c.Query(ctx, src); err != nil {
		return nil, 0, err
	}
	var (
		mu       sync.Mutex
		all      = make([]time.Duration, 0, clients*perClient)
		firstErr error
		wg       sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				if _, err := rc.c.Query(ctx, src); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, 0, firstErr
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, elapsed, nil
}

// replicaCatchUp measures the WAL replay rate: a durable primary builds
// a backlog of records AFTER the replica bootstrapped, then the
// replication loop starts and the time to convergence is taken.
func replicaCatchUp(records int) (ClusterRow, error) {
	row := ClusterRow{Query: "replica catch-up", Shards: 1, CatchUpRecords: records}
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		return row, err
	}
	dir, err := os.MkdirTemp("", "dualsim-bench-replica-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	// The backlog must stay in the WAL: an auto-checkpoint would
	// truncate it and the replica would re-bootstrap instead of replay.
	db, err := dualsim.Open(st, dualsim.WithDataDir(dir), dualsim.WithCheckpointEvery(records*10))
	if err != nil {
		return row, err
	}
	defer db.Close()
	c, shutdown, err := Loopback(db)
	if err != nil {
		return row, err
	}
	defer shutdown()

	f, err := cluster.Follow(c.BaseURL(), cluster.WithPollWait(100*time.Millisecond))
	if err != nil {
		return row, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := f.Bootstrap(ctx); err != nil {
		return row, err
	}
	for i := 0; i < records; i++ {
		if _, err := db.Apply(ctx, dualsim.Delta{Adds: []dualsim.Triple{
			dualsim.T(fmt.Sprintf("repl:s%d", i), "repl:edge", fmt.Sprintf("repl:o%d", i)),
		}}); err != nil {
			return row, err
		}
	}
	backlog := db.Epoch()
	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	for f.DB().Epoch() < backlog {
		select {
		case err := <-done:
			return row, fmt.Errorf("replication loop exited during catch-up: %v", err)
		default:
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	cancel()
	<-done
	if elapsed > 0 {
		row.CatchUpRate = float64(records) / elapsed.Seconds()
	}
	return row, nil
}

// Cluster measures the scale-out layer: representative queries fanned
// through the router over a 2-way partitioning (push-down and gather
// paths both exercised), plus the replica WAL catch-up rate.
func Cluster(d *Datasets, repeats int) ([]ClusterRow, error) {
	if repeats < 1 {
		repeats = 1
	}
	const shards = 2
	clients := 4
	perClient := 10 * repeats
	var rows []ClusterRow
	for _, id := range []string{"L0", "B14"} {
		spec, err := queries.ByID(id)
		if err != nil {
			return nil, err
		}
		rc, err := startCluster(d.StoreFor(spec), shards)
		if err != nil {
			return nil, err
		}
		lat, elapsed, err := routerLoad(rc, spec.Text, clients, perClient)
		if cerr := rc.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		row := ClusterRow{
			Query:    spec.ID,
			Shards:   shards,
			Requests: len(lat),
			P50:      Quantile(lat, 0.50),
			P95:      Quantile(lat, 0.95),
		}
		if elapsed > 0 {
			row.Throughput = float64(len(lat)) / elapsed.Seconds()
		}
		rows = append(rows, row)
	}
	catch, err := replicaCatchUp(100 * repeats)
	if err != nil {
		return nil, err
	}
	return append(rows, catch), nil
}

// RenderCluster formats the cluster rows.
func RenderCluster(w io.Writer, rows []ClusterRow) {
	var cells [][]string
	for _, r := range rows {
		if r.CatchUpRecords > 0 {
			cells = append(cells, []string{
				r.Query, fmt.Sprint(r.Shards), fmt.Sprint(r.CatchUpRecords), "-", "-", "-",
				fmt.Sprintf("%.0f rec/s", r.CatchUpRate),
			})
			continue
		}
		cells = append(cells, []string{
			r.Query, fmt.Sprint(r.Shards), fmt.Sprint(r.Requests),
			Millis(r.P50), Millis(r.P95), fmt.Sprintf("%.0f", r.Throughput), "-",
		})
	}
	WriteTable(w, []string{"Query", "shards", "requests", "p50", "p95", "req/s", "catch-up"}, cells)
}
