package bench

import (
	"fmt"
	"io"
	"time"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/queries"
)

// TraceRow reports the cost of end-to-end tracing on the serving hot
// path: the same loopback load run twice, once untraced (the default
// path, which must stay allocation-free) and once with ?trace=1 (span
// tree built, serialized and shipped in the stats trailer). The
// acceptance bar is overhead under a few percent at p50. JSON tags are
// part of the benchtables -json artifact.
//
//dualsim:wire
type TraceRow struct {
	Query    string `json:"query"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`
	// P50Untraced/P95Untraced are client-observed latencies with tracing
	// off; P50Traced/P95Traced with a trace requested on every read.
	P50Untraced time.Duration `json:"p50Untraced"`
	P95Untraced time.Duration `json:"p95Untraced"`
	P50Traced   time.Duration `json:"p50Traced"`
	P95Traced   time.Duration `json:"p95Traced"`
	// OverheadPct is the traced p50's relative cost over the untraced
	// p50, in percent (negative when noise favors the traced run).
	OverheadPct float64 `json:"overheadPct"`
}

// Trace measures the tracing overhead per dataset on the serving path.
func Trace(d *Datasets, repeats int) ([]TraceRow, error) {
	if repeats < 1 {
		repeats = 1
	}
	clients := 4
	perClient := 25 * repeats
	var rows []TraceRow
	for _, id := range []string{"L0", "B14"} {
		spec, err := queries.ByID(id)
		if err != nil {
			return nil, err
		}
		db, err := dualsim.Open(d.StoreFor(spec), dualsim.WithPlanCache(16))
		if err != nil {
			return nil, err
		}
		// Interleave the two modes through one session so both see the
		// same warmed plan cache and matrices.
		off, _, _, err := ServeLoad(db, spec.Text, clients, perClient, 0)
		if err != nil {
			db.Close()
			return nil, err
		}
		on, _, _, err := ServeLoad(db, spec.Text, clients, perClient, 0, client.Trace())
		db.Close()
		if err != nil {
			return nil, err
		}
		row := TraceRow{
			Query:       spec.ID,
			Clients:     clients,
			Requests:    len(off),
			P50Untraced: Quantile(off, 0.50),
			P95Untraced: Quantile(off, 0.95),
			P50Traced:   Quantile(on, 0.50),
			P95Traced:   Quantile(on, 0.95),
		}
		if row.P50Untraced > 0 {
			row.OverheadPct = 100 * (float64(row.P50Traced) - float64(row.P50Untraced)) / float64(row.P50Untraced)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTrace formats the tracing overhead rows.
func RenderTrace(w io.Writer, rows []TraceRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Query, fmt.Sprint(r.Clients), fmt.Sprint(r.Requests),
			Millis(r.P50Untraced), Millis(r.P50Traced),
			Millis(r.P95Untraced), Millis(r.P95Traced),
			fmt.Sprintf("%+.1f%%", r.OverheadPct),
		})
	}
	WriteTable(w, []string{"Query", "clients", "requests", "p50_off", "p50_on", "p95_off", "p95_on", "p50_overhead"}, cells)
}
