// Package bench is the experiment harness that regenerates every table of
// the paper's evaluation section (Sect. 5) against the synthetic datasets:
//
//	Table 2 — SPARQLSIM (SOI) vs. Ma et al. (plus HHK for the §3.3
//	          data-complexity hypothesis) on the OPTIONAL-stripped B
//	          queries;
//	Table 3 — result sizes, required triples, SOI time and triples after
//	          pruning for L0–L5, D0–D5, B0–B19;
//	Table 4 — full-database vs. pruned-database evaluation times on the
//	          hash-join engine (the RDFox stand-in);
//	Table 5 — the same on the index-nested-loop engine (the Virtuoso
//	          stand-in);
//	Iters   — per-query SOI rounds, the §5.3 convergence discussion
//	          (L0 slow / L1 two-iteration shape).
//
// Beyond the paper, Throughput measures the serving layer (plan cache +
// pooled execution) in the repeated-workload regime the ROADMAP targets.
//
// Absolute numbers differ from the paper (their testbed: 384 GB Xeon
// server, billions of triples); the comparisons reproduce the paper's
// qualitative shape. EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"dualsim"
	"dualsim/internal/baseline"
	"dualsim/internal/core"
	"dualsim/internal/datagen"
	"dualsim/internal/engine"
	"dualsim/internal/prune"
	"dualsim/internal/queries"
	"dualsim/internal/soi"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// Datasets bundles the two benchmark stores.
type Datasets struct {
	LUBM *storage.Store
	KG   *storage.Store
}

// Setup generates both datasets deterministically.
func Setup(universities, kgScale int, seed int64) (*Datasets, error) {
	lubm, err := datagen.LUBMStore(datagen.DefaultLUBM(universities, seed))
	if err != nil {
		return nil, err
	}
	kg, err := datagen.KGStore(datagen.DefaultKG(kgScale, seed))
	if err != nil {
		return nil, err
	}
	return &Datasets{LUBM: lubm, KG: kg}, nil
}

// StoreFor resolves a spec's dataset.
func (d *Datasets) StoreFor(s queries.Spec) *storage.Store {
	if s.Dataset == "lubm" {
		return d.LUBM
	}
	return d.KG
}

// timeIt runs fn repeats times and returns the minimum wall time (the
// paper averages 10 hot runs; minimum-of-k is the steadier laptop-scale
// equivalent).
func timeIt(repeats int, fn func()) time.Duration {
	if repeats < 1 {
		repeats = 1
	}
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		fn()
		d := time.Since(start)
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Table 2

// Table2Row compares the three dual simulation algorithms on one
// OPTIONAL-stripped BGP.
//
//dualsim:wire
type Table2Row struct {
	Query      string        `json:"query"`
	TSOI       time.Duration `json:"tSOI"`
	TMa        time.Duration `json:"tMa"`
	THHK       time.Duration `json:"tHHK"`
	SOIRounds  int           `json:"soiRounds"`
	MaIters    int           `json:"maIters"`
	Candidates int           `json:"candidates"` // Σ |χS(v)| of the SOI solution
}

// Table2 runs the B queries (OPTIONAL stripped, as in §5.2) through
// SPARQLSIM, Ma et al. and HHK.
func Table2(d *Datasets, repeats int) ([]Table2Row, error) {
	var rows []Table2Row
	for _, spec := range queries.BenchmarkQueries() {
		st := d.StoreFor(spec)
		stripped := queries.StripOptional(spec.Query().Expr)
		pat, err := queries.ToPattern(stripped)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Query: spec.ID}

		var rel *core.Relation
		row.TSOI = timeIt(repeats, func() {
			rel = core.DualSimulation(st, pat, core.Config{})
		})
		row.SOIRounds = rel.Stats.Rounds
		for _, chi := range rel.Chi {
			row.Candidates += chi.Count()
		}

		var ma *baseline.Result
		row.TMa = timeIt(repeats, func() {
			ma = baseline.MaEtAl(st, pat)
		})
		row.MaIters = ma.Iterations

		row.THHK = timeIt(repeats, func() {
			baseline.HHK(st, pat)
		})
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Table 3

// Table3Row reports pruning effectiveness for one query.
//
//dualsim:wire
type Table3Row struct {
	Query        string        `json:"query"`
	Results      int           `json:"results"`
	ReqTriples   int           `json:"reqTriples"`
	TSOI         time.Duration `json:"tSOI"`
	AfterPruning int           `json:"afterPruning"`
	Total        int           `json:"total"`
	Rounds       int           `json:"rounds"`
}

// PrunedFraction returns the share of removed triples.
func (r Table3Row) PrunedFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return 1 - float64(r.AfterPruning)/float64(r.Total)
}

// Table3 measures result sizes, required triples, SOI runtime and
// leftover triples for every benchmark query.
func Table3(d *Datasets, repeats int) ([]Table3Row, error) {
	eng := engine.NewHashJoin()
	var rows []Table3Row
	for _, spec := range queries.All() {
		st := d.StoreFor(spec)
		q := spec.Query()
		row := Table3Row{Query: spec.ID, Total: st.NumTriples()}

		var p *prune.Pruning
		var rel *core.QueryRelation
		var err error
		row.TSOI = timeIt(repeats, func() {
			p, rel, err = prune.PruneQuery(st, q, core.Config{})
		})
		if err != nil {
			return nil, err
		}
		row.AfterPruning = p.Kept
		row.Rounds = rel.Stats.Rounds

		res, err := eng.Evaluate(context.Background(), st, q)
		if err != nil {
			return nil, err
		}
		row.Results = res.Len()
		req, err := prune.RequiredCount(context.Background(), st, q, eng)
		if err != nil {
			return nil, err
		}
		row.ReqTriples = req
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Tables 4 and 5

// EngineRow compares evaluation on the full vs. the pruned database.
//
//dualsim:wire
type EngineRow struct {
	Query     string        `json:"query"`
	TDB       time.Duration `json:"tDB"`       // evaluation on the full store
	TDBPruned time.Duration `json:"tDBPruned"` // evaluation on the pruned store
	TPrune    time.Duration `json:"tPrune"`    // SPARQLSIM pruning time
	Results   int           `json:"results"`
}

// TotalPruned returns t_DB pruned + t_SPARQLSIM, the third column of
// Tables 4/5.
func (r EngineRow) TotalPruned() time.Duration { return r.TDBPruned + r.TPrune }

// EngineComparison runs every query on the full and pruned store with the
// given engine — Table 4 with the hash-join engine, Table 5 with the
// index-nested-loop engine.
func EngineComparison(d *Datasets, eng engine.Engine, repeats int) ([]EngineRow, error) {
	var rows []EngineRow
	for _, spec := range queries.All() {
		st := d.StoreFor(spec)
		q := spec.Query()
		row := EngineRow{Query: spec.ID}

		var p *prune.Pruning
		var err error
		row.TPrune = timeIt(repeats, func() {
			p, _, err = prune.PruneQuery(st, q, core.Config{})
		})
		if err != nil {
			return nil, err
		}
		pruned := p.Store()

		var res *engine.Result
		row.TDB = timeIt(repeats, func() {
			res, err = eng.Evaluate(context.Background(), st, q)
		})
		if err != nil {
			return nil, err
		}
		row.Results = res.Len()
		row.TDBPruned = timeIt(repeats, func() {
			_, err = eng.Evaluate(context.Background(), pruned, q)
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Iteration shapes (§5.3)

// IterRow reports SOI convergence effort for one query.
//
//dualsim:wire
type IterRow struct {
	Query       string `json:"query"`
	Cyclic      bool   `json:"cyclic"`
	Rounds      int    `json:"rounds"`
	Evaluations int    `json:"evaluations"`
	Updates     int    `json:"updates"`
}

// IterationShapes reports the per-query round counts behind the paper's
// §5.3 discussion (L0 needs many rounds, L1 two).
func IterationShapes(d *Datasets) ([]IterRow, error) {
	var rows []IterRow
	for _, spec := range queries.All() {
		st := d.StoreFor(spec)
		rel, err := core.QueryDualSimulation(st, spec.Query(), core.Config{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, IterRow{
			Query:       spec.ID,
			Cyclic:      spec.Cyclic,
			Rounds:      rel.Stats.Rounds,
			Evaluations: rel.Stats.Evaluations,
			Updates:     rel.Stats.Updates,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Throughput: the serving layer (plan cache + pooled execution)

// ThroughputRow reports repeated-workload serving metrics for one query:
// the cost of a cold Query (parse + plan + execute) versus the
// steady-state cached path, the repeated-traffic regime the ROADMAP's
// serving goal cares about.
//
//dualsim:wire
type ThroughputRow struct {
	Query string `json:"query"`
	// TCold is the first Query on a fresh session: full planning plus
	// execution.
	TCold time.Duration `json:"tCold"`
	// THot is the steady-state cached Query (minimum over repeats): the
	// plan comes from the LRU cache and the solver reuses pooled state.
	THot time.Duration `json:"tHot"`
	// Hits is the cache hit count accumulated over the hot runs.
	Hits int64 `json:"hits"`
}

// Speedup returns TCold / THot.
func (r ThroughputRow) Speedup() float64 {
	if r.THot <= 0 {
		return 0
	}
	return float64(r.TCold) / float64(r.THot)
}

// Throughput measures the cached serving path for a representative query
// subset (one per convergence class, as in the ablations).
func Throughput(d *Datasets, repeats int) ([]ThroughputRow, error) {
	var rows []ThroughputRow
	for _, id := range []string{"L0", "L2", "B14", "B17"} {
		spec, err := queries.ByID(id)
		if err != nil {
			return nil, err
		}
		db, err := dualsim.Open(d.StoreFor(spec), dualsim.WithPlanCache(4))
		if err != nil {
			return nil, err
		}
		row := ThroughputRow{Query: spec.ID}
		start := time.Now()
		if _, _, err := db.Query(context.Background(), spec.Text); err != nil {
			return nil, err
		}
		row.TCold = time.Since(start)
		var hotErr error
		row.THot = timeIt(repeats, func() {
			if _, _, err := db.Query(context.Background(), spec.Text); err != nil {
				hotErr = err
			}
		})
		if hotErr != nil {
			return nil, hotErr
		}
		row.Hits = db.CacheStats().Hits
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderThroughput formats the throughput rows.
func RenderThroughput(w io.Writer, rows []ThroughputRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Query, Millis(r.TCold), Millis(r.THot),
			fmt.Sprintf("%.1fx", r.Speedup()), fmt.Sprint(r.Hits),
		})
	}
	WriteTable(w, []string{"Query", "t_cold", "t_hot_cached", "speedup", "cache_hits"}, cells)
}

// ---------------------------------------------------------------------------
// Updates: the live-update layer (delta overlay + epoch snapshots)

// UpdateRow reports the read/write serving metrics for one query: the
// cost of a small Apply, the first Query after it (an epoch-keyed cache
// miss: re-plan + execute on the new snapshot), the steady-state cached
// Query between updates, and an on-demand compaction of the final state.
//
//dualsim:wire
type UpdateRow struct {
	Query string `json:"query"`
	// THot is the cached Query with no intervening update (minimum over
	// repeats) — the baseline the update costs compare against.
	THot time.Duration `json:"tHot"`
	// TApply is a two-triple Apply (one add, one delete), minimum over
	// repeats: ledger staging plus per-predicate incremental re-indexing
	// plus cache invalidation.
	TApply time.Duration `json:"tApply"`
	// TRequery is the first Query after an Apply: the epoch-scoped plan
	// cache misses and the query re-plans against the new snapshot.
	TRequery time.Duration `json:"tRequery"`
	// TCompact is the on-demand compaction after all applies.
	TCompact time.Duration `json:"tCompact"`
	// Applies is the number of updates performed; OverlaySize the ledger
	// size just before compaction.
	Applies     int `json:"applies"`
	OverlaySize int `json:"overlaySize"`
}

// Updates measures the live-update path for one query per dataset. The
// applied triples use a dedicated upd: predicate, so query answers are
// untouched while the maintenance machinery (dictionary growth,
// predicate re-index, epoch swap, invalidation) runs at full cost.
func Updates(d *Datasets, repeats int) ([]UpdateRow, error) {
	ctx := context.Background()
	var rows []UpdateRow
	for _, id := range []string{"L0", "B14"} {
		spec, err := queries.ByID(id)
		if err != nil {
			return nil, err
		}
		db, err := dualsim.Open(d.StoreFor(spec), dualsim.WithPlanCache(4))
		if err != nil {
			return nil, err
		}
		row := UpdateRow{Query: spec.ID}
		if _, _, err := db.Query(ctx, spec.Text); err != nil {
			return nil, err
		}
		var runErr error
		row.THot = timeIt(repeats, func() {
			if _, _, err := db.Query(ctx, spec.Text); err != nil {
				runErr = err
			}
		})
		seq := 0
		nextDelta := func() dualsim.Delta {
			seq++
			return dualsim.Delta{
				Adds: []dualsim.Triple{dualsim.T(fmt.Sprintf("upd:s%d", seq), "upd:edge", fmt.Sprintf("upd:o%d", seq))},
				Dels: []dualsim.Triple{dualsim.T(fmt.Sprintf("upd:s%d", seq-1), "upd:edge", fmt.Sprintf("upd:o%d", seq-1))},
			}
		}
		row.TApply = timeIt(repeats, func() {
			if _, err := db.Apply(ctx, nextDelta()); err != nil {
				runErr = err
			}
		})
		// Each repeat applies first (untimed) so the timed Query is a
		// guaranteed epoch-keyed cache miss; only the re-plan + execute
		// is measured.
		requeryReps := repeats
		if requeryReps < 1 {
			requeryReps = 1
		}
		for r := 0; r < requeryReps; r++ {
			if _, err := db.Apply(ctx, nextDelta()); err != nil {
				runErr = err
				break
			}
			start := time.Now()
			_, stats, err := db.Query(ctx, spec.Text)
			elapsed := time.Since(start)
			if err != nil {
				runErr = err
				break
			}
			if stats.CacheHit {
				runErr = fmt.Errorf("bench: post-update query hit a stale plan (%s)", spec.ID)
				break
			}
			if r == 0 || elapsed < row.TRequery {
				row.TRequery = elapsed
			}
		}
		row.Applies = seq
		row.OverlaySize = db.OverlaySize()
		start := time.Now()
		if _, err := db.Compact(ctx); err != nil {
			return nil, err
		}
		row.TCompact = time.Since(start)
		if runErr != nil {
			return nil, runErr
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderUpdates formats the update rows.
func RenderUpdates(w io.Writer, rows []UpdateRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Query, Millis(r.THot), Millis(r.TApply), Millis(r.TRequery),
			Millis(r.TCompact), fmt.Sprint(r.Applies), fmt.Sprint(r.OverlaySize),
		})
	}
	WriteTable(w, []string{"Query", "t_hot_cached", "t_apply", "t_requery", "t_compact", "applies", "overlay"}, cells)
}

// ---------------------------------------------------------------------------
// Order-space search (§5.3 brute-force analysis)

// OrderRow reports the round-count spread over random inequality orders
// for one query's mandatory core.
//
//dualsim:wire
type OrderRow struct {
	Query           string `json:"query"`
	HeuristicRounds int    `json:"heuristicRounds"`
	BestRounds      int    `json:"bestRounds"`
	WorstRounds     int    `json:"worstRounds"`
}

// OrderSearch reproduces the paper's §5.3 brute-force remark ("the
// number of iterations may be reduced … no matter which specific
// heuristic we choose"): for the cyclic LUBM queries, it samples random
// inequality orders and reports how far the built-in heuristic is from
// the observed best and worst.
func OrderSearch(d *Datasets, trials int, seed int64) ([]OrderRow, error) {
	var rows []OrderRow
	for _, id := range []string{"L0", "L1", "L2"} {
		spec, err := queries.ByID(id)
		if err != nil {
			return nil, err
		}
		st := d.StoreFor(spec)
		pat, err := queries.ToPattern(queries.MandatoryCore(spec.Query().Expr))
		if err != nil {
			return nil, err
		}
		sys := core.BuildSystem(st, pat, core.Config{})
		stats := sys.SearchOrders(context.Background(), trials, seed, soi.Options{})
		rows = append(rows, OrderRow{
			Query:           spec.ID,
			HeuristicRounds: stats.HeuristicRounds,
			BestRounds:      stats.BestRounds,
			WorstRounds:     stats.WorstRounds,
		})
	}
	return rows, nil
}

// RenderOrderSearch formats the order-search rows.
func RenderOrderSearch(w io.Writer, rows []OrderRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Query, fmt.Sprint(r.HeuristicRounds), fmt.Sprint(r.BestRounds), fmt.Sprint(r.WorstRounds),
		})
	}
	WriteTable(w, []string{"Query", "heuristic_rounds", "best_rounds", "worst_rounds"}, cells)
}

// ---------------------------------------------------------------------------
// Rendering

// Millis formats a duration in the paper's second-resolution style.
func Millis(d time.Duration) string {
	return fmt.Sprintf("%.5f", d.Seconds())
}

// WriteTable renders an aligned text table.
func WriteTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// RenderTable2 formats Table 2 rows.
func RenderTable2(w io.Writer, rows []Table2Row) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Query, Millis(r.TSOI), Millis(r.TMa), Millis(r.THHK),
			fmt.Sprint(r.SOIRounds), fmt.Sprint(r.MaIters),
		})
	}
	WriteTable(w, []string{"Query", "t_SPARQLSIM", "t_MaEtAl", "t_HHK", "soi_rounds", "ma_iters"}, cells)
}

// RenderTable3 formats Table 3 rows.
func RenderTable3(w io.Writer, rows []Table3Row) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Query, fmt.Sprint(r.Results), fmt.Sprint(r.ReqTriples),
			Millis(r.TSOI), fmt.Sprint(r.AfterPruning),
			fmt.Sprintf("%.1f%%", 100*r.PrunedFraction()),
		})
	}
	WriteTable(w, []string{"Query", "Results", "Req.Triples", "t_SPARQLSIM", "Tripl.aft.Pruning", "Pruned"}, cells)
}

// RenderEngineTable formats Table 4/5 rows.
func RenderEngineTable(w io.Writer, rows []EngineRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Query, Millis(r.TDB), Millis(r.TDBPruned), Millis(r.TotalPruned()),
		})
	}
	WriteTable(w, []string{"Query", "t_DB", "t_DB_pruned", "t_DB_pruned+t_SPARQLSIM"}, cells)
}

// RenderIterations formats the iteration-shape rows.
func RenderIterations(w io.Writer, rows []IterRow) {
	var cells [][]string
	for _, r := range rows {
		shape := "acyclic"
		if r.Cyclic {
			shape = "cyclic"
		}
		cells = append(cells, []string{
			r.Query, shape, fmt.Sprint(r.Rounds), fmt.Sprint(r.Evaluations), fmt.Sprint(r.Updates),
		})
	}
	WriteTable(w, []string{"Query", "Shape", "Rounds", "Evaluations", "Updates"}, cells)
}

// DatasetSummary describes the generated stores (the §5.1 setup
// paragraph).
func DatasetSummary(w io.Writer, d *Datasets) {
	fmt.Fprintf(w, "LUBM-like: %d triples, %d nodes, %d predicates\n",
		d.LUBM.NumTriples(), d.LUBM.NumNodes(), d.LUBM.NumPreds())
	fmt.Fprintf(w, "DBpedia-like: %d triples, %d nodes, %d predicates\n",
		d.KG.NumTriples(), d.KG.NumNodes(), d.KG.NumPreds())
}

// StripOptionalQuery builds the Table 2 input for one spec (exported for
// the root-level benchmarks).
func StripOptionalQuery(spec queries.Spec) (*core.Pattern, error) {
	return queries.ToPattern(queries.StripOptional(spec.Query().Expr))
}

// ParseAll is a convenience guard used by tests: every spec must parse.
func ParseAll() error {
	for _, s := range queries.All() {
		if _, err := sparql.Parse(s.Text); err != nil {
			return fmt.Errorf("%s: %w", s.ID, err)
		}
	}
	return nil
}
