package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"dualsim"
	"dualsim/internal/queries"
	"dualsim/internal/server"
)

// StatsRow reports the cost of always-on workload statistics on the
// serving hot path: the same loopback load run twice, once with the
// statement store disabled (WithStatementStats(0)) and once with the
// default always-on accounting, plus the cost of one
// GET /v1/debug/statements scrape. The acceptance bar is overhead
// within a few percent at p50 — cheap enough to leave on by default.
// JSON tags are part of the benchtables -json artifact.
//
//dualsim:wire
type StatsRow struct {
	Query    string `json:"query"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`
	// P50Off/P95Off are client-observed latencies with statement
	// statistics disabled; P50On/P95On with the default accounting.
	P50Off time.Duration `json:"p50Off"`
	P95Off time.Duration `json:"p95Off"`
	P50On  time.Duration `json:"p50On"`
	P95On  time.Duration `json:"p95On"`
	// OverheadPct is the accounting-on p50's relative cost over the
	// accounting-off p50, in percent (negative when noise favors on).
	OverheadPct float64 `json:"overheadPct"`
	// Scrape is the client-observed cost of one statements scrape and
	// Tracked how many statements the scraped table held.
	Scrape  time.Duration `json:"scrape"`
	Tracked int           `json:"tracked"`
}

// Stats measures the workload statistics overhead per dataset on the
// serving path.
func Stats(d *Datasets, repeats int) ([]StatsRow, error) {
	if repeats < 1 {
		repeats = 1
	}
	clients := 4
	perClient := 25 * repeats
	var rows []StatsRow
	for _, id := range []string{"L0", "B14"} {
		spec, err := queries.ByID(id)
		if err != nil {
			return nil, err
		}
		db, err := dualsim.Open(d.StoreFor(spec), dualsim.WithPlanCache(16))
		if err != nil {
			return nil, err
		}
		// Interleave the two modes through one session so both see the
		// same warmed plan cache and matrices.
		off, _, _, err := ServeLoadOpts(db, spec.Text, clients, perClient, 0,
			[]server.Option{server.WithStatementStats(0)})
		if err != nil {
			db.Close()
			return nil, err
		}
		on, _, _, err := ServeLoadOpts(db, spec.Text, clients, perClient, 0, nil)
		if err != nil {
			db.Close()
			return nil, err
		}
		scrape, tracked, err := scrapeCost(db, spec.Text)
		db.Close()
		if err != nil {
			return nil, err
		}
		row := StatsRow{
			Query:    spec.ID,
			Clients:  clients,
			Requests: len(off),
			P50Off:   Quantile(off, 0.50),
			P95Off:   Quantile(off, 0.95),
			P50On:    Quantile(on, 0.50),
			P95On:    Quantile(on, 0.95),
			Scrape:   scrape,
			Tracked:  tracked,
		}
		if row.P50Off > 0 {
			row.OverheadPct = 100 * (float64(row.P50On) - float64(row.P50Off)) / float64(row.P50Off)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// scrapeCost stands up a default (accounting-on) loopback stack, folds
// a few executions into the statement store and times one
// GET /v1/debug/statements round trip.
func scrapeCost(db *dualsim.DB, src string) (d time.Duration, tracked int, err error) {
	c, shutdown, err := Loopback(db)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if serr := shutdown(); err == nil && serr != nil {
			err = serr
		}
	}()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, qerr := c.Query(ctx, src); qerr != nil {
			return 0, 0, qerr
		}
	}
	t0 := time.Now()
	resp, err := c.Statements(ctx)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(t0), resp.Tracked, nil
}

// RenderStats formats the workload statistics overhead rows.
func RenderStats(w io.Writer, rows []StatsRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Query, fmt.Sprint(r.Clients), fmt.Sprint(r.Requests),
			Millis(r.P50Off), Millis(r.P50On),
			Millis(r.P95Off), Millis(r.P95On),
			fmt.Sprintf("%+.1f%%", r.OverheadPct),
			Millis(r.Scrape), fmt.Sprint(r.Tracked),
		})
	}
	WriteTable(w, []string{"Query", "clients", "requests", "p50_off", "p50_on", "p95_off", "p95_on", "p50_overhead", "scrape", "tracked"}, cells)
}
