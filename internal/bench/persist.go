package bench

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"time"

	"dualsim"
	"dualsim/internal/delta"
	"dualsim/internal/persist"
	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

// This file measures the durability layer (internal/persist) against
// the boot path it replaces: binary snapshot save/load bandwidth, WAL
// append (fsync included) and replay rates, and the headline number —
// cold boot from a snapshot versus re-parsing the N-Triples dump the
// daemon would otherwise re-ingest on every restart.

// persistWALRecords is the synthetic WAL tail length used for the
// append/replay measurements.
const persistWALRecords = 256

// PersistRow reports the durability metrics for one dataset.
//
//dualsim:wire
type PersistRow struct {
	Dataset string `json:"dataset"`
	Triples int    `json:"triples"`
	// SnapshotBytes and NTBytes compare the binary snapshot against the
	// N-Triples text dump of the same store.
	SnapshotBytes int64 `json:"snapshotBytes"`
	NTBytes       int64 `json:"ntBytes"`
	// TSave and TLoad are snapshot write/read times (minimum over
	// repeats, real files in a temp dir).
	TSave time.Duration `json:"tSave"`
	TLoad time.Duration `json:"tLoad"`
	// TReparse is the baseline the snapshot replaces: parsing and
	// re-interning the N-Triples dump into a fresh store.
	TReparse time.Duration `json:"tReparse"`
	// TAppend is the mean WAL append latency, fsync included.
	TAppend time.Duration `json:"tAppend"`
	// WALRecords and TReplay measure recovery of a WAL tail: reading,
	// CRC-checking and re-applying WALRecords single-triple deltas.
	WALRecords int           `json:"walRecords"`
	TReplay    time.Duration `json:"tReplay"`
}

// SaveMBps returns the snapshot write bandwidth.
func (r PersistRow) SaveMBps() float64 { return mbps(r.SnapshotBytes, r.TSave) }

// LoadMBps returns the snapshot read bandwidth.
func (r PersistRow) LoadMBps() float64 { return mbps(r.SnapshotBytes, r.TLoad) }

// ReplayRate returns WAL replay throughput in records per second.
func (r PersistRow) ReplayRate() float64 {
	if r.TReplay <= 0 {
		return 0
	}
	return float64(r.WALRecords) / r.TReplay.Seconds()
}

// ColdBootSpeedup returns TReparse / TLoad — how much faster a restart
// boots from the snapshot than from the original RDF input.
func (r PersistRow) ColdBootSpeedup() float64 {
	if r.TLoad <= 0 {
		return 0
	}
	return float64(r.TReparse) / float64(r.TLoad)
}

func mbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / d.Seconds()
}

// Persist measures the durability layer on both datasets.
func Persist(d *Datasets, repeats int) ([]PersistRow, error) {
	var rows []PersistRow
	for _, c := range []struct {
		name string
		st   *storage.Store
	}{{"lubm", d.LUBM}, {"kg", d.KG}} {
		row, err := persistOne(c.name, c.st, repeats)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func persistOne(name string, st *storage.Store, repeats int) (PersistRow, error) {
	row := PersistRow{Dataset: name, Triples: st.NumTriples()}
	dir, err := os.MkdirTemp("", "dualsim-bench-persist-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)

	// The text baseline: what the daemon re-parses without -data.
	var nt bytes.Buffer
	if err := dualsim.DumpNTriples(&nt, st); err != nil {
		return row, err
	}
	row.NTBytes = int64(nt.Len())

	var benchErr error
	row.TSave = timeIt(repeats, func() {
		n, err := persist.WriteSnapshot(dir, st, 0)
		if err != nil {
			benchErr = err
			return
		}
		row.SnapshotBytes = n
	})
	if benchErr != nil {
		return row, benchErr
	}
	row.TLoad = timeIt(repeats, func() {
		if _, _, _, err := persist.ReadLatestSnapshot(dir); err != nil {
			benchErr = err
		}
	})
	row.TReparse = timeIt(repeats, func() {
		if _, err := dualsim.LoadNTriples(bytes.NewReader(nt.Bytes())); err != nil {
			benchErr = err
		}
	})
	if benchErr != nil {
		return row, benchErr
	}

	// WAL: append persistWALRecords single-triple deltas (each fsync'd,
	// as in production), then time tail recovery — read, CRC-check,
	// decode and re-apply through the overlay, the exact boot path.
	wdir, err := os.MkdirTemp("", "dualsim-bench-wal-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(wdir)
	lg, err := persist.Init(wdir, st, 0)
	if err != nil {
		return row, err
	}
	appendStart := time.Now()
	for i := 1; i <= persistWALRecords; i++ {
		adds := []rdf.Triple{rdf.T(fmt.Sprintf("wal:s%d", i), "wal:edge", fmt.Sprintf("wal:o%d", i))}
		if _, err := lg.AppendApply(uint64(i), adds, nil); err != nil {
			lg.Close()
			return row, err
		}
	}
	row.TAppend = time.Since(appendStart) / persistWALRecords
	row.WALRecords = persistWALRecords
	if err := lg.Close(); err != nil {
		return row, err
	}
	row.TReplay = timeIt(repeats, func() {
		tail, err := persist.ReadWALTail(wdir, 0)
		if err != nil || len(tail) != persistWALRecords {
			benchErr = fmt.Errorf("bench: WAL tail has %d records (%v)", len(tail), err)
			return
		}
		ov, err := delta.NewAt(st, 0, 0)
		if err != nil {
			benchErr = err
			return
		}
		for _, r := range tail {
			if _, _, err := ov.Apply(delta.Delta{Adds: r.Adds, Dels: r.Dels}); err != nil {
				benchErr = err
				return
			}
		}
	})
	return row, benchErr
}

// RenderPersist formats the persistence rows.
func RenderPersist(w io.Writer, rows []PersistRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset,
			fmt.Sprint(r.Triples),
			fmt.Sprintf("%.2f", float64(r.SnapshotBytes)/(1<<20)),
			fmt.Sprintf("%.0f", r.SaveMBps()),
			fmt.Sprintf("%.0f", r.LoadMBps()),
			Millis(r.TReparse),
			Millis(r.TLoad),
			fmt.Sprintf("%.1fx", r.ColdBootSpeedup()),
			fmt.Sprintf("%.2f", float64(r.TAppend.Microseconds())/1000),
			fmt.Sprintf("%.0f", r.ReplayRate()),
		})
	}
	WriteTable(w, []string{
		"Dataset", "triples", "snap_MB", "save_MB/s", "load_MB/s",
		"t_reparse", "t_coldboot", "speedup", "wal_append_ms", "replay_rec/s",
	}, cells)
}
