package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/metrics"
	"dualsim/internal/queries"
	"dualsim/internal/server"
)

// ServingRow reports the loopback serving benchmark for one query: a
// real dualsimd-style HTTP server on 127.0.0.1, a fleet of concurrent
// Go clients, and the latency/throughput/cache view of the hot path the
// ROADMAP's "heavy traffic" goal targets. Writers interleave Apply
// traffic so the numbers include epoch-keyed re-planning, exactly like
// production. JSON tags are part of the benchtables -json artifact.
//
//dualsim:wire
type ServingRow struct {
	Query string `json:"query"`
	// Clients is the concurrent reader count, Requests the total reads
	// that completed across all of them (shed requests excluded), and
	// Applies the interleaved write load.
	Clients  int `json:"clients"`
	Requests int `json:"requests"`
	Applies  int `json:"applies"`
	// P50 and P95 are client-observed request latencies (serialize,
	// loopback round-trip, execute, decode).
	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	// Throughput is completed read requests per second over the run.
	Throughput float64 `json:"throughputRps"`
	// HitRate is the plan cache hit rate over the run in [0, 1] — with
	// interleaved applies it stays below 1: the first query after each
	// epoch bump re-plans.
	HitRate float64 `json:"cacheHitRate"`
	// Shed counts requests the admission controller answered with 429.
	Shed int64 `json:"shed"`
}

// Loopback starts a serving stack (session + server + HTTP listener) on
// 127.0.0.1 and returns its client and a shutdown func. Exported for
// the root-level BenchmarkServeQuery.
func Loopback(db *dualsim.DB, opts ...server.Option) (*client.Client, func() error, error) {
	srv, err := server.New(db, opts...)
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	c, err := client.New("http://"+ln.Addr().String(), client.WithRetries(0))
	if err != nil {
		ln.Close()
		return nil, nil, err
	}
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; err != http.ErrServerClosed {
			return err
		}
		return nil
	}
	return c, shutdown, nil
}

// ServeLoad drives one query through a loopback serving stack: clients
// goroutines × perClient requests, with one writer interleaving applies
// on a dedicated predicate (applies total, 0 disables). Extra query
// options apply to every read (e.g. client.Trace() for the tracing
// overhead bench). It returns the sorted client-observed latencies plus
// the run duration, final cache stats and shed count.
func ServeLoad(db *dualsim.DB, src string, clients, perClient, applies int, qopts ...client.QueryOpt) (lat []time.Duration, elapsed time.Duration, shed int64, err error) {
	return ServeLoadOpts(db, src, clients, perClient, applies, nil, qopts...)
}

// ServeLoadOpts is ServeLoad with explicit server options, so benches
// can toggle server-side features (e.g. statement statistics off) while
// keeping the same load shape.
func ServeLoadOpts(db *dualsim.DB, src string, clients, perClient, applies int, sopts []server.Option, qopts ...client.QueryOpt) (lat []time.Duration, elapsed time.Duration, shed int64, err error) {
	c, shutdown, err := Loopback(db, sopts...)
	if err != nil {
		return nil, 0, 0, err
	}
	defer func() {
		if serr := shutdown(); err == nil && serr != nil {
			err = serr
		}
	}()
	ctx := context.Background()
	// Warm lazy matrices and the plan cache outside the measured window.
	if _, err := c.Query(ctx, src); err != nil {
		return nil, 0, 0, err
	}

	var (
		mu       sync.Mutex
		all      = make([]time.Duration, 0, clients*perClient)
		shedCnt  int64
		wg       sync.WaitGroup
		firstErr error
	)
	fail := func(e error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = e
		}
		mu.Unlock()
	}
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				_, qerr := c.Query(ctx, src, qopts...)
				d := time.Since(t0)
				if qerr != nil {
					if client.IsOverloaded(qerr) {
						mu.Lock()
						shedCnt++
						mu.Unlock()
						continue
					}
					fail(qerr)
					return
				}
				local = append(local, d)
			}
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}()
	}
	if applies > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < applies; i++ {
				_, aerr := c.Apply(ctx, []client.Triple{
					{S: fmt.Sprintf("upd:s%d", i), P: "upd:edge", O: fmt.Sprintf("upd:o%d", i)},
				}, nil)
				if aerr != nil && !client.IsOverloaded(aerr) {
					fail(aerr)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed = time.Since(start)
	if firstErr != nil {
		return nil, 0, 0, firstErr
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, elapsed, shedCnt, nil
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of sorted latencies
// through the same interpolating estimator the workload statistics
// table uses (metrics.BucketQuantile). Every distinct sample becomes a
// bucket upper bound, so the estimate is near-exact while the math is
// shared with the per-statement histograms.
func Quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	bounds := make([]float64, 0, len(sorted)+1)
	cum := make([]int64, 0, len(sorted)+1)
	for _, d := range sorted {
		v := d.Seconds()
		if n := len(bounds); n > 0 && bounds[n-1] == v {
			cum[n-1]++
			continue
		}
		c := int64(1)
		if n := len(cum); n > 0 {
			c += cum[n-1]
		}
		bounds = append(bounds, v)
		cum = append(cum, c)
	}
	bounds = append(bounds, math.Inf(1))
	cum = append(cum, cum[len(cum)-1])
	return time.Duration(metrics.BucketQuantile(bounds, cum, q) * float64(time.Second))
}

// Serving measures the end-to-end serving hot path for a representative
// query per dataset under concurrent read load with interleaved writes.
func Serving(d *Datasets, repeats int) ([]ServingRow, error) {
	if repeats < 1 {
		repeats = 1
	}
	clients := 4
	perClient := 25 * repeats
	applies := 5 * repeats
	var rows []ServingRow
	for _, id := range []string{"L0", "B14"} {
		spec, err := queries.ByID(id)
		if err != nil {
			return nil, err
		}
		db, err := dualsim.Open(d.StoreFor(spec), dualsim.WithPlanCache(16))
		if err != nil {
			return nil, err
		}
		lat, elapsed, shed, err := ServeLoad(db, spec.Text, clients, perClient, applies)
		if err != nil {
			db.Close()
			return nil, err
		}
		cs := db.CacheStats()
		row := ServingRow{
			Query:    spec.ID,
			Clients:  clients,
			Requests: len(lat),
			Applies:  applies,
			P50:      Quantile(lat, 0.50),
			P95:      Quantile(lat, 0.95),
			HitRate:  cs.HitRate(),
			Shed:     shed,
		}
		if elapsed > 0 {
			row.Throughput = float64(len(lat)) / elapsed.Seconds()
		}
		rows = append(rows, row)
		db.Close()
	}
	return rows, nil
}

// RenderServing formats the serving rows.
func RenderServing(w io.Writer, rows []ServingRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Query, fmt.Sprint(r.Clients), fmt.Sprint(r.Requests), fmt.Sprint(r.Applies),
			Millis(r.P50), Millis(r.P95), fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.2f", r.HitRate), fmt.Sprint(r.Shed),
		})
	}
	WriteTable(w, []string{"Query", "clients", "requests", "applies", "p50", "p95", "req/s", "hit_rate", "shed"}, cells)
}
