package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dualsim/internal/bitmat"
	"dualsim/internal/rdf"
)

// This file implements the binary serialization of a built Store — the
// payload of the durable snapshot files written by internal/persist.
// The codec lives here because it walks the store's internals (the
// dictionary tables and the per-predicate PSO runs); file framing,
// versioning, epochs and integrity checks are the persist layer's job.
//
// Body layout (all integers unsigned varints unless noted):
//
//	nTerms, then per term: 1 byte kind, length-prefixed value
//	nPreds, then per predicate: length-prefixed IRI
//	per predicate, in id order: pair count, then the PSO run with the
//	subject delta-encoded against the previous pair's subject and the
//	object raw
//
// Only the PSO order is stored; DecodeSnapshot rebuilds the POS order,
// the distinct counts and the dictionary maps — still far cheaper than
// re-parsing and re-interning an N-Triples dump (see bench.Persist).

// Sanity bounds for decoding untrusted bytes: a count beyond these is
// corruption (the CRC upstream should have caught it), not a real store.
const (
	maxSnapshotElems = 1 << 31
	maxSnapshotValue = 1 << 28
)

// EncodeSnapshot writes the store body to w. The store must be built.
func (st *Store) EncodeSnapshot(w io.Writer) error {
	st.mustBeBuilt()
	bw := bufio.NewWriterSize(w, 1<<16)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		bw.Write(scratch[:n]) // bufio latches the first error; Flush reports it
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		bw.WriteString(s)
	}

	putUvarint(uint64(len(st.terms)))
	for _, t := range st.terms {
		bw.WriteByte(byte(t.Kind))
		putString(t.Value)
	}
	putUvarint(uint64(len(st.preds)))
	for _, p := range st.preds {
		putString(p)
	}
	for p := range st.byPred {
		pso := st.byPred[p].pso
		putUvarint(uint64(len(pso)))
		prev := NodeID(0)
		for _, e := range pso {
			putUvarint(uint64(e.a - prev))
			putUvarint(uint64(e.b))
			prev = e.a
		}
	}
	return bw.Flush()
}

// DecodeSnapshot reconstructs a built store (with a fresh dictionary)
// from a body written by EncodeSnapshot. It validates structural
// invariants — node ids in range, PSO runs strictly sorted — so a
// corrupted body fails loudly instead of producing a store with broken
// binary-search indexes.
func DecodeSnapshot(r io.Reader) (*Store, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("storage: reading snapshot body: %w", err)
	}
	return DecodeSnapshotBytes(buf)
}

// DecodeSnapshotBytes is DecodeSnapshot over an in-memory body — the
// fast path the boot-critical persist layer uses (the snapshot file is
// already in memory for its checksum pass; decoding straight off the
// slice skips a copy and all buffered-reader overhead).
func DecodeSnapshotBytes(buf []byte) (*Store, error) {
	dec := snapDecoder{buf: buf}

	// Element counts are additionally bounded by the bytes actually
	// present (a term needs ≥ 2 bytes, a predicate ≥ 1, a pair ≥ 2), so
	// a corrupt count fails cleanly instead of sizing a giant
	// preallocation.
	nTerms, err := dec.uvarint("term count", min(maxSnapshotElems, uint64(len(buf))/2))
	if err != nil {
		return nil, err
	}
	d := newDict()
	d.terms = make([]rdf.Term, 0, nTerms)
	d.termID = make(map[string]NodeID, nTerms)
	for i := uint64(0); i < nTerms; i++ {
		kind, err := dec.byte("term kind")
		if err != nil {
			return nil, err
		}
		if rdf.Kind(kind) != rdf.IRI && rdf.Kind(kind) != rdf.Literal {
			return nil, fmt.Errorf("storage: snapshot term %d has unknown kind %d", i, kind)
		}
		val, err := dec.string("term")
		if err != nil {
			return nil, err
		}
		t := rdf.Term{Kind: rdf.Kind(kind), Value: val}
		d.termID[t.Key()] = NodeID(len(d.terms))
		d.terms = append(d.terms, t)
	}

	nPreds, err := dec.uvarint("predicate count", min(maxSnapshotElems, uint64(dec.remaining())))
	if err != nil {
		return nil, err
	}
	d.preds = make([]string, 0, nPreds)
	d.predID = make(map[string]PredID, nPreds)
	for i := uint64(0); i < nPreds; i++ {
		p, err := dec.string("predicate")
		if err != nil {
			return nil, err
		}
		d.predID[p] = PredID(len(d.preds))
		d.preds = append(d.preds, p)
	}

	st := &Store{d: d, mats: make(map[PredID]bitmat.Pair), built: true}
	st.terms, st.preds = d.views()
	st.byPred = make([]predIndex, nPreds)
	var counts []uint32 // counting-sort scratch, shared across predicates
	for p := range st.byPred {
		n, err := dec.uvarint("pair count", min(maxSnapshotElems, uint64(dec.remaining())/2))
		if err != nil {
			return nil, err
		}
		pso := make([]pair, n)
		prev := uint64(0)
		for i := uint64(0); i < n; i++ {
			da, err := dec.uvarint("subject delta", maxSnapshotElems)
			if err != nil {
				return nil, err
			}
			b, err := dec.uvarint("object id", maxSnapshotElems)
			if err != nil {
				return nil, err
			}
			a := prev + da
			if a >= nTerms || b >= nTerms {
				return nil, fmt.Errorf("storage: snapshot pair (%d, %d) of predicate %d outside the %d-term universe", a, b, p, nTerms)
			}
			if i > 0 && da == 0 && pso[i-1].b >= NodeID(b) {
				return nil, fmt.Errorf("storage: snapshot PSO run of predicate %d is not strictly sorted at pair %d", p, i)
			}
			pso[i] = pair{a: NodeID(a), b: NodeID(b)}
			prev = a
		}
		pos := make([]pair, len(pso))
		if countingSortWins(len(pso), int(nTerms)) {
			if counts == nil {
				counts = make([]uint32, nTerms)
			}
			buildPOSCounting(pso, pos, counts)
		} else {
			for i, e := range pso {
				pos[i] = pair{a: e.b, b: e.a}
			}
			sortPairs(pos)
		}
		st.byPred[p] = predIndex{
			pso:       pso,
			pos:       pos,
			distinctS: countDistinctFirst(pso),
			distinctO: countDistinctFirst(pos),
		}
		st.nTrip += len(pso)
	}
	return st, nil
}

// countingSortWins decides whether the O(n + |terms|) counting sort
// beats the O(n log n) comparison sort for one POS run: the linear pass
// over the term space must stay comparable to the run itself, or a
// store with many tiny predicates over a huge node universe would pay
// |preds|·|terms| in scratch sweeps.
func countingSortWins(pairs, terms int) bool {
	return terms <= 8*pairs+1024
}

// buildPOSCounting fills pos with the (object, subject) reordering of a
// sorted PSO run via a stable counting sort: PSO order is ascending
// (subject, object), so for one object the subjects arrive ascending
// and land in order — pos comes out sorted by (object, subject) in one
// linear placement pass, no comparisons.
func buildPOSCounting(pso, pos []pair, counts []uint32) {
	clear(counts)
	for _, e := range pso {
		counts[e.b]++
	}
	sum := uint32(0)
	for i, c := range counts {
		counts[i] = sum
		sum += c
	}
	for _, e := range pso {
		pos[counts[e.b]] = pair{a: e.b, b: e.a}
		counts[e.b]++
	}
}

// snapDecoder walks a snapshot body slice.
type snapDecoder struct {
	buf []byte
	off int
}

func (d *snapDecoder) remaining() int { return len(d.buf) - d.off }

func (d *snapDecoder) uvarint(what string, max uint64) (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("storage: snapshot %s: truncated varint", what)
	}
	if v > max {
		return 0, fmt.Errorf("storage: snapshot %s %d exceeds bound %d", what, v, max)
	}
	d.off += n
	return v, nil
}

func (d *snapDecoder) byte(what string) (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("storage: snapshot %s: unexpected end of body", what)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *snapDecoder) string(what string) (string, error) {
	n, err := d.uvarint(what+" length", maxSnapshotValue)
	if err != nil {
		return "", err
	}
	if uint64(len(d.buf)-d.off) < n {
		return "", fmt.Errorf("storage: snapshot %s: truncated (want %d bytes, have %d)", what, n, len(d.buf)-d.off)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}
