package storage

import (
	"fmt"

	"dualsim/internal/bitmat"
	"dualsim/internal/rdf"
)

// PatchStats reports what a Patch actually changed, after no-op
// elimination (re-adding a present triple and deleting an absent one do
// nothing).
type PatchStats struct {
	// Added and Deleted count the effective triple changes.
	Added, Deleted int
	// TouchedPreds is the number of predicates whose indexes were
	// rebuilt; ReusedIndexes counts the predicate indexes shared with
	// the receiver snapshot unchanged.
	TouchedPreds, ReusedIndexes int
	// NewTerms and NewPreds count dictionary growth: terms and
	// predicates first interned by this patch.
	NewTerms, NewPreds int
	// ReusedMatrices counts cached adjacency bit-matrix pairs carried
	// over from the receiver (possible only for untouched predicates
	// when the node universe did not grow — the matrix dimension is the
	// node count).
	ReusedMatrices int
	// TouchedNodes lists the node ids occurring in an effective add or
	// delete (subjects and objects, deduplicated). Incremental index
	// maintenance downstream — e.g. partition advance — re-examines
	// exactly these.
	TouchedNodes []NodeID
}

// ValidateBatch checks every triple of a patch batch up front — the
// shared gate of Patch's atomicity contract and of the WAL append that
// precedes a durable apply (the log must never record a batch the
// in-memory apply, or a later replay, would reject).
func ValidateBatch(adds, dels []rdf.Triple) error {
	for i, t := range adds {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("storage: patch add %d of %d: %w", i, len(adds), err)
		}
	}
	for i, t := range dels {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("storage: patch del %d of %d: %w", i, len(dels), err)
		}
	}
	return nil
}

// predChange accumulates one predicate's effective patch. addSet
// mirrors adds for O(1) duplicate detection.
type predChange struct {
	adds   []pair
	addSet map[pair]bool
	dels   map[pair]bool
}

// Patch derives a new snapshot containing the receiver's triples minus
// dels plus adds, in that order: a triple both deleted and added ends up
// present. The receiver is unchanged and remains fully usable — this is
// the MVCC building block of the live-update layer.
//
// The two snapshots share the append-only dictionary, so node and
// predicate ids are stable across the patch and new terms extend the id
// space. Index maintenance is incremental at predicate granularity: only
// predicates named by an effective change are re-indexed; every other
// predicate shares the receiver's index (and, when no new term was
// interned, its cached bit-matrix pair).
//
// Patch is atomic: both triple slices are validated before anything is
// interned, so an invalid triple leaves the dictionary untouched.
// Concurrent Patch calls on snapshots of one lineage are safe with
// respect to the shared dictionary, but the caller is responsible for
// ordering them (the delta overlay serializes).
func (st *Store) Patch(adds, dels []rdf.Triple) (*Store, PatchStats, error) {
	st.mustBeBuilt()
	var stats PatchStats
	if err := ValidateBatch(adds, dels); err != nil {
		return nil, stats, err
	}

	oldTerms, oldPreds := len(st.terms), len(st.preds)

	// Deletes resolve against the receiver's view only: a term or
	// predicate this snapshot cannot see cannot occur in its triples, so
	// the delete is a no-op (and must not intern anything).
	touched := make(map[PredID]*predChange)
	change := func(p PredID) *predChange {
		ch := touched[p]
		if ch == nil {
			ch = &predChange{addSet: make(map[pair]bool), dels: make(map[pair]bool)}
			touched[p] = ch
		}
		return ch
	}
	for _, t := range dels {
		s, okS := st.TermID(t.S)
		p, okP := st.PredIDOf(t.P)
		o, okO := st.TermID(t.O)
		if !okS || !okP || !okO || !st.HasTriple(s, p, o) {
			continue
		}
		change(p).dels[pair{a: s, b: o}] = true
	}

	// Adds intern through the shared dictionary — growing it is harmless
	// even when the add turns out to be a duplicate; the ids stay
	// consistent for every later snapshot of the lineage.
	for _, t := range adds {
		ids := tripleIDs{
			s: st.d.internTerm(t.S),
			p: st.d.internPred(t.P),
			o: st.d.internTerm(t.O),
		}
		pr := pair{a: ids.s, b: ids.o}
		ch := touched[ids.p]
		switch {
		case ch != nil && ch.dels[pr]:
			// Deleted then re-added in this patch: net zero, cancel the
			// tombstone.
			delete(ch.dels, pr)
		case int(ids.p) < oldPreds && int(ids.s) < oldTerms && int(ids.o) < oldTerms &&
			st.HasTriple(ids.s, ids.p, ids.o):
			// Already present and not deleted: no-op.
		case ch != nil && ch.addSet[pr]:
			// Duplicate add within the patch.
		default:
			ch = change(ids.p)
			ch.adds = append(ch.adds, pr)
			ch.addSet[pr] = true
		}
	}

	out := &Store{
		d:     st.d,
		mats:  make(map[PredID]bitmat.Pair),
		built: true,
		nTrip: st.nTrip,
	}
	out.terms, out.preds = st.d.views()
	stats.NewTerms = len(out.terms) - oldTerms
	stats.NewPreds = len(out.preds) - oldPreds

	out.byPred = make([]predIndex, len(out.preds))
	copy(out.byPred, st.byPred)

	touchedNodes := make(map[NodeID]bool)
	for p, ch := range touched {
		if len(ch.adds) == 0 && len(ch.dels) == 0 {
			continue // every change of this predicate cancelled out
		}
		var old []pair
		if int(p) < len(st.byPred) {
			old = st.byPred[p].pso
		}
		kept := make([]pair, 0, len(old)+len(ch.adds)-len(ch.dels))
		for _, e := range old {
			if ch.dels[e] {
				touchedNodes[e.a] = true
				touchedNodes[e.b] = true
				continue
			}
			kept = append(kept, e)
		}
		for _, e := range ch.adds {
			touchedNodes[e.a] = true
			touchedNodes[e.b] = true
		}
		pso := dedupSorted(append(kept, ch.adds...))
		pos := make([]pair, len(pso))
		for i, e := range pso {
			pos[i] = pair{a: e.b, b: e.a}
		}
		sortPairs(pos)
		out.byPred[p] = predIndex{
			pso:       pso,
			pos:       pos,
			distinctS: countDistinctFirst(pso),
			distinctO: countDistinctFirst(pos),
		}
		out.nTrip += len(pso) - len(old)
		stats.Added += len(ch.adds)
		stats.Deleted += len(ch.dels)
		stats.TouchedPreds++
	}
	stats.ReusedIndexes = len(out.preds) - stats.TouchedPreds
	for id := range touchedNodes {
		stats.TouchedNodes = append(stats.TouchedNodes, id)
	}

	// Adjacency matrices are dimensioned by the node count; carrying a
	// cached pair over is sound only for an untouched predicate in an
	// unchanged universe.
	if stats.NewTerms == 0 {
		st.matMu.Lock()
		for p, m := range st.mats {
			if ch := touched[p]; ch == nil || (len(ch.adds) == 0 && len(ch.dels) == 0) {
				out.mats[p] = m
				stats.ReusedMatrices++
			}
		}
		st.matMu.Unlock()
	}
	return out, stats, nil
}
