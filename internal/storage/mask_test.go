package storage

import (
	"sync"
	"testing"

	"dualsim/internal/bitvec"
	"dualsim/internal/rdf"
)

func maskFixture(t *testing.T) *Store {
	t.Helper()
	return mustStore(t, []rdf.Triple{
		rdf.T("a", "p", "b"),
		rdf.T("a", "p", "c"),
		rdf.T("b", "p", "c"),
		rdf.T("a", "q", "b"),
	})
}

func TestPairAtOrder(t *testing.T) {
	st := maskFixture(t)
	p, _ := st.PredIDOf("p")
	// PSO order: (a,b), (a,c), (b,c) — subjects ascending by intern id.
	s0, o0 := st.PairAt(p, 0)
	if st.Term(s0).Value != "a" || st.Term(o0).Value != "b" {
		t.Fatalf("PairAt(0) = %s,%s", st.Term(s0).Value, st.Term(o0).Value)
	}
	s2, o2 := st.PairAt(p, 2)
	if st.Term(s2).Value != "b" || st.Term(o2).Value != "c" {
		t.Fatalf("PairAt(2) = %s,%s", st.Term(s2).Value, st.Term(o2).Value)
	}
}

func TestFindPair(t *testing.T) {
	st := maskFixture(t)
	p, _ := st.PredIDOf("p")
	count := st.PredCount(p)
	for i := 0; i < count; i++ {
		s, o := st.PairAt(p, i)
		if got := st.FindPair(p, s, o); got != i {
			t.Fatalf("FindPair(PairAt(%d)) = %d", i, got)
		}
	}
	a, _ := st.TermID(rdf.NewIRI("a"))
	if st.FindPair(p, a, a) != -1 {
		t.Fatal("phantom pair found")
	}
}

func TestRestrictByMask(t *testing.T) {
	st := maskFixture(t)
	p, _ := st.PredIDOf("p")
	q, _ := st.PredIDOf("q")

	masks := make([]*bitvec.Vector, st.NumPreds())
	masks[p] = bitvec.New(st.PredCount(p))
	masks[p].Set(1) // keep only (a,p,c)

	sub := st.RestrictByMask(masks)
	if sub.NumTriples() != 1 {
		t.Fatalf("kept = %d, want 1", sub.NumTriples())
	}
	a, _ := sub.TermID(rdf.NewIRI("a"))
	c, _ := sub.TermID(rdf.NewIRI("c"))
	if !sub.HasTriple(a, p, c) {
		t.Fatal("kept triple missing")
	}
	if sub.PredCount(q) != 0 {
		t.Fatal("nil mask should drop the predicate")
	}
	// POS side must be consistent too.
	if got := sub.Subjects(p, c); len(got) != 1 || got[0] != a {
		t.Fatalf("Subjects = %v", got)
	}
	// Stats recomputed.
	if sub.DistinctSubjects(p) != 1 || sub.DistinctObjects(p) != 1 {
		t.Fatal("stats not recomputed")
	}
	// Original untouched.
	if st.NumTriples() != 4 {
		t.Fatal("original mutated")
	}
}

func TestRestrictByMaskEmpty(t *testing.T) {
	st := maskFixture(t)
	sub := st.RestrictByMask(make([]*bitvec.Vector, st.NumPreds()))
	if sub.NumTriples() != 0 {
		t.Fatalf("kept = %d, want 0", sub.NumTriples())
	}
}

// TestMatricesConcurrent guards the lazy matrix cache against races
// (run with -race).
func TestMatricesConcurrent(t *testing.T) {
	st := maskFixture(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < st.NumPreds(); p++ {
				m := st.Matrices(PredID(p))
				if m.F.Dim() != st.NumNodes() {
					t.Error("bad matrix dimension")
					return
				}
			}
		}()
	}
	wg.Wait()
}
