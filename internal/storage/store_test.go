package storage

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dualsim/internal/rdf"
)

// fig1a returns the example graph database of the paper's Fig. 1(a).
func fig1a() []rdf.Triple {
	return []rdf.Triple{
		rdf.T("B._De_Palma", "directed", "Mission:_Impossible"),
		rdf.T("B._De_Palma", "awarded", "Oscar"),
		rdf.T("B._De_Palma", "born_in", "Newark"),
		rdf.T("B._De_Palma", "worked_with", "D._Koepp"),
		rdf.T("Mission:_Impossible", "genre", "Action"),
		rdf.T("Goldfinger", "genre", "Action"),
		rdf.T("G._Hamilton", "directed", "Goldfinger"),
		rdf.T("G._Hamilton", "born_in", "Paris"),
		rdf.T("G._Hamilton", "awarded", "Thunderball"),
		rdf.T("G._Hamilton", "worked_with", "H._Saltzman"),
		rdf.T("Goldfinger", "sequel_of", "From_Russia_with_Love"),
		rdf.T("From_Russia_with_Love", "prequel_of", "Goldfinger"),
		rdf.T("H._Saltzman", "born_in", "Saint_John"),
		rdf.T("T._Young", "directed", "From_Russia_with_Love"),
		rdf.T("T._Young", "awarded", "BAFTA_Awards"),
		rdf.T("D._Koepp", "worked_with", "P.R._Hunt"),
		rdf.T("D._Koepp", "directed", "Mortdecai"),
		rdf.TL("Newark", "population", "277140"),
		rdf.TL("Paris", "population", "2220445"),
		rdf.TL("Saint_John", "population", "70063"),
	}
}

func mustStore(t *testing.T, ts []rdf.Triple) *Store {
	t.Helper()
	st, err := FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBuildCounts(t *testing.T) {
	st := mustStore(t, fig1a())
	if st.NumTriples() != 20 {
		t.Fatalf("NumTriples = %d, want 20", st.NumTriples())
	}
	if st.NumPreds() != 8 {
		t.Fatalf("NumPreds = %d, want 8", st.NumPreds())
	}
	// 17 IRIs + 3 literals
	if st.NumNodes() != 20 {
		t.Fatalf("NumNodes = %d, want 20", st.NumNodes())
	}
}

func TestDedup(t *testing.T) {
	ts := []rdf.Triple{rdf.T("a", "p", "b"), rdf.T("a", "p", "b"), rdf.T("a", "p", "c")}
	st := mustStore(t, ts)
	if st.NumTriples() != 2 {
		t.Fatalf("NumTriples = %d, want 2", st.NumTriples())
	}
}

func TestLookups(t *testing.T) {
	st := mustStore(t, fig1a())
	directed, ok := st.PredIDOf("directed")
	if !ok {
		t.Fatal("predicate missing")
	}
	dp, ok := st.TermID(rdf.NewIRI("B._De_Palma"))
	if !ok {
		t.Fatal("term missing")
	}
	mi, _ := st.TermID(rdf.NewIRI("Mission:_Impossible"))

	if got := st.Objects(directed, dp); !reflect.DeepEqual(got, []NodeID{mi}) {
		t.Fatalf("Objects = %v", got)
	}
	if got := st.Subjects(directed, mi); !reflect.DeepEqual(got, []NodeID{dp}) {
		t.Fatalf("Subjects = %v", got)
	}
	if !st.HasTriple(dp, directed, mi) {
		t.Fatal("HasTriple false negative")
	}
	if st.HasTriple(mi, directed, dp) {
		t.Fatal("HasTriple false positive")
	}
}

func TestStats(t *testing.T) {
	st := mustStore(t, fig1a())
	directed, _ := st.PredIDOf("directed")
	if got := st.PredCount(directed); got != 4 {
		t.Fatalf("PredCount(directed) = %d, want 4", got)
	}
	// 4 distinct directors directed 4 distinct movies
	if got := st.DistinctSubjects(directed); got != 4 {
		t.Fatalf("DistinctSubjects = %d", got)
	}
	if got := st.DistinctObjects(directed); got != 4 {
		t.Fatalf("DistinctObjects = %d", got)
	}
	genre, _ := st.PredIDOf("genre")
	if got := st.DistinctObjects(genre); got != 1 {
		t.Fatalf("DistinctObjects(genre) = %d, want 1 (Action)", got)
	}
}

func TestLiteralAndIRIDistinct(t *testing.T) {
	// "70063" as literal and as IRI must intern to different nodes.
	ts := []rdf.Triple{
		rdf.TL("a", "p", "70063"),
		rdf.T("b", "p", "70063"),
	}
	st := mustStore(t, ts)
	lit, ok1 := st.TermID(rdf.NewLiteral("70063"))
	iri, ok2 := st.TermID(rdf.NewIRI("70063"))
	if !ok1 || !ok2 || lit == iri {
		t.Fatalf("universes collide: %v %v %d %d", ok1, ok2, lit, iri)
	}
	if st.Term(lit).Kind != rdf.Literal || st.Term(iri).Kind != rdf.IRI {
		t.Fatal("decode kind mismatch")
	}
}

func TestAddAfterBuildFails(t *testing.T) {
	st := mustStore(t, fig1a())
	if err := st.Add(rdf.T("x", "y", "z")); err == nil {
		t.Fatal("Add after Build succeeded")
	}
}

func TestAccessBeforeBuildPanics(t *testing.T) {
	st := New()
	_ = st.Add(rdf.T("a", "p", "b"))
	defer func() {
		if recover() == nil {
			t.Fatal("NumTriples before Build did not panic")
		}
	}()
	st.NumTriples()
}

func TestInvalidTripleRejected(t *testing.T) {
	st := New()
	bad := rdf.Triple{S: rdf.NewLiteral("x"), P: "p", O: rdf.NewIRI("y")}
	if err := st.Add(bad); err == nil {
		t.Fatal("literal subject accepted")
	}
}

func TestForEachTripleOrderAndStop(t *testing.T) {
	st := mustStore(t, fig1a())
	n := 0
	st.ForEachTriple(func(s NodeID, p PredID, o NodeID) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	total := 0
	st.ForEachTriple(func(s NodeID, p PredID, o NodeID) bool { total++; return true })
	if total != st.NumTriples() {
		t.Fatalf("visited %d of %d", total, st.NumTriples())
	}
}

func TestMatricesAgreeWithIndexes(t *testing.T) {
	st := mustStore(t, fig1a())
	for p := 0; p < st.NumPreds(); p++ {
		m := st.Matrices(PredID(p))
		if m.F.NNZ() != st.PredCount(PredID(p)) {
			t.Fatalf("pred %s: NNZ %d != count %d", st.Pred(PredID(p)), m.F.NNZ(), st.PredCount(PredID(p)))
		}
		if m.F.Dim() != st.NumNodes() {
			t.Fatal("matrix dimension mismatch")
		}
		// Summary vector must agree with distinct subjects/objects.
		if m.F.NonEmptyRowCount() != st.DistinctSubjects(PredID(p)) {
			t.Fatal("f_a summary mismatch")
		}
		if m.B.NonEmptyRowCount() != st.DistinctObjects(PredID(p)) {
			t.Fatal("b_a summary mismatch")
		}
	}
	// Cache must return the identical pair.
	p0 := st.Matrices(0)
	if p1 := st.Matrices(0); p1 != p0 {
		t.Fatal("matrix cache miss")
	}
}

func TestRestrict(t *testing.T) {
	st := mustStore(t, fig1a())
	directed, _ := st.PredIDOf("directed")
	pruned := st.Restrict(func(s NodeID, p PredID, o NodeID) bool { return p == directed })
	if pruned.NumTriples() != 4 {
		t.Fatalf("pruned NumTriples = %d, want 4", pruned.NumTriples())
	}
	// Shared dictionary: ids keep meaning.
	dp, ok := pruned.TermID(rdf.NewIRI("B._De_Palma"))
	if !ok {
		t.Fatal("term lost in restriction")
	}
	if orig, _ := st.TermID(rdf.NewIRI("B._De_Palma")); orig != dp {
		t.Fatal("ids changed in restriction")
	}
	// Non-kept predicates are empty but still addressable.
	genre, _ := pruned.PredIDOf("genre")
	if pruned.PredCount(genre) != 0 {
		t.Fatal("genre triples survived")
	}
	// Original untouched.
	if st.NumTriples() != 20 {
		t.Fatal("restriction mutated original")
	}
}

func TestTriplesRoundTrip(t *testing.T) {
	in := fig1a()
	st := mustStore(t, in)
	out := st.Triples()
	if len(out) != len(in) {
		t.Fatalf("Triples returned %d, want %d", len(out), len(in))
	}
	seen := make(map[string]bool)
	for _, tr := range out {
		seen[tr.String()] = true
	}
	for _, tr := range in {
		if !seen[tr.String()] {
			t.Fatalf("triple lost: %v", tr)
		}
	}
}

func randomTriples(r *rand.Rand, n int) []rdf.Triple {
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	preds := []string{"p", "q", "r"}
	ts := make([]rdf.Triple, n)
	for i := range ts {
		ts[i] = rdf.T(names[r.Intn(len(names))], preds[r.Intn(len(preds))], names[r.Intn(len(names))])
	}
	return ts
}

func TestPropertyIndexesConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st, err := FromTriples(randomTriples(r, r.Intn(100)+1))
		if err != nil {
			return false
		}
		// Every triple enumerated must be found by all lookup paths, and
		// PSO/POS must be transposes of each other.
		ok := true
		count := 0
		st.ForEachTriple(func(s NodeID, p PredID, o NodeID) bool {
			count++
			if !st.HasTriple(s, p, o) {
				ok = false
				return false
			}
			if !contains(st.Objects(p, s), o) || !contains(st.Subjects(p, o), s) {
				ok = false
				return false
			}
			return true
		})
		return ok && count == st.NumTriples()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRestrictIsSubset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st, err := FromTriples(randomTriples(r, r.Intn(120)+1))
		if err != nil {
			return false
		}
		keepPred := PredID(r.Intn(st.NumPreds()))
		sub := st.Restrict(func(s NodeID, p PredID, o NodeID) bool { return p == keepPred })
		ok := true
		sub.ForEachTriple(func(s NodeID, p PredID, o NodeID) bool {
			if p != keepPred || !st.HasTriple(s, p, o) {
				ok = false
				return false
			}
			return true
		})
		return ok && sub.NumTriples() == st.PredCount(keepPred)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func contains(xs []NodeID, x NodeID) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
