package storage

import (
	"bytes"
	"testing"

	"dualsim/internal/rdf"
)

func TestSnapshotCodecRoundTrip(t *testing.T) {
	st, err := FromTriples([]rdf.Triple{
		rdf.T("a", "p", "b"),
		rdf.T("b", "p", "c"),
		rdf.T("a", "q", "c"),
		rdf.TL("a", "label", "alpha"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.EncodeSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTriples() != st.NumTriples() || got.NumNodes() != st.NumNodes() || got.NumPreds() != st.NumPreds() {
		t.Fatalf("shape: %d/%d/%d vs %d/%d/%d",
			got.NumTriples(), got.NumNodes(), got.NumPreds(),
			st.NumTriples(), st.NumNodes(), st.NumPreds())
	}
	// Both index orders answer after the roundtrip.
	a, _ := got.TermID(rdf.NewIRI("a"))
	p, _ := got.PredIDOf("p")
	c, _ := got.TermID(rdf.NewIRI("c"))
	if objs := got.Objects(p, a); len(objs) != 1 {
		t.Fatalf("Objects(p, a) = %v", objs)
	}
	if subs := got.Subjects(p, c); len(subs) != 1 {
		t.Fatalf("Subjects(p, c) = %v", subs)
	}
	// Literal terms keep their kind (a "b"-IRI and a "b"-literal differ).
	if id, ok := got.TermID(rdf.NewLiteral("alpha")); !ok {
		t.Fatal("literal term lost")
	} else if !got.Term(id).IsLiteral() {
		t.Fatal("literal decoded as IRI")
	}
}

func TestSnapshotCodecEmptyStore(t *testing.T) {
	st := New()
	st.Build()
	var buf bytes.Buffer
	if err := st.EncodeSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTriples() != 0 || got.NumNodes() != 0 || got.NumPreds() != 0 {
		t.Fatalf("empty roundtrip: %d/%d/%d", got.NumTriples(), got.NumNodes(), got.NumPreds())
	}
}

func TestSnapshotCodecRejectsGarbage(t *testing.T) {
	st, err := FromTriples([]rdf.Triple{rdf.T("a", "p", "b"), rdf.T("b", "p", "c")})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.EncodeSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncations anywhere must error, never panic or mis-decode.
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeSnapshot(bytes.NewReader(raw[:cut])); err == nil {
			// A prefix that happens to decode fully is only legal if it is
			// the complete body.
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(raw))
		}
	}
}
