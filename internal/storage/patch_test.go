package storage

import (
	"reflect"
	"sort"
	"testing"

	"dualsim/internal/rdf"
)

func tripleSet(st *Store) map[string]bool {
	out := make(map[string]bool)
	for _, t := range st.Triples() {
		out[t.S.Key()+"|"+t.P+"|"+t.O.Key()] = true
	}
	return out
}

func TestAddAllAtomic(t *testing.T) {
	st := New()
	bad := []rdf.Triple{
		rdf.T("a", "p", "b"),
		{S: rdf.NewLiteral("oops"), P: "p", O: rdf.NewIRI("c")}, // invalid: literal subject
		rdf.T("d", "p", "e"),
	}
	if err := st.AddAll(bad); err == nil {
		t.Fatal("AddAll accepted an invalid batch")
	}
	// Nothing of the failed batch may be staged or interned: the store
	// must be exactly as before the call.
	if n := st.NumNodes(); n != 0 {
		t.Fatalf("failed AddAll interned %d terms, want 0", n)
	}
	if err := st.AddAll([]rdf.Triple{rdf.T("x", "p", "y")}); err != nil {
		t.Fatal(err)
	}
	st.Build()
	if st.NumTriples() != 1 || st.NumNodes() != 2 {
		t.Fatalf("got %d triples over %d nodes, want 1 over 2", st.NumTriples(), st.NumNodes())
	}
}

func TestPatchAddDelete(t *testing.T) {
	base := mustStore(t, fig1a())
	adds := []rdf.Triple{
		rdf.T("J._McTiernan", "directed", "Die_Hard"), // new subject, object
		rdf.T("B._De_Palma", "awarded", "Oscar"),      // duplicate: no-op
	}
	dels := []rdf.Triple{
		rdf.T("T._Young", "awarded", "BAFTA_Awards"),
		rdf.T("Nobody", "awarded", "Nothing"), // absent: no-op
	}
	next, stats, err := base.Patch(adds, dels)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 1 || stats.Deleted != 1 {
		t.Fatalf("stats = %+v, want Added 1 Deleted 1", stats)
	}
	if stats.NewTerms != 2 {
		t.Fatalf("NewTerms = %d, want 2", stats.NewTerms)
	}
	if next.NumTriples() != base.NumTriples() {
		t.Fatalf("net triple count changed: %d -> %d", base.NumTriples(), next.NumTriples())
	}

	// The receiver snapshot is untouched.
	if base.NumTriples() != 20 || base.NumNodes() != 20 {
		t.Fatalf("base mutated: %d triples, %d nodes", base.NumTriples(), base.NumNodes())
	}
	if _, ok := base.TermID(rdf.NewIRI("J._McTiernan")); ok {
		t.Fatal("base snapshot sees a term interned after it was taken")
	}
	if _, ok := next.TermID(rdf.NewIRI("J._McTiernan")); !ok {
		t.Fatal("patched snapshot misses its own new term")
	}

	got := tripleSet(next)
	if got["i:T._Young|awarded|i:BAFTA_Awards"] {
		t.Fatal("deleted triple survived the patch")
	}
	if !got["i:J._McTiernan|directed|i:Die_Hard"] {
		t.Fatal("added triple missing after the patch")
	}

	// Ids are stable across the lineage.
	id1, _ := base.TermID(rdf.NewIRI("B._De_Palma"))
	id2, ok := next.TermID(rdf.NewIRI("B._De_Palma"))
	if !ok || id1 != id2 {
		t.Fatalf("term id drifted across patch: %d vs %d", id1, id2)
	}
}

func TestPatchDeleteThenAddIsPresent(t *testing.T) {
	base := mustStore(t, []rdf.Triple{rdf.T("a", "p", "b")})
	next, stats, err := base.Patch(
		[]rdf.Triple{rdf.T("a", "p", "b")},
		[]rdf.Triple{rdf.T("a", "p", "b")},
	)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 0 || stats.Deleted != 0 {
		t.Fatalf("cancelled patch reported %+v", stats)
	}
	if next.NumTriples() != 1 {
		t.Fatalf("dels-before-adds semantics broken: %d triples", next.NumTriples())
	}
}

func TestPatchAtomicValidation(t *testing.T) {
	base := mustStore(t, fig1a())
	adds := []rdf.Triple{
		rdf.T("New_Subject", "p", "New_Object"),
		{S: rdf.NewLiteral("bad"), P: "p", O: rdf.NewIRI("x")},
	}
	if _, _, err := base.Patch(adds, nil); err == nil {
		t.Fatal("Patch accepted an invalid add")
	}
	// The valid prefix must not have leaked into the dictionary.
	if _, ok := base.d.lookupTerm(rdf.NewIRI("New_Subject").Key()); ok {
		t.Fatal("failed Patch interned terms")
	}
}

func TestPatchIndexAndMatrixReuse(t *testing.T) {
	base := mustStore(t, fig1a())
	dirID, _ := base.PredIDOf("directed")
	genreID, _ := base.PredIDOf("genre")
	base.Matrices(dirID)   // warm the to-be-touched predicate's cache
	base.Matrices(genreID) // warm an untouched predicate's cache

	// A delete touches only "directed"; no new terms, so untouched
	// matrices carry over.
	next, stats, err := base.Patch(nil, []rdf.Triple{rdf.T("D._Koepp", "directed", "Mortdecai")})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TouchedPreds != 1 {
		t.Fatalf("TouchedPreds = %d, want 1", stats.TouchedPreds)
	}
	if stats.ReusedMatrices != 1 {
		t.Fatalf("ReusedMatrices = %d, want 1 (genre)", stats.ReusedMatrices)
	}
	if stats.NewTerms != 0 {
		t.Fatalf("NewTerms = %d, want 0", stats.NewTerms)
	}
	wantTouched := []NodeID{}
	for _, v := range []string{"D._Koepp", "Mortdecai"} {
		id, _ := base.TermID(rdf.NewIRI(v))
		wantTouched = append(wantTouched, id)
	}
	gotTouched := append([]NodeID(nil), stats.TouchedNodes...)
	sort.Slice(gotTouched, func(i, j int) bool { return gotTouched[i] < gotTouched[j] })
	sort.Slice(wantTouched, func(i, j int) bool { return wantTouched[i] < wantTouched[j] })
	if !reflect.DeepEqual(gotTouched, wantTouched) {
		t.Fatalf("TouchedNodes = %v, want %v", gotTouched, wantTouched)
	}
	if next.NumTriples() != base.NumTriples()-1 {
		t.Fatalf("delete not applied: %d triples", next.NumTriples())
	}

	// The patched snapshot's indexes still agree with a from-scratch
	// build of the same triples.
	fresh := mustStore(t, next.Triples())
	if !reflect.DeepEqual(tripleSet(fresh), tripleSet(next)) {
		t.Fatal("patched snapshot diverges from a fresh build")
	}
	if next.DistinctSubjects(dirID) != fresh.DistinctSubjects(mustPred(t, fresh, "directed")) {
		t.Fatal("per-predicate statistics not maintained")
	}
}

func mustPred(t *testing.T, st *Store, p string) PredID {
	t.Helper()
	id, ok := st.PredIDOf(p)
	if !ok {
		t.Fatalf("predicate %q missing", p)
	}
	return id
}

func TestPatchChain(t *testing.T) {
	// A chain of patches stays consistent with the cumulative triple set.
	cur := mustStore(t, []rdf.Triple{rdf.T("n0", "next", "n1")})
	want := tripleSet(cur)
	for i := 1; i < 20; i++ {
		add := rdf.Triple{S: rdf.NewIRI(nodeName(i)), P: "next", O: rdf.NewIRI(nodeName(i + 1))}
		var dels []rdf.Triple
		if i%3 == 0 {
			dels = []rdf.Triple{{S: rdf.NewIRI(nodeName(i - 1)), P: "next", O: rdf.NewIRI(nodeName(i))}}
		}
		next, _, err := cur.Patch([]rdf.Triple{add}, dels)
		if err != nil {
			t.Fatal(err)
		}
		want[add.S.Key()+"|next|"+add.O.Key()] = true
		for _, d := range dels {
			delete(want, d.S.Key()+"|next|"+d.O.Key())
		}
		if got := tripleSet(next); !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: patched set diverged:\n got %v\nwant %v", i, got, want)
		}
		cur = next
	}
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
