// Package storage implements the in-memory graph database the rest of the
// system runs on: a dictionary-encoded triple store with per-predicate
// sorted indexes (PSO and POS order), per-predicate statistics for join
// ordering, and lazily built per-predicate adjacency bit-matrix pairs for
// the SOI solver.
//
// A Store is the concrete realization of the paper's graph database
// DB = (O_DB, Σ, E_DB): the node universe O_DB contains every subject and
// object term, the alphabet Σ is the predicate set, and E_DB is the triple
// relation.
package storage

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"sync"

	"dualsim/internal/bitmat"
	"dualsim/internal/bitvec"
	"dualsim/internal/rdf"
)

// NodeID indexes the node universe O_DB (subjects and objects).
type NodeID = uint32

// PredID indexes the predicate alphabet Σ.
type PredID = uint32

// pair is one (subject, object) edge of a predicate.
type pair struct{ a, b NodeID }

// predIndex holds one predicate's triples in the two sort orders plus
// statistics.
type predIndex struct {
	pso       []pair // sorted by (subject, object)
	pos       []pair // sorted by (object, subject)
	distinctS int
	distinctO int
}

// dict is the shared, append-only term and predicate dictionary of a
// store lineage. Snapshots derived from one another (Build, Restrict,
// Patch) all point at the same dict, so a node or predicate id decodes
// to the same term in every snapshot; each snapshot additionally records
// how much of the dictionary it can see, so terms interned by a later
// patch are invisible to (and unreachable from) earlier snapshots.
//
// Interning takes the write lock; lookups take the read lock. Slice
// elements, once appended, are never mutated, so snapshots may keep
// lock-free prefix views of terms and preds.
type dict struct {
	mu     sync.RWMutex
	terms  []rdf.Term
	termID map[string]NodeID
	preds  []string
	predID map[string]PredID
}

func newDict() *dict {
	return &dict{
		termID: make(map[string]NodeID),
		predID: make(map[string]PredID),
	}
}

func (d *dict) internTerm(t rdf.Term) NodeID {
	key := t.Key()
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.termID[key]; ok {
		return id
	}
	id := NodeID(len(d.terms))
	d.terms = append(d.terms, t)
	d.termID[key] = id
	return id
}

func (d *dict) internPred(p string) PredID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.predID[p]; ok {
		return id
	}
	id := PredID(len(d.preds))
	d.preds = append(d.preds, p)
	d.predID[p] = id
	return id
}

func (d *dict) lookupTerm(key string) (NodeID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.termID[key]
	return id, ok
}

func (d *dict) lookupPred(p string) (PredID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.predID[p]
	return id, ok
}

// views returns prefix snapshots of the term and predicate tables. The
// returned slice headers are stable: later appends may grow the shared
// backing array beyond their length but never touch the prefix.
func (d *dict) views() ([]rdf.Term, []string) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms, d.preds
}

// Store is an immutable-after-Build triple store snapshot. The zero
// value is not usable; call New. Snapshots derived via Restrict or Patch
// share the receiver's dictionary (see dict); the snapshot itself never
// changes after Build, so concurrent readers need no locking.
type Store struct {
	d     *dict
	terms []rdf.Term // prefix view of d.terms visible to this snapshot
	preds []string   // prefix view of d.preds visible to this snapshot

	byPred []predIndex
	nTrip  int
	built  bool

	matMu sync.Mutex
	mats  map[PredID]bitmat.Pair

	// staging, discarded by Build
	staged []tripleIDs
}

type tripleIDs struct {
	s NodeID
	p PredID
	o NodeID
}

// New returns an empty store with a fresh dictionary.
func New() *Store {
	return &Store{
		d:    newDict(),
		mats: make(map[PredID]bitmat.Pair),
	}
}

// Add stages one triple. Must be called before Build.
func (st *Store) Add(t rdf.Triple) error {
	if st.built {
		return fmt.Errorf("storage: Add after Build")
	}
	if err := t.Validate(); err != nil {
		return err
	}
	st.stage(t)
	st.terms, st.preds = st.d.views()
	return nil
}

// AddAll stages a batch of triples, atomically: the whole batch is
// validated up front, and on error nothing is staged and no term of the
// batch is interned — the store is exactly as it was before the call.
func (st *Store) AddAll(ts []rdf.Triple) error {
	if st.built {
		return fmt.Errorf("storage: Add after Build")
	}
	for i, t := range ts {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("storage: triple %d of %d: %w", i, len(ts), err)
		}
	}
	for _, t := range ts {
		st.stage(t)
	}
	st.terms, st.preds = st.d.views()
	return nil
}

// stage interns a validated triple and appends it to the staging area.
// Callers refresh the snapshot's dictionary views once per batch, not
// per triple (staging is single-owner: the dict cannot be shared before
// Build, so the views only serve the store's own pre-Build accessors).
func (st *Store) stage(t rdf.Triple) {
	st.staged = append(st.staged, tripleIDs{
		s: st.d.internTerm(t.S),
		p: st.d.internPred(t.P),
		o: st.d.internTerm(t.O),
	})
}

// Build finalizes the store: triples are deduplicated, both index orders
// are sorted, and statistics are computed. Build is idempotent.
func (st *Store) Build() {
	if st.built {
		return
	}
	st.terms, st.preds = st.d.views()
	st.byPred = make([]predIndex, len(st.preds))
	perPred := make([][]pair, len(st.preds))
	for _, t := range st.staged {
		perPred[t.p] = append(perPred[t.p], pair{a: t.s, b: t.o})
	}
	st.staged = nil
	st.nTrip = 0
	for p := range perPred {
		pso := dedupSorted(perPred[p])
		pos := make([]pair, len(pso))
		for i, e := range pso {
			pos[i] = pair{a: e.b, b: e.a}
		}
		sortPairs(pos)
		st.byPred[p] = predIndex{
			pso:       pso,
			pos:       pos,
			distinctS: countDistinctFirst(pso),
			distinctO: countDistinctFirst(pos),
		}
		st.nTrip += len(pso)
	}
	st.built = true
}

func sortPairs(ps []pair) {
	slices.SortFunc(ps, func(x, y pair) int {
		if c := cmp.Compare(x.a, y.a); c != 0 {
			return c
		}
		return cmp.Compare(x.b, y.b)
	})
}

func dedupSorted(ps []pair) []pair {
	sortPairs(ps)
	if len(ps) < 2 {
		return ps
	}
	out := ps[:1]
	for _, e := range ps[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return out
}

func countDistinctFirst(ps []pair) int {
	n := 0
	for i, e := range ps {
		if i == 0 || e.a != ps[i-1].a {
			n++
		}
	}
	return n
}

func (st *Store) mustBeBuilt() {
	if !st.built {
		panic("storage: access before Build")
	}
}

// NumTriples returns |E_DB| (after deduplication).
func (st *Store) NumTriples() int { st.mustBeBuilt(); return st.nTrip }

// NumNodes returns |O_DB|, the dimension of all bit-vectors and matrices.
func (st *Store) NumNodes() int { return len(st.terms) }

// NumPreds returns |Σ|.
func (st *Store) NumPreds() int { return len(st.preds) }

// Term decodes a node id.
func (st *Store) Term(id NodeID) rdf.Term { return st.terms[id] }

// TermID looks up a term. Terms interned into the shared dictionary
// after this snapshot was taken (by a Patch on a derived store) are
// reported as absent — they cannot occur in this snapshot's triples.
func (st *Store) TermID(t rdf.Term) (NodeID, bool) {
	id, ok := st.d.lookupTerm(t.Key())
	if !ok || int(id) >= len(st.terms) {
		return 0, false
	}
	return id, true
}

// Pred decodes a predicate id.
func (st *Store) Pred(id PredID) string { return st.preds[id] }

// PredIDOf looks up a predicate by IRI. Like TermID, predicates interned
// after this snapshot was taken are reported as absent.
func (st *Store) PredIDOf(p string) (PredID, bool) {
	id, ok := st.d.lookupPred(p)
	if !ok || int(id) >= len(st.preds) {
		return 0, false
	}
	return id, true
}

// PredCount returns the number of p-triples.
func (st *Store) PredCount(p PredID) int {
	st.mustBeBuilt()
	return len(st.byPred[p].pso)
}

// DistinctSubjects returns the number of distinct subjects under p.
func (st *Store) DistinctSubjects(p PredID) int {
	st.mustBeBuilt()
	return st.byPred[p].distinctS
}

// DistinctObjects returns the number of distinct objects under p.
func (st *Store) DistinctObjects(p PredID) int {
	st.mustBeBuilt()
	return st.byPred[p].distinctO
}

// lookup returns the sub-slice of ps whose first component equals key.
func lookup(ps []pair, key NodeID) []pair {
	lo := sort.Search(len(ps), func(i int) bool { return ps[i].a >= key })
	hi := sort.Search(len(ps), func(i int) bool { return ps[i].a > key })
	return ps[lo:hi]
}

// Objects returns the sorted objects o with (s, p, o) ∈ E_DB — the forward
// map F_p(s).
func (st *Store) Objects(p PredID, s NodeID) []NodeID {
	st.mustBeBuilt()
	sub := lookup(st.byPred[p].pso, s)
	out := make([]NodeID, len(sub))
	for i, e := range sub {
		out[i] = e.b
	}
	return out
}

// Subjects returns the sorted subjects s with (s, p, o) ∈ E_DB — the
// backward map B_p(o).
func (st *Store) Subjects(p PredID, o NodeID) []NodeID {
	st.mustBeBuilt()
	sub := lookup(st.byPred[p].pos, o)
	out := make([]NodeID, len(sub))
	for i, e := range sub {
		out[i] = e.b
	}
	return out
}

// HasTriple reports whether (s, p, o) ∈ E_DB.
func (st *Store) HasTriple(s NodeID, p PredID, o NodeID) bool {
	st.mustBeBuilt()
	sub := lookup(st.byPred[p].pso, s)
	i := sort.Search(len(sub), func(i int) bool { return sub[i].b >= o })
	return i < len(sub) && sub[i].b == o
}

// ForEachPair calls fn for every (s, o) pair of predicate p in PSO order;
// stops early if fn returns false.
func (st *Store) ForEachPair(p PredID, fn func(s, o NodeID) bool) {
	st.mustBeBuilt()
	for _, e := range st.byPred[p].pso {
		if !fn(e.a, e.b) {
			return
		}
	}
}

// ForEachTriple calls fn for every triple in (pred, subject, object)
// order; stops early if fn returns false.
func (st *Store) ForEachTriple(fn func(s NodeID, p PredID, o NodeID) bool) {
	st.mustBeBuilt()
	for p := range st.byPred {
		for _, e := range st.byPred[p].pso {
			if !fn(e.a, PredID(p), e.b) {
				return
			}
		}
	}
}

// Triples materializes the whole store as decoded rdf triples (test and
// export helper).
func (st *Store) Triples() []rdf.Triple {
	st.mustBeBuilt()
	out := make([]rdf.Triple, 0, st.nTrip)
	st.ForEachTriple(func(s NodeID, p PredID, o NodeID) bool {
		out = append(out, rdf.Triple{S: st.terms[s], P: st.preds[p], O: st.terms[o]})
		return true
	})
	return out
}

// Matrices returns the adjacency bit-matrix pair (F_p, B_p) for predicate
// p, building and caching it on first use — per §3.3 only the matrices a
// pattern actually mentions are ever materialized.
func (st *Store) Matrices(p PredID) bitmat.Pair {
	st.mustBeBuilt()
	st.matMu.Lock()
	defer st.matMu.Unlock()
	if m, ok := st.mats[p]; ok {
		return m
	}
	cells := make([]bitmat.Cell, len(st.byPred[p].pso))
	for i, e := range st.byPred[p].pso {
		cells[i] = bitmat.Cell{Row: e.a, Col: e.b}
	}
	m := bitmat.NewPair(st.NumNodes(), cells)
	st.mats[p] = m
	return m
}

// Restrict builds a new store over the same dictionaries containing only
// the triples accepted by keep. Node and predicate ids remain valid across
// the restriction, so solution mappings computed against the restricted
// store compare directly with ones from the original — this is how the
// pruned database of the paper's Sect. 5 is represented.
func (st *Store) Restrict(keep func(s NodeID, p PredID, o NodeID) bool) *Store {
	st.mustBeBuilt()
	out := &Store{
		d:     st.d,
		terms: st.terms,
		preds: st.preds,
		mats:  make(map[PredID]bitmat.Pair),
	}
	out.byPred = make([]predIndex, len(st.preds))
	for p := range st.byPred {
		var kept []pair
		for _, e := range st.byPred[p].pso {
			if keep(e.a, PredID(p), e.b) {
				kept = append(kept, e)
			}
		}
		pos := make([]pair, len(kept))
		for i, e := range kept {
			pos[i] = pair{a: e.b, b: e.a}
		}
		sortPairs(pos)
		out.byPred[p] = predIndex{
			pso:       kept,
			pos:       pos,
			distinctS: countDistinctFirst(kept),
			distinctO: countDistinctFirst(pos),
		}
		out.nTrip += len(kept)
	}
	out.built = true
	return out
}

// PairAt returns the i-th (subject, object) pair of predicate p in PSO
// order; 0 ≤ i < PredCount(p).
func (st *Store) PairAt(p PredID, i int) (NodeID, NodeID) {
	st.mustBeBuilt()
	e := st.byPred[p].pso[i]
	return e.a, e.b
}

// FindPair returns the PSO position of (s, p, o), or -1 if absent. The
// position is stable for the lifetime of the store and is used to address
// triples in pruning masks.
func (st *Store) FindPair(p PredID, s, o NodeID) int {
	st.mustBeBuilt()
	ps := st.byPred[p].pso
	lo := sort.Search(len(ps), func(i int) bool {
		return ps[i].a > s || (ps[i].a == s && ps[i].b >= o)
	})
	if lo < len(ps) && ps[lo].a == s && ps[lo].b == o {
		return lo
	}
	return -1
}

// RestrictByMask builds a restricted store (shared dictionaries, cf.
// Restrict) keeping exactly the triples whose PSO position is set in the
// predicate's mask. A nil mask drops the whole predicate.
func (st *Store) RestrictByMask(masks []*bitvec.Vector) *Store {
	st.mustBeBuilt()
	out := &Store{
		d:     st.d,
		terms: st.terms,
		preds: st.preds,
		mats:  make(map[PredID]bitmat.Pair),
	}
	out.byPred = make([]predIndex, len(st.preds))
	for p := range st.byPred {
		var kept []pair
		if p < len(masks) && masks[p] != nil {
			src := st.byPred[p].pso
			masks[p].ForEach(func(i int) bool {
				kept = append(kept, src[i])
				return true
			})
		}
		pos := make([]pair, len(kept))
		for i, e := range kept {
			pos[i] = pair{a: e.b, b: e.a}
		}
		sortPairs(pos)
		out.byPred[p] = predIndex{
			pso:       kept,
			pos:       pos,
			distinctS: countDistinctFirst(kept),
			distinctO: countDistinctFirst(pos),
		}
		out.nTrip += len(kept)
	}
	out.built = true
	return out
}

// FromTriples is a convenience constructor: stage, build, return.
func FromTriples(ts []rdf.Triple) (*Store, error) {
	st := New()
	if err := st.AddAll(ts); err != nil {
		return nil, err
	}
	st.Build()
	return st, nil
}
