// Package wire defines the JSON protocol of the dualsimd serving
// subsystem, shared by internal/server (the HTTP front end) and the
// public client package so the two cannot drift.
//
// Two response shapes exist for queries:
//
//   - buffered: one Envelope object carrying vars, all rows and stats;
//   - streamed (Content-Type application/x-ndjson): one Event object per
//     line — a "header" first (vars + epoch), then one "row" per
//     solution mapping in chunks, a final "stats" trailer, or an
//     "error" if execution fails after the HTTP status was committed.
//
// Every response is epoch-tagged: the header/envelope carries the store
// epoch the execution answered from, and the stats trailer repeats it,
// so a client can verify MVCC consistency (header epoch == stats epoch)
// across concurrent Apply traffic.
package wire

import (
	"fmt"

	"dualsim"
	"dualsim/internal/stats"
	"dualsim/internal/trace"
)

// Content types of the two query response shapes.
const (
	ContentTypeJSON   = "application/json"
	ContentTypeNDJSON = "application/x-ndjson"
)

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// Query is the SPARQL fragment source text.
	Query string `json:"query"`
	// TimeoutMs, when > 0, bounds the execution: the server derives a
	// context deadline and aborts the solver/engines when it passes
	// (HTTP 504).
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Limit, when > 0, truncates the response to that many rows (the
	// execution itself is not bounded; dual simulation prunes globally).
	Limit int `json:"limit,omitempty"`
	// Stream requests the NDJSON row-stream shape. The ?stream=1 URL
	// parameter and an Accept: application/x-ndjson header do the same.
	Stream bool `json:"stream,omitempty"`
	// Trace requests the execution's span tree in the stats trailer
	// (ExecStats.Trace). The ?trace=1 URL parameter and a W3C
	// traceparent header do the same; a traceparent additionally makes
	// the server adopt the caller's trace ID.
	Trace bool `json:"trace,omitempty"`
	// Explain, instead of executing, returns the compiled plan
	// (ExplainResponse): "plan" renders without executing, "analyze"
	// executes with per-operator timing.
	Explain string `json:"explain,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// Queries are executed concurrently over the session's batch pool;
	// results are positional.
	Queries []string `json:"queries"`
	// TimeoutMs bounds the whole batch.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Limit truncates each result's rows.
	Limit int `json:"limit,omitempty"`
	// FailFast aborts the batch on the first per-query error.
	FailFast bool `json:"failFast,omitempty"`
	// Trace requests the batch's span tree in the response stats (see
	// QueryRequest.Trace).
	Trace bool `json:"trace,omitempty"`
}

// Triple is the wire form of one RDF triple. O and Lit are mutually
// exclusive object encodings: O an IRI, Lit a literal value.
type Triple struct {
	S   string `json:"s"`
	P   string `json:"p"`
	O   string `json:"o,omitempty"`
	Lit string `json:"lit,omitempty"`
	// IsLit disambiguates an empty-string literal from an IRI object.
	IsLit bool `json:"isLit,omitempty"`
}

// FromTriple converts a decoded triple to wire form.
func FromTriple(t dualsim.Triple) Triple {
	w := Triple{S: t.S.Value, P: t.P}
	if t.O.IsLiteral() {
		w.Lit, w.IsLit = t.O.Value, true
	} else {
		w.O = t.O.Value
	}
	return w
}

// Validate rejects a triple that sets both object encodings — silently
// preferring one would drop the other half of the caller's intent.
// Deeper well-formedness (empty subject/predicate, …) is checked by the
// engine's rdf.Triple.Validate at Apply time.
func (w Triple) Validate() error {
	if w.O != "" && (w.IsLit || w.Lit != "") {
		return fmt.Errorf("wire: triple (%s, %s) sets both o and lit; the object encodings are mutually exclusive", w.S, w.P)
	}
	return nil
}

// ToTriple converts a wire triple back to the engine form (see Validate
// for the ambiguous case).
func (w Triple) ToTriple() dualsim.Triple {
	if w.IsLit || w.Lit != "" {
		return dualsim.TL(w.S, w.P, w.Lit)
	}
	return dualsim.T(w.S, w.P, w.O)
}

// ApplyRequest is the body of POST /v1/apply. Dels are applied before
// Adds, atomically, exactly like dualsim.Delta.
type ApplyRequest struct {
	Adds []Triple `json:"adds,omitempty"`
	Dels []Triple `json:"dels,omitempty"`
}

// Event is one NDJSON line of a streamed query response. Kind selects
// which of the other fields are set.
type Event struct {
	// Kind is "header", "row", "stats" or "error".
	Kind string `json:"kind"`
	// Vars (header) are the result columns, in row order.
	Vars []string `json:"vars,omitempty"`
	// Epoch is the store epoch the execution answers from. Every event
	// of one stream carries the same value (epoch 0 is meaningful, so
	// the field is never omitted): a consumer can detect a torn stream
	// from any single line.
	Epoch uint64 `json:"epoch"`
	// Values (row) are the decoded bindings positional over Vars, in
	// N-Triples rendering (<iri> / "literal"); null marks an unbound
	// variable (µ is partial).
	Values []*string `json:"values,omitempty"`
	// Stats (stats) is the execution's ExecStats; Rows the total row
	// count, Truncated whether a Limit cut the stream short.
	Stats     *dualsim.ExecStats `json:"stats,omitempty"`
	Rows      int                `json:"rows,omitempty"`
	Truncated bool               `json:"truncated,omitempty"`
	// Error (error) is the failure message of a stream that died after
	// the 200 status was committed: rows are computed incrementally off
	// the executor's iterator tree, so a timeout or cancellation can
	// strike mid-stream — the error event replaces the stats trailer
	// and tells the client the stream is dead, not complete.
	Error string `json:"error,omitempty"`
}

// Event kinds.
const (
	EventHeader = "header"
	EventRow    = "row"
	EventStats  = "stats"
	EventError  = "error"
)

// QueryResponse is the buffered query response envelope.
type QueryResponse struct {
	Vars []string `json:"vars"`
	// Rows are decoded bindings, positional over Vars; null marks an
	// unbound variable.
	Rows [][]*string `json:"rows"`
	// Epoch duplicates Stats.Epoch for cheap top-level access.
	Epoch     uint64             `json:"epoch"`
	Truncated bool               `json:"truncated,omitempty"`
	Stats     *dualsim.ExecStats `json:"stats,omitempty"`
}

// BatchItem is one positional outcome of a batch response.
type BatchItem struct {
	// Error is set instead of the result fields when the query failed.
	Error     string             `json:"error,omitempty"`
	Vars      []string           `json:"vars,omitempty"`
	Rows      [][]*string        `json:"rows,omitempty"`
	Epoch     uint64             `json:"epoch"`
	Truncated bool               `json:"truncated,omitempty"`
	Stats     *dualsim.ExecStats `json:"stats,omitempty"`
}

// BatchResponse is the body of a POST /v1/batch reply.
type BatchResponse struct {
	Results []BatchItem        `json:"results"`
	Stats   dualsim.BatchStats `json:"stats"`
}

// ApplyResponse is the body of a POST /v1/apply or /v1/compact reply.
type ApplyResponse struct {
	Stats dualsim.ApplyStats `json:"stats"`
}

// CheckpointResponse is the body of a POST /v1/checkpoint reply: the
// durable session rolled its WAL into a fresh on-disk snapshot.
type CheckpointResponse struct {
	Stats dualsim.CheckpointStats `json:"stats"`
}

// SnapshotResponse is the body of GET /v1/snapshot: the current epoch
// and store shape, for clients tracking MVCC progress.
type SnapshotResponse struct {
	Epoch       uint64 `json:"epoch"`
	Triples     int    `json:"triples"`
	Nodes       int    `json:"nodes"`
	Predicates  int    `json:"predicates"`
	OverlaySize int    `json:"overlaySize"`
	Compactions int    `json:"compactions"`
}

// HealthResponse is the body of GET /healthz (liveness) and
// GET /readyz (readiness). Status is "ok"/"ready" on 200; on a 503
// readiness reply it names why the instance should not be routed to
// ("draining", "notready"), with Reason carrying detail.
type HealthResponse struct {
	Status string `json:"status"`
	Epoch  uint64 `json:"epoch"`
	Reason string `json:"reason,omitempty"`
	// Version and Revision identify the build (module version and VCS
	// revision), from runtime/debug.ReadBuildInfo.
	Version  string `json:"version,omitempty"`
	Revision string `json:"revision,omitempty"`
}

// WALEvent is one NDJSON line of GET /v1/wal — the replication tail
// stream. The shape mirrors the query stream: a "header" first (the
// primary's current epoch plus its last checkpoint epoch), then one
// "apply"/"compact" event per WAL record in replay order, and an "end"
// trailer repeating the primary epoch so a replica can compute its lag
// without a second round-trip.
type WALEvent struct {
	// Kind is "header", "apply", "compact" or "end".
	Kind string `json:"kind"`
	// Epoch: on header/end, the primary's current epoch; on
	// apply/compact, the record's post-operation epoch (replaying it
	// onto epoch N-1 must yield exactly N).
	Epoch uint64 `json:"epoch"`
	// CheckpointEpoch (header) is the primary's last checkpoint epoch —
	// the oldest state a fresh bootstrap snapshot can start from.
	CheckpointEpoch uint64 `json:"checkpointEpoch,omitempty"`
	// Adds and Dels (apply) are the record's delta; dels before adds.
	Adds []Triple `json:"adds,omitempty"`
	Dels []Triple `json:"dels,omitempty"`
}

// WALEvent kinds.
const (
	WALHeader  = "header"
	WALApply   = "apply"
	WALCompact = "compact"
	WALEnd     = "end"
)

// ExportResponse is the body of GET /v1/export?pred=…: every triple of
// the requested predicates at one pinned epoch. The router's
// cross-shard gather path uses it to assemble a scratch store when a
// query's predicates span shards. The response is buffered JSON —
// acceptable because a gather only ships the slices a query mentions,
// and bounded by the predicates' cardinality, not the store size.
type ExportResponse struct {
	Epoch   uint64   `json:"epoch"`
	Triples []Triple `json:"triples"`
}

// EndpointStatus is the router's live view of one shard endpoint.
type EndpointStatus struct {
	URL  string `json:"url"`
	Role string `json:"role"` // "primary" or "replica"
	// Up reports the endpoint answered its last probe at all; Ready
	// that it answered 200 on /readyz (bootstrapped, within the
	// staleness bound, not draining).
	Up    bool   `json:"up"`
	Ready bool   `json:"ready"`
	Epoch uint64 `json:"epoch"`
	// LatencyMs is the last probe's round-trip time.
	LatencyMs float64 `json:"latencyMs"`
	Error     string  `json:"error,omitempty"`
}

// ShardStatus groups a shard's endpoints (primary first).
type ShardStatus struct {
	Shard     int              `json:"shard"`
	Endpoints []EndpointStatus `json:"endpoints"`
}

// ClusterStatusResponse is the body of the router's GET /v1/cluster.
type ClusterStatusResponse struct {
	Shards int           `json:"shards"`
	Status []ShardStatus `json:"status"`
}

// ShardApply is one shard's slice of a routed apply.
type ShardApply struct {
	Shard int                `json:"shard"`
	Stats dualsim.ApplyStats `json:"stats"`
}

// ClusterApplyResponse is the body of the router's POST /v1/apply: the
// delta was split by predicate placement and applied per shard. The
// split is NOT atomic across shards — each shard's slice is atomic and
// epoch-bumped on its own counter; Results reports every slice.
type ClusterApplyResponse struct {
	Results []ShardApply `json:"results"`
}

// ExplainResponse is the body of a query request with Explain set (or
// GET-style ?explain=plan|analyze): the compiled plan, optionally
// executed.
type ExplainResponse struct {
	Explain *dualsim.Explain `json:"explain"`
	// Text is the deterministic indented render of the plan tree.
	Text string `json:"text"`
}

// SlowLogResponse is the body of GET /v1/debug/slow: the retained
// slow-query entries, newest first.
type SlowLogResponse struct {
	// ThresholdMs is the configured slow threshold.
	ThresholdMs float64 `json:"thresholdMs"`
	// Total counts every request that crossed the threshold since boot
	// (entries beyond the ring capacity are dropped oldest-first).
	Total   int64         `json:"total"`
	Entries []trace.Entry `json:"entries"`
}

// StatementsResponse is the body of GET /v1/debug/statements: the
// workload statistics rows, ordered by total execution time descending —
// pg_stat_statements for dualsim. On the router the rows are the
// fingerprint-keyed merge of every shard's table and Shards counts the
// sources; on a daemon Shards is 0.
type StatementsResponse struct {
	// Statements are the per-normalized-statement aggregates.
	Statements []stats.Statement `json:"statements"`
	// Tracked and Evicted size the store: distinct statements currently
	// held, and how many were LRU-evicted since boot (or the last reset).
	Tracked int   `json:"tracked"`
	Evicted int64 `json:"evicted,omitempty"`
	// LatencyBounds are the histogram bucket upper bounds (seconds)
	// behind each row's latencyBuckets counts (which carry one extra
	// +Inf bucket).
	LatencyBounds []float64 `json:"latencyBounds,omitempty"`
	// Shards is the number of shard tables merged into this view (router
	// only).
	Shards int `json:"shards,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterMs mirrors the Retry-After header on 429 replies.
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}
