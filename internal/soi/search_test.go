package soi

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"dualsim/internal/bitmat"
	"dualsim/internal/bitvec"
)

// chainSystem builds a pattern cycle over a long data chain — a system
// whose convergence speed is highly order-sensitive.
func chainSystem(n int) *System {
	cells := make([]bitmat.Cell, 0, n-1)
	for i := 0; i < n-1; i++ {
		cells = append(cells, bitmat.Cell{Row: uint32(i), Col: uint32(i + 1)})
	}
	mats := bitmat.NewPair(n, cells)
	s := NewSystem(n)
	v := s.AddVar("v", nil, true)
	w := s.AddVar("w", nil, true)
	s.AddEdge(v, w, mats, "next")
	s.AddEdge(w, v, mats, "next")
	return s
}

func TestSearchOrdersFindsSpread(t *testing.T) {
	s := chainSystem(24)
	stats := s.SearchOrders(context.Background(), 30, 7, Options{})
	if stats.Trials != 30 {
		t.Fatalf("trials = %d", stats.Trials)
	}
	if stats.BestRounds > stats.HeuristicRounds {
		t.Fatalf("best %d > heuristic %d", stats.BestRounds, stats.HeuristicRounds)
	}
	if stats.BestRounds > stats.WorstRounds {
		t.Fatalf("best %d > worst %d", stats.BestRounds, stats.WorstRounds)
	}
	if len(stats.BestPermutation) != s.NumIneqs() {
		t.Fatalf("permutation length %d", len(stats.BestPermutation))
	}
}

// TestPropertyPermutationInvariantSolution: the solution is the same
// under every permutation — only the effort differs (uniqueness of the
// largest solution, Proposition 1).
func TestPropertyPermutationInvariantSolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(30) + 4
		var cells []bitmat.Cell
		for i := 0; i < r.Intn(3*n)+2; i++ {
			cells = append(cells, bitmat.Cell{Row: uint32(r.Intn(n)), Col: uint32(r.Intn(n))})
		}
		mats := bitmat.NewPair(n, cells)
		s := NewSystem(n)
		a := s.AddVar("a", nil, true)
		b := s.AddVar("b", nil, true)
		c := s.AddVar("c", nil, true)
		s.AddEdge(a, b, mats, "p")
		s.AddEdge(b, c, mats, "p")
		s.AddEdge(c, a, mats, "p")

		want := s.Solve(context.Background(), Options{})
		perm := make([]int, s.NumIneqs())
		for i := range perm {
			perm[i] = i
		}
		for trial := 0; trial < 5; trial++ {
			r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			sol := s.Solve(context.Background(), Options{Permutation: append([]int(nil), perm...)})
			for v := range want.Chi {
				if !sol.Chi[v].Equal(want.Chi[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchOrdersRespectsBounds(t *testing.T) {
	// A system with constants: search must not disturb initial bounds.
	n := 6
	mats := bitmat.NewPair(n, []bitmat.Cell{{Row: 0, Col: 1}, {Row: 2, Col: 3}})
	s := NewSystem(n)
	v := s.AddVar("v", bitvec.FromBits(n, 0), true)
	w := s.AddVar("w", nil, true)
	s.AddEdge(v, w, mats, "p")
	stats := s.SearchOrders(context.Background(), 10, 3, Options{})
	sol := s.Solve(context.Background(), Options{Permutation: stats.BestPermutation})
	if !sol.Chi[v].Equal(bitvec.FromBits(n, 0)) || !sol.Chi[w].Equal(bitvec.FromBits(n, 1)) {
		t.Fatalf("solution drifted: v=%v w=%v", sol.Chi[v], sol.Chi[w])
	}
}
