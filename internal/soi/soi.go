// Package soi implements the system-of-inequalities (SOI) characterization
// of dual simulation from Sect. 3 of the paper.
//
// A System holds one variable per pattern node (plus renamed copies
// introduced for SPARQL OPTIONAL handling, cf. Sect. 4) and three kinds of
// constraints:
//
//   - an initial upper bound per variable — inequality (12) `v ≤ 1`, or its
//     sharpened form (13) using the label summary vectors f_a, b_a, possibly
//     intersected with a singleton when the pattern node is a constant;
//   - edge inequalities `w ≤ v ×b F_a` and `v ≤ w ×b B_a` — inequality (11),
//     one pair per pattern edge (v, a, w);
//   - copy inequalities `x ≤ y` — inequalities (14)/(15) linking optional
//     variable copies to their mandatory originals.
//
// Solve computes the largest solution with the round-based worklist
// algorithm of Sect. 3.2, step 2: evaluate unstable inequalities, shrink
// the left-hand variable by the ∧-update, and destabilize every inequality
// whose right-hand side mentions the shrunken variable. The evaluation
// strategy for each ×b (row-wise vs. column-wise) and the processing order
// of unstable inequalities follow the heuristics of Sect. 3.3 and can be
// overridden for ablation experiments.
package soi

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"dualsim/internal/bitmat"
	"dualsim/internal/bitvec"
)

// Var indexes a variable of the system.
type Var int

// Kind distinguishes the two inequality forms.
type Kind uint8

const (
	// Edge is an inequality X ≤ Y ×b A with A an adjacency matrix.
	Edge Kind = iota
	// Copy is an inequality X ≤ Y.
	Copy
)

// Ineq is one inequality of the system.
type Ineq struct {
	Kind Kind
	X    Var // constrained (left-hand) variable
	Y    Var // right-hand variable

	// Edge-only fields.
	Mats  bitmat.Pair
	Dir   bitmat.Direction
	Label string // predicate name, for diagnostics

	// emptyCols caches the number of empty columns of the effective
	// matrix — the static ordering heuristic key (§3.3).
	emptyCols int
}

func (iq Ineq) String() string {
	if iq.Kind == Copy {
		return fmt.Sprintf("x%d ≤ x%d", iq.X, iq.Y)
	}
	d := "F"
	if iq.Dir == bitmat.Backward {
		d = "B"
	}
	return fmt.Sprintf("x%d ≤ x%d ×b %s_%s", iq.X, iq.Y, d, iq.Label)
}

// System is a system of inequalities over an n-dimensional node universe.
type System struct {
	n       int
	names   []string
	init    []*bitvec.Vector
	ineqs   []Ineq
	deps    [][]int // deps[v] = indices of inequalities with Y == v
	reqVars []bool  // mandatory variables (empty ⇒ no query match exists)

	finalize  sync.Once
	finalized bool

	// pool recycles per-solve workspaces (χ rows, scratch, worklists)
	// between SolveCtx calls — a finalized system's dimensions are frozen,
	// so a released workspace always fits the next solve exactly.
	pool sync.Pool
}

// workspace is the mutable per-solve state. Every concurrent solve owns
// one exclusively; Solution.Release returns it to the system's pool.
type workspace struct {
	chi     []*bitvec.Vector
	scratch *bitvec.Vector
	queueA  []int
	queueB  []int
	inQueue []bool
}

// acquire returns a ready workspace: pooled when available (with the
// stale inQueue flags of an interrupted previous solve cleared),
// freshly allocated otherwise. Must be called after Finalize.
func (s *System) acquire() *workspace {
	if w, _ := s.pool.Get().(*workspace); w != nil {
		clear(w.inQueue)
		return w
	}
	w := &workspace{
		chi:     make([]*bitvec.Vector, len(s.names)),
		scratch: bitvec.New(s.n),
		queueA:  make([]int, 0, len(s.ineqs)),
		queueB:  make([]int, 0, len(s.ineqs)),
		inQueue: make([]bool, len(s.ineqs)),
	}
	for v := range w.chi {
		w.chi[v] = bitvec.New(s.n)
	}
	return w
}

// NewSystem returns an empty system over an n-node universe.
func NewSystem(n int) *System {
	return &System{n: n}
}

// Dim returns the node-universe size n.
func (s *System) Dim() int { return s.n }

// NumVars returns the number of variables.
func (s *System) NumVars() int { return len(s.names) }

// NumIneqs returns the number of inequalities.
func (s *System) NumIneqs() int { return len(s.ineqs) }

// VarName returns the diagnostic name of v.
func (s *System) VarName(v Var) string { return s.names[v] }

// Ineqs returns the inequality list (read-only).
func (s *System) Ineqs() []Ineq { return s.ineqs }

// AddVar adds a variable with the given name, initial upper bound and
// mandatory flag. If init is nil the bound is the full vector 1
// (inequality (12)). The bound is cloned by Solve, never mutated.
func (s *System) AddVar(name string, init *bitvec.Vector, required bool) Var {
	s.mustBeOpen()
	if init != nil && init.Len() != s.n {
		panic(fmt.Sprintf("soi: init length %d != dim %d", init.Len(), s.n))
	}
	v := Var(len(s.names))
	s.names = append(s.names, name)
	s.init = append(s.init, init)
	s.reqVars = append(s.reqVars, required)
	return v
}

// ConstrainInit intersects the initial bound of v with extra — used to
// layer the summary-vector initialization (13) and constant bindings on
// top of (12).
func (s *System) ConstrainInit(v Var, extra *bitvec.Vector) {
	s.mustBeOpen()
	if extra.Len() != s.n {
		panic("soi: bound length mismatch")
	}
	if s.init[v] == nil {
		s.init[v] = extra.Clone()
		return
	}
	s.init[v].And(extra)
}

// AddEdge installs the two inequalities (11) for a pattern edge
// (from, label, to): to ≤ from ×b F_a and from ≤ to ×b B_a.
func (s *System) AddEdge(from, to Var, mats bitmat.Pair, label string) {
	s.mustBeOpen()
	fwdEmptyCols := mats.F.Dim() - mats.B.NonEmptyRowCount()
	bwdEmptyCols := mats.B.Dim() - mats.F.NonEmptyRowCount()
	s.ineqs = append(s.ineqs,
		Ineq{Kind: Edge, X: to, Y: from, Mats: mats, Dir: bitmat.Forward, Label: label, emptyCols: fwdEmptyCols},
		Ineq{Kind: Edge, X: from, Y: to, Mats: mats, Dir: bitmat.Backward, Label: label, emptyCols: bwdEmptyCols},
	)
}

// AddCopy installs the inequality x ≤ y (inequalities (14)/(15)).
func (s *System) AddCopy(x, y Var) {
	s.mustBeOpen()
	s.ineqs = append(s.ineqs, Ineq{Kind: Copy, X: x, Y: y})
}

func (s *System) mustBeOpen() {
	if s.finalized {
		panic("soi: system modified after Finalize")
	}
}

// Order selects the processing order of unstable inequalities in a round.
type Order uint8

const (
	// SparsestFirst processes inequalities whose matrices have more empty
	// columns first — the paper's static heuristic (§3.3).
	SparsestFirst Order = iota
	// DeclarationOrder keeps insertion order (ablation baseline).
	DeclarationOrder
)

// Options control Solve.
type Options struct {
	// Strategy is the ×b evaluation strategy (default Auto, the paper's
	// popcount heuristic).
	Strategy bitmat.Strategy
	// Order is the per-round inequality ordering (default SparsestFirst).
	Order Order
	// ShortCircuit stops as soon as a required variable becomes empty.
	// Sound for query processing: an empty mandatory variable means the
	// query has no matches at all (Theorem 1).
	ShortCircuit bool
	// Workers > 1 evaluates each ×b multiplication with that many
	// goroutines (the bit-matrix parallelization of Sect. 1).
	Workers int
	// Permutation, when non-nil, fixes an explicit inequality evaluation
	// order (overriding Order) — used by SearchOrders to explore the
	// order space the way the paper's §5.3 brute-force analysis does.
	// Must be a permutation of [0, NumIneqs()).
	Permutation []int
	// Restrict, when non-nil, intersects the initial bound of variable v
	// with Restrict[v] for every non-nil entry. It tightens a single Solve
	// call without mutating the system, so a finalized System stays safe
	// for concurrent reuse; any superset of the largest solution (e.g.
	// fingerprint-lifted candidate sets) leaves the fixpoint unchanged.
	// SolveCtx rejects a Restrict with more entries than NumVars(), or a
	// non-nil entry whose length differs from Dim(), with a descriptive
	// error — a mis-sized restrict is a caller bug, not a no-op.
	Restrict []*bitvec.Vector
}

// Stats reports solver effort, the quantities discussed in §5.2/§5.3.
type Stats struct {
	// Rounds counts worklist rounds (the paper's "iterations"): all
	// inequalities unstable at the start of a round are evaluated once.
	Rounds int
	// Evaluations counts individual inequality evaluations.
	Evaluations int
	// Updates counts evaluations that shrank a variable.
	Updates int
	// ShortCircuited reports whether Solve stopped early on an empty
	// required variable.
	ShortCircuited bool
}

// Solution is the largest solution of the system: one χS row per variable.
type Solution struct {
	Chi   []*bitvec.Vector
	Stats Stats

	sys *System    // owning system, for Release
	ws  *workspace // backing storage of Chi; nil once released
}

// Release returns the solution's χ storage to the owning system's solver
// pool, so the next SolveCtx reuses it instead of allocating fresh
// vectors. The solution (and every Chi row) must not be used afterwards.
// Release is optional — an unreleased solution is simply collected by the
// GC — and idempotent.
func (sol *Solution) Release() {
	if sol == nil || sol.ws == nil {
		return
	}
	sol.sys.pool.Put(sol.ws)
	sol.ws, sol.sys, sol.Chi = nil, nil, nil
}

// EmptyRequired reports whether some required variable has an empty χS
// row, i.e. the query is unsatisfiable (no SPARQL match exists).
func (sol *Solution) EmptyRequired(s *System) bool {
	for v, req := range s.reqVars {
		if req && sol.Chi[v].IsEmpty() {
			return true
		}
	}
	return false
}

// Finalize freezes the system for solving: the dependency lists used by
// the worklist algorithm are built eagerly (exactly once, race-free).
// After Finalize, SolveCtx and Solve perform no writes to the System,
// making a prepared system safe for concurrent solving from multiple
// goroutines. Adding variables or inequalities after Finalize panics.
func (s *System) Finalize() {
	s.finalize.Do(func() {
		s.buildDeps()
		s.finalized = true
	})
}

// Solve computes the largest solution, ignoring cancellation errors
// (it returns nil if ctx expires mid-fixpoint). The system itself is
// not modified after its (lazily triggered) finalization and may be
// solved repeatedly, e.g. with different options.
func (s *System) Solve(ctx context.Context, opts Options) *Solution {
	sol, _ := s.SolveCtx(ctx, opts)
	return sol
}

// ctxCheckInterval bounds how many inequality evaluations may pass
// between two cancellation checks. Each evaluation is a bit-matrix
// multiplication over the full node universe, so checking every
// evaluation is already cheap relative to the work it gates; the
// interval exists only to keep the copy-inequality fast path tight.
const ctxCheckInterval = 8

// SolveCtx computes the largest solution, honouring cancellation and
// deadlines: the round loop checks ctx between inequality evaluations
// and returns (nil, ctx.Err()) without completing the fixpoint. The
// system itself is not modified (Finalize is invoked on first use) and
// may be solved repeatedly and concurrently.
//
// The per-solve state (χ rows, scratch, worklists) comes from a
// system-owned pool; call Solution.Release when done with the solution
// to make steady-state solving allocation-free.
func (s *System) SolveCtx(ctx context.Context, opts Options) (*Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(opts.Restrict) > len(s.names) {
		return nil, fmt.Errorf("soi: Restrict has %d entries for a system with %d variables", len(opts.Restrict), len(s.names))
	}
	for v, r := range opts.Restrict {
		if r != nil && r.Len() != s.n {
			return nil, fmt.Errorf("soi: Restrict[%d] (variable %s) has length %d, want dimension %d", v, s.names[v], r.Len(), s.n)
		}
	}
	s.Finalize()
	w := s.acquire()
	chi := w.chi
	for v := range chi {
		if s.init[v] == nil {
			chi[v].Fill()
		} else {
			chi[v].CopyFrom(s.init[v])
		}
	}
	for v, r := range opts.Restrict {
		if r != nil {
			chi[v].And(r)
		}
	}

	sol := &Solution{Chi: chi, sys: s, ws: w}
	if opts.ShortCircuit {
		// The initialization (13) or a constant binding may already have
		// emptied a required variable.
		for v, req := range s.reqVars {
			if req && chi[v].IsEmpty() {
				sol.Stats.ShortCircuited = true
				return sol, nil
			}
		}
	}
	scratch := w.scratch

	// current/next worklists of inequality indices; inQueue de-duplicates.
	current := w.queueA[:0]
	for i := range s.ineqs {
		current = append(current, i)
	}
	reorder := func(queue []int) {
		switch {
		case opts.Permutation != nil:
			sortByPermutation(queue, opts.Permutation)
		case opts.Order == SparsestFirst:
			// Sparsest first (§3.3), ties broken by inequality index: the
			// comparison is a total order, so the processing order — and
			// with it the round count a plan reports — is reproducible
			// run-to-run regardless of the arrival order of equal keys.
			sort.Slice(queue, func(a, b int) bool {
				ea, eb := s.ineqs[queue[a]].emptyCols, s.ineqs[queue[b]].emptyCols
				if ea != eb {
					return ea > eb
				}
				return queue[a] < queue[b]
			})
		}
	}
	reorder(current)
	inQueue := w.inQueue
	for _, i := range current {
		inQueue[i] = true
	}
	spare := w.queueB[:0]

	sinceCheck := 0
	for len(current) > 0 {
		sol.Stats.Rounds++
		next := spare[:0]
		for _, idx := range current {
			// Edge inequalities are full bit-matrix multiplications; check
			// for cancellation before each, and at least every
			// ctxCheckInterval evaluations on copy-only stretches.
			sinceCheck++
			if s.ineqs[idx].Kind == Edge || sinceCheck >= ctxCheckInterval {
				sinceCheck = 0
				select {
				case <-ctx.Done():
					w.queueA, w.queueB = current[:0], next[:0]
					s.pool.Put(w)
					return nil, ctx.Err()
				default:
				}
			}
			inQueue[idx] = false
			iq := &s.ineqs[idx]
			sol.Stats.Evaluations++

			changed := false
			switch iq.Kind {
			case Copy:
				changed = chi[iq.X].And(chi[iq.Y])
			case Edge:
				iq.Mats.MultiplyParallel(iq.Dir, chi[iq.Y], chi[iq.X], scratch, opts.Strategy, opts.Workers)
				if !scratch.Equal(chi[iq.X]) {
					chi[iq.X].CopyFrom(scratch)
					changed = true
				}
			}
			if !changed {
				continue
			}
			sol.Stats.Updates++
			if opts.ShortCircuit && s.reqVars[iq.X] && chi[iq.X].IsEmpty() {
				sol.Stats.ShortCircuited = true
				w.queueA, w.queueB = current[:0], next[:0]
				return sol, nil
			}
			// Re-enqueue every inequality whose right-hand side mentions
			// the shrunken variable — including this one when X == Y
			// (self-loop pattern edges), which may shrink further.
			for _, dep := range s.deps[iq.X] {
				if !inQueue[dep] {
					inQueue[dep] = true
					next = append(next, dep)
				}
			}
		}
		reorder(next)
		spare = current
		current = next
	}
	// Hand the (possibly grown) worklists back so the next solve reuses
	// their capacity.
	w.queueA, w.queueB = current[:0], spare[:0]
	return sol, nil
}

func (s *System) buildDeps() {
	if len(s.deps) == len(s.names) {
		return
	}
	s.deps = make([][]int, len(s.names))
	for i, iq := range s.ineqs {
		s.deps[iq.Y] = append(s.deps[iq.Y], i)
	}
}

// Verify checks that sol satisfies every inequality — the validity test of
// Sect. 4.5 ("checking whether a given relation S constitutes a valid
// assignment to E(Q) … may be performed in PTIME"). It returns the first
// violated inequality, or nil.
func (s *System) Verify(sol *Solution) *Ineq {
	scratch := bitvec.New(s.n)
	full := bitvec.NewFull(s.n)
	for i := range s.ineqs {
		iq := &s.ineqs[i]
		switch iq.Kind {
		case Copy:
			if !sol.Chi[iq.X].SubsetOf(sol.Chi[iq.Y]) {
				return iq
			}
		case Edge:
			// Unrestricted multiply: X must be ≤ Y ×b A outright.
			iq.Mats.Multiply(iq.Dir, sol.Chi[iq.Y], full, scratch, bitmat.RowWise)
			if !sol.Chi[iq.X].SubsetOf(scratch) {
				return iq
			}
		}
	}
	return nil
}
