package soi

import (
	"context"
	"math/rand"
	"sort"
)

// This file implements the order-space exploration behind the paper's
// §5.3 remark: "From a brute force analysis we learn that the number of
// iterations may be reduced by 16, but only resulting in half the time".
// SearchOrders solves the system under many random inequality
// permutations and reports the spread of round counts, quantifying how
// much the evaluation order matters for a given query/database pair.

// OrderStats summarizes an order-space search.
type OrderStats struct {
	Trials      int
	BestRounds  int
	WorstRounds int
	// BestPermutation is the inequality permutation achieving BestRounds.
	BestPermutation []int
	// HeuristicRounds is the round count of the default sparsest-first
	// heuristic, for comparison.
	HeuristicRounds int
}

// SearchOrders runs `trials` random permutations (deterministic in seed)
// plus the built-in heuristic and reports the observed round counts. The
// solution itself is identical in every case (the largest solution is
// unique); only the effort differs.
func (s *System) SearchOrders(ctx context.Context, trials int, seed int64, opts Options) OrderStats {
	stats := OrderStats{Trials: trials}

	heur := s.Solve(ctx, opts)
	stats.HeuristicRounds = heur.Stats.Rounds
	stats.BestRounds = heur.Stats.Rounds
	stats.WorstRounds = heur.Stats.Rounds
	heur.Release()

	r := rand.New(rand.NewSource(seed))
	perm := make([]int, s.NumIneqs())
	for i := range perm {
		perm[i] = i
	}
	for trial := 0; trial < trials; trial++ {
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		o := opts
		o.Permutation = append([]int(nil), perm...)
		sol := s.Solve(ctx, o)
		rounds := sol.Stats.Rounds
		sol.Release()
		if rounds < stats.BestRounds {
			stats.BestRounds = rounds
			stats.BestPermutation = append([]int(nil), perm...)
		}
		if rounds > stats.WorstRounds {
			stats.WorstRounds = rounds
		}
	}
	if stats.BestPermutation == nil {
		// The heuristic was never beaten; report its order.
		stats.BestPermutation = make([]int, s.NumIneqs())
		for i := range stats.BestPermutation {
			stats.BestPermutation[i] = i
		}
	}
	return stats
}

// sortByPermutation orders a worklist by the rank a permutation assigns
// to each inequality.
func sortByPermutation(queue []int, perm []int) {
	rank := make([]int, len(perm))
	for pos, idx := range perm {
		rank[idx] = pos
	}
	sort.SliceStable(queue, func(a, b int) bool {
		return rank[queue[a]] < rank[queue[b]]
	})
}
