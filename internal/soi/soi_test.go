package soi

import (
	"context"
	"strings"
	"testing"

	"dualsim/internal/bitmat"
	"dualsim/internal/bitvec"
)

// fig3System hand-builds the system of Fig. 3: the SOI characterizing the
// largest dual simulation between the pattern of Fig. 2(a) and the data
// graph of Fig. 2(b).
//
// Data graph Fig. 2(b), node order: 0=place, 1=director, 2=coworker,
// 3=movie. Edges: director -born_in-> place, director -worked_with->
// coworker, director -directed-> movie.
func fig3System() (*System, map[string]Var) {
	n := 4
	born := bitmat.NewPair(n, []bitmat.Cell{{Row: 1, Col: 0}})
	worked := bitmat.NewPair(n, []bitmat.Cell{{Row: 1, Col: 2}})
	directed := bitmat.NewPair(n, []bitmat.Cell{{Row: 1, Col: 3}})

	s := NewSystem(n)
	vars := map[string]Var{}
	for _, name := range []string{"place", "director1", "director2", "coworker", "movie"} {
		vars[name] = s.AddVar(name, nil, true)
	}
	// Pattern Fig. 2(a): director1 -born_in-> place, director2 -born_in->
	// place, director1 -worked_with-> coworker, director2 -directed->
	// movie.
	s.AddEdge(vars["director1"], vars["place"], born, "born_in")
	s.AddEdge(vars["director2"], vars["place"], born, "born_in")
	s.AddEdge(vars["director1"], vars["coworker"], worked, "worked_with")
	s.AddEdge(vars["director2"], vars["movie"], directed, "directed")
	return s, vars
}

// TestFig3LargestSolution reproduces the paper's relation (1): the
// largest solution of the Fig. 3 SOI.
func TestFig3LargestSolution(t *testing.T) {
	s, vars := fig3System()
	sol := s.Solve(context.Background(), Options{})

	want := map[string][]int{
		"place":     {0},
		"director1": {1},
		"director2": {1},
		"coworker":  {2},
		"movie":     {3},
	}
	for name, nodes := range want {
		got := sol.Chi[vars[name]]
		expect := bitvec.FromBits(4, nodes...)
		if !got.Equal(expect) {
			t.Fatalf("χ(%s) = %v, want %v", name, got, expect)
		}
	}
	if bad := s.Verify(sol); bad != nil {
		t.Fatalf("solution violates %v", bad)
	}
	if sol.Stats.Rounds == 0 || sol.Stats.Evaluations == 0 {
		t.Fatal("stats not recorded")
	}
}

// TestAllOptionsSameFixpoint: every strategy/order combination reaches
// the same largest solution.
func TestAllOptionsSameFixpoint(t *testing.T) {
	ref, _ := fig3System()
	want := ref.Solve(context.Background(), Options{})
	for _, strat := range []bitmat.Strategy{bitmat.Auto, bitmat.RowWise, bitmat.ColWise} {
		for _, ord := range []Order{SparsestFirst, DeclarationOrder} {
			s, _ := fig3System()
			sol := s.Solve(context.Background(), Options{Strategy: strat, Order: ord})
			for v := range want.Chi {
				if !sol.Chi[v].Equal(want.Chi[v]) {
					t.Fatalf("strategy %v order %v: χ(x%d) differs", strat, ord, v)
				}
			}
		}
	}
}

// TestCopyInequality: x ≤ y propagates shrinkage from y to x but never
// the other way.
func TestCopyInequality(t *testing.T) {
	n := 4
	s := NewSystem(n)
	y := s.AddVar("y", bitvec.FromBits(n, 0, 1), true)
	x := s.AddVar("x", nil, false)
	s.AddCopy(x, y)
	sol := s.Solve(context.Background(), Options{})
	if !sol.Chi[x].Equal(bitvec.FromBits(n, 0, 1)) {
		t.Fatalf("χ(x) = %v", sol.Chi[x])
	}
	if !sol.Chi[y].Equal(bitvec.FromBits(n, 0, 1)) {
		t.Fatalf("χ(y) = %v", sol.Chi[y])
	}
}

// TestSelfLoopEdgeConverges: an edge inequality with X == Y (self-loop
// pattern) must keep re-evaluating itself until the fixpoint.
func TestSelfLoopEdgeConverges(t *testing.T) {
	// Data: a chain 0->1->2->3 (no cycle), so a self-loop pattern
	// variable must become empty — but only after several rounds of
	// shrinking (3 is removed first, then 2, then 1, then 0).
	n := 4
	chain := bitmat.NewPair(n, []bitmat.Cell{{Row: 0, Col: 1}, {Row: 1, Col: 2}, {Row: 2, Col: 3}})
	s := NewSystem(n)
	v := s.AddVar("v", nil, true)
	s.AddEdge(v, v, chain, "next")
	sol := s.Solve(context.Background(), Options{})
	if !sol.Chi[v].IsEmpty() {
		t.Fatalf("χ(v) = %v, want empty (chain has no cycle)", sol.Chi[v])
	}
	if sol.Stats.Rounds < 3 {
		t.Fatalf("rounds = %d; self-loop must re-destabilize itself", sol.Stats.Rounds)
	}
}

// TestSelfLoopCycleKept: with a data cycle, the cycle nodes survive.
func TestSelfLoopCycleKept(t *testing.T) {
	n := 5
	cyc := bitmat.NewPair(n, []bitmat.Cell{
		{Row: 0, Col: 1}, {Row: 1, Col: 0}, // 2-cycle
		{Row: 2, Col: 3}, {Row: 3, Col: 4}, // dead-end chain
	})
	s := NewSystem(n)
	v := s.AddVar("v", nil, true)
	s.AddEdge(v, v, cyc, "next")
	sol := s.Solve(context.Background(), Options{})
	if !sol.Chi[v].Equal(bitvec.FromBits(n, 0, 1)) {
		t.Fatalf("χ(v) = %v, want {0, 1}", sol.Chi[v])
	}
}

// TestShortCircuitOnInitialEmpty: a required variable with an empty
// initial bound short-circuits immediately.
func TestShortCircuitOnInitialEmpty(t *testing.T) {
	s := NewSystem(3)
	s.AddVar("v", bitvec.New(3), true)
	sol := s.Solve(context.Background(), Options{ShortCircuit: true})
	if !sol.Stats.ShortCircuited {
		t.Fatal("expected short circuit")
	}
	if !sol.EmptyRequired(s) {
		t.Fatal("EmptyRequired should hold")
	}
}

// TestShortCircuitIgnoresOptionalVars: an empty non-required variable
// does not short-circuit.
func TestShortCircuitIgnoresOptionalVars(t *testing.T) {
	s := NewSystem(3)
	s.AddVar("opt", bitvec.New(3), false)
	s.AddVar("mand", nil, true)
	sol := s.Solve(context.Background(), Options{ShortCircuit: true})
	if sol.Stats.ShortCircuited {
		t.Fatal("optional emptiness must not short-circuit")
	}
	if sol.EmptyRequired(s) {
		t.Fatal("no required variable is empty")
	}
}

// TestVerifyDetectsViolations: Verify flags a manually broken solution.
func TestVerifyDetectsViolations(t *testing.T) {
	s, vars := fig3System()
	sol := s.Solve(context.Background(), Options{})
	// Break it: claim node 2 (coworker) also simulates place.
	sol.Chi[vars["place"]].Set(2)
	bad := s.Verify(sol)
	if bad == nil {
		t.Fatal("Verify accepted a broken solution")
	}
	if bad.Kind == Copy {
		t.Fatal("violation should be an edge inequality")
	}
	// Break a copy inequality.
	s2 := NewSystem(3)
	y := s2.AddVar("y", bitvec.FromBits(3, 0), true)
	x := s2.AddVar("x", nil, false)
	s2.AddCopy(x, y)
	sol2 := s2.Solve(context.Background(), Options{})
	sol2.Chi[x].Set(2)
	if bad := s2.Verify(sol2); bad == nil || bad.Kind != Copy {
		t.Fatalf("copy violation not detected: %v", bad)
	}
}

// TestIneqString covers the diagnostics.
func TestIneqString(t *testing.T) {
	s, _ := fig3System()
	var edge, cp string
	for _, iq := range s.Ineqs() {
		if iq.Kind == Edge && edge == "" {
			edge = iq.String()
		}
	}
	s2 := NewSystem(2)
	a := s2.AddVar("a", nil, true)
	b := s2.AddVar("b", nil, true)
	s2.AddCopy(a, b)
	cp = s2.Ineqs()[0].String()
	if !strings.Contains(edge, "×b") || !strings.Contains(cp, "≤") {
		t.Fatalf("diagnostics broken: %q / %q", edge, cp)
	}
}

// TestSolveIsRepeatable: solving the same system twice yields the same
// solution (the system is not consumed).
func TestSolveIsRepeatable(t *testing.T) {
	s, _ := fig3System()
	a := s.Solve(context.Background(), Options{})
	b := s.Solve(context.Background(), Options{Strategy: bitmat.ColWise})
	for v := range a.Chi {
		if !a.Chi[v].Equal(b.Chi[v]) {
			t.Fatalf("second solve differs at x%d", v)
		}
	}
}

// TestAccessors covers the small read surface.
func TestAccessors(t *testing.T) {
	s, vars := fig3System()
	if s.Dim() != 4 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	if s.NumVars() != 5 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
	if s.NumIneqs() != 8 { // Fig. 3 lists exactly 8 inequalities
		t.Fatalf("NumIneqs = %d, want 8", s.NumIneqs())
	}
	if s.VarName(vars["movie"]) != "movie" {
		t.Fatal("VarName broken")
	}
}

// TestConstrainInit: layered bounds intersect.
func TestConstrainInit(t *testing.T) {
	s := NewSystem(4)
	v := s.AddVar("v", nil, true)
	s.ConstrainInit(v, bitvec.FromBits(4, 0, 1, 2))
	s.ConstrainInit(v, bitvec.FromBits(4, 1, 2, 3))
	sol := s.Solve(context.Background(), Options{})
	if !sol.Chi[v].Equal(bitvec.FromBits(4, 1, 2)) {
		t.Fatalf("χ(v) = %v", sol.Chi[v])
	}
}

// TestRestrictValidation: a Restrict that does not fit the system is a
// caller bug and must surface as a descriptive error, not be silently
// dropped (the old behavior ignored entries beyond NumVars()).
func TestRestrictValidation(t *testing.T) {
	s, vars := fig3System()

	// Too many entries: one per variable plus one.
	over := make([]*bitvec.Vector, s.NumVars()+1)
	over[s.NumVars()] = bitvec.NewFull(s.Dim())
	if _, err := s.SolveCtx(context.Background(), Options{Restrict: over}); err == nil ||
		!strings.Contains(err.Error(), "Restrict") {
		t.Fatalf("oversized Restrict: err = %v, want descriptive error", err)
	}

	// Wrong vector length.
	bad := make([]*bitvec.Vector, s.NumVars())
	bad[vars["movie"]] = bitvec.NewFull(s.Dim() + 3)
	if _, err := s.SolveCtx(context.Background(), Options{Restrict: bad}); err == nil ||
		!strings.Contains(err.Error(), "length") {
		t.Fatalf("mis-sized Restrict entry: err = %v, want descriptive error", err)
	}

	// A well-formed restrict (even shorter than NumVars) still works and
	// tightens the solution.
	ok := []*bitvec.Vector{bitvec.New(s.Dim())} // empty bound for "place"
	sol, err := s.SolveCtx(context.Background(), Options{Restrict: ok})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Chi[vars["place"]].IsEmpty() {
		t.Fatalf("χ(place) = %v, want empty under empty restrict", sol.Chi[vars["place"]])
	}
}

// TestDeterministicOrdering: the sparsest-first comparison is a total
// order (ties broken by inequality index), so repeated solves report
// identical effort — plans and their ExecStats.Rounds are reproducible
// run-to-run.
func TestDeterministicOrdering(t *testing.T) {
	ref, _ := fig3System()
	want := ref.Solve(context.Background(), Options{})
	for i := 0; i < 20; i++ {
		s, _ := fig3System()
		sol := s.Solve(context.Background(), Options{})
		if sol.Stats != want.Stats {
			t.Fatalf("solve %d effort drifted: %+v vs %+v", i, sol.Stats, want.Stats)
		}
	}
}

// TestSolutionRelease: Release is idempotent, nil-safe, and recycles the
// χ storage — steady-state Solve+Release performs near-zero allocation.
func TestSolutionRelease(t *testing.T) {
	var nilSol *Solution
	nilSol.Release() // must not panic

	s, vars := fig3System()
	sol := s.Solve(context.Background(), Options{})
	if !sol.Chi[vars["movie"]].Equal(bitvec.FromBits(4, 3)) {
		t.Fatalf("pre-release solution wrong: %v", sol.Chi[vars["movie"]])
	}
	sol.Release()
	sol.Release() // idempotent
	if sol.Chi != nil {
		t.Fatal("Chi must be nil after Release")
	}

	// The next solve reuses the pooled workspace and computes the same
	// fixpoint.
	again := s.Solve(context.Background(), Options{})
	if !again.Chi[vars["movie"]].Equal(bitvec.FromBits(4, 3)) {
		t.Fatalf("post-release solution wrong: %v", again.Chi[vars["movie"]])
	}
	again.Release()

	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sol := s.Solve(context.Background(), Options{})
		sol.Release()
	})
	// Steady state allocates only per-solve bookkeeping (the Solution
	// header, the reorder closure) — not χ rows, scratch or worklists.
	if allocs > 8 {
		t.Errorf("Solve+Release steady state: %.1f allocs/op, want <= 8 (workspace not pooled?)", allocs)
	}
}

// TestMismatchedInitPanics guards the dimension contract.
func TestMismatchedInitPanics(t *testing.T) {
	s := NewSystem(4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong init length")
		}
	}()
	s.AddVar("v", bitvec.New(5), true)
}
