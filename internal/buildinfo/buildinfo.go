// Package buildinfo reads the binary's embedded module version and VCS
// revision (runtime/debug.ReadBuildInfo) once and serves it to the
// `-version` flags, the /healthz JSON and the dualsim_build_info metric.
package buildinfo

import (
	"runtime/debug"
	"sync"
)

// Info is the build identity of the running binary.
type Info struct {
	// Version is the main module's version ("(devel)" outside a tagged
	// module build).
	Version string
	// Revision is the VCS commit the binary was built from, suffixed
	// with "+dirty" when the working tree had local modifications.
	Revision string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

var (
	once sync.Once
	info Info
)

// Get returns the build identity, computed once per process.
func Get() Info {
	once.Do(func() {
		info = Info{Version: "unknown", Revision: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		info.GoVersion = bi.GoVersion
		if bi.Main.Version != "" {
			info.Version = bi.Main.Version
		}
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "+dirty"
			}
			info.Revision = rev
		}
	})
	return info
}

// String renders "name version (revision, goversion)" for -version flags.
func String(name string) string {
	i := Get()
	s := name + " " + i.Version + " (" + i.Revision
	if i.GoVersion != "" {
		s += ", " + i.GoVersion
	}
	return s + ")"
}
