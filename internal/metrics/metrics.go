// Package metrics is a minimal process-local metrics registry for the
// serving layer (and any engine component that wants live counters): a
// flat namespace of named counters, gauges, computed gauges and
// fixed-bucket histograms, rendered on demand in a Prometheus-style
// text format.
//
// The registry is deliberately small — no labels, no dynamic bucket
// layouts — because its job is to expose the handful of numbers the
// ROADMAP's serving goal cares about (requests, shed, cache hit-rate,
// epoch, solver rounds, request latency) without pulling a client
// library into the module. All operations are safe for concurrent use
// and allocation-free on the hot path (Counter.Add / Gauge.Set are
// single atomics; Histogram.Observe is a bucket increment plus a CAS
// add).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an arbitrarily settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram: Observe counts the
// value into every bucket whose upper bound it does not exceed, plus the
// implicit +Inf bucket, and tracks the running sum. The bucket bounds
// are fixed at registration — no dynamic rebinning — which keeps Observe
// a handful of atomics and the rendered series mergeable across
// processes the way Prometheus histograms are.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    Gauge          // CAS-add float accumulator
	n      atomic.Int64
}

// DefLatencyBuckets is the default request-latency bucket layout
// (seconds): 0.5ms up to 10s, roughly ×2.5 per step — wide enough for
// both an in-memory point lookup and a cold multi-shard fan-out.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value.
//
//dualsim:hotpath
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~20) and the branch
	// predicts well; a binary search buys nothing at this size.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.counts[len(h.bounds)].Add(1) // +Inf counts everything
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns how many values were observed, Sum their total.
func (h *Histogram) Count() int64 { return h.n.Load() }
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Buckets returns the upper bounds and the cumulative count at each
// (the +Inf bucket is the final entry, with bound +Inf).
func (h *Histogram) Buckets() ([]float64, []int64) {
	bounds := make([]float64, len(h.bounds)+1)
	copy(bounds, h.bounds)
	bounds[len(h.bounds)] = math.Inf(1)
	counts := make([]int64, len(h.counts))
	cum := int64(0)
	for i := 0; i < len(h.bounds); i++ {
		cum += h.counts[i].Load()
		counts[i] = cum
	}
	// The +Inf slot is incremented on every Observe, so it is already
	// the total (not a residual to accumulate).
	counts[len(h.bounds)] = h.counts[len(h.bounds)].Load()
	return bounds, counts
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed values
// by linear interpolation inside the winning bucket. An empty histogram
// reports 0; a quantile landing in the +Inf bucket reports the last
// finite bound (there is no upper edge to interpolate toward).
func (h *Histogram) Quantile(q float64) float64 {
	bounds, cum := h.Buckets()
	return BucketQuantile(bounds, cum, q)
}

// BucketQuantile estimates the q-quantile from a cumulative bucket
// rendering as returned by Buckets (ascending upper bounds with +Inf
// last, cumulative counts). It exists separately from Histogram.Quantile
// so merged bucket counts — e.g. statement histograms summed across
// shards — can be interrogated without rebuilding a live histogram.
func BucketQuantile(bounds []float64, cum []int64, q float64) float64 {
	if len(bounds) == 0 || len(cum) != len(bounds) {
		return 0
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// The rank is the 1-based index of the observation the quantile
	// falls on; ceil keeps q=1 inside the last occupied bucket.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	for i, c := range cum {
		if c < rank {
			continue
		}
		hi := bounds[i]
		if math.IsInf(hi, 1) {
			// No finite upper edge: report the largest finite bound
			// (or 0 when +Inf is the only bucket).
			if i == 0 {
				return 0
			}
			return bounds[i-1]
		}
		lo := 0.0
		prev := int64(0)
		if i > 0 {
			lo = bounds[i-1]
			prev = cum[i-1]
		}
		in := c - prev
		if in <= 0 {
			return hi
		}
		return lo + (hi-lo)*float64(rank-prev)/float64(in)
	}
	return bounds[len(bounds)-1]
}

// NewHistogram returns an unregistered fixed-bucket histogram over the
// ascending upper bounds — for callers that keep many short-lived
// histograms (e.g. per-statement latency in the workload statistics
// store) without flooding a registry's namespace.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// metric is one registered series.
type metric struct {
	help   string
	typ    string // "counter", "gauge" or "histogram"
	read   func() float64
	owner  any // the *Counter/*Gauge/*Histogram handed back on re-registration; nil for GaugeFunc
	hist   *Histogram
	labels string // pre-rendered {k="v",...} for info gauges; "" otherwise
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry. Safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	items map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{items: make(map[string]*metric)}
}

// Counter registers (or returns the previously registered) counter under
// name. Registering the same name as a different metric kind panics —
// a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	got := r.register(name, help, "counter", func() float64 { return float64(c.Value()) }, c)
	return got.(*Counter)
}

// Gauge registers (or returns) a settable gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	got := r.register(name, help, "gauge", func() float64 { return g.Value() }, g)
	return got.(*Gauge)
}

// GaugeFunc registers a computed gauge: fn is evaluated at render time.
// fn must be safe for concurrent use. Re-registering a name replaces the
// function (convenient for tests); the kind must still match.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.items[name]; ok {
		if m.typ != "gauge" {
			panic(fmt.Sprintf("metrics: %s re-registered as gauge (was %s)", name, m.typ))
		}
		m.read = fn
		return
	}
	r.items[name] = &metric{help: help, typ: "gauge", read: fn}
}

// InfoGauge registers a constant-1 gauge whose labels carry identity
// metadata — the Prometheus build_info convention (name{k="v"} 1). The
// registry is otherwise label-free; this is the one deliberate
// exception, because a version string has no numeric encoding. Labels
// are rendered sorted by key; re-registering a name replaces them.
func (r *Registry) InfoGauge(name, help string, labels map[string]string) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rendered := ""
	for _, k := range keys {
		if rendered != "" {
			rendered += ","
		}
		rendered += fmt.Sprintf("%s=%q", k, labels[k])
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.items[name]; ok {
		if m.typ != "gauge" {
			panic(fmt.Sprintf("metrics: %s re-registered as gauge (was %s)", name, m.typ))
		}
		m.labels = rendered
		return
	}
	r.items[name] = &metric{help: help, typ: "gauge", read: func() float64 { return 1 }, labels: rendered}
}

// Histogram registers (or returns) a fixed-bucket histogram under name.
// bounds are ascending upper bounds in the observed unit (use
// DefLatencyBuckets for request latency in seconds); they are fixed for
// the registry's lifetime.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %s registered without buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s buckets not strictly ascending at %v", name, bounds[i]))
		}
	}
	h := NewHistogram(bounds)
	got := r.register(name, help, "histogram", func() float64 { return float64(h.Count()) }, h)
	hist := got.(*Histogram)
	r.mu.Lock()
	r.items[name].hist = hist
	r.mu.Unlock()
	return hist
}

func (r *Registry) register(name, help, typ string, read func() float64, owner any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.items[name]; ok {
		if m.typ != typ {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, typ, m.typ))
		}
		if m.owner == nil {
			// A GaugeFunc has no settable instance to hand back.
			panic(fmt.Sprintf("metrics: %s is a computed gauge; it has no settable instance", name))
		}
		return m.owner
	}
	r.items[name] = &metric{help: help, typ: typ, read: read, owner: owner}
	return owner
}

// Snapshot returns the current value of every registered metric, keyed
// by name.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.items))
	for name, m := range r.items {
		if m.hist != nil {
			// A histogram has no single value; expose its scalar summaries
			// under the conventional suffixes.
			out[name+"_count"] = float64(m.hist.Count())
			out[name+"_sum"] = m.hist.Sum()
			continue
		}
		out[name] = m.read()
	}
	return out
}

// WriteTo renders the registry in Prometheus text exposition format,
// sorted by name for stable output.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.items))
	for name := range r.items {
		names = append(names, name)
	}
	sort.Strings(names)
	type line struct {
		name, help, typ, labels string
		value                   float64
		hist                    *Histogram
	}
	lines := make([]line, len(names))
	for i, name := range names {
		m := r.items[name]
		l := line{name: name, help: m.help, typ: m.typ, labels: m.labels, hist: m.hist}
		if m.hist == nil {
			l.value = m.read()
		}
		lines[i] = l
	}
	r.mu.Unlock()

	var n int64
	for _, l := range lines {
		k, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", l.name, l.help, l.name, l.typ)
		n += int64(k)
		if err != nil {
			return n, err
		}
		if l.hist != nil {
			k, err := writeHistogram(w, l.name, l.hist)
			n += k
			if err != nil {
				return n, err
			}
			continue
		}
		series := l.name
		if l.labels != "" {
			series += "{" + l.labels + "}"
		}
		k, err = fmt.Fprintf(w, "%s %v\n", series, l.value)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// writeHistogram renders the Prometheus histogram triplet: cumulative
// _bucket{le=...} series (with +Inf), _sum and _count.
func writeHistogram(w io.Writer, name string, h *Histogram) (int64, error) {
	bounds, counts := h.Buckets()
	var n int64
	for i, b := range bounds {
		le := "+Inf"
		if !math.IsInf(b, 1) {
			le = fmt.Sprintf("%v", b)
		}
		k, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, counts[i])
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	k, err := fmt.Fprintf(w, "%s_sum %v\n", name, h.Sum())
	n += int64(k)
	if err != nil {
		return n, err
	}
	k, err = fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	n += int64(k)
	return n, err
}
