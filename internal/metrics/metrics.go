// Package metrics is a minimal process-local metrics registry for the
// serving layer (and any engine component that wants live counters): a
// flat namespace of named counters, gauges and computed gauges, rendered
// on demand in a Prometheus-style text format.
//
// The registry is deliberately small — no labels, no histograms beyond
// the caller-maintained quantile gauges — because its job is to expose
// the handful of numbers the ROADMAP's serving goal cares about
// (requests, shed, cache hit-rate, epoch, solver rounds) without pulling
// a client library into the module. All operations are safe for
// concurrent use and allocation-free on the hot path (Counter.Add /
// Gauge.Set are single atomics).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an arbitrarily settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metric is one registered series.
type metric struct {
	help  string
	typ   string // "counter" or "gauge"
	read  func() float64
	owner any // the *Counter/*Gauge handed back on re-registration; nil for GaugeFunc
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry. Safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	items map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{items: make(map[string]*metric)}
}

// Counter registers (or returns the previously registered) counter under
// name. Registering the same name as a different metric kind panics —
// a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	got := r.register(name, help, "counter", func() float64 { return float64(c.Value()) }, c)
	return got.(*Counter)
}

// Gauge registers (or returns) a settable gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	got := r.register(name, help, "gauge", func() float64 { return g.Value() }, g)
	return got.(*Gauge)
}

// GaugeFunc registers a computed gauge: fn is evaluated at render time.
// fn must be safe for concurrent use. Re-registering a name replaces the
// function (convenient for tests); the kind must still match.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.items[name]; ok {
		if m.typ != "gauge" {
			panic(fmt.Sprintf("metrics: %s re-registered as gauge (was %s)", name, m.typ))
		}
		m.read = fn
		return
	}
	r.items[name] = &metric{help: help, typ: "gauge", read: fn}
}

func (r *Registry) register(name, help, typ string, read func() float64, owner any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.items[name]; ok {
		if m.typ != typ {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, typ, m.typ))
		}
		if m.owner == nil {
			// A GaugeFunc has no settable instance to hand back.
			panic(fmt.Sprintf("metrics: %s is a computed gauge; it has no settable instance", name))
		}
		return m.owner
	}
	r.items[name] = &metric{help: help, typ: typ, read: read, owner: owner}
	return owner
}

// Snapshot returns the current value of every registered metric, keyed
// by name.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.items))
	for name, m := range r.items {
		out[name] = m.read()
	}
	return out
}

// WriteTo renders the registry in Prometheus text exposition format,
// sorted by name for stable output.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.items))
	for name := range r.items {
		names = append(names, name)
	}
	sort.Strings(names)
	type line struct {
		name, help, typ string
		value           float64
	}
	lines := make([]line, len(names))
	for i, name := range names {
		m := r.items[name]
		lines[i] = line{name: name, help: m.help, typ: m.typ, value: m.read()}
	}
	r.mu.Unlock()

	var n int64
	for _, l := range lines {
		k, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", l.name, l.help, l.name, l.typ, l.name, l.value)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
