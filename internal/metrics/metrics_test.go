package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "requests"); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}

	r.GaugeFunc("epoch", "store epoch", func() float64 { return 7 })
	snap := r.Snapshot()
	if snap["reqs_total"] != 5 || snap["depth"] != 2 || snap["epoch"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestWriteToFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees").Add(3)
	r.GaugeFunc("a_gauge", "ays", func() float64 { return 1.5 })
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Sorted by name, each with HELP/TYPE preamble.
	wantOrder := strings.Index(out, "a_gauge")
	if wantOrder < 0 || wantOrder > strings.Index(out, "b_total") {
		t.Fatalf("names not sorted:\n%s", out)
	}
	for _, line := range []string{
		"# TYPE a_gauge gauge", "a_gauge 1.5",
		"# TYPE b_total counter", "b_total 3",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("output misses %q:\n%s", line, out)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", "").Inc()
				r.Gauge("g", "").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Gauge("g", "").Value(); got != 8000 {
		t.Fatalf("concurrent gauge = %v, want 8000", got)
	}
}
