package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "requests"); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}

	r.GaugeFunc("epoch", "store epoch", func() float64 { return 7 })
	snap := r.Snapshot()
	if snap["reqs_total"] != 5 || snap["depth"] != 2 || snap["epoch"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestWriteToFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees").Add(3)
	r.GaugeFunc("a_gauge", "ays", func() float64 { return 1.5 })
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Sorted by name, each with HELP/TYPE preamble.
	wantOrder := strings.Index(out, "a_gauge")
	if wantOrder < 0 || wantOrder > strings.Index(out, "b_total") {
		t.Fatalf("names not sorted:\n%s", out)
	}
	for _, line := range []string{
		"# TYPE a_gauge gauge", "a_gauge 1.5",
		"# TYPE b_total counter", "b_total 3",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("output misses %q:\n%s", line, out)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", "").Inc()
				r.Gauge("g", "").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Gauge("g", "").Value(); got != 8000 {
		t.Fatalf("concurrent gauge = %v, want 8000", got)
	}
}

func TestHistogramBucketsAndRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", "request latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+5; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || len(counts) != 4 {
		t.Fatalf("bucket shape = %d/%d, want 4/4", len(bounds), len(counts))
	}
	// Cumulative: ≤0.01 → 1, ≤0.1 → 3, ≤1 → 4, +Inf → 5.
	for i, want := range []int64{1, 3, 4, 5} {
		if counts[i] != want {
			t.Fatalf("bucket[%d] = %d, want %d", i, counts[i], want)
		}
	}

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{le="0.01"} 1`,
		`req_seconds_bucket{le="0.1"} 3`,
		`req_seconds_bucket{le="1"} 4`,
		`req_seconds_bucket{le="+Inf"} 5`,
		"req_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}

	// Re-registration hands back the same histogram; snapshot exposes
	// the scalar summaries.
	if again := r.Histogram("req_seconds", "request latency", []float64{0.01, 0.1, 1}); again != h {
		t.Fatal("re-registration returned a different histogram")
	}
	snap := r.Snapshot()
	if snap["req_seconds_count"] != 5 {
		t.Fatalf("snapshot count = %v, want 5", snap["req_seconds_count"])
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "x", DefLatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.003)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	_, counts := h.Buckets()
	if counts[len(counts)-1] != 8000 {
		t.Fatalf("+Inf bucket = %d, want 8000", counts[len(counts)-1])
	}
}

func TestHistogramBadBucketsPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets did not panic")
		}
	}()
	r.Histogram("bad", "x", []float64{1, 1})
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "x", []float64{0.01, 0.1, 1})

	// Degenerate: nothing observed yet.
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}

	// 8 values in (0.01, 0.1], 2 in (0.1, 1]: p50 interpolates inside
	// the second bucket, p95 inside the third.
	for i := 0; i < 8; i++ {
		h.Observe(0.05)
	}
	h.Observe(0.5)
	h.Observe(0.5)
	p50 := h.Quantile(0.50)
	if p50 <= 0.01 || p50 > 0.1 {
		t.Fatalf("p50 = %v, want inside (0.01, 0.1]", p50)
	}
	// rank 5 of 8 in-bucket observations: 0.01 + 0.09*5/8.
	if want := 0.01 + 0.09*5/8; math.Abs(p50-want) > 1e-9 {
		t.Fatalf("p50 = %v, want %v", p50, want)
	}
	p95 := h.Quantile(0.95)
	if p95 <= 0.1 || p95 > 1 {
		t.Fatalf("p95 = %v, want inside (0.1, 1]", p95)
	}
	// q clamps to [0, 1] and the extremes stay inside the layout.
	if got := h.Quantile(-1); got <= 0 || got > 0.1 {
		t.Fatalf("q<0 = %v, want first occupied bucket", got)
	}
	if got := h.Quantile(2); got <= 0.1 || got > 1 {
		t.Fatalf("q>1 = %v, want last occupied bucket", got)
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("one", "x", []float64{1})
	h.Observe(0.2)
	h.Observe(0.4)
	// Interpolation starts from 0 for the first bucket: rank 1 of 2.
	if got, want := h.Quantile(0.5), 0.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("single-bucket p50 = %v, want %v", got, want)
	}
	if got := h.Quantile(1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("single-bucket p100 = %v, want 1", got)
	}
}

func TestHistogramQuantileInfBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inf", "x", []float64{0.01, 0.1})
	h.Observe(50) // lands in +Inf
	// No finite upper edge: the quantile reports the last finite bound.
	if got := h.Quantile(0.99); got != 0.1 {
		t.Fatalf("+Inf-bucket quantile = %v, want last finite bound 0.1", got)
	}
}

func TestBucketQuantileMerged(t *testing.T) {
	// Two shards' cumulative renderings of the same layout merge by
	// summing position-wise; the quantile then reads the merged view.
	bounds := []float64{0.01, 0.1, 1, math.Inf(1)}
	a := []int64{4, 6, 6, 6}
	b := []int64{0, 2, 4, 4}
	merged := make([]int64, len(a))
	for i := range a {
		merged[i] = a[i] + b[i]
	}
	// 10 observations: 4 ≤0.01, 4 in (0.01,0.1], 2 in (0.1,1].
	if got := BucketQuantile(bounds, merged, 0.5); got <= 0.01 || got > 0.1 {
		t.Fatalf("merged p50 = %v, want inside (0.01, 0.1]", got)
	}
	if got := BucketQuantile(bounds, merged, 1); got <= 0.1 || got > 1 {
		t.Fatalf("merged p100 = %v, want inside (0.1, 1]", got)
	}
	if got := BucketQuantile(nil, nil, 0.5); got != 0 {
		t.Fatalf("nil buckets quantile = %v, want 0", got)
	}
}
