// Package debugserver mounts the operator debug surface — net/http/pprof
// plus any extra routes the daemon wants reachable there (e.g. the
// slow-query log) — behind the daemons' -debugaddr flag. The surface
// lives on its own listener, deliberately OFF the serving address:
// profiling endpoints never contend with query traffic for the
// admission controller, and a serving port exposed to clients never
// leaks heap dumps.
package debugserver

import (
	"net/http"
	"net/http/pprof"
)

// Mux builds the debug handler tree: the standard pprof index
// (/debug/pprof/...) plus every extra route, verbatim.
func Mux(extra map[string]http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for route, h := range extra {
		mux.Handle(route, h)
	}
	return mux
}
