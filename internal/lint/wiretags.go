package lint

import (
	"go/ast"
	"reflect"
	"strconv"
	"strings"

	"dualsim/internal/lint/analysis"
)

// WireAnnotation marks a struct outside internal/wire as wire-visible:
// its JSON encoding is protocol surface and must carry stable
// lowerCamel tags. Structs declared inside internal/wire are checked
// unconditionally.
const WireAnnotation = "//dualsim:wire"

// WiretagsAnalyzer turns the stats_json_test.go runtime guard into a
// compile gate: every exported, non-embedded field of a wire struct
// must have an explicit `json:"..."` tag whose name is lowerCamel (or
// "-"). Untagged exported fields would marshal under their Go name —
// an accidental, UpperCamel wire format change.
var WiretagsAnalyzer = &analysis.Analyzer{
	Name: "wiretags",
	Doc:  "wire-visible structs (internal/wire and //dualsim:wire) need explicit lowerCamel json tags on exported fields",
	Run:  runWiretags,
}

func runWiretags(pass *analysis.Pass) error {
	wirePkg := analysis.HasPrefixPath(pass.Path(), Module+"/internal/wire")
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			declAnnotated := hasAnnotation(gd.Doc, WireAnnotation)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if wirePkg || declAnnotated || hasAnnotation(ts.Doc, WireAnnotation) || hasAnnotation(ts.Comment, WireAnnotation) {
					checkWireStruct(pass, ts.Name.Name, st)
				}
			}
		}
	}
	return nil
}

func checkWireStruct(pass *analysis.Pass, name string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			continue // embedded field: inlined by encoding/json by design
		}
		for _, fname := range field.Names {
			if !fname.IsExported() {
				continue // unexported fields never marshal
			}
			if field.Tag == nil {
				pass.Reportf(fname.Pos(), "wire struct %s: field %s has no json tag; wire fields need an explicit lowerCamel tag", name, fname.Name)
				continue
			}
			raw, err := strconv.Unquote(field.Tag.Value)
			if err != nil {
				pass.Reportf(field.Tag.Pos(), "wire struct %s: field %s has an unparseable struct tag", name, fname.Name)
				continue
			}
			jsonTag, ok := reflect.StructTag(raw).Lookup("json")
			if !ok {
				pass.Reportf(fname.Pos(), "wire struct %s: field %s has no json tag; wire fields need an explicit lowerCamel tag", name, fname.Name)
				continue
			}
			tagName, _, _ := strings.Cut(jsonTag, ",")
			if !wireTagName(tagName) {
				pass.Reportf(field.Tag.Pos(), "wire struct %s: field %s json tag %q is not lowerCamel", name, fname.Name, tagName)
			}
		}
	}
}

// wireTagName reports whether s is an acceptable wire field name:
// "-" (excluded) or lowerCamel ASCII letters and digits.
func wireTagName(s string) bool {
	if s == "-" {
		return true
	}
	if s == "" {
		return false
	}
	if s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return true
}

// hasAnnotation reports whether the comment group contains the exact
// directive line.
func hasAnnotation(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}
