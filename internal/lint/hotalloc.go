package lint

import (
	"go/ast"
	"go/types"

	"dualsim/internal/lint/analysis"
)

// HotpathAnnotation marks a function that the AllocsPerRun=0 benchmark
// guards promise is allocation-free: the bit-matrix multiply kernels,
// the statement-record path, the disabled-tracer no-op path.
const HotpathAnnotation = "//dualsim:hotpath"

// HotallocAnalyzer statically mirrors those guards. Inside a function
// annotated //dualsim:hotpath it reports
//
//   - any call into package fmt (formatting allocates and boxes);
//   - string concatenation inside a loop (quadratic garbage);
//   - map or slice composite literals (per-call heap allocation);
//   - boxing a basic numeric or boolean value into an interface
//     parameter or conversion (each box is a heap allocation once it
//     escapes).
//
// The annotation goes on the function's doc comment; the analyzer
// follows the body including its closures (a closure called on the hot
// path allocates on the hot path).
var HotallocAnalyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "//dualsim:hotpath functions must not call fmt, concatenate strings in loops, build map/slice literals or box scalars into interfaces",
	Run:  runHotalloc,
}

func runHotalloc(pass *analysis.Pass) error {
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasAnnotation(fn.Doc, HotpathAnnotation) {
				continue
			}
			checkHotBody(pass, fn.Name.Name, fn.Body)
		}
	}
	return nil
}

func checkHotBody(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.ForStmt:
				if nn.Init != nil {
					walk(nn.Init, loopDepth)
				}
				if nn.Cond != nil {
					walk(nn.Cond, loopDepth)
				}
				if nn.Post != nil {
					walk(nn.Post, loopDepth)
				}
				walk(nn.Body, loopDepth+1)
				return false
			case *ast.RangeStmt:
				walk(nn.X, loopDepth)
				walk(nn.Body, loopDepth+1)
				return false
			case *ast.CallExpr:
				checkHotCall(pass, name, nn)
			case *ast.BinaryExpr:
				if loopDepth > 0 && nn.Op.String() == "+" && isNonConstString(pass, nn) {
					pass.Reportf(nn.OpPos, "hot path %s concatenates strings inside a loop; use a preallocated []byte or strings.Builder outside the loop", name)
				}
			case *ast.AssignStmt:
				if loopDepth > 0 && nn.Tok.String() == "+=" && len(nn.Lhs) == 1 && isStringType(pass, nn.Lhs[0]) {
					pass.Reportf(nn.TokPos, "hot path %s concatenates strings inside a loop; use a preallocated []byte or strings.Builder outside the loop", name)
				}
			case *ast.CompositeLit:
				t := pass.TypesInfo.TypeOf(nn)
				if t != nil {
					switch t.Underlying().(type) {
					case *types.Map:
						pass.Reportf(nn.Pos(), "hot path %s allocates a map literal; hoist it out of the hot path", name)
					case *types.Slice:
						pass.Reportf(nn.Pos(), "hot path %s allocates a slice literal; hoist it out of the hot path", name)
					}
				}
			}
			return true
		})
	}
	walk(body, 0)
}

func checkHotCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "hot path %s calls fmt.%s; formatting allocates — precompute or use strconv.Append*", name, fn.Name())
		return
	}
	// Boxing: a basic (numeric/bool) argument passed to an interface
	// parameter heap-allocates once it escapes.
	sig := callSignature(pass, call)
	if sig == nil {
		// A conversion like any(x) still boxes.
		if t := pass.TypesInfo.TypeOf(call); t != nil && types.IsInterface(t) && len(call.Args) == 1 {
			if isBoxableBasic(pass, call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(), "hot path %s boxes a %s into an interface; keep scalars unboxed on the hot path", name, pass.TypesInfo.TypeOf(call.Args[0]))
			}
		}
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && isBoxableBasic(pass, arg) {
			pass.Reportf(arg.Pos(), "hot path %s boxes a %s into an interface argument of %s; keep scalars unboxed on the hot path", name, pass.TypesInfo.TypeOf(arg), fnName(fn))
		}
	}
}

func fnName(fn *types.Func) string {
	if fn == nil {
		return "a function value"
	}
	return fn.Name()
}

// callSignature returns the signature of a genuine call (not a type
// conversion or builtin).
func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypesInfo.TypeOf(call.Fun)
	sig, _ := t.(*types.Signature)
	return sig
}

// isBoxableBasic reports whether e's static type is a basic numeric or
// boolean — the scalar kinds whose interface conversion allocates.
// (Strings convert to a 2-word interface without copying the bytes but
// the header still escapes; they are included.)
func isBoxableBasic(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsNumeric|types.IsBoolean|types.IsString) != 0
}

func isNonConstString(pass *analysis.Pass, e *ast.BinaryExpr) bool {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return false // folded at compile time
	}
	return isStringType(pass, e.X) || isStringType(pass, e.Y)
}

func isStringType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
