package lint

import (
	"go/ast"
	"go/types"

	"dualsim/internal/lint/analysis"
)

// ctxflowScope lists the packages whose exported surface must thread
// request contexts end to end: the evaluation core (engine, soi), the
// serving path (server, cluster) and the durability layer (persist).
var ctxflowScope = []string{
	"internal/engine",
	"internal/soi",
	"internal/server",
	"internal/cluster",
	"internal/persist",
}

// CtxflowAnalyzer enforces the context-threading contract: cancellation
// must flow from the HTTP handler down to the SOI round loop and the
// WAL. Inside the scope packages it reports
//
//  1. any call to context.Background or context.TODO (only main
//     packages and tests may originate a context);
//  2. exported functions that take a context.Context anywhere but the
//     first parameter;
//  3. exported functions without a context parameter that nevertheless
//     pass a context conjured from outside their own parameters,
//     receiver or locals to a callee.
var CtxflowAnalyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "enforce context threading: no context.Background/TODO in engine, soi, server, cluster or persist; " +
		"exported functions take ctx first",
	Run: runCtxflow,
}

func runCtxflow(pass *analysis.Pass) error {
	if !inScope(pass.Path(), ctxflowScope...) {
		return nil
	}
	for _, file := range pass.SourceFiles() {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if pass.IsPkgFunc(call, "context", "Background") {
					pass.Reportf(call.Pos(), "call to context.Background outside main or tests; thread the caller's context")
				}
				if pass.IsPkgFunc(call, "context", "TODO") {
					pass.Reportf(call.Pos(), "call to context.TODO outside main or tests; thread the caller's context")
				}
			}
			return true
		})
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !fn.Name.IsExported() {
				continue
			}
			checkCtxSignature(pass, fn)
		}
	}
	return nil
}

// checkCtxSignature applies rules 2 and 3 to one exported FuncDecl.
func checkCtxSignature(pass *analysis.Pass, fn *ast.FuncDecl) {
	ctxAt := -1
	pos := 0
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if analysis.IsContext(t) && ctxAt < 0 {
				ctxAt = pos
			}
			pos += n
		}
	}
	if ctxAt > 0 {
		pass.Reportf(fn.Pos(), "exported function %s takes context.Context at parameter %d; context must be the first parameter", fn.Name.Name, ctxAt)
		return
	}
	if ctxAt == 0 || fn.Body == nil {
		return
	}

	// No context parameter: every context this function hands to a
	// callee must still trace to its own scope (parameters, receiver,
	// or locals derived from them) — not a stored global.
	local := map[types.Object]bool{}
	for id, obj := range pass.TypesInfo.Defs {
		if obj == nil {
			continue
		}
		if fn.Pos() <= id.Pos() && id.Pos() <= fn.End() {
			local[obj] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			t := pass.TypesInfo.TypeOf(arg)
			if t == nil || !analysis.IsContext(t) {
				continue
			}
			root := rootIdent(arg)
			if root == nil {
				continue // composite or call-rooted; Background/TODO is caught above
			}
			obj := pass.TypesInfo.Uses[root]
			if obj == nil || local[obj] {
				continue
			}
			if _, isVar := obj.(*types.Var); !isVar {
				continue // package or function name roots, e.g. context.WithTimeout(...)
			}
			pass.Reportf(arg.Pos(), "exported function %s passes a context from outside its own scope; accept a context.Context first parameter instead", fn.Name.Name)
		}
		return true
	})
}

// rootIdent unwraps x to the identifier at the base of a selector /
// call / index chain: for s.cfg.ctx it returns s, for r.Context() it
// returns r, for plain ctx it returns ctx.
func rootIdent(x ast.Expr) *ast.Ident {
	for {
		switch e := x.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			x = e.X
		case *ast.CallExpr:
			x = e.Fun
		case *ast.IndexExpr:
			x = e.X
		case *ast.ParenExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.TypeAssertExpr:
			x = e.X
		case *ast.UnaryExpr:
			x = e.X
		default:
			return nil
		}
	}
}
