// Package vetdriver runs the dualsimvet analyzer suite, speaking the
// `go vet -vettool` unitchecker protocol with only the standard
// library (the build environment has no module proxy, so
// golang.org/x/tools/go/analysis/unitchecker is reimplemented here).
//
// The protocol, as implemented by cmd/go/internal/work.(*Builder).vet:
//
//  1. `tool -flags` — print a JSON description of the tool's flags so
//     `go vet` can validate its command line;
//  2. `tool -V=full` — print "<exe> version devel ... buildID=<hash>"
//     so `go vet` can fingerprint the tool for its action cache;
//  3. `tool <flags> <objdir>/vet.cfg` — analyze one package described
//     by a JSON config: absolute Go file paths plus gc export data for
//     every dependency. Diagnostics go to stderr, exit status 2 marks
//     findings, and an (empty — the suite is factless) .vetx output
//     file is written for the cache.
//
// Standalone invocation (`dualsimvet ./...`) re-executes `go vet
// -vettool=<self>` so package loading, caching and test-variant
// handling are the go command's own.
package vetdriver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"dualsim/internal/lint/analysis"
)

// vetConfig mirrors cmd/go/internal/work.vetConfig — the JSON the go
// command hands a vet tool for each package.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Main is the dualsimvet entry point; it returns the process exit code.
func Main(progName string, args []string, suite []*analysis.Analyzer) int {
	fs := flag.NewFlagSet(progName, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-analyzer[=false] ...] <packages|vet.cfg>\n\nAnalyzers:\n", progName)
		for _, a := range suite {
			fmt.Fprintf(os.Stderr, "  -%s\n        %s\n", a.Name, a.Doc)
		}
	}
	versionFlag := fs.String("V", "", "print version and exit (-V=full, used by the go command)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (used by the go command)")
	selected := make(map[string]*bool, len(suite))
	for _, a := range suite {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		selected[a.Name] = fs.Bool(a.Name, false, doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *versionFlag != "" {
		return printVersion(progName, *versionFlag)
	}
	if *printFlags {
		return printFlagDefs(suite)
	}

	// Analyzer selection follows vet convention: naming any analyzer
	// runs only the named ones; -name=false subtracts from the full
	// suite; nothing named runs everything.
	explicitTrue := false
	fs.Visit(func(f *flag.Flag) {
		if _, ok := selected[f.Name]; ok && f.Value.String() == "true" {
			explicitTrue = true
		}
	})
	explicitly := map[string]bool{}
	fs.Visit(func(f *flag.Flag) {
		if _, ok := selected[f.Name]; ok {
			explicitly[f.Name] = true
		}
	})
	var enabled []*analysis.Analyzer
	var reexecFlags []string
	for _, a := range suite {
		on := true
		if explicitTrue {
			on = *selected[a.Name]
		} else if explicitly[a.Name] {
			on = *selected[a.Name] // -name=false
		}
		if on {
			enabled = append(enabled, a)
		}
		if explicitly[a.Name] {
			reexecFlags = append(reexecFlags, fmt.Sprintf("-%s=%v", a.Name, *selected[a.Name]))
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return checkUnit(rest[0], enabled)
	}
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	return standalone(reexecFlags, rest)
}

// printVersion implements the -V=full handshake: the go command
// requires "<f0> version <f2>..." where, for "devel" tools, the last
// field carries a content hash it folds into its action cache key.
func printVersion(progName, mode string) int {
	if mode != "full" {
		fmt.Fprintf(os.Stderr, "%s: unsupported -V mode %q\n", progName, mode)
		return 2
	}
	exe, err := os.Executable()
	if err != nil {
		exe = progName
	}
	h := sha256.New()
	if f, err := os.Open(exe); err == nil {
		_, _ = io.Copy(h, f)
		_ = f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h.Sum(nil))
	return 0
}

// printFlagDefs implements `tool -flags`: the JSON flag inventory the
// go command uses to validate `go vet` command lines.
func printFlagDefs(suite []*analysis.Analyzer) int {
	type flagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := make([]flagDef, 0, len(suite))
	for _, a := range suite {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: doc})
	}
	out, err := json.Marshal(defs)
	if err != nil {
		return 1
	}
	os.Stdout.Write(append(out, '\n'))
	return 0
}

// standalone re-executes the suite through `go vet` so the go command
// does package loading and caching; diagnostics stream through.
func standalone(analyzerFlags, patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dualsimvet: cannot locate own executable: %v\n", err)
		return 1
	}
	args := append([]string{"vet", "-vettool=" + self}, analyzerFlags...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "dualsimvet: go vet: %v\n", err)
		return 1
	}
	return 0
}

// checkUnit analyzes the single package described by cfgPath.
func checkUnit(cfgPath string, enabled []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dualsimvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dualsimvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			// The suite computes no cross-package facts; an empty
			// output still lets the go command cache this run.
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly {
		// Dependency-only visit: nothing to compute, nothing to report.
		writeVetx()
		return 0
	}

	diags, err := analyzePackage(&cfg, enabled)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "dualsimvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
	writeVetx()
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// analyzePackage parses and type-checks the unit from its vet config,
// importing dependencies from the gc export data the go command
// supplied, then runs every enabled analyzer.
func analyzePackage(cfg *vetConfig, enabled []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", buildArch()),
	}
	if strings.HasPrefix(cfg.GoVersion, "go") {
		tconf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	var diags []analysis.Diagnostic
	sink := func(d analysis.Diagnostic) { diags = append(diags, d) }
	for _, a := range enabled {
		pass := analysis.NewPass(a, fset, files, pkg, info, sink)
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	return diags, nil
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return defaultGOARCH
}
