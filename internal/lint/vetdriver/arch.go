package vetdriver

import "runtime"

// defaultGOARCH sizes type-checking for the host when GOARCH is unset.
const defaultGOARCH = runtime.GOARCH
