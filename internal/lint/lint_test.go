// Tests for the dualsimvet invariant suite. The harness builds
// cmd/dualsimvet once, then drives it the way users do — through
// `go vet -vettool` — against the fixture module under
// testdata/src/dualsim, matching emitted diagnostics against the
// fixtures' "// want" regex comments exactly (every want must fire,
// and nothing else may).
package lint_test

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	toolPath   string // built dualsimvet binary
	repoRoot   string // module root of dualsim itself
	fixtureDir string // root of the fixture module
)

func TestMain(m *testing.M) {
	var err error
	repoRoot, err = filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fixtureDir = filepath.Join(repoRoot, "internal", "lint", "testdata", "src", "dualsim")

	dir, err := os.MkdirTemp("", "dualsimvet")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	toolPath = filepath.Join(dir, "dualsimvet")
	build := exec.Command("go", "build", "-o", toolPath, "./cmd/dualsimvet")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building dualsimvet: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// diag is one parsed `file:line:col: [analyzer] message` line.
type diag struct {
	file     string
	line     int
	analyzer string
	msg      string
}

var diagRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): \[(\w+)\] (.*)$`)

// runVet runs `go vet -vettool=dualsimvet [-analyzer...] ./...` in the
// fixture module and parses the diagnostics. Naming analyzers restricts
// the run to them, mirroring vet's selection semantics. Any output line
// that is not a suite diagnostic (e.g. a type-check error in a fixture)
// fails the test.
func runVet(t *testing.T, analyzers ...string) []diag {
	t.Helper()
	args := []string{"vet", "-vettool=" + toolPath}
	for _, a := range analyzers {
		args = append(args, "-"+a)
	}
	args = append(args, "./...")
	cmd := exec.Command("go", args...)
	cmd.Dir = fixtureDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		// Diagnostics make go vet exit nonzero; that is expected. A
		// failure to even start is not.
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("go vet did not run: %v\n%s", err, out)
		}
	}
	var diags []diag
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := diagRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable go vet output line (fixture type-check error?): %q\nfull output:\n%s", line, out)
		}
		n, _ := strconv.Atoi(m[2])
		diags = append(diags, diag{file: filepath.ToSlash(m[1]), line: n, analyzer: m[4], msg: m[5]})
	}
	return diags
}

// want is one expectation parsed from a fixture's `// want` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var backquoted = regexp.MustCompile("`([^`]*)`")

// collectWants extracts the backquoted regexes of every `// want`
// comment in the given fixture files (paths relative to the fixture
// module root).
func collectWants(t *testing.T, files ...string) []want {
	t.Helper()
	var ws []want
	for _, rel := range files {
		data, err := os.ReadFile(filepath.Join(fixtureDir, filepath.FromSlash(rel)))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			pats := backquoted.FindAllStringSubmatch(line[idx:], -1)
			if len(pats) == 0 {
				t.Fatalf("%s:%d: want comment without backquoted pattern", rel, i+1)
			}
			for _, p := range pats {
				ws = append(ws, want{file: rel, line: i + 1, re: regexp.MustCompile(p[1])})
			}
		}
	}
	if len(ws) == 0 {
		t.Fatalf("no want expectations found in %v", files)
	}
	return ws
}

// matchWants asserts a one-to-one correspondence between diagnostics
// and expectations: every want is satisfied by a diagnostic on its
// exact file:line whose message matches the regex, and no diagnostic
// is left over.
func matchWants(t *testing.T, diags []diag, wants []want) {
	t.Helper()
	used := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if used[i] || d.file != w.file || d.line != w.line || !w.re.MatchString(d.msg) {
				continue
			}
			used[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("missing diagnostic: %s:%d want match for %q", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !used[i] {
			t.Errorf("unexpected diagnostic: %s:%d: [%s] %s", d.file, d.line, d.analyzer, d.msg)
		}
	}
}

// Per-analyzer runs: the suite is invoked with only that analyzer
// enabled, so these also verify vet-style analyzer selection — a
// diagnostic from any other analyzer would show up as unexpected.

func TestCtxflow(t *testing.T) {
	matchWants(t, runVet(t, "ctxflow"), collectWants(t, "internal/engine/ctxflow.go"))
}

func TestWiretags(t *testing.T) {
	matchWants(t, runVet(t, "wiretags"), collectWants(t, "internal/wire/wiretags.go", "api/annotated.go"))
}

func TestNolockio(t *testing.T) {
	matchWants(t, runVet(t, "nolockio"), collectWants(t, "internal/stats/nolockio.go"))
}

func TestHotalloc(t *testing.T) {
	matchWants(t, runVet(t, "hotalloc"), collectWants(t, "hotpath/hotalloc.go"))
}

func TestErrsync(t *testing.T) {
	matchWants(t, runVet(t, "errsync"), collectWants(t, "internal/persist/errsync.go"))
}

// TestFullSuite runs all five analyzers together over the fixture
// module: the union of every file's expectations, and nothing from
// internal/other (the out-of-scope control package).
func TestFullSuite(t *testing.T) {
	wants := collectWants(t,
		"internal/engine/ctxflow.go",
		"internal/wire/wiretags.go",
		"api/annotated.go",
		"internal/stats/nolockio.go",
		"hotpath/hotalloc.go",
		"internal/persist/errsync.go",
	)
	matchWants(t, runVet(t), wants)
}

// TestRepoClean is the acceptance smoke test: the tree itself must be
// free of suite diagnostics. Uses the standalone entry point (which
// re-execs go vet), exactly as CI invokes it.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("vets the whole repository; skipped with -short")
	}
	cmd := exec.Command(toolPath, "./...")
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("dualsimvet ./... is not clean: %v\n%s", err, out)
	}
}

// TestVetToolProtocol checks the two handshake surfaces cmd/go probes
// before trusting a -vettool: -flags must emit a JSON flag inventory
// listing every analyzer, and -V=full must emit a version line ending
// in a build ID.
func TestVetToolProtocol(t *testing.T) {
	out, err := exec.Command(toolPath, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags output is not the JSON cmd/go expects: %v\n%s", err, out)
	}
	have := map[string]bool{}
	for _, f := range flags {
		have[f.Name] = f.Bool
	}
	for _, a := range []string{"ctxflow", "wiretags", "nolockio", "hotalloc", "errsync"} {
		if !have[a] {
			t.Errorf("-flags does not advertise boolean analyzer flag -%s", a)
		}
	}

	out, err = exec.Command(toolPath, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	version := strings.TrimSpace(string(out))
	if !regexp.MustCompile(`^\S+ version devel .*buildID=[0-9a-f]+$`).MatchString(version) {
		t.Errorf("-V=full output %q does not match cmd/go's expected shape", version)
	}
}
