package lint

import (
	"go/ast"
	"go/types"

	"dualsim/internal/lint/analysis"
)

// errsyncScope: the durability layer and the daemon whose shutdown
// path owns the final WAL checkpoint. The WAL-before-ack contract is
// only as strong as the weakest ignored fsync result.
var errsyncScope = []string{
	"internal/persist",
	"cmd/dualsimd",
}

// errsyncNames are the error-returning durability operations whose
// results must not be dropped: file sync/close/write, lock
// acquisition/release, buffered flushes and graceful shutdowns.
var errsyncNames = map[string]bool{
	"Sync":        true,
	"Close":       true,
	"Write":       true,
	"WriteString": true,
	"WriteAt":     true,
	"Flush":       true,
	"Flock":       true,
	"Shutdown":    true,
	"Checkpoint":  true,
}

// ErrsyncAnalyzer reports durability calls whose error result is
// silently discarded — a bare `f.Close()` statement or a bare
// `defer f.Sync()`. An explicit `_ = f.Close()` is accepted as a
// visible, greppable acknowledgment on paths where the error is
// genuinely uninteresting (e.g. closing a fully-read file); everywhere
// else the error must join the function's error flow, because a
// swallowed fsync failure silently voids the WAL-before-ack guarantee.
var ErrsyncAnalyzer = &analysis.Analyzer{
	Name: "errsync",
	Doc:  "in persist and dualsimd, Sync/Close/Write/Flush/Flock/Shutdown error results must be checked (or explicitly discarded with _ =)",
	Run:  runErrsync,
}

func runErrsync(pass *analysis.Pass) error {
	if !inScope(pass.Path(), errsyncScope...) {
		return nil
	}
	for _, file := range pass.SourceFiles() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkErrsyncCall(pass, call, false)
				}
			case *ast.DeferStmt:
				checkErrsyncCall(pass, st.Call, true)
			case *ast.GoStmt:
				checkErrsyncCall(pass, st.Call, true)
			}
			return true
		})
	}
	return nil
}

func checkErrsyncCall(pass *analysis.Pass, call *ast.CallExpr, deferred bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || !errsyncNames[fn.Name()] {
		// Also catch syscall.Flock, which is a package function.
		if fn == nil || !(fn.Pkg() != nil && fn.Pkg().Path() == "syscall" && fn.Name() == "Flock") {
			return
		}
	}
	if !returnsError(fn) {
		return
	}
	how := "discards"
	if deferred {
		how = "defers and discards"
	}
	pass.Reportf(call.Pos(), "%s the error from %s; check it (WAL-before-ack depends on surfaced sync/close failures) or discard explicitly with _ =", how, callDesc(fn))
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func callDesc(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
