// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) used by the dualsimvet invariant suite.
//
// The container this repository builds in has no module proxy access,
// so the real x/tools framework cannot be vendored; the subset below is
// API-compatible in spirit (an Analyzer has a Name, a Doc and a Run
// function over a type-checked Pass) which keeps the analyzers in
// internal/lint portable to the upstream framework if it ever becomes
// available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant check. Run is invoked once per
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	// Name is the analyzer identifier: a valid flag name, shown in
	// diagnostics and used to enable/disable the pass.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces. The
	// first line is used as the flag usage string.
	Doc string
	// Run performs the check. It may return an error for internal
	// failures; invariant violations are reported via Pass.Reportf.
	Run func(*Pass) error
}

// Pass is the per-package unit of work handed to an Analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.Pos, d.Message)
}

// NewPass assembles a Pass; sink receives each reported diagnostic.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sink func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, report: sink}
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Path returns the package's import path with any test-variant suffix
// ("pkg [pkg.test]") stripped, so scope checks match both the plain
// package and its in-package test compilation.
func (p *Pass) Path() string {
	path := p.Pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}

// IsTestFile reports whether file was parsed from a _test.go source.
func (p *Pass) IsTestFile(file *ast.File) bool {
	name := p.Fset.Position(file.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// SourceFiles yields the non-test files of the pass: invariants gate
// production code; tests are free to use context.Background, ignore
// Close errors, and allocate.
func (p *Pass) SourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !p.IsTestFile(f) {
			out = append(out, f)
		}
	}
	return out
}

// CalleeFunc resolves the *types.Func a call expression invokes, or nil
// for calls through function-typed variables, conversions and builtins.
// It resolves both plain identifiers and selector calls (including
// method values on embedded fields).
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := p.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "context", "Background").
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := p.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// MethodOn reports whether fn is a method declared on the named type
// pkgPath.typeName (receiver may be a pointer).
func MethodOn(fn *types.Func, pkgPath, typeName string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// HasPrefixPath reports whether path equals prefix or is a subpackage
// of it.
func HasPrefixPath(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}
