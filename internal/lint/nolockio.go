package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dualsim/internal/lint/analysis"
)

// nolockioScope: the sharded-mutex statement store, the admission
// path, the router endpoint tables and the metrics registry are the
// serving hot spots where an I/O call under a mutex stalls every
// request behind it.
var nolockioScope = []string{
	"internal/stats",
	"internal/server",
	"internal/cluster",
	"internal/metrics",
}

// NolockioAnalyzer forbids blocking operations while a sync.Mutex or
// sync.RWMutex is held: network or file I/O, log/fmt printing to
// streams, and channel sends. The required shape is snapshot-under-
// lock, act-after-unlock.
//
// The check is a linear, intra-procedural walk: a region opens at a
// `mu.Lock()`/`mu.RLock()` statement and closes at the matching
// `Unlock`/`RUnlock`; a deferred unlock keeps the region open to the
// end of the function. Function literals are not entered — a closure
// runs on its own schedule.
var NolockioAnalyzer = &analysis.Analyzer{
	Name: "nolockio",
	Doc:  "no network/file I/O, log/fmt printing or channel sends while holding a sync.Mutex/RWMutex in stats, server, cluster or metrics",
	Run:  runNolockio,
}

func runNolockio(pass *analysis.Pass) error {
	if !inScope(pass.Path(), nolockioScope...) {
		return nil
	}
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass}
			w.block(fn.Body.List, 0)
		}
	}
	return nil
}

type lockWalker struct {
	pass *analysis.Pass
}

// block walks stmts with the given entry lock depth and returns the
// depth at the end of the sequence. Nested control flow is walked
// conservatively: the deepest branch wins.
func (w *lockWalker) block(stmts []ast.Stmt, depth int) int {
	for _, s := range stmts {
		depth = w.stmt(s, depth)
	}
	return depth
}

func (w *lockWalker) stmt(s ast.Stmt, depth int) int {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			switch w.lockOp(call) {
			case lockAcquire:
				return depth + 1
			case lockRelease:
				if depth > 0 {
					return depth - 1
				}
				return 0
			}
		}
		if depth > 0 {
			w.checkLocked(st.X, depth)
		}
		return depth
	case *ast.DeferStmt:
		// A deferred unlock pins the region open for the rest of the
		// function; any other deferred call runs after the locks are
		// (presumably) released, so its body is not checked.
		return depth
	case *ast.GoStmt:
		// The goroutine body runs without this goroutine's locks.
		return depth
	case *ast.BlockStmt:
		return w.block(st.List, depth)
	case *ast.IfStmt:
		if st.Init != nil {
			depth = w.stmt(st.Init, depth)
		}
		if depth > 0 {
			w.checkLocked(st.Cond, depth)
		}
		after := w.block(st.Body.List, depth)
		if st.Else != nil {
			after = max(after, w.stmt(st.Else, depth))
		} else {
			after = max(after, depth)
		}
		return after
	case *ast.ForStmt:
		if st.Init != nil {
			depth = w.stmt(st.Init, depth)
		}
		if depth > 0 {
			if st.Cond != nil {
				w.checkLocked(st.Cond, depth)
			}
			if st.Post != nil {
				w.stmt(st.Post, depth)
			}
		}
		return max(depth, w.block(st.Body.List, depth))
	case *ast.RangeStmt:
		if depth > 0 {
			w.checkLocked(st.X, depth)
		}
		return max(depth, w.block(st.Body.List, depth))
	case *ast.SwitchStmt:
		if st.Init != nil {
			depth = w.stmt(st.Init, depth)
		}
		if depth > 0 && st.Tag != nil {
			w.checkLocked(st.Tag, depth)
		}
		after := depth
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				after = max(after, w.block(cc.Body, depth))
			}
		}
		return after
	case *ast.TypeSwitchStmt:
		after := depth
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				after = max(after, w.block(cc.Body, depth))
			}
		}
		return after
	case *ast.SelectStmt:
		after := depth
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if depth > 0 && cc.Comm != nil {
					if send, ok := cc.Comm.(*ast.SendStmt); ok {
						w.reportSend(send.Arrow, depth)
					}
				}
				after = max(after, w.block(cc.Body, depth))
			}
		}
		return after
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, depth)
	case *ast.SendStmt:
		if depth > 0 {
			w.reportSend(st.Arrow, depth)
			w.checkLocked(st.Value, depth)
		}
		return depth
	default:
		if depth > 0 {
			ast.Inspect(s, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.SendStmt:
					w.reportSend(nn.Arrow, depth)
				case *ast.CallExpr:
					w.checkCall(nn, depth)
				}
				return true
			})
		}
		return depth
	}
}

// checkLocked inspects one expression tree for banned operations while
// a lock is held, without descending into function literals.
func (w *lockWalker) checkLocked(e ast.Expr, depth int) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.checkCall(nn, depth)
		}
		return true
	})
}

func (w *lockWalker) reportSend(pos token.Pos, depth int) {
	w.pass.Reportf(pos, "channel send while holding a mutex (lock depth %d); release the lock before communicating", depth)
}

func (w *lockWalker) checkCall(call *ast.CallExpr, depth int) {
	fn := w.pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	bad := ""
	switch {
	case pkg == "log":
		bad = "log." + name
	case pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || name == "Scan" || name == "Scanln" || name == "Scanf"):
		bad = "fmt." + name
	case pkg == "os" && osIOFuncs[name]:
		bad = "os." + name
	case analysis.MethodOn(fn, "os", "File"):
		bad = "(*os.File)." + name
	case pkg == "net/http":
		bad = "net/http " + name
	case pkg == "net" && (strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") || strings.HasPrefix(name, "Lookup") || isMethod(fn)):
		bad = "net " + name
	case pkg == "io" && ioFuncs[name]:
		bad = "io." + name
	case analysis.MethodOn(fn, "bufio", "Writer") && name == "Flush":
		bad = "(*bufio.Writer).Flush"
	}
	if bad != "" {
		w.pass.Reportf(call.Pos(), "%s called while holding a mutex (lock depth %d); snapshot under the lock, do I/O after unlocking", bad, depth)
	}
}

// isMethod reports whether fn has a receiver (methods on net.Conn and
// friends are connection I/O; package-level string helpers like
// net.JoinHostPort are not).
func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Link": true, "Symlink": true,
	"Mkdir": true, "MkdirAll": true, "Stat": true, "Lstat": true,
	"Truncate": true, "Chmod": true, "Chown": true, "Chtimes": true,
}

var ioFuncs = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true,
	"ReadAll": true, "ReadFull": true, "WriteString": true,
}

type lockOpKind int

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockRelease
)

// lockOp classifies a call statement as a mutex acquire/release.
func (w *lockWalker) lockOp(call *ast.CallExpr) lockOpKind {
	fn := w.pass.CalleeFunc(call)
	if fn == nil {
		return lockNone
	}
	if !analysis.MethodOn(fn, "sync", "Mutex") && !analysis.MethodOn(fn, "sync", "RWMutex") {
		return lockNone
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return lockAcquire
	case "Unlock", "RUnlock":
		return lockRelease
	}
	return lockNone
}
