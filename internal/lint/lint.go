// Package lint is the dualsimvet invariant suite: custom static
// analyzers that turn the engine's cross-cutting correctness contracts
// — context threading, wire-stable JSON tags, lock discipline,
// allocation-free hot paths, checked durability errors — into
// compile-time gates instead of after-the-fact runtime tests.
//
// The analyzers are package-scoped by import path (relative to the
// dualsim module) and/or driven by source annotations:
//
//	//dualsim:hotpath   function must stay allocation-free (hotalloc)
//	//dualsim:wire      struct is wire-visible JSON (wiretags)
//
// They run through cmd/dualsimvet, either standalone (dualsimvet ./...)
// or as a `go vet -vettool` plugin.
package lint

import "dualsim/internal/lint/analysis"

// Module is the import-path root all scope prefixes hang off. The
// testdata fixture module declares the same module path so fixtures
// exercise the real scoping rules.
const Module = "dualsim"

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		CtxflowAnalyzer,
		WiretagsAnalyzer,
		NolockioAnalyzer,
		HotallocAnalyzer,
		ErrsyncAnalyzer,
	}
}

// inScope reports whether path (a module-relative import path already
// stripped of test-variant suffixes) falls under any of the prefixes.
func inScope(path string, prefixes ...string) bool {
	for _, p := range prefixes {
		if analysis.HasPrefixPath(path, Module+"/"+p) {
			return true
		}
	}
	return false
}
