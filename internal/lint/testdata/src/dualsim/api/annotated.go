// Package api is a wiretags fixture for structs outside internal/wire:
// only types carrying the //dualsim:wire annotation are checked.
package api

// Stats opts in via the annotation, so its untagged field is reported.
//
//dualsim:wire
type Stats struct {
	Calls int // want `wire struct Stats: field Calls has no json tag`
}

// Internal has the same shape but no annotation: out of scope, clean.
type Internal struct {
	Calls int
}
