// Package engine is a ctxflow fixture: every violation line carries a
// `// want` regex the test harness matches against the analyzer output.
package engine

import "context"

// stored is the anti-pattern ctxflow's third rule exists for: a context
// smuggled through package state instead of threaded as a parameter.
var stored = context.TODO() // want `call to context\.TODO`

func eval(ctx context.Context, q string) error {
	_ = ctx
	_ = q
	return nil
}

// Evaluate conjures its own context instead of accepting the caller's.
func Evaluate(q string) error {
	return eval(context.Background(), q) // want `call to context\.Background outside main or tests`
}

// Solve passes a package-stored context: the same contract violation
// even though it never calls context.Background itself.
func Solve(q string) error {
	return eval(stored, q) // want `exported function Solve passes a context from outside its own scope`
}

// Misordered accepts a context, but not as the first parameter.
func Misordered(q string, ctx context.Context) error { // want `exported function Misordered takes context\.Context at parameter 1; context must be the first parameter`
	return eval(ctx, q)
}

// Good threads the caller's context and produces no diagnostics.
func Good(ctx context.Context, q string) error {
	return eval(ctx, q)
}

// GoodLocal derives a context from its own scope, which is fine even
// without a context.Context first parameter rule applying.
func GoodLocal(parent context.Context, q string) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	return eval(ctx, q)
}
