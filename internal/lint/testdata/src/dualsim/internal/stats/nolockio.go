// Package stats is a nolockio fixture: I/O, logging and channel sends
// inside mutex-held regions are reported; the snapshot-then-act shape
// is the approved alternative and stays clean.
package stats

import (
	"fmt"
	"os"
	"sync"
)

type store struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	count int
	done  chan struct{}
}

func (s *store) logUnderLock() {
	s.mu.Lock()
	fmt.Println("stats", s.count) // want `fmt\.Println called while holding a mutex`
	s.mu.Unlock()
}

func (s *store) deferKeepsRegionOpen() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done <- struct{}{} // want `channel send while holding a mutex`
}

func (s *store) fileIOUnderRLock() error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	_, err := os.ReadFile("stats.json") // want `os\.ReadFile called while holding a mutex`
	return err
}

// snapshotThenAct is the approved shape: copy state under the lock,
// release, then do the slow work. No diagnostics.
func (s *store) snapshotThenAct() {
	s.mu.Lock()
	n := s.count
	s.mu.Unlock()
	fmt.Println(n)
	s.done <- struct{}{}
}

// spawnedGoroutineIsItsOwnRegion: a go statement's body runs after the
// critical section from the scheduler's point of view; nolockio does
// not attribute its calls to the outer lock region.
func (s *store) spawnedGoroutineIsItsOwnRegion() {
	s.mu.Lock()
	go func() { fmt.Println("async") }()
	s.mu.Unlock()
}
