// Package wire is a wiretags fixture: every struct here is in scope
// unconditionally because the package path is internal/wire.
package wire

// Envelope exercises each tag defect wiretags reports.
type Envelope struct {
	Epoch uint64 `json:"epoch"` // explicit lowerCamel: clean
	Rows  int    `json:"Rows"`  // want `wire struct Envelope: field Rows json tag "Rows" is not lowerCamel`
	Query string // want `wire struct Envelope: field Query has no json tag`
	Snake string `json:"snake_case"` // want `wire struct Envelope: field Snake json tag "snake_case" is not lowerCamel`
	Skip  string `json:"-"`          // explicit omission: clean

	unexported string // unexported fields never travel: clean
}

// Clean is a fully tagged struct and produces no diagnostics.
type Clean struct {
	TraceID string `json:"traceID"`
	Elapsed int64  `json:"elapsedNanos,omitempty"`
}

func silence(e Envelope, c Clean) (Envelope, Clean) { _ = e.unexported; return e, c }
