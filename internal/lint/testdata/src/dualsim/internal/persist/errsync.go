// Package persist is an errsync fixture: dropped durability errors
// (Sync/Close/Write/Flock results) are reported; `_ =` is the explicit,
// greppable way to discard one on purpose.
package persist

import (
	"os"
	"syscall"
)

func unchecked(f *os.File, b []byte) {
	f.Sync()   // want `discards the error from \(File\)\.Sync`
	f.Write(b) // want `discards the error from \(File\)\.Write`
	f.Close()  // want `discards the error from \(File\)\.Close`
}

func deferred(f *os.File) {
	defer f.Close() // want `defers and discards the error from \(File\)\.Close`
}

func flocked(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN) // want `discards the error from syscall\.Flock`
}

// acknowledged discards explicitly: accepted, clean.
func acknowledged(f *os.File) {
	_ = f.Close()
}

// checked surfaces both errors: clean.
func checked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}
