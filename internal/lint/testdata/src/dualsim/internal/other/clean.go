// Package other holds would-be violations of every analyzer in a
// package OUTSIDE every analyzer's scope: the suite must stay silent
// here, proving the import-path and annotation gating.
package other

import (
	"context"
	"fmt"
	"os"
	"sync"
)

var mu sync.Mutex

// Background is fine here: internal/other is not an evaluation package.
func Background() context.Context {
	return context.Background()
}

// LogUnderLock is fine here: nolockio only patrols stats/server/cluster/metrics.
func LogUnderLock() {
	mu.Lock()
	fmt.Println("outside scope")
	mu.Unlock()
}

// DropClose is fine here: errsync only patrols internal/persist and cmd/dualsimd.
func DropClose(f *os.File) {
	f.Close()
}

// Allocy is unannotated, so hotalloc ignores it everywhere.
func Allocy(n int) string {
	return fmt.Sprintf("%d", n)
}

// Untagged is unannotated and outside internal/wire: wiretags ignores it.
type Untagged struct {
	Rows int
}
