// Package hotpath is a hotalloc fixture: only functions annotated
// //dualsim:hotpath are checked, and each allocation class is reported.
package hotpath

import "fmt"

func sink(vs ...any) { _ = vs }

// concat grows a string inside a loop: one hidden allocation per turn.
//
//dualsim:hotpath
func concat(rows []int) string {
	out := ""
	for range rows {
		out += "x" // want `concatenates strings inside a loop`
	}
	return out
}

// format calls into fmt, which allocates for its interface arguments
// and its output buffer.
//
//dualsim:hotpath
func format(n int) int {
	fmt.Print(n) // want `calls fmt\.Print`
	return n
}

// literals allocates composite literals per call.
//
//dualsim:hotpath
func literals(k string) int {
	m := map[string]int{k: 1} // want `allocates a map literal`
	s := []int{1, 2, 3}       // want `allocates a slice literal`
	return m[k] + s[0]
}

// boxes passes a scalar to an interface parameter: the int escapes to
// the heap as an eface.
//
//dualsim:hotpath
func boxes(n int) {
	sink(n) // want `boxes a int into an interface`
}

// passthrough forwards an already-boxed variadic slice: no new boxing,
// clean.
//
//dualsim:hotpath
func passthrough(vs ...any) {
	sink(vs...)
}

// plain is unannotated and may allocate freely: clean.
func plain(n int) string {
	return fmt.Sprintf("%d", n)
}
