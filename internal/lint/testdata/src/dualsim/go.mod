module dualsim

go 1.24
