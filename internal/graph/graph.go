// Package graph implements the edge-labeled directed graphs of the paper's
// Sect. 2: a finite node set V, a finite label alphabet Σ, and a labeled
// edge relation E ⊆ V × Σ × V, together with the forward adjacency map
// F_a(v) (a-successors of v) and the backward adjacency map B_a(v)
// (a-predecessors of v).
//
// Nodes and labels are dense integer ids; callers keep their own
// dictionaries (see internal/storage for the database-side dictionary and
// internal/core for pattern-side variable names).
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within one graph.
type NodeID = uint32

// LabelID identifies an edge label within one graph's alphabet Σ.
type LabelID = uint32

// Edge is a single labeled directed edge (v, a, w).
type Edge struct {
	From  NodeID
	Label LabelID
	To    NodeID
}

// Graph is an edge-labeled directed graph. Build one with New and AddEdge,
// then call Freeze to materialize the adjacency maps. A frozen graph is
// immutable and safe for concurrent reads.
type Graph struct {
	numNodes  int
	numLabels int
	edges     []Edge

	frozen bool
	// fwd[a] and bwd[a] are CSR adjacency lists for label a.
	fwd []adjacency
	bwd []adjacency
}

// adjacency is a compressed sparse row structure: the neighbors of node v
// are ids[ptr[v]:ptr[v+1]], sorted ascending.
type adjacency struct {
	ptr []uint32
	ids []NodeID
}

func (a adjacency) neighbors(v NodeID) []NodeID {
	return a.ids[a.ptr[v]:a.ptr[v+1]]
}

// New returns an empty graph with capacity hints.
func New(numNodes, numLabels int) *Graph {
	return &Graph{numNodes: numNodes, numLabels: numLabels}
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return g.numNodes }

// NumLabels returns |Σ|.
func (g *Graph) NumLabels() int { return g.numLabels }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the edge list. The slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// AddNode grows the node universe by one and returns the new id.
func (g *Graph) AddNode() NodeID {
	if g.frozen {
		panic("graph: AddNode on frozen graph")
	}
	g.numNodes++
	return NodeID(g.numNodes - 1)
}

// AddEdge inserts edge (from, label, to). Node and label ids beyond the
// current universe grow it.
func (g *Graph) AddEdge(from NodeID, label LabelID, to NodeID) {
	if g.frozen {
		panic("graph: AddEdge on frozen graph")
	}
	if int(from) >= g.numNodes {
		g.numNodes = int(from) + 1
	}
	if int(to) >= g.numNodes {
		g.numNodes = int(to) + 1
	}
	if int(label) >= g.numLabels {
		g.numLabels = int(label) + 1
	}
	g.edges = append(g.edges, Edge{From: from, Label: label, To: to})
}

// Freeze sorts and deduplicates the edge list and builds the per-label
// forward and backward adjacency maps. Freeze is idempotent.
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	sort.Slice(g.edges, func(i, j int) bool {
		a, b := g.edges[i], g.edges[j]
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	g.edges = dedupEdges(g.edges)

	g.fwd = make([]adjacency, g.numLabels)
	g.bwd = make([]adjacency, g.numLabels)
	for a := 0; a < g.numLabels; a++ {
		g.fwd[a] = buildAdjacency(g.numNodes, g.edges, LabelID(a), false)
		g.bwd[a] = buildAdjacency(g.numNodes, g.edges, LabelID(a), true)
	}
	g.frozen = true
}

func dedupEdges(es []Edge) []Edge {
	if len(es) < 2 {
		return es
	}
	out := es[:1]
	for _, e := range es[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return out
}

func buildAdjacency(n int, edges []Edge, label LabelID, backward bool) adjacency {
	counts := make([]uint32, n+1)
	for _, e := range edges {
		if e.Label != label {
			continue
		}
		src := e.From
		if backward {
			src = e.To
		}
		counts[src+1]++
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	total := counts[n]
	ids := make([]NodeID, total)
	next := make([]uint32, n)
	copy(next, counts[:n])
	for _, e := range edges {
		if e.Label != label {
			continue
		}
		src, dst := e.From, e.To
		if backward {
			src, dst = dst, src
		}
		ids[next[src]] = dst
		next[src]++
	}
	// Each bucket is already sorted when edges are sorted by (label, from,
	// to) and we scan forward — true for the forward direction; the
	// backward direction needs a per-bucket sort.
	if backward {
		for v := 0; v < n; v++ {
			bucket := ids[counts[v]:counts[v+1]]
			sort.Slice(bucket, func(i, j int) bool { return bucket[i] < bucket[j] })
		}
	}
	return adjacency{ptr: counts, ids: ids}
}

func (g *Graph) mustBeFrozen() {
	if !g.frozen {
		panic("graph: adjacency access before Freeze")
	}
}

// Fwd returns F_a(v), the sorted a-successors of v.
func (g *Graph) Fwd(a LabelID, v NodeID) []NodeID {
	g.mustBeFrozen()
	return g.fwd[a].neighbors(v)
}

// Bwd returns B_a(v), the sorted a-predecessors of v.
func (g *Graph) Bwd(a LabelID, v NodeID) []NodeID {
	g.mustBeFrozen()
	return g.bwd[a].neighbors(v)
}

// HasEdge reports whether (from, a, to) ∈ E.
func (g *Graph) HasEdge(from NodeID, a LabelID, to NodeID) bool {
	g.mustBeFrozen()
	ns := g.fwd[a].neighbors(from)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= to })
	return i < len(ns) && ns[i] == to
}

// OutDegree returns the number of outgoing a-edges of v.
func (g *Graph) OutDegree(a LabelID, v NodeID) int {
	g.mustBeFrozen()
	return len(g.fwd[a].neighbors(v))
}

// InDegree returns the number of incoming a-edges of v.
func (g *Graph) InDegree(a LabelID, v NodeID) int {
	g.mustBeFrozen()
	return len(g.bwd[a].neighbors(v))
}

// LabelsOf returns the set of labels used by at least one edge, in
// ascending order — Σ(G) in the paper's complexity discussion.
func (g *Graph) LabelsOf() []LabelID {
	seen := make([]bool, g.numLabels)
	for _, e := range g.edges {
		seen[e.Label] = true
	}
	var out []LabelID
	for a, ok := range seen {
		if ok {
			out = append(out, LabelID(a))
		}
	}
	return out
}

// String renders the graph as one "v -a-> w" line per edge, for debugging
// and golden tests.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph(|V|=%d, |Σ|=%d, |E|=%d)", g.numNodes, g.numLabels, len(g.edges))
	for _, e := range g.edges {
		fmt.Fprintf(&b, "\n  %d -%d-> %d", e.From, e.Label, e.To)
	}
	return b.String()
}
