package graph

import "fmt"

// Builder constructs a Graph from human-readable node and label names. It
// is the convenient way to transcribe the paper's figures in tests and
// examples:
//
//	b := graph.NewBuilder()
//	b.Edge("director", "born_in", "place")
//	g := b.Graph()
type Builder struct {
	g          *Graph
	nodeByName map[string]NodeID
	nodeNames  []string
	lblByName  map[string]LabelID
	lblNames   []string
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		g:          New(0, 0),
		nodeByName: make(map[string]NodeID),
		lblByName:  make(map[string]LabelID),
	}
}

// Node interns name and returns its id.
func (b *Builder) Node(name string) NodeID {
	if id, ok := b.nodeByName[name]; ok {
		return id
	}
	id := b.g.AddNode()
	b.nodeByName[name] = id
	b.nodeNames = append(b.nodeNames, name)
	return id
}

// Label interns an edge label and returns its id.
func (b *Builder) Label(name string) LabelID {
	if id, ok := b.lblByName[name]; ok {
		return id
	}
	id := LabelID(len(b.lblNames))
	b.lblByName[name] = id
	b.lblNames = append(b.lblNames, name)
	if int(id) >= b.g.numLabels {
		b.g.numLabels = int(id) + 1
	}
	return id
}

// Edge adds (from, label, to), interning all three names.
func (b *Builder) Edge(from, label, to string) {
	b.g.AddEdge(b.Node(from), b.Label(label), b.Node(to))
}

// Graph freezes and returns the built graph.
func (b *Builder) Graph() *Graph {
	b.g.Freeze()
	return b.g
}

// NodeName returns the name interned for id.
func (b *Builder) NodeName(id NodeID) string {
	if int(id) >= len(b.nodeNames) {
		return fmt.Sprintf("#%d", id)
	}
	return b.nodeNames[id]
}

// LabelName returns the name interned for id.
func (b *Builder) LabelName(id LabelID) string {
	if int(id) >= len(b.lblNames) {
		return fmt.Sprintf("#%d", id)
	}
	return b.lblNames[id]
}

// NodeID looks up a node by name.
func (b *Builder) NodeID(name string) (NodeID, bool) {
	id, ok := b.nodeByName[name]
	return id, ok
}

// LabelID looks up a label by name.
func (b *Builder) LabelID(name string) (LabelID, bool) {
	id, ok := b.lblByName[name]
	return id, ok
}

// NumNodes returns the number of interned nodes.
func (b *Builder) NumNodes() int { return len(b.nodeNames) }

// NodeNames returns all interned node names, indexed by NodeID.
func (b *Builder) NodeNames() []string { return b.nodeNames }

// LabelNames returns all interned label names, indexed by LabelID.
func (b *Builder) LabelNames() []string { return b.lblNames }
