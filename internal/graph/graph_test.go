package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// fig2a builds the pattern of the paper's Fig. 2(a).
func fig2a() (*Builder, *Graph) {
	b := NewBuilder()
	b.Edge("director1", "born_in", "place")
	b.Edge("director2", "born_in", "place")
	b.Edge("director1", "worked_with", "coworker")
	b.Edge("director2", "directed", "movie")
	return b, b.Graph()
}

func TestBuilderInterning(t *testing.T) {
	b, g := fig2a()
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.NumLabels() != 3 {
		t.Fatalf("NumLabels = %d, want 3", g.NumLabels())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	d1, ok := b.NodeID("director1")
	if !ok {
		t.Fatal("director1 not interned")
	}
	if b.NodeName(d1) != "director1" {
		t.Fatal("name roundtrip failed")
	}
	if _, ok := b.NodeID("nobody"); ok {
		t.Fatal("phantom node")
	}
}

func TestAdjacency(t *testing.T) {
	b, g := fig2a()
	place, _ := b.NodeID("place")
	d1, _ := b.NodeID("director1")
	d2, _ := b.NodeID("director2")
	born, _ := b.LabelID("born_in")

	if got := g.Fwd(born, d1); !reflect.DeepEqual(got, []NodeID{place}) {
		t.Fatalf("Fwd(born_in, director1) = %v", got)
	}
	preds := g.Bwd(born, place)
	if len(preds) != 2 {
		t.Fatalf("Bwd(born_in, place) = %v", preds)
	}
	want := map[NodeID]bool{d1: true, d2: true}
	for _, p := range preds {
		if !want[p] {
			t.Fatalf("unexpected predecessor %d", p)
		}
	}
	if !g.HasEdge(d1, born, place) {
		t.Fatal("HasEdge missing edge")
	}
	if g.HasEdge(place, born, d1) {
		t.Fatal("HasEdge found reversed edge")
	}
	if g.OutDegree(born, d1) != 1 || g.InDegree(born, place) != 2 {
		t.Fatal("degree mismatch")
	}
}

func TestFreezeDedup(t *testing.T) {
	g := New(0, 0)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 0, 2)
	g.Freeze()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d after dedup, want 2", g.NumEdges())
	}
}

func TestFreezeIdempotent(t *testing.T) {
	_, g := fig2a()
	g.Freeze() // second call must not panic or change anything
	if g.NumEdges() != 4 {
		t.Fatal("Freeze not idempotent")
	}
}

func TestMutationAfterFreezePanics(t *testing.T) {
	_, g := fig2a()
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge after Freeze did not panic")
		}
	}()
	g.AddEdge(0, 0, 1)
}

func TestAccessBeforeFreezePanics(t *testing.T) {
	g := New(2, 1)
	g.AddEdge(0, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Fwd before Freeze did not panic")
		}
	}()
	g.Fwd(0, 0)
}

func TestLabelsOf(t *testing.T) {
	b := NewBuilder()
	b.Label("unused")
	b.Edge("a", "x", "b")
	b.Edge("b", "z", "c")
	g := b.Graph()
	got := g.LabelsOf()
	if len(got) != 2 {
		t.Fatalf("LabelsOf = %v", got)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New(3, 2)
	g.Freeze()
	if g.NumEdges() != 0 {
		t.Fatal("phantom edges")
	}
	if got := g.Fwd(0, 1); len(got) != 0 {
		t.Fatalf("Fwd on empty = %v", got)
	}
}

// randomGraph draws a random labeled graph for property tests; exported via
// testing helpers in other packages too (duplicated to avoid test-only
// cross-package dependencies).
func randomGraph(r *rand.Rand, maxN, maxL, maxE int) *Graph {
	n := r.Intn(maxN) + 1
	l := r.Intn(maxL) + 1
	g := New(n, l)
	e := r.Intn(maxE + 1)
	for i := 0; i < e; i++ {
		g.AddEdge(NodeID(r.Intn(n)), LabelID(r.Intn(l)), NodeID(r.Intn(n)))
	}
	g.Freeze()
	return g
}

func TestPropertyFwdBwdAreTransposes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 40, 5, 200)
		for _, a := range g.LabelsOf() {
			for v := 0; v < g.NumNodes(); v++ {
				for _, w := range g.Fwd(a, NodeID(v)) {
					found := false
					for _, u := range g.Bwd(a, w) {
						if u == NodeID(v) {
							found = true
							break
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDegreesSumToEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 30, 4, 150)
		out, in := 0, 0
		for a := 0; a < g.NumLabels(); a++ {
			for v := 0; v < g.NumNodes(); v++ {
				out += g.OutDegree(LabelID(a), NodeID(v))
				in += g.InDegree(LabelID(a), NodeID(v))
			}
		}
		return out == g.NumEdges() && in == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNeighborsSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 30, 4, 200)
		sorted := func(xs []NodeID) bool {
			for i := 1; i < len(xs); i++ {
				if xs[i-1] >= xs[i] {
					return false
				}
			}
			return true
		}
		for a := 0; a < g.NumLabels(); a++ {
			for v := 0; v < g.NumNodes(); v++ {
				if !sorted(g.Fwd(LabelID(a), NodeID(v))) || !sorted(g.Bwd(LabelID(a), NodeID(v))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	g := New(2, 1)
	g.AddEdge(0, 0, 1)
	g.Freeze()
	want := "graph(|V|=2, |Σ|=1, |E|=1)\n  0 -0-> 1"
	if got := g.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
