// Package trace is the zero-dependency, request-scoped span-tree tracer
// behind `?trace=1`, EXPLAIN ANALYZE and the slow-query log.
//
// A Trace carries a 128-bit trace ID and a tree of Spans: monotonic
// start offsets, durations, string attributes and integer counters. The
// design goal is that *disabled tracing costs nothing*: a trace travels
// inside a context.Context, SpanFromContext returns nil when none was
// installed, and every Span/Trace method is nil-receiver-safe — the
// instrumented code calls them unconditionally and the disabled path
// adds zero allocations (guarded by an AllocsPerRun test at the root).
//
// Distribution follows the W3C Trace Context shape: the router injects a
// `traceparent` header (00-<32 hex trace id>-<16 hex span id>-01) on
// every scatter-gather shard call, the shard daemon Continues the trace
// under the same ID, ships its subtree back inside the ExecStats trailer,
// and the router Attaches it under its fan-out span — one tree shows the
// whole cluster request. Subtree roots carry TraceID so a consumer can
// verify the stitch.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Span is one timed node of a trace tree. The JSON tags are wire-stable:
// spans travel inside ExecStats ("trace") and the slow-query log.
//
//dualsim:wire
type Span struct {
	// TraceID is set on the root span of every subtree that crosses a
	// process boundary, so stitched shard subtrees prove they belong to
	// the same distributed trace.
	TraceID string `json:"traceID,omitempty"`
	Name    string `json:"name"`
	// Start is the span's start offset from its trace root, measured on
	// the machine that produced the span (remote subtrees keep offsets
	// relative to their own root — clocks are never compared across
	// machines). Synthesized spans grafted after the fact report 0.
	Start time.Duration `json:"start,omitempty"`
	// Duration is the span's wall-clock time (inclusive of children).
	Duration time.Duration `json:"duration"`
	// Attrs are low-cardinality string attributes (shard, mode, detail…).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Counters are integer measurements (rows, nextCalls, walBytes…).
	// They are set once when the instrumented section finishes — never
	// bumped per row, so span maintenance stays off the hot path.
	Counters map[string]int64 `json:"counters,omitempty"`
	Children []*Span          `json:"children,omitempty"`

	tr    *Trace    // nil on deserialized subtrees
	began time.Time // monotonic start; zero on synthesized spans
}

// Trace is one request's span tree plus its 128-bit identity. Spans of
// one trace may be created from concurrent goroutines (router fan-out,
// batch members): tree mutations are serialized on the trace's mutex.
type Trace struct {
	mu     sync.Mutex
	id     string // 32 hex chars
	spanID string // 16 hex chars, the root span's W3C span-id
	start  time.Time
	root   *Span
}

// New starts a trace with a fresh random 128-bit ID and a live root span.
func New(rootName string) *Trace {
	return start(randHex(16), rootName)
}

// Continue starts a trace adopting the trace ID of a W3C traceparent
// header, so a shard daemon's subtree joins the router's distributed
// trace. An absent or malformed header falls back to a fresh ID.
func Continue(traceparent, rootName string) *Trace {
	if id, ok := ParseTraceparent(traceparent); ok {
		return start(id, rootName)
	}
	return New(rootName)
}

func start(id, rootName string) *Trace {
	t := &Trace{id: id, spanID: randHex(8), start: time.Now()}
	t.root = &Span{TraceID: id, Name: rootName, tr: t, began: t.start}
	return t
}

// ID returns the 32-hex trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Traceparent renders the W3C header value propagated to shards:
// version 00, this trace's ID, the root span as parent, sampled flag.
//
//dualsim:hotpath
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	return "00-" + t.id + "-" + t.spanID + "-01"
}

// ParseTraceparent extracts the trace ID of a W3C traceparent header.
// Only shape and hex-validity are checked; unknown versions are accepted
// as long as the field widths match (per the spec's forward-compat rule).
func ParseTraceparent(h string) (traceID string, ok bool) {
	// 00-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx-yyyyyyyyyyyyyyyy-zz
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false
	}
	id := h[3:35]
	if !isHex(h[0:2]) || !isHex(id) || !isHex(h[36:52]) || !isHex(h[53:55]) {
		return "", false
	}
	if id == "00000000000000000000000000000000" {
		return "", false
	}
	return id, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func randHex(n int) string {
	buf := make([]byte, n)
	// crypto/rand failure is effectively impossible on supported
	// platforms; a zero ID on that path still produces a valid trace.
	rand.Read(buf)
	return hex.EncodeToString(buf)
}

// ---------------------------------------------------------------------------
// Span construction. Every method is nil-receiver-safe: instrumented
// code calls them unconditionally and pays nothing when tracing is off.

// StartChild opens a live child span clocked from now.
//
//dualsim:hotpath
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	c := &Span{Name: name, tr: s.tr, began: now}
	if s.tr != nil {
		c.Start = now.Sub(s.tr.start)
	}
	s.attach(c)
	return c
}

// End stamps a live span's duration. Synthesized spans are unaffected.
//
//dualsim:hotpath
func (s *Span) End() {
	if s == nil || s.began.IsZero() {
		return
	}
	s.lock()
	s.Duration = time.Since(s.began)
	s.unlock()
}

// Record grafts a completed child span with an externally measured
// duration — for measurements taken without a live span (parse/plan
// times recorded at Prepare, per-operator times from the executor).
//
//dualsim:hotpath
func (s *Span) Record(name string, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Duration: d, tr: s.tr}
	s.attach(c)
	return c
}

// Attach stitches an existing subtree (typically deserialized from a
// shard response) under this span.
//
//dualsim:hotpath
func (s *Span) Attach(child *Span) {
	if s == nil || child == nil {
		return
	}
	s.attach(child)
}

//dualsim:hotpath
func (s *Span) attach(child *Span) {
	s.lock()
	s.Children = append(s.Children, child)
	s.unlock()
}

// SetAttr records a string attribute.
//
//dualsim:hotpath
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
	s.unlock()
}

// Add accumulates into a named counter.
//
//dualsim:hotpath
func (s *Span) Add(name string, n int64) {
	if s == nil {
		return
	}
	s.lock()
	if s.Counters == nil {
		s.Counters = make(map[string]int64, 4)
	}
	s.Counters[name] += n
	s.unlock()
}

// SetDuration overrides the span's duration (for spans whose cost was
// measured elsewhere, e.g. an fsync latency reported by the WAL).
//
//dualsim:hotpath
func (s *Span) SetDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.lock()
	s.Duration = d
	s.unlock()
}

//dualsim:hotpath
func (s *Span) lock() {
	if s.tr != nil {
		s.tr.mu.Lock()
	}
}

//dualsim:hotpath
func (s *Span) unlock() {
	if s.tr != nil {
		s.tr.mu.Unlock()
	}
}

// Traceparent renders the W3C header value of the span's trace ("" on a
// nil or deserialized span) — what the router injects on shard calls
// made while a fan-out span is current.
//
//dualsim:hotpath
func (s *Span) Traceparent() string {
	if s == nil || s.tr == nil {
		return ""
	}
	return s.tr.Traceparent()
}

// Find returns the first span named name in a pre-order walk of the
// subtree (including s itself), or nil — a test and tooling helper.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Context plumbing. The current parent span rides in the context; the
// lookup allocates nothing, so the disabled path stays allocation-free.

type ctxKey struct{}

// ContextWithSpan installs sp as the context's current span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the context's current span, nil when tracing
// is not enabled for this request.
//
//dualsim:hotpath
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
