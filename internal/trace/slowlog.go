package trace

import (
	"sync"
	"time"
)

// Entry is one captured slow query: enough to reconstruct what ran,
// where the time went and against which snapshot, without grepping logs.
// JSON tags are wire-stable (GET /v1/debug/slow).
//
//dualsim:wire
type Entry struct {
	// Time is the wall-clock completion time of the request.
	Time time.Time `json:"time"`
	// TraceID identifies the request's distributed trace.
	TraceID string `json:"traceID,omitempty"`
	// Query is the SPARQL source text as received.
	Query string `json:"query"`
	// Fingerprint is the statement's normalized fingerprint — the key
	// under which /v1/debug/statements aggregates its workload row, so a
	// slow capture can be cross-referenced with its statement statistics
	// (and vice versa: the statements row lists its last slow TraceID).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Duration is the end-to-end server-side request time.
	Duration time.Duration `json:"duration"`
	// Epoch is the store epoch the request answered from.
	Epoch uint64 `json:"epoch"`
	// Status is the HTTP status the request was answered with.
	Status int `json:"status,omitempty"`
	// PlanDecisions is the optimizer's decision log for the execution.
	PlanDecisions []string `json:"planDecisions,omitempty"`
	// Trace is the request's full span tree.
	Trace *Span `json:"trace,omitempty"`
}

// SlowLog is a bounded ring of the most recent over-threshold requests.
// A nil *SlowLog is valid and records nothing — the disabled default.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	buf       []Entry // ring storage, cap fixed at construction
	next      int     // ring write cursor once len(buf) == cap(buf)
	total     int64   // all observations that crossed the threshold
}

// NewSlowLog builds a ring keeping the n most recent requests that took
// at least threshold. n <= 0 returns nil (disabled).
func NewSlowLog(n int, threshold time.Duration) *SlowLog {
	if n <= 0 {
		return nil
	}
	return &SlowLog{threshold: threshold, buf: make([]Entry, 0, n)}
}

// Enabled reports whether observations are being kept.
func (l *SlowLog) Enabled() bool { return l != nil }

// Threshold returns the capture threshold (0 on a nil log).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Observe records e if it crossed the threshold, evicting the oldest
// entry when the ring is full. Returns whether it was recorded.
func (l *SlowLog) Observe(e Entry) bool {
	if l == nil || e.Duration < l.threshold {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		return true
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
	return true
}

// Total returns how many requests ever crossed the threshold (including
// evicted ones).
func (l *SlowLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns the retained entries, most recent first.
func (l *SlowLog) Entries() []Entry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.buf)
	out := make([]Entry, 0, n)
	// Before the ring wraps (and when the cursor sits at 0) the newest
	// entry is the last slot; otherwise it is just behind the cursor.
	newest := n - 1
	if n == cap(l.buf) && l.next > 0 {
		newest = l.next - 1
	}
	for i := 0; i < n; i++ {
		out = append(out, l.buf[(newest-i+n)%n])
	}
	return out
}
