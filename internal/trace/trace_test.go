package trace

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanTreeConstruction(t *testing.T) {
	tr := New("root")
	if len(tr.ID()) != 32 {
		t.Fatalf("trace ID %q, want 32 hex chars", tr.ID())
	}
	root := tr.Root()
	if root.TraceID != tr.ID() {
		t.Fatalf("root TraceID %q, trace ID %q", root.TraceID, tr.ID())
	}
	child := root.StartChild("stage")
	child.SetAttr("mode", "pushdown")
	child.Add("rows", 3)
	child.Add("rows", 4)
	child.End()
	rec := root.Record("fsync", 5*time.Millisecond)
	rec.Add("bytes", 128)
	root.End()

	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(root.Children))
	}
	if got := root.Find("stage"); got == nil || got.Attrs["mode"] != "pushdown" || got.Counters["rows"] != 7 {
		t.Errorf("stage span = %+v", got)
	}
	if got := root.Find("fsync"); got == nil || got.Duration != 5*time.Millisecond || got.Counters["bytes"] != 128 {
		t.Errorf("fsync span = %+v", got)
	}
	if root.Find("stage").Duration <= 0 {
		t.Errorf("ended live span has no duration")
	}
	if root.Find("nope") != nil {
		t.Errorf("Find invented a span")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New("router.fanout")
	tp := tr.Traceparent()
	if len(tp) != 55 {
		t.Fatalf("traceparent %q, want 55 chars", tp)
	}
	id, ok := ParseTraceparent(tp)
	if !ok || id != tr.ID() {
		t.Fatalf("ParseTraceparent(%q) = %q, %v; want %q", tp, id, ok, tr.ID())
	}
	cont := Continue(tp, "query")
	if cont.ID() != tr.ID() {
		t.Fatalf("Continue adopted ID %q, want %q", cont.ID(), tr.ID())
	}
	if cont.Root().Traceparent() == tp {
		t.Fatalf("continued trace reused the parent span ID")
	}

	for _, bad := range []string{
		"", "00-short-span-01",
		"00-0000000000000000000000000000000g-00f067aa0ba902b7-01", // non-hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero ID
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // wrong separator
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
	// Malformed headers fall back to a fresh trace.
	if fresh := Continue("garbage", "q"); len(fresh.ID()) != 32 {
		t.Errorf("Continue with bad header: ID %q", fresh.ID())
	}
}

// TestDisabledPathAllocationFree is the contract the instrumented hot
// paths rely on: with no span in the context, the full call pattern the
// pipeline makes per request allocates nothing.
func TestDisabledPathAllocationFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		sp := SpanFromContext(ctx)
		c := sp.StartChild("stage")
		c.SetAttr("k", "v")
		c.Add("rows", 1)
		sp.Record("parse", time.Millisecond).Add("n", 2)
		sp.Attach(nil)
		c.End()
		_ = sp.Traceparent()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f times per op, want 0", allocs)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	tr := New("query")
	tr.Root().StartChild("evaluate").Add("out", 9)
	tr.Root().End()
	buf, err := json.Marshal(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != tr.ID() || back.Find("evaluate") == nil || back.Find("evaluate").Counters["out"] != 9 {
		t.Fatalf("round-tripped span = %+v", back)
	}
	// A deserialized subtree has no live trace but stays usable.
	back.SetAttr("stitched", "yes")
	if back.Attrs["stitched"] != "yes" {
		t.Fatalf("deserialized span rejected SetAttr")
	}
	if back.Traceparent() != "" {
		t.Fatalf("deserialized span claims a live traceparent")
	}
}

func TestSlowLogRing(t *testing.T) {
	var nilLog *SlowLog
	if nilLog.Enabled() || nilLog.Observe(Entry{Duration: time.Hour}) || nilLog.Total() != 0 || nilLog.Entries() != nil {
		t.Fatalf("nil slow log is not inert")
	}

	l := NewSlowLog(3, 10*time.Millisecond)
	if !l.Enabled() || l.Threshold() != 10*time.Millisecond {
		t.Fatalf("Enabled/Threshold broken")
	}
	if l.Observe(Entry{Query: "fast", Duration: time.Millisecond}) {
		t.Fatalf("recorded a query under the threshold")
	}
	for i, d := range []time.Duration{20, 30, 40, 50} {
		if !l.Observe(Entry{Query: string(rune('a' + i)), Duration: d * time.Millisecond}) {
			t.Fatalf("slow query %d not recorded", i)
		}
	}
	if l.Total() != 4 {
		t.Fatalf("Total = %d, want 4", l.Total())
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("ring kept %d entries, want 3", len(got))
	}
	// Newest first; the oldest entry ("a") was evicted by the wrap.
	for i, want := range []string{"d", "c", "b"} {
		if got[i].Query != want {
			t.Fatalf("Entries()[%d].Query = %q, want %q (got %+v)", i, got[i].Query, want, got)
		}
	}

	if NewSlowLog(0, time.Second) != nil || NewSlowLog(-1, 0) != nil {
		t.Fatalf("non-positive capacity must disable the log")
	}
}
