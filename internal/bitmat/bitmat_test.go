package bitmat

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dualsim/internal/bitvec"
)

// fig2aBornIn is the born_in adjacency of the paper's Fig. 2(a) with node
// order v1=place, v2=director1, v3=director2, v4=coworker, v5=movie
// (0-indexed here).
func fig2aBornIn() Pair {
	return NewPair(5, []Cell{{Row: 1, Col: 0}, {Row: 2, Col: 0}})
}

func TestPaperForwardBackwardExample(t *testing.T) {
	// §3.2: with χS(director) = χS(place) = (1,1,1,1,1):
	//   χS(director) ×b F = (1,0,0,0,0) = r1
	//   χS(place)    ×b B = (0,1,1,0,0) = r2
	p := fig2aBornIn()
	all := bitvec.NewFull(5)
	dst := bitvec.New(5)

	p.Multiply(Forward, all, all, dst, RowWise)
	if want := bitvec.FromBits(5, 0); !dst.Equal(want) {
		t.Fatalf("r1 = %v, want %v", dst, want)
	}
	p.Multiply(Backward, all, all, dst, RowWise)
	if want := bitvec.FromBits(5, 1, 2); !dst.Equal(want) {
		t.Fatalf("r2 = %v, want %v", dst, want)
	}
	// Column-wise must agree.
	p.Multiply(Backward, all, all, dst, ColWise)
	if want := bitvec.FromBits(5, 1, 2); !dst.Equal(want) {
		t.Fatalf("col-wise r2 = %v, want %v", dst, want)
	}
}

func TestCSRBasics(t *testing.T) {
	m := NewCSR(4, []Cell{{0, 1}, {0, 2}, {2, 3}, {0, 1}}) // duplicate collapses
	if m.Dim() != 4 {
		t.Fatalf("Dim = %d", m.Dim())
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if got := m.Row(0); !reflect.DeepEqual(got, []uint32{1, 2}) {
		t.Fatalf("Row(0) = %v", got)
	}
	if got := m.Row(1); len(got) != 0 {
		t.Fatalf("Row(1) = %v", got)
	}
	if m.NonEmptyRowCount() != 2 {
		t.Fatalf("NonEmptyRowCount = %d", m.NonEmptyRowCount())
	}
	if want := bitvec.FromBits(4, 0, 2); !m.NonEmptyRows().Equal(want) {
		t.Fatalf("NonEmptyRows = %v", m.NonEmptyRows())
	}
}

func TestNewCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range cell did not panic")
		}
	}()
	NewCSR(2, []Cell{{0, 5}})
}

func TestTranspose(t *testing.T) {
	m := NewCSR(3, []Cell{{0, 1}, {1, 2}, {0, 2}})
	mt := m.Transpose()
	for i := 0; i < 3; i++ {
		for _, j := range m.Row(i) {
			found := false
			for _, k := range mt.Row(int(j)) {
				if int(k) == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("cell (%d,%d) missing in transpose", i, j)
			}
		}
	}
	if m.NNZ() != mt.NNZ() {
		t.Fatal("transpose changed NNZ")
	}
}

func randomCells(r *rand.Rand, n, e int) []Cell {
	cells := make([]Cell, e)
	for i := range cells {
		cells[i] = Cell{Row: uint32(r.Intn(n)), Col: uint32(r.Intn(n))}
	}
	return cells
}

func randomVec(r *rand.Rand, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			v.Set(i)
		}
	}
	return v
}

// naiveMultiply is the spec: (x ×b A)(j) = 1 iff ∃i: x(i) ∧ A(i,j).
func naiveMultiply(n int, cells []Cell, x, cand *bitvec.Vector) *bitvec.Vector {
	out := bitvec.New(n)
	for _, c := range cells {
		if x.Get(int(c.Row)) && cand.Get(int(c.Col)) {
			out.Set(int(c.Col))
		}
	}
	return out
}

func TestPropertyMultiplyMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(60) + 2
		cells := randomCells(r, n, r.Intn(4*n))
		p := NewPair(n, cells)
		x := randomVec(r, n)
		cand := randomVec(r, n)
		want := naiveMultiply(n, cells, x, cand)

		dst := bitvec.New(n)
		for _, s := range []Strategy{RowWise, ColWise, Auto} {
			p.Multiply(Forward, x, cand, dst, s)
			if !dst.Equal(want) {
				return false
			}
		}
		// Backward multiply must equal multiplying the reversed cells.
		rev := make([]Cell, len(cells))
		for i, c := range cells {
			rev[i] = Cell{Row: c.Col, Col: c.Row}
		}
		wantB := naiveMultiply(n, rev, x, cand)
		p.Multiply(Backward, x, cand, dst, Auto)
		return dst.Equal(wantB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompressedAgreesWithCSR(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(80) + 2
		cells := randomCells(r, n, r.Intn(5*n))
		csr := NewPair(n, cells)
		comp := CompressPair(csr)

		if comp.F.NNZ() != csr.F.NNZ() || comp.F.NonEmptyRowCount() != csr.F.NonEmptyRowCount() {
			return false
		}
		x := randomVec(r, n)
		cand := randomVec(r, n)
		d1, d2 := bitvec.New(n), bitvec.New(n)
		for _, dir := range []Direction{Forward, Backward} {
			for _, s := range []Strategy{RowWise, ColWise} {
				csr.Multiply(dir, x, cand, d1, s)
				comp.Multiply(dir, x, cand, d2, s)
				if !d1.Equal(d2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedSizeWords(t *testing.T) {
	// A sparse matrix over a large universe must compress far below the
	// dense footprint n*(n/64) words.
	n := 4096
	cells := []Cell{{0, 4000}, {1000, 1}, {4095, 4095}}
	c := CompressCSR(NewCSR(n, cells))
	if c.SizeWords() > 32 {
		t.Fatalf("SizeWords = %d, want tiny", c.SizeWords())
	}
}

func TestMultiplyReturnsWorkMetric(t *testing.T) {
	p := fig2aBornIn()
	x := bitvec.FromBits(5, 1, 2)
	dst := bitvec.New(5)
	if got := p.Multiply(Forward, x, bitvec.NewFull(5), dst, Auto); got != 2 {
		t.Fatalf("work metric = %d, want 2", got)
	}
}

func TestEmptyMatrix(t *testing.T) {
	p := NewPair(10, nil)
	dst := bitvec.New(10)
	p.Multiply(Forward, bitvec.NewFull(10), bitvec.NewFull(10), dst, Auto)
	if !dst.IsEmpty() {
		t.Fatal("empty matrix produced bits")
	}
	if p.F.NonEmptyRowCount() != 0 {
		t.Fatal("phantom non-empty rows")
	}
}
