package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dualsim/internal/bitvec"
)

// TestPropertyParallelMatchesSerial: every worker count produces exactly
// the serial result for both strategies and directions.
func TestPropertyParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(300) + 2
		cells := randomCells(r, n, r.Intn(6*n))
		p := NewPair(n, cells)
		x := randomVec(r, n)
		cand := randomVec(r, n)
		want := bitvec.New(n)
		got := bitvec.New(n)
		for _, dir := range []Direction{Forward, Backward} {
			for _, s := range []Strategy{RowWise, ColWise, Auto} {
				p.Multiply(dir, x, cand, want, s)
				for _, workers := range []int{0, 1, 2, 3, 8, 64} {
					p.MultiplyParallel(dir, x, cand, got, s, workers)
					if !got.Equal(want) {
						t.Logf("seed %d dir %v strat %v workers %d", seed, dir, s, workers)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWordRanges(t *testing.T) {
	if got := wordRanges(0, 4); got != nil {
		t.Fatalf("wordRanges(0) = %v", got)
	}
	rs := wordRanges(10, 3)
	covered := 0
	prevHi := 0
	for _, r := range rs {
		if r[0] != prevHi {
			t.Fatalf("gap in ranges: %v", rs)
		}
		if r[1] <= r[0] {
			t.Fatalf("empty range: %v", rs)
		}
		covered += r[1] - r[0]
		prevHi = r[1]
	}
	if covered != 10 {
		t.Fatalf("ranges cover %d of 10 words", covered)
	}
	// More workers than words degrades gracefully.
	if rs := wordRanges(2, 100); len(rs) > 2 {
		t.Fatalf("wordRanges(2,100) = %v", rs)
	}
}

func TestSliceInto(t *testing.T) {
	v := bitvec.New(200)
	v.Set(1)
	v.Set(70)
	v.Set(130)
	s := bitvec.New(200)
	sliceInto(s, v, 1, 2) // keep only word 1 (bits 64..127)
	if s.Get(1) || !s.Get(70) || s.Get(130) {
		t.Fatalf("slice = %v", s)
	}
}

// TestMultiplyParallelAllocs: the pooled kernels must not allocate fresh
// n-bit accumulators per call. The bound covers the per-call bookkeeping
// (range table, locals table, one goroutine closure per worker); the
// un-pooled kernels allocated four more vectors per worker (two Vector
// headers plus two word arrays each) and blow well past it.
func TestMultiplyParallelAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	r := rand.New(rand.NewSource(7))
	const n = 1 << 14
	const workers = 4
	p := NewPair(n, randomCells(r, n, 4*n))
	x := randomVec(r, n)
	cand := randomVec(r, n)
	dst := bitvec.New(n)
	for _, s := range []Strategy{RowWise, ColWise} {
		allocs := testing.AllocsPerRun(50, func() {
			p.MultiplyParallel(Forward, x, cand, dst, s, workers)
		})
		if max := float64(3*workers + 4); allocs > max {
			t.Errorf("strategy %v: %.1f allocs/op, want <= %.0f (accumulators not pooled?)", s, allocs, max)
		}
	}
}

func TestParallelOnCompressed(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 256
	cells := randomCells(r, n, 800)
	csr := NewPair(n, cells)
	comp := CompressPair(csr)
	x := randomVec(r, n)
	cand := randomVec(r, n)
	want, got := bitvec.New(n), bitvec.New(n)
	csr.Multiply(Forward, x, cand, want, RowWise)
	comp.MultiplyParallel(Forward, x, cand, got, RowWise, 4)
	if !got.Equal(want) {
		t.Fatal("parallel compressed multiply diverged")
	}
}
