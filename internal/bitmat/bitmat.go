// Package bitmat implements the per-label adjacency bit-matrices of the
// paper's Sect. 3.2 and the bit-matrix multiplication ×b that powers the
// system-of-inequalities solver:
//
//	(x ×b A)(j) = 1  iff  ∃i : x(i) = 1 ∧ A(i,j) = 1
//
// For every label a of the graph database, the forward map F_a and the
// backward map B_a are materialized as matrices; B_a is the transpose of
// F_a. The multiplication is available in two evaluation strategies
// (§3.3):
//
//   - row-wise: union the rows of A indexed by the set bits of x;
//   - column-wise: for each candidate column j, test whether column j of A
//     (= row j of Aᵀ) intersects x.
//
// The solver picks between the two per evaluation based on population
// counts; Pair bundles a matrix with its transpose so both strategies are
// always available.
//
// Matrices are stored sparsely. Two encodings implement the Mat interface:
// CSR (sorted adjacency rows, the default working encoding) and Compressed
// (gap-length encoded rows, the paper's at-rest encoding, cf. §5.1).
package bitmat

import (
	"fmt"
	"sort"

	"dualsim/internal/bitvec"
)

// Mat is a boolean matrix with enough structure to run both ×b strategies.
// Rows and columns range over [0, Dim()); all implementations are immutable
// after construction and safe for concurrent reads.
type Mat interface {
	// Dim returns the number of rows (= columns; matrices are square over
	// the node universe).
	Dim() int
	// NNZ returns the number of set cells, i.e. the number of a-labeled
	// edges.
	NNZ() int
	// UnionRows ORs every row indexed by a set bit of x into dst:
	// dst ∨= ⋃_{i ∈ x} A(i,·). This is the row-wise ×b kernel.
	UnionRows(x, dst *bitvec.Vector)
	// RowIntersects reports whether row i shares a set bit with x. Applied
	// to the transpose it is the column-wise ×b kernel (equation (4)).
	RowIntersects(i int, x *bitvec.Vector) bool
	// NonEmptyRows returns the summary vector with bit i set iff row i has
	// any set cell — f_a (resp. b_a for the transpose) of inequality (13).
	// The returned vector is shared; callers must not modify it.
	NonEmptyRows() *bitvec.Vector
	// NonEmptyRowCount returns NonEmptyRows().Count() without recounting.
	NonEmptyRowCount() int
}

// CSR is a compressed-sparse-row boolean matrix: row i holds the sorted
// column indices of its set cells.
type CSR struct {
	n        int
	ptr      []uint32
	cols     []uint32
	summary  *bitvec.Vector
	nonEmpty int
}

// Cell is one set matrix cell (an edge endpoint pair).
type Cell struct{ Row, Col uint32 }

// NewCSR builds a CSR matrix of dimension n from the given cells.
// Duplicate cells are collapsed.
func NewCSR(n int, cells []Cell) *CSR {
	for _, c := range cells {
		if int(c.Row) >= n || int(c.Col) >= n {
			panic(fmt.Sprintf("bitmat: cell (%d,%d) out of range for dim %d", c.Row, c.Col, n))
		}
	}
	sorted := make([]Cell, len(cells))
	copy(sorted, cells)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	// Dedup in place.
	uniq := sorted[:0]
	for i, c := range sorted {
		if i == 0 || c != sorted[i-1] {
			uniq = append(uniq, c)
		}
	}

	m := &CSR{n: n, ptr: make([]uint32, n+1), cols: make([]uint32, len(uniq))}
	for i, c := range uniq {
		m.ptr[c.Row+1]++
		m.cols[i] = c.Col
	}
	for i := 1; i <= n; i++ {
		m.ptr[i] += m.ptr[i-1]
	}
	m.summary = bitvec.New(n)
	for i := 0; i < n; i++ {
		if m.ptr[i+1] > m.ptr[i] {
			m.summary.Set(i)
			m.nonEmpty++
		}
	}
	return m
}

// Dim implements Mat.
func (m *CSR) Dim() int { return m.n }

// NNZ implements Mat.
func (m *CSR) NNZ() int { return len(m.cols) }

// Row returns the sorted column indices of row i. The slice is shared.
func (m *CSR) Row(i int) []uint32 { return m.cols[m.ptr[i]:m.ptr[i+1]] }

// UnionRows implements Mat.
//
//dualsim:hotpath
func (m *CSR) UnionRows(x, dst *bitvec.Vector) {
	x.ForEach(func(i int) bool {
		for _, j := range m.Row(i) {
			dst.Set(int(j))
		}
		return true
	})
}

// RowIntersects implements Mat.
//
//dualsim:hotpath
func (m *CSR) RowIntersects(i int, x *bitvec.Vector) bool {
	for _, j := range m.Row(i) {
		if x.Get(int(j)) {
			return true
		}
	}
	return false
}

// NonEmptyRows implements Mat.
func (m *CSR) NonEmptyRows() *bitvec.Vector { return m.summary }

// NonEmptyRowCount implements Mat.
func (m *CSR) NonEmptyRowCount() int { return m.nonEmpty }

// Transpose returns the transposed CSR matrix.
func (m *CSR) Transpose() *CSR {
	cells := make([]Cell, 0, len(m.cols))
	for i := 0; i < m.n; i++ {
		for _, j := range m.Row(i) {
			cells = append(cells, Cell{Row: j, Col: uint32(i)})
		}
	}
	return NewCSR(m.n, cells)
}

// Compressed stores each non-empty row as a gap-length encoded bit-vector
// (bitvec.Compressed). It trades multiplication speed for memory — the
// paper's BitMat-style at-rest representation.
type Compressed struct {
	n        int
	rows     map[int]*bitvec.Compressed
	nnz      int
	summary  *bitvec.Vector
	nonEmpty int
}

// CompressCSR converts a CSR matrix into the compressed encoding.
func CompressCSR(m *CSR) *Compressed {
	c := &Compressed{
		n:        m.n,
		rows:     make(map[int]*bitvec.Compressed),
		nnz:      m.NNZ(),
		summary:  m.summary,
		nonEmpty: m.nonEmpty,
	}
	scratch := bitvec.New(m.n)
	for i := 0; i < m.n; i++ {
		row := m.Row(i)
		if len(row) == 0 {
			continue
		}
		scratch.Zero()
		for _, j := range row {
			scratch.Set(int(j))
		}
		c.rows[i] = bitvec.Compress(scratch)
	}
	return c
}

// Dim implements Mat.
func (c *Compressed) Dim() int { return c.n }

// NNZ implements Mat.
func (c *Compressed) NNZ() int { return c.nnz }

// UnionRows implements Mat.
//
//dualsim:hotpath
func (c *Compressed) UnionRows(x, dst *bitvec.Vector) {
	x.ForEach(func(i int) bool {
		if row, ok := c.rows[i]; ok {
			row.OrInto(dst)
		}
		return true
	})
}

// RowIntersects implements Mat.
//
//dualsim:hotpath
func (c *Compressed) RowIntersects(i int, x *bitvec.Vector) bool {
	row, ok := c.rows[i]
	return ok && row.Intersects(x)
}

// NonEmptyRows implements Mat.
func (c *Compressed) NonEmptyRows() *bitvec.Vector { return c.summary }

// NonEmptyRowCount implements Mat.
func (c *Compressed) NonEmptyRowCount() int { return c.nonEmpty }

// SizeWords reports the total encoded size of all rows in 64-bit words,
// for the §5.1-style memory accounting.
func (c *Compressed) SizeWords() int {
	total := 0
	for _, r := range c.rows {
		total += r.SizeWords()
	}
	return total
}

// Pair bundles the forward matrix of a label with its transpose (the
// backward matrix) so that both ×b strategies are available for both edge
// directions.
type Pair struct {
	F Mat // F_a: row v holds the a-successors of v
	B Mat // B_a = F_aᵀ: row w holds the a-predecessors of w
}

// NewPair builds the F/B pair of CSR matrices for one label from the
// label's (subject, object) pairs over an n-node universe.
func NewPair(n int, edges []Cell) Pair {
	f := NewCSR(n, edges)
	return Pair{F: f, B: f.Transpose()}
}

// CompressPair converts both matrices to the compressed encoding.
func CompressPair(p Pair) Pair {
	return Pair{
		F: CompressCSR(p.F.(*CSR)),
		B: CompressCSR(p.B.(*CSR)),
	}
}

// Strategy selects the ×b evaluation strategy.
type Strategy uint8

const (
	// Auto picks row-wise iff the multiplier x has fewer set bits than
	// the candidate set — the paper's dynamic heuristic (§3.3).
	Auto Strategy = iota
	// RowWise always unions rows of A indexed by x.
	RowWise
	// ColWise always tests candidate columns against the transpose.
	ColWise
)

// Multiply computes r = (x ×b A) ∧ cand into dst (which is zeroed first),
// where A is p.F when dir is Forward and p.B when dir is Backward. cand
// restricts the interesting columns (the current χS of the constrained
// variable); restricting is sound because the result is immediately ∧-ed
// with cand by the SOI update rule.
//
// It returns the number of set bits of x ("work left") purely as a metric.
//
//dualsim:hotpath
func (p Pair) Multiply(dir Direction, x, cand, dst *bitvec.Vector, s Strategy) int {
	a, at := p.F, p.B
	if dir == Backward {
		a, at = p.B, p.F
	}
	dst.Zero()
	xCount := x.Count()
	rowwise := false
	switch s {
	case RowWise:
		rowwise = true
	case ColWise:
		rowwise = false
	default:
		rowwise = xCount < cand.Count()
	}
	if rowwise {
		a.UnionRows(x, dst)
		dst.And(cand)
	} else {
		cand.ForEach(func(j int) bool {
			if at.RowIntersects(j, x) {
				dst.Set(j)
			}
			return true
		})
	}
	return xCount
}

// Direction selects which of the two adjacency maps ×b runs against.
type Direction uint8

const (
	// Forward multiplies against F_a.
	Forward Direction = iota
	// Backward multiplies against B_a.
	Backward
)
