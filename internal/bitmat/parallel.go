package bitmat

import (
	"sync"

	"dualsim/internal/bitvec"
)

// This file implements the parallel ×b kernels the paper alludes to
// ("our algorithm is also applicable … to massive parallelization
// techniques of bit-matrix operations", Sect. 1): both multiplication
// strategies partition their driving bit-vector into word ranges, fan the
// ranges out to workers with worker-local accumulators, and OR-merge.
// The results are bit-identical to the serial kernels (property-tested).
//
// The worker-local accumulators and per-range input slices are drawn from
// a shared sync.Pool rather than allocated per call: the solver invokes
// MultiplyParallel once per inequality evaluation, and a full n-bit
// vector per worker per evaluation is exactly the steady-state churn the
// bit-matrix design is meant to amortize.

// vecPool recycles the kernel-local vectors. Vectors of any length live
// in the same pool; Reset re-sizes a pooled vector to the current node
// universe, reusing its backing array whenever it fits.
var vecPool sync.Pool

func getVec(n int) *bitvec.Vector {
	if v, _ := vecPool.Get().(*bitvec.Vector); v != nil {
		v.Reset(n)
		return v
	}
	return bitvec.New(n)
}

func putVec(v *bitvec.Vector) { vecPool.Put(v) }

// MultiplyParallel computes r = (x ×b A) ∧ cand into dst like Multiply,
// distributing the work over the given number of goroutines. workers ≤ 1
// falls back to the serial kernel.
//
//dualsim:hotpath
func (p Pair) MultiplyParallel(dir Direction, x, cand, dst *bitvec.Vector, s Strategy, workers int) int {
	if workers <= 1 {
		return p.Multiply(dir, x, cand, dst, s)
	}
	a, at := p.F, p.B
	if dir == Backward {
		a, at = p.B, p.F
	}
	dst.Zero()
	xCount := x.Count()
	rowwise := false
	switch s {
	case RowWise:
		rowwise = true
	case ColWise:
		rowwise = false
	default:
		rowwise = xCount < cand.Count()
	}
	if rowwise {
		parallelUnionRows(a, x, dst, workers)
		dst.And(cand)
	} else {
		parallelProbeColumns(at, x, cand, dst, workers)
	}
	return xCount
}

// parallelUnionRows distributes the set bits of x (by word ranges) over
// workers, each unioning its rows into a pooled private accumulator.
//
//dualsim:hotpath
func parallelUnionRows(a Mat, x, dst *bitvec.Vector, workers int) {
	words := x.Words()
	ranges := wordRanges(len(words), workers)
	if len(ranges) <= 1 {
		a.UnionRows(x, dst)
		return
	}
	locals := make([]*bitvec.Vector, len(ranges))
	var wg sync.WaitGroup
	for ri, r := range ranges {
		wg.Add(1)
		go func(ri, lo, hi int) {
			defer wg.Done()
			// Pool traffic (and the O(n)-bit zeroing it implies) stays on
			// the worker, off the spawning goroutine's critical path.
			local := getVec(x.Len())
			slice := getVec(x.Len())
			sliceInto(slice, x, lo, hi)
			a.UnionRows(slice, local)
			putVec(slice)
			locals[ri] = local
		}(ri, r[0], r[1])
	}
	wg.Wait()
	for _, local := range locals {
		dst.Or(local)
		putVec(local)
	}
}

// parallelProbeColumns distributes the candidate columns (by word ranges
// of cand) over workers; each probes its columns against the transpose.
//
//dualsim:hotpath
func parallelProbeColumns(at Mat, x, cand, dst *bitvec.Vector, workers int) {
	words := cand.Words()
	ranges := wordRanges(len(words), workers)
	if len(ranges) <= 1 {
		cand.ForEach(func(j int) bool {
			if at.RowIntersects(j, x) {
				dst.Set(j)
			}
			return true
		})
		return
	}
	locals := make([]*bitvec.Vector, len(ranges))
	var wg sync.WaitGroup
	for ri, r := range ranges {
		wg.Add(1)
		go func(ri, lo, hi int) {
			defer wg.Done()
			local := getVec(cand.Len())
			slice := getVec(cand.Len())
			sliceInto(slice, cand, lo, hi)
			slice.ForEach(func(j int) bool {
				if at.RowIntersects(j, x) {
					local.Set(j)
				}
				return true
			})
			putVec(slice)
			locals[ri] = local
		}(ri, r[0], r[1])
	}
	wg.Wait()
	for _, local := range locals {
		dst.Or(local)
		putVec(local)
	}
}

// wordRanges splits [0, n) words into at most `workers` contiguous
// non-empty ranges.
func wordRanges(n, workers int) [][2]int {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var out [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// sliceInto overwrites dst (same length as v, already zeroed by getVec)
// with only the words of v in [lo, hi) — a copy-free-enough way to reuse
// the serial kernels per range with pooled inputs.
//
//dualsim:hotpath
func sliceInto(dst, v *bitvec.Vector, lo, hi int) {
	copy(dst.Words()[lo:hi], v.Words()[lo:hi])
}
