// Package httplog is the structured access log shared by dualsimd and
// dualsimrouter: one JSON line per completed HTTP request, behind the
// daemons' -accesslog flag. The line carries the request's trace ID and
// snapshot epoch when the handler exposed them (the serving layer sets
// X-Dualsim-Trace / X-Dualsim-Epoch response headers), so a slow access
// log line can be joined against the trace and slow-query surfaces.
package httplog

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Record is one access-log line. JSON tags are the log schema.
//
//dualsim:wire
type Record struct {
	Time     string  `json:"time"` // RFC3339Nano, UTC
	Method   string  `json:"method"`
	Route    string  `json:"route"`
	Status   int     `json:"status"`
	Duration float64 `json:"durationMs"`
	Bytes    int64   `json:"bytes"`
	// TraceID is the request's distributed trace ID when it was traced.
	TraceID string `json:"traceID,omitempty"`
	// Epoch is the store epoch the response answered from, if any.
	Epoch uint64 `json:"epoch,omitempty"`
	// Shed marks a request the admission controller rejected (429);
	// Queued one that waited in the admission queue before running.
	Shed   bool `json:"shed,omitempty"`
	Queued bool `json:"queued,omitempty"`
}

// Logger serializes access-log lines onto one writer.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
}

// New builds a Logger writing JSON lines to w (nil w disables: Wrap
// returns h unchanged).
func New(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w}
}

// Wrap instruments h: every completed request writes one Record line.
func (l *Logger) Wrap(h http.Handler) http.Handler {
	if l == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		cw := &captureWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(cw, r)
		rec := Record{
			Time:     start.UTC().Format(time.RFC3339Nano),
			Method:   r.Method,
			Route:    r.URL.Path,
			Status:   cw.status,
			Duration: float64(time.Since(start)) / float64(time.Millisecond),
			Bytes:    cw.bytes,
			TraceID:  cw.Header().Get("X-Dualsim-Trace"),
			Shed:     cw.status == http.StatusTooManyRequests,
			Queued:   cw.Header().Get("X-Dualsim-Queued") == "1",
		}
		if e := cw.Header().Get("X-Dualsim-Epoch"); e != "" {
			if v, err := strconv.ParseUint(e, 10, 64); err == nil {
				rec.Epoch = v
			}
		}
		buf, err := json.Marshal(rec)
		if err != nil {
			return
		}
		l.mu.Lock()
		l.w.Write(append(buf, '\n'))
		l.mu.Unlock()
	})
}

// captureWriter records status and byte count while preserving the
// streaming interfaces the NDJSON handlers rely on.
type captureWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
	bytes  int64
}

func (c *captureWriter) WriteHeader(status int) {
	if !c.wrote {
		c.status = status
		c.wrote = true
	}
	c.ResponseWriter.WriteHeader(status)
}

func (c *captureWriter) Write(p []byte) (int, error) {
	c.wrote = true
	n, err := c.ResponseWriter.Write(p)
	c.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so NDJSON streams keep their
// per-chunk flushing behavior through the wrapper.
func (c *captureWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack forwards connection hijacking (kept for completeness; the
// serving API does not hijack today).
func (c *captureWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if hj, ok := c.ResponseWriter.(http.Hijacker); ok {
		return hj.Hijack()
	}
	return nil, nil, http.ErrNotSupported
}
