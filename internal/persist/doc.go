// Package persist gives the live graph database a durable home: a
// versioned binary snapshot format for whole store epochs plus an
// append-only, CRC-framed, fsync'd write-ahead log of the deltas applied
// since the last snapshot. Boot is "load the latest snapshot, replay the
// WAL tail" — no re-parsing of the original RDF input — mirroring how
// external-memory bisimulation state (Luo et al.) serializes to flat
// sorted runs and how GQ-Fast's compact index layouts load far faster
// than re-ingesting triples.
//
// # On-disk layout
//
// A data directory holds:
//
//	snap-<epoch, 16 hex digits>.dsnap   one file per checkpointed epoch
//	wal.log                             the delta log since that epoch
//	LOCK                                flock'd while a process is attached
//
// The LOCK file carries an exclusive advisory flock for the lifetime of
// a Log (on unix): a second process cannot attach to a live data dir —
// a rolling restart must wait for the old daemon's drain — and because
// the lock dies with the process, a SIGKILL never blocks recovery.
//
// Checkpoints are atomic (written to a temp file, fsync'd, renamed, the
// directory fsync'd) and self-contained; after a successful checkpoint
// the WAL is truncated back to its header and older snapshot files are
// deleted best-effort. Recovery always picks the snapshot with the
// highest epoch and skips WAL records at or below it, so a crash between
// "snapshot renamed" and "WAL truncated" is harmless.
//
// # Snapshot file format (version 1)
//
//	8 bytes   magic "DSIMSNP1"
//	4 bytes   format version, uint32 little-endian
//	8 bytes   store epoch, uint64 little-endian
//	n bytes   store body (storage.EncodeSnapshot: dictionary tables,
//	          then one delta-encoded PSO run per predicate)
//	4 bytes   IEEE CRC-32 of everything after the magic, little-endian
//
// # WAL file format (version 1)
//
//	8 bytes   magic "DSIMWAL1"
//	4 bytes   format version, uint32 little-endian
//
// followed by zero or more records, each framed as
//
//	4 bytes   payload length, uint32 little-endian
//	4 bytes   IEEE CRC-32 of the payload, little-endian
//	n bytes   payload
//
// with the payload
//
//	1 byte    record kind: 1 = apply, 2 = compact
//	8 bytes   post-operation epoch, uint64 little-endian
//	apply only: uvarint add count, the added triples, uvarint delete
//	count, the deleted triples (subject and predicate length-prefixed,
//	object kind byte + length-prefixed value)
//
// Every append is fsync'd before the caller acknowledges the delta, so
// an acknowledged Apply survives a crash. A torn tail — a partial or
// CRC-failing final record from a crash mid-append — is truncated away
// on recovery; everything before it replays.
//
// # Versioning rules
//
// The magic identifies the file family and never changes; the version
// field identifies the layout. Rules for evolving the formats:
//
//   - Readers MUST reject files whose magic does not match exactly and
//     files whose version they do not know — never guess at a layout.
//   - Any change to the byte layout (field added, width changed, varint
//     scheme altered, new WAL record kind with a payload an old reader
//     would misparse) bumps the version.
//   - Writers always write the newest version. Readers should keep
//     decoding at least one version back, so a rolling upgrade can boot
//     from the previous release's checkpoint; after the first new-format
//     checkpoint the old files are gone.
//   - New WAL record kinds are additive only if old readers can safely
//     fail on them (they cannot skip what they cannot interpret — a
//     replayed log must be complete); treat a new kind as a version
//     bump.
//   - Snapshot bodies delegate to storage.EncodeSnapshot; a body change
//     is a snapshot-format version bump here, even though the code lives
//     in the storage package.
package persist
