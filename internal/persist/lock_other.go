//go:build !unix

package persist

import "os"

// lockDir is a no-op on platforms without flock semantics: a second
// live process on one data dir is not prevented there, only detected
// after the fact by the WAL's CRC framing.
func lockDir(dir string) (*os.File, error) { return nil, nil }
