package persist

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

func testStore(t testing.TB) *storage.Store {
	t.Helper()
	ts := []rdf.Triple{
		rdf.T("a", "p", "b"),
		rdf.T("a", "p", "c"),
		rdf.T("b", "q", "c"),
		rdf.TL("c", "name", "see \"sea\"\nside"),
	}
	st, err := storage.FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func sameTriples(t *testing.T, a, b *storage.Store) {
	t.Helper()
	ta, tb := a.Triples(), b.Triples()
	if len(ta) != len(tb) {
		t.Fatalf("triple count: %d vs %d", len(ta), len(tb))
	}
	seen := make(map[string]bool, len(ta))
	for _, tr := range ta {
		seen[tr.String()] = true
	}
	for _, tr := range tb {
		if !seen[tr.String()] {
			t.Fatalf("triple %s missing from roundtrip", tr)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := testStore(t)
	n, err := WriteSnapshot(dir, st, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("snapshot size %d", n)
	}
	if !HasState(dir) {
		t.Fatal("HasState = false after WriteSnapshot")
	}
	got, epoch, size, err := ReadLatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 || size != n {
		t.Fatalf("epoch %d size %d, want 7 %d", epoch, size, n)
	}
	sameTriples(t, st, got)
	// Index integrity of the decoded store: lookups must work.
	s, _ := got.TermID(rdf.NewIRI("a"))
	p, _ := got.PredIDOf("p")
	o, _ := got.TermID(rdf.NewIRI("b"))
	if !got.HasTriple(s, p, o) {
		t.Fatal("decoded store lost (a, p, b)")
	}
	if got.DistinctSubjects(p) != st.DistinctSubjects(p) {
		t.Fatal("distinct-subject statistics drifted")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	st := testStore(t)
	if _, err := WriteSnapshot(dir, st, 1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName(1))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the body: the CRC must catch it.
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadSnapshot(path); err == nil {
		t.Fatal("corrupt snapshot decoded without error")
	}
	// Wrong magic is "not our file", not a checksum problem.
	copy(buf, "NOTASNAP")
	os.WriteFile(path, buf, 0o644)
	if _, _, _, err := ReadSnapshot(path); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestSnapshotRejectsUnknownVersion(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, testStore(t), 1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName(1))
	buf, _ := os.ReadFile(path)
	buf[len(snapMagic)] = 99 // version field, little-endian low byte
	// Recompute nothing: version is inside the CRC, so also fix the sum —
	// the version check must fire even on a "valid" file of the future.
	body := buf[len(snapMagic) : len(buf)-4]
	sum := crc32Checksum(body)
	buf[len(buf)-4] = byte(sum)
	buf[len(buf)-3] = byte(sum >> 8)
	buf[len(buf)-2] = byte(sum >> 16)
	buf[len(buf)-1] = byte(sum >> 24)
	os.WriteFile(path, buf, 0o644)
	_, _, _, err := ReadSnapshot(path)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("version")) {
		t.Fatalf("future version accepted: %v", err)
	}
}

func TestLogAppendRecover(t *testing.T) {
	dir := t.TempDir()
	st := testStore(t)
	lg, err := Init(dir, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	adds := []rdf.Triple{rdf.T("x", "p", "y")}
	dels := []rdf.Triple{rdf.T("a", "p", "b")}
	as, err := lg.AppendApply(1, adds, dels)
	if err != nil {
		t.Fatal(err)
	}
	if as.Bytes <= 0 {
		t.Fatalf("append bytes %d", as.Bytes)
	}
	if _, err := lg.AppendCompact(2); err != nil {
		t.Fatal(err)
	}
	if _, err := lg.AppendApply(3, adds, nil); err != nil {
		t.Fatal(err)
	}
	if got := lg.Stats().WALRecords; got != 3 {
		t.Fatalf("WAL records %d, want 3", got)
	}
	lg.Close()

	lg2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if rec.SnapshotEpoch != 0 || rec.TornTail {
		t.Fatalf("recovered: %+v", rec)
	}
	if len(rec.Tail) != 3 {
		t.Fatalf("tail has %d records, want 3", len(rec.Tail))
	}
	if rec.Tail[0].Kind != RecordApply || rec.Tail[0].Epoch != 1 ||
		len(rec.Tail[0].Adds) != 1 || len(rec.Tail[0].Dels) != 1 ||
		rec.Tail[0].Adds[0].String() != adds[0].String() {
		t.Fatalf("tail[0] = %+v", rec.Tail[0])
	}
	if rec.Tail[1].Kind != RecordCompact || rec.Tail[1].Epoch != 2 {
		t.Fatalf("tail[1] = %+v", rec.Tail[1])
	}
	sameTriples(t, st, rec.Store)
}

func TestLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	lg, err := Init(dir, testStore(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := lg.AppendApply(uint64(i), []rdf.Triple{rdf.T(fmt.Sprintf("s%d", i), "p", "o")}, nil); err != nil {
			t.Fatal(err)
		}
	}
	lg.Close()

	// Tear the tail: chop bytes off the last record, as a crash
	// mid-append would.
	walPath := filepath.Join(dir, walName)
	buf, _ := os.ReadFile(walPath)
	os.WriteFile(walPath, buf[:len(buf)-3], 0o644)

	lg2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.TornTail || len(rec.Tail) != 2 {
		t.Fatalf("torn recovery: torn=%v tail=%d, want true 2", rec.TornTail, len(rec.Tail))
	}
	// The truncated log must accept new appends cleanly at the repaired
	// offset, and a subsequent recovery sees exactly records 1, 2, 3'.
	if _, err := lg2.AppendApply(3, []rdf.Triple{rdf.T("s3b", "p", "o")}, nil); err != nil {
		t.Fatal(err)
	}
	lg2.Close()
	_, rec2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.TornTail || len(rec2.Tail) != 3 || rec2.Tail[2].Adds[0].S.Value != "s3b" {
		t.Fatalf("post-repair recovery: %+v", rec2)
	}
}

func TestCheckpointTruncatesWALAndPrunesSnapshots(t *testing.T) {
	dir := t.TempDir()
	st := testStore(t)
	lg, err := Init(dir, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	for i := 1; i <= 4; i++ {
		if _, err := lg.AppendApply(uint64(i), []rdf.Triple{rdf.T(fmt.Sprintf("s%d", i), "p", "o")}, nil); err != nil {
			t.Fatal(err)
		}
	}
	before := lg.Stats()
	cs, err := lg.Checkpoint(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Epoch != 4 || cs.WALReclaimed != before.WALBytes || cs.SnapshotBytes <= 0 {
		t.Fatalf("checkpoint stats: %+v (before: %+v)", cs, before)
	}
	after := lg.Stats()
	if after.WALBytes != 0 || after.WALRecords != 0 || after.LastCheckpointEpoch != 4 || after.Checkpoints != 2 {
		t.Fatalf("post-checkpoint stats: %+v", after)
	}
	// Epoch-0 snapshot pruned, epoch-4 kept.
	names, epochs, err := snapshotFiles(dir)
	if err != nil || len(names) != 1 || epochs[0] != 4 {
		t.Fatalf("snapshots after checkpoint: %v %v %v", names, epochs, err)
	}
	// Recovery from the checkpoint has an empty tail.
	lg.Close()
	lg2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if rec.SnapshotEpoch != 4 || len(rec.Tail) != 0 {
		t.Fatalf("recovered after checkpoint: epoch %d, %d tail records", rec.SnapshotEpoch, len(rec.Tail))
	}
	// And the truncated WAL accepts appends for the next epochs.
	if _, err := lg2.AppendApply(5, []rdf.Triple{rdf.T("s5", "p", "o")}, nil); err != nil {
		t.Fatal(err)
	}
	tail, err := ReadWALTail(dir, 4)
	if err != nil || len(tail) != 1 || tail[0].Epoch != 5 {
		t.Fatalf("ReadWALTail: %v %v", tail, err)
	}
}

func TestInitRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	if _, err := Init(dir, testStore(t), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Init(dir, testStore(t), 0); err == nil {
		t.Fatal("Init over an existing durable dir succeeded")
	}
}

func TestOpenEmptyDirIsErrNoState(t *testing.T) {
	_, _, err := Open(t.TempDir())
	if err == nil {
		t.Fatal("Open on an empty dir succeeded")
	}
}

func crc32Checksum(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}

func BenchmarkSnapshotEncode(b *testing.B) {
	st := benchStore(b)
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := st.EncodeSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkSnapshotDecode(b *testing.B) {
	st := benchStore(b)
	var buf bytes.Buffer
	if err := st.EncodeSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := storage.DecodeSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppend(b *testing.B) {
	lg, err := Init(b.TempDir(), benchStore(b), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer lg.Close()
	adds := []rdf.Triple{rdf.T("s", "p", "o")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lg.AppendApply(uint64(i+1), adds, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchStore(b *testing.B) *storage.Store {
	b.Helper()
	var ts []rdf.Triple
	for i := 0; i < 2000; i++ {
		ts = append(ts, rdf.T(fmt.Sprintf("s%d", i%500), fmt.Sprintf("p%d", i%7), fmt.Sprintf("o%d", i%300)))
	}
	st, err := storage.FromTriples(ts)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func TestLockRefusesSecondProcessHandle(t *testing.T) {
	dir := t.TempDir()
	lg, err := Init(dir, testStore(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	// While one Log is live, neither Open nor Init may attach to the
	// same dir (a second daemon would corrupt the shared WAL).
	if _, _, err := Open(dir); err == nil {
		t.Fatal("Open attached to a locked data dir")
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	lg2, _, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	lg2.Close()
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	lg, err := Init(dir, testStore(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	// One triple whose object alone exceeds the record bound: the append
	// must refuse before acknowledging (recovery would otherwise treat
	// the acked frame as a torn tail and silently drop it).
	huge := []rdf.Triple{{S: rdf.NewIRI("s"), P: "p", O: rdf.NewLiteral(string(make([]byte, maxRecordBytes+1)))}}
	if _, err := lg.AppendApply(1, huge, nil); err == nil {
		t.Fatal("oversized WAL record accepted")
	}
	// The refused append must not have advanced the log.
	if got := lg.Stats().WALRecords; got != 0 {
		t.Fatalf("WAL records after refused append: %d", got)
	}
	if _, err := lg.AppendApply(1, []rdf.Triple{rdf.T("s", "p", "o")}, nil); err != nil {
		t.Fatalf("normal append after refusal: %v", err)
	}
}
