package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"dualsim/internal/rdf"
)

// RecordKind tags one WAL record.
type RecordKind uint8

const (
	// RecordApply is one delta batch: dels before adds, epoch++.
	RecordApply RecordKind = 1
	// RecordCompact is an on-demand overlay compaction: epoch++ with no
	// triple payload (the rebuild is deterministic from the state the
	// preceding records produce).
	RecordCompact RecordKind = 2
)

// Record is one decoded WAL entry. Epoch is the post-operation epoch:
// replaying the record onto the state of epoch Epoch-1 must yield
// exactly epoch Epoch — the invariant the session layer checks while
// replaying a tail.
type Record struct {
	Kind  RecordKind
	Epoch uint64
	Adds  []rdf.Triple
	Dels  []rdf.Triple
}

const (
	walHeaderLen   = 12 // 8-byte magic + uint32 version
	walFrameLen    = 8  // uint32 payload length + uint32 CRC
	maxRecordBytes = 256 << 20
)

// ErrEpochGap reports that a requested WAL range no longer exists: a
// checkpoint truncated records the consumer has not seen, so replaying
// the surviving tail would skip epochs. The only sound recovery is to
// re-bootstrap from a snapshot at or beyond the gap.
var ErrEpochGap = errors.New("persist: WAL records for the requested epochs were checkpointed away")

// VerifyTail checks that recs form the contiguous epoch sequence
// from+1, from+2, …: the invariant WAL replay and replica catch-up rely
// on. Apply records are only ever logged for non-empty deltas (empty
// deltas are no-ops that do not advance the epoch), so a hole or a
// jump always means records are missing or reordered — applying across
// it would silently diverge from the primary. A skip ahead is reported
// as ErrEpochGap; any other disorder as a plain error.
func VerifyTail(from uint64, recs []Record) error {
	e := from
	for i, r := range recs {
		if r.Epoch == e+1 {
			e = r.Epoch
			continue
		}
		if r.Epoch > e+1 {
			return fmt.Errorf("%w: record %d jumps from epoch %d to %d", ErrEpochGap, i, e, r.Epoch)
		}
		return fmt.Errorf("persist: WAL tail disordered: record %d has epoch %d at replay position %d", i, r.Epoch, e+1)
	}
	return nil
}

// encodeRecord appends the payload of r to buf.
func encodeRecord(buf []byte, r Record) []byte {
	buf = append(buf, byte(r.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, r.Epoch)
	if r.Kind == RecordApply {
		buf = appendTriples(buf, r.Adds)
		buf = appendTriples(buf, r.Dels)
	}
	return buf
}

func appendTriples(buf []byte, ts []rdf.Triple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ts)))
	for _, t := range ts {
		buf = appendString(buf, t.S.Value)
		buf = appendString(buf, t.P)
		buf = append(buf, byte(t.O.Kind))
		buf = appendString(buf, t.O.Value)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decodeRecord parses one payload. The frame CRC already matched, so a
// failure here is a format bug or version skew, not bit rot.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) < 9 {
		return Record{}, fmt.Errorf("persist: WAL payload too short (%d bytes)", len(payload))
	}
	r := Record{Kind: RecordKind(payload[0]), Epoch: binary.LittleEndian.Uint64(payload[1:9])}
	rest := payload[9:]
	switch r.Kind {
	case RecordCompact:
		if len(rest) != 0 {
			return Record{}, fmt.Errorf("persist: compact record carries %d payload bytes", len(rest))
		}
		return r, nil
	case RecordApply:
		var err error
		if r.Adds, rest, err = decodeTriples(rest); err != nil {
			return Record{}, err
		}
		if r.Dels, rest, err = decodeTriples(rest); err != nil {
			return Record{}, err
		}
		if len(rest) != 0 {
			return Record{}, fmt.Errorf("persist: apply record has %d trailing bytes", len(rest))
		}
		return r, nil
	default:
		return Record{}, fmt.Errorf("persist: unknown WAL record kind %d", r.Kind)
	}
}

func decodeTriples(buf []byte) ([]rdf.Triple, []byte, error) {
	n, buf, err := decodeUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	// Every encoded triple occupies at least 4 bytes (three length
	// prefixes plus the object kind), so a count beyond remaining/4 is
	// corrupt — reject it before it sizes a giant allocation.
	if n > uint64(len(buf))/4 {
		return nil, nil, fmt.Errorf("persist: triple count %d exceeds the %d remaining payload bytes", n, len(buf))
	}
	ts := make([]rdf.Triple, 0, n)
	for i := uint64(0); i < n; i++ {
		var t rdf.Triple
		var s string
		if s, buf, err = decodeString(buf); err != nil {
			return nil, nil, err
		}
		t.S = rdf.NewIRI(s)
		if t.P, buf, err = decodeString(buf); err != nil {
			return nil, nil, err
		}
		if len(buf) < 1 {
			return nil, nil, fmt.Errorf("persist: WAL triple truncated at object kind")
		}
		kind := rdf.Kind(buf[0])
		buf = buf[1:]
		var o string
		if o, buf, err = decodeString(buf); err != nil {
			return nil, nil, err
		}
		if kind == rdf.Literal {
			t.O = rdf.NewLiteral(o)
		} else {
			t.O = rdf.NewIRI(o)
		}
		ts = append(ts, t)
	}
	return ts, buf, nil
}

func decodeUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("persist: WAL varint truncated")
	}
	return v, buf[n:], nil
}

func decodeString(buf []byte) (string, []byte, error) {
	n, buf, err := decodeUvarint(buf)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(buf)) < n {
		return "", nil, fmt.Errorf("persist: WAL string truncated (want %d bytes, have %d)", n, len(buf))
	}
	return string(buf[:n]), buf[n:], nil
}

// scanWAL parses the log at path. It returns every intact record plus
// the byte offset of the end of the last intact record — the point a
// recovery truncates to when the tail is torn (a partial frame or a CRC
// mismatch from a crash mid-append). A missing file scans as empty. A
// corrupt header (wrong magic or unknown version) is a hard error: that
// is not a torn append but the wrong file.
func scanWAL(path string) (recs []Record, goodLen int64, torn bool, err error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("persist: %w", err)
	}
	if len(buf) < walHeaderLen {
		// Crash while creating the file: nothing was ever logged.
		return nil, 0, len(buf) > 0, nil
	}
	if string(buf[:len(walMagic)]) != walMagic {
		return nil, 0, false, fmt.Errorf("persist: %s is not a dualsim WAL (bad magic)", path)
	}
	if v := binary.LittleEndian.Uint32(buf[len(walMagic):walHeaderLen]); v != Version {
		return nil, 0, false, fmt.Errorf("persist: WAL %s has unsupported format version %d (reader supports %d)", path, v, Version)
	}
	off := walHeaderLen
	for {
		if off+walFrameLen > len(buf) {
			torn = off != len(buf)
			break
		}
		n := binary.LittleEndian.Uint32(buf[off : off+4])
		sum := binary.LittleEndian.Uint32(buf[off+4 : off+8])
		if n > maxRecordBytes || off+walFrameLen+int(n) > len(buf) {
			torn = true
			break
		}
		payload := buf[off+walFrameLen : off+walFrameLen+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			torn = true
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return nil, 0, false, err
		}
		recs = append(recs, rec)
		off += walFrameLen + int(n)
	}
	return recs, int64(off), torn, nil
}

// ReadWALTail returns the intact records with Epoch > afterEpoch, in log
// order, without touching the file — the read-only half of recovery
// (bench.Persist uses it to time replay in isolation).
func ReadWALTail(dir string, afterEpoch uint64) ([]Record, error) {
	recs, _, _, err := scanWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	tail := recs[:0]
	for _, r := range recs {
		if r.Epoch > afterEpoch {
			tail = append(tail, r)
		}
	}
	return tail, nil
}

// createWAL writes a fresh log containing only the header.
func createWAL(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var hdr [walHeaderLen]byte
	copy(hdr[:], walMagic)
	binary.LittleEndian.PutUint32(hdr[len(walMagic):], Version)
	if _, err := f.Write(hdr[:]); err != nil {
		return nil, errors.Join(fmt.Errorf("persist: WAL header: %w", err), f.Close())
	}
	if err := f.Sync(); err != nil {
		return nil, errors.Join(fmt.Errorf("persist: WAL fsync: %w", err), f.Close())
	}
	return f, nil
}

// openWALForAppend opens (creating if needed) the log and positions the
// write offset at goodLen, truncating a torn tail away first.
func openWALForAppend(path string, goodLen int64) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if os.IsNotExist(err) || goodLen < walHeaderLen {
		if f != nil {
			_ = f.Close() // recreated from scratch below; nothing durable yet
		}
		nf, cerr := createWAL(path)
		return nf, walHeaderLen, cerr
	}
	if err != nil {
		return nil, 0, fmt.Errorf("persist: %w", err)
	}
	if err := f.Truncate(goodLen); err != nil {
		return nil, 0, errors.Join(fmt.Errorf("persist: truncating torn WAL tail: %w", err), f.Close())
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return nil, 0, errors.Join(fmt.Errorf("persist: %w", err), f.Close())
	}
	return f, goodLen, nil
}
