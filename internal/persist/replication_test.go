package persist

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"dualsim/internal/rdf"
)

// TestTailSinceReturnsRecordsBeyondEpoch exercises the primary side of
// replication: records appended after the requested epoch come back in
// replay order, records at or below it are filtered out.
func TestTailSinceReturnsRecordsBeyondEpoch(t *testing.T) {
	dir := t.TempDir()
	lg, err := Init(dir, testStore(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	for i := 1; i <= 4; i++ {
		if _, err := lg.AppendApply(uint64(i), []rdf.Triple{rdf.T(fmt.Sprintf("s%d", i), "p", "o")}, nil); err != nil {
			t.Fatal(err)
		}
	}
	recs, ckpt, err := lg.TailSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt != 0 {
		t.Fatalf("checkpoint epoch = %d, want 0", ckpt)
	}
	if len(recs) != 4 {
		t.Fatalf("TailSince(0) returned %d records, want 4", len(recs))
	}
	if err := VerifyTail(0, recs); err != nil {
		t.Fatalf("full tail should be contiguous: %v", err)
	}
	recs, _, err = lg.TailSince(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Epoch != 3 || recs[1].Epoch != 4 {
		t.Fatalf("TailSince(2) = %v records starting at %d, want [3 4]", len(recs), recs[0].Epoch)
	}
	if err := VerifyTail(2, recs); err != nil {
		t.Fatal(err)
	}
}

// TestTailSinceEpochGapAfterCheckpoint is the epoch-gap scenario of the
// replication protocol: a checkpoint truncates the WAL, so a consumer
// that last saw an epoch below the checkpoint can no longer catch up
// from the log — TailSince must answer ErrEpochGap (and the checkpoint
// epoch to re-bootstrap from), never a silently-holey tail.
func TestTailSinceEpochGapAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st := testStore(t)
	lg, err := Init(dir, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	for i := 1; i <= 3; i++ {
		if _, err := lg.AppendApply(uint64(i), []rdf.Triple{rdf.T(fmt.Sprintf("s%d", i), "p", "o")}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := lg.Checkpoint(st, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := lg.AppendApply(4, []rdf.Triple{rdf.T("s4", "p", "o")}, nil); err != nil {
		t.Fatal(err)
	}

	// A consumer at epoch 1 missed the truncation: epochs 2 and 3 are gone.
	_, ckpt, err := lg.TailSince(1)
	if !errors.Is(err, ErrEpochGap) {
		t.Fatalf("TailSince(1) after checkpoint(3) = %v, want ErrEpochGap", err)
	}
	if ckpt != 3 {
		t.Fatalf("gap reported checkpoint epoch %d, want 3", ckpt)
	}

	// A consumer exactly at the checkpoint epoch needs nothing but the
	// surviving tail.
	recs, _, err := lg.TailSince(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch != 4 {
		t.Fatalf("TailSince(3) = %+v, want the single epoch-4 record", recs)
	}
}

// TestVerifyTailDetectsSkips is the replica-side check: a record whose
// epoch skips ahead of the replay position must be refused as a gap
// (the replica re-bootstraps), and a stale or reordered record as
// disorder — applying either would diverge from the primary.
func TestVerifyTailDetectsSkips(t *testing.T) {
	rec := func(e uint64) Record { return Record{Kind: RecordApply, Epoch: e} }
	if err := VerifyTail(5, []Record{rec(6), rec(7), rec(8)}); err != nil {
		t.Fatalf("contiguous tail rejected: %v", err)
	}
	if err := VerifyTail(5, nil); err != nil {
		t.Fatalf("empty tail rejected: %v", err)
	}
	err := VerifyTail(5, []Record{rec(6), rec(8)})
	if !errors.Is(err, ErrEpochGap) {
		t.Fatalf("skip 6→8 = %v, want ErrEpochGap", err)
	}
	err = VerifyTail(5, []Record{rec(9)})
	if !errors.Is(err, ErrEpochGap) {
		t.Fatalf("jump past replay position = %v, want ErrEpochGap", err)
	}
	if err := VerifyTail(5, []Record{rec(6), rec(6)}); err == nil || errors.Is(err, ErrEpochGap) {
		t.Fatalf("duplicate epoch = %v, want a disorder error (not a gap)", err)
	}
	if err := VerifyTail(5, []Record{rec(4)}); err == nil || errors.Is(err, ErrEpochGap) {
		t.Fatalf("stale record = %v, want a disorder error (not a gap)", err)
	}
}

// TestEncodeSnapshotToMatchesFileFormat pins the bootstrap stream to the
// on-disk container: the bytes EncodeSnapshotTo produces decode through
// DecodeSnapshot (the replica path) into the same store and epoch.
func TestEncodeSnapshotToMatchesFileFormat(t *testing.T) {
	st := testStore(t)
	var buf bytes.Buffer
	if err := EncodeSnapshotTo(&buf, st, 7); err != nil {
		t.Fatal(err)
	}
	got, epoch, err := DecodeSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 {
		t.Fatalf("epoch = %d, want 7", epoch)
	}
	if got.NumTriples() != st.NumTriples() || got.NumNodes() != st.NumNodes() || got.NumPreds() != st.NumPreds() {
		t.Fatalf("decoded shape (%d,%d,%d) != original (%d,%d,%d)",
			got.NumTriples(), got.NumNodes(), got.NumPreds(),
			st.NumTriples(), st.NumNodes(), st.NumPreds())
	}
	// A flipped byte anywhere in the CRC-covered region must be caught.
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xff
	if _, _, err := DecodeSnapshot(raw); err == nil {
		t.Fatal("corrupted container decoded without error")
	}
}
