package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"dualsim/internal/storage"
)

const (
	snapMagic = "DSIMSNP1"
	walMagic  = "DSIMWAL1"

	// Version is the current layout version of both file families (they
	// evolve together; see the package docs for the rules).
	Version = 1

	snapSuffix = ".dsnap"
	walName    = "wal.log"
)

// ErrNoState reports a data directory without a usable snapshot.
var ErrNoState = errors.New("persist: data dir holds no snapshot")

func snapName(epoch uint64) string {
	return fmt.Sprintf("snap-%016x%s", epoch, snapSuffix)
}

// snapEpochOf parses the epoch out of a snapshot file name.
func snapEpochOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), snapSuffix)
	epoch, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return epoch, true
}

// snapshotFiles lists the directory's snapshot files, sorted by epoch.
func snapshotFiles(dir string) ([]string, []uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	type snap struct {
		name  string
		epoch uint64
	}
	var snaps []snap
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if epoch, ok := snapEpochOf(e.Name()); ok {
			snaps = append(snaps, snap{name: e.Name(), epoch: epoch})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].epoch < snaps[j].epoch })
	names := make([]string, len(snaps))
	epochs := make([]uint64, len(snaps))
	for i, s := range snaps {
		names[i] = filepath.Join(dir, s.name)
		epochs[i] = s.epoch
	}
	return names, epochs, nil
}

// HasState reports whether dir holds a durable store (at least one
// snapshot file) — the warm-vs-cold boot decision for dualsimd.
func HasState(dir string) bool {
	names, _, err := snapshotFiles(dir)
	return err == nil && len(names) > 0
}

// EncodeSnapshotTo writes the DSIMSNP1 snapshot container — magic,
// CRC-covered version/epoch header and store body, trailing checksum —
// to an arbitrary writer, computing the CRC on the fly. Checkpoints
// write files through it; the serving layer streams the same container
// over HTTP for replica bootstrap, so a replica's decoder and the
// crash-recovery reader exercise one format.
func EncodeSnapshotTo(w io.Writer, st *storage.Store, epoch uint64) error {
	crc := crc32.NewIEEE()
	cw := io.MultiWriter(w, crc) // everything after the magic is checksummed
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], Version)
	binary.LittleEndian.PutUint64(hdr[4:12], epoch)
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return fmt.Errorf("persist: snapshot header: %w", err)
	}
	if _, err := cw.Write(hdr[:]); err != nil {
		return fmt.Errorf("persist: snapshot header: %w", err)
	}
	if err := st.EncodeSnapshot(cw); err != nil {
		return fmt.Errorf("persist: snapshot body: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("persist: snapshot checksum: %w", err)
	}
	return nil
}

// DecodeSnapshot parses one DSIMSNP1 container from memory, verifying
// magic, version and checksum before decoding the store body. It is
// ReadSnapshot without the file I/O — the entry point for a replica
// decoding a bootstrap snapshot it fetched over the network.
func DecodeSnapshot(buf []byte) (*storage.Store, uint64, error) {
	const minLen = len(snapMagic) + 12 + 4
	if len(buf) < minLen {
		return nil, 0, fmt.Errorf("persist: snapshot truncated (%d bytes)", len(buf))
	}
	if string(buf[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("persist: not a dualsim snapshot (bad magic)")
	}
	body := buf[len(snapMagic) : len(buf)-4]
	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, 0, fmt.Errorf("persist: snapshot checksum mismatch (corrupt or torn write)")
	}
	version := binary.LittleEndian.Uint32(body[0:4])
	if version != Version {
		return nil, 0, fmt.Errorf("persist: snapshot has unsupported format version %d (reader supports %d)", version, Version)
	}
	epoch := binary.LittleEndian.Uint64(body[4:12])
	st, err := storage.DecodeSnapshotBytes(body[12:])
	if err != nil {
		return nil, 0, err
	}
	return st, epoch, nil
}

// WriteSnapshot atomically writes the store as the checkpoint of the
// given epoch and returns the file size. The write goes to a temp file
// that is fsync'd, renamed into place, and made durable with a
// directory fsync — a crash leaves either the old state or the new one,
// never a half-written snapshot under the final name.
func WriteSnapshot(dir string, st *storage.Store, epoch uint64) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("persist: %w", err)
	}
	final := filepath.Join(dir, snapName(epoch))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename

	if err := EncodeSnapshotTo(f, st, epoch); err != nil {
		return 0, errors.Join(err, f.Close())
	}
	if err := f.Sync(); err != nil {
		return 0, errors.Join(fmt.Errorf("persist: snapshot fsync: %w", err), f.Close())
	}
	info, err := f.Stat()
	if err != nil {
		return 0, errors.Join(fmt.Errorf("persist: %w", err), f.Close())
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("persist: snapshot rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// ReadSnapshot loads one snapshot file, verifying magic, version and
// checksum before decoding the store body.
func ReadSnapshot(path string) (*storage.Store, uint64, int64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("persist: %w", err)
	}
	st, epoch, err := DecodeSnapshot(buf)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%w (%s)", err, path)
	}
	return st, epoch, int64(len(buf)), nil
}

// ReadLatestSnapshot loads the snapshot with the highest epoch in dir.
// Returns ErrNoState when the directory holds none.
func ReadLatestSnapshot(dir string) (*storage.Store, uint64, int64, error) {
	names, _, err := snapshotFiles(dir)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("persist: %w", err)
	}
	if len(names) == 0 {
		return nil, 0, 0, fmt.Errorf("%w: %s", ErrNoState, dir)
	}
	return ReadSnapshot(names[len(names)-1])
}

// pruneSnapshots removes snapshot files older than keepEpoch.
// Best-effort: a leftover old snapshot wastes disk, nothing else.
func pruneSnapshots(dir string, keepEpoch uint64) {
	names, epochs, err := snapshotFiles(dir)
	if err != nil {
		return
	}
	for i, name := range names {
		if epochs[i] < keepEpoch {
			os.Remove(name)
		}
	}
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := d.Sync(); err != nil {
		return errors.Join(fmt.Errorf("persist: dir fsync: %w", err), d.Close())
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}
