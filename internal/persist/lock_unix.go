//go:build unix

package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/LOCK, guarding the
// WAL and snapshot files against a second live process — a rolling
// restart whose old daemon is still draining (its final checkpoint
// would truncate the log under the new daemon's appends), or a plain
// double start. The lock dies with the process, so a SIGKILL never
// leaves a stale lock blocking recovery.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return nil, errors.Join(fmt.Errorf("persist: data dir %s is locked by another live process: %w", dir, err), f.Close())
	}
	return f, nil
}
