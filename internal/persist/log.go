package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

// Log is the durable side of one live session: it owns a data
// directory's WAL file handle and checkpoint bookkeeping. The session
// layer serializes writers (its applyMu), but Log carries its own lock
// so misuse degrades to blocking rather than interleaved frames.
type Log struct {
	mu   sync.Mutex
	dir  string
	wal  *os.File
	lock *os.File // flock'd LOCK file; nil on non-unix platforms
	buf  []byte   // scratch frame buffer, reused across appends
	err  error    // poisoned: an append failure could not be rolled back

	walBytes    int64 // current log size beyond the header
	walRecords  int64 // records in the current log
	sinceCkpt   int64 // records appended since the last checkpoint
	checkpoints int64
	ckptEpoch   uint64
	snapBytes   int64
}

// AppendStats reports one WAL append.
type AppendStats struct {
	// Bytes is the framed record size written to the log.
	Bytes int64
	// FsyncLatency is the time the fsync making the record durable took.
	FsyncLatency time.Duration
}

// CheckpointStats reports one checkpoint.
type CheckpointStats struct {
	// Epoch is the checkpointed store epoch.
	Epoch uint64
	// SnapshotBytes is the size of the written snapshot file.
	SnapshotBytes int64
	// WALReclaimed is how many log bytes the truncation released.
	WALReclaimed int64
	// Duration is the end-to-end checkpoint time (snapshot write, fsync,
	// rename, WAL truncation).
	Duration time.Duration
}

// Stats is the log's cumulative bookkeeping, exposed by the session as
// PersistStats and by dualsimd as /metrics gauges.
type Stats struct {
	WALBytes            int64
	WALRecords          int64
	RecordsSinceCkpt    int64
	Checkpoints         int64
	LastCheckpointEpoch uint64
	SnapshotBytes       int64
}

// Recovered is the state a warm start boots from: the latest snapshot
// plus the WAL records newer than it, in replay order.
type Recovered struct {
	Store *storage.Store
	// SnapshotEpoch is the epoch of the loaded snapshot; Tail replays
	// the store forward from there.
	SnapshotEpoch uint64
	Tail          []Record
	// TornTail reports that a partial or corrupt final record — a crash
	// mid-append — was truncated away during recovery.
	TornTail bool
}

// Init creates a fresh durable directory for a store at the given
// epoch: an initial checkpoint plus an empty WAL, under an exclusive
// process lock. It refuses a directory that already holds state — warm
// starts go through Open, and silently overwriting a durable store
// would be data loss.
func Init(dir string, st *storage.Store, epoch uint64) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Log, error) {
		if lock != nil {
			err = errors.Join(err, lock.Close())
		}
		return nil, err
	}
	if HasState(dir) {
		return fail(fmt.Errorf("persist: %s already holds a durable store; recover it with Open (or point at an empty dir)", dir))
	}
	n, err := WriteSnapshot(dir, st, epoch)
	if err != nil {
		return fail(err)
	}
	f, err := createWAL(filepath.Join(dir, walName))
	if err != nil {
		return fail(err)
	}
	return &Log{dir: dir, wal: f, lock: lock, checkpoints: 1, ckptEpoch: epoch, snapBytes: n}, nil
}

// Open recovers a durable directory: it loads the newest snapshot,
// scans the WAL (truncating a torn tail), and returns the log opened
// for append together with the recovered state. Returns ErrNoState for
// a directory Init never touched.
func Open(dir string) (*Log, *Recovered, error) {
	if _, err := os.Stat(dir); err != nil {
		if os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("%w: %s", ErrNoState, dir)
		}
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*Log, *Recovered, error) {
		if lock != nil {
			err = errors.Join(err, lock.Close())
		}
		return nil, nil, err
	}
	st, epoch, snapBytes, err := ReadLatestSnapshot(dir)
	if err != nil {
		return fail(err)
	}
	walPath := filepath.Join(dir, walName)
	recs, goodLen, torn, err := scanWAL(walPath)
	if err != nil {
		return fail(err)
	}
	f, goodLen, err := openWALForAppend(walPath, goodLen)
	if err != nil {
		return fail(err)
	}
	rec := &Recovered{Store: st, SnapshotEpoch: epoch, TornTail: torn}
	for _, r := range recs {
		if r.Epoch > epoch {
			rec.Tail = append(rec.Tail, r)
		}
	}
	l := &Log{
		dir:        dir,
		wal:        f,
		lock:       lock,
		walBytes:   goodLen - walHeaderLen,
		walRecords: int64(len(recs)),
		sinceCkpt:  int64(len(rec.Tail)),
		ckptEpoch:  epoch,
		snapBytes:  snapBytes,
	}
	return l, rec, nil
}

// AppendApply logs one delta batch, durably (fsync'd before return).
// epoch is the post-apply epoch the record replays to.
func (l *Log) AppendApply(epoch uint64, adds, dels []rdf.Triple) (AppendStats, error) {
	return l.append(Record{Kind: RecordApply, Epoch: epoch, Adds: adds, Dels: dels})
}

// AppendCompact logs an on-demand compaction, durably.
func (l *Log) AppendCompact(epoch uint64) (AppendStats, error) {
	return l.append(Record{Kind: RecordCompact, Epoch: epoch})
}

func (l *Log) append(r Record) (AppendStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return AppendStats{}, fmt.Errorf("persist: log is closed")
	}
	if l.err != nil {
		return AppendStats{}, fmt.Errorf("persist: log poisoned by an earlier unrecoverable append failure: %w", l.err)
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	l.buf = encodeRecord(l.buf, r)
	payload := l.buf[walFrameLen:]
	// Enforce the bound recovery enforces: a frame beyond maxRecordBytes
	// would be acknowledged here only to be treated as a torn tail (and
	// truncated, with everything after it) on the next boot — and past
	// 4 GB the length field itself would wrap. Refuse before acking.
	if len(payload) > maxRecordBytes {
		return AppendStats{}, fmt.Errorf("persist: WAL record of %d bytes exceeds the %d-byte bound; split the delta", len(payload), maxRecordBytes)
	}
	binary.LittleEndian.PutUint32(l.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:8], crc32.ChecksumIEEE(payload))
	frame := l.buf
	if cap(l.buf) > 1<<20 {
		// Don't let one bulk delta pin a huge scratch buffer for the
		// session's lifetime; steady-state records are tiny.
		l.buf = nil
	}
	if _, err := l.wal.Write(frame); err != nil {
		l.rollback(err)
		return AppendStats{}, fmt.Errorf("persist: WAL append: %w", err)
	}
	start := time.Now()
	if err := l.wal.Sync(); err != nil {
		l.rollback(err)
		return AppendStats{}, fmt.Errorf("persist: WAL fsync: %w", err)
	}
	st := AppendStats{Bytes: int64(len(frame)), FsyncLatency: time.Since(start)}
	l.walBytes += st.Bytes
	l.walRecords++
	l.sinceCkpt++
	return st, nil
}

// rollback repairs the log after a failed (unacknowledged) append:
// whatever partial frame reached the file is truncated back to the last
// good offset, so a later successful append does not land beyond a torn
// frame (recovery would then discard it as part of the torn tail), and
// a fully-written-but-unsynced frame cannot survive as a duplicate of
// the retry's epoch. If even the truncation fails the log is poisoned —
// every further append is refused rather than risking silent loss.
func (l *Log) rollback(cause error) {
	good := walHeaderLen + l.walBytes
	if err := l.wal.Truncate(good); err != nil {
		l.err = fmt.Errorf("%w (rollback truncate also failed: %v)", cause, err)
		return
	}
	if _, err := l.wal.Seek(good, 0); err != nil {
		l.err = fmt.Errorf("%w (rollback seek also failed: %v)", cause, err)
	}
}

// Checkpoint writes the store as the snapshot of epoch, truncates the
// WAL back to its header (every logged record is at or below epoch —
// the caller checkpoints the published state under its write lock), and
// prunes older snapshot files.
func (l *Log) Checkpoint(st *storage.Store, epoch uint64) (CheckpointStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return CheckpointStats{}, fmt.Errorf("persist: log is closed")
	}
	start := time.Now()
	n, err := WriteSnapshot(l.dir, st, epoch)
	if err != nil {
		return CheckpointStats{}, err
	}
	reclaimed := l.walBytes
	if err := l.wal.Truncate(walHeaderLen); err != nil {
		return CheckpointStats{}, fmt.Errorf("persist: WAL truncation: %w", err)
	}
	if _, err := l.wal.Seek(walHeaderLen, 0); err != nil {
		return CheckpointStats{}, fmt.Errorf("persist: %w", err)
	}
	if err := l.wal.Sync(); err != nil {
		return CheckpointStats{}, fmt.Errorf("persist: WAL fsync: %w", err)
	}
	l.walBytes = 0
	l.walRecords = 0
	l.sinceCkpt = 0
	l.checkpoints++
	l.ckptEpoch = epoch
	l.snapBytes = n
	pruneSnapshots(l.dir, epoch)
	return CheckpointStats{
		Epoch:         epoch,
		SnapshotBytes: n,
		WALReclaimed:  reclaimed,
		Duration:      time.Since(start),
	}, nil
}

// TailSince returns the WAL records with epochs beyond afterEpoch, in
// replay order, together with the last checkpoint epoch — the primary
// side of WAL-streaming replication. The read runs under the log mutex,
// so it can never observe a half-appended frame or race a checkpoint's
// truncation (unlike ReadWALTail, which reads the file cold).
//
// When afterEpoch predates the last checkpoint, the records bridging
// the gap were truncated away and the caller cannot catch up from the
// log alone: TailSince returns ErrEpochGap (plus the checkpoint epoch),
// and a replica must re-bootstrap from a snapshot instead.
func (l *Log) TailSince(afterEpoch uint64) ([]Record, uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return nil, 0, fmt.Errorf("persist: log is closed")
	}
	if afterEpoch < l.ckptEpoch {
		return nil, l.ckptEpoch, fmt.Errorf("%w: epochs (%d, %d] were checkpointed away; bootstrap from the snapshot of epoch %d",
			ErrEpochGap, afterEpoch, l.ckptEpoch, l.ckptEpoch)
	}
	recs, _, _, err := scanWAL(filepath.Join(l.dir, walName))
	if err != nil {
		return nil, l.ckptEpoch, err
	}
	var out []Record
	for _, r := range recs {
		if r.Epoch > afterEpoch {
			out = append(out, r)
		}
	}
	return out, l.ckptEpoch, nil
}

// RecordsSinceCheckpoint returns how many WAL records the next
// checkpoint would make redundant — the WithCheckpointEvery trigger.
func (l *Log) RecordsSinceCheckpoint() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceCkpt
}

// Stats returns the cumulative log statistics.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		WALBytes:            l.walBytes,
		WALRecords:          l.walRecords,
		RecordsSinceCkpt:    l.sinceCkpt,
		Checkpoints:         l.checkpoints,
		LastCheckpointEpoch: l.ckptEpoch,
		SnapshotBytes:       l.snapBytes,
	}
}

// Dir returns the data directory.
func (l *Log) Dir() string { return l.dir }

// Close releases the WAL file handle and the data-dir lock. Appends
// were already fsync'd, so Close loses nothing; it is safe to call
// twice.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return nil
	}
	err := l.wal.Close()
	l.wal = nil
	if l.lock != nil {
		err = errors.Join(err, l.lock.Close()) // closing drops the flock
		l.lock = nil
	}
	return err
}
