package baseline

import (
	"dualsim/internal/core"
	"dualsim/internal/storage"
)

// combo identifies one tracked support relation: for Dir == fwd it watches
// |F_a(y) ∩ sim(V)| for all data nodes y, for Dir == bwd it watches
// |B_a(y) ∩ sim(V)|. The remove set of a combo collects the y whose count
// reached zero — the "definite nodes that cannot simulate the respective
// adjacent nodes" of the paper's HHK discussion (§3.3).
type combo struct {
	v    int
	pred storage.PredID
	fwd  bool
}

type hhkState struct {
	st  *storage.Store
	p   *core.Pattern
	res *Result

	combos    []combo
	comboIdx  map[combo]int
	cnt       [][]int32
	remove    []map[storage.NodeID]bool
	consumers [][]int // combo -> pattern variables to prune with its remove set
	byVar     [][]int // pattern variable -> combos tracking its sim set

	queue  []int
	queued []bool
}

// HHK computes the largest dual simulation with remove-set propagation in
// the style of Henzinger, Henzinger and Kopke, adapted to labeled graphs
// and duality: one remove set per (pattern variable, label, direction)
// triple, maintained through support counters.
func HHK(st *storage.Store, p *core.Pattern) *Result {
	h := &hhkState{
		st:       st,
		p:        p,
		res:      &Result{Sim: initialCandidates(st, p)},
		comboIdx: make(map[combo]int),
	}
	h.byVar = make([][]int, p.NumVars())

	// Register tracked combos and their consumers from the pattern edges.
	for _, e := range p.Edges() {
		pid, ok := st.PredIDOf(e.Pred)
		if !ok {
			// initialCandidates already emptied both endpoints.
			continue
		}
		// sim(From) members need an a-successor in sim(To):
		// combo (To, a, fwd) consumed by From.
		ci := h.combo(combo{v: e.To, pred: pid, fwd: true})
		h.consumers[ci] = append(h.consumers[ci], e.From)
		// sim(To) members need an a-predecessor in sim(From):
		// combo (From, a, bwd) consumed by To.
		ci = h.combo(combo{v: e.From, pred: pid, fwd: false})
		h.consumers[ci] = append(h.consumers[ci], e.To)
	}

	h.initCounters()
	h.run()
	return h.res
}

func (h *hhkState) combo(c combo) int {
	if i, ok := h.comboIdx[c]; ok {
		return i
	}
	i := len(h.combos)
	h.comboIdx[c] = i
	h.combos = append(h.combos, c)
	h.cnt = append(h.cnt, make([]int32, h.st.NumNodes()))
	h.remove = append(h.remove, make(map[storage.NodeID]bool))
	h.consumers = append(h.consumers, nil)
	h.queued = append(h.queued, false)
	h.byVar[c.v] = append(h.byVar[c.v], i)
	return i
}

// initCounters fills the support counters from the initial candidate sets
// and seeds the remove sets: y enters remove iff it has the right incident
// edge at all but no support in sim(v).
func (h *hhkState) initCounters() {
	for ci, c := range h.combos {
		cnt := h.cnt[ci]
		for x := range h.res.Sim[c.v] {
			// y has x in F_a(y) iff y ∈ B_a(x), and dually.
			var ys []storage.NodeID
			if c.fwd {
				ys = h.st.Subjects(c.pred, x)
			} else {
				ys = h.st.Objects(c.pred, x)
			}
			for _, y := range ys {
				cnt[y]++
			}
		}
		// Seed: every node with the right incident edge but zero support.
		h.st.ForEachPair(c.pred, func(s, o storage.NodeID) bool {
			y := s
			if !c.fwd {
				y = o
			}
			if cnt[y] == 0 {
				h.remove[ci][y] = true
			}
			return true
		})
		if len(h.remove[ci]) > 0 {
			h.enqueue(ci)
		}
	}
}

func (h *hhkState) enqueue(ci int) {
	if !h.queued[ci] {
		h.queued[ci] = true
		h.queue = append(h.queue, ci)
	}
}

func (h *hhkState) run() {
	for len(h.queue) > 0 {
		ci := h.queue[0]
		h.queue = h.queue[1:]
		h.queued[ci] = false
		h.res.Iterations++

		rm := h.remove[ci]
		h.remove[ci] = make(map[storage.NodeID]bool)
		for _, u := range h.consumers[ci] {
			for y := range rm {
				h.res.Checks++
				if h.res.Sim[u][y] {
					delete(h.res.Sim[u], y)
					h.onRemoved(u, y)
				}
			}
		}
	}
}

// onRemoved updates every combo tracking sim(u) after y left it.
func (h *hhkState) onRemoved(u int, y storage.NodeID) {
	for _, ci := range h.byVar[u] {
		c := h.combos[ci]
		var zs []storage.NodeID
		if c.fwd {
			// cnt[z] = |F_a(z) ∩ sim(u)| drops for the a-predecessors of y.
			zs = h.st.Subjects(c.pred, y)
		} else {
			zs = h.st.Objects(c.pred, y)
		}
		for _, z := range zs {
			h.cnt[ci][z]--
			if h.cnt[ci][z] == 0 {
				h.remove[ci][z] = true
				h.enqueue(ci)
			}
		}
	}
}
