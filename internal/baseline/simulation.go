package baseline

import (
	"dualsim/internal/core"
	"dualsim/internal/storage"
)

// Simulation computes the largest plain (forward-only) simulation: only
// condition (i) of Definition 2 is enforced — every candidate must mimic
// the pattern node's outgoing edges, incoming edges are ignored. This is
// the classical graph simulation used, e.g., by PANDA's pruning (related
// work, Sect. 6); the paper argues dual simulation prunes strictly more.
// The containment χ_dual(v) ⊆ χ_sim(v) is property-tested.
func Simulation(st *storage.Store, p *core.Pattern) *Result {
	res := &Result{Sim: forwardCandidates(st, p)}
	for {
		res.Iterations++
		changed := false
		for _, e := range p.Edges() {
			pid, ok := st.PredIDOf(e.Pred)
			if !ok {
				if len(res.Sim[e.From]) > 0 {
					res.Sim[e.From] = map[storage.NodeID]bool{}
					changed = true
				}
				continue
			}
			for v := range res.Sim[e.From] {
				res.Checks++
				if !anySupported(st.Objects(pid, v), res.Sim[e.To]) {
					delete(res.Sim[e.From], v)
					changed = true
				}
			}
		}
		if !changed {
			return res
		}
	}
}

// forwardCandidates seeds sim(v) with every node supporting v's outgoing
// edge labels only (plus constants); nodes lacking required incoming
// edges stay in — simulation does not look backwards.
func forwardCandidates(st *storage.Store, p *core.Pattern) []map[storage.NodeID]bool {
	sim := make([]map[storage.NodeID]bool, p.NumVars())
	for i, pv := range p.Vars() {
		if pv.Const == nil {
			continue
		}
		sim[i] = map[storage.NodeID]bool{}
		if id, ok := st.TermID(*pv.Const); ok {
			sim[i][id] = true
		}
	}
	constrain := func(v int, allowed map[storage.NodeID]bool) {
		if sim[v] == nil {
			cp := make(map[storage.NodeID]bool, len(allowed))
			for k := range allowed {
				cp[k] = true
			}
			sim[v] = cp
			return
		}
		for k := range sim[v] {
			if !allowed[k] {
				delete(sim[v], k)
			}
		}
	}
	for _, e := range p.Edges() {
		pid, ok := st.PredIDOf(e.Pred)
		if !ok {
			sim[e.From] = map[storage.NodeID]bool{}
			continue
		}
		subs := make(map[storage.NodeID]bool)
		st.ForEachPair(pid, func(s, o storage.NodeID) bool {
			subs[s] = true
			return true
		})
		constrain(e.From, subs)
	}
	for i := range sim {
		if sim[i] == nil {
			sim[i] = make(map[storage.NodeID]bool, st.NumNodes())
			for n := 0; n < st.NumNodes(); n++ {
				sim[i][storage.NodeID(n)] = true
			}
		}
	}
	return sim
}
