package baseline

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dualsim/internal/core"
	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

func mustStore(t *testing.T, ts []rdf.Triple) *storage.Store {
	t.Helper()
	st, err := storage.FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// fig4 is the counterexample database of the paper's Fig. 4(b).
func fig4(t *testing.T) *storage.Store {
	return mustStore(t, []rdf.Triple{
		rdf.T("p1", "knows", "p2"),
		rdf.T("p2", "knows", "p1"),
		rdf.T("p2", "knows", "p3"),
		rdf.T("p3", "knows", "p2"),
		rdf.T("p3", "knows", "p4"),
		rdf.T("p4", "knows", "p1"),
	})
}

func twoCycle() *core.Pattern {
	p := core.NewPattern()
	p.Edge("v", "knows", "w")
	p.Edge("w", "knows", "v")
	return p
}

func TestMaFig4(t *testing.T) {
	st := fig4(t)
	res := MaEtAl(st, twoCycle())
	if len(res.Sim[0]) != 4 || len(res.Sim[1]) != 4 {
		t.Fatalf("sim sizes = %d/%d, want 4/4", len(res.Sim[0]), len(res.Sim[1]))
	}
	if res.Iterations < 1 {
		t.Fatal("no iterations counted")
	}
	if err := twoCycle().VerifyDualSimulation(st, res.Sim); err != nil {
		t.Fatal(err)
	}
}

func TestHHKFig4(t *testing.T) {
	st := fig4(t)
	res := HHK(st, twoCycle())
	if len(res.Sim[0]) != 4 || len(res.Sim[1]) != 4 {
		t.Fatalf("sim sizes = %d/%d, want 4/4", len(res.Sim[0]), len(res.Sim[1]))
	}
	if err := twoCycle().VerifyDualSimulation(st, res.Sim); err != nil {
		t.Fatal(err)
	}
}

func TestMaUnknownPredicate(t *testing.T) {
	st := fig4(t)
	p := core.NewPattern()
	p.Edge("a", "nope", "b")
	res := MaEtAl(st, p)
	if len(res.Sim[0]) != 0 || len(res.Sim[1]) != 0 {
		t.Fatal("unknown predicate must empty the relation")
	}
}

func TestHHKUnknownPredicate(t *testing.T) {
	st := fig4(t)
	p := core.NewPattern()
	p.Edge("a", "nope", "b")
	res := HHK(st, p)
	if len(res.Sim[0]) != 0 || len(res.Sim[1]) != 0 {
		t.Fatal("unknown predicate must empty the relation")
	}
}

func TestConstantsRespected(t *testing.T) {
	st := mustStore(t, []rdf.Triple{
		rdf.T("a", "p", "b"),
		rdf.T("c", "p", "d"),
	})
	pat := core.NewPattern()
	pat.Edge("x", "p", "y")
	pat.Bind("x", rdf.NewIRI("a"))
	for algo, run := range algorithms() {
		res := run(st, pat)
		xi, _ := pat.VarIndex("x")
		yi, _ := pat.VarIndex("y")
		aID, _ := st.TermID(rdf.NewIRI("a"))
		bID, _ := st.TermID(rdf.NewIRI("b"))
		if len(res.Sim[xi]) != 1 || !res.Sim[xi][aID] {
			t.Fatalf("%s: x = %v, want {a}", algo, res.Sim[xi])
		}
		if len(res.Sim[yi]) != 1 || !res.Sim[yi][bID] {
			t.Fatalf("%s: y = %v, want {b}", algo, res.Sim[yi])
		}
	}
}

func algorithms() map[string]func(*storage.Store, *core.Pattern) *Result {
	return map[string]func(*storage.Store, *core.Pattern) *Result{
		"ma":  MaEtAl,
		"hhk": HHK,
	}
}

// randomStore draws a random labeled data graph.
func randomStore(r *rand.Rand, maxNodes, maxPreds, maxEdges int) *storage.Store {
	n := r.Intn(maxNodes) + 2
	p := r.Intn(maxPreds) + 1
	e := r.Intn(maxEdges) + 1
	st := storage.New()
	for i := 0; i < e; i++ {
		s := fmt.Sprintf("n%d", r.Intn(n))
		o := fmt.Sprintf("n%d", r.Intn(n))
		pr := fmt.Sprintf("p%d", r.Intn(p))
		if err := st.Add(rdf.T(s, pr, o)); err != nil {
			panic(err)
		}
	}
	st.Build()
	return st
}

// randomPattern draws a small random pattern over the same label space.
func randomPattern(r *rand.Rand, maxVars, maxPreds, maxEdges int) *core.Pattern {
	p := core.NewPattern()
	nv := r.Intn(maxVars) + 1
	ne := r.Intn(maxEdges) + 1
	for i := 0; i < ne; i++ {
		from := fmt.Sprintf("v%d", r.Intn(nv))
		to := fmt.Sprintf("v%d", r.Intn(nv))
		pred := fmt.Sprintf("p%d", r.Intn(maxPreds))
		p.Edge(from, pred, to)
	}
	return p
}

// TestPropertyAllAlgorithmsAgree is the central equivalence invariant: the
// SOI solver, Ma et al. and HHK compute the same largest dual simulation.
func TestPropertyAllAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomStore(r, 25, 3, 60)
		pat := randomPattern(r, 4, 3, 5)

		soiRel := core.DualSimulation(st, pat, core.Config{})
		soiSets := soiRel.Sets()
		ma := MaEtAl(st, pat)
		hhk := HHK(st, pat)

		for i := range soiSets {
			if !sameSet(soiSets[i], ma.Sim[i]) || !sameSet(soiSets[i], hhk.Sim[i]) {
				t.Logf("seed %d var %d: soi=%v ma=%v hhk=%v",
					seed, i, soiSets[i], ma.Sim[i], hhk.Sim[i])
				return false
			}
		}
		// And the agreed relation is a dual simulation per Definition 2.
		return pat.VerifyDualSimulation(st, soiSets) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMaximality: adding any disqualified pair to the computed
// relation breaks Definition 2 (restricted to patterns without isolated
// variables to keep the check meaningful).
func TestPropertyMaximality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomStore(r, 15, 2, 40)
		pat := randomPattern(r, 3, 2, 4)
		res := MaEtAl(st, pat)

		// Pick a handful of rejected pairs and check each breaks Def. 2.
		for trial := 0; trial < 5; trial++ {
			v := r.Intn(pat.NumVars())
			n := storage.NodeID(r.Intn(st.NumNodes()))
			if res.Sim[v][n] {
				continue
			}
			extended := make([]map[storage.NodeID]bool, len(res.Sim))
			for i, s := range res.Sim {
				extended[i] = make(map[storage.NodeID]bool, len(s)+1)
				for k := range s {
					extended[i][k] = true
				}
			}
			extended[v][n] = true
			if pat.VerifyDualSimulation(st, extended) == nil {
				// The extension is still a dual simulation — the computed
				// relation was not maximal.
				t.Logf("seed %d: var %d node %d extends the relation", seed, v, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyHomomorphicMatchesContained is Theorem 1: every homomorphic
// match is inside the largest dual simulation. Matches are enumerated by
// brute force.
func TestPropertyHomomorphicMatchesContained(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomStore(r, 12, 2, 30)
		pat := randomPattern(r, 3, 2, 3)
		rel := core.DualSimulation(st, pat, core.Config{})
		sets := rel.Sets()

		ok := true
		forEachMatch(st, pat, func(assign []storage.NodeID) {
			for v, n := range assign {
				if !sets[v][n] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// forEachMatch enumerates all homomorphic matches of pat by brute force.
func forEachMatch(st *storage.Store, pat *core.Pattern, fn func([]storage.NodeID)) {
	assign := make([]storage.NodeID, pat.NumVars())
	var rec func(v int)
	rec = func(v int) {
		if v == pat.NumVars() {
			fn(append([]storage.NodeID(nil), assign...))
			return
		}
		for n := 0; n < st.NumNodes(); n++ {
			assign[v] = storage.NodeID(n)
			if pv := pat.Vars()[v]; pv.Const != nil {
				id, ok := st.TermID(*pv.Const)
				if !ok || id != assign[v] {
					continue
				}
			}
			ok := true
			for _, e := range pat.Edges() {
				if e.From > v || e.To > v {
					continue
				}
				pid, has := st.PredIDOf(e.Pred)
				if !has || !st.HasTriple(assign[e.From], pid, assign[e.To]) {
					ok = false
					break
				}
			}
			if ok {
				rec(v + 1)
			}
		}
	}
	rec(0)
}

func sameSet(a, b map[storage.NodeID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
