package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dualsim/internal/core"
	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

// TestSimulationIgnoresBackwardEdges: plain simulation keeps nodes that
// dual simulation rejects for lacking incoming support.
func TestSimulationIgnoresBackwardEdges(t *testing.T) {
	// b -p-> c and x -p-> c: pattern ?v -p-> ?w.
	// For ?w, simulation keeps any node with *some* p-predecessor — but
	// also nodes with none? No: simulation constrains only ?v (outgoing).
	// ?w keeps ALL nodes, since it has no outgoing pattern edge.
	st, err := storage.FromTriples([]rdf.Triple{
		rdf.T("b", "p", "c"),
		rdf.T("x", "q", "y"),
	})
	if err != nil {
		t.Fatal(err)
	}
	pat := core.NewPattern()
	pat.Edge("v", "p", "w")

	sim := Simulation(st, pat)
	dual := MaEtAl(st, pat)

	vi, _ := pat.VarIndex("v")
	wi, _ := pat.VarIndex("w")
	if len(sim.Sim[vi]) != 1 {
		t.Fatalf("sim(v) = %v, want {b}", sim.Sim[vi])
	}
	// Simulation leaves w unconstrained (no outgoing edge from w).
	if len(sim.Sim[wi]) != st.NumNodes() {
		t.Fatalf("sim(w) = %d nodes, want all %d", len(sim.Sim[wi]), st.NumNodes())
	}
	// Dual simulation pins w to {c} via the backward condition.
	if len(dual.Sim[wi]) != 1 {
		t.Fatalf("dual(w) = %v, want {c}", dual.Sim[wi])
	}
}

// TestPropertyDualRefinesSimulation: the largest dual simulation is
// contained in the largest plain simulation, variable by variable.
func TestPropertyDualRefinesSimulation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomStore(r, 20, 3, 50)
		pat := randomPattern(r, 4, 3, 5)
		dual := MaEtAl(st, pat)
		sim := Simulation(st, pat)
		for i := range dual.Sim {
			for n := range dual.Sim[i] {
				if !sim.Sim[i][n] {
					t.Logf("seed %d: dual kept %d for var %d, simulation did not", seed, n, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySimulationSatisfiesForwardCondition: the result satisfies
// Definition 2(i).
func TestPropertySimulationSatisfiesForwardCondition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomStore(r, 15, 2, 40)
		pat := randomPattern(r, 3, 2, 4)
		res := Simulation(st, pat)
		for _, e := range pat.Edges() {
			pid, ok := st.PredIDOf(e.Pred)
			if !ok {
				continue
			}
			for v := range res.Sim[e.From] {
				if !anySupported(st.Objects(pid, v), res.Sim[e.To]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulationUnknownPredicate(t *testing.T) {
	st := fig4(t)
	pat := core.NewPattern()
	pat.Edge("a", "nope", "b")
	res := Simulation(st, pat)
	ai, _ := pat.VarIndex("a")
	if len(res.Sim[ai]) != 0 {
		t.Fatal("unknown predicate must empty the subject side")
	}
}

func TestSimulationConstants(t *testing.T) {
	st := fig4(t)
	pat := core.NewPattern()
	pat.Edge("x", "knows", "y")
	pat.Bind("x", rdf.NewIRI("p1"))
	res := Simulation(st, pat)
	xi, _ := pat.VarIndex("x")
	p1, _ := st.TermID(rdf.NewIRI("p1"))
	if len(res.Sim[xi]) != 1 || !res.Sim[xi][p1] {
		t.Fatalf("sim(x) = %v", res.Sim[xi])
	}
}
