// Package baseline implements the two comparator algorithms the paper
// measures SPARQLSIM against (Sect. 3.3 and Table 2):
//
//   - MaEtAl: the dual simulation algorithm of Ma et al. [20], adjusted to
//     edge-labeled graphs. It follows the "single passive strategy": in
//     every pass it re-checks Definition 2 for every pattern edge and every
//     candidate node, until a whole pass disqualifies nothing.
//   - HHK: an adaptation of the Henzinger/Henzinger/Kopke algorithm [17]
//     with per-(variable, label, direction) remove sets maintained through
//     support counters, adjusted to labeled graphs and duality.
//
// Both compute the same largest dual simulation as the SOI solver in
// internal/core; the equivalence is property-tested. The point of keeping
// them faithful rather than fast is the paper's specific data complexity
// hypothesis: naive implementations of HHK and Ma et al. show no
// significant difference in the labeled graph query setting, while the SOI
// formulation beats both.
package baseline

import (
	"dualsim/internal/core"
	"dualsim/internal/storage"
)

// Result is the computed largest dual simulation plus effort metrics.
type Result struct {
	// Sim[i] is the set of data nodes simulating pattern variable i.
	Sim []map[storage.NodeID]bool
	// Iterations counts full passes over all pattern edges (Ma et al.)
	// or remove-set pops (HHK).
	Iterations int
	// Checks counts individual support tests.
	Checks int
}

// MaEtAl computes the largest dual simulation with the passive
// re-checking strategy of Ma et al., adjusted to labeled graphs.
func MaEtAl(st *storage.Store, p *core.Pattern) *Result {
	res := &Result{Sim: initialCandidates(st, p)}

	for {
		res.Iterations++
		changed := false
		for _, e := range p.Edges() {
			pid, ok := st.PredIDOf(e.Pred)
			if !ok {
				// No a-labeled edge exists: both endpoints lose all
				// candidates.
				if len(res.Sim[e.From]) > 0 || len(res.Sim[e.To]) > 0 {
					res.Sim[e.From] = map[storage.NodeID]bool{}
					res.Sim[e.To] = map[storage.NodeID]bool{}
					changed = true
				}
				continue
			}
			// Def. 2(i): every v ∈ sim(From) needs an a-successor in
			// sim(To).
			for v := range res.Sim[e.From] {
				res.Checks++
				if !anySupported(st.Objects(pid, v), res.Sim[e.To]) {
					delete(res.Sim[e.From], v)
					changed = true
				}
			}
			// Def. 2(ii): every w ∈ sim(To) needs an a-predecessor in
			// sim(From).
			for w := range res.Sim[e.To] {
				res.Checks++
				if !anySupported(st.Subjects(pid, w), res.Sim[e.From]) {
					delete(res.Sim[e.To], w)
					changed = true
				}
			}
		}
		if !changed {
			return res
		}
	}
}

func anySupported(ns []storage.NodeID, sim map[storage.NodeID]bool) bool {
	for _, n := range ns {
		if sim[n] {
			return true
		}
	}
	return false
}

// initialCandidates seeds sim(v) for every pattern variable with the nodes
// that support v's incident edge labels (and with the constant singleton
// for bound variables) — the label-match initialization of Ma et al.,
// transposed to the edge-labeled setting.
func initialCandidates(st *storage.Store, p *core.Pattern) []map[storage.NodeID]bool {
	sim := make([]map[storage.NodeID]bool, p.NumVars())

	// Constants first.
	for i, pv := range p.Vars() {
		if pv.Const == nil {
			continue
		}
		sim[i] = map[storage.NodeID]bool{}
		if id, ok := st.TermID(*pv.Const); ok {
			sim[i][id] = true
		}
	}

	constrain := func(v int, allowed map[storage.NodeID]bool) {
		if sim[v] == nil {
			cp := make(map[storage.NodeID]bool, len(allowed))
			for k := range allowed {
				cp[k] = true
			}
			sim[v] = cp
			return
		}
		for k := range sim[v] {
			if !allowed[k] {
				delete(sim[v], k)
			}
		}
	}

	for _, e := range p.Edges() {
		pid, ok := st.PredIDOf(e.Pred)
		if !ok {
			sim[e.From] = map[storage.NodeID]bool{}
			sim[e.To] = map[storage.NodeID]bool{}
			continue
		}
		subs := make(map[storage.NodeID]bool)
		objs := make(map[storage.NodeID]bool)
		st.ForEachPair(pid, func(s, o storage.NodeID) bool {
			subs[s] = true
			objs[o] = true
			return true
		})
		constrain(e.From, subs)
		constrain(e.To, objs)
	}

	// Isolated variables (no incident edge, no constant) are simulated by
	// every node.
	for i := range sim {
		if sim[i] == nil {
			sim[i] = make(map[storage.NodeID]bool, st.NumNodes())
			for n := 0; n < st.NumNodes(); n++ {
				sim[i][storage.NodeID(n)] = true
			}
		}
	}
	return sim
}
