package queries

import (
	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

// Fig1aTriples returns the example graph database of the paper's
// Fig. 1(a). Edge directions are reconstructed from the running text:
// (X1) matches only B. De Palma and G. Hamilton as ?director, while (X2)
// additionally matches D. Koepp and T. Young — so neither of the latter
// has an outgoing worked_with edge.
func Fig1aTriples() []rdf.Triple {
	return []rdf.Triple{
		rdf.T("B._De_Palma", "directed", "Mission:_Impossible"),
		rdf.T("B._De_Palma", "awarded", "Oscar"),
		rdf.T("B._De_Palma", "born_in", "Newark"),
		rdf.T("B._De_Palma", "worked_with", "D._Koepp"),
		rdf.T("Mission:_Impossible", "genre", "Action"),
		rdf.T("Goldfinger", "genre", "Action"),
		rdf.T("G._Hamilton", "directed", "Goldfinger"),
		rdf.T("G._Hamilton", "born_in", "Paris"),
		rdf.T("G._Hamilton", "worked_with", "H._Saltzman"),
		rdf.T("Thunderball", "sequel_of", "Goldfinger"),
		rdf.T("Thunderball", "awarded", "Oscar"),
		rdf.T("H._Saltzman", "born_in", "Saint_John"),
		rdf.T("From_Russia_with_Love", "prequel_of", "Goldfinger"),
		rdf.T("T._Young", "directed", "From_Russia_with_Love"),
		rdf.T("T._Young", "awarded", "BAFTA_Awards"),
		rdf.T("P.R._Hunt", "worked_with", "D._Koepp"),
		rdf.T("D._Koepp", "directed", "Mortdecai"),
		rdf.TL("Newark", "population", "277140"),
		rdf.TL("Paris", "population", "2220445"),
		rdf.TL("Saint_John", "population", "70063"),
	}
}

// Fig1aStore loads Fig. 1(a) into a store.
func Fig1aStore() (*storage.Store, error) {
	return storage.FromTriples(Fig1aTriples())
}

// QueryX1 is the paper's introductory query (X1).
const QueryX1 = `SELECT * WHERE {
  ?director <directed> ?movie .
  ?director <worked_with> ?coworker . }`

// QueryX2 is (X2): (X1) with the coworker part optional.
const QueryX2 = `SELECT * WHERE {
  ?director <directed> ?movie .
  OPTIONAL { ?director <worked_with> ?coworker . } }`

// QueryX3 is the non-well-designed example (X3) of Sect. 4.4.
const QueryX3 = `SELECT * WHERE {
  { { ?v1 <a> ?v2 . } OPTIONAL { ?v3 <b> ?v2 . } }
  { ?v3 <c> ?v4 . } }`
