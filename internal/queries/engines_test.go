package queries

import (
	"context"
	"testing"

	"dualsim/internal/engine"
)

// TestEnginesAgreeOnWorkload evaluates every benchmark query with both
// production engines and requires identical result sets — the workload-
// level version of the random-query property test in internal/engine.
func TestEnginesAgreeOnWorkload(t *testing.T) {
	stores := testStores(t)
	hash := engine.NewHashJoin()
	index := engine.NewIndexNL()
	for _, s := range All() {
		st := stores[s.Dataset]
		q := s.Query()
		a, err := hash.Evaluate(context.Background(), st, q)
		if err != nil {
			t.Fatalf("%s hash: %v", s.ID, err)
		}
		b, err := index.Evaluate(context.Background(), st, q)
		if err != nil {
			t.Fatalf("%s index: %v", s.ID, err)
		}
		if !a.Equal(b) {
			t.Fatalf("%s: engines disagree (%d vs %d rows)", s.ID, a.Len(), b.Len())
		}
	}
}
