package queries

import (
	"context"
	"testing"

	"dualsim/internal/core"
	"dualsim/internal/datagen"
	"dualsim/internal/engine"
	"dualsim/internal/prune"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

func TestAllSpecsParse(t *testing.T) {
	specs := All()
	if len(specs) != 6+6+20 {
		t.Fatalf("specs = %d, want 32", len(specs))
	}
	seen := make(map[string]bool)
	for _, s := range specs {
		if seen[s.ID] {
			t.Fatalf("duplicate id %s", s.ID)
		}
		seen[s.ID] = true
		q, err := sparql.Parse(s.Text)
		if err != nil {
			t.Fatalf("%s does not parse: %v", s.ID, err)
		}
		if sparql.HasUnion(q.Expr) {
			t.Fatalf("%s uses UNION; benchmark sets are union-free", s.ID)
		}
		if s.Dataset != "lubm" && s.Dataset != "kg" {
			t.Fatalf("%s has unknown dataset %q", s.ID, s.Dataset)
		}
	}
}

func TestByID(t *testing.T) {
	s, err := ByID("L1")
	if err != nil || s.ID != "L1" {
		t.Fatalf("ByID(L1) = %v, %v", s, err)
	}
	if _, err := ByID("Z9"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestDocumentedShapes(t *testing.T) {
	for _, s := range All() {
		q := s.Query()
		if got := hasOptional(q.Expr); got != s.HasOptional {
			t.Fatalf("%s: HasOptional = %v, spec says %v", s.ID, got, s.HasOptional)
		}
		corePat, err := ToPattern(MandatoryCore(q.Expr))
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if got := corePat.IsCyclic(); got != s.Cyclic {
			t.Fatalf("%s: Cyclic = %v, spec says %v", s.ID, got, s.Cyclic)
		}
	}
}

func hasOptional(e sparql.Expr) bool {
	switch x := e.(type) {
	case sparql.Optional:
		return true
	case sparql.And:
		return hasOptional(x.L) || hasOptional(x.R)
	case sparql.Union:
		return hasOptional(x.L) || hasOptional(x.R)
	}
	return false
}

// TestL0L1MatchFig6 pins the mandatory cores of L0 and L1 to the shapes
// of the paper's Fig. 6.
func TestL0L1MatchFig6(t *testing.T) {
	l0, _ := ByID("L0")
	core0, err := ToPattern(MandatoryCore(l0.Query().Expr))
	if err != nil {
		t.Fatal(err)
	}
	if core0.NumVars() != 3 || core0.NumEdges() != 3 || !core0.IsCyclic() {
		t.Fatalf("L0 core: %d vars, %d edges, cyclic=%v; want the Fig. 6(a) triangle",
			core0.NumVars(), core0.NumEdges(), core0.IsCyclic())
	}

	l1, _ := ByID("L1")
	core1, err := ToPattern(MandatoryCore(l1.Query().Expr))
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 6(b): 5 variables + 1 constant (ub:Publication), 7 edges.
	if core1.NumVars() != 6 || core1.NumEdges() != 7 || !core1.IsCyclic() {
		t.Fatalf("L1 core: %d vars, %d edges, cyclic=%v; want Fig. 6(b)",
			core1.NumVars(), core1.NumEdges(), core1.IsCyclic())
	}
	hasConst := false
	for _, v := range core1.Vars() {
		if v.Const != nil && v.Const.Value == "ub:Publication" {
			hasConst = true
		}
	}
	if !hasConst {
		t.Fatal("L1 core misses the ub:Publication constant")
	}
}

func TestStripOptionalAndMandatoryCore(t *testing.T) {
	q := sparql.MustParse(QueryX2)
	stripped := StripOptional(q.Expr)
	if hasOptional(stripped) {
		t.Fatal("StripOptional left an OPTIONAL")
	}
	if len(sparql.Triples(stripped)) != 2 {
		t.Fatal("StripOptional lost triples")
	}
	coreE := MandatoryCore(q.Expr)
	if len(sparql.Triples(coreE)) != 1 {
		t.Fatal("MandatoryCore should keep only the directed triple")
	}
}

func TestFig1aFixture(t *testing.T) {
	st, err := Fig1aStore()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumTriples() != 20 {
		t.Fatalf("Fig1a = %d triples, want 20", st.NumTriples())
	}
	res, err := engine.NewHashJoin().Evaluate(context.Background(), st, sparql.MustParse(QueryX1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("X1 on Fig1a = %d results, want 2", res.Len())
	}
	res2, err := engine.NewHashJoin().Evaluate(context.Background(), st, sparql.MustParse(QueryX2))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 4 {
		t.Fatalf("X2 on Fig1a = %d results, want 4", res2.Len())
	}
}

// testStores builds small instances of both datasets once.
func testStores(t *testing.T) map[string]*storage.Store {
	t.Helper()
	lubm, err := datagen.LUBMStore(datagen.DefaultLUBM(3, 42))
	if err != nil {
		t.Fatal(err)
	}
	kg, err := datagen.KGStore(datagen.DefaultKG(1, 42))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*storage.Store{"lubm": lubm, "kg": kg}
}

// TestSpecsAgainstGenerators evaluates every benchmark query on its
// dataset and asserts the documented result-shape properties: declared-
// empty queries are empty, all others are non-empty, and pruning is both
// sound and effective.
func TestSpecsAgainstGenerators(t *testing.T) {
	stores := testStores(t)
	eng := engine.NewHashJoin()
	for _, s := range All() {
		st := stores[s.Dataset]
		q := s.Query()
		res, err := eng.Evaluate(context.Background(), st, q)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if s.ExpectEmpty && res.Len() != 0 {
			t.Fatalf("%s: expected empty, got %d rows", s.ID, res.Len())
		}
		if !s.ExpectEmpty && res.Len() == 0 {
			t.Fatalf("%s: expected non-empty result on the generated dataset", s.ID)
		}

		p, rel, err := prune.PruneQuery(st, q, core.Config{})
		if err != nil {
			t.Fatalf("%s: prune: %v", s.ID, err)
		}
		if s.ExpectEmpty {
			if !rel.Empty() && p.Kept != 0 {
				// Dual simulation may retain candidates even for empty
				// results (Fig. 4); but for these specific queries the
				// label structure rules that out.
				t.Fatalf("%s: empty query kept %d triples", s.ID, p.Kept)
			}
			continue
		}
		// Evaluating on the pruned store must preserve all results.
		pres, err := eng.Evaluate(context.Background(), p.Store(), q)
		if err != nil {
			t.Fatalf("%s: pruned eval: %v", s.ID, err)
		}
		if sparql.IsWellDesigned(q.Expr) && !pres.Equal(res) {
			t.Fatalf("%s: pruned result differs (%d vs %d rows)", s.ID, pres.Len(), res.Len())
		}
	}
}

func TestToPatternRejectsVariablePredicate(t *testing.T) {
	if _, err := ToPattern(sparql.MustParse(`SELECT * WHERE { ?s ?p ?o }`).Expr); err == nil {
		t.Fatal("variable predicate accepted")
	}
}

func TestToPatternSharesConstants(t *testing.T) {
	pat, err := ToPattern(sparql.MustParse(
		`SELECT * WHERE { ?a <p> <k> . ?b <q> <k> }`).Expr)
	if err != nil {
		t.Fatal(err)
	}
	// a, b and one shared constant node for <k>.
	if pat.NumVars() != 3 {
		t.Fatalf("vars = %d, want 3 (constant shared)", pat.NumVars())
	}
}

func TestRewritersOnUnion(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE {
	  { ?a <p> ?b OPTIONAL { ?b <q> ?c } } UNION { ?a <r> ?b } }`)
	stripped := StripOptional(q.Expr)
	if hasOptional(stripped) {
		t.Fatal("OPTIONAL survived under UNION")
	}
	coreE := MandatoryCore(q.Expr)
	if got := len(sparql.Triples(coreE)); got != 2 {
		t.Fatalf("core triples = %d, want 2", got)
	}
	if !sparql.HasUnion(coreE) {
		t.Fatal("UNION lost by MandatoryCore")
	}
}

// TestTable2Preparation: stripping OPTIONAL from every B query yields a
// plain BGP convertible for the baseline algorithms.
func TestTable2Preparation(t *testing.T) {
	for _, s := range BenchmarkQueries() {
		stripped := StripOptional(s.Query().Expr)
		pat, err := ToPattern(stripped)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if pat.NumEdges() != len(sparql.Triples(s.Query().Expr)) {
			t.Fatalf("%s: edge count mismatch", s.ID)
		}
	}
}
