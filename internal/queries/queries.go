// Package queries ships the evaluation workload: analogues of the three
// query sets of the paper's Sect. 5 — L0–L5 (LUBM, optional-heavy, after
// Atre [4]), D0–D5 (DBpedia, after Atre [4]) and B0–B19 (the DBpedia
// SPARQL benchmark of Morsey et al. [23]) — plus the paper's running
// examples (X1), (X2), (X3).
//
// The exact query texts of the original sets are not printed in the
// paper; each analogue reproduces the *documented shape* of its original
// (cyclic/acyclic mandatory core, OPTIONAL usage, constants, empty/huge
// result sets, selectivity class) against the datasets of
// internal/datagen. The mandatory cores of L0 and L1 encode Fig. 6(a) and
// Fig. 6(b) verbatim. DESIGN.md records this substitution.
package queries

import (
	"fmt"

	"dualsim/internal/core"
	"dualsim/internal/sparql"
)

// Spec is one benchmark query with its documented shape properties.
type Spec struct {
	ID      string // paper identifier: L0…L5, D0…D5, B0…B19
	Dataset string // "lubm" or "kg"
	Text    string // concrete syntax (parse with sparql.Parse)

	// Shape notes from the paper, asserted by tests.
	Cyclic      bool // the mandatory core contains a cycle
	HasOptional bool
	ExpectEmpty bool // the paper reports an empty result set
}

// Query parses the spec's text (panics on error — specs are fixtures).
func (s Spec) Query() *sparql.Query { return sparql.MustParse(s.Text) }

// LUBMQueries returns L0–L5.
func LUBMQueries() []Spec {
	return []Spec{
		{
			ID: "L0", Dataset: "lubm", Cyclic: true, HasOptional: true,
			// Fig. 6(a): the advisor/teacher/assistant triangle.
			Text: `SELECT * WHERE {
			  ?student <ub:advisor> ?professor .
			  ?professor <ub:teacherOf> ?course .
			  ?student <ub:teachingAssistantOf> ?course .
			  OPTIONAL { ?student <ub:memberOf> ?department . } }`,
		},
		{
			ID: "L1", Dataset: "lubm", Cyclic: true, HasOptional: true,
			// Fig. 6(b): publications with a student and a professor
			// author, the student a member of the professor's department,
			// which belongs to the university the student's degree is
			// from.
			Text: `SELECT * WHERE {
			  ?publication <rdf:type> <ub:Publication> .
			  ?publication <ub:publicationAuthor> ?student .
			  ?publication <ub:publicationAuthor> ?professor .
			  ?student <ub:degreeFrom> ?university .
			  ?professor <ub:worksFor> ?department .
			  ?student <ub:memberOf> ?department .
			  ?department <ub:subOrganizationOf> ?university .
			  OPTIONAL { ?professor <ub:emailAddress> ?email . } }`,
		},
		{
			ID: "L2", Dataset: "lubm", Cyclic: true, HasOptional: true,
			// Low-selectivity department triangle: huge result set.
			Text: `SELECT * WHERE {
			  ?student <ub:memberOf> ?department .
			  ?professor <ub:worksFor> ?department .
			  ?student <ub:advisor> ?professor .
			  OPTIONAL { ?student <ub:undergraduateDegreeFrom> ?university . } }`,
		},
		{
			ID: "L3", Dataset: "lubm", HasOptional: true,
			// Constant-anchored, highly selective.
			Text: `SELECT * WHERE {
			  ?head <ub:headOf> <dept0.univ0> .
			  ?head <ub:doctoralDegreeFrom> ?university .
			  OPTIONAL { ?head <ub:emailAddress> ?email . } }`,
		},
		{
			ID: "L4", Dataset: "lubm", HasOptional: true,
			Text: `SELECT * WHERE {
			  ?student <ub:memberOf> <dept1.univ0> .
			  ?student <ub:advisor> ?professor .
			  OPTIONAL { ?student <ub:takesCourse> ?course . } }`,
		},
		{
			ID: "L5", Dataset: "lubm", HasOptional: true,
			Text: `SELECT * WHERE {
			  ?professor <ub:worksFor> <dept0.univ1> .
			  ?professor <ub:teacherOf> ?course .
			  OPTIONAL { ?ta <ub:teachingAssistantOf> ?course . } }`,
		},
	}
}

// DBpediaQueries returns D0–D5 (the optional-heavy Atre set).
func DBpediaQueries() []Spec {
	return []Spec{
		{
			ID: "D0", Dataset: "kg", HasOptional: true,
			Text: `SELECT * WHERE {
			  ?film <dbo:director> ?director .
			  OPTIONAL { ?director <dbo:birthPlace> ?place . } }`,
		},
		{
			ID: "D1", Dataset: "kg", HasOptional: true, ExpectEmpty: true,
			// Directors are people; people have no capitals.
			Text: `SELECT * WHERE {
			  ?film <dbo:director> ?director .
			  ?director <dbo:capital> ?capital .
			  OPTIONAL { ?film <dbo:genre> ?genre . } }`,
		},
		{
			ID: "D2", Dataset: "kg", HasOptional: true,
			Text: `SELECT * WHERE {
			  ?film <dbo:award> <award0> .
			  ?film <dbo:director> ?director .
			  OPTIONAL { ?director <dbo:award> ?personalAward . } }`,
		},
		{
			ID: "D3", Dataset: "kg", HasOptional: true,
			Text: `SELECT * WHERE {
			  ?person <dbo:employer> ?org .
			  OPTIONAL { ?person <dbo:spouse> ?spouse . } }`,
		},
		{
			ID: "D4", Dataset: "kg", HasOptional: true,
			// Low-selectivity star with a huge result set.
			Text: `SELECT * WHERE {
			  ?film <dbo:starring> ?actor .
			  ?film <dbo:genre> ?genre .
			  OPTIONAL { ?actor <dbo:birthPlace> ?place . } }`,
		},
		{
			ID: "D5", Dataset: "kg", HasOptional: true,
			Text: `SELECT * WHERE {
			  ?person <dbo:birthPlace> ?place .
			  ?place <dbo:locatedIn> ?region .
			  OPTIONAL { ?person <dbo:award> ?award . } }`,
		},
	}
}

// BenchmarkQueries returns B0–B19 (the Morsey et al. benchmark
// analogues; Table 2 strips their OPTIONAL parts via StripOptional).
func BenchmarkQueries() []Spec {
	return []Spec{
		{ID: "B0", Dataset: "kg", HasOptional: true,
			Text: `SELECT * WHERE {
			  ?film <dbo:award> <award11> .
			  ?film <dbo:director> ?director .
			  OPTIONAL { ?director <dbo:birthPlace> ?place . } }`},
		{ID: "B1", Dataset: "kg",
			Text: `SELECT * WHERE {
			  ?person <dbo:birthPlace> ?place .
			  ?place <dbo:locatedIn> ?region . }`},
		{ID: "B2", Dataset: "kg",
			Text: `SELECT * WHERE {
			  ?film <dbo:starring> ?actor .
			  ?actor <dbo:birthPlace> ?place .
			  ?film <dbo:genre> ?genre . }`},
		{ID: "B3", Dataset: "kg", HasOptional: true,
			Text: `SELECT * WHERE {
			  ?film <dbo:director> ?director .
			  ?film <dbo:starring> ?actor .
			  OPTIONAL { ?director <dbo:birthPlace> ?place . } }`},
		{ID: "B4", Dataset: "kg", ExpectEmpty: true,
			// Capitals have no genre.
			Text: `SELECT * WHERE {
			  ?x <dbo:capital> ?capital .
			  ?capital <dbo:genre> ?genre . }`},
		{ID: "B5", Dataset: "kg", ExpectEmpty: true,
			// Awards direct nothing.
			Text: `SELECT * WHERE {
			  ?person <dbo:award> ?award .
			  ?award <dbo:director> ?x . }`},
		{ID: "B6", Dataset: "kg",
			Text: `SELECT * WHERE {
			  ?person <dbo:employer> ?org .
			  ?person <dbo:birthPlace> ?place .
			  ?org <dbo:locatedIn> ?region . }`},
		{ID: "B7", Dataset: "kg", HasOptional: true,
			Text: `SELECT * WHERE {
			  ?film <dbo:writer> ?writer .
			  ?writer <dbo:award> ?award .
			  OPTIONAL { ?writer <dbo:spouse> ?spouse . } }`},
		{ID: "B8", Dataset: "kg",
			Text: `SELECT * WHERE {
			  ?person <dbo:influencedBy> ?influence .
			  ?influence <dbo:award> ?award . }`},
		{ID: "B9", Dataset: "kg",
			Text: `SELECT * WHERE {
			  ?person <dbo:spouse> ?spouse .
			  ?spouse <dbo:employer> ?org . }`},
		{ID: "B10", Dataset: "kg",
			Text: `SELECT * WHERE {
			  ?film <dbo:producer> ?producer .
			  ?producer <dbo:almaMater> ?org . }`},
		{ID: "B11", Dataset: "kg",
			Text: `SELECT * WHERE {
			  ?person <dbo:almaMater> ?org .
			  ?org <dbo:foundedBy> ?founder . }`},
		{ID: "B12", Dataset: "kg",
			Text: `SELECT * WHERE {
			  ?person <dbo:employer> ?org .
			  ?org <dbo:foundedBy> ?founder . }`},
		{ID: "B13", Dataset: "kg", HasOptional: true,
			Text: `SELECT * WHERE {
			  ?film <dbo:starring> ?actor .
			  ?actor <dbo:spouse> ?spouse .
			  OPTIONAL { ?spouse <dbo:employer> ?org . } }`},
		{ID: "B14", Dataset: "kg",
			// The set's largest result: co-starring pairs with genre.
			Text: `SELECT * WHERE {
			  ?film <dbo:starring> ?a .
			  ?film <dbo:starring> ?b .
			  ?film <dbo:genre> ?genre . }`},
		{ID: "B15", Dataset: "kg", ExpectEmpty: true,
			// Genres win no awards.
			Text: `SELECT * WHERE {
			  ?film <dbo:genre> ?genre .
			  ?genre <dbo:award> ?award . }`},
		{ID: "B16", Dataset: "kg",
			// Constant-anchored, tiny result.
			Text: `SELECT * WHERE {
			  <place0> <dbo:capital> ?capital .
			  ?capital <dbo:locatedIn> ?region . }`},
		{ID: "B17", Dataset: "kg", HasOptional: true,
			Text: `SELECT * WHERE {
			  ?film <dbo:starring> ?actor .
			  ?actor <dbo:birthPlace> ?place .
			  ?place <dbo:locatedIn> ?region .
			  OPTIONAL { ?actor <dbo:award> ?award . } }`},
		{ID: "B18", Dataset: "kg",
			Text: `SELECT * WHERE {
			  ?person <dbo:award> ?award .
			  ?person <dbo:birthPlace> ?place . }`},
		{ID: "B19", Dataset: "kg", HasOptional: true,
			Text: `SELECT * WHERE {
			  ?film <dbo:genre> <genre0> .
			  ?film <dbo:starring> ?actor .
			  OPTIONAL { ?actor <dbo:spouse> ?spouse . } }`},
	}
}

// All returns every benchmark spec, L then D then B.
func All() []Spec {
	out := append(LUBMQueries(), DBpediaQueries()...)
	return append(out, BenchmarkQueries()...)
}

// ByID returns the spec with the given identifier.
func ByID(id string) (Spec, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("queries: unknown query id %q", id)
}

// StripOptional rewrites OPTIONAL patterns to mandatory conjunctions —
// "we have removed the SPARQL keyword OPTIONAL" (Sect. 5.2, Table 2
// preparation): `Q1 OPTIONAL {Q2}` becomes `Q1 . {Q2}`.
func StripOptional(e sparql.Expr) sparql.Expr {
	switch x := e.(type) {
	case sparql.BGP:
		return x
	case sparql.And:
		return sparql.And{L: StripOptional(x.L), R: StripOptional(x.R)}
	case sparql.Optional:
		return sparql.And{L: StripOptional(x.L), R: StripOptional(x.R)}
	case sparql.Union:
		return sparql.Union{L: StripOptional(x.L), R: StripOptional(x.R)}
	}
	return e
}

// MandatoryCore drops optional parts entirely, exposing the cores shown
// in Fig. 6.
func MandatoryCore(e sparql.Expr) sparql.Expr {
	switch x := e.(type) {
	case sparql.BGP:
		return x
	case sparql.And:
		return sparql.And{L: MandatoryCore(x.L), R: MandatoryCore(x.R)}
	case sparql.Optional:
		return MandatoryCore(x.L)
	case sparql.Union:
		return sparql.Union{L: MandatoryCore(x.L), R: MandatoryCore(x.R)}
	}
	return e
}

// ToPattern converts a UNION- and OPTIONAL-free expression into a pattern
// graph for the baseline algorithms (Ma et al. and HHK take plain BGPs).
func ToPattern(e sparql.Expr) (*core.Pattern, error) {
	p := core.NewPattern()
	constNames := make(map[string]string)
	for _, tp := range sparql.Triples(e) {
		if tp.P.IsVar() {
			return nil, fmt.Errorf("queries: variable predicate in pattern")
		}
		name := func(t sparql.Term) string {
			if t.IsVar() {
				return t.Var
			}
			key := t.Const.Key()
			if n, ok := constNames[key]; ok {
				return n
			}
			n := fmt.Sprintf("const%d", len(constNames))
			constNames[key] = n
			p.Bind(n, *t.Const)
			return n
		}
		from := name(tp.S)
		to := name(tp.O)
		p.Edge(from, tp.P.Const.Value, to)
	}
	return p, nil
}
