package plan

import (
	"fmt"
	"strings"
	"testing"

	"dualsim/internal/rdf"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// skewedStore builds a store where predicate frequencies differ by two
// orders of magnitude: p0 has 200 triples over many subjects, p1 has 4.
func skewedStore(t *testing.T) *storage.Store {
	t.Helper()
	var ts []rdf.Triple
	for i := 0; i < 200; i++ {
		ts = append(ts, rdf.T(fmt.Sprintf("s%d", i), "p0", fmt.Sprintf("o%d", i%20)))
	}
	for i := 0; i < 4; i++ {
		ts = append(ts, rdf.T(fmt.Sprintf("s%d", i), "p1", "hub"))
	}
	st, err := storage.FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustParse(t *testing.T, src string) *sparql.Query {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func hasDecision(p *Plan, substr string) bool {
	for _, d := range p.Decisions {
		if strings.Contains(d, substr) {
			return true
		}
	}
	return false
}

// leftmostScan walks a left-deep join chain to its first scan.
func leftmostScan(t *testing.T, n Node) Scan {
	t.Helper()
	for {
		switch x := n.(type) {
		case Join:
			n = x.L
		case Filter:
			n = x.Input
		case Scan:
			return x
		default:
			t.Fatalf("unexpected node %T on the left spine", n)
		}
	}
}

func TestReorderSparsestFirst(t *testing.T) {
	st := skewedStore(t)
	// Written dense-first: the optimizer must start with the p1 scan.
	q := mustParse(t, `SELECT * WHERE { ?s <p0> ?o . ?s <p1> ?h . }`)
	p := Build(st, q, Options{})
	if !hasDecision(p, "reordered") {
		t.Fatalf("no reorder decision in %v", p.Decisions)
	}
	sc := leftmostScan(t, p.Root.(Join))
	if sc.TP.P.Const == nil || sc.TP.P.Const.Value != "p1" {
		t.Fatalf("first scan is %s, want the sparse p1 pattern", sc.TP)
	}
	// Ablation switch: declaration order is preserved.
	p = Build(st, q, Options{DisableReorder: true})
	if hasDecision(p, "reordered") {
		t.Fatalf("DisableReorder still reordered: %v", p.Decisions)
	}
	sc = leftmostScan(t, p.Root.(Join))
	if sc.TP.P.Const.Value != "p0" {
		t.Fatalf("first scan is %s, want the written-order p0 pattern", sc.TP)
	}
}

func TestScanEstimatesReflectCardinality(t *testing.T) {
	st := skewedStore(t)
	q := mustParse(t, `SELECT * WHERE { ?s <p0> ?o . ?s <p1> ?h . }`)
	p := Build(st, q, Options{DisableReorder: true})
	j := p.Root.(Join)
	dense, sparse := j.L.(Scan), j.R.(Scan)
	if dense.Est <= sparse.Est {
		t.Fatalf("estimates: p0 %.0f, p1 %.0f — dense pattern should cost more", dense.Est, sparse.Est)
	}
}

func TestFilterPushdownBelowJoin(t *testing.T) {
	st := skewedStore(t)
	q := mustParse(t, `SELECT * WHERE { ?s <p0> ?o . ?s <p1> ?h . FILTER(?h = <hub>) }`)
	p := Build(st, q, Options{})
	if !hasDecision(p, "filter: pushed") {
		t.Fatalf("no pushdown decision in %v", p.Decisions)
	}
	// The condition names only ?h, bound by the p1 scan: it must sit
	// below the join, not above it.
	j, ok := p.Root.(Join)
	if !ok {
		t.Fatalf("root = %T, want Join with the filter pushed below", p.Root)
	}
	foundBelow := false
	for _, side := range []Node{j.L, j.R} {
		if f, ok := side.(Filter); ok {
			if _, ok := f.Input.(Scan); ok {
				foundBelow = true
			}
		}
	}
	if !foundBelow {
		t.Fatalf("filter not pushed onto a scan side: %#v", p.Root)
	}
	// Ablation: with pushdown disabled the filter stays at the root.
	p = Build(st, q, Options{DisablePushdown: true})
	if _, ok := p.Root.(Filter); !ok {
		t.Fatalf("DisablePushdown root = %T, want Filter", p.Root)
	}
}

func TestFilterOnBothSidesStaysAboveJoin(t *testing.T) {
	st := skewedStore(t)
	// ?o and ?h are bound on different sides: the conjunct cannot move.
	q := mustParse(t, `SELECT * WHERE { ?s <p0> ?o . ?x <p1> ?h . FILTER(?o = ?h) }`)
	p := Build(st, q, Options{})
	if _, ok := p.Root.(Filter); !ok {
		t.Fatalf("root = %T, want the cross-side filter kept at the root", p.Root)
	}
}

func TestFilterNotPushedIntoOptionalSide(t *testing.T) {
	st := skewedStore(t)
	// ?h is only optionally bound: pushing the filter into the right
	// side of the left join would change which rows get padded.
	q := mustParse(t, `SELECT * WHERE { ?s <p0> ?o . OPTIONAL { ?s <p1> ?h . } FILTER(bound(?h)) }`)
	p := Build(st, q, Options{})
	if _, ok := p.Root.(Filter); !ok {
		t.Fatalf("root = %T, want the bound() filter above the left join", p.Root)
	}
}

func TestFilterPushedIntoBothUnionBranches(t *testing.T) {
	st := skewedStore(t)
	q := mustParse(t, `SELECT * WHERE { { ?s <p0> ?o . } UNION { ?s <p1> ?o . } FILTER(?o != <hub>) }`)
	p := Build(st, q, Options{})
	u, ok := p.Root.(Union)
	if !ok {
		t.Fatalf("root = %T, want Union with the filter distributed", p.Root)
	}
	for _, side := range []Node{u.L, u.R} {
		if _, ok := side.(Filter); !ok {
			t.Fatalf("union side %T lacks the pushed filter", side)
		}
	}
}

func TestLimitPushedIntoUnionBranches(t *testing.T) {
	st := skewedStore(t)
	q := mustParse(t, `SELECT * WHERE { { ?s <p0> ?o . } UNION { ?s <p1> ?o . } } LIMIT 5 OFFSET 2`)
	p := Build(st, q, Options{})
	if !hasDecision(p, "limit: pushed") {
		t.Fatalf("no limit pushdown decision in %v", p.Decisions)
	}
	root, ok := p.Root.(Limit)
	if !ok {
		t.Fatalf("root = %T, want the outer Limit", p.Root)
	}
	if root.Limit != 5 || root.Offset != 2 {
		t.Fatalf("outer limit = %d/%d, want 5/2", root.Limit, root.Offset)
	}
	u := root.Input.(Union)
	for _, side := range []Node{u.L, u.R} {
		l, ok := side.(Limit)
		if !ok {
			t.Fatalf("union side %T lacks the per-branch limit", side)
		}
		// Branches are bounded by limit+offset with no offset of their
		// own: skipping inside a branch could starve the merged window.
		if l.Limit != 7 || l.Offset != 0 {
			t.Fatalf("branch limit = %d/%d, want 7/0", l.Limit, l.Offset)
		}
	}
}

func TestUnitPlanForEmptyGroup(t *testing.T) {
	st := skewedStore(t)
	q := mustParse(t, `SELECT * WHERE { }`)
	p := Build(st, q, Options{})
	if _, ok := p.Root.(Unit); !ok {
		t.Fatalf("root = %T, want Unit", p.Root)
	}
}
