// Package plan lowers parsed SPARQL queries to a logical operator tree
// and optimizes it against the store's per-predicate index statistics:
// basic graph patterns are reordered greedily sparsest-first (the same
// cost model as the SOI solver's ordering heuristic), filters are pushed
// below joins and unions where that is sound, and LIMIT is pushed into
// UNION branches. The tree is the input of the engine's Volcano-style
// iterator executor; every optimization decision is recorded so the
// serving layer can surface it in ExecStats.
package plan

import (
	"fmt"
	"math"

	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// Node is one logical operator of the plan tree.
type Node interface{ isNode() }

// Unit produces the single empty mapping µ∅ (the empty BGP).
type Unit struct{}

// Scan streams the matches of one triple pattern from the store indexes.
// Est is the cardinality estimate at the scan's position in the plan,
// given the variables bound upstream.
type Scan struct {
	TP  sparql.TriplePattern
	Est float64
}

// Join is the compatibility join (AND).
type Join struct{ L, R Node }

// LeftJoin is the left outer join (OPTIONAL).
type LeftJoin struct{ L, R Node }

// Union is the set union.
type Union struct{ L, R Node }

// Filter keeps the rows whose condition evaluates to true.
type Filter struct {
	Input Node
	Cond  sparql.Condition
}

// Limit truncates to the first Limit distinct rows after skipping Offset
// distinct rows; Limit 0 means unlimited.
type Limit struct {
	Input  Node
	Limit  int
	Offset int
}

func (Unit) isNode()     {}
func (Scan) isNode()     {}
func (Join) isNode()     {}
func (LeftJoin) isNode() {}
func (Union) isNode()    {}
func (Filter) isNode()   {}
func (Limit) isNode()    {}

// Plan is an optimized operator tree plus the decision log explaining how
// it differs from the written query.
type Plan struct {
	Root      Node
	Decisions []string
}

// Options tune the optimizer; the zero value enables everything.
type Options struct {
	// DisableReorder keeps basic graph patterns in written order — the
	// baseline the planner benchmark compares against.
	DisableReorder bool
	// DisablePushdown leaves filters and LIMIT where the query wrote them.
	DisablePushdown bool
}

// Build lowers q to an optimized plan tree over st.
func Build(st *storage.Store, q *sparql.Query, opt Options) *Plan {
	p := &Plan{}
	b := &builder{st: st, opt: opt, plan: p}
	root := b.lower(q.Expr)
	if q.Limit > 0 || q.Offset > 0 {
		root = b.lowerLimit(root, q.Limit, q.Offset)
	}
	p.Root = root
	return p
}

type builder struct {
	st   *storage.Store
	opt  Options
	plan *Plan
}

func (b *builder) note(format string, args ...any) {
	b.plan.Decisions = append(b.plan.Decisions, fmt.Sprintf(format, args...))
}

func (b *builder) lower(e sparql.Expr) Node {
	switch x := e.(type) {
	case sparql.BGP:
		return b.lowerBGP(x)
	case sparql.And:
		return Join{L: b.lower(x.L), R: b.lower(x.R)}
	case sparql.Optional:
		return LeftJoin{L: b.lower(x.L), R: b.lower(x.R)}
	case sparql.Union:
		return Union{L: b.lower(x.L), R: b.lower(x.R)}
	case sparql.Filter:
		return b.lowerFilter(b.lower(x.Inner), x.Cond)
	default:
		// Unknown expression kinds cannot be lowered; the executor reports
		// the error when it meets the empty plan.
		return Unit{}
	}
}

// lowerBGP orders the triple patterns of a BGP greedily: repeatedly pick
// the cheapest pattern given the variables bound so far, preferring
// connected patterns (sharing a bound variable) over Cartesian ones —
// the cost model of the index-nested-loop engine and the SOI solver.
func (b *builder) lowerBGP(bgp sparql.BGP) Node {
	if len(bgp) == 0 {
		return Unit{}
	}
	order := make([]int, 0, len(bgp))
	bound := make(map[string]bool)
	if b.opt.DisableReorder {
		for i := range bgp {
			order = append(order, i)
		}
	} else {
		used := make([]bool, len(bgp))
		for len(order) < len(bgp) {
			best, bestCost, bestConnected := -1, 0.0, false
			for i, tp := range bgp {
				if used[i] {
					continue
				}
				connected := len(bound) == 0 || sharesBound(tp, bound)
				cost := estimateTP(b.st, tp, bound)
				if best < 0 || (connected && !bestConnected) ||
					(connected == bestConnected && cost < bestCost) {
					best, bestCost, bestConnected = i, cost, connected
				}
			}
			order = append(order, best)
			used[best] = true
			for _, v := range tpVars(bgp[best]) {
				bound[v] = true
			}
		}
	}

	// Left-deep scan chain in the chosen order, with position estimates.
	bound = make(map[string]bool)
	var root Node
	reordered := false
	for pos, i := range order {
		if i != pos {
			reordered = true
		}
		sc := Scan{TP: bgp[i], Est: estimateTP(b.st, bgp[i], bound)}
		if root == nil {
			root = sc
		} else {
			root = Join{L: root, R: sc}
		}
		for _, v := range tpVars(bgp[i]) {
			bound[v] = true
		}
	}
	if reordered {
		b.note("bgp: reordered %d patterns sparsest-first: %v", len(bgp), order)
	}
	return root
}

// lowerFilter pushes each top-level conjunct of cond as far down the tree
// as is sound, leaving the rest in place.
func (b *builder) lowerFilter(n Node, cond sparql.Condition) Node {
	if b.opt.DisablePushdown {
		return Filter{Input: n, Cond: cond}
	}
	for _, c := range sparql.Conjuncts(cond) {
		n = b.pushFilter(n, c)
	}
	return n
}

// pushFilter sinks one conjunct below joins and unions. Pushing into a
// join side is sound when the condition's variables all belong to that
// side AND every one of them that the other side could also bind is
// certainly bound on this side (otherwise the join could fill in an
// unbound variable and flip the condition). Pushing into a left join's
// right side is never attempted, and pushing into both union branches is
// always sound because an absent variable behaves exactly like an
// unbound one.
func (b *builder) pushFilter(n Node, c sparql.Condition) Node {
	cv := make(map[string]bool)
	sparql.CondVars(c, cv)
	var rec func(n Node) (Node, bool)
	rec = func(n Node) (Node, bool) {
		switch x := n.(type) {
		case Join:
			if canPushSide(cv, x.L, x.R) {
				l, _ := rec(x.L)
				return Join{L: l, R: x.R}, true
			}
			if canPushSide(cv, x.R, x.L) {
				r, _ := rec(x.R)
				return Join{L: x.L, R: r}, true
			}
		case LeftJoin:
			if canPushSide(cv, x.L, x.R) {
				l, _ := rec(x.L)
				return LeftJoin{L: l, R: x.R}, true
			}
		case Union:
			l, _ := rec(x.L)
			r, _ := rec(x.R)
			return Union{L: l, R: r}, true
		case Filter:
			in, pushed := rec(x.Input)
			if pushed {
				return Filter{Input: in, Cond: x.Cond}, true
			}
		}
		return Filter{Input: n, Cond: c}, false
	}
	out, pushed := rec(n)
	if pushed {
		b.note("filter: pushed %s below join/union", c.String())
	}
	return out
}

// canPushSide reports whether a condition over vars cv may be evaluated
// on the `into` side of a join whose other side is `other`.
func canPushSide(cv map[string]bool, into, other Node) bool {
	iv := varSet(into)
	for v := range cv {
		if !iv[v] {
			return false
		}
	}
	ov := varSet(other)
	cert := certSet(into)
	for v := range cv {
		if ov[v] && !cert[v] {
			return false
		}
	}
	return true
}

// lowerLimit wraps the root in a Limit and, when the root is a union,
// bounds each branch at limit+offset distinct rows: the merged distinct
// rows then still contain at least min(limit+offset, |full|) rows, so the
// outer Limit produces a correct answer while each branch stops early.
func (b *builder) lowerLimit(root Node, limit, offset int) Node {
	if !b.opt.DisablePushdown && limit > 0 {
		if u, ok := root.(Union); ok {
			k := limit + offset
			root = pushLimitBranches(u, k)
			b.note("limit: pushed LIMIT %d into union branches", k)
		}
	}
	return Limit{Input: root, Limit: limit, Offset: offset}
}

func pushLimitBranches(n Node, k int) Node {
	if u, ok := n.(Union); ok {
		return Union{L: pushLimitBranches(u.L, k), R: pushLimitBranches(u.R, k)}
	}
	return Limit{Input: n, Limit: k}
}

// ---------------------------------------------------------------------------
// Statistics and variable analyses.

// estimateTP is the expected cardinality of a triple pattern given the
// variables bound upstream — the same statistics the engines' resolved
// patterns use (PredCount, DistinctSubjects, DistinctObjects).
func estimateTP(st *storage.Store, tp sparql.TriplePattern, bound map[string]bool) float64 {
	if tp.P.IsVar() {
		// Variable predicates are rejected by every engine; rank them last.
		return float64(st.NumTriples())
	}
	pid, ok := st.PredIDOf(tp.P.Const.Value)
	if !ok {
		return 0
	}
	if tp.S.Const != nil {
		if _, ok := st.TermID(*tp.S.Const); !ok {
			return 0
		}
	}
	if tp.O.Const != nil {
		if _, ok := st.TermID(*tp.O.Const); !ok {
			return 0
		}
	}
	n := float64(st.PredCount(pid))
	if n == 0 {
		return 0
	}
	sBound := !tp.S.IsVar() || bound[tp.S.Var]
	oBound := !tp.O.IsVar() || bound[tp.O.Var]
	switch {
	case sBound && oBound:
		return 1
	case sBound:
		return n / math.Max(1, float64(st.DistinctSubjects(pid)))
	case oBound:
		return n / math.Max(1, float64(st.DistinctObjects(pid)))
	default:
		return n
	}
}

func tpVars(tp sparql.TriplePattern) []string {
	var out []string
	for _, t := range []sparql.Term{tp.S, tp.P, tp.O} {
		if t.IsVar() {
			out = append(out, t.Var)
		}
	}
	return out
}

func sharesBound(tp sparql.TriplePattern, bound map[string]bool) bool {
	for _, v := range tpVars(tp) {
		if bound[v] {
			return true
		}
	}
	return false
}

// varSet returns every variable a node's rows may bind.
func varSet(n Node) map[string]bool {
	out := make(map[string]bool)
	var rec func(Node)
	rec = func(n Node) {
		switch x := n.(type) {
		case Scan:
			for _, v := range tpVars(x.TP) {
				out[v] = true
			}
		case Join:
			rec(x.L)
			rec(x.R)
		case LeftJoin:
			rec(x.L)
			rec(x.R)
		case Union:
			rec(x.L)
			rec(x.R)
		case Filter:
			rec(x.Input)
		case Limit:
			rec(x.Input)
		}
	}
	rec(n)
	return out
}

// certSet returns the variables certainly bound in every row of a node:
// scans bind all their variables, left joins only guarantee their left
// side, unions only what both branches guarantee.
func certSet(n Node) map[string]bool {
	switch x := n.(type) {
	case Scan:
		out := make(map[string]bool)
		for _, v := range tpVars(x.TP) {
			out[v] = true
		}
		return out
	case Join:
		out := certSet(x.L)
		for v := range certSet(x.R) {
			out[v] = true
		}
		return out
	case LeftJoin:
		return certSet(x.L)
	case Union:
		l, r := certSet(x.L), certSet(x.R)
		out := make(map[string]bool)
		for v := range l {
			if r[v] {
				out[v] = true
			}
		}
		return out
	case Filter:
		return certSet(x.Input)
	case Limit:
		return certSet(x.Input)
	}
	return make(map[string]bool)
}
