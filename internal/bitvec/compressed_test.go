package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompressedRoundTrip(t *testing.T) {
	cases := []*Vector{
		New(0),
		New(1),
		FromBits(1, 0),
		New(64),
		NewFull(64),
		NewFull(65),
		FromBits(1000, 0, 512, 999),
		NewFull(1000),
	}
	for i, v := range cases {
		c := Compress(v)
		got := c.Decompress()
		if !got.Equal(v) {
			t.Fatalf("case %d: roundtrip mismatch: %v vs %v", i, got, v)
		}
		if c.Len() != v.Len() {
			t.Fatalf("case %d: Len mismatch", i)
		}
	}
}

func TestCompressedLongGap(t *testing.T) {
	// A single set bit at the end of a long vector must compress to a
	// handful of words — this is the gap-length win the paper relies on.
	v := New(1 << 20)
	v.Set(1<<20 - 1)
	c := Compress(v)
	if c.SizeWords() > 4 {
		t.Fatalf("long-gap vector uses %d words", c.SizeWords())
	}
	if got := c.Decompress(); !got.Equal(v) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestCompressedCount(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := rr.Intn(700) + 1
		v := randomVector(rr, n)
		return Compress(v).Count() == v.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedIsEmpty(t *testing.T) {
	if !Compress(New(500)).IsEmpty() {
		t.Fatal("empty vector compresses non-empty")
	}
	if Compress(FromBits(500, 499)).IsEmpty() {
		t.Fatal("non-empty vector compresses empty")
	}
}

func TestCompressedOrInto(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := rr.Intn(600) + 1
		a := randomVector(rr, n)
		b := randomVector(rr, n)
		want := a.Clone()
		want.Or(b)
		got := a.Clone()
		Compress(b).OrInto(got)
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedIntersects(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := rr.Intn(600) + 1
		a := randomVector(rr, n)
		b := randomVector(rr, n)
		return Compress(a).Intersects(b) == a.Intersects(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedForEach(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := rr.Intn(600) + 1
		v := randomVector(rr, n)
		var got []int
		Compress(v).ForEach(func(i int) bool { got = append(got, i); return true })
		want := v.Bits()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedForEachEarlyStop(t *testing.T) {
	v := NewFull(300)
	seen := 0
	Compress(v).ForEach(func(i int) bool { seen++; return seen < 5 })
	if seen != 5 {
		t.Fatalf("visited %d bits, want 5", seen)
	}
}

func TestCompressedSavesSpaceOnSparse(t *testing.T) {
	v := New(100_000)
	for i := 0; i < 10; i++ {
		v.Set(i * 9999)
	}
	c := Compress(v)
	dense := len(v.Words())
	if c.SizeWords() >= dense/10 {
		t.Fatalf("compression ineffective: %d words vs %d dense", c.SizeWords(), dense)
	}
}
