// Package bitvec provides fixed-length bit-vectors used to represent the
// rows of the characteristic function χS of a dual-simulation candidate
// relation, as well as per-label node summaries (the vectors f_a and b_a of
// the paper's inequality (13)).
//
// Two representations are provided:
//
//   - Vector: a dense, word-packed bit-vector. This is the working
//     representation for χS rows and multiplication results.
//   - Compressed: a run-length ("gap-length") encoded bit-vector in the
//     spirit of EWAH/WAH. The paper (§3.3, §5.1) points out that gap-length
//     encoded storage keeps the adjacency matrices small; Compressed is the
//     at-rest format for matrix rows and summaries.
//
// All operations treat vectors as having a fixed logical length Len; bits
// at positions ≥ Len are always zero.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	wordBits = 64
	wordLog  = 6
	wordMask = wordBits - 1
)

// Vector is a dense bit-vector of fixed length.
//
// The zero value is an empty vector of length 0; use New for a sized one.
type Vector struct {
	words []uint64
	n     int
}

// New returns a zeroed Vector with n bits.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, wordsFor(n)), n: n}
}

// NewFull returns a Vector with n bits, all set — the vector 1 used to
// initialize S0 = V1 × V2 (inequality (12) of the paper).
func NewFull(n int) *Vector {
	v := New(n)
	v.Fill()
	return v
}

// FromBits returns a Vector of length n whose set positions are given.
func FromBits(n int, positions ...int) *Vector {
	v := New(n)
	for _, p := range positions {
		v.Set(p)
	}
	return v
}

func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// Len returns the logical number of bits.
func (v *Vector) Len() int { return v.n }

// Set sets bit i to 1.
//
//dualsim:hotpath
func (v *Vector) Set(i int) {
	v.boundsCheck(i)
	v.words[i>>wordLog] |= 1 << uint(i&wordMask)
}

// Clear sets bit i to 0.
//
//dualsim:hotpath
func (v *Vector) Clear(i int) {
	v.boundsCheck(i)
	v.words[i>>wordLog] &^= 1 << uint(i&wordMask)
}

// Get reports whether bit i is set.
//
//dualsim:hotpath
func (v *Vector) Get(i int) bool {
	v.boundsCheck(i)
	return v.words[i>>wordLog]&(1<<uint(i&wordMask)) != 0
}

func (v *Vector) boundsCheck(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Fill sets every bit.
func (v *Vector) Fill() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// Zero clears every bit.
//
//dualsim:hotpath
func (v *Vector) Zero() {
	clear(v.words)
}

// trim clears bits beyond the logical length in the last word.
func (v *Vector) trim() {
	if rem := v.n & wordMask; rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(rem)) - 1
	}
	if v.n == 0 && len(v.words) > 0 {
		v.words[0] = 0
	}
}

// Reset reinitializes v to a zeroed vector of n bits, reusing the
// backing array when it is large enough. It is the re-use hook for
// pooled vectors (sync.Pool arenas hand out vectors of varying length).
func (v *Vector) Reset(n int) {
	if n < 0 {
		panic("bitvec: negative length")
	}
	w := wordsFor(n)
	if cap(v.words) < w {
		v.words = make([]uint64, w)
	} else {
		v.words = v.words[:w]
		clear(v.words)
	}
	v.n = n
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	w := &Vector{words: make([]uint64, len(v.words)), n: v.n}
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with the contents of w. The lengths must match.
//
//dualsim:hotpath
func (v *Vector) CopyFrom(w *Vector) {
	v.sameLen(w)
	copy(v.words, w.words)
}

func (v *Vector) sameLen(w *Vector) {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
}

// And replaces v with v ∧ w and reports whether v changed. This is the
// component-wise conjunction used in the SOI update step
// χS'(v) := χS(v) ∧ r.
//
//dualsim:hotpath
func (v *Vector) And(w *Vector) bool {
	v.sameLen(w)
	changed := false
	for i, x := range w.words {
		old := v.words[i]
		nw := old & x
		if nw != old {
			v.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Or replaces v with v ∨ w and reports whether v changed.
//
//dualsim:hotpath
func (v *Vector) Or(w *Vector) bool {
	v.sameLen(w)
	changed := false
	for i, x := range w.words {
		old := v.words[i]
		nw := old | x
		if nw != old {
			v.words[i] = nw
			changed = true
		}
	}
	return changed
}

// AndNot replaces v with v ∧ ¬w and reports whether v changed.
//
//dualsim:hotpath
func (v *Vector) AndNot(w *Vector) bool {
	v.sameLen(w)
	changed := false
	for i, x := range w.words {
		old := v.words[i]
		nw := old &^ x
		if nw != old {
			v.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersects reports whether v ∧ w has any set bit, i.e. the non-disjointness
// test of the paper's equation (4): F_a(v') ∩ χS(w) ≠ ∅.
//
//dualsim:hotpath
func (v *Vector) Intersects(w *Vector) bool {
	v.sameLen(w)
	for i, x := range w.words {
		if v.words[i]&x != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every set bit of v is also set in w — the
// component-wise ≤ of the paper's inequalities (10).
//
//dualsim:hotpath
func (v *Vector) SubsetOf(w *Vector) bool {
	v.sameLen(w)
	for i, x := range v.words {
		if x&^w.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and w contain exactly the same bits.
func (v *Vector) Equal(w *Vector) bool {
	if v.n != w.n {
		return false
	}
	for i, x := range v.words {
		if x != w.words[i] {
			return false
		}
	}
	return true
}

// IsEmpty reports whether no bit is set.
func (v *Vector) IsEmpty() bool {
	for _, x := range v.words {
		if x != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits (population count).
//
//dualsim:hotpath
func (v *Vector) Count() int {
	c := 0
	for _, x := range v.words {
		c += bits.OnesCount64(x)
	}
	return c
}

// Any returns the position of an arbitrary (the lowest) set bit, or -1.
//
//dualsim:hotpath
func (v *Vector) Any() int {
	for i, x := range v.words {
		if x != 0 {
			return i*wordBits + bits.TrailingZeros64(x)
		}
	}
	return -1
}

// NextSet returns the position of the first set bit at or after i, or -1.
func (v *Vector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	w := i >> wordLog
	x := v.words[w] >> uint(i&wordMask)
	if x != 0 {
		return i + bits.TrailingZeros64(x)
	}
	for w++; w < len(v.words); w++ {
		if v.words[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(v.words[w])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false, iteration stops early.
func (v *Vector) ForEach(fn func(i int) bool) {
	for w, x := range v.words {
		base := w * wordBits
		for x != 0 {
			t := bits.TrailingZeros64(x)
			if !fn(base + t) {
				return
			}
			x &= x - 1
		}
	}
}

// Bits returns the positions of all set bits in ascending order.
func (v *Vector) Bits() []int {
	out := make([]int, 0, v.Count())
	v.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// Words exposes the backing words (read-only by convention); used by the
// bit-matrix multiplication kernels.
func (v *Vector) Words() []uint64 { return v.words }

// String renders the vector as a brace-enclosed list of set positions,
// e.g. "{0, 3, 17}".
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	v.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// AndInto computes dst = a ∧ b without modifying a or b.
func AndInto(dst, a, b *Vector) {
	a.sameLen(b)
	a.sameLen(dst)
	for i := range dst.words {
		dst.words[i] = a.words[i] & b.words[i]
	}
}

// OrInto computes dst = a ∨ b without modifying a or b.
func OrInto(dst, a, b *Vector) {
	a.sameLen(b)
	a.sameLen(dst)
	for i := range dst.words {
		dst.words[i] = a.words[i] | b.words[i]
	}
}
