package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		if !v.IsEmpty() {
			t.Fatalf("new vector of %d bits not empty", n)
		}
		if v.Count() != 0 {
			t.Fatalf("Count = %d, want 0", v.Count())
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := v.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	v.Clear(64)
	if v.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := v.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestBoundsPanics(t *testing.T) {
	v := New(10)
	for _, i := range []int{-1, 10, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestFillAndTrim(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		v := New(n)
		v.Fill()
		if got := v.Count(); got != n {
			t.Fatalf("n=%d: Count after Fill = %d", n, got)
		}
		// No bits beyond the logical length may leak into words.
		total := 0
		for _, w := range v.Words() {
			for ; w != 0; w &= w - 1 {
				total++
			}
		}
		if total != n {
			t.Fatalf("n=%d: %d physical bits set", n, total)
		}
	}
}

func TestNewFull(t *testing.T) {
	v := NewFull(77)
	if v.Count() != 77 {
		t.Fatalf("Count = %d, want 77", v.Count())
	}
}

func TestAndOrAndNot(t *testing.T) {
	a := FromBits(10, 1, 3, 5, 7)
	b := FromBits(10, 3, 4, 5, 8)

	x := a.Clone()
	if changed := x.And(b); !changed {
		t.Fatal("And reported no change")
	}
	if want := FromBits(10, 3, 5); !x.Equal(want) {
		t.Fatalf("And = %v, want %v", x, want)
	}
	if changed := x.And(b); changed {
		t.Fatal("idempotent And reported change")
	}

	x = a.Clone()
	if changed := x.Or(b); !changed {
		t.Fatal("Or reported no change")
	}
	if want := FromBits(10, 1, 3, 4, 5, 7, 8); !x.Equal(want) {
		t.Fatalf("Or = %v, want %v", x, want)
	}

	x = a.Clone()
	if changed := x.AndNot(b); !changed {
		t.Fatal("AndNot reported no change")
	}
	if want := FromBits(10, 1, 7); !x.Equal(want) {
		t.Fatalf("AndNot = %v, want %v", x, want)
	}
}

func TestSubsetIntersect(t *testing.T) {
	a := FromBits(100, 5, 50, 99)
	b := FromBits(100, 5, 20, 50, 99)
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊆ a unexpected")
	}
	if !a.Intersects(b) {
		t.Fatal("a ∩ b ≠ ∅ expected")
	}
	c := FromBits(100, 1, 2, 3)
	if a.Intersects(c) {
		t.Fatal("a ∩ c = ∅ expected")
	}
	empty := New(100)
	if !empty.SubsetOf(a) {
		t.Fatal("∅ ⊆ a expected")
	}
}

func TestAnyNextSet(t *testing.T) {
	v := New(200)
	if v.Any() != -1 {
		t.Fatal("Any on empty should be -1")
	}
	v.Set(70)
	v.Set(130)
	if got := v.Any(); got != 70 {
		t.Fatalf("Any = %d, want 70", got)
	}
	if got := v.NextSet(0); got != 70 {
		t.Fatalf("NextSet(0) = %d", got)
	}
	if got := v.NextSet(70); got != 70 {
		t.Fatalf("NextSet(70) = %d", got)
	}
	if got := v.NextSet(71); got != 130 {
		t.Fatalf("NextSet(71) = %d", got)
	}
	if got := v.NextSet(131); got != -1 {
		t.Fatalf("NextSet(131) = %d", got)
	}
	if got := v.NextSet(1000); got != -1 {
		t.Fatalf("NextSet(1000) = %d", got)
	}
}

func TestForEachAndBits(t *testing.T) {
	positions := []int{0, 1, 64, 65, 190}
	v := FromBits(191, positions...)
	if got := v.Bits(); len(got) != len(positions) {
		t.Fatalf("Bits = %v", got)
	} else {
		for i, p := range positions {
			if got[i] != p {
				t.Fatalf("Bits[%d] = %d, want %d", i, got[i], p)
			}
		}
	}
	// Early termination.
	seen := 0
	v.ForEach(func(i int) bool { seen++; return seen < 2 })
	if seen != 2 {
		t.Fatalf("early stop visited %d bits", seen)
	}
}

func TestString(t *testing.T) {
	v := FromBits(10, 0, 3, 7)
	if got := v.String(); got != "{0, 3, 7}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

func TestCopyFromCloneIndependence(t *testing.T) {
	a := FromBits(66, 1, 65)
	b := a.Clone()
	b.Set(2)
	if a.Get(2) {
		t.Fatal("Clone aliases storage")
	}
	c := New(66)
	c.CopyFrom(a)
	if !c.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestAndIntoOrInto(t *testing.T) {
	a := FromBits(70, 1, 3, 69)
	b := FromBits(70, 3, 4, 69)
	dst := New(70)
	AndInto(dst, a, b)
	if want := FromBits(70, 3, 69); !dst.Equal(want) {
		t.Fatalf("AndInto = %v", dst)
	}
	OrInto(dst, a, b)
	if want := FromBits(70, 1, 3, 4, 69); !dst.Equal(want) {
		t.Fatalf("OrInto = %v", dst)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	for name, fn := range map[string]func(){
		"And":        func() { a.And(b) },
		"Or":         func() { a.Or(b) },
		"SubsetOf":   func() { a.SubsetOf(b) },
		"Intersects": func() { a.Intersects(b) },
		"CopyFrom":   func() { a.CopyFrom(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// randomVector draws a vector whose density varies so compressed runs of
// both kinds are exercised.
func randomVector(r *rand.Rand, n int) *Vector {
	v := New(n)
	switch r.Intn(4) {
	case 0: // sparse
		for i := 0; i < n/20+1; i++ {
			v.Set(r.Intn(n))
		}
	case 1: // dense
		v.Fill()
		for i := 0; i < n/20+1; i++ {
			v.Clear(r.Intn(n))
		}
	case 2: // clustered
		start := r.Intn(n)
		for i := start; i < n && i < start+n/4+1; i++ {
			v.Set(i)
		}
	default: // uniform
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				v.Set(i)
			}
		}
	}
	return v
}

func TestPropertyDeMorgan(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := rr.Intn(300) + 1
		a := randomVector(rr, n)
		b := randomVector(rr, n)
		// a ∧ b ⊆ a ⊆ a ∨ b, and (a∧b) ∨ (a∧¬b) = a
		ab := a.Clone()
		ab.And(b)
		aub := a.Clone()
		aub.Or(b)
		if !ab.SubsetOf(a) || !a.SubsetOf(aub) {
			return false
		}
		anb := a.Clone()
		anb.AndNot(b)
		recon := ab.Clone()
		recon.Or(anb)
		return recon.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCountAgreesWithBits(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := rr.Intn(500) + 1
		v := randomVector(rr, n)
		return v.Count() == len(v.Bits())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubsetIffAndFixed(t *testing.T) {
	// a ⊆ b ⟺ a ∧ b == a
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := rr.Intn(400) + 1
		a := randomVector(rr, n)
		b := randomVector(rr, n)
		ab := a.Clone()
		ab.And(b)
		return a.SubsetOf(b) == ab.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestReset: a reset vector is indistinguishable from a fresh New(n) —
// zeroed, with the right logical length — whether it shrinks (backing
// array reused, stale bits cleared) or grows.
func TestReset(t *testing.T) {
	v := New(200)
	v.Fill()
	words := &v.Words()[0]

	v.Reset(70) // shrink: reuse backing array
	if v.Len() != 70 || !v.IsEmpty() {
		t.Fatalf("Reset(70): len=%d empty=%v", v.Len(), v.IsEmpty())
	}
	if &v.Words()[0] != words {
		t.Fatal("shrinking Reset reallocated the backing array")
	}
	if !v.Equal(New(70)) {
		t.Fatal("reset vector differs from a fresh one")
	}
	v.Set(69)
	v.Reset(66) // shrink within the same word: stale bit 69 must go
	v.Reset(70)
	if !v.IsEmpty() {
		t.Fatalf("stale bits survived Reset: %v", v)
	}

	v.Reset(1000) // grow: reallocate
	if v.Len() != 1000 || !v.IsEmpty() {
		t.Fatalf("Reset(1000): len=%d empty=%v", v.Len(), v.IsEmpty())
	}
	v.Set(999)
	if v.Count() != 1 {
		t.Fatal("grown vector unusable")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative Reset")
		}
	}()
	v.Reset(-1)
}
