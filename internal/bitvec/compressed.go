package bitvec

import (
	"fmt"
	"math/bits"
)

// Compressed is a run-length ("gap-length") encoded bit-vector in the style
// of EWAH: the encoding is a sequence of marker words, each followed by a
// run of literal words. A marker packs
//
//	bit  0       – the fill bit (value of the run of identical words)
//	bits 1..32   – the number of fill words (runs of all-0 or all-1 words)
//	bits 33..63  – the number of literal words that follow the marker
//
// Long gaps of zeros (the common case for adjacency-matrix rows over large
// node universes) therefore cost a single word. Compressed vectors are
// immutable once built; they support the read-side operations the SOI
// solver needs (iteration, intersection tests, OR-expansion into a dense
// Vector) and full round-tripping to and from Vector.
type Compressed struct {
	words []uint64 // marker/literal stream
	n     int      // logical bit length
}

const (
	fillBitShift   = 0
	fillCountShift = 1
	fillCountBits  = 32
	litCountShift  = 33
	litCountBits   = 31
	maxFillPerWord = (1 << fillCountBits) - 1
	maxLitsPerWord = (1 << litCountBits) - 1
)

func marker(fill bool, fillCount, litCount int) uint64 {
	m := uint64(fillCount)<<fillCountShift | uint64(litCount)<<litCountShift
	if fill {
		m |= 1 << fillBitShift
	}
	return m
}

func decodeMarker(m uint64) (fill bool, fillCount, litCount int) {
	fill = m&1 != 0
	fillCount = int(m >> fillCountShift & maxFillPerWord)
	litCount = int(m >> litCountShift & maxLitsPerWord)
	return
}

// Compress encodes a dense Vector.
func Compress(v *Vector) *Compressed {
	c := &Compressed{n: v.n}
	ws := v.words
	i := 0
	for i < len(ws) {
		// Count a run of identical fill words (all zeros or all ones).
		fill := false
		fillCount := 0
		switch ws[i] {
		case 0:
			for i < len(ws) && ws[i] == 0 && fillCount < maxFillPerWord {
				fillCount++
				i++
			}
		case ^uint64(0):
			fill = true
			for i < len(ws) && ws[i] == ^uint64(0) && fillCount < maxFillPerWord {
				fillCount++
				i++
			}
		}
		// Count following literal words up to the next fill run.
		start := i
		for i < len(ws) && ws[i] != 0 && ws[i] != ^uint64(0) && i-start < maxLitsPerWord {
			i++
		}
		c.words = append(c.words, marker(fill, fillCount, i-start))
		c.words = append(c.words, ws[start:i]...)
	}
	return c
}

// Decompress expands c into a fresh dense Vector.
func (c *Compressed) Decompress() *Vector {
	v := New(c.n)
	c.expandInto(v, false)
	return v
}

// Len returns the logical number of bits.
func (c *Compressed) Len() int { return c.n }

// SizeWords returns the number of 64-bit words the encoding occupies,
// for memory accounting (cf. the paper's §5.1 space report).
func (c *Compressed) SizeWords() int { return len(c.words) }

// expandInto writes the decoded words into v. With or=true the words are
// OR-ed instead of overwritten (and v may be longer than c).
func (c *Compressed) expandInto(v *Vector, or bool) {
	if !or && v.n != c.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, c.n))
	}
	w := 0
	i := 0
	for i < len(c.words) {
		fill, fc, lc := decodeMarker(c.words[i])
		i++
		if fill {
			for k := 0; k < fc; k++ {
				v.words[w] = ^uint64(0) // OR with all-ones is all-ones
				w++
			}
		} else {
			if !or {
				for k := 0; k < fc; k++ {
					v.words[w] = 0
					w++
				}
			} else {
				w += fc
			}
		}
		for k := 0; k < lc; k++ {
			if or {
				v.words[w] |= c.words[i]
			} else {
				v.words[w] = c.words[i]
			}
			i++
			w++
		}
	}
	if !or {
		for ; w < len(v.words); w++ {
			v.words[w] = 0
		}
	}
	v.trim()
}

// OrInto ORs the compressed contents into the dense vector v, which must
// have the same logical length. Used to accumulate row unions during
// row-wise ×b multiplication.
func (c *Compressed) OrInto(v *Vector) {
	if v.n != c.n {
		panic(fmt.Sprintf("bitvec: OrInto length mismatch %d vs %d", v.n, c.n))
	}
	c.expandInto(v, true)
}

// Count returns the number of set bits.
func (c *Compressed) Count() int {
	total := 0
	i := 0
	for i < len(c.words) {
		fill, fc, lc := decodeMarker(c.words[i])
		i++
		if fill {
			total += fc * wordBits
		}
		for k := 0; k < lc; k++ {
			total += bits.OnesCount64(c.words[i])
			i++
		}
	}
	// A trailing all-ones fill may overcount past the logical end; the
	// encoder only compresses words produced by a trimmed Vector, whose
	// final partial word is a literal unless n is word-aligned, so no
	// correction is needed. (Enforced by TestCompressedCount.)
	return total
}

// IsEmpty reports whether no bit is set.
func (c *Compressed) IsEmpty() bool {
	i := 0
	for i < len(c.words) {
		fill, fc, lc := decodeMarker(c.words[i])
		i++
		if fill && fc > 0 {
			return false
		}
		for k := 0; k < lc; k++ {
			if c.words[i] != 0 {
				return false
			}
			i++
		}
	}
	return true
}

// Intersects reports whether c and the dense vector v share a set bit.
func (c *Compressed) Intersects(v *Vector) bool {
	if v.n < c.n {
		panic("bitvec: Intersects target too short")
	}
	w := 0
	i := 0
	for i < len(c.words) {
		fill, fc, lc := decodeMarker(c.words[i])
		i++
		if fill {
			for k := 0; k < fc; k++ {
				if v.words[w] != 0 {
					return true
				}
				w++
			}
		} else {
			w += fc
		}
		for k := 0; k < lc; k++ {
			if c.words[i]&v.words[w] != 0 {
				return true
			}
			i++
			w++
		}
	}
	return false
}

// ForEach calls fn for every set bit in ascending order; stops if fn
// returns false.
func (c *Compressed) ForEach(fn func(i int) bool) {
	w := 0
	i := 0
	for i < len(c.words) {
		fill, fc, lc := decodeMarker(c.words[i])
		i++
		if fill {
			for k := 0; k < fc; k++ {
				base := w * wordBits
				for b := 0; b < wordBits && base+b < c.n; b++ {
					if !fn(base + b) {
						return
					}
				}
				w++
			}
		} else {
			w += fc
		}
		for k := 0; k < lc; k++ {
			x := c.words[i]
			base := w * wordBits
			for x != 0 {
				t := bits.TrailingZeros64(x)
				if !fn(base + t) {
					return
				}
				x &= x - 1
			}
			i++
			w++
		}
	}
}
