// Package strongsim implements strong simulation [Ma et al. 2014], the
// topology-capturing strengthening of dual simulation from which the
// paper's baseline originates (and whose "loss of topology" weakness the
// paper's Fig. 4 counterexample illustrates).
//
// A strong simulation match is a maximum dual simulation confined to a
// ball: for a candidate center node w, take the subgraph induced by all
// nodes within undirected distance d_Q of w (d_Q = the pattern's
// diameter) and compute the largest dual simulation between the pattern
// and that ball. If the relation is non-empty and contains w, its
// certified edges form a match graph around w.
//
// Because the ball bounds locality, nodes like p4 of the paper's Fig. 4 —
// kept by plain dual simulation although they join no actual match — are
// rejected: their ball contains no structure dual-simulating the whole
// pattern. Strong simulation therefore sits strictly between dual
// simulation and subgraph isomorphism (cubic time, topology-aware).
package strongsim

import (
	"sort"

	"dualsim/internal/baseline"
	"dualsim/internal/core"
	"dualsim/internal/storage"
)

// Match is one strong simulation match: a center node and the node sets
// per pattern variable of the maximum dual simulation inside the
// center's ball.
type Match struct {
	Center storage.NodeID
	// Sim[i] is the candidate set for pattern variable i, restricted to
	// the ball around Center.
	Sim []map[storage.NodeID]bool
	// Ball is the node set of the ball (for inspection).
	Ball map[storage.NodeID]bool
}

// Result is the outcome of strong simulation matching.
type Result struct {
	Pattern *core.Pattern
	Matches []Match
	// Centers counts the candidate centers examined.
	Centers int
}

// NodeSet returns the union over matches of the candidates of the named
// variable — the strong-simulation analogue of a χS row.
func (r *Result) NodeSet(varName string) map[storage.NodeID]bool {
	i, ok := r.Pattern.VarIndex(varName)
	if !ok {
		return nil
	}
	out := make(map[storage.NodeID]bool)
	for _, m := range r.Matches {
		for n := range m.Sim[i] {
			out[n] = true
		}
	}
	return out
}

// Diameter returns the pattern's undirected diameter d_Q (0 for a
// single-variable pattern, -1 for a disconnected pattern, where strong
// simulation is undefined; callers may still use the largest component's
// eccentricity by splitting the pattern).
func Diameter(p *core.Pattern) int {
	n := p.NumVars()
	if n == 0 {
		return 0
	}
	adj := make([][]int, n)
	for _, e := range p.Edges() {
		if e.From == e.To {
			continue
		}
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	diameter := 0
	for src := 0; src < n; src++ {
		dist := bfs(adj, src, n)
		for _, d := range dist {
			if d < 0 {
				return -1 // disconnected
			}
			if d > diameter {
				diameter = d
			}
		}
	}
	return diameter
}

func bfs(adj [][]int, src, n int) []int {
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Ball returns the set of nodes within undirected distance radius of
// center, following every predicate in both directions.
func Ball(st *storage.Store, center storage.NodeID, radius int) map[storage.NodeID]bool {
	ball := map[storage.NodeID]bool{center: true}
	frontier := []storage.NodeID{center}
	for hop := 0; hop < radius; hop++ {
		var next []storage.NodeID
		for _, v := range frontier {
			for p := 0; p < st.NumPreds(); p++ {
				pid := storage.PredID(p)
				for _, w := range st.Objects(pid, v) {
					if !ball[w] {
						ball[w] = true
						next = append(next, w)
					}
				}
				for _, w := range st.Subjects(pid, v) {
					if !ball[w] {
						ball[w] = true
						next = append(next, w)
					}
				}
			}
		}
		frontier = next
	}
	return ball
}

// ballStore materializes the subgraph induced by the ball as a store
// sharing the original dictionaries.
func ballStore(st *storage.Store, ball map[storage.NodeID]bool) *storage.Store {
	return st.Restrict(func(s storage.NodeID, p storage.PredID, o storage.NodeID) bool {
		return ball[s] && ball[o]
	})
}

// Match computes the strong simulation matches of the pattern: one per
// candidate center whose ball dual-simulates the whole pattern through
// the center.
//
// Candidate centers are taken from the global largest dual simulation
// (sound: a strong simulation inside a ball is also a global dual
// simulation, so centers outside it cannot qualify). This mirrors the
// pruning use of dual simulation advocated by the paper.
func MatchPattern(st *storage.Store, p *core.Pattern) *Result {
	res := &Result{Pattern: p}
	d := Diameter(p)
	if d < 0 {
		return res
	}

	global := core.DualSimulation(st, p, core.Config{})
	centers := make(map[storage.NodeID]bool)
	for _, chi := range global.Chi {
		chi.ForEach(func(i int) bool {
			centers[storage.NodeID(i)] = true
			return true
		})
	}
	ordered := make([]storage.NodeID, 0, len(centers))
	for c := range centers {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	for _, w := range ordered {
		res.Centers++
		ball := Ball(st, w, d)
		sub := ballStore(st, ball)
		local := baseline.MaEtAl(sub, p)
		if !contains(local.Sim, w) {
			continue
		}
		res.Matches = append(res.Matches, Match{Center: w, Sim: local.Sim, Ball: ball})
	}
	return res
}

func contains(sim []map[storage.NodeID]bool, w storage.NodeID) bool {
	for _, s := range sim {
		if s[w] {
			return true
		}
	}
	return false
}
