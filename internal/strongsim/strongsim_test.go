package strongsim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dualsim/internal/core"
	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

func mustStore(t *testing.T, ts []rdf.Triple) *storage.Store {
	t.Helper()
	st, err := storage.FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// fig4 is the paper's Fig. 4(b) graph K.
func fig4(t *testing.T) *storage.Store {
	return mustStore(t, []rdf.Triple{
		rdf.T("p1", "knows", "p2"),
		rdf.T("p2", "knows", "p1"),
		rdf.T("p2", "knows", "p3"),
		rdf.T("p3", "knows", "p2"),
		rdf.T("p3", "knows", "p4"),
		rdf.T("p4", "knows", "p1"),
	})
}

func twoCycle() *core.Pattern {
	p := core.NewPattern()
	p.Edge("v", "knows", "w")
	p.Edge("w", "knows", "v")
	return p
}

// TestFig4StrongSimulationExcludesP4 is the point of strong simulation:
// dual simulation keeps p4 (Sect. 4.1 counterexample), strong simulation
// rejects it because p4's ball has no mutual pair through p4.
func TestFig4StrongSimulationExcludesP4(t *testing.T) {
	st := fig4(t)
	pat := twoCycle()

	// Plain dual simulation keeps all four nodes.
	dual := core.DualSimulation(st, pat, core.Config{})
	if dual.Set("v")[mustID(t, st, "p4")] != true {
		t.Fatal("fixture broken: dual simulation should keep p4")
	}

	res := MatchPattern(st, pat)
	vSet := res.NodeSet("v")
	p4 := mustID(t, st, "p4")
	if vSet[p4] {
		t.Fatal("strong simulation must exclude p4")
	}
	for _, n := range []string{"p1", "p2", "p3"} {
		if !vSet[mustID(t, st, n)] {
			t.Fatalf("%s missing from strong simulation", n)
		}
	}
	if res.Centers != 4 {
		t.Fatalf("centers = %d, want 4 (the global dual simulation)", res.Centers)
	}
}

func mustID(t *testing.T, st *storage.Store, name string) storage.NodeID {
	t.Helper()
	id, ok := st.TermID(rdf.NewIRI(name))
	if !ok {
		t.Fatalf("node %s missing", name)
	}
	return id
}

func TestDiameter(t *testing.T) {
	if d := Diameter(twoCycle()); d != 1 {
		t.Fatalf("diameter(2-cycle) = %d, want 1", d)
	}
	path := core.NewPattern()
	path.Edge("a", "p", "b")
	path.Edge("b", "p", "c")
	path.Edge("c", "p", "d")
	if d := Diameter(path); d != 3 {
		t.Fatalf("diameter(path4) = %d, want 3", d)
	}
	disc := core.NewPattern()
	disc.Edge("a", "p", "b")
	disc.Edge("c", "p", "d")
	if d := Diameter(disc); d != -1 {
		t.Fatalf("diameter(disconnected) = %d, want -1", d)
	}
	loop := core.NewPattern()
	loop.Edge("a", "p", "a")
	if d := Diameter(loop); d != 0 {
		t.Fatalf("diameter(self-loop) = %d, want 0", d)
	}
}

func TestBall(t *testing.T) {
	st := fig4(t)
	p1 := mustID(t, st, "p1")
	b0 := Ball(st, p1, 0)
	if len(b0) != 1 || !b0[p1] {
		t.Fatalf("ball radius 0 = %v", b0)
	}
	b1 := Ball(st, p1, 1)
	// p1's undirected neighbors: p2 (both ways), p4 (incoming).
	if len(b1) != 3 {
		t.Fatalf("ball radius 1 has %d nodes, want 3", len(b1))
	}
	b2 := Ball(st, p1, 2)
	if len(b2) != 4 {
		t.Fatalf("ball radius 2 has %d nodes, want 4", len(b2))
	}
}

// TestPropertyStrongRefinesDual: strong simulation candidates are
// contained in the dual simulation candidates (per variable).
func TestPropertyStrongRefinesDual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomStore(r)
		pat := randomConnectedPattern(r)
		dual := core.DualSimulation(st, pat, core.Config{})
		dualSets := dual.Sets()
		strong := MatchPattern(st, pat)
		for i := range dualSets {
			name := pat.Vars()[i].Name
			for n := range strong.NodeSet(name) {
				if !dualSets[i][n] {
					t.Logf("seed %d: strong kept %d for %s, dual did not", seed, n, name)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMatchesAreDualSimulations: every per-ball relation is a
// dual simulation of the pattern w.r.t. the ball subgraph, hence also
// w.r.t. the full store.
func TestPropertyMatchesAreDualSimulations(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomStore(r)
		pat := randomConnectedPattern(r)
		strong := MatchPattern(st, pat)
		for _, m := range strong.Matches {
			if err := pat.VerifyDualSimulation(st, m.Sim); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomStore(r *rand.Rand) *storage.Store {
	n := r.Intn(12) + 3
	e := r.Intn(30) + 3
	st := storage.New()
	for i := 0; i < e; i++ {
		_ = st.Add(rdf.T(
			fmt.Sprintf("n%d", r.Intn(n)),
			fmt.Sprintf("p%d", r.Intn(2)),
			fmt.Sprintf("n%d", r.Intn(n))))
	}
	st.Build()
	return st
}

// randomConnectedPattern draws a small connected pattern (strong
// simulation needs a finite diameter).
func randomConnectedPattern(r *rand.Rand) *core.Pattern {
	p := core.NewPattern()
	nv := r.Intn(3) + 2
	for i := 1; i < nv; i++ {
		from := fmt.Sprintf("v%d", r.Intn(i))
		to := fmt.Sprintf("v%d", i)
		pred := fmt.Sprintf("p%d", r.Intn(2))
		if r.Intn(2) == 0 {
			p.Edge(from, pred, to)
		} else {
			p.Edge(to, pred, from)
		}
	}
	return p
}

func TestDisconnectedPatternNoMatches(t *testing.T) {
	st := fig4(t)
	p := core.NewPattern()
	p.Edge("a", "knows", "b")
	p.Edge("c", "knows", "d")
	res := MatchPattern(st, p)
	if len(res.Matches) != 0 {
		t.Fatal("disconnected pattern should yield no ball matches")
	}
}

func TestNodeSetUnknownVariable(t *testing.T) {
	st := fig4(t)
	res := MatchPattern(st, twoCycle())
	if res.NodeSet("nope") != nil {
		t.Fatal("unknown variable should return nil")
	}
}
