// Package cluster is the scale-out layer over dualsimd: predicate-hash
// sharding, WAL-streaming read replicas, and (in the router
// sub-package) a scatter-gather query router.
//
// Placement: the unit of distribution is the whole predicate. A shard
// holds EVERY triple of its predicates, which is what makes per-branch
// query push-down exact — a dual-simulation result depends only on the
// triples of the predicates the pattern mentions, so a shard that owns
// all of them answers exactly like a single node would. The assignment
// is a pure function (FNV-1a of the predicate modulo the shard count):
// the router, the partitioner and every daemon agree on placement with
// zero coordination, at the price of re-sharding when N changes —
// acceptable for an analytical store that is re-partitioned offline.
package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"dualsim"
)

// ShardOf maps a predicate to its shard in [0, n): FNV-1a over the
// predicate bytes, reduced modulo the shard count. Implemented by hand
// (not hash/fnv) so the function is obviously identical wherever it is
// re-implemented — this exact constant pair is the contract between
// router and daemons.
func ShardOf(pred string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(pred); i++ {
		h ^= uint32(pred[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// ShardSpec identifies one shard of an N-way partitioning.
type ShardSpec struct {
	Index int // in [0, N)
	N     int // total shards, >= 1
}

func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.N) }

// Validate rejects out-of-range specs.
func (s ShardSpec) Validate() error {
	if s.N < 1 {
		return fmt.Errorf("cluster: shard count %d < 1", s.N)
	}
	if s.Index < 0 || s.Index >= s.N {
		return fmt.Errorf("cluster: shard index %d outside [0, %d)", s.Index, s.N)
	}
	return nil
}

// ParseShardSpec parses the "i/N" syntax of dualsimd's -shard flag.
func ParseShardSpec(s string) (ShardSpec, error) {
	idx, n, ok := strings.Cut(s, "/")
	if !ok {
		return ShardSpec{}, fmt.Errorf("cluster: shard spec %q is not i/N", s)
	}
	i, err := strconv.Atoi(strings.TrimSpace(idx))
	if err != nil {
		return ShardSpec{}, fmt.Errorf("cluster: shard index in %q: %v", s, err)
	}
	total, err := strconv.Atoi(strings.TrimSpace(n))
	if err != nil {
		return ShardSpec{}, fmt.Errorf("cluster: shard count in %q: %v", s, err)
	}
	spec := ShardSpec{Index: i, N: total}
	if err := spec.Validate(); err != nil {
		return ShardSpec{}, err
	}
	return spec, nil
}

// PartitionTriples splits triples into n slices by predicate placement.
// Triple order within a shard follows input order.
func PartitionTriples(ts []dualsim.Triple, n int) ([][]dualsim.Triple, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: shard count %d < 1", n)
	}
	out := make([][]dualsim.Triple, n)
	for _, t := range ts {
		i := ShardOf(t.P, n)
		out[i] = append(out[i], t)
	}
	return out, nil
}

// ShardStore builds the shard's slice of a full store: every triple
// whose predicate places on spec.Index. The result is a fully built,
// independent store — the state a shard daemon serves.
func ShardStore(st *dualsim.Store, spec ShardSpec) (*dualsim.Store, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var keep []dualsim.Triple
	for _, t := range st.Triples() {
		if ShardOf(t.P, spec.N) == spec.Index {
			keep = append(keep, t)
		}
	}
	return dualsim.FromTriples(keep)
}

// SplitDelta slices a delta by predicate placement — the router's write
// path: shard i receives exactly the adds/dels of its own predicates.
// Slices for shards the delta does not touch are zero-valued.
func SplitDelta(adds, dels []dualsim.Triple, n int) ([]dualsim.Delta, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: shard count %d < 1", n)
	}
	out := make([]dualsim.Delta, n)
	for _, t := range adds {
		i := ShardOf(t.P, n)
		out[i].Adds = append(out[i].Adds, t)
	}
	for _, t := range dels {
		i := ShardOf(t.P, n)
		out[i].Dels = append(out[i].Dels, t)
	}
	return out, nil
}
