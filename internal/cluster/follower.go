package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/wire"
)

// Follower is a WAL-streaming read replica of one primary dualsimd: it
// bootstraps a session from the primary's streamed snapshot, then tails
// GET /v1/wal and replays every record through the ordinary session
// Apply/Compact path — so a replica's epochs, plan cache and snapshots
// behave exactly like a primary's, just driven by the stream instead of
// clients. On an epoch gap (the primary checkpointed records away, or
// the stream skipped) it re-bootstraps and hot-swaps the session while
// the stale one keeps serving reads.
//
// The replica session is deliberately non-durable: its durability IS
// the primary's WAL, and re-bootstrapping is always cheaper and safer
// than reconciling a second log against the primary's.
type Follower struct {
	c        *client.Client
	url      string
	maxLag   uint64
	pollWait time.Duration
	retry    time.Duration
	onSwap   func(*dualsim.DB)
	logf     func(string, ...any)
	sessOpts []dualsim.Option

	db           atomic.Pointer[dualsim.DB]
	primaryEpoch atomic.Uint64
	bootstraps   atomic.Int64
	applied      atomic.Int64
	gaps         atomic.Int64
}

// FollowerOption configures a Follower.
type FollowerOption func(*Follower) error

// WithMaxLag sets the bounded-staleness readiness threshold: the
// replica reports not-ready while it is more than n epochs behind the
// primary (default 0 — only a fully caught-up replica is ready).
func WithMaxLag(n uint64) FollowerOption {
	return func(f *Follower) error {
		f.maxLag = n
		return nil
	}
}

// WithPollWait sets the long-poll window passed to GET /v1/wal
// (default 2s): how long the primary parks an empty tail before
// answering, which bounds how stale an idle replica's primary-epoch
// view can get.
func WithPollWait(d time.Duration) FollowerOption {
	return func(f *Follower) error {
		if d < 0 {
			return fmt.Errorf("cluster: negative poll wait %v", d)
		}
		f.pollWait = d
		return nil
	}
}

// WithRetryWait sets the backoff after a failed bootstrap or tail
// round (default 500ms).
func WithRetryWait(d time.Duration) FollowerOption {
	return func(f *Follower) error {
		if d <= 0 {
			return fmt.Errorf("cluster: retry wait must be positive, got %v", d)
		}
		f.retry = d
		return nil
	}
}

// WithOnSwap installs the session hot-swap hook: called with each fresh
// session after a (re-)bootstrap, before Run continues tailing. A
// serving daemon wires server.SwapDB through this.
func WithOnSwap(fn func(*dualsim.DB)) FollowerOption {
	return func(f *Follower) error {
		if fn == nil {
			return fmt.Errorf("cluster: nil swap hook")
		}
		f.onSwap = fn
		return nil
	}
}

// WithLogf directs the follower's progress/retry lines (default: silent).
func WithLogf(fn func(string, ...any)) FollowerOption {
	return func(f *Follower) error {
		if fn == nil {
			return fmt.Errorf("cluster: nil log function")
		}
		f.logf = fn
		return nil
	}
}

// WithSessionOptions forwards session options (plan cache size, …) to
// every session the follower opens. WithDataDir is rejected at open
// time — replicas re-bootstrap, they do not recover.
func WithSessionOptions(opts ...dualsim.Option) FollowerOption {
	return func(f *Follower) error {
		f.sessOpts = append(f.sessOpts, opts...)
		return nil
	}
}

// WithFollowerHTTP forwards client options (transport, retries) to the
// follower's primary connection.
func WithFollowerHTTP(opts ...client.Option) FollowerOption {
	return func(f *Follower) error {
		c, err := client.New(f.url, opts...)
		if err != nil {
			return err
		}
		f.c = c
		return nil
	}
}

// Follow builds a follower of the primary at primaryURL. Nothing is
// fetched yet — Bootstrap (or Run, which bootstraps as needed) makes
// the first contact.
func Follow(primaryURL string, opts ...FollowerOption) (*Follower, error) {
	c, err := client.New(primaryURL)
	if err != nil {
		return nil, err
	}
	f := &Follower{
		c:        c,
		url:      primaryURL,
		pollWait: 2 * time.Second,
		retry:    500 * time.Millisecond,
		logf:     func(string, ...any) {},
	}
	for _, opt := range opts {
		if err := opt(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// DB returns the replica's current session (nil before the first
// bootstrap). The pointer swaps atomically on re-bootstrap; resolve it
// once per request like server.Server does.
func (f *Follower) DB() *dualsim.DB { return f.db.Load() }

// Ready is the replica's readiness hook (server.WithReadiness): an
// error before the first bootstrap completes, and while the replica
// lags more than the staleness bound behind the primary's last known
// epoch.
func (f *Follower) Ready() error {
	db := f.db.Load()
	if db == nil {
		return errors.New("cluster: replica bootstrapping")
	}
	if p, cur := f.primaryEpoch.Load(), db.Epoch(); p > cur && p-cur > f.maxLag {
		return fmt.Errorf("cluster: replica at epoch %d lags the primary at %d beyond the bound of %d", cur, p, f.maxLag)
	}
	return nil
}

// FollowerStats is a point-in-time view of replication progress.
//
//dualsim:wire
type FollowerStats struct {
	// Epoch is the replica's session epoch (0 before bootstrap).
	Epoch uint64 `json:"epoch"`
	// PrimaryEpoch is the primary's epoch as of the last header seen.
	PrimaryEpoch uint64 `json:"primaryEpoch"`
	// Lag is max(0, PrimaryEpoch-Epoch).
	Lag uint64 `json:"lag"`
	// Bootstraps counts snapshot bootstraps (1 after a clean start;
	// more after epoch gaps forced re-bootstraps).
	Bootstraps int64 `json:"bootstraps"`
	// Applied counts WAL records replayed into the session.
	Applied int64 `json:"applied"`
	// Gaps counts epoch gaps that forced a re-bootstrap.
	Gaps int64 `json:"gaps"`
}

// Stats returns the current replication counters.
func (f *Follower) Stats() FollowerStats {
	s := FollowerStats{
		PrimaryEpoch: f.primaryEpoch.Load(),
		Bootstraps:   f.bootstraps.Load(),
		Applied:      f.applied.Load(),
		Gaps:         f.gaps.Load(),
	}
	if db := f.db.Load(); db != nil {
		s.Epoch = db.Epoch()
	}
	if s.PrimaryEpoch > s.Epoch {
		s.Lag = s.PrimaryEpoch - s.Epoch
	}
	return s
}

// Bootstrap downloads the primary's snapshot, opens a fresh session at
// its epoch and hot-swaps it in. The previous session (if any) is NOT
// closed: in-flight reads may still hold its pinned snapshots, and a
// non-durable session holds nothing the GC cannot reclaim.
func (f *Follower) Bootstrap(ctx context.Context) error {
	st, epoch, err := f.c.BootstrapSnapshot(ctx)
	if err != nil {
		return fmt.Errorf("cluster: bootstrap snapshot: %w", err)
	}
	db, err := dualsim.OpenAt(st, epoch, f.sessOpts...)
	if err != nil {
		return fmt.Errorf("cluster: bootstrap session: %w", err)
	}
	f.db.Store(db)
	f.bootstraps.Add(1)
	// The snapshot proves the primary reached this epoch; the next tail
	// header will refresh the exact value.
	if epoch > f.primaryEpoch.Load() {
		f.primaryEpoch.Store(epoch)
	}
	if f.onSwap != nil {
		f.onSwap(db)
	}
	f.logf("cluster: bootstrapped replica of %s at epoch %d", f.url, epoch)
	return nil
}

// Run is the replication loop: bootstrap when needed, then tail the
// primary's WAL and replay each record, re-bootstrapping on epoch gaps.
// It returns only when ctx is cancelled (transient failures back off
// and retry — a replica's job is to keep following).
func (f *Follower) Run(ctx context.Context) error {
	needBootstrap := f.db.Load() == nil
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if needBootstrap {
			if err := f.Bootstrap(ctx); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				f.logf("cluster: bootstrap failed (will retry): %v", err)
				if !sleepCtx(ctx, f.retry) {
					return ctx.Err()
				}
				continue
			}
			needBootstrap = false
		}
		err := f.tailOnce(ctx)
		switch {
		case err == nil:
		case ctx.Err() != nil:
			return ctx.Err()
		case errors.Is(err, client.ErrWALGap):
			// The records between our epoch and the primary's surviving
			// WAL are gone (checkpoint truncation), or the stream itself
			// skipped — either way replaying would diverge. Re-bootstrap;
			// the stale session keeps serving reads meanwhile.
			f.gaps.Add(1)
			f.logf("cluster: epoch gap, re-bootstrapping: %v", err)
			needBootstrap = true
		default:
			f.logf("cluster: tail failed (will retry): %v", err)
			if !sleepCtx(ctx, f.retry) {
				return ctx.Err()
			}
		}
	}
}

// tailOnce runs one tail round: fetch records after the current epoch
// (long-polling when the primary is idle) and replay them in order.
func (f *Follower) tailOnce(ctx context.Context) error {
	db := f.db.Load()
	ws, err := f.c.TailWAL(ctx, db.Epoch(), f.pollWait)
	if err != nil {
		return err
	}
	defer ws.Close()
	f.primaryEpoch.Store(ws.PrimaryEpoch())
	for ws.Next() {
		if err := f.applyEvent(ctx, db, ws.Event()); err != nil {
			return err
		}
	}
	return ws.Err()
}

// applyEvent replays one WAL record with the epoch discipline replicas
// live by: at-or-below the current epoch is a duplicate (a re-sent tail
// after a reconnect) and is skipped; anything but exactly current+1 is
// a gap (reported as client.ErrWALGap so Run re-bootstraps); and after
// the replay the session MUST sit at the record's epoch, or the replica
// has diverged from the primary.
func (f *Follower) applyEvent(ctx context.Context, db *dualsim.DB, ev client.WALEvent) error {
	cur := db.Epoch()
	if ev.Epoch <= cur {
		return nil
	}
	if ev.Epoch != cur+1 {
		return fmt.Errorf("%w: tail at epoch %d jumps to %d", client.ErrWALGap, cur, ev.Epoch)
	}
	switch ev.Kind {
	case wire.WALApply:
		var d dualsim.Delta
		for _, t := range ev.Adds {
			d.Adds = append(d.Adds, t.ToTriple())
		}
		for _, t := range ev.Dels {
			d.Dels = append(d.Dels, t.ToTriple())
		}
		if _, err := db.Apply(ctx, d); err != nil {
			return fmt.Errorf("cluster: replaying apply of epoch %d: %w", ev.Epoch, err)
		}
	case wire.WALCompact:
		if _, err := db.Compact(ctx); err != nil {
			return fmt.Errorf("cluster: replaying compact of epoch %d: %w", ev.Epoch, err)
		}
	default:
		return fmt.Errorf("cluster: unknown WAL event kind %q at epoch %d", ev.Kind, ev.Epoch)
	}
	if got := db.Epoch(); got != ev.Epoch {
		return fmt.Errorf("cluster: replica diverged: record of epoch %d left the session at %d", ev.Epoch, got)
	}
	f.applied.Add(1)
	return nil
}

// sleepCtx sleeps d or until ctx cancels; reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
