package cluster

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/queries"
	"dualsim/internal/server"
	"dualsim/internal/wire"
)

// newPrimary starts a durable dualsimd over Fig. 1(a) — the only kind a
// replica can follow (WAL streaming needs a log).
func newPrimary(t *testing.T) (*dualsim.DB, *httptest.Server) {
	t.Helper()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st, dualsim.WithDataDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(db)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		db.Close()
	})
	return db, hs
}

func applyOne(t *testing.T, db *dualsim.DB, s, p, o string) {
	t.Helper()
	if _, err := db.Apply(context.Background(), dualsim.Delta{Adds: []dualsim.Triple{dualsim.T(s, p, o)}}); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFollowerBootstrapAndCatchUp(t *testing.T) {
	db, hs := newPrimary(t)
	applyOne(t, db, "N._Roeg", "directed", "Walkabout") // epoch 1 before the replica exists

	var swaps atomic.Int64
	f, err := Follow(hs.URL,
		WithPollWait(50*time.Millisecond),
		WithRetryWait(20*time.Millisecond),
		WithOnSwap(func(*dualsim.DB) { swaps.Add(1) }),
		WithLogf(t.Logf),
	)
	if err != nil {
		t.Fatal(err)
	}
	if f.DB() != nil {
		t.Fatal("replica has a session before bootstrap")
	}
	if err := f.Ready(); err == nil {
		t.Fatal("replica ready before bootstrap")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	waitFor(t, "bootstrap", func() bool { return f.DB() != nil })
	if got := f.DB().Epoch(); got != 1 {
		t.Fatalf("bootstrapped at epoch %d, want 1", got)
	}
	if got := swaps.Load(); got != 1 {
		t.Fatalf("swap hook ran %d times, want 1", got)
	}

	// Live catch-up: records applied on the primary after the bootstrap
	// must stream through the tail. (A Compact would NOT stream: on a
	// durable primary it auto-checkpoints, truncating the WAL, so
	// replicas cross it by re-bootstrapping — covered below.)
	applyOne(t, db, "N._Roeg", "awarded", "BAFTA_Awards")    // epoch 2
	applyOne(t, db, "S._Kubrick", "directed", "The_Shining") // epoch 3
	waitFor(t, "catch-up to epoch 3", func() bool { return f.DB().Epoch() == 3 })

	if err := f.Ready(); err != nil {
		t.Fatalf("caught-up replica not ready: %v", err)
	}
	s := f.Stats()
	if s.Bootstraps != 1 || s.Gaps != 0 || s.Applied < 2 {
		t.Fatalf("stats %+v: want 1 bootstrap, 0 gaps, >=2 applied", s)
	}

	// The replica's answers must match the primary's, epoch and rows.
	res, _, err := f.DB().Snapshot().Query(context.Background(), `SELECT * WHERE { ?d <directed> ?m . ?d <awarded> ?a . }`)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.Snapshot().Query(context.Background(), `SELECT * WHERE { ?d <directed> ?m . ?d <awarded> ?a . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want.Rows) || len(res.Rows) == 0 {
		t.Fatalf("replica answered %d rows, primary %d", len(res.Rows), len(want.Rows))
	}

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
}

// Satellite (d), integration half: a replica whose tail position was
// checkpointed away must re-bootstrap, never apply across the gap.
func TestFollowerEpochGapRebootstraps(t *testing.T) {
	db, hs := newPrimary(t)
	applyOne(t, db, "N._Roeg", "directed", "Walkabout") // epoch 1

	f, err := Follow(hs.URL, WithPollWait(50*time.Millisecond), WithRetryWait(20*time.Millisecond), WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Bootstrap(context.Background()); err != nil { // replica parks at epoch 1
		t.Fatal(err)
	}

	// The primary moves on and checkpoints: the WAL records between
	// epoch 1 and now are truncated away.
	applyOne(t, db, "N._Roeg", "awarded", "BAFTA_Awards")    // epoch 2
	applyOne(t, db, "S._Kubrick", "directed", "The_Shining") // epoch 3
	if _, err := db.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = f.Run(ctx) }()

	waitFor(t, "re-bootstrap past the gap", func() bool {
		s := f.Stats()
		return s.Gaps >= 1 && s.Bootstraps >= 2 && s.Epoch == db.Epoch()
	})
	if err := f.Ready(); err != nil {
		t.Fatalf("recovered replica not ready: %v", err)
	}
}

// applyEvent's epoch discipline, record by record: duplicates skipped,
// gaps refused with ErrWALGap, the in-order record applied.
func TestFollowerApplyEventEpochDiscipline(t *testing.T) {
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	f := &Follower{}
	ctx := context.Background()
	add := []wire.Triple{wire.FromTriple(dualsim.T("N._Roeg", "directed", "Walkabout"))}

	// Epoch 0 record against an epoch-0 session: duplicate, skipped.
	if err := f.applyEvent(ctx, db, client.WALEvent{Kind: wire.WALApply, Epoch: 0, Adds: add}); err != nil {
		t.Fatalf("duplicate record: %v", err)
	}
	if db.Epoch() != 0 || f.applied.Load() != 0 {
		t.Fatalf("duplicate was applied: epoch %d, applied %d", db.Epoch(), f.applied.Load())
	}

	// Epoch 2 against epoch 0: a gap — must refuse, not apply.
	err = f.applyEvent(ctx, db, client.WALEvent{Kind: wire.WALApply, Epoch: 2, Adds: add})
	if !errors.Is(err, client.ErrWALGap) {
		t.Fatalf("gap record returned %v, want ErrWALGap", err)
	}
	if db.Epoch() != 0 {
		t.Fatalf("gap record moved the session to epoch %d", db.Epoch())
	}

	// Epoch 1: exactly next — applies and lands the session there.
	if err := f.applyEvent(ctx, db, client.WALEvent{Kind: wire.WALApply, Epoch: 1, Adds: add}); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != 1 || f.applied.Load() != 1 {
		t.Fatalf("in-order record: epoch %d, applied %d", db.Epoch(), f.applied.Load())
	}

	// Unknown kinds are a divergence signal, not a silent skip.
	if err := f.applyEvent(ctx, db, client.WALEvent{Kind: "mystery", Epoch: 2}); err == nil {
		t.Fatal("unknown record kind accepted")
	}
}

// Bounded staleness: Ready must flip as the lag crosses the bound.
func TestFollowerReadyStaleness(t *testing.T) {
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.OpenAt(st, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	f := &Follower{maxLag: 2}
	f.db.Store(db)
	for primary, wantReady := range map[uint64]bool{5: true, 7: true, 8: false} {
		f.primaryEpoch.Store(primary)
		if err := f.Ready(); (err == nil) != wantReady {
			t.Errorf("replica at 5, primary at %d, maxLag 2: Ready() = %v", primary, err)
		}
	}
}
