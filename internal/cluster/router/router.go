// Package router implements the scatter-gather front end of a sharded
// dualsimd cluster (cmd/dualsimrouter). It speaks the same wire
// protocol as a single dualsimd, so clients cannot tell a cluster from
// one node:
//
//	POST /v1/query    scatter to the owning shards, merge, answer
//	POST /v1/batch    each member routed independently
//	POST /v1/apply    delta split by predicate placement, applied per shard
//	GET  /v1/snapshot aggregated epoch + store shape
//	GET  /v1/cluster  per-shard endpoint health, epochs, latencies
//	GET  /healthz     router liveness
//	GET  /readyz      503 until every shard has a routable endpoint
//	GET  /metrics     router + per-endpoint series
//
// # Routing correctness
//
// The query decomposes at TOP-LEVEL UNIONs only (topBranches). For each
// branch the router collects the predicates its patterns mention:
//
//   - all on one shard → push-down: the branch is sent verbatim to that
//     shard. Exact, because a shard holds EVERY triple of its
//     predicates and a dual-simulation answer depends only on the
//     triples of the mentioned predicates — the shard sees the same
//     effective store a single node would.
//
//   - spread over several shards → data-gather: the router exports the
//     predicate slices (GET /v1/export), assembles a scratch store and
//     evaluates the branch locally with the ordinary dualsim pipeline.
//     Shipping partial RESULTS instead would be wrong: a cross-shard
//     join cannot be merged row-wise, and OPTIONAL over partial data
//     manufactures spurious unextended rows.
//
// Deeper UNIONs stay inside their branch and are evaluated natively by
// whichever engine runs the branch. Branch results merge exactly like
// the engine's union operator: columns fold left-to-right (left vars,
// then unseen right vars), rows are padded to the merged schema and
// deduplicated (set semantics). The merged epoch is the maximum over
// the shard epochs that answered — per-shard reads are individually
// epoch-consistent, and X-Dualsim-Epoch reports the freshest of them.
//
// # Replica routing
//
// Reads load-balance round-robin over a shard's caught-up endpoints:
// up, ready (200 on /readyz), and within the staleness bound of the
// shard's freshest known epoch. Writes always go to the primary. A
// failed read fails over to the next candidate once, marking the dead
// endpoint down until a probe revives it.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/buildinfo"
	"dualsim/internal/cluster"
	"dualsim/internal/metrics"
	"dualsim/internal/sparql"
	qstats "dualsim/internal/stats"
	"dualsim/internal/storage"
	"dualsim/internal/trace"
	"dualsim/internal/wire"
)

// maxBodyBytes mirrors the dualsimd request-body bound.
const maxBodyBytes = 64 << 20

// Option configures a Router.
type Option func(*config) error

type config struct {
	maxLag         uint64
	probeEvery     time.Duration
	probeTimeout   time.Duration
	defaultTimeout time.Duration
	registry       *metrics.Registry
	clientOpts     []client.Option
	slowLogSize    int
	slowThreshold  time.Duration
}

// WithMaxLag sets the bounded-staleness routing threshold: a replica
// whose last probed epoch is more than n behind the shard's freshest
// known epoch is skipped (default 0 — only fully caught-up endpoints
// serve reads).
func WithMaxLag(n uint64) Option {
	return func(c *config) error {
		c.maxLag = n
		return nil
	}
}

// WithProbeEvery sets the health-probe period (default 1s).
func WithProbeEvery(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("router: probe period must be positive, got %v", d)
		}
		c.probeEvery = d
		return nil
	}
}

// WithProbeTimeout bounds one /readyz probe round-trip (default 2s).
func WithProbeTimeout(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("router: probe timeout must be positive, got %v", d)
		}
		c.probeTimeout = d
		return nil
	}
}

// WithDefaultTimeout bounds requests without their own timeoutMs
// (default: unbounded).
func WithDefaultTimeout(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("router: negative default timeout %v", d)
		}
		c.defaultTimeout = d
		return nil
	}
}

// WithRegistry shares a metrics registry instead of creating one.
func WithRegistry(r *metrics.Registry) Option {
	return func(c *config) error {
		if r == nil {
			return fmt.Errorf("router: nil metrics registry")
		}
		c.registry = r
		return nil
	}
}

// WithSlowQueryLog keeps the n most recent routed queries slower than
// threshold in a ring served at GET /v1/debug/slow. Enabling the log
// traces every query internally (so a slow entry carries its full
// fan-out span tree), but the trace is only returned to callers that
// asked for one. Default: off.
func WithSlowQueryLog(n int, threshold time.Duration) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("router: slow-query log size must be positive, got %d", n)
		}
		if threshold < 0 {
			return fmt.Errorf("router: negative slow-query threshold %v", threshold)
		}
		c.slowLogSize, c.slowThreshold = n, threshold
		return nil
	}
}

// WithClientOptions forwards options to every shard connection.
func WithClientOptions(opts ...client.Option) Option {
	return func(c *config) error {
		c.clientOpts = append(c.clientOpts, opts...)
		return nil
	}
}

// endpoint is the router's live view of one shard daemon.
type endpoint struct {
	url  string
	role string // "primary" or "replica"
	c    *client.Client

	mu        sync.Mutex
	up        bool
	ready     bool
	epoch     uint64
	latencyMs float64
	lastErr   string
	probed    bool
}

func (e *endpoint) status() wire.EndpointStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return wire.EndpointStatus{
		URL: e.url, Role: e.role,
		Up: e.up, Ready: e.ready, Epoch: e.epoch,
		LatencyMs: e.latencyMs, Error: e.lastErr,
	}
}

// markDown records a request-path failure so routing skips the
// endpoint until the next successful probe.
func (e *endpoint) markDown(err error) {
	e.mu.Lock()
	e.up, e.ready, e.lastErr = false, false, err.Error()
	e.mu.Unlock()
}

// shard is one partition's endpoint group: the primary first, then
// replicas; rr drives round-robin read balancing.
type shard struct {
	eps []*endpoint
	mu  sync.Mutex
	rr  int
}

func (s *shard) primary() *endpoint { return s.eps[0] }

// maxEpoch is the freshest epoch any endpoint of the shard has shown —
// the reference point of the staleness bound.
func (s *shard) maxEpoch() uint64 {
	var m uint64
	for _, e := range s.eps {
		e.mu.Lock()
		if e.epoch > m {
			m = e.epoch
		}
		e.mu.Unlock()
	}
	return m
}

// pick returns read candidates in routing order: caught-up ready
// endpoints round-robin first, then (when none) the primary if it is
// at least up, then any up endpoint — a degraded read beats no read.
func (s *shard) pick(maxLag uint64) []*endpoint {
	fresh := s.maxEpoch()
	var ready, up []*endpoint
	for _, e := range s.eps {
		e.mu.Lock()
		switch {
		case e.up && e.ready && e.epoch+maxLag >= fresh:
			ready = append(ready, e)
		case e.up:
			up = append(up, e)
		}
		e.mu.Unlock()
	}
	if len(ready) > 1 {
		s.mu.Lock()
		s.rr++
		off := s.rr % len(ready)
		s.mu.Unlock()
		ready = append(ready[off:], ready[:off]...)
	}
	if len(ready) > 0 {
		return append(ready, up...)
	}
	return up
}

// Router fans queries over the shards of one cluster. Construct with
// New, start Probes (Run) and mount it as an http.Handler.
type Router struct {
	shards []*shard
	cfg    config
	mux    *http.ServeMux
	reg    *metrics.Registry
	slow   *trace.SlowLog

	requests  *metrics.Counter
	queries   *metrics.Counter
	batches   *metrics.Counter
	applies   *metrics.Counter
	errors    *metrics.Counter
	rows      *metrics.Counter
	pushdowns *metrics.Counter
	gathers   *metrics.Counter
	failovers *metrics.Counter
	draining  *metrics.Gauge
	latency   *metrics.Histogram
}

// New builds a router over shardEndpoints: element i lists shard i's
// daemons, primary first, then read replicas. Shard count is fixed at
// construction — it must match the partitioning the daemons serve.
func New(shardEndpoints [][]string, opts ...Option) (*Router, error) {
	if len(shardEndpoints) == 0 {
		return nil, fmt.Errorf("router: no shards")
	}
	cfg := config{
		probeEvery:   time.Second,
		probeTimeout: 2 * time.Second,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	reg := cfg.registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	r := &Router{
		cfg: cfg,
		mux: http.NewServeMux(),
		reg: reg,

		requests:  reg.Counter("dualsimrouter_requests_total", "HTTP requests received"),
		queries:   reg.Counter("dualsimrouter_queries_total", "queries routed (incl. batch members)"),
		batches:   reg.Counter("dualsimrouter_batches_total", "batch requests routed"),
		applies:   reg.Counter("dualsimrouter_applies_total", "apply requests split over shards"),
		errors:    reg.Counter("dualsimrouter_errors_total", "requests answered with a non-2xx status"),
		rows:      reg.Counter("dualsimrouter_rows_total", "merged result rows returned"),
		pushdowns: reg.Counter("dualsimrouter_pushdowns_total", "single-shard branches pushed down verbatim"),
		gathers:   reg.Counter("dualsimrouter_gathers_total", "cross-shard branches evaluated via data gather"),
		failovers: reg.Counter("dualsimrouter_failovers_total", "reads failed over to another endpoint"),
		draining:  reg.Gauge("dualsimrouter_draining", "1 while the router is draining for shutdown"),
		latency:   reg.Histogram("dualsimrouter_request_seconds", "request latency", metrics.DefLatencyBuckets),
	}
	for si, urls := range shardEndpoints {
		if len(urls) == 0 {
			return nil, fmt.Errorf("router: shard %d has no endpoints", si)
		}
		sh := &shard{}
		for ei, u := range urls {
			c, err := client.New(u, cfg.clientOpts...)
			if err != nil {
				return nil, fmt.Errorf("router: shard %d endpoint %q: %w", si, u, err)
			}
			role := "replica"
			if ei == 0 {
				role = "primary"
			}
			ep := &endpoint{url: strings.TrimRight(u, "/"), role: role, c: c}
			sh.eps = append(sh.eps, ep)
			registerEndpointGauges(reg, si, ei, role, ep)
		}
		r.shards = append(r.shards, sh)
	}
	reg.GaugeFunc("dualsimrouter_shards", "shards this router fans over", func() float64 {
		return float64(len(r.shards))
	})
	r.slow = trace.NewSlowLog(cfg.slowLogSize, cfg.slowThreshold)
	bi := buildinfo.Get()
	reg.InfoGauge("dualsim_build_info", "build identity of this binary (constant 1)", map[string]string{
		"version": bi.Version, "revision": bi.Revision, "goversion": bi.GoVersion,
	})

	r.mux.HandleFunc("POST /v1/query", r.handleQuery)
	r.mux.HandleFunc("POST /v1/batch", r.handleBatch)
	r.mux.HandleFunc("POST /v1/apply", r.handleApply)
	r.mux.HandleFunc("GET /v1/snapshot", r.handleSnapshot)
	r.mux.HandleFunc("GET /v1/cluster", r.handleCluster)
	r.mux.HandleFunc("GET /v1/debug/slow", r.handleSlow)
	r.mux.HandleFunc("GET /v1/debug/statements", r.handleStatements)
	r.mux.HandleFunc("GET /healthz", r.handleHealth)
	r.mux.HandleFunc("GET /readyz", r.handleReady)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	return r, nil
}

// registerEndpointGauges exposes one endpoint's probe state as flat
// per-endpoint series (the registry is label-free; the name carries the
// shard index and role).
func registerEndpointGauges(reg *metrics.Registry, si, ei int, role string, ep *endpoint) {
	prefix := fmt.Sprintf("dualsimrouter_shard%d_%s", si, role)
	if role == "replica" && ei > 1 {
		prefix = fmt.Sprintf("%s%d", prefix, ei-1)
	}
	reg.GaugeFunc(prefix+"_up", "endpoint answered its last probe", func() float64 {
		if ep.status().Up {
			return 1
		}
		return 0
	})
	reg.GaugeFunc(prefix+"_ready", "endpoint is routable (200 on /readyz)", func() float64 {
		if ep.status().Ready {
			return 1
		}
		return 0
	})
	reg.GaugeFunc(prefix+"_epoch", "endpoint epoch at the last probe", func() float64 {
		return float64(ep.status().Epoch)
	})
	reg.GaugeFunc(prefix+"_probe_latency_ms", "last probe round-trip in milliseconds", func() float64 {
		return ep.status().LatencyMs
	})
}

// Handler returns the HTTP handler tree.
func (r *Router) Handler() http.Handler { return r }

// Registry returns the router's metrics registry.
func (r *Router) Registry() *metrics.Registry { return r.reg }

// StartDrain flips /readyz to 503 while requests keep being served —
// the shutdown half of the readiness split, mirroring dualsimd.
func (r *Router) StartDrain() { r.draining.Set(1) }

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.requests.Inc()
	start := time.Now()
	r.mux.ServeHTTP(w, req)
	r.latency.Observe(time.Since(start).Seconds())
}

// ---------------------------------------------------------------------------
// Probing

// Probe probes every endpoint once, concurrently. Exposed for tests
// and for a synchronous first probe before serving.
func (r *Router) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sh := range r.shards {
		for _, ep := range sh.eps {
			wg.Add(1)
			go func(ep *endpoint) {
				defer wg.Done()
				r.probeOne(ctx, ep)
			}(ep)
		}
	}
	wg.Wait()
}

func (r *Router) probeOne(ctx context.Context, ep *endpoint) {
	pctx, cancel := context.WithTimeout(ctx, r.cfg.probeTimeout)
	defer cancel()
	start := time.Now()
	resp, err := ep.c.Ready(pctx)
	lat := float64(time.Since(start).Microseconds()) / 1000

	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.probed, ep.latencyMs = true, lat
	switch {
	case err == nil:
		ep.up, ep.ready, ep.epoch, ep.lastErr = true, true, resp.Epoch, ""
	default:
		var ae *client.APIError
		if errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable {
			// The process answered: alive but declining traffic
			// (draining, bootstrapping, lagging).
			ep.up, ep.ready, ep.lastErr = true, false, ae.Message
		} else {
			ep.up, ep.ready, ep.lastErr = false, false, err.Error()
		}
	}
}

// Run probes all endpoints on the configured period until ctx cancels
// (first round immediately).
func (r *Router) Run(ctx context.Context) error {
	t := time.NewTicker(r.cfg.probeEvery)
	defer t.Stop()
	for {
		r.Probe(ctx)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// ---------------------------------------------------------------------------
// Query execution

// topBranches splits the expression at top-level UNIONs only, in
// left-to-right order. Unlike sparql.UnionFreeBranches it never
// rewrites below other operators: that rewriting over-approximates for
// UNION under OPTIONAL, which is fine for pruning but not for routing —
// the router needs branches whose results merge EXACTLY via the union
// operator.
func topBranches(e sparql.Expr) []sparql.Expr {
	if u, ok := e.(sparql.Union); ok {
		return append(topBranches(u.L), topBranches(u.R)...)
	}
	return []sparql.Expr{e}
}

// branchPreds returns the distinct predicates a branch mentions, in
// first-appearance order, and whether any predicate position holds a
// variable (unroutable — and rejected by the solver core anyway).
func branchPreds(e sparql.Expr) (preds []string, hasVarPred bool) {
	seen := make(map[string]bool)
	for _, tp := range sparql.Triples(e) {
		if tp.P.IsVar() || tp.P.Const == nil {
			return nil, true
		}
		if p := tp.P.Const.Value; !seen[p] {
			seen[p] = true
			preds = append(preds, p)
		}
	}
	return preds, false
}

// branchResult is one branch's decoded result, ready to merge.
type branchResult struct {
	vars  []string
	rows  [][]*string
	epoch uint64
}

// applyLimit slices the deduplicated merge to the query's LIMIT/OFFSET
// window. Rows are ordered canonically first (nil-first, then decoded
// term text), so the window is deterministic across routings — set
// semantics fixes no order, but a repeated query should not flap.
func (b *branchResult) applyLimit(limit, offset int) {
	if limit == 0 && offset == 0 {
		return
	}
	sort.Slice(b.rows, func(i, j int) bool {
		ri, rj := b.rows[i], b.rows[j]
		for k := range ri {
			li, lj := ri[k], rj[k]
			switch {
			case li == nil && lj == nil:
				continue
			case li == nil:
				return true
			case lj == nil:
				return false
			case *li != *lj:
				return *li < *lj
			}
		}
		return false
	})
	lo := offset
	if lo > len(b.rows) {
		lo = len(b.rows)
	}
	hi := len(b.rows)
	if limit > 0 && lo+limit < hi {
		hi = lo + limit
	}
	b.rows = b.rows[lo:hi]
}

// routedError carries an HTTP status through the execution path.
type routedError struct {
	status int
	msg    string
}

func (e *routedError) Error() string { return e.msg }

func failWith(status int, format string, args ...any) error {
	return &routedError{status: status, msg: fmt.Sprintf(format, args...)}
}

// execQuery routes one query end-to-end: decompose, execute each branch
// (push-down or gather), merge with union semantics. A LIMIT travels
// with each branch — truncating a branch to limit+offset distinct rows
// cannot starve the merged answer, because the post-merge dedup only
// shrinks row counts — and is re-applied (with the OFFSET) over the
// deduplicated merge.
func (r *Router) execQuery(ctx context.Context, src string) (*branchResult, error) {
	q, err := dualsim.ParseQuery(src)
	if err != nil {
		return nil, failWith(http.StatusBadRequest, "%v", err)
	}
	pushLimit := 0
	if q.Limit > 0 {
		pushLimit = q.Limit + q.Offset
	}
	branches := topBranches(q.Expr)
	results := make([]*branchResult, len(branches))
	errs := make([]error, len(branches))
	parent := trace.SpanFromContext(ctx)
	var wg sync.WaitGroup
	for i, b := range branches {
		wg.Add(1)
		go func(i int, b sparql.Expr) {
			defer wg.Done()
			bctx := ctx
			sp := parent.StartChild("branch")
			if sp != nil {
				sp.SetAttr("branch", strconv.Itoa(i))
				bctx = trace.ContextWithSpan(ctx, sp)
			}
			results[i], errs[i] = r.execBranch(bctx, b, pushLimit)
			sp.End()
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Fold with the engine's union: left vars first, then unseen right
	// vars; rows padded to the merged schema; full-row set dedup.
	merged := results[0]
	for _, br := range results[1:] {
		merged = mergeUnion(merged, br)
	}
	merged.applyLimit(q.Limit, q.Offset)
	return merged, nil
}

func (r *Router) execBranch(ctx context.Context, b sparql.Expr, pushLimit int) (*branchResult, error) {
	preds, hasVarPred := branchPreds(b)
	if hasVarPred {
		return nil, failWith(http.StatusBadRequest, "variable predicates are not supported")
	}
	src := "SELECT * WHERE " + b.String()
	if pushLimit > 0 {
		// Single-shard branches carry the bound all the way to the
		// shard's own executor (which pushes it further down its plan);
		// gather branches bound the local evaluation the same way.
		src += fmt.Sprintf(" LIMIT %d", pushLimit)
	}
	if len(preds) == 0 {
		// A constant-free pattern touches no shard; evaluate over an
		// empty scratch store for exact (usually empty) semantics.
		return evalLocal(ctx, nil, src, 0)
	}
	owners := make(map[int][]string) // shard index → its preds
	for _, p := range preds {
		i := cluster.ShardOf(p, len(r.shards))
		owners[i] = append(owners[i], p)
	}
	sp := trace.SpanFromContext(ctx)
	if len(owners) == 1 {
		for si := range owners {
			r.pushdowns.Inc()
			if sp != nil {
				sp.SetAttr("mode", "pushdown")
				sp.SetAttr("shard", strconv.Itoa(si))
			}
			return r.pushDown(ctx, si, src)
		}
	}
	r.gathers.Inc()
	sp.SetAttr("mode", "gather")
	return r.gather(ctx, owners, src)
}

// pushDown sends the branch verbatim to the single shard owning all its
// predicates, failing over across the shard's endpoints.
func (r *Router) pushDown(ctx context.Context, si int, src string) (*branchResult, error) {
	// A traced fan-out propagates its identity on the wire: the shard
	// Continues the trace under the same ID and ships its pipeline +
	// operator subtree back in the stats trailer, which stitches under
	// this branch's span — one tree shows the whole cluster request.
	sp := trace.SpanFromContext(ctx)
	var qopts []client.QueryOpt
	if tp := sp.Traceparent(); tp != "" {
		qopts = append(qopts, client.Trace(), client.Traceparent(tp))
	}
	var lastErr error
	for attempt, ep := range r.shards[si].pick(r.cfg.maxLag) {
		if attempt > 1 { // primary + one failover is enough
			break
		}
		if attempt > 0 {
			r.failovers.Inc()
		}
		out, err := ep.c.Query(ctx, src, qopts...)
		if err == nil {
			if sp != nil {
				sp.SetAttr("endpoint", ep.url)
				if out.Stats != nil {
					sp.Attach(out.Stats.Trace)
				}
			}
			return &branchResult{vars: out.Vars, rows: out.Rows, epoch: out.Epoch}, nil
		}
		lastErr = err
		if !routableFailure(ctx, err) {
			break
		}
		ep.markDown(err)
	}
	return nil, shardFailure(si, lastErr)
}

// gather exports each owning shard's predicate slices, assembles a
// scratch store and evaluates the branch locally — the exact path for
// branches whose predicates span shards.
func (r *Router) gather(ctx context.Context, owners map[int][]string, src string) (*branchResult, error) {
	type slice struct {
		triples []dualsim.Triple
		epoch   uint64
	}
	idxs := make([]int, 0, len(owners))
	for si := range owners {
		idxs = append(idxs, si)
	}
	sort.Ints(idxs)
	slices := make([]slice, len(idxs))
	errs := make([]error, len(idxs))
	sp := trace.SpanFromContext(ctx)
	var wg sync.WaitGroup
	for k, si := range idxs {
		wg.Add(1)
		go func(k, si int) {
			defer wg.Done()
			e0 := time.Now()
			out, err := r.exportFrom(ctx, si, owners[si])
			if err != nil {
				errs[k] = err
				return
			}
			if es := sp.Record("export", time.Since(e0)); es != nil {
				es.SetAttr("shard", strconv.Itoa(si))
				es.Add("triples", int64(len(out.Triples)))
			}
			ts := make([]dualsim.Triple, len(out.Triples))
			for i, t := range out.Triples {
				ts[i] = t.ToTriple()
			}
			slices[k] = slice{triples: ts, epoch: out.Epoch}
		}(k, si)
	}
	wg.Wait()
	var all []dualsim.Triple
	var epoch uint64
	for k, err := range errs {
		if err != nil {
			return nil, err
		}
		all = append(all, slices[k].triples...)
		if slices[k].epoch > epoch {
			epoch = slices[k].epoch
		}
	}
	return evalLocal(ctx, all, src, epoch)
}

// exportFrom fetches predicate slices from shard si with one failover.
func (r *Router) exportFrom(ctx context.Context, si int, preds []string) (*wire.ExportResponse, error) {
	var lastErr error
	for attempt, ep := range r.shards[si].pick(r.cfg.maxLag) {
		if attempt > 1 {
			break
		}
		if attempt > 0 {
			r.failovers.Inc()
		}
		out, err := ep.c.Export(ctx, preds)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if !routableFailure(ctx, err) {
			break
		}
		ep.markDown(err)
	}
	return nil, shardFailure(si, lastErr)
}

// routableFailure reports whether a shard call failed in a way another
// endpoint could fix (transport error, 5xx) — as opposed to a request
// the whole cluster would reject (4xx) or our own context expiring.
func routableFailure(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.StatusCode >= 500
	}
	return true // transport-level: the endpoint, not the request
}

// shardFailure maps a shard's terminal error onto the router's reply.
func shardFailure(si int, err error) error {
	if err == nil {
		return failWith(http.StatusServiceUnavailable, "shard %d has no live endpoint", si)
	}
	var ae *client.APIError
	if errors.As(err, &ae) && ae.StatusCode < 500 {
		// The shard judged the request itself; relay its verdict.
		return failWith(ae.StatusCode, "shard %d: %s", si, ae.Message)
	}
	return failWith(http.StatusBadGateway, "shard %d: %v", si, err)
}

// evalLocal runs a branch over a scratch store through the ordinary
// dualsim pipeline and decodes rows into wire form.
func evalLocal(ctx context.Context, ts []dualsim.Triple, src string, epoch uint64) (*branchResult, error) {
	st, err := dualsim.FromTriples(ts)
	if err != nil {
		return nil, failWith(http.StatusBadGateway, "assembling gather store: %v", err)
	}
	db, err := dualsim.Open(st)
	if err != nil {
		return nil, failWith(http.StatusBadGateway, "opening gather session: %v", err)
	}
	defer db.Close()
	res, _, err := db.Snapshot().Query(ctx, src)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, err
		}
		return nil, failWith(http.StatusBadRequest, "%v", err)
	}
	rows := make([][]*string, len(res.Rows))
	for i, row := range res.Rows {
		rows[i] = decodeRow(st, row)
	}
	return &branchResult{vars: append([]string{}, res.Vars...), rows: rows, epoch: epoch}, nil
}

func decodeRow(st *dualsim.Store, row []storage.NodeID) []*string {
	out := make([]*string, len(row))
	for i, v := range row {
		if v == dualsim.Unbound {
			continue
		}
		s := st.Term(v).String()
		out[i] = &s
	}
	return out
}

// mergeUnion folds two branch results with the engine's union operator
// semantics: unionVars column order, padded projection, set dedup.
func mergeUnion(l, r *branchResult) *branchResult {
	vars := append([]string{}, l.vars...)
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	for _, v := range r.vars {
		if _, ok := idx[v]; !ok {
			idx[v] = len(vars)
			vars = append(vars, v)
		}
	}
	project := func(rows [][]*string, rowVars []string) [][]*string {
		cols := make([]int, len(rowVars))
		for i, v := range rowVars {
			cols[i] = idx[v]
		}
		out := make([][]*string, len(rows))
		for i, row := range rows {
			p := make([]*string, len(vars))
			for j, v := range row {
				p[cols[j]] = v
			}
			out[i] = p
		}
		return out
	}
	merged := project(l.rows, l.vars)
	merged = append(merged, project(r.rows, r.vars)...)

	seen := make(map[string]bool, len(merged))
	dedup := merged[:0]
	var sb strings.Builder
	for _, row := range merged {
		sb.Reset()
		for _, v := range row {
			if v == nil {
				sb.WriteString("N")
			} else {
				sb.WriteString("V")
				sb.WriteString(strconv.Quote(*v))
			}
			sb.WriteByte('\x1f')
		}
		if k := sb.String(); !seen[k] {
			seen[k] = true
			dedup = append(dedup, row)
		}
	}
	epoch := l.epoch
	if r.epoch > epoch {
		epoch = r.epoch
	}
	return &branchResult{vars: vars, rows: dedup, epoch: epoch}
}

// ---------------------------------------------------------------------------
// Handlers

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	var qr wire.QueryRequest
	if !r.decodeBody(w, req, &qr) {
		return
	}
	if strings.TrimSpace(qr.Query) == "" {
		r.fail(w, http.StatusBadRequest, "empty query")
		return
	}
	r.queries.Inc()
	ctx, cancel := r.requestContext(req, qr.TimeoutMs)
	defer cancel()

	// A traced request gets a "router.fanout" root span; each branch
	// hangs under it with its mode and, for push-downs, the shard's own
	// subtree Continued under the same trace ID. The slow-query log
	// force-traces internally, but only explicit requests get the tree.
	wantTrace, tp := traceWanted(req, qr.Trace)
	var tr *trace.Trace
	if wantTrace || r.slow.Enabled() {
		if tp != "" {
			tr = trace.Continue(tp, "router.fanout")
		} else {
			tr = trace.New("router.fanout")
		}
		ctx = trace.ContextWithSpan(ctx, tr.Root())
		w.Header().Set("X-Dualsim-Trace", tr.ID())
	}

	start := time.Now()
	res, err := r.execQuery(ctx, qr.Query)
	if err != nil {
		r.failExec(w, err)
		return
	}
	rows, truncated := res.rows, false
	if qr.Limit > 0 && len(rows) > qr.Limit {
		// Applied post-merge only: a pushed-down limit would cut rows a
		// sibling branch's dedup or this merge still needed.
		rows, truncated = rows[:qr.Limit], true
	}
	r.rows.Add(int64(len(rows)))
	// The stats trailer is synthesized — there is no single execution
	// behind a scattered query. Epoch/Duration/Results are the merge's.
	// The fingerprint is the same normalized identity the shards
	// computed, so the trailer cross-references the merged
	// /v1/debug/statements view.
	fprint := qstats.OfSource(qr.Query)
	stats := &dualsim.ExecStats{
		Epoch: res.epoch, Duration: time.Since(start), Results: len(rows),
		Fingerprint: fprint.ID,
	}
	if tr != nil {
		tr.Root().End()
		if wantTrace {
			stats.Trace = tr.Root()
		}
		r.slow.Observe(trace.Entry{
			Time: time.Now(), TraceID: tr.ID(), Query: qr.Query,
			Fingerprint: fprint.ID,
			Duration:    stats.Duration, Epoch: res.epoch, Status: http.StatusOK,
			Trace: tr.Root(),
		})
	}

	w.Header().Set("X-Dualsim-Epoch", strconv.FormatUint(res.epoch, 10))
	if wantsStream(req, qr) {
		r.streamResult(w, res.vars, rows, stats, truncated)
		return
	}
	r.writeJSON(w, http.StatusOK, &wire.QueryResponse{
		Vars: res.vars, Rows: rows, Epoch: res.epoch, Truncated: truncated, Stats: stats,
	})
}

func (r *Router) streamResult(w http.ResponseWriter, vars []string, rows [][]*string, stats *dualsim.ExecStats, truncated bool) {
	w.Header().Set("Content-Type", wire.ContentTypeNDJSON)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	if err := enc.Encode(wire.Event{Kind: wire.EventHeader, Vars: vars, Epoch: stats.Epoch}); err != nil {
		return
	}
	for i, row := range rows {
		if err := enc.Encode(wire.Event{Kind: wire.EventRow, Values: row, Epoch: stats.Epoch}); err != nil {
			return
		}
		if flusher != nil && (i+1)%256 == 0 {
			flusher.Flush()
		}
	}
	_ = enc.Encode(wire.Event{Kind: wire.EventStats, Stats: stats, Rows: len(rows), Truncated: truncated, Epoch: stats.Epoch})
	if flusher != nil {
		flusher.Flush()
	}
}

func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	var br wire.BatchRequest
	if !r.decodeBody(w, req, &br) {
		return
	}
	if len(br.Queries) == 0 {
		r.fail(w, http.StatusBadRequest, "empty batch")
		return
	}
	r.batches.Inc()
	r.queries.Add(int64(len(br.Queries)))
	ctx, cancel := r.requestContext(req, br.TimeoutMs)
	defer cancel()

	start := time.Now()
	items := make([]wire.BatchItem, len(br.Queries))
	var wg sync.WaitGroup
	for i, src := range br.Queries {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			qstart := time.Now()
			res, err := r.execQuery(ctx, src)
			if err != nil {
				items[i] = wire.BatchItem{Error: err.Error()}
				return
			}
			rows, truncated := res.rows, false
			if br.Limit > 0 && len(rows) > br.Limit {
				rows, truncated = rows[:br.Limit], true
			}
			r.rows.Add(int64(len(rows)))
			items[i] = wire.BatchItem{
				Vars: res.vars, Rows: rows, Epoch: res.epoch, Truncated: truncated,
				Stats: &dualsim.ExecStats{
					Epoch: res.epoch, Duration: time.Since(qstart), Results: len(rows),
					Fingerprint: qstats.OfSource(src).ID,
				},
			}
		}(i, src)
	}
	wg.Wait()
	stats := dualsim.BatchStats{Requests: len(items), Duration: time.Since(start)}
	for _, it := range items {
		if it.Error != "" {
			stats.Failed++
			continue
		}
		stats.Results += len(it.Rows)
	}
	r.writeJSON(w, http.StatusOK, &wire.BatchResponse{Results: items, Stats: stats})
}

func (r *Router) handleApply(w http.ResponseWriter, req *http.Request) {
	var ar wire.ApplyRequest
	if !r.decodeBody(w, req, &ar) {
		return
	}
	r.applies.Inc()
	ctx, cancel := r.requestContext(req, 0)
	defer cancel()

	toTriples := func(ws []wire.Triple, slot string) ([]dualsim.Triple, bool) {
		out := make([]dualsim.Triple, len(ws))
		for i, t := range ws {
			if err := t.Validate(); err != nil {
				r.fail(w, http.StatusBadRequest, fmt.Sprintf("%s[%d]: %v", slot, i, err))
				return nil, false
			}
			out[i] = t.ToTriple()
		}
		return out, true
	}
	adds, ok := toTriples(ar.Adds, "adds")
	if !ok {
		return
	}
	dels, ok := toTriples(ar.Dels, "dels")
	if !ok {
		return
	}
	deltas, err := cluster.SplitDelta(adds, dels, len(r.shards))
	if err != nil {
		r.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	// Writes go to primaries only, and the split is NOT atomic across
	// shards: each slice is atomic on its own shard. A mid-apply reader
	// can see shard A's new epoch with shard B's old one — the same
	// boundary the per-branch routing already exposes, and why the
	// response reports every slice's outcome individually.
	out := wire.ClusterApplyResponse{}
	for si, d := range deltas {
		if len(d.Adds) == 0 && len(d.Dels) == 0 {
			continue
		}
		resp, err := r.shards[si].primary().c.ApplyDelta(ctx, d)
		if err != nil {
			r.failExec(w, shardFailure(si, err))
			return
		}
		out.Results = append(out.Results, wire.ShardApply{Shard: si, Stats: resp.Stats})
	}
	r.writeJSON(w, http.StatusOK, &out)
}

func (r *Router) handleSnapshot(w http.ResponseWriter, req *http.Request) {
	ctx, cancel := r.requestContext(req, 0)
	defer cancel()
	var out wire.SnapshotResponse
	for si := range r.shards {
		var snap *wire.SnapshotResponse
		var lastErr error
		for attempt, ep := range r.shards[si].pick(r.cfg.maxLag) {
			if attempt > 1 {
				break
			}
			s, err := ep.c.Snapshot(ctx)
			if err == nil {
				snap = s
				break
			}
			lastErr = err
			if !routableFailure(ctx, err) {
				break
			}
			ep.markDown(err)
		}
		if snap == nil {
			r.failExec(w, shardFailure(si, lastErr))
			return
		}
		if snap.Epoch > out.Epoch {
			out.Epoch = snap.Epoch
		}
		out.Triples += snap.Triples
		out.Nodes += snap.Nodes
		out.Predicates += snap.Predicates
		out.OverlaySize += snap.OverlaySize
		out.Compactions += snap.Compactions
	}
	w.Header().Set("X-Dualsim-Epoch", strconv.FormatUint(out.Epoch, 10))
	r.writeJSON(w, http.StatusOK, &out)
}

func (r *Router) handleCluster(w http.ResponseWriter, req *http.Request) {
	out := wire.ClusterStatusResponse{Shards: len(r.shards)}
	for si, sh := range r.shards {
		st := wire.ShardStatus{Shard: si}
		for _, ep := range sh.eps {
			st.Endpoints = append(st.Endpoints, ep.status())
		}
		out.Status = append(out.Status, st)
	}
	r.writeJSON(w, http.StatusOK, &out)
}

func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	status := "ok"
	if r.draining.Value() != 0 {
		status = "draining"
	}
	bi := buildinfo.Get()
	r.writeJSON(w, http.StatusOK, &wire.HealthResponse{
		Status: status, Version: bi.Version, Revision: bi.Revision,
	})
}

// handleSlow serves the slow-query ring, newest first. An empty ring
// (or a router built without WithSlowQueryLog) answers with an empty
// entry list rather than an error — the surface is for poking at.
func (r *Router) handleSlow(w http.ResponseWriter, req *http.Request) {
	r.writeJSON(w, http.StatusOK, &wire.SlowLogResponse{
		ThresholdMs: float64(r.slow.Threshold()) / float64(time.Millisecond),
		Total:       r.slow.Total(),
		Entries:     r.slow.Entries(),
	})
}

// handleStatements serves the cluster-wide workload statistics view:
// every shard's /v1/debug/statements table, merged by normalized
// statement fingerprint — calls, rows and bucketed latencies sum across
// shards, memory peaks take the max, quantiles re-interpolate from the
// merged buckets. ?reset=1 is forwarded, clearing every shard's table
// after this snapshot. One shard with no reachable endpoint fails the
// view (a partial merge would silently under-count).
func (r *Router) handleStatements(w http.ResponseWriter, req *http.Request) {
	ctx, cancel := r.requestContext(req, 0)
	defer cancel()
	reset := req.URL.Query().Get("reset") == "1" || req.URL.Query().Get("reset") == "true"
	groups := make([][]qstats.Statement, 0, len(r.shards))
	var evicted int64
	for si := range r.shards {
		var resp *wire.StatementsResponse
		var lastErr error
		for attempt, ep := range r.shards[si].pick(r.cfg.maxLag) {
			if attempt > 1 {
				break
			}
			var err error
			if reset {
				resp, err = ep.c.StatementsReset(ctx)
			} else {
				resp, err = ep.c.Statements(ctx)
			}
			if err == nil {
				break
			}
			resp, lastErr = nil, err
			if !routableFailure(ctx, err) {
				break
			}
			ep.markDown(err)
		}
		if resp == nil {
			r.failExec(w, shardFailure(si, lastErr))
			return
		}
		groups = append(groups, resp.Statements)
		evicted += resp.Evicted
	}
	merged := qstats.Merge(groups...)
	if merged == nil {
		merged = []qstats.Statement{}
	}
	r.writeJSON(w, http.StatusOK, &wire.StatementsResponse{
		Statements:    merged,
		Tracked:       len(merged),
		Evicted:       evicted,
		LatencyBounds: qstats.LatencyBounds,
		Shards:        len(groups),
	})
}

// readyErr: the router is routable when it is not draining and every
// shard has at least one routable endpoint.
func (r *Router) readyErr() error {
	if r.draining.Value() != 0 {
		return errors.New("draining")
	}
	for si, sh := range r.shards {
		if len(sh.pick(r.cfg.maxLag)) == 0 {
			return fmt.Errorf("shard %d has no routable endpoint", si)
		}
	}
	return nil
}

func (r *Router) handleReady(w http.ResponseWriter, req *http.Request) {
	if err := r.readyErr(); err != nil {
		status := "notready"
		if err.Error() == "draining" {
			status = "draining"
		}
		r.writeJSON(w, http.StatusServiceUnavailable, &wire.HealthResponse{Status: status, Reason: err.Error()})
		return
	}
	r.writeJSON(w, http.StatusOK, &wire.HealthResponse{Status: "ready"})
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = r.reg.WriteTo(w)
}

// ---------------------------------------------------------------------------
// Plumbing (mirrors internal/server)

func (r *Router) requestContext(req *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	d := r.cfg.defaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > 0 {
		return context.WithTimeout(req.Context(), d)
	}
	return context.WithCancel(req.Context())
}

func (r *Router) decodeBody(w http.ResponseWriter, req *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			r.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes; split the request", tooLarge.Limit))
			return false
		}
		r.fail(w, http.StatusBadRequest, "malformed request body: "+err.Error())
		return false
	}
	return true
}

func (r *Router) failExec(w http.ResponseWriter, err error) {
	var re *routedError
	switch {
	case errors.As(err, &re):
		r.fail(w, re.status, re.msg)
	case errors.Is(err, context.DeadlineExceeded):
		r.fail(w, http.StatusGatewayTimeout, "deadline exceeded: "+err.Error())
	case errors.Is(err, context.Canceled):
		r.errors.Inc()
		w.WriteHeader(499)
	default:
		r.fail(w, http.StatusBadGateway, err.Error())
	}
}

func (r *Router) fail(w http.ResponseWriter, status int, msg string) {
	if status >= 400 {
		r.errors.Inc()
	}
	r.writeJSON(w, status, &wire.ErrorResponse{Error: msg})
}

func (r *Router) writeJSON(w http.ResponseWriter, status int, body any) {
	buf, err := json.Marshal(body)
	if err != nil {
		http.Error(w, `{"error":"internal: response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", wire.ContentTypeJSON)
	}
	w.WriteHeader(status)
	_, _ = w.Write(buf)
	_, _ = io.WriteString(w, "\n")
}

// traceWanted mirrors the daemon's detection: a valid traceparent
// header, the request body's trace flag, or ?trace=1.
func traceWanted(req *http.Request, reqFlag bool) (want bool, tp string) {
	if h := req.Header.Get("traceparent"); h != "" {
		if _, ok := trace.ParseTraceparent(h); ok {
			return true, h
		}
	}
	if reqFlag {
		return true, ""
	}
	if v := req.URL.Query().Get("trace"); v == "1" || v == "true" {
		return true, ""
	}
	return false, ""
}

func wantsStream(req *http.Request, qr wire.QueryRequest) bool {
	if qr.Stream {
		return true
	}
	if v := req.URL.Query().Get("stream"); v == "1" || v == "true" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), wire.ContentTypeNDJSON)
}
