package router

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/cluster"
	"dualsim/internal/queries"
	"dualsim/internal/server"
	"dualsim/internal/wire"
)

// startShard serves one store as a daemon would.
func startShard(t *testing.T, st *dualsim.Store) *httptest.Server {
	t.Helper()
	db, err := dualsim.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(db)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		db.Close()
	})
	return hs
}

// startCluster partitions Fig. 1(a) over n shards and returns a probed
// router plus a single-node reference server over the full store.
func startCluster(t *testing.T, n int, opts ...Option) (*Router, *httptest.Server, *httptest.Server) {
	t.Helper()
	full, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	var endpoints [][]string
	for i := 0; i < n; i++ {
		st, err := cluster.ShardStore(full, cluster.ShardSpec{Index: i, N: n})
		if err != nil {
			t.Fatal(err)
		}
		endpoints = append(endpoints, []string{startShard(t, st).URL})
	}
	rt, err := New(endpoints, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rt.Probe(context.Background())
	rs := httptest.NewServer(rt.Handler())
	t.Cleanup(rs.Close)
	return rt, rs, startShard(t, full)
}

// canonRows renders rows order-independently for multiset comparison.
func canonRows(rows [][]*string) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for j, v := range row {
			if v == nil {
				parts[j] = "∅"
			} else {
				parts[j] = *v
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func queryVia(t *testing.T, url, src string) *wire.QueryResponse {
	t.Helper()
	c, err := client.New(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Query(context.Background(), src)
	if err != nil {
		t.Fatalf("query %q via %s: %v", src, url, err)
	}
	return out
}

// The acceptance bar: for every shape the router handles — single-shard
// push-down, cross-shard gather, top-level UNION over both, OPTIONAL,
// constants, empty results — the answer must be row-identical to a
// single node over the unpartitioned store, with identical columns.
func TestRouterRowIdenticalToSingleNode(t *testing.T) {
	for _, n := range []int{2, 3} {
		rt, rs, single := startCluster(t, n)
		srcs := []string{
			// Joins whose predicates may or may not colocate.
			`SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }`,
			`SELECT * WHERE { ?d <directed> ?m . ?m <genre> ?g . }`,
			`SELECT * WHERE { ?d <directed> ?m . ?d <awarded> ?a . ?d <born_in> ?p . }`,
			// Single-predicate scans (always push-down).
			`SELECT * WHERE { ?s <genre> ?g . }`,
			`SELECT * WHERE { ?p <population> ?n . }`,
			// OPTIONAL inside one branch, predicates spanning shards.
			`SELECT * WHERE { ?d <directed> ?m . OPTIONAL { ?d <born_in> ?p . } }`,
			`SELECT * WHERE { ?d <directed> ?m . OPTIONAL { ?m <genre> ?g . OPTIONAL { ?d <awarded> ?a . } } }`,
			// Top-level UNIONs: disjoint schemas, shared vars, three arms.
			`SELECT * WHERE { { ?d <directed> ?m . } UNION { ?x <awarded> ?a . } }`,
			`SELECT * WHERE { { ?d <directed> ?m . ?d <worked_with> ?c . } UNION { ?d <directed> ?m . ?m <genre> ?g . } }`,
			`SELECT * WHERE { { ?s <sequel_of> ?m . } UNION { ?s <prequel_of> ?m . } UNION { ?s <genre> ?m . } }`,
			// UNION nested below the top level stays inside its branch.
			`SELECT * WHERE { ?d <directed> ?m . { ?m <genre> ?g . } UNION { ?m2 <sequel_of> ?m . } }`,
			// Constants and empty results.
			`SELECT * WHERE { ?d <directed> <Goldfinger> . }`,
			`SELECT * WHERE { ?s <no_such_predicate> ?o . }`,
		}
		for _, src := range srcs {
			got := queryVia(t, rs.URL, src)
			want := queryVia(t, single.URL, src)
			if fmt.Sprint(got.Vars) != fmt.Sprint(want.Vars) {
				t.Errorf("n=%d %q: vars %v, single node %v", n, src, got.Vars, want.Vars)
				continue
			}
			g, w := canonRows(got.Rows), canonRows(want.Rows)
			if fmt.Sprint(g) != fmt.Sprint(w) {
				t.Errorf("n=%d %q:\n router rows %v\n single rows %v", n, src, g, w)
			}
		}
		_ = rt
	}
}

// The streamed path must carry the same rows and a synthesized stats
// trailer (client.Stream treats a missing trailer as a torn stream).
func TestRouterStreaming(t *testing.T) {
	_, rs, single := startCluster(t, 2)
	src := `SELECT * WHERE { { ?d <directed> ?m . } UNION { ?x <awarded> ?a . } }`

	c, err := client.New(rs.URL)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.QueryStream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var rows [][]*string
	for st.Next() {
		rows = append(rows, append([]*string{}, st.Row()...))
	}
	if err := st.Err(); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if st.Stats() == nil || st.Stats().Results != len(rows) {
		t.Fatalf("stats trailer %+v for %d rows", st.Stats(), len(rows))
	}
	want := queryVia(t, single.URL, src)
	if fmt.Sprint(canonRows(rows)) != fmt.Sprint(canonRows(want.Rows)) {
		t.Fatalf("streamed rows %v, single node %v", canonRows(rows), canonRows(want.Rows))
	}
}

// Writes split by placement, land on the owning primaries, and the
// cluster keeps answering like a single node that applied the same delta.
func TestRouterApply(t *testing.T) {
	_, rs, single := startCluster(t, 2)
	adds := []dualsim.Triple{
		dualsim.T("N._Roeg", "directed", "Walkabout"),
		dualsim.T("N._Roeg", "awarded", "BAFTA_Awards"),
		dualsim.T("Walkabout", "genre", "Drama"),
	}

	rc, err := client.New(rs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.ApplyDelta(context.Background(), dualsim.Delta{Adds: adds}); err != nil {
		t.Fatalf("apply via router: %v", err)
	}
	sc, err := client.New(single.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ApplyDelta(context.Background(), dualsim.Delta{Adds: adds}); err != nil {
		t.Fatal(err)
	}

	src := `SELECT * WHERE { ?d <directed> ?m . ?d <awarded> ?a . }`
	got, want := queryVia(t, rs.URL, src), queryVia(t, single.URL, src)
	if fmt.Sprint(canonRows(got.Rows)) != fmt.Sprint(canonRows(want.Rows)) {
		t.Fatalf("post-apply rows %v, single node %v", canonRows(got.Rows), canonRows(want.Rows))
	}
	if got.Epoch == 0 {
		t.Fatal("router reports epoch 0 after an apply")
	}
}

// A variable in predicate position cannot be routed; the router must
// reject it up front like the engine would.
func TestRouterRejectsVariablePredicates(t *testing.T) {
	_, rs, _ := startCluster(t, 2)
	c, err := client.New(rs.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(context.Background(), `SELECT * WHERE { ?s ?p ?o . }`)
	var ae *client.APIError
	if err == nil || !asAPIError(err, &ae) || ae.StatusCode != 400 {
		t.Fatalf("variable predicate: %v, want 400", err)
	}
}

func asAPIError(err error, target **client.APIError) bool {
	for err != nil {
		if ae, ok := err.(*client.APIError); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Failover: with two endpoints serving a shard, killing one must not
// lose reads — in-flight requests fail over, and after a probe the dead
// endpoint stops being routed to while /readyz stays green. Only when
// the LAST endpoint of a shard dies does the router go not-ready.
func TestRouterFailover(t *testing.T) {
	full, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	const n = 2
	var endpoints [][]string
	var shard0Primary, shard0Replica *httptest.Server
	for i := 0; i < n; i++ {
		st, err := cluster.ShardStore(full, cluster.ShardSpec{Index: i, N: n})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			shard0Primary = startShard(t, st)
			shard0Replica = startShard(t, st)
			endpoints = append(endpoints, []string{shard0Primary.URL, shard0Replica.URL})
		} else {
			endpoints = append(endpoints, []string{startShard(t, st).URL})
		}
	}
	rt, err := New(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rt.Probe(ctx)
	if err := rt.readyErr(); err != nil {
		t.Fatalf("probed router not ready: %v", err)
	}
	rs := httptest.NewServer(rt.Handler())
	defer rs.Close()

	src := `SELECT * WHERE { ?d <directed> ?m . }`
	want := len(queryVia(t, rs.URL, src).Rows)
	if want == 0 {
		t.Fatal("reference query empty; pick another predicate")
	}

	// Kill shard 0's primary without telling the router: reads must
	// fail over in-flight (round-robin hits the corpse half the time).
	shard0Primary.Close()
	for i := 0; i < 4; i++ {
		if got := len(queryVia(t, rs.URL, src).Rows); got != want {
			t.Fatalf("query %d after primary death: %d rows, want %d", i, got, want)
		}
	}
	rt.Probe(ctx)
	if err := rt.readyErr(); err != nil {
		t.Fatalf("router not ready with a live replica: %v", err)
	}

	// The whole shard gone: not-ready, and reads answer 503.
	shard0Replica.Close()
	rt.Probe(ctx)
	if err := rt.readyErr(); err == nil {
		t.Fatal("router ready with shard 0 fully dead")
	}
	c, _ := client.New(rs.URL)
	if _, err := c.Ready(ctx); err == nil {
		t.Fatal("/readyz green with shard 0 fully dead")
	}
}

// pick's bounded-staleness rule, directly: a lagging replica is skipped
// until maxLag admits it, and an empty shard yields no candidates.
func TestPickBoundedStaleness(t *testing.T) {
	mk := func(role string, up, ready bool, epoch uint64) *endpoint {
		return &endpoint{url: "http://" + role, role: role, up: up, ready: ready, epoch: epoch}
	}
	sh := &shard{eps: []*endpoint{
		mk("primary", true, true, 10),
		mk("replica", true, true, 7),
	}}
	urls := func(eps []*endpoint) string {
		var out []string
		for _, e := range eps {
			out = append(out, e.url)
		}
		sort.Strings(out)
		return strings.Join(out, ",")
	}

	// maxLag 0: only the fresh primary is a first-class candidate (the
	// lagging replica remains a degraded fallback at the tail).
	got := sh.pick(0)
	if len(got) == 0 || got[0].url != "http://primary" {
		t.Fatalf("maxLag 0 picked %v", urls(got))
	}
	// maxLag 3 admits the replica as a peer.
	if got := sh.pick(3); urls(got[:2]) != "http://primary,http://replica" {
		t.Fatalf("maxLag 3 picked %v", urls(got))
	}
	// Dead endpoints never route.
	sh.eps[0].up, sh.eps[1].up = false, false
	if got := sh.pick(10); len(got) != 0 {
		t.Fatalf("dead shard picked %v", urls(got))
	}
}

// End-to-end with a real replica: the router load-balances onto a
// follower-fed read replica and keeps answering when the primary dies.
func TestRouterWithLiveReplica(t *testing.T) {
	full, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	// One-shard cluster: a durable primary plus a WAL-streaming replica.
	st, err := cluster.ShardStore(full, cluster.ShardSpec{Index: 0, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := dualsim.Open(st, dualsim.WithDataDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer pdb.Close()
	psrv, err := server.New(pdb)
	if err != nil {
		t.Fatal(err)
	}
	primary := httptest.NewServer(psrv)
	defer primary.Close()

	f, err := cluster.Follow(primary.URL, cluster.WithPollWait(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	rsrv, err := server.New(f.DB(), server.WithReadOnly(), server.WithReadiness(f.Ready))
	if err != nil {
		t.Fatal(err)
	}
	replica := httptest.NewServer(rsrv)
	defer replica.Close()

	rt, err := New([][]string{{primary.URL, replica.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rt.Probe(ctx)
	rs := httptest.NewServer(rt.Handler())
	defer rs.Close()

	src := `SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }`
	want := len(queryVia(t, rs.URL, src).Rows)

	primary.Close()
	rt.Probe(ctx)
	if err := rt.readyErr(); err != nil {
		t.Fatalf("router not ready on the replica alone: %v", err)
	}
	if got := len(queryVia(t, rs.URL, src).Rows); got != want {
		t.Fatalf("replica-served query: %d rows, want %d", got, want)
	}
}

// The distributed tracing acceptance bar: a traced routed query returns
// ONE span tree rooted at the router's fan-out span, with every shard's
// pipeline subtree stitched under its branch span carrying the SAME
// trace ID — the W3C traceparent the router injected.
func TestRouterTraceStitching(t *testing.T) {
	_, rs, _ := startCluster(t, 2)
	c, err := client.New(rs.URL)
	if err != nil {
		t.Fatal(err)
	}
	// Two single-predicate branches: each pushes down to the shard that
	// owns its predicate, so each branch carries a shard subtree back.
	src := `SELECT * WHERE { { ?s <genre> ?g . } UNION { ?p <population> ?n . } }`
	out, err := c.Query(context.Background(), src, client.Trace())
	if err != nil {
		t.Fatal(err)
	}
	root := out.Stats.Trace
	if root == nil {
		t.Fatal("traced routed query returned no span tree")
	}
	if root.Name != "router.fanout" {
		t.Fatalf("root span %q, want router.fanout", root.Name)
	}
	if len(root.TraceID) != 32 {
		t.Fatalf("root TraceID %q, want 32 hex chars", root.TraceID)
	}

	var branches, stitched int
	for _, br := range root.Children {
		if br.Name != "branch" {
			continue
		}
		branches++
		if br.Attrs["mode"] != "pushdown" {
			t.Errorf("branch %s: mode %q, want pushdown", br.Attrs["branch"], br.Attrs["mode"])
		}
		sub := br.Find("query") // the shard daemon's root span
		if sub == nil {
			t.Errorf("branch %s: no shard subtree stitched", br.Attrs["branch"])
			continue
		}
		stitched++
		if sub.TraceID != root.TraceID {
			t.Errorf("branch %s: shard subtree trace ID %q, router %q",
				br.Attrs["branch"], sub.TraceID, root.TraceID)
		}
		if sub.Find("evaluate") == nil {
			t.Errorf("branch %s: shard subtree misses the evaluate stage span", br.Attrs["branch"])
		}
	}
	if branches != 2 || stitched != 2 {
		t.Fatalf("stitched %d subtrees under %d branch spans, want 2/2", stitched, branches)
	}

	// Untraced control: same query, no trace in the trailer.
	plain, err := c.Query(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Trace != nil {
		t.Fatalf("untraced routed query leaked a trace")
	}
}

// The router's slow-query log records routed queries with their fan-out
// trace even when the client asked for none.
func TestRouterSlowQueryLog(t *testing.T) {
	_, rs, _ := startCluster(t, 2, WithSlowQueryLog(4, 0))
	src := `SELECT * WHERE { ?s <genre> ?g . }`
	if got := queryVia(t, rs.URL, src); got.Stats.Trace != nil {
		t.Fatalf("slow-log tracing leaked into an untraced response")
	}
	c, err := client.New(rs.URL)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := c.SlowQueries(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if slow.Total != 1 || len(slow.Entries) != 1 {
		t.Fatalf("slow log: total %d, %d entries, want 1/1", slow.Total, len(slow.Entries))
	}
	e := slow.Entries[0]
	if e.Query != src || e.TraceID == "" || e.Trace == nil || e.Trace.Name != "router.fanout" {
		t.Fatalf("slow entry = %+v", e)
	}
}

// TestRouterStatementsMerged pins the cluster-wide workload statistics
// view: the router scrapes every shard's /v1/debug/statements and
// merges by fingerprint — calls sum across shards, so the router-level
// count for any fingerprint equals the sum of the per-shard counts.
// Push-down routing records on the owning shard; a statement executed
// on both shards (here: posted to each directly, as replicated clients
// do) aggregates across them.
func TestRouterStatementsMerged(t *testing.T) {
	full, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	var endpoints [][]string
	var shards []*httptest.Server
	for i := 0; i < 2; i++ {
		st, err := cluster.ShardStore(full, cluster.ShardSpec{Index: i, N: 2})
		if err != nil {
			t.Fatal(err)
		}
		hs := startShard(t, st)
		shards = append(shards, hs)
		endpoints = append(endpoints, []string{hs.URL})
	}
	rt, err := New(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	rt.Probe(context.Background())
	rs := httptest.NewServer(rt.Handler())
	t.Cleanup(rs.Close)

	// Single-predicate scans push down to the owning shard, recording
	// there; run one twice so aggregation is visible.
	src := `SELECT * WHERE { ?s <genre> ?g . }`
	queryVia(t, rs.URL, src)
	queryVia(t, rs.URL, src)
	// The same statement executed on both shards directly must merge
	// into one row whose calls are the cross-shard sum.
	shared := `SELECT * WHERE { ?d <directed> ?m . }`
	queryVia(t, shards[0].URL, shared)
	queryVia(t, shards[1].URL, shared)

	statements := func(url string) map[string]int64 {
		c, err := client.New(url)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Statements(context.Background())
		if err != nil {
			t.Fatalf("statements via %s: %v", url, err)
		}
		calls := make(map[string]int64)
		for i := range resp.Statements {
			calls[resp.Statements[i].Fingerprint] += resp.Statements[i].Calls
		}
		return calls
	}
	merged := statements(rs.URL)
	if len(merged) == 0 {
		t.Fatal("router merged view is empty")
	}
	perShard := []map[string]int64{statements(shards[0].URL), statements(shards[1].URL)}
	crossShard := 0
	for f, callsMerged := range merged {
		sum := perShard[0][f] + perShard[1][f]
		if callsMerged != sum {
			t.Errorf("fingerprint %s: merged calls %d, shard sum %d", f, callsMerged, sum)
		}
		if perShard[0][f] > 0 && perShard[1][f] > 0 {
			if callsMerged != 2 {
				t.Errorf("cross-shard fingerprint %s: merged calls %d, want 2", f, callsMerged)
			}
			crossShard++
		}
	}
	if crossShard == 0 {
		t.Fatalf("no fingerprint aggregated across both shards: %v vs %v", perShard[0], perShard[1])
	}

	// ?reset=1 through the router clears every shard.
	c, err := client.New(rs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StatementsReset(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, hs := range shards {
		if got := statements(hs.URL); len(got) != 0 {
			t.Errorf("shard %d not reset: %v", i, got)
		}
	}
}
