package cluster

import (
	"hash/fnv"
	"testing"

	"dualsim"
	"dualsim/internal/queries"
)

// ShardOf is hand-rolled so router and daemons share one obviously
// identical function; pin it to the stdlib FNV-1a it claims to be.
func TestShardOfMatchesFNV1a(t *testing.T) {
	preds := []string{"directed", "worked_with", "genre", "population", "", "ub:advisor", "a", "b"}
	for _, p := range preds {
		h := fnv.New32a()
		_, _ = h.Write([]byte(p))
		for _, n := range []int{1, 2, 3, 7, 16} {
			want := int(h.Sum32() % uint32(n))
			if got := ShardOf(p, n); got != want {
				t.Errorf("ShardOf(%q, %d) = %d, stdlib FNV-1a says %d", p, n, got, want)
			}
		}
	}
}

func TestShardOfRangeAndDeterminism(t *testing.T) {
	for _, tr := range queries.Fig1aTriples() {
		for n := 1; n <= 5; n++ {
			i := ShardOf(tr.P, n)
			if i < 0 || i >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", tr.P, n, i)
			}
			if j := ShardOf(tr.P, n); j != i {
				t.Fatalf("ShardOf(%q, %d) not deterministic: %d then %d", tr.P, n, i, j)
			}
		}
	}
}

func TestParseShardSpec(t *testing.T) {
	good := map[string]ShardSpec{
		"0/1":   {Index: 0, N: 1},
		"1/3":   {Index: 1, N: 3},
		" 2/4 ": {Index: 2, N: 4},
	}
	for in, want := range good {
		got, err := ParseShardSpec(in)
		if err != nil {
			t.Errorf("ParseShardSpec(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseShardSpec(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, in := range []string{"", "1", "3/3", "-1/3", "1/0", "x/3", "1/y", "1/2/3"} {
		if _, err := ParseShardSpec(in); err == nil {
			t.Errorf("ParseShardSpec(%q) accepted", in)
		}
	}
	if s := (ShardSpec{Index: 1, N: 3}).String(); s != "1/3" {
		t.Errorf("String() = %q", s)
	}
}

// Partitioning must be a disjoint cover that keeps whole predicates
// together, and ShardStore must agree with PartitionTriples.
func TestPartitionAndShardStore(t *testing.T) {
	ts := queries.Fig1aTriples()
	const n = 3
	parts, err := PartitionTriples(ts, n)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, part := range parts {
		total += len(part)
		for _, tr := range part {
			if ShardOf(tr.P, n) != i {
				t.Errorf("triple with predicate %q landed on shard %d, places on %d", tr.P, i, ShardOf(tr.P, n))
			}
		}
	}
	if total != len(ts) {
		t.Fatalf("partition covers %d of %d triples", total, len(ts))
	}

	full, err := dualsim.FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		st, err := ShardStore(full, ShardSpec{Index: i, N: n})
		if err != nil {
			t.Fatal(err)
		}
		got := st.Triples()
		if len(got) != len(parts[i]) {
			t.Fatalf("shard %d store has %d triples, partition has %d", i, len(got), len(parts[i]))
		}
		want := make(map[dualsim.Triple]bool, len(parts[i]))
		for _, tr := range parts[i] {
			want[tr] = true
		}
		for _, tr := range got {
			if !want[tr] {
				t.Errorf("shard %d store holds unexpected triple %v", i, tr)
			}
		}
	}

	if _, err := PartitionTriples(ts, 0); err == nil {
		t.Error("PartitionTriples with 0 shards accepted")
	}
}

func TestSplitDelta(t *testing.T) {
	ts := queries.Fig1aTriples()
	adds := ts[:5]
	dels := ts[5:8]
	const n = 2
	deltas, err := SplitDelta(adds, dels, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != n {
		t.Fatalf("got %d deltas, want %d", len(deltas), n)
	}
	seenAdds, seenDels := 0, 0
	for i, d := range deltas {
		for _, tr := range d.Adds {
			seenAdds++
			if ShardOf(tr.P, n) != i {
				t.Errorf("add %v on shard %d, places on %d", tr, i, ShardOf(tr.P, n))
			}
		}
		for _, tr := range d.Dels {
			seenDels++
			if ShardOf(tr.P, n) != i {
				t.Errorf("del %v on shard %d, places on %d", tr, i, ShardOf(tr.P, n))
			}
		}
	}
	if seenAdds != len(adds) || seenDels != len(dels) {
		t.Fatalf("split lost triples: %d/%d adds, %d/%d dels", seenAdds, len(adds), seenDels, len(dels))
	}
	if _, err := SplitDelta(adds, dels, 0); err == nil {
		t.Error("SplitDelta with 0 shards accepted")
	}
}
