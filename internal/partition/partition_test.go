package partition

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dualsim/internal/core"
	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

func mustStore(t *testing.T, ts []rdf.Triple) *storage.Store {
	t.Helper()
	st, err := storage.FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRefineSeparatesKinds: literals and IRIs never share a block.
func TestRefineSeparatesKinds(t *testing.T) {
	st := mustStore(t, []rdf.Triple{
		rdf.T("a", "p", "b"),
		rdf.TL("a", "p", "b"), // literal "b"
	})
	part := Refine(st, -1)
	iri, _ := st.TermID(rdf.NewIRI("b"))
	lit, _ := st.TermID(rdf.NewLiteral("b"))
	if part.Block[iri] == part.Block[lit] {
		t.Fatal("literal and IRI merged")
	}
}

// TestRefineMergesTwins: structurally identical nodes share a block.
func TestRefineMergesTwins(t *testing.T) {
	st := mustStore(t, []rdf.Triple{
		rdf.T("u1", "works_for", "dept"),
		rdf.T("u2", "works_for", "dept"),
		rdf.T("u3", "works_for", "dept"),
		rdf.T("boss", "works_for", "dept"),
		rdf.T("boss", "head_of", "dept"),
	})
	part := Refine(st, -1)
	id := func(n string) int {
		nid, _ := st.TermID(rdf.NewIRI(n))
		return part.Block[nid]
	}
	if id("u1") != id("u2") || id("u2") != id("u3") {
		t.Fatal("twins u1/u2/u3 should share a block")
	}
	if id("boss") == id("u1") {
		t.Fatal("boss has an extra edge and must split")
	}
	if id("dept") == id("u1") {
		t.Fatal("dept must not merge with employees")
	}
}

// TestRefineBoundedVsFixpoint: k=0 performs no refinement beyond the
// kind split; increasing k refines monotonically.
func TestRefineBoundedVsFixpoint(t *testing.T) {
	st := mustStore(t, []rdf.Triple{
		rdf.T("a", "p", "b"),
		rdf.T("b", "p", "c"),
		rdf.T("c", "p", "d"),
		rdf.T("d", "p", "e"),
	})
	k0 := Refine(st, 0)
	if k0.Blocks != 2 {
		t.Fatalf("k=0 blocks = %d, want 2", k0.Blocks)
	}
	prev := k0.Blocks
	for k := 1; k <= 5; k++ {
		part := Refine(st, k)
		if part.Blocks < prev {
			t.Fatalf("k=%d coarsened the partition: %d < %d", k, part.Blocks, prev)
		}
		prev = part.Blocks
	}
	full := Refine(st, -1)
	// The 5-chain is fully distinguishable: every node in its own block.
	if full.Blocks != 5 {
		t.Fatalf("fixpoint blocks = %d, want 5", full.Blocks)
	}
}

// TestFingerprintShape: the LUBM-ish twin structure condenses.
func TestFingerprintShape(t *testing.T) {
	var ts []rdf.Triple
	for i := 0; i < 50; i++ {
		ts = append(ts, rdf.T(fmt.Sprintf("student%d", i), "member_of", "dept"))
		ts = append(ts, rdf.T(fmt.Sprintf("student%d", i), "takes", "course"))
	}
	st := mustStore(t, ts)
	part := Refine(st, -1)
	sum, err := Fingerprint(st, part)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Store.NumTriples() != 2 {
		t.Fatalf("summary triples = %d, want 2", sum.Store.NumTriples())
	}
	if r := sum.CompressionRatio(st); r > 0.05 {
		t.Fatalf("compression ratio = %f", r)
	}
}

// TestPropertyLiftedCandidatesSound is the index soundness claim: the
// block-level dual simulation lifted to nodes contains the exact
// node-level dual simulation.
func TestPropertyLiftedCandidatesSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomStore(r)
		pat := randomPattern(r)
		for _, k := range []int{0, 1, 2, -1} {
			part := Refine(st, k)
			sum, err := Fingerprint(st, part)
			if err != nil {
				return false
			}
			lifted := sum.LiftedCandidates(st, pat)
			exact := core.DualSimulation(st, pat, core.Config{}).Sets()
			for i := range exact {
				for n := range exact[i] {
					if !lifted[i][n] {
						t.Logf("seed %d k %d: node %d var %d in exact but not lifted",
							seed, k, n, i)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySummaryNeverLarger: the fingerprint has at most as many
// triples as the original.
func TestPropertySummaryNeverLarger(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomStore(r)
		sum, err := Fingerprint(st, Refine(st, -1))
		if err != nil {
			return false
		}
		return sum.Store.NumTriples() <= st.NumTriples()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func randomStore(r *rand.Rand) *storage.Store {
	n := r.Intn(10) + 3
	e := r.Intn(25) + 3
	st := storage.New()
	for i := 0; i < e; i++ {
		if r.Intn(6) == 0 {
			_ = st.Add(rdf.TL(
				fmt.Sprintf("n%d", r.Intn(n)),
				fmt.Sprintf("p%d", r.Intn(2)),
				fmt.Sprintf("lit%d", r.Intn(3))))
		} else {
			_ = st.Add(rdf.T(
				fmt.Sprintf("n%d", r.Intn(n)),
				fmt.Sprintf("p%d", r.Intn(2)),
				fmt.Sprintf("n%d", r.Intn(n))))
		}
	}
	st.Build()
	return st
}

func randomPattern(r *rand.Rand) *core.Pattern {
	p := core.NewPattern()
	nv := r.Intn(3) + 1
	ne := r.Intn(3) + 1
	for i := 0; i < ne; i++ {
		p.Edge(
			fmt.Sprintf("v%d", r.Intn(nv)),
			fmt.Sprintf("p%d", r.Intn(2)),
			fmt.Sprintf("v%d", r.Intn(nv)))
	}
	return p
}

// TestPropertyAdvanceSoundAfterPatch is the live-update soundness claim:
// after a store patch, the incrementally advanced partition (touched and
// new nodes split into singleton blocks, everything else untouched)
// still yields a summary whose lifted candidates contain the exact dual
// simulation on the patched store.
func TestPropertyAdvanceSoundAfterPatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomStore(r)
		part := Refine(st, -1)

		var adds, dels []rdf.Triple
		for i := 0; i < r.Intn(4)+1; i++ {
			adds = append(adds, rdf.T(
				fmt.Sprintf("n%d", r.Intn(14)),
				fmt.Sprintf("p%d", r.Intn(2)),
				fmt.Sprintf("n%d", r.Intn(14))))
		}
		for _, old := range st.Triples() {
			if r.Intn(3) == 0 {
				dels = append(dels, old)
			}
		}
		next, ps, err := st.Patch(adds, dels)
		if err != nil {
			return false
		}

		adv := Advance(next, part, ps.TouchedNodes)
		if len(adv.Block) != next.NumNodes() {
			t.Logf("seed %d: advanced partition covers %d of %d nodes", seed, len(adv.Block), next.NumNodes())
			return false
		}
		sum, err := Fingerprint(next, adv)
		if err != nil {
			t.Logf("seed %d: fingerprint on advanced partition: %v", seed, err)
			return false
		}
		pat := randomPattern(r)
		lifted := sum.LiftedCandidates(next, pat)
		exact := core.DualSimulation(next, pat, core.Config{}).Sets()
		for i := range exact {
			for n := range exact[i] {
				if !lifted[i][n] {
					t.Logf("seed %d: node %d var %d in exact but not lifted after patch", seed, n, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
