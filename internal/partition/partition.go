// Package partition implements the index idea sketched in the paper's
// related-work discussion (Sect. 6): computing (bounded) simulation
// equivalence classes of database nodes and condensing the database into
// a summary graph — a "database fingerprint" that is much smaller than
// the original and can stand in for it during dual simulation pruning.
//
// The construction is k-bounded bisimulation partition refinement in the
// style of Milo/Suciu index structures: nodes start in one block (split
// by term kind), and each round re-partitions by the signature
//
//	sig(v) = { (p, →, block(w)) | (v,p,w) ∈ E } ∪ { (p, ←, block(u)) | (u,p,v) ∈ E }
//
// Since bisimulation refines dual simulation equivalence, the summary
// graph dual-simulates the original: solving the SOI on the summary and
// lifting block candidates back to nodes yields a superset of the
// original candidate sets. That gives a sound two-stage pruning pipeline
// (summary first, exact second) — property-tested here.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"dualsim/internal/bitvec"
	"dualsim/internal/core"
	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

// Partition assigns every node a block id.
type Partition struct {
	Block  []int // node id -> block id
	Blocks int
	// Rounds is the number of refinement rounds actually performed
	// (may be fewer than k if the partition stabilizes early).
	Rounds int
}

// Refine computes the k-bounded bisimulation partition of the store's
// nodes. k < 0 refines to the full fixpoint.
func Refine(st *storage.Store, k int) *Partition {
	n := st.NumNodes()
	p := &Partition{Block: make([]int, n)}

	// Round 0: split by term kind (objects vs. literals) — the two
	// universes of Definition 1 must never merge.
	for i := 0; i < n; i++ {
		if st.Term(storage.NodeID(i)).IsLiteral() {
			p.Block[i] = 1
		}
	}
	p.Blocks = 2

	for round := 0; k < 0 || round < k; round++ {
		next, blocks := refineOnce(st, p.Block)
		changed := blocks != p.Blocks || !equalInts(next, p.Block)
		p.Block = next
		p.Blocks = blocks
		if !changed {
			break
		}
		p.Rounds++
	}
	return p
}

// Advance maintains a partition across a store patch instead of
// re-refining from scratch: prev was computed for an earlier snapshot of
// the same dictionary lineage (node ids stable, universe only grown),
// and touched lists the nodes an effective add or delete involved.
//
// The update splits every touched node — and every node the patch newly
// interned — into a singleton block, and leaves all other assignments
// alone. The result is no longer a bisimulation partition, but summary-
// based pruning stays sound for ANY partition of the nodes: the quotient
// map is a graph homomorphism that is surjective on edges, so the image
// of the largest dual simulation on the store is a dual simulation on
// the summary, and lifting the summary solution back over-approximates
// the exact candidate sets. Precision decays only around the delta;
// periodic compaction (which forces a fresh Refine) restores it.
//
// Advance must NOT be used across a compaction — node ids change there.
func Advance(st *storage.Store, prev *Partition, touched []storage.NodeID) *Partition {
	n := st.NumNodes()
	p := &Partition{Block: make([]int, n), Blocks: prev.Blocks, Rounds: prev.Rounds}
	copy(p.Block, prev.Block)
	split := func(v int) {
		p.Block[v] = p.Blocks
		p.Blocks++
	}
	// Nodes beyond the previous universe are new; each becomes its own
	// block (this also keeps the object/literal universes separate
	// without consulting term kinds).
	for v := len(prev.Block); v < n; v++ {
		split(v)
	}
	for _, v := range touched {
		if int(v) < len(prev.Block) {
			split(int(v))
		}
	}
	return p
}

func refineOnce(st *storage.Store, block []int) ([]int, int) {
	n := len(block)
	sigs := make([]string, n)
	var sb strings.Builder
	for v := 0; v < n; v++ {
		sb.Reset()
		fmt.Fprintf(&sb, "b%d;", block[v])
		parts := signatureParts(st, storage.NodeID(v), block)
		sort.Strings(parts)
		prev := ""
		for _, part := range parts {
			if part == prev {
				continue // set semantics
			}
			prev = part
			sb.WriteString(part)
			sb.WriteByte(';')
		}
		sigs[v] = sb.String()
	}
	ids := make(map[string]int)
	next := make([]int, n)
	for v, s := range sigs {
		id, ok := ids[s]
		if !ok {
			id = len(ids)
			ids[s] = id
		}
		next[v] = id
	}
	return next, len(ids)
}

func signatureParts(st *storage.Store, v storage.NodeID, block []int) []string {
	var parts []string
	for p := 0; p < st.NumPreds(); p++ {
		pid := storage.PredID(p)
		for _, w := range st.Objects(pid, v) {
			parts = append(parts, fmt.Sprintf("f%d:%d", pid, block[w]))
		}
		for _, u := range st.Subjects(pid, v) {
			parts = append(parts, fmt.Sprintf("b%d:%d", pid, block[u]))
		}
	}
	return parts
}

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Summary condenses the store along a partition: one node per block, one
// p-edge between blocks B1 and B2 iff some (v,p,w) ∈ E has v ∈ B1,
// w ∈ B2. Block nodes are named "block<N>" (literal blocks become
// literal terms so Definition 1 still holds on the summary).
type Summary struct {
	Store *storage.Store
	Part  *Partition
	// blockNode maps a block id to its node id in the summary store.
	blockNode map[int]storage.NodeID
}

// Fingerprint builds the summary graph of the store under the partition.
func Fingerprint(st *storage.Store, part *Partition) (*Summary, error) {
	litBlock := make(map[int]bool)
	for v := 0; v < st.NumNodes(); v++ {
		if st.Term(storage.NodeID(v)).IsLiteral() {
			litBlock[part.Block[v]] = true
		}
	}
	name := func(b int) rdf.Term {
		if litBlock[b] {
			return rdf.NewLiteral(fmt.Sprintf("block%d", b))
		}
		return rdf.NewIRI(fmt.Sprintf("block%d", b))
	}

	sum := storage.New()
	seen := make(map[[3]int]bool)
	addErr := error(nil)
	st.ForEachTriple(func(s storage.NodeID, p storage.PredID, o storage.NodeID) bool {
		key := [3]int{part.Block[s], int(p), part.Block[o]}
		if seen[key] {
			return true
		}
		seen[key] = true
		t := rdf.Triple{S: name(key[0]), P: st.Pred(p), O: name(key[2])}
		if err := sum.Add(t); err != nil {
			addErr = err
			return false
		}
		return true
	})
	if addErr != nil {
		return nil, addErr
	}
	sum.Build()

	out := &Summary{Store: sum, Part: part, blockNode: make(map[int]storage.NodeID)}
	for b := 0; b < part.Blocks; b++ {
		if id, ok := sum.TermID(name(b)); ok {
			out.blockNode[b] = id
		}
	}
	return out, nil
}

// CompressionRatio returns |summary triples| / |original triples|.
func (s *Summary) CompressionRatio(st *storage.Store) float64 {
	if st.NumTriples() == 0 {
		return 1
	}
	return float64(s.Store.NumTriples()) / float64(st.NumTriples())
}

// LiftedCandidates runs dual simulation of the pattern against the
// summary and lifts block-level candidates back to original nodes: node
// v is a candidate for variable x iff v's block dual-simulates x on the
// summary. Constants cannot be resolved on the summary and make the
// lifting degenerate to "all nodes" for their variables (sound).
func (s *Summary) LiftedCandidates(st *storage.Store, p *core.Pattern) []map[storage.NodeID]bool {
	blocks := s.liftedBlocks(p)
	out := make([]map[storage.NodeID]bool, p.NumVars())
	for i, okBlocks := range blocks {
		out[i] = make(map[storage.NodeID]bool)
		for v := 0; v < st.NumNodes(); v++ {
			if okBlocks[s.Part.Block[v]] {
				out[i][storage.NodeID(v)] = true
			}
		}
	}
	return out
}

// LiftedVectors is LiftedCandidates in bit-vector form, indexed by
// original node id — the representation soi.Options.Restrict consumes.
// A variable whose lifted set degenerates to all nodes (constants, or a
// fully admissible summary) yields a nil entry, meaning "no restriction".
func (s *Summary) LiftedVectors(st *storage.Store, p *core.Pattern) []*bitvec.Vector {
	blocks := s.liftedBlocks(p)
	n := st.NumNodes()
	out := make([]*bitvec.Vector, p.NumVars())
	for i, okBlocks := range blocks {
		if p.Vars()[i].Const != nil {
			// Constants are resolved exactly by the SOI's singleton bound;
			// the summary cannot improve on that.
			continue
		}
		vec := bitvec.New(n)
		kept := 0
		for v := 0; v < n; v++ {
			if okBlocks[s.Part.Block[v]] {
				vec.Set(v)
				kept++
			}
		}
		if kept < n {
			out[i] = vec
		}
	}
	return out
}

// liftedBlocks solves the constant-free rebuild of the pattern on the
// summary (constants do not exist there and become free variables) and
// returns, per pattern variable, the set of admissible block ids.
func (s *Summary) liftedBlocks(p *core.Pattern) []map[int]bool {
	free := core.NewPattern()
	for _, pv := range p.Vars() {
		free.Var(pv.Name)
	}
	for _, e := range p.Edges() {
		free.Edge(p.Vars()[e.From].Name, e.Pred, p.Vars()[e.To].Name)
	}

	rel := core.DualSimulation(s.Store, free, core.Config{})
	out := make([]map[int]bool, p.NumVars())
	for i := range out {
		chi := rel.Chi[i]
		okBlocks := make(map[int]bool)
		for b, node := range s.blockNode {
			if chi.Get(int(node)) {
				okBlocks[b] = true
			}
		}
		out[i] = okBlocks
	}
	return out
}
