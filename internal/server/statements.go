package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"dualsim"
	"dualsim/internal/metrics"
	qstats "dualsim/internal/stats"
	"dualsim/internal/wire"
)

// statementStore aliases the workload statistics store so the Server
// struct (declared in server.go, where many locals are named stats) can
// hold one without importing the package there.
type statementStore = qstats.Store

// topStatements is how many ranks of the by-total-time statement table
// are exported as /metrics gauges.
const topStatements = 5

// topCacheTTL bounds how often a /metrics scrape re-sorts the statement
// table: the top-rank gauges all read one memoized snapshot, so a scrape
// costs one Statements() call per TTL window, not one per gauge.
const topCacheTTL = time.Second

// topCache memoizes the sorted statement snapshot across the top-rank
// gauge reads of one (or several back-to-back) /metrics scrapes.
type topCache struct {
	mu   sync.Mutex
	at   time.Time
	rows []qstats.Statement
}

// WithStatementStats sizes the workload statistics store: per-statement
// aggregates (calls, errors, rows, latency quantiles, resource peaks)
// keyed by normalized statement fingerprint, served at
// GET /v1/debug/statements — pg_stat_statements for dualsim. The store
// holds up to n distinct statements, evicting least-recently-executed
// ones beyond that. Statistics are on by default (capacity 256, cheap:
// the per-execution record path is allocation-free); n = 0 disables
// them entirely.
func WithStatementStats(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("server: negative statement stats capacity %d", n)
		}
		c.stmtCapacity, c.stmtSet = n, true
		return nil
	}
}

// newStatementStore resolves the configured store: default capacity
// unless WithStatementStats chose one, nil (disabled, all methods
// no-ops) for an explicit 0.
func newStatementStore(cfg config) *statementStore {
	n := cfg.stmtCapacity
	if !cfg.stmtSet {
		n = qstats.DefaultCapacity
	}
	if n <= 0 {
		return nil
	}
	return qstats.NewStore(n)
}

// recordStatement folds one query execution into the workload
// statistics. st may be nil (error paths return no ExecStats): the
// fingerprint is then re-derived from the source text — off the hot
// path, which always has the prepared fingerprint in st.
func (s *Server) recordStatement(src string, st *dualsim.ExecStats, d time.Duration, execErr error) {
	if s.stmts == nil {
		return
	}
	var f qstats.Fingerprint
	if st != nil && st.Fingerprint != "" {
		f = qstats.Fingerprint{ID: st.Fingerprint, Text: st.StatementText}
	} else {
		f = qstats.OfSource(src)
	}
	obs := qstats.Observation{
		Duration: d,
		Error:    execErr != nil,
		Timeout:  errors.Is(execErr, context.DeadlineExceeded),
	}
	if st != nil {
		obs.Rows = int64(st.Results)
		obs.CacheHit = st.CacheHit
		for i := range st.Operators {
			if est := st.Operators[i].EstRows; est > 0 {
				diff := int64(est) - st.Operators[i].Rows
				if diff < 0 {
					diff = -diff
				}
				obs.EstErrRows += diff
			}
		}
		if st.Resources != nil {
			obs.MemPeakBytes = st.Resources.PeakBytes
			obs.RowsBuffered = st.Resources.RowsBuffered
		}
	}
	s.stmts.Record(f, obs)
}

// recordShedStatement attributes an admission-control rejection to its
// statement. The 429 was already written; reading the (bounded) body
// here costs only the shed path, never an admitted request. Admission
// protects execution capacity, not parsing — fingerprinting the query
// that was refused is exactly the accounting pg_stat_statements-style
// tables need to show who is being shed.
func (s *Server) recordShedStatement(r *http.Request) {
	if s.stmts == nil {
		return
	}
	var req wire.QueryRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	if dec.Decode(&req) != nil || strings.TrimSpace(req.Query) == "" {
		return
	}
	s.stmts.RecordShed(qstats.OfSource(req.Query))
}

// handleStatements serves the workload statistics table, ordered by
// total execution time descending. ?reset=1 returns the snapshot and
// then clears the store (so the caller sees what was discarded).
func (s *Server) handleStatements(w http.ResponseWriter, r *http.Request) {
	rows := s.stmts.Statements()
	if rows == nil {
		rows = []qstats.Statement{}
	}
	out := &wire.StatementsResponse{
		Statements:    rows,
		Tracked:       s.stmts.Len(),
		Evicted:       s.stmts.Evicted(),
		LatencyBounds: qstats.LatencyBounds,
	}
	if v := r.URL.Query().Get("reset"); v == "1" || v == "true" {
		s.stmts.Reset()
	}
	s.writeJSON(w, http.StatusOK, out)
}

// registerStatementMetrics exports the store's shape and its top ranks
// by total time as gauges. The registry is label-free, so the ranks are
// separate series (dualsimd_statement_top1_seconds, …); statement
// identity lives at /v1/debug/statements.
func (s *Server) registerStatementMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("dualsimd_statements_tracked", "distinct statements in the workload statistics store", func() float64 {
		return float64(s.stmts.Len())
	})
	reg.GaugeFunc("dualsimd_statements_evicted", "statements LRU-evicted from the workload statistics store", func() float64 {
		return float64(s.stmts.Evicted())
	})
	for rank := 1; rank <= topStatements; rank++ {
		rank := rank
		reg.GaugeFunc(
			fmt.Sprintf("dualsimd_statement_top%d_seconds", rank),
			fmt.Sprintf("total execution time of the rank-%d statement by total time", rank),
			func() float64 {
				rows := s.topRows()
				if rank > len(rows) {
					return 0
				}
				return rows[rank-1].TotalTime.Seconds()
			})
		reg.GaugeFunc(
			fmt.Sprintf("dualsimd_statement_top%d_calls", rank),
			fmt.Sprintf("call count of the rank-%d statement by total time", rank),
			func() float64 {
				rows := s.topRows()
				if rank > len(rows) {
					return 0
				}
				return float64(rows[rank-1].Calls)
			})
	}
}

// topRows returns the memoized sorted statement snapshot for the
// top-rank gauges, refreshing it at most once per topCacheTTL.
func (s *Server) topRows() []qstats.Statement {
	c := &s.topStmts
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rows == nil || time.Since(c.at) > topCacheTTL {
		c.rows = s.stmts.Statements()
		if c.rows == nil {
			c.rows = []qstats.Statement{}
		}
		c.at = time.Now()
	}
	return c.rows
}
