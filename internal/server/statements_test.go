package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dualsim"
	"dualsim/internal/queries"
	"dualsim/internal/wire"
)

// getStatements fetches and decodes the workload statistics table.
func getStatements(t *testing.T, url string) wire.StatementsResponse {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statements status = %d", resp.StatusCode)
	}
	return decode[wire.StatementsResponse](t, resp)
}

func TestStatementsEndpoint(t *testing.T) {
	_, hs, _ := newTestServer(t)
	// Same statement three times — the third differs only in whitespace
	// and must fold into the same fingerprint — plus one distinct shape.
	for _, q := range []string{queryX1, queryX1, "SELECT * WHERE {?d <directed> ?m. ?d  <worked_with>  ?c.}"} {
		resp := postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: q})
		resp.Body.Close()
	}
	other := `SELECT * WHERE { ?d <directed> ?m }`
	postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: other}).Body.Close()

	out := getStatements(t, hs.URL+"/v1/debug/statements")
	if out.Tracked != 2 || len(out.Statements) != 2 {
		t.Fatalf("tracked = %d, statements = %d, want 2/2", out.Tracked, len(out.Statements))
	}
	if len(out.LatencyBounds) == 0 {
		t.Fatal("latencyBounds missing")
	}
	var found bool
	for i := range out.Statements {
		st := &out.Statements[i]
		if len(st.Fingerprint) != 16 {
			t.Fatalf("fingerprint %q not 16 hex chars", st.Fingerprint)
		}
		if st.Calls != 3 {
			continue
		}
		found = true
		if st.CacheHits < 1 {
			t.Fatalf("cacheHits = %d, want >= 1 (repeat served from the plan cache)", st.CacheHits)
		}
		if st.Rows != 6 {
			t.Fatalf("rows = %d, want 6 (2 rows x 3 calls)", st.Rows)
		}
		if !strings.Contains(st.Query, "?v0") {
			t.Fatalf("query text not normalized: %q", st.Query)
		}
		if st.TotalTime <= 0 || st.P50 < 0 {
			t.Fatalf("timings not populated: %+v", st)
		}
	}
	if !found {
		t.Fatalf("no statement aggregated 3 calls: %+v", out.Statements)
	}
}

func TestStatementsReset(t *testing.T) {
	_, hs, _ := newTestServer(t)
	postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1}).Body.Close()

	// ?reset=1 returns the pre-reset snapshot…
	out := getStatements(t, hs.URL+"/v1/debug/statements?reset=1")
	if out.Tracked != 1 || len(out.Statements) != 1 {
		t.Fatalf("reset snapshot tracked = %d, want 1", out.Tracked)
	}
	// …and the next read starts empty.
	out = getStatements(t, hs.URL+"/v1/debug/statements")
	if out.Tracked != 0 || len(out.Statements) != 0 {
		t.Fatalf("post-reset tracked = %d, want 0", out.Tracked)
	}
}

func TestStatementsDisabled(t *testing.T) {
	_, hs, _ := newTestServer(t, WithStatementStats(0))
	postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1}).Body.Close()
	out := getStatements(t, hs.URL+"/v1/debug/statements")
	if out.Tracked != 0 || len(out.Statements) != 0 {
		t.Fatalf("disabled store tracked %d statements", out.Tracked)
	}
}

func TestStatementsRecordErrors(t *testing.T) {
	_, hs, _ := newTestServer(t)
	resp := postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: "SELECT * WHERE { broken"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	out := getStatements(t, hs.URL+"/v1/debug/statements")
	if out.Tracked != 1 {
		t.Fatalf("tracked = %d, want the failed statement", out.Tracked)
	}
	if st := out.Statements[0]; st.Calls != 1 || st.Errors != 1 {
		t.Fatalf("calls/errors = %d/%d, want 1/1", st.Calls, st.Errors)
	}
}

func TestStatementsShedAttribution(t *testing.T) {
	srv, hs, _ := newTestServer(t, WithMaxInFlight(1), WithQueueDepth(1))
	release, _, err := srv.admit.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	qctx, qcancel := context.WithCancel(context.Background())
	defer qcancel()
	go func() {
		rel, _, err := srv.admit.acquire(qctx)
		if err == nil {
			rel()
		}
	}()
	for i := 0; srv.admit.Queued() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if srv.admit.Queued() == 0 {
		t.Fatal("queue never filled")
	}

	resp := postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()
	out := getStatements(t, hs.URL+"/v1/debug/statements")
	if out.Tracked != 1 {
		t.Fatalf("tracked = %d, want the shed statement", out.Tracked)
	}
	if st := out.Statements[0]; st.Shed != 1 || st.Calls != 0 {
		t.Fatalf("shed/calls = %d/%d, want 1/0", st.Shed, st.Calls)
	}
}

func TestQueryMemoryBudget413(t *testing.T) {
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st, dualsim.WithPlanCache(16), dualsim.WithMaxQueryMemory(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		db.Close()
	})

	// The join buffers its build side: any row exceeds a 1-byte budget.
	resp := postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	out := decode[wire.ErrorResponse](t, resp)
	if !strings.Contains(out.Error, "memory budget") {
		t.Fatalf("error = %q", out.Error)
	}

	// A zero-row single-pattern query buffers nothing and still serves.
	resp = postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: `SELECT * WHERE { ?x <nosuch> ?o }`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("zero-row status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// The budget failure lands in the statistics as an error, not a call
	// that produced rows.
	stats := getStatements(t, hs.URL+"/v1/debug/statements")
	var sawErr bool
	for i := range stats.Statements {
		if stats.Statements[i].Errors > 0 {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatalf("budget failure not recorded: %+v", stats.Statements)
	}
}

func TestStatementTopMetrics(t *testing.T) {
	_, hs, _ := newTestServer(t)
	postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1}).Body.Close()
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(buf)
	for _, want := range []string{"dualsimd_statements_tracked 1", "dualsimd_statement_top1_calls 1"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestStatementSlowLogCrossLink pins the bidirectional link between the
// slow-query log and the statements table: a slow entry carries the
// statement's fingerprint, and the statement row carries the trace ID
// of its most recent slow entry.
func TestStatementSlowLogCrossLink(t *testing.T) {
	_, hs, _ := newTestServer(t, WithSlowQueryLog(8, 0)) // threshold 0: everything is slow
	postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1}).Body.Close()

	resp, err := http.Get(hs.URL + "/v1/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	slow := decode[wire.SlowLogResponse](t, resp)
	if len(slow.Entries) != 1 {
		t.Fatalf("slow entries = %d, want 1", len(slow.Entries))
	}
	entry := slow.Entries[0]
	if entry.Fingerprint == "" || entry.TraceID == "" {
		t.Fatalf("slow entry misses fingerprint/traceID: %+v", entry)
	}

	stmts := getStatements(t, hs.URL+"/v1/debug/statements")
	if len(stmts.Statements) != 1 {
		t.Fatalf("statements = %d, want 1", len(stmts.Statements))
	}
	st := stmts.Statements[0]
	if st.Fingerprint != entry.Fingerprint {
		t.Fatalf("fingerprint mismatch: statement %s, slow entry %s", st.Fingerprint, entry.Fingerprint)
	}
	if st.LastSlowTraceID != entry.TraceID {
		t.Fatalf("lastSlowTraceID = %q, slow entry trace %q", st.LastSlowTraceID, entry.TraceID)
	}
}
