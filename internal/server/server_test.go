package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dualsim"
	"dualsim/internal/persist"
	"dualsim/internal/queries"
	"dualsim/internal/wire"
)

const queryX1 = `SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }`

func newTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server, *dualsim.DB) {
	t.Helper()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st, dualsim.WithPlanCache(16))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, opts...)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		db.Close()
	})
	return srv, hs, db
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, wire.ContentTypeJSON, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return out
}

func TestQueryBuffered(t *testing.T) {
	_, hs, _ := newTestServer(t)
	resp := postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Dualsim-Epoch"); got != "0" {
		t.Fatalf("epoch header = %q, want 0", got)
	}
	out := decode[wire.QueryResponse](t, resp)
	if len(out.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(out.Rows))
	}
	if out.Epoch != 0 || out.Stats == nil || out.Stats.Epoch != 0 {
		t.Fatalf("epoch tagging inconsistent: %+v", out)
	}
	if len(out.Vars) != 3 {
		t.Fatalf("vars = %v", out.Vars)
	}
	for _, row := range out.Rows {
		for _, v := range row {
			if v == nil || !strings.HasPrefix(*v, "<") {
				t.Fatalf("binding not decoded: %v", row)
			}
		}
	}
}

// readStream decodes an NDJSON response into its events.
func readStream(t *testing.T, body io.Reader) (header wire.Event, rows []wire.Event, stats wire.Event) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		var ev wire.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Kind {
		case wire.EventHeader:
			if !first {
				t.Fatal("header event not first")
			}
			header = ev
		case wire.EventRow:
			rows = append(rows, ev)
		case wire.EventStats:
			stats = ev
		case wire.EventError:
			t.Fatalf("stream error: %s", ev.Error)
		default:
			t.Fatalf("unknown event kind %q", ev.Kind)
		}
		first = false
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if header.Kind == "" || stats.Kind == "" {
		t.Fatalf("stream missing header/stats (header %q, stats %q)", header.Kind, stats.Kind)
	}
	return header, rows, stats
}

func TestQueryStreamed(t *testing.T) {
	_, hs, _ := newTestServer(t)
	resp := postJSON(t, hs.URL+"/v1/query?stream=1", wire.QueryRequest{Query: queryX1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeNDJSON {
		t.Fatalf("content type = %q", ct)
	}
	header, rows, stats := readStream(t, resp.Body)
	if len(header.Vars) != 3 || len(rows) != 2 {
		t.Fatalf("header vars %v, %d rows", header.Vars, len(rows))
	}
	if stats.Rows != 2 || stats.Stats == nil {
		t.Fatalf("stats trailer: %+v", stats)
	}
	if header.Epoch != stats.Stats.Epoch {
		t.Fatalf("epoch mismatch: header %d, stats %d", header.Epoch, stats.Stats.Epoch)
	}
}

func TestQueryLimitTruncates(t *testing.T) {
	_, hs, _ := newTestServer(t)
	resp := postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1, Limit: 1})
	out := decode[wire.QueryResponse](t, resp)
	if len(out.Rows) != 1 || !out.Truncated {
		t.Fatalf("limit: %d rows, truncated %v", len(out.Rows), out.Truncated)
	}
}

func TestQueryErrors(t *testing.T) {
	_, hs, _ := newTestServer(t)
	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{`, http.StatusBadRequest},
		{"unknown field", `{"nope": 1}`, http.StatusBadRequest},
		{"empty query", `{"query": "  "}`, http.StatusBadRequest},
		{"parse error", `{"query": "SELECT broken"}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(hs.URL+"/v1/query", wire.ContentTypeJSON, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		out := decode[wire.ErrorResponse](t, resp)
		if resp.StatusCode != tc.want || out.Error == "" {
			t.Fatalf("%s: status %d (want %d), error %q", tc.name, resp.StatusCode, tc.want, out.Error)
		}
	}
	// Wrong method.
	resp, err := http.Get(hs.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query = %d", resp.StatusCode)
	}
}

func TestBatch(t *testing.T) {
	_, hs, _ := newTestServer(t)
	resp := postJSON(t, hs.URL+"/v1/batch", wire.BatchRequest{
		Queries: []string{queryX1, "SELECT broken", queryX1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decode[wire.BatchResponse](t, resp)
	if len(out.Results) != 3 {
		t.Fatalf("results = %d", len(out.Results))
	}
	if len(out.Results[0].Rows) != 2 || out.Results[1].Error == "" || len(out.Results[2].Rows) != 2 {
		t.Fatalf("batch items: %+v", out.Results)
	}
	if out.Stats.Requests != 3 || out.Stats.Failed != 1 || out.Stats.Results != 4 {
		t.Fatalf("batch stats: %+v", out.Stats)
	}
	// The repeated text re-used the plan: one of the two X1 executions
	// hit the cache.
	if out.Stats.CacheHits < 1 {
		t.Fatalf("batch stats report no cache hits: %+v", out.Stats)
	}
}

func TestApplyCompactSnapshot(t *testing.T) {
	_, hs, db := newTestServer(t)
	resp := postJSON(t, hs.URL+"/v1/apply", wire.ApplyRequest{
		Adds: []wire.Triple{
			{S: "J._McTiernan", P: "directed", O: "Die_Hard"},
			{S: "J._McTiernan", P: "worked_with", O: "S._de_Souza"},
			{S: "Newark", P: "motto", Lit: "Liberty and Prosperity", IsLit: true},
		},
	})
	out := decode[wire.ApplyResponse](t, resp)
	if out.Stats.Epoch != 1 || out.Stats.Added != 3 {
		t.Fatalf("apply stats: %+v", out.Stats)
	}
	if db.Epoch() != 1 {
		t.Fatalf("session epoch = %d", db.Epoch())
	}

	// The new snapshot serves the extra match.
	qr := decode[wire.QueryResponse](t, postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1}))
	if len(qr.Rows) != 3 || qr.Epoch != 1 {
		t.Fatalf("post-apply query: %d rows at epoch %d", len(qr.Rows), qr.Epoch)
	}

	// An empty delta is a no-op: same epoch, no invalidation.
	out = decode[wire.ApplyResponse](t, postJSON(t, hs.URL+"/v1/apply", wire.ApplyRequest{}))
	if !out.Stats.NoOp || out.Stats.Epoch != 1 {
		t.Fatalf("empty apply: %+v", out.Stats)
	}

	cr := decode[wire.ApplyResponse](t, postJSON(t, hs.URL+"/v1/compact", nil))
	if cr.Stats.Epoch != 2 || !cr.Stats.Compacted {
		t.Fatalf("compact stats: %+v", cr.Stats)
	}

	resp, err := http.Get(hs.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap := decode[wire.SnapshotResponse](t, resp)
	if snap.Epoch != 2 || snap.Triples != 23 || snap.OverlaySize != 0 || snap.Compactions != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

func TestApplyMalformedTriple(t *testing.T) {
	_, hs, db := newTestServer(t)
	for name, bad := range map[string]wire.Triple{
		"empty subject":    {S: "", P: "directed", O: "X"},
		"ambiguous object": {S: "a", P: "p", O: "iri", Lit: "lit"},
	} {
		resp := postJSON(t, hs.URL+"/v1/apply", wire.ApplyRequest{Adds: []wire.Triple{bad}})
		out := decode[wire.ErrorResponse](t, resp)
		if resp.StatusCode != http.StatusBadRequest || out.Error == "" {
			t.Fatalf("%s: status %d, error %q", name, resp.StatusCode, out.Error)
		}
	}
	if db.Epoch() != 0 {
		t.Fatal("failed apply advanced the epoch")
	}
}

func TestHealthAndDrain(t *testing.T) {
	srv, hs, _ := newTestServer(t)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		h := decode[wire.HealthResponse](t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %+v", path, resp.StatusCode, h)
		}
	}
	srv.StartDrain()
	// Liveness is unaffected by draining — the process still serves.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decode[wire.HealthResponse](t, resp)
	if resp.StatusCode != http.StatusOK || h.Status != "draining" {
		t.Fatalf("draining healthz: %d %+v", resp.StatusCode, h)
	}
	// Readiness flips to 503 so routers/load balancers move on first.
	resp, err = http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	h = decode[wire.HealthResponse](t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining readyz: %d %+v", resp.StatusCode, h)
	}
	// Draining only flips readiness: in-flight/new work is still served
	// until the HTTP server itself shuts down.
	qr := postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1})
	if qr.StatusCode != http.StatusOK {
		t.Fatalf("query while draining = %d", qr.StatusCode)
	}
	qr.Body.Close()
}

func TestReadinessHookAndReadOnly(t *testing.T) {
	notReady := errors.New("bootstrap in progress")
	var gate atomic.Pointer[error]
	gate.Store(&notReady)
	_, hs, _ := newTestServer(t,
		WithReadiness(func() error {
			if e := gate.Load(); e != nil && *e != nil {
				return *e
			}
			return nil
		}),
		WithReadOnly(),
	)

	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	h := decode[wire.HealthResponse](t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "notready" || h.Reason == "" {
		t.Fatalf("readyz while not ready: %d %+v", resp.StatusCode, h)
	}
	var ready error
	gate.Store(&ready)
	resp, err = http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	h = decode[wire.HealthResponse](t, resp)
	if resp.StatusCode != http.StatusOK || h.Status != "ready" {
		t.Fatalf("readyz once ready: %d %+v", resp.StatusCode, h)
	}

	// Read-only mode: every mutating endpoint refuses with 403, reads
	// still work.
	for _, path := range []string{"/v1/apply", "/v1/compact", "/v1/checkpoint"} {
		resp := postJSON(t, hs.URL+path, wire.ApplyRequest{})
		out := decode[wire.ErrorResponse](t, resp)
		if resp.StatusCode != http.StatusForbidden || out.Error == "" {
			t.Fatalf("%s on read-only server: %d %+v", path, resp.StatusCode, out)
		}
	}
	qr := postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1})
	if qr.StatusCode != http.StatusOK {
		t.Fatalf("query on read-only server = %d", qr.StatusCode)
	}
	qr.Body.Close()
}

func TestMetricsEndpoint(t *testing.T) {
	_, hs, _ := newTestServer(t)
	postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1}).Body.Close()
	postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1}).Body.Close()
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(buf)
	for _, want := range []string{
		"dualsimd_requests_total 3", // 2 queries + this scrape... no: scrape is the 3rd request
		"dualsimd_queries_total 2",
		"dualsimd_epoch 0",
		"dualsimd_plan_cache_hits 1",
		"dualsimd_plan_cache_hit_rate 0.5",
		"dualsimd_rows_total 4",
		"dualsimd_shed_total 0",
	} {
		if !strings.Contains(body, want+"\n") {
			t.Fatalf("metrics miss %q:\n%s", want, body)
		}
	}
}

// TestOverloadSheds deterministically fills every slot and the queue,
// then asserts the next request is shed with 429 + Retry-After.
func TestOverloadSheds(t *testing.T) {
	srv, hs, _ := newTestServer(t, WithMaxInFlight(1), WithQueueDepth(1), WithRetryAfter(2*time.Second))
	// Occupy the single execution slot and the single queue spot
	// directly on the admission controller (white box — the HTTP path
	// cannot hold a slot open deterministically with fast queries).
	release, _, err := srv.admit.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	queued := make(chan struct{})
	qctx, qcancel := context.WithCancel(context.Background())
	defer qcancel()
	go func() {
		close(queued)
		rel, _, err := srv.admit.acquire(qctx)
		if err == nil {
			rel()
		}
	}()
	<-queued
	// Wait until the queued goroutine is counted.
	for i := 0; srv.admit.Queued() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if srv.admit.Queued() == 0 {
		t.Fatal("queue never filled")
	}

	resp := postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want 2", ra)
	}
	out := decode[wire.ErrorResponse](t, resp)
	if out.RetryAfterMs != 2000 {
		t.Fatalf("retryAfterMs = %d", out.RetryAfterMs)
	}
	if srv.Registry().Snapshot()["dualsimd_shed_total"] != 1 {
		t.Fatal("shed counter did not move")
	}
}

func TestQueryDeadline(t *testing.T) {
	_, hs, _ := newTestServer(t)
	// A 1ns-equivalent deadline: timeoutMs must be > 0 to take effect,
	// so use 1ms against a query that includes an artificial pause via
	// admission? The engine is too fast on fig1a — instead rely on the
	// context being expired before execution starts.
	resp := postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1, TimeoutMs: 1})
	// Either the query won the race (200) or the deadline fired (504);
	// both are legal, but a 504 must carry the error shape.
	switch resp.StatusCode {
	case http.StatusOK:
		resp.Body.Close()
	case http.StatusGatewayTimeout:
		out := decode[wire.ErrorResponse](t, resp)
		if !strings.Contains(out.Error, "deadline") {
			t.Fatalf("504 error = %q", out.Error)
		}
	default:
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// TestConcurrentQueriesAndApplies is the end-to-end acceptance test: N
// concurrent clients issue buffered and streamed queries while a writer
// interleaves Apply/Compact. Every response must be internally
// epoch-consistent (header epoch == stats epoch, bindings decodable) and
// every status must be 200 or 429 — never a hang, tear or race (run
// under -race).
func TestConcurrentQueriesAndApplies(t *testing.T) {
	_, hs, db := newTestServer(t, WithMaxInFlight(4), WithQueueDepth(2))
	const (
		clients   = 8
		perClient = 25
		applies   = 40
	)
	var wg sync.WaitGroup
	errc := make(chan error, clients+1)

	// Writer: live deltas on a dedicated predicate, with a compaction in
	// the middle (which renumbers node ids — the decode-against-pinned-
	// snapshot property under test).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < applies; i++ {
			if i == applies/2 {
				resp := postJSON(t, hs.URL+"/v1/compact", nil)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				continue
			}
			resp := postJSON(t, hs.URL+"/v1/apply", wire.ApplyRequest{
				Adds: []wire.Triple{{S: "upd:s" + strconv.Itoa(i), P: "upd:edge", O: "upd:o" + strconv.Itoa(i)}},
			})
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				errc <- fmt.Errorf("apply %d: status %d", i, resp.StatusCode)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if (c+i)%2 == 0 {
					resp := postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1})
					switch resp.StatusCode {
					case http.StatusOK:
						out := decode[wire.QueryResponse](t, resp)
						if out.Stats == nil || out.Epoch != out.Stats.Epoch {
							errc <- fmt.Errorf("buffered: inconsistent epochs %+v", out)
						}
						if len(out.Rows) < 2 {
							errc <- fmt.Errorf("buffered: %d rows", len(out.Rows))
						}
					case http.StatusTooManyRequests:
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					default:
						errc <- fmt.Errorf("buffered: status %d", resp.StatusCode)
						resp.Body.Close()
					}
				} else {
					resp := postJSON(t, hs.URL+"/v1/query?stream=1", wire.QueryRequest{Query: queryX1})
					switch resp.StatusCode {
					case http.StatusOK:
						header, rows, stats := readStream(t, resp.Body)
						resp.Body.Close()
						if header.Epoch != stats.Stats.Epoch {
							errc <- fmt.Errorf("stream: header epoch %d != stats epoch %d", header.Epoch, stats.Stats.Epoch)
						}
						if len(rows) < 2 {
							errc <- fmt.Errorf("stream: %d rows", len(rows))
						}
						for _, ev := range rows {
							for _, v := range ev.Values {
								if v == nil || !strings.HasPrefix(*v, "<") {
									errc <- fmt.Errorf("stream: undecodable binding %v at epoch %d", ev.Values, header.Epoch)
								}
							}
						}
					case http.StatusTooManyRequests:
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					default:
						errc <- fmt.Errorf("stream: status %d", resp.StatusCode)
						resp.Body.Close()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if db.Epoch() == 0 {
		t.Fatal("writer never advanced the epoch")
	}
}

func TestOptionValidation(t *testing.T) {
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, opt := range []Option{
		WithMaxInFlight(0), WithQueueDepth(-1), WithRetryAfter(0),
		WithDefaultTimeout(-time.Second), WithRegistry(nil),
	} {
		if _, err := New(db, opt); err == nil {
			t.Fatal("invalid option accepted")
		}
	}
	if _, err := New(nil); err == nil {
		t.Fatal("nil session accepted")
	}
}

// TestCheckpointEndpoint covers /v1/checkpoint on a durable session:
// applies accumulate WAL records, the endpoint rolls them into a
// snapshot, and the persistence gauges move on /metrics.
func TestCheckpointEndpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st, dualsim.WithPlanCache(16), dualsim.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		db.Close()
	})

	resp := postJSON(t, hs.URL+"/v1/apply", wire.ApplyRequest{Adds: []wire.Triple{
		{S: "ck:s", P: "ck:p", O: "ck:o"},
	}})
	var ar wire.ApplyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ar.Stats.WALBytes <= 0 {
		t.Fatalf("apply did not report WAL bytes: %+v", ar.Stats)
	}

	resp = postJSON(t, hs.URL+"/v1/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Dualsim-Epoch"); got != "1" {
		t.Fatalf("checkpoint epoch header %q, want 1", got)
	}
	var cr wire.CheckpointResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cr.Stats.Epoch != 1 || cr.Stats.SnapshotBytes <= 0 || cr.Stats.WALReclaimed <= 0 {
		t.Fatalf("checkpoint stats: %+v", cr.Stats)
	}

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"dualsimd_durable 1",
		"dualsimd_wal_records 0", // just checkpointed
		"dualsimd_last_checkpoint_epoch 1",
		"dualsimd_checkpoint_requests_total 1",
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("metrics page misses %q", want)
		}
	}
}

// TestCheckpointNotDurableIs409: a server without a data dir cannot
// checkpoint, and says so with a non-retryable status.
func TestCheckpointNotDurableIs409(t *testing.T) {
	_, hs, _ := newTestServer(t)
	resp := postJSON(t, hs.URL+"/v1/checkpoint", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint on non-durable server: status %d, want 409", resp.StatusCode)
	}
}

// walEvents reads a full NDJSON /v1/wal response body.
func walEvents(t *testing.T, resp *http.Response) []wire.WALEvent {
	t.Helper()
	defer resp.Body.Close()
	var evs []wire.WALEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var ev wire.WALEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("WAL event line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestWALReplicationEndpoints drives the primary half of replication:
// tail after writes, bootstrap snapshot, and the 410 epoch-gap answer
// once a checkpoint truncates the requested range.
func TestWALReplicationEndpoints(t *testing.T) {
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st, dualsim.WithDataDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		db.Close()
	})
	ctx := context.Background()
	if _, err := db.Apply(ctx, dualsim.Delta{Adds: []dualsim.Triple{dualsim.T("n1", "directed", "m1")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Apply(ctx, dualsim.Delta{Adds: []dualsim.Triple{dualsim.T("n2", "directed", "m2")}}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hs.URL + "/v1/wal?fromEpoch=0")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wal tail status = %d", resp.StatusCode)
	}
	evs := walEvents(t, resp)
	if len(evs) != 4 {
		t.Fatalf("tail events = %+v, want header+2 applies+end", evs)
	}
	if evs[0].Kind != wire.WALHeader || evs[0].Epoch != 2 || evs[0].CheckpointEpoch != 0 {
		t.Fatalf("header = %+v", evs[0])
	}
	for i, wantEpoch := range []uint64{1, 2} {
		ev := evs[1+i]
		if ev.Kind != wire.WALApply || ev.Epoch != wantEpoch || len(ev.Adds) != 1 {
			t.Fatalf("apply[%d] = %+v", i, ev)
		}
	}
	if evs[3].Kind != wire.WALEnd || evs[3].Epoch != 2 {
		t.Fatalf("end = %+v", evs[3])
	}

	// A caught-up replica's poll: no records, just header+end.
	resp, err = http.Get(hs.URL + "/v1/wal?fromEpoch=2&waitMs=10")
	if err != nil {
		t.Fatal(err)
	}
	if evs = walEvents(t, resp); len(evs) != 2 || evs[0].Kind != wire.WALHeader || evs[1].Kind != wire.WALEnd {
		t.Fatalf("caught-up tail = %+v", evs)
	}

	// Bootstrap snapshot: the streamed container decodes to the live
	// state at the advertised epoch.
	resp, err = http.Get(hs.URL + "/v1/wal/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wal snapshot status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Dualsim-Epoch"); got != "2" {
		t.Fatalf("snapshot epoch header = %q", got)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	bst, epoch, err := persist.DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || bst.NumTriples() != db.Store().NumTriples() {
		t.Fatalf("bootstrap decode: epoch %d, %d triples; want 2, %d", epoch, bst.NumTriples(), db.Store().NumTriples())
	}

	// Checkpoint truncates the WAL; a tail from before the checkpoint
	// epoch must 410 and point at the snapshot to bootstrap from.
	if _, err := db.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(hs.URL + "/v1/wal?fromEpoch=0")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("gap tail status = %d, want 410", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Dualsim-Checkpoint-Epoch"); got != "2" {
		t.Fatalf("gap checkpoint-epoch header = %q, want 2", got)
	}
	resp.Body.Close()
}

// TestWALTailNotDurableIs409: without a data dir there is no WAL to
// stream, and the status is non-retryable.
func TestWALTailNotDurableIs409(t *testing.T) {
	_, hs, _ := newTestServer(t)
	resp, err := http.Get(hs.URL + "/v1/wal?fromEpoch=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("wal tail on non-durable server: %d, want 409", resp.StatusCode)
	}
}

// TestExportEndpoint: the router's gather path gets exactly the
// requested predicate slices, pinned to one epoch; unknown predicates
// export as nothing.
func TestExportEndpoint(t *testing.T) {
	_, hs, db := newTestServer(t)
	resp, err := http.Get(hs.URL + "/v1/export?pred=directed&pred=no_such_predicate")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status = %d", resp.StatusCode)
	}
	out := decode[wire.ExportResponse](t, resp)
	pid, ok := db.Store().PredIDOf("directed")
	if !ok {
		t.Fatal("fixture lost the directed predicate")
	}
	if out.Epoch != 0 || len(out.Triples) != db.Store().PredCount(pid) {
		t.Fatalf("export = epoch %d, %d triples; want 0, %d", out.Epoch, len(out.Triples), db.Store().PredCount(pid))
	}
	for _, tr := range out.Triples {
		if tr.P != "directed" {
			t.Fatalf("export leaked predicate %q", tr.P)
		}
	}
	// No predicates asked for → a routing bug on the caller side; 400.
	resp, err = http.Get(hs.URL + "/v1/export")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty export status = %d, want 400", resp.StatusCode)
	}
}

// TestSwapDB: the replica re-bootstrap path swaps the served session
// atomically; later requests answer from the new session and epoch.
func TestSwapDB(t *testing.T) {
	srv, hs, _ := newTestServer(t)
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db2, err := dualsim.OpenAt(st, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db2.Close() })
	srv.SwapDB(db2)
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	h := decode[wire.HealthResponse](t, resp)
	if h.Epoch != 7 {
		t.Fatalf("epoch after swap = %d, want 7", h.Epoch)
	}
	qr := postJSON(t, hs.URL+"/v1/query", wire.QueryRequest{Query: queryX1})
	if got := qr.Header.Get("X-Dualsim-Epoch"); got != "7" {
		t.Fatalf("query epoch after swap = %q, want 7", got)
	}
	qr.Body.Close()
}
