package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned by the admission controller when both the
// in-flight slots and the wait queue are full; the HTTP layer maps it to
// 429 with a Retry-After hint.
var ErrOverloaded = errors.New("server: overloaded, request shed")

// admission is a semaphore-based admission controller with bounded
// queueing: up to maxInFlight requests execute concurrently, up to
// queueDepth more wait for a slot, and everything beyond is shed
// immediately — the bounded-queue discipline that keeps an overloaded
// server's latency finite instead of letting the accept backlog grow
// without bound.
type admission struct {
	slots      chan struct{} // capacity = maxInFlight
	queueDepth int64
	queued     atomic.Int64
	inFlight   atomic.Int64
}

func newAdmission(maxInFlight, queueDepth int) *admission {
	a := &admission{
		slots:      make(chan struct{}, maxInFlight),
		queueDepth: int64(queueDepth),
	}
	for i := 0; i < maxInFlight; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// claim books a just-received slot token and returns its idempotent
// release.
func (a *admission) claim() func() {
	a.inFlight.Add(1)
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			a.inFlight.Add(-1)
			a.slots <- struct{}{}
		}
	}
}

// acquire claims an execution slot, waiting in the bounded queue when
// all slots are busy. It returns ErrOverloaded when the queue is full,
// or ctx.Err() when the caller gave up while queued; queued reports the
// request took the slow path (surfaced as X-Dualsim-Queued and in the
// access log). On success the caller must invoke the returned release
// exactly once.
func (a *admission) acquire(ctx context.Context) (release func(), queued bool, err error) {
	// Fast path: a slot is free.
	select {
	case <-a.slots:
		return a.claim(), false, nil
	default:
	}
	release, err = a.admitQueued(ctx)
	return release, true, err
}

// admitQueued is the slow path, entered after a fast-path miss: wait,
// but only if the queue has room. The counter is advisory — two racing
// requests may both enter a queue with one spot left — which bounds the
// queue at queueDepth + O(racers), exactly the property that matters
// (finite, near the target).
func (a *admission) admitQueued(ctx context.Context) (release func(), err error) {
	if a.queued.Load() >= a.queueDepth {
		// A slot may have freed between the fast-path poll and this shed
		// decision (release does not drain the queue counter for us);
		// re-check non-blockingly so that window is not turned into a
		// spurious 429 while capacity sits idle.
		select {
		case <-a.slots:
			return a.claim(), nil
		default:
			return nil, ErrOverloaded
		}
	}
	a.queued.Add(1)
	defer a.queued.Add(-1)
	select {
	case <-a.slots:
		return a.claim(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// InFlight returns the number of currently executing requests.
func (a *admission) InFlight() int64 { return a.inFlight.Load() }

// Queued returns the number of requests waiting for a slot.
func (a *admission) Queued() int64 { return a.queued.Load() }
