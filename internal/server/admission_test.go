package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdmissionShedRechecksSlots is the white-box regression for the
// fast-path race: a request that misses the fast-path select and finds
// the queue counter full must re-check the slot channel before
// shedding — a release landing between the two checks would otherwise
// turn into a 429 while a slot sits free. The test pins the exact
// interleaving by entering the slow path (admitQueued) directly: "the
// fast path already missed" is the method's precondition, the release
// lands before the shed decision.
func TestAdmissionShedRechecksSlots(t *testing.T) {
	a := newAdmission(1, 2)
	release, _, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the queue counter as racing waiters would (it is
	// advisory; poking it directly makes the schedule deterministic).
	a.queued.Add(2)
	release() // the slot frees after the fast-path miss, before the shed check

	rel2, err := a.admitQueued(context.Background())
	a.queued.Add(-2)
	if err != nil {
		t.Fatalf("slow path shed despite a free slot: %v", err)
	}
	rel2()
	// With the slot genuinely busy and the queue full, shedding is the
	// right answer.
	rel3, _, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel3()
	a.queued.Add(2)
	_, err = a.admitQueued(context.Background())
	a.queued.Add(-2)
	if err != ErrOverloaded {
		t.Fatalf("full queue with busy slot: %v, want ErrOverloaded", err)
	}
}

// TestAdmissionAcquireReleaseHammer hammers acquire/release from many
// goroutines (run under -race in CI): no slot may be lost or double
// granted, and with queueing disabled every failure must be a shed, not
// a stall.
func TestAdmissionAcquireReleaseHammer(t *testing.T) {
	const (
		slots   = 4
		workers = 32
		rounds  = 500
	)
	a := newAdmission(slots, 0) // queueDepth 0: miss ⇒ shed path every time
	var (
		wg      sync.WaitGroup
		held    atomic.Int64
		granted atomic.Int64
		shed    atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				release, _, err := a.acquire(context.Background())
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("unexpected acquire error: %v", err)
						return
					}
					shed.Add(1)
					continue
				}
				if h := held.Add(1); h > slots {
					t.Errorf("%d requests hold slots concurrently (max %d)", h, slots)
				}
				granted.Add(1)
				held.Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if granted.Load() == 0 {
		t.Fatal("no request was ever admitted")
	}
	// Every slot must be back: slots sequential acquires succeed
	// immediately.
	var rels []func()
	for i := 0; i < slots; i++ {
		release, _, err := a.acquire(context.Background())
		if err != nil {
			t.Fatalf("slot %d lost after the hammer: %v", i, err)
		}
		rels = append(rels, release)
	}
	for _, r := range rels {
		r()
	}
	if a.InFlight() != 0 || a.Queued() != 0 {
		t.Fatalf("counters did not settle: inFlight=%d queued=%d", a.InFlight(), a.Queued())
	}
}

// TestAdmissionQueueTimeout keeps the existing slow-path contract: a
// queued caller whose context dies gets ctx.Err, not a shed.
func TestAdmissionQueueTimeout(t *testing.T) {
	a := newAdmission(1, 4)
	release, _, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := a.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire: %v", err)
	}
}
