// Package server exposes a dualsim session over HTTP/JSON — the serving
// subsystem behind cmd/dualsimd. It is a thin, concurrency-hardened
// front end over the session layer the earlier PRs built:
//
//	POST /v1/query     one query through the plan cache; buffered JSON
//	                   or chunked NDJSON row streaming (?stream=1,
//	                   Accept: application/x-ndjson, or "stream": true)
//	POST /v1/batch     a query slice fanned over the session batch pool
//	POST /v1/apply     a live delta (dels before adds, atomic, epoch++)
//	POST /v1/compact   on-demand overlay compaction
//	POST /v1/checkpoint roll the durable session's WAL into a snapshot
//	GET  /v1/snapshot  current epoch + store shape
//	GET  /v1/export    predicate slices at a pinned epoch (router gather)
//	GET  /v1/wal       replication tail: WAL records after an epoch (NDJSON)
//	GET  /v1/wal/snapshot  streamed DSIMSNP1 bootstrap snapshot
//	GET  /healthz      liveness (200 as long as the process serves)
//	GET  /readyz       readiness (503 while draining or not ready)
//	GET  /metrics      Prometheus-style text metrics
//
// Consistency: every query executes against a snapshot pinned for that
// request (MVCC-lite), and every response is epoch-tagged — the NDJSON
// header and the stats trailer carry the same epoch, results are decoded
// against that epoch's dictionary, and the X-Dualsim-Epoch response
// header repeats it. Concurrent /v1/apply traffic never tears a
// response.
//
// Overload: a semaphore-based admission controller (WithMaxInFlight)
// with a bounded wait queue (WithQueueDepth) sheds excess load with
// 429 + Retry-After instead of queueing unboundedly; per-request
// deadlines (timeoutMs) map onto the session's context-cancellation
// plumbing and surface as 504.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dualsim"
	"dualsim/internal/buildinfo"
	"dualsim/internal/metrics"
	"dualsim/internal/persist"
	"dualsim/internal/storage"
	"dualsim/internal/trace"
	"dualsim/internal/wire"
)

// maxParallelism sizes the default in-flight bound.
func maxParallelism() int { return runtime.GOMAXPROCS(0) }

// streamChunk is how many NDJSON row events are written between flushes:
// large enough to amortize the chunked-encoding overhead, small enough
// that a slow consumer sees steady progress.
const streamChunk = 256

// maxBodyBytes bounds request bodies (applies included); beyond it the
// decoder fails with 400 rather than buffering an unbounded upload.
const maxBodyBytes = 64 << 20

// Option configures a Server.
type Option func(*config) error

type config struct {
	maxInFlight    int
	queueDepth     int
	retryAfter     time.Duration
	defaultTimeout time.Duration
	registry       *metrics.Registry
	readiness      func() error
	readOnly       bool
	slowLogSize    int
	slowThreshold  time.Duration
	stmtCapacity   int  // statement statistics store capacity (see stmtSet)
	stmtSet        bool // WithStatementStats was given (0 then means disabled)
}

// WithMaxInFlight bounds the number of concurrently executing requests
// (default 2×GOMAXPROCS). Work beyond it waits in the bounded queue.
func WithMaxInFlight(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("server: max in-flight must be positive, got %d", n)
		}
		c.maxInFlight = n
		return nil
	}
}

// WithQueueDepth bounds how many admitted-but-waiting requests may queue
// for an execution slot (default 64). Requests beyond maxInFlight +
// queueDepth are shed with 429 and a Retry-After hint. 0 disables
// queueing entirely: every request beyond the in-flight bound sheds.
func WithQueueDepth(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("server: negative queue depth %d", n)
		}
		c.queueDepth = n
		return nil
	}
}

// WithRetryAfter sets the Retry-After hint attached to shed responses
// (default 1s).
func WithRetryAfter(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("server: retry-after must be positive, got %v", d)
		}
		c.retryAfter = d
		return nil
	}
}

// WithDefaultTimeout bounds requests that do not carry their own
// timeoutMs (default: unbounded).
func WithDefaultTimeout(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("server: negative default timeout %v", d)
		}
		c.defaultTimeout = d
		return nil
	}
}

// WithRegistry shares an existing metrics registry instead of creating a
// private one — so engine-level series and serving series land on the
// same /metrics page.
func WithRegistry(r *metrics.Registry) Option {
	return func(c *config) error {
		if r == nil {
			return fmt.Errorf("server: nil metrics registry")
		}
		c.registry = r
		return nil
	}
}

// WithReadiness installs a readiness hook consulted by GET /readyz: a
// non-nil error makes the endpoint answer 503 with the error as the
// reason. A replica daemon wires its bootstrap/lag state through this,
// so the router (and load balancers) stop routing to an instance that
// would serve stale or no data — while /healthz keeps reporting the
// process alive.
func WithReadiness(fn func() error) Option {
	return func(c *config) error {
		if fn == nil {
			return fmt.Errorf("server: nil readiness hook")
		}
		c.readiness = fn
		return nil
	}
}

// WithReadOnly refuses the mutating endpoints (/v1/apply, /v1/compact,
// /v1/checkpoint) with 403 — the serving mode of a WAL-following
// replica, whose state must change only through the replication stream.
func WithReadOnly() Option {
	return func(c *config) error {
		c.readOnly = true
		return nil
	}
}

// WithSlowQueryLog keeps the n most recent queries that took at least
// threshold in a bounded in-memory ring, served at GET /v1/debug/slow.
// Enabling it traces every query internally (so slow entries carry a
// full span tree); the trace is still only returned to clients that
// asked for one. Default off — the untraced hot path stays
// allocation-free.
func WithSlowQueryLog(n int, threshold time.Duration) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("server: slow-query log size must be positive, got %d", n)
		}
		if threshold < 0 {
			return fmt.Errorf("server: negative slow-query threshold %v", threshold)
		}
		c.slowLogSize, c.slowThreshold = n, threshold
		return nil
	}
}

// Server serves one dualsim session over HTTP. Safe for concurrent use;
// construct with New and mount Handler (or the Server itself, it
// implements http.Handler).
type Server struct {
	db    atomic.Pointer[dualsim.DB] // swappable: a replica re-bootstrap replaces the session
	admit *admission
	mux   *http.ServeMux
	cfg   config
	reg   *metrics.Registry
	slow  *trace.SlowLog // nil unless WithSlowQueryLog

	// stmts is the workload statistics store behind
	// GET /v1/debug/statements; nil when WithStatementStats(0) disabled
	// it (all methods are nil-safe no-ops then). topStmts memoizes its
	// sorted snapshot for the top-rank /metrics gauges.
	stmts    *statementStore
	topStmts topCache

	// stageSeconds are the per-pipeline-stage latency histograms, keyed
	// by stage name; fixed at construction so Observe stays lock-free.
	stageSeconds map[string]*metrics.Histogram

	requests     *metrics.Counter
	queries      *metrics.Counter
	batches      *metrics.Counter
	applies      *metrics.Counter
	shed         *metrics.Counter
	errors       *metrics.Counter
	rows         *metrics.Counter
	solverRounds *metrics.Counter
	checkpoints  *metrics.Counter
	walStreams   *metrics.Counter
	exports      *metrics.Counter
	draining     *metrics.Gauge
	latency      *metrics.Histogram
}

// session returns the server's current session. Handlers resolve it
// once per request; a concurrent SwapDB affects only later requests.
func (s *Server) session() *dualsim.DB { return s.db.Load() }

// SwapDB atomically replaces the served session — the replica
// re-bootstrap path: a follower that hit a WAL epoch gap builds a fresh
// session from a new snapshot and swaps it in while reads keep flowing.
// In-flight requests finish on the session they resolved; the old
// session is NOT closed here (its pinned snapshots may still be
// serving) — a non-durable replica session holds no resources beyond
// memory, which the GC reclaims once the last pin drops.
func (s *Server) SwapDB(db *dualsim.DB) {
	if db != nil {
		s.db.Store(db)
	}
}

// New builds a server over an open session. The session stays owned by
// the caller (Close it after the HTTP server is down).
func New(db *dualsim.DB, opts ...Option) (*Server, error) {
	if db == nil {
		return nil, fmt.Errorf("server: nil session")
	}
	cfg := config{
		maxInFlight: 2 * maxParallelism(),
		queueDepth:  64,
		retryAfter:  time.Second,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	reg := cfg.registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		admit: newAdmission(cfg.maxInFlight, cfg.queueDepth),
		mux:   http.NewServeMux(),
		cfg:   cfg,
		reg:   reg,

		requests:     reg.Counter("dualsimd_requests_total", "HTTP requests received"),
		queries:      reg.Counter("dualsimd_queries_total", "queries executed (incl. batch members)"),
		batches:      reg.Counter("dualsimd_batches_total", "batch requests executed"),
		applies:      reg.Counter("dualsimd_applies_total", "apply/compact operations"),
		shed:         reg.Counter("dualsimd_shed_total", "requests shed with 429 by admission control"),
		errors:       reg.Counter("dualsimd_errors_total", "requests answered with a non-2xx status"),
		rows:         reg.Counter("dualsimd_rows_total", "result rows returned"),
		solverRounds: reg.Counter("dualsimd_solver_rounds_total", "dual-simulation solver rounds executed"),
		checkpoints:  reg.Counter("dualsimd_checkpoint_requests_total", "checkpoints completed via /v1/checkpoint"),
		walStreams:   reg.Counter("dualsimd_wal_streams_total", "WAL tail requests served to replicas"),
		exports:      reg.Counter("dualsimd_exports_total", "predicate-slice exports served to routers"),
		draining:     reg.Gauge("dualsimd_draining", "1 while the server is draining for shutdown"),
		latency:      reg.Histogram("dualsimd_request_seconds", "request latency", metrics.DefLatencyBuckets),
	}
	s.slow = trace.NewSlowLog(cfg.slowLogSize, cfg.slowThreshold)
	s.stmts = newStatementStore(cfg)
	s.registerStatementMetrics(reg)
	s.stageSeconds = map[string]*metrics.Histogram{
		"fingerprint": reg.Histogram("dualsimd_stage_fingerprint_seconds", "fingerprint pre-filter stage latency", metrics.DefLatencyBuckets),
		"prune":       reg.Histogram("dualsimd_stage_prune_seconds", "dual-simulation pruning stage latency", metrics.DefLatencyBuckets),
		"evaluate":    reg.Histogram("dualsimd_stage_evaluate_seconds", "engine evaluation stage latency", metrics.DefLatencyBuckets),
	}
	bi := buildinfo.Get()
	reg.InfoGauge("dualsim_build_info", "build metadata of the serving binary", map[string]string{
		"version": bi.Version, "revision": bi.Revision, "goversion": bi.GoVersion,
	})
	s.db.Store(db)
	reg.GaugeFunc("dualsimd_in_flight", "requests currently executing", func() float64 {
		return float64(s.admit.InFlight())
	})
	reg.GaugeFunc("dualsimd_queued", "requests waiting for an execution slot", func() float64 {
		return float64(s.admit.Queued())
	})
	reg.GaugeFunc("dualsimd_epoch", "current store epoch", func() float64 {
		return float64(s.session().Epoch())
	})
	// Computed from CacheStats at scrape time; named without the _total
	// suffix OpenMetrics reserves for counters, since GaugeFunc is the
	// registry's only computed hook.
	reg.GaugeFunc("dualsimd_plan_cache_hits", "plan cache hits", func() float64 {
		return float64(s.session().CacheStats().Hits)
	})
	reg.GaugeFunc("dualsimd_plan_cache_misses", "plan cache misses", func() float64 {
		return float64(s.session().CacheStats().Misses)
	})
	reg.GaugeFunc("dualsimd_plan_cache_hit_rate", "plan cache hit rate in [0,1]", func() float64 {
		return s.session().CacheStats().HitRate()
	})
	reg.GaugeFunc("dualsimd_overlay_size", "live-update overlay ledger size", func() float64 {
		return float64(s.session().OverlaySize())
	})
	reg.GaugeFunc("dualsimd_triples", "triples in the current snapshot", func() float64 {
		return float64(s.session().Store().NumTriples())
	})
	// Durability series: all read from PersistStats, all zero on a
	// session without a data dir (dualsimd_durable tells the two apart).
	reg.GaugeFunc("dualsimd_durable", "1 when the session persists to a data dir", func() float64 {
		if s.session().Durable() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("dualsimd_wal_bytes", "write-ahead log size in bytes (since the last checkpoint)", func() float64 {
		return float64(s.session().PersistStats().WALBytes)
	})
	reg.GaugeFunc("dualsimd_wal_records", "write-ahead log records since the last checkpoint", func() float64 {
		return float64(s.session().PersistStats().WALRecords)
	})
	reg.GaugeFunc("dualsimd_checkpoints", "completed checkpoints (including the initial one)", func() float64 {
		return float64(s.session().PersistStats().Checkpoints)
	})
	reg.GaugeFunc("dualsimd_last_checkpoint_epoch", "epoch of the newest on-disk snapshot", func() float64 {
		return float64(s.session().PersistStats().LastCheckpointEpoch)
	})
	reg.GaugeFunc("dualsimd_snapshot_bytes", "size of the newest on-disk snapshot", func() float64 {
		return float64(s.session().PersistStats().SnapshotBytes)
	})
	reg.GaugeFunc("dualsimd_checkpoint_failures", "automatic checkpoints that failed (WAL keeps growing)", func() float64 {
		return float64(s.session().PersistStats().CheckpointFailures)
	})
	reg.GaugeFunc("dualsimd_ready", "1 when /readyz answers 200", func() float64 {
		if s.readyErr() == nil {
			return 1
		}
		return 0
	})

	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/apply", s.handleApply)
	s.mux.HandleFunc("POST /v1/compact", s.handleCompact)
	s.mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/export", s.handleExport)
	s.mux.HandleFunc("GET /v1/wal", s.handleWAL)
	s.mux.HandleFunc("GET /v1/wal/snapshot", s.handleWALSnapshot)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/debug/slow", s.handleSlow)
	s.mux.HandleFunc("GET /v1/debug/statements", s.handleStatements)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s }

// Registry returns the server's metrics registry (shared when
// WithRegistry was given).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// StartDrain flips the server into draining mode: /readyz answers 503
// so load balancers and the cluster router stop routing here, while
// in-flight and follow-up requests keep being served until the HTTP
// server shuts down — /healthz stays 200 the whole time, because the
// process is alive and draining is healthy behaviour. Called by
// dualsimd when a termination signal arrives, before http.Server.
// Shutdown drains the connections.
func (s *Server) StartDrain() { s.draining.Set(1) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	start := time.Now()
	s.mux.ServeHTTP(w, r)
	s.latency.Observe(time.Since(start).Seconds())
}

// ---------------------------------------------------------------------------
// Handlers

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Admission runs before the body is even decoded: a shed request
	// must cost near-nothing, and the slot covers all of the request's
	// work (decode included), so overload cannot buy unbounded decode
	// CPU either.
	release, ok := s.admitOr429(w, r)
	if !ok {
		// Attribute the rejection to its statement: admission protects
		// execution capacity, and the statistics table should show who
		// is being shed.
		s.recordShedStatement(r)
		return
	}
	defer release()
	var req wire.QueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		s.fail(w, http.StatusBadRequest, "empty query")
		return
	}
	s.queries.Inc()

	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	if mode := explainMode(r, req); mode != "" {
		s.handleExplain(w, r, ctx, req.Query, mode)
		return
	}

	// Tracing: explicit requests get the span tree back; an enabled
	// slow-query log traces every request internally so slow entries
	// carry one, but only explicit requests see it in the response.
	wantTrace, tp := traceRequested(r, req.Trace)
	var tr *trace.Trace
	if wantTrace || s.slow.Enabled() {
		if tp != "" {
			tr = trace.Continue(tp, "query")
		} else {
			tr = trace.New("query")
		}
		ctx = trace.ContextWithSpan(ctx, tr.Root())
		w.Header().Set("X-Dualsim-Trace", tr.ID())
	}
	start := time.Now()

	// Pin the epoch for the whole request: execution answers from the
	// pinned snapshot and the rows are decoded against the same
	// dictionary, so a concurrent Apply (or even a compaction, which
	// renumbers every node) cannot tear the response.
	snap := s.session().Snapshot()

	if wantsStream(r, req) {
		// Incremental path: rows come straight off the executor's
		// iterator tree — the header (and the first rows) are on the
		// wire while later rows are still being computed.
		rows, err := snap.QueryStream(ctx, req.Query)
		if err != nil {
			s.recordStatement(req.Query, nil, time.Since(start), err)
			s.failExec(w, r, err)
			return
		}
		defer rows.Close()
		w.Header().Set("X-Dualsim-Epoch", strconv.FormatUint(rows.Stats().Epoch, 10))
		s.streamRows(w, snap.Store(), rows, req.Limit, tr, wantTrace, req.Query, start)
		return
	}

	res, stats, err := snap.Query(ctx, req.Query)
	s.recordStatement(req.Query, stats, time.Since(start), err)
	if err != nil {
		s.failExec(w, r, err)
		return
	}
	s.finishTrace(tr, wantTrace, stats, req.Query, time.Since(start), http.StatusOK)
	s.observeStages(stats)
	s.solverRounds.Add(int64(stats.Solver.Rounds))
	rows, truncated := res.Rows, false
	if req.Limit > 0 && len(rows) > req.Limit {
		rows, truncated = rows[:req.Limit], true
	}
	s.rows.Add(int64(len(rows)))

	w.Header().Set("X-Dualsim-Epoch", strconv.FormatUint(stats.Epoch, 10))
	out := &wire.QueryResponse{
		Vars:      append([]string{}, res.Vars...),
		Rows:      decodeRows(snap.Store(), rows),
		Epoch:     stats.Epoch,
		Truncated: truncated,
		Stats:     stats,
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleExplain answers an EXPLAIN / EXPLAIN ANALYZE request: the
// compiled plan tree (with the executed counters when analyzing)
// instead of the result rows.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, ctx context.Context, src, mode string) {
	var (
		ex  *dualsim.Explain
		err error
	)
	switch mode {
	case "plan":
		ex, err = s.session().Explain(ctx, src)
	case "analyze":
		ex, err = s.session().ExplainAnalyze(ctx, src)
	default:
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("unknown explain mode %q (want plan or analyze)", mode))
		return
	}
	if err != nil {
		s.failExec(w, r, err)
		return
	}
	w.Header().Set("X-Dualsim-Epoch", strconv.FormatUint(ex.Epoch, 10))
	s.writeJSON(w, http.StatusOK, &wire.ExplainResponse{Explain: ex, Text: ex.Text()})
}

// finishTrace seals a request's trace: ends the root span, attaches the
// tree to the response stats when the client asked for it, and feeds
// the slow-query log.
func (s *Server) finishTrace(tr *trace.Trace, wantTrace bool, stats *dualsim.ExecStats, query string, d time.Duration, status int) {
	if tr == nil {
		return
	}
	tr.Root().End()
	var decisions []string
	var epoch uint64
	var fprint string
	if stats != nil {
		decisions, epoch, fprint = stats.PlanDecisions, stats.Epoch, stats.Fingerprint
		if wantTrace {
			stats.Trace = tr.Root()
		}
	}
	recorded := s.slow.Observe(trace.Entry{
		Time:          time.Now(),
		TraceID:       tr.ID(),
		Query:         query,
		Fingerprint:   fprint,
		Duration:      d,
		Epoch:         epoch,
		Status:        status,
		PlanDecisions: decisions,
		Trace:         tr.Root(),
	})
	if recorded && fprint != "" {
		// Cross-link the statements table to the freshest slow capture of
		// this statement (the slow entry carries the fingerprint back).
		s.stmts.SetLastSlow(fprint, tr.ID())
	}
}

// observeStages feeds the per-stage latency histograms from one
// execution's stage stats.
func (s *Server) observeStages(stats *dualsim.ExecStats) {
	if stats == nil {
		return
	}
	for i := range stats.Stages {
		if h := s.stageSeconds[stats.Stages[i].Name]; h != nil {
			h.Observe(stats.Stages[i].Duration.Seconds())
		}
	}
}

// streamRows writes the NDJSON shape off a live cursor: header first
// (flushed before any row is computed), then row events with incremental
// flushes, then the stats trailer — or an error event if the execution
// dies mid-stream, after the 200 was committed. tr (with wantTrace,
// query and start) seals the request's trace into the trailer.
func (s *Server) streamRows(w http.ResponseWriter, st *dualsim.Store, rows *dualsim.Rows, limit int, tr *trace.Trace, wantTrace bool, query string, start time.Time) {
	epoch := rows.Stats().Epoch
	w.Header().Set("Content-Type", wire.ContentTypeNDJSON)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(wire.Event{Kind: wire.EventHeader, Vars: rows.Vars(), Epoch: epoch}); err != nil {
		return // client gone; nothing to salvage mid-stream
	}
	flush()
	n, truncated := 0, false
	for rows.Next() {
		if limit > 0 && n >= limit {
			// The peek past the limit proves more rows exist; the row
			// itself is dropped.
			truncated = true
			break
		}
		if err := enc.Encode(wire.Event{Kind: wire.EventRow, Values: decodeRow(st, rows.Row()), Epoch: epoch}); err != nil {
			return
		}
		n++
		if n == 1 || n%streamChunk == 0 {
			flush()
		}
	}
	if err := rows.Err(); err != nil {
		// The status line is long gone; the in-band error event is the
		// only way to tell the client the stream is dead, not complete.
		s.recordStatement(query, rows.Stats(), time.Since(start), err)
		_ = enc.Encode(wire.Event{Kind: wire.EventError, Error: err.Error(), Epoch: epoch})
		flush()
		return
	}
	rows.Close()
	stats := rows.Stats()
	s.recordStatement(query, stats, time.Since(start), nil)
	s.finishTrace(tr, wantTrace, stats, query, time.Since(start), http.StatusOK)
	s.observeStages(stats)
	s.solverRounds.Add(int64(stats.Solver.Rounds))
	s.rows.Add(int64(n))
	_ = enc.Encode(wire.Event{Kind: wire.EventStats, Stats: stats, Rows: n, Truncated: truncated, Epoch: epoch})
	flush()
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// One admission slot covers the whole batch (decode included): its
	// internal fan-out runs on the session's own worker pool, and
	// counting each member against maxInFlight would let one caller
	// starve the server.
	release, ok := s.admitOr429(w, r)
	if !ok {
		return
	}
	defer release()
	var req wire.BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.fail(w, http.StatusBadRequest, "empty batch")
		return
	}
	s.batches.Inc()
	s.queries.Add(int64(len(req.Queries)))

	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	wantTrace, tp := traceRequested(r, req.Trace)
	var tr *trace.Trace
	if wantTrace {
		if tp != "" {
			tr = trace.Continue(tp, "batch")
		} else {
			tr = trace.New("batch")
		}
		ctx = trace.ContextWithSpan(ctx, tr.Root())
		w.Header().Set("X-Dualsim-Trace", tr.ID())
	}

	reqs := make([]dualsim.BatchRequest, len(req.Queries))
	for i, src := range req.Queries {
		reqs[i] = dualsim.BatchRequest{Src: src}
	}
	var opts []dualsim.BatchOption
	if req.FailFast {
		opts = append(opts, dualsim.BatchFailFast())
	}
	start := time.Now()
	out, err := s.session().ExecBatch(ctx, reqs, opts...)
	// A context failure (deadline, client gone, closed session) fails
	// the call; a fail-fast first error is still reported per item, with
	// the per-request outcomes that did complete.
	if err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) || errors.Is(err, dualsim.ErrClosed)) {
		s.failExec(w, r, err)
		return
	}
	resp := &wire.BatchResponse{
		Results: make([]wire.BatchItem, len(out)),
		Stats:   dualsim.SummarizeBatch(out, time.Since(start)),
	}
	if tr != nil {
		tr.Root().End()
		resp.Stats.Trace = tr.Root()
	}
	for i := range out {
		s.observeStages(out[i].Stats)
		var d time.Duration
		if out[i].Stats != nil {
			d = out[i].Stats.Duration
		}
		s.recordStatement(req.Queries[i], out[i].Stats, d, out[i].Err)
		if out[i].Err != nil {
			// Reported in the item's error slot; the HTTP reply is still
			// 200, so errors_total (non-2xx responses) does not move.
			resp.Results[i] = wire.BatchItem{Error: out[i].Err.Error()}
			continue
		}
		rows, truncated := out[i].Result.Rows, false
		if req.Limit > 0 && len(rows) > req.Limit {
			rows, truncated = rows[:req.Limit], true
		}
		s.rows.Add(int64(len(rows)))
		s.solverRounds.Add(int64(out[i].Stats.Solver.Rounds))
		resp.Results[i] = wire.BatchItem{
			Vars:      append([]string{}, out[i].Result.Vars...),
			Rows:      decodeRows(out[i].Store, rows),
			Epoch:     out[i].Stats.Epoch,
			Truncated: truncated,
			Stats:     out[i].Stats,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	if !s.allowWrite(w) {
		return
	}
	release, ok := s.admitOr429(w, r)
	if !ok {
		return
	}
	defer release()
	var req wire.ApplyRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	s.applies.Inc()

	ctx, cancel := s.requestContext(r, 0)
	defer cancel()

	d := dualsim.Delta{}
	for i, t := range req.Adds {
		if err := t.Validate(); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Sprintf("adds[%d]: %v", i, err))
			return
		}
		d.Adds = append(d.Adds, t.ToTriple())
	}
	for i, t := range req.Dels {
		if err := t.Validate(); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Sprintf("dels[%d]: %v", i, err))
			return
		}
		d.Dels = append(d.Dels, t.ToTriple())
	}
	wantTrace, tp := traceRequested(r, false)
	var tr *trace.Trace
	if wantTrace {
		if tp != "" {
			tr = trace.Continue(tp, "apply")
		} else {
			tr = trace.New("apply")
		}
		ctx = trace.ContextWithSpan(ctx, tr.Root())
		w.Header().Set("X-Dualsim-Trace", tr.ID())
	}
	stats, err := s.session().Apply(ctx, d)
	if err != nil {
		s.failExec(w, r, err)
		return
	}
	if tr != nil {
		tr.Root().End()
		stats.Trace = tr.Root()
	}
	w.Header().Set("X-Dualsim-Epoch", strconv.FormatUint(stats.Epoch, 10))
	s.writeJSON(w, http.StatusOK, &wire.ApplyResponse{Stats: stats})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if !s.allowWrite(w) {
		return
	}
	release, ok := s.admitOr429(w, r)
	if !ok {
		return
	}
	defer release()
	s.applies.Inc()

	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	stats, err := s.session().Compact(ctx)
	if err != nil {
		s.failExec(w, r, err)
		return
	}
	w.Header().Set("X-Dualsim-Epoch", strconv.FormatUint(stats.Epoch, 10))
	s.writeJSON(w, http.StatusOK, &wire.ApplyResponse{Stats: stats})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.allowWrite(w) {
		return
	}
	release, ok := s.admitOr429(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	stats, err := s.session().Checkpoint(ctx)
	if errors.Is(err, dualsim.ErrNotDurable) {
		// Not a transient failure: the daemon was started without -data.
		s.fail(w, http.StatusConflict, err.Error())
		return
	}
	if err != nil {
		s.failExec(w, r, err)
		return
	}
	s.checkpoints.Inc()
	w.Header().Set("X-Dualsim-Epoch", strconv.FormatUint(stats.Epoch, 10))
	s.writeJSON(w, http.StatusOK, &wire.CheckpointResponse{Stats: stats})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// The store shape comes from a pinned snapshot; the overlay counters
	// are live session reads. Re-read until the epoch is stable around
	// them so a concurrent Apply/Compact cannot tear the response into a
	// combination that never existed (e.g. the old epoch with the
	// post-compaction overlay size).
	var out wire.SnapshotResponse
	db := s.session()
	for i := 0; i < 4; i++ {
		snap := db.Snapshot()
		st := snap.Store()
		out = wire.SnapshotResponse{
			Epoch:       snap.Epoch(),
			Triples:     st.NumTriples(),
			Nodes:       st.NumNodes(),
			Predicates:  st.NumPreds(),
			OverlaySize: db.OverlaySize(),
			Compactions: db.Compactions(),
		}
		if db.Epoch() == snap.Epoch() {
			break
		}
	}
	w.Header().Set("X-Dualsim-Epoch", strconv.FormatUint(out.Epoch, 10))
	s.writeJSON(w, http.StatusOK, &out)
}

// handleHealth is pure liveness: it answers 200 as long as the process
// can serve at all, draining included. Use /readyz to decide whether to
// route work here.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Value() != 0 {
		status = "draining"
	}
	bi := buildinfo.Get()
	s.writeJSON(w, http.StatusOK, &wire.HealthResponse{
		Status: status, Epoch: s.session().Epoch(),
		Version: bi.Version, Revision: bi.Revision,
	})
}

// handleSlow serves the slow-query ring, newest first. An empty body
// with threshold 0 means the log is disabled (-slowlog 0, the default).
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, &wire.SlowLogResponse{
		ThresholdMs: float64(s.slow.Threshold()) / float64(time.Millisecond),
		Total:       s.slow.Total(),
		Entries:     s.slow.Entries(),
	})
}

// readyErr resolves the readiness state: draining wins (the instance is
// leaving), then the configured readiness hook (a replica's
// bootstrap/lag check).
func (s *Server) readyErr() error {
	if s.draining.Value() != 0 {
		return errDraining
	}
	if s.cfg.readiness != nil {
		return s.cfg.readiness()
	}
	return nil
}

var errDraining = errors.New("draining")

// handleReady is the routing decision: 200 only when the instance wants
// traffic. Draining flips it to 503 before connections close, giving
// load balancers a window to move on; a replica's readiness hook keeps
// it 503 while bootstrapping or lagging beyond its staleness bound.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if err := s.readyErr(); err != nil {
		status := "notready"
		if errors.Is(err, errDraining) {
			status = "draining"
		}
		// Not counted in errors_total: a not-ready probe answer is the
		// endpoint working as designed, not a failed request.
		s.writeJSON(w, http.StatusServiceUnavailable, &wire.HealthResponse{
			Status: status, Epoch: s.session().Epoch(), Reason: err.Error(),
		})
		return
	}
	s.writeJSON(w, http.StatusOK, &wire.HealthResponse{Status: "ready", Epoch: s.session().Epoch()})
}

// handleWALSnapshot streams the live pinned snapshot in the on-disk
// DSIMSNP1 container — the bootstrap half of replication. A replica
// decodes it with persist.DecodeSnapshot and starts tailing from the
// epoch in the X-Dualsim-Epoch header (repeated inside the container).
// No admission slot: replication must not be shed behind query load, or
// an overloaded primary could starve its own replicas into staleness.
func (s *Server) handleWALSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.session().Snapshot()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Dualsim-Epoch", strconv.FormatUint(snap.Epoch(), 10))
	w.WriteHeader(http.StatusOK)
	// A write failure mid-stream means the replica went away; the torn
	// container fails its CRC on the other side, so nothing to clean up.
	_ = persist.EncodeSnapshotTo(w, snap.Store(), snap.Epoch())
}

// walPollInterval paces the long-poll loop of GET /v1/wal?waitMs=…: how
// often a parked tail request re-checks the log for fresh records.
const walPollInterval = 25 * time.Millisecond

// handleWAL serves the replication tail: every WAL record with epoch >
// fromEpoch, as NDJSON WALEvents (header, apply/compact records in
// replay order, end). waitMs long-polls an empty tail so an idle
// primary does not force replicas into tight polling. 409 on a
// non-durable session; 410 (with X-Dualsim-Checkpoint-Epoch) when a
// checkpoint truncated the requested range — the replica must
// re-bootstrap from /v1/wal/snapshot.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var from uint64
	if v := q.Get("fromEpoch"); v != "" {
		p, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "malformed fromEpoch: "+err.Error())
			return
		}
		from = p
	}
	var wait time.Duration
	if v := q.Get("waitMs"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			s.fail(w, http.StatusBadRequest, "malformed waitMs")
			return
		}
		wait = time.Duration(ms) * time.Millisecond
	}

	db := s.session()
	deadline := time.Now().Add(wait)
	recs, ckpt, err := db.WALTail(from)
	for err == nil && len(recs) == 0 && time.Now().Before(deadline) {
		select {
		case <-r.Context().Done():
			return // replica gone; nothing useful to write
		case <-time.After(walPollInterval):
		}
		// Re-resolve the session each round: a SwapDB mid-poll (this
		// server is itself a re-bootstrapping replica) must not leave the
		// poll parked on the abandoned session's log.
		db = s.session()
		recs, ckpt, err = db.WALTail(from)
	}
	switch {
	case err == nil:
	case errors.Is(err, dualsim.ErrNotDurable):
		// Permanent for this process: no WAL exists without -data.
		s.fail(w, http.StatusConflict, err.Error())
		return
	case errors.Is(err, persist.ErrEpochGap):
		// Tell the replica where bootstrapping can restart from.
		w.Header().Set("X-Dualsim-Checkpoint-Epoch", strconv.FormatUint(ckpt, 10))
		s.fail(w, http.StatusGone, err.Error())
		return
	default:
		s.failExec(w, r, err)
		return
	}
	s.walStreams.Inc()

	cur := db.Epoch()
	w.Header().Set("Content-Type", wire.ContentTypeNDJSON)
	w.Header().Set("X-Dualsim-Epoch", strconv.FormatUint(cur, 10))
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	if err := enc.Encode(wire.WALEvent{Kind: wire.WALHeader, Epoch: cur, CheckpointEpoch: ckpt}); err != nil {
		return
	}
	for _, rec := range recs {
		ev := wire.WALEvent{Epoch: rec.Epoch}
		switch rec.Kind {
		case persist.RecordApply:
			ev.Kind = wire.WALApply
			ev.Adds = toWireTriples(rec.Adds)
			ev.Dels = toWireTriples(rec.Dels)
		case persist.RecordCompact:
			ev.Kind = wire.WALCompact
		default:
			// Unknown kinds cannot be skipped: the replica's contiguity
			// check would (correctly) flag the hole. Fail the stream.
			_ = enc.Encode(wire.WALEvent{Kind: wire.WALEnd, Epoch: rec.Epoch - 1})
			return
		}
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
	_ = enc.Encode(wire.WALEvent{Kind: wire.WALEnd, Epoch: cur})
}

func toWireTriples(ts []dualsim.Triple) []wire.Triple {
	if len(ts) == 0 {
		return nil
	}
	out := make([]wire.Triple, len(ts))
	for i, t := range ts {
		out[i] = wire.FromTriple(t)
	}
	return out
}

// handleExport serves every triple of the requested predicates
// (?pred=…, repeatable) at one pinned epoch — the router's cross-shard
// gather path. Predicates this shard does not hold export as nothing,
// which is exactly right: the router unions slices across shards. Like
// the WAL endpoints it skips admission: a gather is part of an
// already-admitted query on the router, and shedding it would deadlock
// the fan-out under load.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	preds := r.URL.Query()["pred"]
	if len(preds) == 0 {
		s.fail(w, http.StatusBadRequest, "export needs at least one pred parameter")
		return
	}
	s.exports.Inc()
	snap := s.session().Snapshot()
	st := snap.Store()
	out := wire.ExportResponse{Epoch: snap.Epoch()}
	for _, p := range preds {
		pid, ok := st.PredIDOf(p)
		if !ok {
			continue // not on this shard (or not in the data): empty slice
		}
		st.ForEachPair(pid, func(sub, obj storage.NodeID) bool {
			out.Triples = append(out.Triples, wire.FromTriple(dualsim.Triple{
				S: st.Term(sub), P: p, O: st.Term(obj),
			}))
			return true
		})
	}
	w.Header().Set("X-Dualsim-Epoch", strconv.FormatUint(out.Epoch, 10))
	s.writeJSON(w, http.StatusOK, &out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = s.reg.WriteTo(w)
}

// ---------------------------------------------------------------------------
// Plumbing

// allowWrite refuses mutating endpoints on a read-only (replica)
// server with 403 and reports false. Runs before admission: the refusal
// must not consume an execution slot.
func (s *Server) allowWrite(w http.ResponseWriter) bool {
	if s.cfg.readOnly {
		s.fail(w, http.StatusForbidden, "read-only replica: writes go to the primary (or arrive via the replication stream)")
		return false
	}
	return true
}

// admitOr429 passes the request through admission control; on shedding
// it writes the 429 (with Retry-After) or the client-abandonment status
// and reports false.
func (s *Server) admitOr429(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	release, queued, err := s.admit.acquire(r.Context())
	switch {
	case err == nil:
		if queued {
			// Surfaced for the access log and latency forensics: the
			// request waited for an execution slot before running.
			w.Header().Set("X-Dualsim-Queued", "1")
		}
		return release, true
	case errors.Is(err, ErrOverloaded):
		s.shed.Inc()
		s.errors.Inc()
		secs := int64(s.cfg.retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		s.writeJSON(w, http.StatusTooManyRequests, &wire.ErrorResponse{
			Error:        "overloaded: in-flight and queue limits reached",
			RetryAfterMs: s.cfg.retryAfter.Milliseconds(),
		})
		return nil, false
	default: // the client went away while queued; fail counts the error
		s.fail(w, statusClientClosedRequest, "client cancelled while queued")
		return nil, false
	}
}

// statusClientClosedRequest is nginx's conventional status for a client
// that disconnected before the response; no standard code exists.
const statusClientClosedRequest = 499

// requestContext derives the execution context: the HTTP request context
// (client disconnect cancels it) bounded by the request's timeoutMs or
// the server default.
func (s *Server) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	d := s.cfg.defaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return context.WithCancel(r.Context())
}

// decodeBody decodes a JSON body, answering 400 on malformed input and
// 413 when the body exceeds maxBodyBytes (so bulk-apply callers know to
// chunk the delta rather than fix their JSON).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes; split the request", tooLarge.Limit))
			return false
		}
		s.fail(w, http.StatusBadRequest, "malformed request body: "+err.Error())
		return false
	}
	return true
}

// failExec maps an execution error onto an HTTP status: deadline → 504,
// client disconnect → 499, closed session → 503, anything else (parse,
// plan, malformed delta — all induced by the request) → 400.
func (s *Server) failExec(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, http.StatusGatewayTimeout, "deadline exceeded: "+err.Error())
	case errors.Is(err, context.Canceled):
		s.errors.Inc()
		// The client is gone; record the status for logs, skip the body.
		w.WriteHeader(statusClientClosedRequest)
	case errors.Is(err, dualsim.ErrClosed):
		s.fail(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, dualsim.ErrQueryMemoryExceeded):
		// The query's buffered state outgrew the session's memory budget
		// (-maxquerymem): the payload the server would have to hold is too
		// large, the 413 of executions. The daemon keeps serving.
		s.fail(w, http.StatusRequestEntityTooLarge, err.Error())
	default:
		s.fail(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, msg string) {
	if status >= 400 {
		s.errors.Inc()
	}
	s.writeJSON(w, status, &wire.ErrorResponse{Error: msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	buf, err := json.Marshal(body)
	if err != nil { // a wire type failed to marshal: a programming error
		http.Error(w, `{"error":"internal: response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", wire.ContentTypeJSON)
	}
	w.WriteHeader(status)
	_, _ = w.Write(buf)
	_, _ = io.WriteString(w, "\n")
}

// wantsStream resolves the three ways a client can request NDJSON.
func wantsStream(r *http.Request, req wire.QueryRequest) bool {
	if req.Stream {
		return true
	}
	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), wire.ContentTypeNDJSON)
}

// traceRequested resolves the three ways a client can request a trace:
// the request body's trace flag, the ?trace=1 URL parameter, or a valid
// W3C traceparent header. tp is the traceparent to continue from, empty
// when the trace should mint a fresh ID.
func traceRequested(r *http.Request, reqFlag bool) (want bool, tp string) {
	if h := r.Header.Get("traceparent"); h != "" {
		if _, ok := trace.ParseTraceparent(h); ok {
			return true, h
		}
	}
	if reqFlag {
		return true, ""
	}
	if v := r.URL.Query().Get("trace"); v == "1" || v == "true" {
		return true, ""
	}
	return false, ""
}

// explainMode resolves an EXPLAIN request: the body's explain field or
// the ?explain=plan|analyze URL parameter ("1"/"true" mean "plan").
func explainMode(r *http.Request, req wire.QueryRequest) string {
	mode := req.Explain
	if v := r.URL.Query().Get("explain"); v != "" {
		mode = v
	}
	if mode == "1" || mode == "true" {
		mode = "plan"
	}
	return mode
}

// decodeRow renders one result row against the snapshot dictionary it
// was computed on: N-Triples term rendering, nil for unbound positions.
func decodeRow(st *dualsim.Store, row []storage.NodeID) []*string {
	out := make([]*string, len(row))
	for i, v := range row {
		if v == dualsim.Unbound {
			continue
		}
		s := st.Term(v).String()
		out[i] = &s
	}
	return out
}

func decodeRows(st *dualsim.Store, rows [][]storage.NodeID) [][]*string {
	out := make([][]*string, len(rows))
	for i, row := range rows {
		out[i] = decodeRow(st, row)
	}
	return out
}
