package core

import (
	"context"
	"testing"

	"dualsim/internal/bitmat"
	"dualsim/internal/rdf"
	"dualsim/internal/soi"
	"dualsim/internal/storage"
)

// fig1a returns the example graph database of the paper's Fig. 1(a).
// Edge directions are reconstructed from the running text: relation (2)
// names B. De Palma and G. Hamilton as the only ?director matches of (X1),
// while D. Koepp and T. Young additionally match the optional query (X2) —
// so neither may have an outgoing worked_with edge.
func fig1a(t *testing.T) *storage.Store {
	t.Helper()
	st, err := storage.FromTriples([]rdf.Triple{
		rdf.T("B._De_Palma", "directed", "Mission:_Impossible"),
		rdf.T("B._De_Palma", "awarded", "Oscar"),
		rdf.T("B._De_Palma", "born_in", "Newark"),
		rdf.T("B._De_Palma", "worked_with", "D._Koepp"),
		rdf.T("Mission:_Impossible", "genre", "Action"),
		rdf.T("Goldfinger", "genre", "Action"),
		rdf.T("G._Hamilton", "directed", "Goldfinger"),
		rdf.T("G._Hamilton", "born_in", "Paris"),
		rdf.T("G._Hamilton", "worked_with", "H._Saltzman"),
		rdf.T("Thunderball", "sequel_of", "Goldfinger"),
		rdf.T("Thunderball", "awarded", "Oscar"),
		rdf.T("H._Saltzman", "born_in", "Saint_John"),
		rdf.T("From_Russia_with_Love", "prequel_of", "Goldfinger"),
		rdf.T("T._Young", "directed", "From_Russia_with_Love"),
		rdf.T("T._Young", "awarded", "BAFTA_Awards"),
		rdf.T("P.R._Hunt", "worked_with", "D._Koepp"),
		rdf.T("D._Koepp", "directed", "Mortdecai"),
		rdf.TL("Newark", "population", "277140"),
		rdf.TL("Paris", "population", "2220445"),
		rdf.TL("Saint_John", "population", "70063"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// patternX1 is the graph representation of query (X1), Fig. 1(b).
func patternX1() *Pattern {
	p := NewPattern()
	p.Edge("director", "directed", "movie")
	p.Edge("director", "worked_with", "coworker")
	return p
}

func nodeSet(t *testing.T, st *storage.Store, names ...string) map[storage.NodeID]bool {
	t.Helper()
	m := make(map[storage.NodeID]bool)
	for _, n := range names {
		id, ok := st.TermID(rdf.NewIRI(n))
		if !ok {
			t.Fatalf("node %q not in store", n)
		}
		m[id] = true
	}
	return m
}

func sameSet(a, b map[storage.NodeID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestRelation2 reproduces the paper's dual simulation (2): the largest
// dual simulation between (X1) and Fig. 1(a) comprises exactly the nodes
// of the two homomorphic result subgraphs.
func TestRelation2(t *testing.T) {
	st := fig1a(t)
	for _, cfg := range allConfigs() {
		rel := DualSimulation(st, patternX1(), cfg)
		if got, want := rel.Set("director"), nodeSet(t, st, "B._De_Palma", "G._Hamilton"); !sameSet(got, want) {
			t.Fatalf("cfg %+v: director = %v, want %v", cfg, got, want)
		}
		if got, want := rel.Set("movie"), nodeSet(t, st, "Mission:_Impossible", "Goldfinger"); !sameSet(got, want) {
			t.Fatalf("cfg %+v: movie = %v, want %v", cfg, got, want)
		}
		if got, want := rel.Set("coworker"), nodeSet(t, st, "D._Koepp", "H._Saltzman"); !sameSet(got, want) {
			t.Fatalf("cfg %+v: coworker = %v, want %v", cfg, got, want)
		}
		if err := rel.Pattern.VerifyDualSimulation(st, rel.Sets()); err != nil {
			t.Fatalf("cfg %+v: not a dual simulation: %v", cfg, err)
		}
	}
}

// allConfigs enumerates solver configurations so every strategy and
// encoding computes the same relation.
func allConfigs() []Config {
	var out []Config
	for _, plain := range []bool{false, true} {
		for _, s := range []bitmat.Strategy{bitmat.Auto, bitmat.RowWise, bitmat.ColWise} {
			for _, o := range []soi.Order{soi.SparsestFirst, soi.DeclarationOrder} {
				out = append(out, Config{PlainInit: plain, Strategy: s, Order: o})
			}
		}
	}
	out = append(out, Config{Compressed: true})
	return out
}

// fig2b is the data graph of Fig. 2(b) loaded as a store.
func fig2b(t *testing.T) *storage.Store {
	t.Helper()
	st, err := storage.FromTriples([]rdf.Triple{
		rdf.T("director", "born_in", "place"),
		rdf.T("director", "worked_with", "coworker"),
		rdf.T("director", "directed", "movie"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// patternFig2a is the pattern of Fig. 2(a).
func patternFig2a() *Pattern {
	p := NewPattern()
	p.Edge("director1", "born_in", "place")
	p.Edge("director2", "born_in", "place")
	p.Edge("director1", "worked_with", "coworker")
	p.Edge("director2", "directed", "movie")
	return p
}

// TestRelation1 reproduces the paper's dual simulation (1) between
// Fig. 2(a) and Fig. 2(b).
func TestRelation1(t *testing.T) {
	st := fig2b(t)
	rel := DualSimulation(st, patternFig2a(), Config{})
	want := map[string][]string{
		"place":     {"place"},
		"director1": {"director"},
		"director2": {"director"},
		"coworker":  {"coworker"},
		"movie":     {"movie"},
	}
	for v, nodes := range want {
		if got := rel.Set(v); !sameSet(got, nodeSet(t, st, nodes...)) {
			t.Fatalf("%s = %v, want %v", v, got, nodes)
		}
	}
}

// TestFig2bDualSimulatesX1 verifies "the graph in Fig. 2(b) dual simulates
// the graph representation of (X1)" — place is simply not a pattern node.
func TestFig2bDualSimulatesX1(t *testing.T) {
	rel := DualSimulation(fig2b(t), patternX1(), Config{})
	if rel.IsEmpty() {
		t.Fatal("expected non-empty dual simulation")
	}
}

// TestFig2aVsX1Empty verifies "the graph in Fig. 2(a) neither dual
// simulates nor is dual simulated by the graph in Fig. 1(b)".
func TestFig2aVsX1Empty(t *testing.T) {
	// Fig. 2(a) as data, X1 as pattern: no node has both directed and
	// worked_with outgoing edges.
	st, err := storage.FromTriples([]rdf.Triple{
		rdf.T("director1", "born_in", "place"),
		rdf.T("director2", "born_in", "place"),
		rdf.T("director1", "worked_with", "coworker"),
		rdf.T("director2", "directed", "movie"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := DualSimulation(st, patternX1(), Config{}); !rel.IsEmpty() {
		t.Fatalf("expected empty, got director=%v", rel.Set("director"))
	}
	// X1's graph as data, Fig. 2(a) as pattern: no born_in edges at all.
	st2, err := storage.FromTriples([]rdf.Triple{
		rdf.T("director", "directed", "movie"),
		rdf.T("director", "worked_with", "coworker"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := DualSimulation(st2, patternFig2a(), Config{}); !rel.IsEmpty() {
		t.Fatal("expected empty dual simulation")
	}
}

// TestFig4Counterexample reproduces Sect. 4.1's counterexample: p4 is
// dual-simulation relevant although it participates in no homomorphic
// match of the 2-cycle pattern P.
func TestFig4Counterexample(t *testing.T) {
	st, err := storage.FromTriples([]rdf.Triple{
		rdf.T("p1", "knows", "p2"),
		rdf.T("p2", "knows", "p1"),
		rdf.T("p2", "knows", "p3"),
		rdf.T("p3", "knows", "p2"),
		rdf.T("p3", "knows", "p4"),
		rdf.T("p4", "knows", "p1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPattern()
	p.Edge("v", "knows", "w")
	p.Edge("w", "knows", "v")

	rel := DualSimulation(st, p, Config{})
	all := nodeSet(t, st, "p1", "p2", "p3", "p4")
	if got := rel.Set("v"); !sameSet(got, all) {
		t.Fatalf("v = %v, want all four nodes", got)
	}
	if got := rel.Set("w"); !sameSet(got, all) {
		t.Fatalf("w = %v, want all four nodes", got)
	}
	// p4 is in no match: matches need mutual knows pairs, and p4 has none.
	p4, _ := st.TermID(rdf.NewIRI("p4"))
	knows, _ := st.PredIDOf("knows")
	for _, o := range st.Objects(knows, p4) {
		if st.HasTriple(o, knows, p4) {
			t.Fatal("fixture broken: p4 has a mutual pair")
		}
	}
}

// TestConstants exercises the Sect. 4.5 constant-node extension: binding
// ?g to the constant Action restricts movies to those with genre Action.
func TestConstants(t *testing.T) {
	st := fig1a(t)
	p := NewPattern()
	p.Edge("director", "directed", "movie")
	p.Edge("movie", "genre", "g")
	p.Bind("g", rdf.NewIRI("Action"))

	rel := DualSimulation(st, p, Config{})
	if got, want := rel.Set("movie"), nodeSet(t, st, "Mission:_Impossible", "Goldfinger"); !sameSet(got, want) {
		t.Fatalf("movie = %v, want %v", got, want)
	}
	if got, want := rel.Set("g"), nodeSet(t, st, "Action"); !sameSet(got, want) {
		t.Fatalf("g = %v, want %v", got, want)
	}
}

// TestConstantAbsentFromDB: a constant that is not in the database empties
// the relation.
func TestConstantAbsentFromDB(t *testing.T) {
	st := fig1a(t)
	p := NewPattern()
	p.Edge("director", "directed", "movie")
	p.Bind("movie", rdf.NewIRI("Nonexistent_Movie"))
	if rel := DualSimulation(st, p, Config{}); !rel.IsEmpty() {
		t.Fatal("expected empty relation for absent constant")
	}
}

// TestUnknownPredicate: a predicate absent from Σ empties the incident
// variables.
func TestUnknownPredicate(t *testing.T) {
	st := fig1a(t)
	p := NewPattern()
	p.Edge("a", "no_such_predicate", "b")
	if rel := DualSimulation(st, p, Config{}); !rel.IsEmpty() {
		t.Fatal("expected empty relation for unknown predicate")
	}
}

// TestLiteralEndpoints: literals participate as objects (population).
func TestLiteralEndpoints(t *testing.T) {
	st := fig1a(t)
	p := NewPattern()
	p.Edge("city", "population", "pop")
	rel := DualSimulation(st, p, Config{})
	if got, want := rel.Set("city"), nodeSet(t, st, "Newark", "Paris", "Saint_John"); !sameSet(got, want) {
		t.Fatalf("city = %v, want %v", got, want)
	}
	if rel.Set("pop")[mustLit(t, st, "70063")] != true {
		t.Fatal("literal 70063 missing from pop")
	}
}

func mustLit(t *testing.T, st *storage.Store, v string) storage.NodeID {
	t.Helper()
	id, ok := st.TermID(rdf.NewLiteral(v))
	if !ok {
		t.Fatalf("literal %q missing", v)
	}
	return id
}

// TestShortCircuit: with ShortCircuit enabled an unsatisfiable pattern
// yields the canonical empty relation and reports the short circuit.
func TestShortCircuit(t *testing.T) {
	st := fig1a(t)
	p := NewPattern()
	p.Edge("a", "no_such_predicate", "b")
	p.Edge("c", "directed", "d") // separate satisfiable component
	rel := DualSimulation(st, p, Config{ShortCircuit: true})
	if !rel.Stats.ShortCircuited {
		t.Fatal("expected short circuit")
	}
	if !rel.IsEmpty() {
		t.Fatal("short-circuited relation must be empty")
	}
	// Without short-circuiting, the satisfiable component survives: the
	// largest dual simulation is per-component (see Sect. 2 discussion).
	rel2 := DualSimulation(st, p, Config{})
	if rel2.Set("c") == nil || len(rel2.Set("c")) == 0 {
		t.Fatal("component c should be non-empty without short circuit")
	}
	if len(rel2.Set("a")) != 0 {
		t.Fatal("component a should be empty")
	}
	if !rel2.AnyVarEmpty() {
		t.Fatal("AnyVarEmpty should hold")
	}
}

// TestSelfLoopPattern: a pattern edge v -knows-> v requires data
// self-loops.
func TestSelfLoopPattern(t *testing.T) {
	st, err := storage.FromTriples([]rdf.Triple{
		rdf.T("a", "knows", "a"),
		rdf.T("a", "knows", "b"),
		rdf.T("b", "knows", "c"),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPattern()
	p.Edge("v", "knows", "v")
	rel := DualSimulation(st, p, Config{})
	if got, want := rel.Set("v"), nodeSet(t, st, "a"); !sameSet(got, want) {
		t.Fatalf("v = %v, want {a}", got)
	}
}

// TestIsCyclic covers the shape classifier used by the experiment
// harness.
func TestIsCyclic(t *testing.T) {
	if patternX1().IsCyclic() {
		t.Fatal("X1 is acyclic")
	}
	cyc := NewPattern()
	cyc.Edge("a", "p", "b")
	cyc.Edge("b", "q", "c")
	cyc.Edge("a", "r", "c")
	if !cyc.IsCyclic() {
		t.Fatal("triangle not detected")
	}
	par := NewPattern()
	par.Edge("a", "p", "b")
	par.Edge("a", "q", "b")
	if !par.IsCyclic() {
		t.Fatal("parallel edges not detected as cycle")
	}
	two := NewPattern()
	two.Edge("v", "knows", "w")
	two.Edge("w", "knows", "v")
	if !two.IsCyclic() {
		t.Fatal("2-cycle not detected")
	}
}

// TestVerifySolutionAgainstSOI: the solver's output satisfies the system
// it was built from (Sect. 4.5 PTIME validity check).
func TestVerifySolutionAgainstSOI(t *testing.T) {
	st := fig1a(t)
	p := patternX1()
	sys := BuildSystem(st, p, Config{})
	sol := sys.Solve(context.Background(), soi.Options{})
	if bad := sys.Verify(sol); bad != nil {
		t.Fatalf("solution violates %v", bad)
	}
}

// TestPatternString covers diagnostics rendering.
func TestPatternString(t *testing.T) {
	p := NewPattern()
	p.Edge("director", "directed", "movie")
	p.Bind("movie", rdf.NewIRI("Goldfinger"))
	want := "?director directed <Goldfinger> ."
	if got := p.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
