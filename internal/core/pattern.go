// Package core implements the paper's primary contribution: computing the
// largest dual simulation between a pattern graph and a graph database via
// the system-of-inequalities formulation (Sect. 3), and its conservative
// extension to SPARQL queries with AND, UNION and OPTIONAL operators
// (Sect. 4).
package core

import (
	"fmt"
	"strings"

	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

// Pattern is a pattern graph G1 = (V1, Σ, E1): nodes are named variables,
// edges carry predicate IRIs. A node may be bound to a constant database
// term, the paper's Sect. 4.5 extension — its candidate set is then the
// singleton containing that term.
type Pattern struct {
	vars    []PatternVar
	varByID map[string]int
	edges   []PatternEdge
}

// PatternVar is one pattern node.
type PatternVar struct {
	Name  string
	Const *rdf.Term // nil for a free variable
}

// PatternEdge is one labeled pattern edge (From, Pred, To), indexing Vars.
type PatternEdge struct {
	From int
	Pred string
	To   int
}

// NewPattern returns an empty pattern.
func NewPattern() *Pattern {
	return &Pattern{varByID: make(map[string]int)}
}

// Var interns a free variable by name and returns its index.
func (p *Pattern) Var(name string) int {
	if i, ok := p.varByID[name]; ok {
		return i
	}
	i := len(p.vars)
	p.vars = append(p.vars, PatternVar{Name: name})
	p.varByID[name] = i
	return i
}

// Bind attaches a constant term to the named variable (interning it if
// needed).
func (p *Pattern) Bind(name string, t rdf.Term) {
	i := p.Var(name)
	c := t
	p.vars[i].Const = &c
}

// Edge adds the pattern edge (from, pred, to) by variable names.
func (p *Pattern) Edge(from, pred, to string) {
	p.edges = append(p.edges, PatternEdge{From: p.Var(from), Pred: pred, To: p.Var(to)})
}

// NumVars returns |V1|.
func (p *Pattern) NumVars() int { return len(p.vars) }

// NumEdges returns |E1|.
func (p *Pattern) NumEdges() int { return len(p.edges) }

// Vars returns the variable list (read-only).
func (p *Pattern) Vars() []PatternVar { return p.vars }

// Edges returns the edge list (read-only).
func (p *Pattern) Edges() []PatternEdge { return p.edges }

// VarIndex returns the index of the named variable.
func (p *Pattern) VarIndex(name string) (int, bool) {
	i, ok := p.varByID[name]
	return i, ok
}

// IsCyclic reports whether the pattern contains an undirected cycle —
// the paper's §5.3 distinguishes cyclic queries (L0, L1) from acyclic
// ones when discussing convergence behaviour. Parallel edges between the
// same variable pair count as a cycle.
func (p *Pattern) IsCyclic() bool {
	parent := make([]int, len(p.vars))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range p.edges {
		a, b := find(e.From), find(e.To)
		if a == b {
			return true
		}
		parent[a] = b
	}
	return false
}

// String renders the pattern as triple patterns, one per line.
func (p *Pattern) String() string {
	var b strings.Builder
	for i, e := range p.edges {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s %s %s .", p.varLabel(e.From), e.Pred, p.varLabel(e.To))
	}
	return b.String()
}

func (p *Pattern) varLabel(i int) string {
	v := p.vars[i]
	if v.Const != nil {
		return v.Const.String()
	}
	return "?" + v.Name
}

// VerifyDualSimulation checks Definition 2 directly against the store: for
// the candidate relation given as per-variable node sets, every pair must
// have all its pattern edges supported in both directions. It returns an
// error describing the first violation, or nil if the relation is a dual
// simulation. Used by tests to validate all solver implementations.
func (p *Pattern) VerifyDualSimulation(st *storage.Store, sets []map[storage.NodeID]bool) error {
	if len(sets) != len(p.vars) {
		return fmt.Errorf("core: %d sets for %d variables", len(sets), len(p.vars))
	}
	for _, e := range p.edges {
		pid, ok := st.PredIDOf(e.Pred)
		if !ok {
			if len(sets[e.From]) > 0 || len(sets[e.To]) > 0 {
				return fmt.Errorf("core: predicate %q absent but endpoints non-empty", e.Pred)
			}
			continue
		}
		// Def. 2(i): v2 ∈ S(From) needs an a-successor in S(To).
		for v2 := range sets[e.From] {
			if !anyIn(st.Objects(pid, v2), sets[e.To]) {
				return fmt.Errorf("core: %s=%d lacks %s-successor in %s",
					p.vars[e.From].Name, v2, e.Pred, p.vars[e.To].Name)
			}
		}
		// Def. 2(ii): w2 ∈ S(To) needs an a-predecessor in S(From).
		for w2 := range sets[e.To] {
			if !anyIn(st.Subjects(pid, w2), sets[e.From]) {
				return fmt.Errorf("core: %s=%d lacks %s-predecessor in %s",
					p.vars[e.To].Name, w2, e.Pred, p.vars[e.From].Name)
			}
		}
	}
	// Constants: a bound variable may only contain its constant.
	for i, v := range p.vars {
		if v.Const == nil {
			continue
		}
		id, ok := st.TermID(*v.Const)
		for n := range sets[i] {
			if !ok || n != id {
				return fmt.Errorf("core: constant %s contains foreign node %d", v.Name, n)
			}
		}
	}
	return nil
}

func anyIn(xs []storage.NodeID, set map[storage.NodeID]bool) bool {
	for _, x := range xs {
		if set[x] {
			return true
		}
	}
	return false
}
