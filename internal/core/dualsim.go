package core

import (
	"context"

	"dualsim/internal/bitmat"
	"dualsim/internal/bitvec"
	"dualsim/internal/soi"
	"dualsim/internal/storage"
)

// Config controls the SOI construction and solving.
type Config struct {
	// PlainInit disables the sharpened initialization (13) and uses the
	// unconstrained v ≤ 1 of (12) — ablation switch.
	PlainInit bool
	// Strategy is the ×b evaluation strategy (Auto by default).
	Strategy bitmat.Strategy
	// Order is the inequality processing order (SparsestFirst by default).
	Order soi.Order
	// ShortCircuit stops the solver once a mandatory variable empties.
	ShortCircuit bool
	// Compressed solves against gap-length encoded matrices instead of
	// CSR — the §5.1 storage ablation.
	Compressed bool
	// Workers > 1 parallelizes each ×b multiplication over that many
	// goroutines.
	Workers int
}

// Relation is the largest dual simulation between a pattern and a store,
// presented through the characteristic function χS: one node set per
// pattern variable.
type Relation struct {
	Pattern *Pattern
	Chi     []*bitvec.Vector
	Stats   soi.Stats
}

// IsEmpty reports whether the relation is the empty dual simulation —
// every variable's χS row is empty.
func (r *Relation) IsEmpty() bool {
	for _, c := range r.Chi {
		if !c.IsEmpty() {
			return false
		}
	}
	return true
}

// AnyVarEmpty reports whether some variable has no simulating node; for a
// connected pattern this coincides with IsEmpty, and for query processing
// it certifies an empty result set (Theorem 1).
func (r *Relation) AnyVarEmpty() bool {
	for _, c := range r.Chi {
		if c.IsEmpty() {
			return true
		}
	}
	return false
}

// Set returns χS of the named variable as a map, for inspection and the
// Definition-2 verifier.
func (r *Relation) Set(name string) map[storage.NodeID]bool {
	i, ok := r.Pattern.VarIndex(name)
	if !ok {
		return nil
	}
	return vecToSet(r.Chi[i])
}

// Sets returns all χS rows as maps, indexed like Pattern.Vars.
func (r *Relation) Sets() []map[storage.NodeID]bool {
	out := make([]map[storage.NodeID]bool, len(r.Chi))
	for i, c := range r.Chi {
		out[i] = vecToSet(c)
	}
	return out
}

func vecToSet(v *bitvec.Vector) map[storage.NodeID]bool {
	m := make(map[storage.NodeID]bool, v.Count())
	v.ForEach(func(i int) bool { m[storage.NodeID(i)] = true; return true })
	return m
}

// BuildSystem translates a pattern graph into its system of inequalities
// over the store (Sect. 3.2): one variable per pattern node, initial
// bounds (12)/(13) plus constant singletons, and the edge inequality pair
// (11) per pattern edge. The returned variable order matches the pattern's
// variable order.
func BuildSystem(st *storage.Store, p *Pattern, cfg Config) *soi.System {
	n := st.NumNodes()
	sys := soi.NewSystem(n)

	vars := make([]soi.Var, p.NumVars())
	for i, pv := range p.Vars() {
		var init *bitvec.Vector
		if pv.Const != nil {
			init = bitvec.New(n)
			if id, ok := st.TermID(*pv.Const); ok {
				init.Set(int(id))
			}
		}
		vars[i] = sys.AddVar(pv.Name, init, true)
	}

	for _, e := range p.Edges() {
		mats := predMatrices(st, e.Pred, cfg.Compressed)
		sys.AddEdge(vars[e.From], vars[e.To], mats, e.Pred)
		if !cfg.PlainInit {
			// Inequality (13): v ≤ ⋀ f_a over outgoing edges ∧ ⋀ b_a over
			// incoming edges.
			sys.ConstrainInit(vars[e.From], mats.F.NonEmptyRows())
			sys.ConstrainInit(vars[e.To], mats.B.NonEmptyRows())
		}
	}
	return sys
}

// predMatrices fetches the (F_a, B_a) pair for a predicate; an unknown
// predicate yields an empty pair, which correctly forces incident
// variables to the empty set.
func predMatrices(st *storage.Store, pred string, compressed bool) bitmat.Pair {
	pid, ok := st.PredIDOf(pred)
	if !ok {
		return bitmat.NewPair(st.NumNodes(), nil)
	}
	m := st.Matrices(pid)
	if compressed {
		m = bitmat.CompressPair(m)
	}
	return m
}

// DualSimulation computes the largest dual simulation between pattern p
// and the store, the central operation of the paper.
func DualSimulation(st *storage.Store, p *Pattern, cfg Config) *Relation {
	rel, _ := DualSimulationCtx(context.Background(), st, p, cfg)
	return rel
}

// DualSimulationCtx is DualSimulation honouring cancellation: the solver
// aborts between inequality evaluations and the ctx error is returned.
func DualSimulationCtx(ctx context.Context, st *storage.Store, p *Pattern, cfg Config) (*Relation, error) {
	sys := BuildSystem(st, p, cfg)
	sol, err := sys.SolveCtx(ctx, soi.Options{
		Strategy:     cfg.Strategy,
		Order:        cfg.Order,
		ShortCircuit: cfg.ShortCircuit,
		Workers:      cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	chi := sol.Chi[:p.NumVars()]
	if sol.Stats.ShortCircuited {
		// An empty mandatory variable certifies the empty result; expose
		// the canonical empty relation rather than a half-converged one.
		for _, c := range chi {
			c.Zero()
		}
	}
	return &Relation{Pattern: p, Chi: chi, Stats: sol.Stats}, nil
}
