package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dualsim/internal/engine"
	"dualsim/internal/rdf"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// This file property-tests Theorem 1 lifted to full queries (Theorem 2):
// every variable binding of every SPARQL result mapping is contained in
// the query's dual simulation candidate sets — across AND, OPTIONAL,
// UNION, constants and renamed optional copies.

func randomQueryT1(r *rand.Rand, depth, vars, preds int) sparql.Expr {
	if depth == 0 || r.Intn(3) == 0 {
		n := r.Intn(2) + 1
		bgp := make(sparql.BGP, n)
		for i := range bgp {
			bgp[i] = sparql.TriplePattern{
				S: randTermT1(r, vars),
				P: sparql.C(fmt.Sprintf("p%d", r.Intn(preds))),
				O: randTermT1(r, vars),
			}
		}
		return bgp
	}
	l := randomQueryT1(r, depth-1, vars, preds)
	rr := randomQueryT1(r, depth-1, vars, preds)
	switch r.Intn(4) {
	case 0, 1:
		return sparql.And{L: l, R: rr}
	case 2:
		return sparql.Optional{L: l, R: rr}
	default:
		return sparql.Union{L: l, R: rr}
	}
}

func randTermT1(r *rand.Rand, vars int) sparql.Term {
	if r.Intn(6) == 0 {
		return sparql.C(fmt.Sprintf("n%d", r.Intn(6)))
	}
	return sparql.V(fmt.Sprintf("v%d", r.Intn(vars)))
}

func randomTriplesT1(r *rand.Rand, nodes, preds, edges int) []rdf.Triple {
	ts := make([]rdf.Triple, edges)
	for i := range ts {
		ts[i] = rdf.T(
			fmt.Sprintf("n%d", r.Intn(nodes)),
			fmt.Sprintf("p%d", r.Intn(preds)),
			fmt.Sprintf("n%d", r.Intn(nodes)))
	}
	return ts
}

// TestPropertyTheorem1QueryLevel: result bindings ⊆ candidate sets.
func TestPropertyTheorem1QueryLevel(t *testing.T) {
	eng := engine.NewHashJoin()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st, err := storage.FromTriples(randomTriplesT1(r, 8, 3, 22))
		if err != nil {
			return false
		}
		q := &sparql.Query{Expr: randomQueryT1(r, 2, 4, 3)}
		rel, err := QueryDualSimulation(st, q, Config{})
		if err != nil {
			return false
		}
		res, err := eng.Evaluate(context.Background(), st, q)
		if err != nil {
			return false
		}
		for vi, v := range res.Vars {
			set := rel.VarSet(v)
			for _, row := range res.Rows {
				if row[vi] == engine.Unbound {
					continue
				}
				if !set.Get(int(row[vi])) {
					t.Logf("seed %d: binding %s=%d escapes χS, query %s",
						seed, v, row[vi], q)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyShortCircuitConsistency: with ShortCircuit the relation may
// stop early, but the emptiness verdict must match the non-short-circuit
// run, and a non-empty result set forbids a short circuit.
func TestPropertyShortCircuitConsistency(t *testing.T) {
	eng := engine.NewHashJoin()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st, err := storage.FromTriples(randomTriplesT1(r, 8, 3, 22))
		if err != nil {
			return false
		}
		q := &sparql.Query{Expr: randomQueryT1(r, 2, 4, 3)}
		plain, err := QueryDualSimulation(st, q, Config{})
		if err != nil {
			return false
		}
		sc, err := QueryDualSimulation(st, q, Config{ShortCircuit: true})
		if err != nil {
			return false
		}
		if plain.Empty() != sc.Empty() {
			t.Logf("seed %d: emptiness differs, query %s", seed, q)
			return false
		}
		if sc.Empty() {
			res, err := eng.Evaluate(context.Background(), st, q)
			if err != nil {
				return false
			}
			if res.Len() != 0 {
				t.Logf("seed %d: short-circuited but %d results, query %s",
					seed, res.Len(), q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
