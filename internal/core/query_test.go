package core

import (
	"strings"
	"testing"

	"dualsim/internal/rdf"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// branchOf builds and returns the single branch of a union-free query
// against a minimal store (the SOI structure does not depend on data).
func branchOf(t *testing.T, src string, st *storage.Store) *Branch {
	t.Helper()
	plan, err := BuildQueryPlan(st, sparql.MustParse(src), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Branches) != 1 {
		t.Fatalf("branches = %d, want 1", len(plan.Branches))
	}
	return plan.Branches[0]
}

func (b *Branch) varNamed(name string) (int, bool) {
	for i, v := range b.Vars {
		if v.Name == name {
			return i, true
		}
	}
	return -1, false
}

// findCopyTarget returns the copy-inequality target name of the (unique)
// fresh copy of orig, or "".
func (b *Branch) copyOf(fresh string) string {
	i, ok := b.varNamed(fresh)
	if !ok {
		return ""
	}
	for _, c := range b.Copies {
		if c[0] == i {
			return b.Vars[c[1]].Name
		}
	}
	return ""
}

// freshNamesOf lists the renamed copies of an original variable.
func (b *Branch) freshNamesOf(orig string) []string {
	var out []string
	for _, v := range b.Vars {
		if v.Orig == orig && v.Name != orig {
			out = append(out, v.Name)
		}
	}
	return out
}

// TestX2SOIStructure reproduces inequality (14): ?director gets a
// mandatory and an optional occurrence with directorₒ ≤ directorₘ.
func TestX2SOIStructure(t *testing.T) {
	st := fig1a(t)
	b := branchOf(t, `
SELECT * WHERE {
  ?director directed ?movie .
  OPTIONAL { ?director worked_with ?coworker . } }`, st)

	if i, ok := b.varNamed("director"); !ok || !b.Vars[i].Mandatory {
		t.Fatal("mandatory director missing")
	}
	fresh := b.freshNamesOf("director")
	if len(fresh) != 1 {
		t.Fatalf("director copies = %v, want one", fresh)
	}
	if got := b.copyOf(fresh[0]); got != "director" {
		t.Fatalf("copy target = %q, want director", got)
	}
	// coworker stays unrenamed but optional.
	if i, ok := b.varNamed("coworker"); !ok || b.Vars[i].Mandatory {
		t.Fatal("coworker should be optional and unrenamed")
	}
	// movie stays mandatory.
	if i, ok := b.varNamed("movie"); !ok || !b.Vars[i].Mandatory {
		t.Fatal("movie should be mandatory")
	}
	// Two pattern edges, one copy.
	if len(b.Edges) != 2 || len(b.Copies) != 1 {
		t.Fatalf("edges/copies = %d/%d", len(b.Edges), len(b.Copies))
	}
}

// TestX3SOIStructure reproduces the Sect. 4.4 discussion of (X3): both v2
// (optional vs. its mandatory occurrence in the same optional pattern)
// and v3 (optional occurrence vs. mandatory occurrence in the sibling
// conjunct, Lemma 5) get renamed copies with copy inequalities.
func TestX3SOIStructure(t *testing.T) {
	st := fig1a(t)
	b := branchOf(t, `
SELECT * WHERE {
  { { ?v1 a ?v2 . } OPTIONAL { ?v3 b ?v2 . } }
  { ?v3 c ?v4 . } }`, st)

	for _, orig := range []string{"v1", "v2", "v3", "v4"} {
		if i, ok := b.varNamed(orig); !ok || !b.Vars[i].Mandatory {
			t.Fatalf("%s should exist as mandatory", orig)
		}
	}
	for _, orig := range []string{"v2", "v3"} {
		fresh := b.freshNamesOf(orig)
		if len(fresh) != 1 {
			t.Fatalf("%s copies = %v, want one", orig, fresh)
		}
		if got := b.copyOf(fresh[0]); got != orig {
			t.Fatalf("%s copy target = %q", orig, got)
		}
		if i, _ := b.varNamed(fresh[0]); b.Vars[i].Mandatory {
			t.Fatalf("%s copy should be optional", orig)
		}
	}
	if len(b.Edges) != 3 || len(b.Copies) != 2 {
		t.Fatalf("edges/copies = %d/%d, want 3/2", len(b.Edges), len(b.Copies))
	}
}

// TestNestedOptionalChainP reproduces the Sect. 4.4 example
// P = (P1 OPTIONAL P2) OPTIONAL P3: both optional occurrences of y link
// directly to the mandatory y of P1 (y_P2 ≤ y, y_P3 ≤ y), while x — which
// never occurs mandatorily — is split without interdependencies.
func TestNestedOptionalChainP(t *testing.T) {
	st := fig1a(t)
	b := branchOf(t, `
SELECT * WHERE {
  ?y p1 ?z1
  OPTIONAL { ?y p2 ?x }
  OPTIONAL { ?y p3 ?x } }`, st)

	yCopies := b.freshNamesOf("y")
	if len(yCopies) != 2 {
		t.Fatalf("y copies = %v, want two", yCopies)
	}
	for _, f := range yCopies {
		if got := b.copyOf(f); got != "y" {
			t.Fatalf("copy of %s points to %q, want y", f, got)
		}
	}
	// x: one occurrence keeps the name, the second is renamed with NO
	// copy inequality (the "no interdependency" case).
	xCopies := b.freshNamesOf("x")
	if len(xCopies) != 1 {
		t.Fatalf("x copies = %v, want one", xCopies)
	}
	if got := b.copyOf(xCopies[0]); got != "" {
		t.Fatalf("x copy should have no target, got %q", got)
	}
	if len(b.Copies) != 2 {
		t.Fatalf("copies = %d, want 2 (only the y links)", len(b.Copies))
	}
}

// TestNestedOptionalChainR reproduces R = R1 OPTIONAL (R2 OPTIONAL R3):
// the copies chain syntactically-closest, z_R3 ≤ z_R2 ≤ z.
func TestNestedOptionalChainR(t *testing.T) {
	st := fig1a(t)
	b := branchOf(t, `
SELECT * WHERE {
  ?z p1 ?u
  OPTIONAL { ?z p2 ?v OPTIONAL { ?z p3 ?w } } }`, st)

	zCopies := b.freshNamesOf("z")
	if len(zCopies) != 2 {
		t.Fatalf("z copies = %v, want two", zCopies)
	}
	// One copy links to z, the other links to that copy: a chain.
	targets := map[string]string{}
	for _, f := range zCopies {
		targets[f] = b.copyOf(f)
	}
	var mid string
	for f, tgt := range targets {
		if tgt == "z" {
			mid = f
		}
	}
	if mid == "" {
		t.Fatalf("no copy links to z: %v", targets)
	}
	chained := false
	for f, tgt := range targets {
		if f != mid && tgt == mid {
			chained = true
		}
	}
	if !chained {
		t.Fatalf("copies do not chain: %v", targets)
	}
}

// TestUnionPlanBranches: a UNION query yields one sound SOI per branch.
func TestUnionPlanBranches(t *testing.T) {
	st := fig1a(t)
	plan, err := BuildQueryPlan(st, sparql.MustParse(`
SELECT * WHERE { { ?x directed ?y } UNION { ?x worked_with ?y } }`), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Branches) != 2 {
		t.Fatalf("branches = %d", len(plan.Branches))
	}
	rel := plan.Solve(Config{})
	// x candidates: union of directors and worked_with subjects.
	x := rel.VarSet("x")
	for _, n := range []string{"B._De_Palma", "G._Hamilton", "T._Young", "D._Koepp", "P.R._Hunt"} {
		id, _ := st.TermID(mustIRI(n))
		if !x.Get(int(id)) {
			t.Fatalf("%s missing from union x", n)
		}
	}
}

// TestVariablePredicateRejected: the SOI construction requires constant
// predicates.
func TestVariablePredicateRejected(t *testing.T) {
	st := fig1a(t)
	_, err := BuildQueryPlan(st, sparql.MustParse(`SELECT * WHERE { ?s ?p ?o }`), Config{})
	if err == nil || !strings.Contains(err.Error(), "predicate") {
		t.Fatalf("err = %v", err)
	}
}

// TestX2Solution checks the solved candidate sets of (X2) on Fig. 1(a):
// the mandatory director set grows to the four directed-subjects, while
// the optional copy stays at the (X1) pair.
func TestX2Solution(t *testing.T) {
	st := fig1a(t)
	rel, err := QueryDualSimulation(st, sparql.MustParse(`
SELECT * WHERE {
  ?director directed ?movie .
  OPTIONAL { ?director worked_with ?coworker . } }`), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Empty() {
		t.Fatal("X2 should be satisfiable")
	}
	dir := rel.VarSet("director")
	for _, n := range []string{"B._De_Palma", "G._Hamilton", "T._Young", "D._Koepp"} {
		id, _ := st.TermID(mustIRI(n))
		if !dir.Get(int(id)) {
			t.Fatalf("%s missing from director", n)
		}
	}
	br := rel.Branches[0]
	fresh := br.Branch.freshNamesOf("director")[0]
	fi, _ := br.Branch.varNamed(fresh)
	chi := br.Sol.Chi[fi]
	if chi.Count() != 2 {
		t.Fatalf("optional director copy has %d candidates, want 2", chi.Count())
	}
}

// TestConstantInQuery: constants become singleton SOI variables
// (Sect. 4.5).
func TestConstantInQuery(t *testing.T) {
	st := fig1a(t)
	rel, err := QueryDualSimulation(st, sparql.MustParse(`
SELECT * WHERE { ?m genre <Action> . ?d directed ?m }`), Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := rel.VarSet("m")
	if m.Count() != 2 {
		t.Fatalf("m candidates = %d, want 2", m.Count())
	}
}

// TestEmptyQueryRelation: an unsatisfiable mandatory core yields an empty
// relation over every branch.
func TestEmptyQueryRelation(t *testing.T) {
	st := fig1a(t)
	rel, err := QueryDualSimulation(st, sparql.MustParse(`
SELECT * WHERE { ?x no_such_pred ?y OPTIONAL { ?x directed ?z } }`), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Empty() {
		t.Fatal("expected empty query relation")
	}
	if !rel.VarSet("z").IsEmpty() {
		t.Fatal("optional var of empty branch should contribute nothing")
	}
}

func mustIRI(n string) rdf.Term { return rdf.NewIRI(n) }
