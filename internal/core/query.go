package core

import (
	"context"
	"fmt"

	"dualsim/internal/bitvec"
	"dualsim/internal/rdf"
	"dualsim/internal/soi"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// This file implements the paper's Sect. 4: translating queries of the
// language S (union-free SPARQL with AND and OPTIONAL) into sound systems
// of inequalities, including the variable renaming for optional
// occurrences (Lemmas 3–5 and the "general case" of Sect. 4.4), plus the
// UNION handling by union-normal-form branching (Proposition 3).
//
// The construction is bottom-up. Each subquery yields a fragment whose
// SOI-variables carry their original query variable and a mandatory flag;
// combining fragments renames colliding names according to:
//
//	AND  (Lemma 3/5):
//	  mandatory/mandatory  → share the name (compatible matches agree);
//	  mandatory/optional   → rename the optional side to a fresh copy f,
//	                         add f ≤ name (the mandatory anchor);
//	  optional/optional    → rename one side fresh, no copy inequality
//	                         (the Sect. 4.4 "no interdependency" case).
//	OPTIONAL (Lemma 4 + Sect. 4.4):
//	  left-mandatory       → rename the right side fresh, add f ≤ name;
//	  left-optional        → rename the right side fresh, no copy;
//	  afterwards every right-side variable becomes optional
//	  (mand(Q1 OPTIONAL Q2) = mand(Q1)).
//
// Renaming rewrites the right-hand sides of previously created copy
// inequalities too, which yields exactly the "syntactically closest"
// chains of Sect. 4.4 (z_R3 ≤ z_R2 ≤ z).

// QueryVar is one SOI variable of a translated query branch.
type QueryVar struct {
	// Name is the SOI variable name: the original variable, a fresh copy
	// "orig#k" for a renamed optional occurrence, or "const:…" for a
	// constant endpoint.
	Name string
	// Orig is the original query variable ("" for constants).
	Orig string
	// Mandatory reports membership in mand(Q) of this occurrence class.
	Mandatory bool
	// Const is the bound term for constant endpoints.
	Const *rdf.Term
}

// BranchEdge is one pattern edge of a branch over SOI variable indexes.
type BranchEdge struct {
	From, To int
	Pred     string
}

// Branch is one union-free branch translated to a system of inequalities.
type Branch struct {
	Expr   sparql.Expr
	Vars   []QueryVar
	Edges  []BranchEdge
	Copies [][2]int // copy inequalities x ≤ y as variable indexes
	Sys    *soi.System
}

// QueryPlan is a full query translated branch-per-union-operand.
type QueryPlan struct {
	Query    *sparql.Query
	Branches []*Branch
}

// PatternGraph rebuilds the branch as a pattern graph over its SOI
// variables (copy inequalities are dropped — they only tighten the
// solution, so the pattern over-approximates the branch). Used by the
// fingerprint pre-filter, which lifts summary-level candidates per
// pattern variable.
func (b *Branch) PatternGraph() *Pattern {
	p := NewPattern()
	for _, qv := range b.Vars {
		p.Var(qv.Name)
		if qv.Const != nil {
			p.Bind(qv.Name, *qv.Const)
		}
	}
	for _, e := range b.Edges {
		p.Edge(b.Vars[e.From].Name, e.Pred, b.Vars[e.To].Name)
	}
	return p
}

// ---------------------------------------------------------------------------
// Bottom-up fragment construction.

type fragVar struct {
	orig      string
	mandatory bool
	konst     *rdf.Term
}

type fragment struct {
	vars   map[string]*fragVar
	order  []string // deterministic variable order
	edges  []BranchEdge2
	copies [][2]string
}

// BranchEdge2 is a fragment edge over names (pre-index-resolution).
type BranchEdge2 struct {
	From, To string
	Pred     string
}

type builder struct {
	fresh int
}

func (b *builder) freshName(orig string) string {
	b.fresh++
	return fmt.Sprintf("%s#%d", orig, b.fresh)
}

func newFragment() *fragment {
	return &fragment{vars: make(map[string]*fragVar)}
}

func (f *fragment) addVar(name string, v fragVar) {
	if _, ok := f.vars[name]; !ok {
		f.order = append(f.order, name)
		cp := v
		f.vars[name] = &cp
	}
}

func (b *builder) build(e sparql.Expr) (*fragment, error) {
	switch x := e.(type) {
	case sparql.BGP:
		return b.buildBGP(x)
	case sparql.And:
		l, err := b.build(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.build(x.R)
		if err != nil {
			return nil, err
		}
		return b.combine(l, r, false), nil
	case sparql.Optional:
		l, err := b.build(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.build(x.R)
		if err != nil {
			return nil, err
		}
		return b.combine(l, r, true), nil
	case sparql.Filter:
		// The pattern graph over-approximates the filtered pattern: every
		// match of FILTER(Q, C) is a match of Q, so pruning against Q's
		// pattern graph never loses a filtered answer. The condition is
		// re-applied by the evaluation engines.
		return b.build(x.Inner)
	case sparql.Union:
		return nil, fmt.Errorf("core: UNION must be split into branches before SOI construction")
	default:
		return nil, fmt.Errorf("core: unknown expression %T", e)
	}
}

func (b *builder) buildBGP(bgp sparql.BGP) (*fragment, error) {
	f := newFragment()
	termName := func(t sparql.Term) (string, error) {
		if t.IsVar() {
			f.addVar(t.Var, fragVar{orig: t.Var, mandatory: true})
			return t.Var, nil
		}
		name := "const:" + t.Const.Key()
		f.addVar(name, fragVar{mandatory: true, konst: t.Const})
		return name, nil
	}
	for _, tp := range bgp {
		if tp.P.IsVar() {
			return nil, fmt.Errorf("core: variable predicate %s unsupported by dual simulation (pattern graphs are edge-labeled)", tp.P)
		}
		from, err := termName(tp.S)
		if err != nil {
			return nil, err
		}
		to, err := termName(tp.O)
		if err != nil {
			return nil, err
		}
		f.edges = append(f.edges, BranchEdge2{From: from, To: to, Pred: tp.P.Const.Value})
	}
	return f, nil
}

// combine merges two fragments under AND (optional=false) or OPTIONAL
// (optional=true), applying the renaming discipline described above.
func (b *builder) combine(l, r *fragment, optional bool) *fragment {
	renameL := make(map[string]string)
	renameR := make(map[string]string)
	var newCopies [][2]string

	for _, name := range r.order {
		rv := r.vars[name]
		lv, shared := l.vars[name]
		if !shared {
			continue
		}
		// Constants go through the same renaming discipline as variables:
		// although their χ is bounded by a fixed singleton, the edge
		// inequalities of an optional part constrain BOTH endpoints, so a
		// shared constant would leak unsatisfiability from an unmatched
		// optional part into the mandatory core.
		switch {
		case optional && lv.mandatory:
			f := b.freshName(orig(rv, name))
			renameR[name] = f
			newCopies = append(newCopies, [2]string{f, name})
		case optional && !lv.mandatory:
			renameR[name] = b.freshName(orig(rv, name))
		case lv.mandatory && rv.mandatory:
			// AND with both mandatory: compatible matches agree, share.
		case lv.mandatory && !rv.mandatory:
			f := b.freshName(orig(rv, name))
			renameR[name] = f
			newCopies = append(newCopies, [2]string{f, name})
		case !lv.mandatory && rv.mandatory:
			f := b.freshName(orig(lv, name))
			renameL[name] = f
			newCopies = append(newCopies, [2]string{f, name})
		default: // both optional under AND
			renameR[name] = b.freshName(orig(rv, name))
		}
	}

	lr := applyRename(l, renameL)
	rr := applyRename(r, renameR)

	out := newFragment()
	for _, n := range lr.order {
		out.addVar(n, *lr.vars[n])
	}
	for _, n := range rr.order {
		v := *rr.vars[n]
		if optional {
			v.mandatory = false
		} else if existing, ok := out.vars[n]; ok {
			// Shared mandatory/mandatory AND case keeps mandatory.
			existing.mandatory = existing.mandatory || v.mandatory
			continue
		}
		out.addVar(n, v)
	}
	out.edges = append(append([]BranchEdge2{}, lr.edges...), rr.edges...)
	out.copies = append(append(out.copies, lr.copies...), rr.copies...)
	out.copies = append(out.copies, newCopies...)
	return out
}

func orig(v *fragVar, name string) string {
	if v.orig != "" {
		return v.orig
	}
	return name
}

// applyRename rewrites all occurrences of renamed variables, including
// the right-hand sides of existing copy inequalities (which produces the
// "syntactically closest" chains).
func applyRename(f *fragment, ren map[string]string) *fragment {
	if len(ren) == 0 {
		return f
	}
	nm := func(n string) string {
		if r, ok := ren[n]; ok {
			return r
		}
		return n
	}
	out := newFragment()
	for _, n := range f.order {
		out.addVar(nm(n), *f.vars[n])
	}
	for _, e := range f.edges {
		out.edges = append(out.edges, BranchEdge2{From: nm(e.From), To: nm(e.To), Pred: e.Pred})
	}
	for _, c := range f.copies {
		out.copies = append(out.copies, [2]string{nm(c[0]), nm(c[1])})
	}
	return out
}

// ---------------------------------------------------------------------------
// Lowering to soi.System over a store.

// BuildQueryPlan translates a query into one SOI per union-free branch
// (Theorem 2: each branch's SOI is sound for the branch).
func BuildQueryPlan(st *storage.Store, q *sparql.Query, cfg Config) (*QueryPlan, error) {
	plan := &QueryPlan{Query: q}
	for _, branchExpr := range sparql.UnionFreeBranches(q.Expr) {
		b := &builder{}
		frag, err := b.build(branchExpr)
		if err != nil {
			return nil, err
		}
		br, err := lowerFragment(st, branchExpr, frag, cfg)
		if err != nil {
			return nil, err
		}
		plan.Branches = append(plan.Branches, br)
	}
	return plan, nil
}

func lowerFragment(st *storage.Store, e sparql.Expr, f *fragment, cfg Config) (*Branch, error) {
	n := st.NumNodes()
	sys := soi.NewSystem(n)
	br := &Branch{Expr: e, Sys: sys}

	idx := make(map[string]int, len(f.order))
	vars := make([]soi.Var, 0, len(f.order))
	for _, name := range f.order {
		fv := f.vars[name]
		var init *bitvec.Vector
		if fv.konst != nil {
			init = bitvec.New(n)
			if id, ok := st.TermID(*fv.konst); ok {
				init.Set(int(id))
			}
		}
		v := sys.AddVar(name, init, fv.mandatory)
		idx[name] = len(vars)
		vars = append(vars, v)
		br.Vars = append(br.Vars, QueryVar{
			Name:      name,
			Orig:      fv.orig,
			Mandatory: fv.mandatory,
			Const:     fv.konst,
		})
	}
	for _, e := range f.edges {
		mats := predMatrices(st, e.Pred, cfg.Compressed)
		from, to := idx[e.From], idx[e.To]
		sys.AddEdge(vars[from], vars[to], mats, e.Pred)
		if !cfg.PlainInit {
			sys.ConstrainInit(vars[from], mats.F.NonEmptyRows())
			sys.ConstrainInit(vars[to], mats.B.NonEmptyRows())
		}
		br.Edges = append(br.Edges, BranchEdge{From: from, To: to, Pred: e.Pred})
	}
	for _, c := range f.copies {
		sys.AddCopy(vars[idx[c[0]]], vars[idx[c[1]]])
		br.Copies = append(br.Copies, [2]int{idx[c[0]], idx[c[1]]})
	}
	return br, nil
}

// ---------------------------------------------------------------------------
// Solving.

// BranchSolution is the largest solution of one branch's SOI.
type BranchSolution struct {
	Branch *Branch
	Sol    *soi.Solution
	// MandatoryEmpty reports that some mandatory variable has no
	// candidates: the branch contributes no matches at all (Theorem 1),
	// so everything it would retain may be pruned.
	MandatoryEmpty bool
}

// QueryRelation is the union-of-branches dual simulation result of a
// query.
type QueryRelation struct {
	Plan     *QueryPlan
	Branches []*BranchSolution
	Stats    soi.Stats // aggregated over branches
}

// Finalize freezes every branch system for solving. A finalized plan is
// immutable and may be solved concurrently — the basis for prepared
// queries: translation, lowering and finalization happen once, Solve
// runs per execution.
func (p *QueryPlan) Finalize() {
	for _, br := range p.Branches {
		br.Sys.Finalize()
	}
}

// Solve computes the largest solution of every branch.
func (p *QueryPlan) Solve(cfg Config) *QueryRelation {
	rel, _ := p.SolveRestricted(context.Background(), cfg, nil)
	return rel
}

// SolveRestricted computes the largest solution of every branch,
// honouring ctx cancellation. restrict, when non-nil, carries one
// per-branch slice of initial-bound intersections (indexed like
// Branch.Vars, nil entries skipped) — the hook through which a
// fingerprint pre-filter tightens the solver's starting point without
// mutating the shared plan.
func (p *QueryPlan) SolveRestricted(ctx context.Context, cfg Config, restrict [][]*bitvec.Vector) (*QueryRelation, error) {
	rel := &QueryRelation{Plan: p}
	for i, br := range p.Branches {
		opts := soi.Options{
			Strategy:     cfg.Strategy,
			Order:        cfg.Order,
			ShortCircuit: cfg.ShortCircuit,
			Workers:      cfg.Workers,
		}
		if restrict != nil && i < len(restrict) {
			opts.Restrict = restrict[i]
		}
		sol, err := br.Sys.SolveCtx(ctx, opts)
		if err != nil {
			return nil, err
		}
		bs := &BranchSolution{Branch: br, Sol: sol}
		bs.MandatoryEmpty = sol.Stats.ShortCircuited || sol.EmptyRequired(br.Sys)
		rel.Branches = append(rel.Branches, bs)
		rel.Stats.Rounds += sol.Stats.Rounds
		rel.Stats.Evaluations += sol.Stats.Evaluations
		rel.Stats.Updates += sol.Stats.Updates
		rel.Stats.ShortCircuited = rel.Stats.ShortCircuited || sol.Stats.ShortCircuited
	}
	return rel, nil
}

// Release returns every branch solution's χ storage to the per-system
// solver pools, making steady-state repeated solving of a prepared plan
// allocation-free. The relation and its solutions must not be used
// afterwards; Release is optional (skipping it just leaves the work to
// the GC) and idempotent.
func (r *QueryRelation) Release() {
	for _, bs := range r.Branches {
		bs.Sol.Release()
	}
}

// VarSet returns the union over branches and renamed copies of the
// candidate nodes for an original query variable — the paper's reading of
// the extreme case: "every solution to x_P2 or x_P3 also is a solution to
// variable x". Branches with an empty mandatory core contribute nothing.
func (r *QueryRelation) VarSet(orig string) *bitvec.Vector {
	var out *bitvec.Vector
	for _, bs := range r.Branches {
		if bs.MandatoryEmpty {
			continue
		}
		for i, qv := range bs.Branch.Vars {
			if qv.Orig != orig {
				continue
			}
			if out == nil {
				out = bs.Sol.Chi[i].Clone()
			} else {
				out.Or(bs.Sol.Chi[i])
			}
		}
	}
	if out == nil {
		out = bitvec.New(dimOf(r))
	}
	return out
}

func dimOf(r *QueryRelation) int {
	if len(r.Branches) > 0 {
		return r.Branches[0].Branch.Sys.Dim()
	}
	return 0
}

// Empty reports whether every branch is unsatisfiable.
func (r *QueryRelation) Empty() bool {
	for _, bs := range r.Branches {
		if !bs.MandatoryEmpty {
			return false
		}
	}
	return true
}

// QueryDualSimulation is the convenience entry point: build the plan and
// solve it.
func QueryDualSimulation(st *storage.Store, q *sparql.Query, cfg Config) (*QueryRelation, error) {
	return QueryDualSimulationCtx(context.Background(), st, q, cfg)
}

// QueryDualSimulationCtx is QueryDualSimulation honouring cancellation.
func QueryDualSimulationCtx(ctx context.Context, st *storage.Store, q *sparql.Query, cfg Config) (*QueryRelation, error) {
	plan, err := BuildQueryPlan(st, q, cfg)
	if err != nil {
		return nil, err
	}
	return plan.SolveRestricted(ctx, cfg, nil)
}
