// Package datagen synthesizes the two evaluation datasets of the paper's
// Sect. 5 at laptop scale:
//
//   - LUBM: a deterministic re-implementation of the Lehigh University
//     Benchmark generator [Guo et al. 2005]. Its defining property for
//     dual simulation experiments is a tiny predicate alphabet (18
//     predicates in the original) spread over a large, structurally
//     repetitive graph — low predicate selectivity, many SOI iterations
//     for cyclic queries, and dual-simulation over-retention on L1-style
//     queries.
//   - DBpedia-like knowledge graph: a heterogeneous graph with a Zipfian
//     predicate distribution and typed entities (films, people, places,
//     organizations) — high predicate selectivity, split-second SOI
//     convergence.
//
// Both generators are deterministic in their seed and scale parameters;
// substitution rationale lives in DESIGN.md.
package datagen

import (
	"fmt"
	"math/rand"

	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

// LUBM predicate vocabulary (the ub: namespace of the original benchmark,
// abbreviated). The paper's LUBM dataset has 18 predicates; we reproduce
// the structurally relevant ones.
const (
	PredType              = "rdf:type"
	PredSubOrganizationOf = "ub:subOrganizationOf"
	PredUndergradFrom     = "ub:undergraduateDegreeFrom"
	PredMastersFrom       = "ub:mastersDegreeFrom"
	PredDoctoralFrom      = "ub:doctoralDegreeFrom"
	PredDegreeFrom        = "ub:degreeFrom"
	PredMemberOf          = "ub:memberOf"
	PredWorksFor          = "ub:worksFor"
	PredHeadOf            = "ub:headOf"
	PredAdvisor           = "ub:advisor"
	PredTakesCourse       = "ub:takesCourse"
	PredTeacherOf         = "ub:teacherOf"
	PredTeachingAssistant = "ub:teachingAssistantOf"
	PredPublicationAuthor = "ub:publicationAuthor"
	PredResearchInterest  = "ub:researchInterest"
	PredEmailAddress      = "ub:emailAddress"
	PredTelephone         = "ub:telephone"
	PredName              = "ub:name"
)

// LUBM class IRIs used as rdf:type objects.
const (
	ClassUniversity    = "ub:University"
	ClassDepartment    = "ub:Department"
	ClassFullProfessor = "ub:FullProfessor"
	ClassAssocProf     = "ub:AssociateProfessor"
	ClassAsstProf      = "ub:AssistantProfessor"
	ClassLecturer      = "ub:Lecturer"
	ClassUndergrad     = "ub:UndergraduateStudent"
	ClassGradStudent   = "ub:GraduateStudent"
	ClassCourse        = "ub:Course"
	ClassGradCourse    = "ub:GraduateCourse"
	ClassPublication   = "ub:Publication"
	ClassResearchGroup = "ub:ResearchGroup"
)

// LUBMConfig scales the generator. The defaults (via DefaultLUBM) fit in
// memory on a laptop while preserving the benchmark's structural ratios
// (derived from the original generator's documented ranges, scaled down).
type LUBMConfig struct {
	Universities int
	Seed         int64

	// Per-university/department ranges (min..max, inclusive).
	DeptsPerUni           [2]int
	FullProfsPerDept      [2]int
	AssocProfsPerDept     [2]int
	AsstProfsPerDept      [2]int
	LecturersPerDept      [2]int
	UndergradsPerDept     [2]int
	GradsPerDept          [2]int
	CoursesPerDept        [2]int
	GradCoursesPerDept    [2]int
	ResearchGroupsPerDept [2]int
	PubsPerProf           [2]int
}

// DefaultLUBM returns the laptop-scale configuration used by the
// experiment harness.
func DefaultLUBM(universities int, seed int64) LUBMConfig {
	return LUBMConfig{
		Universities:          universities,
		Seed:                  seed,
		DeptsPerUni:           [2]int{3, 6},
		FullProfsPerDept:      [2]int{2, 4},
		AssocProfsPerDept:     [2]int{2, 5},
		AsstProfsPerDept:      [2]int{2, 5},
		LecturersPerDept:      [2]int{1, 3},
		UndergradsPerDept:     [2]int{20, 40},
		GradsPerDept:          [2]int{8, 16},
		CoursesPerDept:        [2]int{6, 12},
		GradCoursesPerDept:    [2]int{4, 8},
		ResearchGroupsPerDept: [2]int{2, 4},
		PubsPerProf:           [2]int{1, 4},
	}
}

// LUBM generates the dataset as triples.
func LUBM(cfg LUBMConfig) []rdf.Triple {
	g := &lubmGen{
		r:   rand.New(rand.NewSource(cfg.Seed)),
		cfg: cfg,
	}
	g.run()
	return g.out
}

// LUBMStore generates and loads the dataset in one step.
func LUBMStore(cfg LUBMConfig) (*storage.Store, error) {
	return storage.FromTriples(LUBM(cfg))
}

type lubmGen struct {
	r   *rand.Rand
	cfg LUBMConfig
	out []rdf.Triple

	universities []string
}

func (g *lubmGen) emit(s, p, o string) {
	g.out = append(g.out, rdf.T(s, p, o))
}

func (g *lubmGen) emitLit(s, p, lit string) {
	g.out = append(g.out, rdf.TL(s, p, lit))
}

func (g *lubmGen) between(rng [2]int) int {
	if rng[1] <= rng[0] {
		return rng[0]
	}
	return rng[0] + g.r.Intn(rng[1]-rng[0]+1)
}

func (g *lubmGen) run() {
	for u := 0; u < g.cfg.Universities; u++ {
		g.universities = append(g.universities, fmt.Sprintf("univ%d", u))
	}
	for u := 0; u < g.cfg.Universities; u++ {
		g.university(u)
	}
}

func (g *lubmGen) university(u int) {
	uni := g.universities[u]
	g.emit(uni, PredType, ClassUniversity)

	depts := g.between(g.cfg.DeptsPerUni)
	for d := 0; d < depts; d++ {
		g.department(u, d)
	}
}

// otherUniversity picks a university different from u when possible —
// degrees are mostly earned elsewhere, the property behind L1-style
// cross-university joins.
func (g *lubmGen) otherUniversity(u int) string {
	if len(g.universities) == 1 {
		return g.universities[0]
	}
	for {
		v := g.r.Intn(len(g.universities))
		if v != u {
			return g.universities[v]
		}
	}
}

func (g *lubmGen) anyUniversity(u int) string {
	// 20% home university, 80% elsewhere.
	if g.r.Intn(5) == 0 {
		return g.universities[u]
	}
	return g.otherUniversity(u)
}

func (g *lubmGen) department(u, d int) {
	uni := g.universities[u]
	dept := fmt.Sprintf("dept%d.univ%d", d, u)
	g.emit(dept, PredType, ClassDepartment)
	g.emit(dept, PredSubOrganizationOf, uni)

	mk := func(class, kind string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%s%d.%s", kind, i, dept)
			g.emit(out[i], PredType, class)
		}
		return out
	}

	fulls := mk(ClassFullProfessor, "fullprof", g.between(g.cfg.FullProfsPerDept))
	assocs := mk(ClassAssocProf, "assocprof", g.between(g.cfg.AssocProfsPerDept))
	assts := mk(ClassAsstProf, "asstprof", g.between(g.cfg.AsstProfsPerDept))
	lects := mk(ClassLecturer, "lecturer", g.between(g.cfg.LecturersPerDept))
	undergrads := mk(ClassUndergrad, "ugstudent", g.between(g.cfg.UndergradsPerDept))
	grads := mk(ClassGradStudent, "gradstudent", g.between(g.cfg.GradsPerDept))
	courses := mk(ClassCourse, "course", g.between(g.cfg.CoursesPerDept))
	gradCourses := mk(ClassGradCourse, "gradcourse", g.between(g.cfg.GradCoursesPerDept))
	groups := mk(ClassResearchGroup, "group", g.between(g.cfg.ResearchGroupsPerDept))

	faculty := append(append(append([]string{}, fulls...), assocs...), assts...)
	staff := append(append([]string{}, faculty...), lects...)

	for _, gr := range groups {
		g.emit(gr, PredSubOrganizationOf, dept)
	}

	// Faculty: employment, degrees, head of department, publications.
	g.emit(fulls[0], PredHeadOf, dept)
	for _, f := range staff {
		g.emit(f, PredWorksFor, dept)
		g.emit(f, PredUndergradFrom, g.anyUniversity(u))
		g.emit(f, PredMastersFrom, g.anyUniversity(u))
		doct := g.anyUniversity(u)
		g.emit(f, PredDoctoralFrom, doct)
		g.emit(f, PredDegreeFrom, doct)
		g.emitLit(f, PredEmailAddress, f+"@"+dept+".edu")
		g.emitLit(f, PredTelephone, fmt.Sprintf("+1-555-%04d", g.r.Intn(10000)))
		g.emitLit(f, PredName, f)
		g.emitLit(f, PredResearchInterest, fmt.Sprintf("research%d", g.r.Intn(30)))
	}

	// Courses: every course taught by exactly one staff member.
	allCourses := append(append([]string{}, courses...), gradCourses...)
	for _, c := range allCourses {
		g.emit(staff[g.r.Intn(len(staff))], PredTeacherOf, c)
	}

	// Undergraduates: member of the department, take 2-4 courses; a fifth
	// of them have a faculty advisor.
	for _, s := range undergrads {
		g.emit(s, PredMemberOf, dept)
		for _, c := range pick(g.r, courses, 2, 4) {
			g.emit(s, PredTakesCourse, c)
		}
		if g.r.Intn(5) == 0 {
			g.emit(s, PredAdvisor, faculty[g.r.Intn(len(faculty))])
		}
		g.emitLit(s, PredName, s)
	}

	// Graduate students: degree from some university, member of the
	// department, advisor, 1-3 graduate courses, maybe TA.
	for _, s := range grads {
		g.emit(s, PredMemberOf, dept)
		ugUni := g.anyUniversity(u)
		g.emit(s, PredUndergradFrom, ugUni)
		g.emit(s, PredDegreeFrom, ugUni)
		g.emit(s, PredAdvisor, faculty[g.r.Intn(len(faculty))])
		for _, c := range pick(g.r, gradCourses, 1, 3) {
			g.emit(s, PredTakesCourse, c)
		}
		if g.r.Intn(4) == 0 {
			g.emit(s, PredTeachingAssistant, courses[g.r.Intn(len(courses))])
		}
		g.emitLit(s, PredName, s)
	}

	// Publications: authored by faculty, with 30% chance of a graduate
	// student co-author — the constellation L1 asks for.
	pubID := 0
	for _, f := range faculty {
		n := g.between(g.cfg.PubsPerProf)
		for i := 0; i < n; i++ {
			pub := fmt.Sprintf("pub%d.%s", pubID, dept)
			pubID++
			g.emit(pub, PredType, ClassPublication)
			g.emit(pub, PredPublicationAuthor, f)
			if g.r.Intn(10) < 3 {
				g.emit(pub, PredPublicationAuthor, grads[g.r.Intn(len(grads))])
			}
		}
	}
}

// pick draws between lo and hi distinct elements from xs.
func pick(r *rand.Rand, xs []string, lo, hi int) []string {
	if len(xs) == 0 {
		return nil
	}
	n := lo
	if hi > lo {
		n += r.Intn(hi - lo + 1)
	}
	if n > len(xs) {
		n = len(xs)
	}
	idx := r.Perm(len(xs))[:n]
	out := make([]string, n)
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}
