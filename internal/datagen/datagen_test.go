package datagen

import (
	"testing"

	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

func TestLUBMDeterministic(t *testing.T) {
	a := LUBM(DefaultLUBM(2, 7))
	b := LUBM(DefaultLUBM(2, 7))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := LUBM(DefaultLUBM(2, 8))
	if len(a) == len(c) && sameTriples(a, c) {
		t.Fatal("different seeds produced identical data")
	}
}

func sameTriples(a, b []rdf.Triple) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLUBMSchemaInvariants(t *testing.T) {
	st, err := LUBMStore(DefaultLUBM(3, 42))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's LUBM property: a tiny predicate alphabet (≤18 here).
	if st.NumPreds() > 18 {
		t.Fatalf("NumPreds = %d, want ≤ 18", st.NumPreds())
	}
	for _, pred := range []string{
		PredType, PredSubOrganizationOf, PredWorksFor, PredMemberOf,
		PredAdvisor, PredTakesCourse, PredTeacherOf, PredPublicationAuthor,
		PredDegreeFrom, PredHeadOf, PredTeachingAssistant,
	} {
		pid, ok := st.PredIDOf(pred)
		if !ok || st.PredCount(pid) == 0 {
			t.Fatalf("predicate %s missing or empty", pred)
		}
	}

	// Every department belongs to exactly one university.
	sub, _ := st.PredIDOf(PredSubOrganizationOf)
	typ, _ := st.PredIDOf(PredType)
	deptClass, _ := st.TermID(rdf.NewIRI(ClassDepartment))
	uniClass, _ := st.TermID(rdf.NewIRI(ClassUniversity))
	for _, dept := range st.Subjects(typ, deptClass) {
		unis := 0
		for _, o := range st.Objects(sub, dept) {
			for _, cls := range st.Objects(typ, o) {
				if cls == uniClass {
					unis++
				}
			}
		}
		if unis != 1 {
			t.Fatalf("department %s has %d universities", st.Term(dept).Value, unis)
		}
	}

	// Every publication has at least one author, and all authors are
	// persons (faculty or students), never departments.
	pubClass, _ := st.TermID(rdf.NewIRI(ClassPublication))
	author, _ := st.PredIDOf(PredPublicationAuthor)
	pubs := st.Subjects(typ, pubClass)
	if len(pubs) == 0 {
		t.Fatal("no publications generated")
	}
	for _, pub := range pubs {
		if len(st.Objects(author, pub)) == 0 {
			t.Fatalf("publication %s has no author", st.Term(pub).Value)
		}
	}

	// Head of department works for it.
	head, _ := st.PredIDOf(PredHeadOf)
	works, _ := st.PredIDOf(PredWorksFor)
	cnt := 0
	st.ForEachPair(head, func(h, d storage.NodeID) bool {
		cnt++
		if !st.HasTriple(h, works, d) {
			t.Fatalf("head %s does not work for %s", st.Term(h).Value, st.Term(d).Value)
		}
		return true
	})
	if cnt == 0 {
		t.Fatal("no heads generated")
	}
}

func TestLUBMScales(t *testing.T) {
	small, _ := LUBMStore(DefaultLUBM(1, 1))
	big, _ := LUBMStore(DefaultLUBM(4, 1))
	if big.NumTriples() < 3*small.NumTriples() {
		t.Fatalf("scaling broken: %d vs %d", small.NumTriples(), big.NumTriples())
	}
}

func TestKGDeterministic(t *testing.T) {
	a := KG(DefaultKG(1, 5))
	b := KG(DefaultKG(1, 5))
	if len(a) != len(b) || !sameTriples(a, b) {
		t.Fatal("KG not deterministic")
	}
}

func TestKGSchemaInvariants(t *testing.T) {
	st, err := KGStore(DefaultKG(1, 42))
	if err != nil {
		t.Fatal(err)
	}
	// DBpedia-like: many predicates with a long rare tail.
	if st.NumPreds() < 40 {
		t.Fatalf("NumPreds = %d, want a long tail", st.NumPreds())
	}
	// Films always have a director and a genre.
	typ, _ := st.PredIDOf(KGType)
	filmClass, _ := st.TermID(rdf.NewIRI(KGClassFilm))
	director, _ := st.PredIDOf(KGDirector)
	genre, _ := st.PredIDOf(KGGenre)
	films := st.Subjects(typ, filmClass)
	if len(films) == 0 {
		t.Fatal("no films")
	}
	for _, f := range films {
		if len(st.Objects(director, f)) == 0 {
			t.Fatalf("film %s without director", st.Term(f).Value)
		}
		if len(st.Objects(genre, f)) == 0 {
			t.Fatalf("film %s without genre", st.Term(f).Value)
		}
	}
	// High predicate selectivity: director objects are a small fraction
	// of people (Zipfian concentration).
	people, _ := st.TermID(rdf.NewIRI(KGClassPerson))
	nPeople := len(st.Subjects(typ, people))
	if st.DistinctObjects(director) >= nPeople/2 {
		t.Fatalf("directors not concentrated: %d of %d people",
			st.DistinctObjects(director), nPeople)
	}
}

func TestKGZipfSkew(t *testing.T) {
	st, err := KGStore(DefaultKG(1, 42))
	if err != nil {
		t.Fatal(err)
	}
	// The most popular director must have directed far more than the
	// median: the paper's selectivity argument depends on the skew.
	director, _ := st.PredIDOf(KGDirector)
	counts := make(map[storage.NodeID]int)
	st.ForEachPair(director, func(f, d storage.NodeID) bool {
		counts[d]++
		return true
	})
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5 {
		t.Fatalf("top director has only %d films; zipf skew missing", max)
	}
}
