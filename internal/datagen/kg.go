package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

// KG predicate vocabulary (the DBpedia-flavoured subset the B- and
// D-query analogues use).
const (
	KGType       = "rdf:type"
	KGDirector   = "dbo:director"
	KGStarring   = "dbo:starring"
	KGWriter     = "dbo:writer"
	KGProducer   = "dbo:producer"
	KGBirthPlace = "dbo:birthPlace"
	KGDeathPlace = "dbo:deathPlace"
	KGSpouse     = "dbo:spouse"
	KGCountry    = "dbo:country"
	KGCapital    = "dbo:capital"
	KGLocatedIn  = "dbo:locatedIn"
	KGFoundedBy  = "dbo:foundedBy"
	KGEmployer   = "dbo:employer"
	KGAward      = "dbo:award"
	KGGenre      = "dbo:genre"
	KGLanguage   = "dbo:language"
	KGPopulation = "dbo:populationTotal"
	KGName       = "foaf:name"
	KGInfluenced = "dbo:influencedBy"
	KGAlmaMater  = "dbo:almaMater"
)

// KG class IRIs.
const (
	KGClassFilm   = "dbo:Film"
	KGClassPerson = "dbo:Person"
	KGClassPlace  = "dbo:Place"
	KGClassOrg    = "dbo:Organisation"
	KGClassAward  = "dbo:Award"
	KGClassGenre  = "dbo:Genre"
)

// KGConfig scales the knowledge-graph generator.
type KGConfig struct {
	Films  int
	People int
	Places int
	Orgs   int
	Seed   int64
	// NoisePreds adds a heavy Zipfian tail of rare predicates, matching
	// DBpedia's 65k-predicate long tail (99% of DBpedia predicates store
	// <1 MB, §5.1).
	NoisePreds int
}

// DefaultKG returns the laptop-scale configuration used by the experiment
// harness; scale multiplies entity counts.
func DefaultKG(scale int, seed int64) KGConfig {
	if scale < 1 {
		scale = 1
	}
	return KGConfig{
		Films:      400 * scale,
		People:     800 * scale,
		Places:     150 * scale,
		Orgs:       100 * scale,
		Seed:       seed,
		NoisePreds: 60,
	}
}

// KG generates the DBpedia-like dataset as triples.
func KG(cfg KGConfig) []rdf.Triple {
	g := &kgGen{r: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
	g.run()
	return g.out
}

// KGStore generates and loads the dataset in one step.
func KGStore(cfg KGConfig) (*storage.Store, error) {
	return storage.FromTriples(KG(cfg))
}

type kgGen struct {
	r   *rand.Rand
	cfg KGConfig
	out []rdf.Triple

	films, people, places, orgs, awards, genres []string
}

func (g *kgGen) emit(s, p, o string)      { g.out = append(g.out, rdf.T(s, p, o)) }
func (g *kgGen) emitLit(s, p, lit string) { g.out = append(g.out, rdf.TL(s, p, lit)) }

// zipf draws an index in [0, n) with a Zipf-like skew: a few entities are
// very popular (famous directors, big countries), most are rare.
func (g *kgGen) zipf(n int) int {
	if n <= 1 {
		return 0
	}
	u := g.r.Float64()
	i := int(math.Pow(u, 2.2) * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

func names(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

func (g *kgGen) run() {
	c := g.cfg
	g.films = names("film", c.Films)
	g.people = names("person", c.People)
	g.places = names("place", c.Places)
	g.orgs = names("org", c.Orgs)
	g.awards = names("award", 12)
	g.genres = names("genre", 15)

	for _, a := range g.awards {
		g.emit(a, KGType, KGClassAward)
	}
	for _, gn := range g.genres {
		g.emit(gn, KGType, KGClassGenre)
	}
	g.placeLayer()
	g.peopleLayer()
	g.filmLayer()
	g.orgLayer()
	g.noiseLayer()
}

func (g *kgGen) placeLayer() {
	for i, p := range g.places {
		g.emit(p, KGType, KGClassPlace)
		g.emitLit(p, KGName, p)
		g.emitLit(p, KGPopulation, fmt.Sprintf("%d", 1000+g.r.Intn(5_000_000)))
		// Hierarchy: place i is located in some earlier (bigger) place.
		if i > 0 {
			g.emit(p, KGLocatedIn, g.places[g.zipf(i)])
		}
		// The first tenth are countries with capitals.
		if i < len(g.places)/10+1 && i+1 < len(g.places) {
			g.emit(p, KGCapital, g.places[i+1])
			g.emit(g.places[i+1], KGCountry, p)
		}
	}
}

func (g *kgGen) peopleLayer() {
	for i, p := range g.people {
		g.emit(p, KGType, KGClassPerson)
		g.emitLit(p, KGName, p)
		g.emit(p, KGBirthPlace, g.places[g.zipf(len(g.places))])
		if g.r.Intn(4) == 0 {
			g.emit(p, KGDeathPlace, g.places[g.zipf(len(g.places))])
		}
		if g.r.Intn(3) == 0 {
			g.emit(p, KGSpouse, g.people[g.zipf(len(g.people))])
		}
		if g.r.Intn(5) == 0 && i > 0 {
			g.emit(p, KGInfluencedBy(), g.people[g.zipf(i)])
		}
		if g.r.Intn(6) == 0 {
			g.emit(p, KGAward, g.awards[g.zipf(len(g.awards))])
		}
	}
}

// KGInfluencedBy exists so the constant keeps one canonical spelling.
func KGInfluencedBy() string { return KGInfluenced }

func (g *kgGen) filmLayer() {
	directors := g.people[:len(g.people)/6+1] // a minority directs
	writers := g.people[:len(g.people)/4+1]
	for _, f := range g.films {
		g.emit(f, KGType, KGClassFilm)
		g.emitLit(f, KGName, f)
		d := directors[g.zipf(len(directors))]
		g.emit(f, KGDirector, d)
		for _, s := range pick(g.r, g.people, 2, 5) {
			g.emit(f, KGStarring, s)
		}
		if g.r.Intn(2) == 0 {
			g.emit(f, KGWriter, writers[g.zipf(len(writers))])
		}
		if g.r.Intn(3) == 0 {
			g.emit(f, KGProducer, g.people[g.zipf(len(g.people))])
		}
		g.emit(f, KGGenre, g.genres[g.zipf(len(g.genres))])
		g.emitLit(f, KGLanguage, []string{"en", "de", "fr", "es", "ja"}[g.zipf(5)])
		if g.r.Intn(8) == 0 {
			g.emit(f, KGAward, g.awards[g.zipf(len(g.awards))])
		}
	}
}

func (g *kgGen) orgLayer() {
	for _, o := range g.orgs {
		g.emit(o, KGType, KGClassOrg)
		g.emitLit(o, KGName, o)
		g.emit(o, KGLocatedIn, g.places[g.zipf(len(g.places))])
		g.emit(o, KGFoundedBy, g.people[g.zipf(len(g.people))])
		for _, p := range pick(g.r, g.people, 1, 6) {
			g.emit(p, KGEmployer, o)
		}
	}
	// A sparse almaMater layer connecting people to organisations.
	for _, p := range g.people {
		if g.r.Intn(3) == 0 {
			g.emit(p, KGAlmaMater, g.orgs[g.zipf(len(g.orgs))])
		}
	}
}

// noiseLayer adds the long tail of rare predicates.
func (g *kgGen) noiseLayer() {
	for i := 0; i < g.cfg.NoisePreds; i++ {
		pred := fmt.Sprintf("dbp:rare%d", i)
		uses := 1 + g.r.Intn(6)
		for j := 0; j < uses; j++ {
			g.emit(g.people[g.r.Intn(len(g.people))], pred, g.places[g.r.Intn(len(g.places))])
		}
	}
}
