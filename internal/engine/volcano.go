package engine

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"
	"unsafe"

	"dualsim/internal/plan"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// ctxErr is ctx.Err() that also detects an expired deadline the runtime
// timer has not delivered yet. On hosts with coarse timer resolution a
// sub-millisecond context.WithTimeout can stay Err() == nil for tens of
// milliseconds — longer than an entire streamed execution — so the
// operators compare wall-clock time against the deadline directly.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// Iterator is the Volcano operator interface: Open prepares the operator,
// Next produces one row at a time (rows are positional over Vars, with
// Unbound for positions outside dom(µ)), Close releases resources. The
// row returned by Next is owned by the caller (operators never reuse row
// slices they hand out).
type Iterator interface {
	Open(ctx context.Context) error
	// Next returns the next row; ok is false at end of stream.
	Next() (row []storage.NodeID, ok bool, err error)
	Close() error
	Vars() []string
}

// OperatorStats is the per-operator execution counter set surfaced in
// ExecStats: which operator ran, over what (a pattern or condition), the
// planner's cardinality estimate where one exists, and the rows actually
// produced.
//
//dualsim:wire
type OperatorStats struct {
	Op      string  `json:"op"`
	Detail  string  `json:"detail,omitempty"`
	EstRows float64 `json:"estRows,omitempty"`
	Rows    int64   `json:"rows"`
	// MemBytes and RowsBuffered estimate the operator's build-side
	// footprint: hash-join right sides and distinct/limit seen-sets are
	// the buffering points of the tree; streaming operators stay 0.
	MemBytes     int64 `json:"memBytes,omitempty"`
	RowsBuffered int64 `json:"rowsBuffered,omitempty"`
	// NextCalls counts Next invocations on the operator, including the
	// final end-of-stream one — rows plus the pull overhead.
	NextCalls int64 `json:"nextCalls,omitempty"`
	// Time is wall-clock time spent inside the operator's subtree
	// (inclusive of children), collected only when the execution was
	// compiled with timing enabled (tracing / EXPLAIN ANALYZE); 0
	// otherwise, so the untraced hot path never reads the clock per row.
	Time time.Duration `json:"time,omitempty"`
	// Depth is the operator's depth in the plan tree (root = 0): with
	// the post-order operator list it reconstructs the tree shape for
	// EXPLAIN rendering and per-operator trace spans.
	Depth int `json:"depth,omitempty"`
}

// Exec is a compiled streaming execution: the iterator tree of an
// optimized plan, plus the plan metadata (per-operator counters and the
// optimizer's decision log). It implements Iterator; Operators reads the
// counters accumulated so far, so it is meaningful both mid-stream and
// after exhaustion.
type Exec struct {
	root      Iterator
	ops       []*OperatorStats
	its       []*countedIter
	decisions []string
	acct      *account
}

func (e *Exec) Open(ctx context.Context) error        { return e.root.Open(ctx) }
func (e *Exec) Next() ([]storage.NodeID, bool, error) { return e.root.Next() }
func (e *Exec) Close() error                          { return e.root.Close() }
func (e *Exec) Vars() []string                        { return e.root.Vars() }

// Operators returns a snapshot of the per-operator counters in
// registration order — post-order over the plan tree (children before
// their parent, the outermost operator last). Together with each entry's
// Depth this is enough to rebuild the tree shape.
func (e *Exec) Operators() []OperatorStats {
	out := make([]OperatorStats, len(e.ops))
	for i, op := range e.ops {
		out[i] = *op
	}
	return out
}

// EnableTiming turns on per-operator wall-clock collection for this
// execution (OperatorStats.Time). Call before Open: timing costs two
// monotonic clock reads per Next per operator, so it is opt-in — the
// tracer and EXPLAIN ANALYZE enable it, the default path does not.
func (e *Exec) EnableTiming() {
	for _, it := range e.its {
		it.timed = true
	}
}

// Decisions returns the planner's decision log.
func (e *Exec) Decisions() []string { return e.decisions }

// ErrQueryMemoryExceeded reports that an execution's buffered state
// outgrew its per-query memory budget (SetMaxMemory). The query fails
// cleanly; the session stays usable.
var ErrQueryMemoryExceeded = errors.New("engine: query memory budget exceeded")

// Resources is the per-query resource accounting summary: the peak
// estimated memory held by buffering operators (hash-join build sides,
// distinct/limit seen-sets) and the total rows they buffered. Always
// collected — the estimates are integer arithmetic on the paths that
// already touch the buffered rows.
//
//dualsim:wire
type Resources struct {
	// PeakBytes is the high-water estimate of buffered bytes across the
	// whole tree; LimitBytes echoes the budget when one was set.
	PeakBytes    int64 `json:"peakBytes"`
	RowsBuffered int64 `json:"rowsBuffered,omitempty"`
	LimitBytes   int64 `json:"limitBytes,omitempty"`
}

// SetMaxMemory bounds the execution's buffered-memory estimate: once
// exceeded, the stream fails with ErrQueryMemoryExceeded. Call before
// Open; n <= 0 means unlimited (accounting still runs).
func (e *Exec) SetMaxMemory(n int64) { e.acct.limit = n }

// Resources reads the accounting accumulated so far; like Operators it
// is meaningful both mid-stream and after exhaustion.
func (e *Exec) Resources() Resources {
	return Resources{PeakBytes: e.acct.peak, RowsBuffered: e.acct.rows, LimitBytes: e.acct.limit}
}

// account tracks the execution-wide buffered-memory estimate. Volcano
// pulls are single-threaded, so plain fields suffice — charging is two
// integer adds and a compare on the paths that already append a row or
// insert a key.
type account struct {
	cur, peak int64
	rows      int64
	limit     int64 // 0 = unlimited
}

// charge books bytes (and rows) against the budget, also attributing
// them to the operator's own counters.
func (a *account) charge(st *OperatorStats, rows, bytes int64) error {
	st.MemBytes += bytes
	st.RowsBuffered += rows
	a.rows += rows
	a.cur += bytes
	if a.cur > a.peak {
		a.peak = a.cur
	}
	if a.limit > 0 && a.cur > a.limit {
		return fmt.Errorf("%w: %d bytes buffered, budget %d", ErrQueryMemoryExceeded, a.cur, a.limit)
	}
	return nil
}

// release returns an operator's booked bytes to the pool (on re-Open).
func (a *account) release(st *OperatorStats) {
	a.cur -= st.MemBytes
	a.rows -= st.RowsBuffered
	st.MemBytes = 0
	st.RowsBuffered = 0
}

// Buffered-row cost model: a []NodeID row plus slice/bucket overhead,
// and a seen-set key plus map-entry overhead. Estimates, not exact heap
// sizes — stable across runs, cheap to maintain, good enough to rank
// statements and to bound runaway queries.
const (
	rowOverheadBytes = 48
	keyOverheadBytes = 48
)

func rowCostBytes(row []storage.NodeID) int64 {
	return rowOverheadBytes + int64(len(row))*int64(unsafe.Sizeof(storage.NodeID(0)))
}

func keyCostBytes(k string) int64 { return keyOverheadBytes + int64(len(k)) }

// Compile lowers and optimizes q against st and compiles the plan to an
// iterator tree. The result streams distinct rows (set semantics) and
// honours the query's LIMIT/OFFSET.
func Compile(st *storage.Store, q *sparql.Query, opt plan.Options) (*Exec, error) {
	pl := plan.Build(st, q, opt)
	c := &compiler{st: st, acct: &account{}}
	// Top-level set semantics: joins and unions may produce duplicate
	// mappings. A Limit root already deduplicates (it counts distinct
	// rows); anything else gets an explicit distinct, which then is the
	// real tree root — the plan root compiles one level deeper.
	_, limitRoot := pl.Root.(plan.Limit)
	if !limitRoot {
		c.depth = 1
	}
	root, err := c.compile(pl.Root)
	if err != nil {
		return nil, err
	}
	if !limitRoot {
		c.depth = 0
		d := &distinctIter{in: root, acct: c.acct}
		root = c.counted("distinct", "", 0, d)
		d.stats = c.lastStats()
	}
	return &Exec{root: root, ops: c.ops, its: c.its, decisions: pl.Decisions, acct: c.acct}, nil
}

// ---------------------------------------------------------------------------
// Compiler.

type compiler struct {
	st    *storage.Store
	ops   []*OperatorStats
	its   []*countedIter
	depth int // plan-tree depth of the node currently being compiled
	acct  *account
}

// lastStats returns the stats slot counted just registered — the hook
// buffering iterators use to attribute their memory charges.
func (c *compiler) lastStats() *OperatorStats { return c.ops[len(c.ops)-1] }

// counted registers an operator's stats slot (tagged with the current
// tree depth) and wraps it with the row-counting shim. Registration
// order is post-order: children before their parent.
func (c *compiler) counted(op, detail string, est float64, it Iterator) Iterator {
	st := &OperatorStats{Op: op, Detail: detail, EstRows: est, Depth: c.depth}
	c.ops = append(c.ops, st)
	ci := &countedIter{in: it, stats: st}
	c.its = append(c.its, ci)
	return ci
}

// child compiles n one tree level below the current node.
func (c *compiler) child(n plan.Node) (Iterator, error) {
	c.depth++
	it, err := c.compile(n)
	c.depth--
	return it, err
}

func (c *compiler) compile(n plan.Node) (Iterator, error) {
	switch x := n.(type) {
	case plan.Unit:
		return c.counted("unit", "", 1, &unitIter{}), nil
	case plan.Scan:
		r, err := resolve(c.st, x.TP)
		if err != nil {
			return nil, err
		}
		return c.counted("scan", x.TP.String(), x.Est, &scanIter{st: c.st, r: r}), nil
	case plan.Join:
		return c.compileJoin(x.L, x.R, false)
	case plan.LeftJoin:
		return c.compileJoin(x.L, x.R, true)
	case plan.Union:
		l, err := c.child(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.child(x.R)
		if err != nil {
			return nil, err
		}
		return c.counted("union", "", 0, newUnionIter(l, r)), nil
	case plan.Filter:
		in, err := c.child(x.Input)
		if err != nil {
			return nil, err
		}
		return c.counted("filter", x.Cond.String(), 0, newFilterIter(c.st, in, x.Cond)), nil
	case plan.Limit:
		in, err := c.child(x.Input)
		if err != nil {
			return nil, err
		}
		detail := limitDetail(x)
		li := &limitIter{in: in, limit: x.Limit, offset: x.Offset, acct: c.acct}
		it := c.counted("limit", detail, 0, li)
		li.stats = c.lastStats()
		return it, nil
	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", n)
	}
}

// compileJoin picks the physical join: a pipelined index-nested-loop
// extend when the right side is a scan (optionally with pushed-down
// filters — the streaming fast path: no materialization on either side),
// and a hash join that drains only the right side otherwise.
func (c *compiler) compileJoin(ln, rn plan.Node, leftOuter bool) (Iterator, error) {
	// Peel pushed-down filters off a scan right side: for an inner join,
	// filtering the extensions after the merge is equivalent to filtering
	// the scan (the scan binds every variable the condition may name).
	// For a left join the filter must apply before the outer padding, so
	// only a bare scan takes the extend path there.
	rs := rn
	var conds []sparql.Condition
	if !leftOuter {
		for {
			f, ok := rs.(plan.Filter)
			if !ok {
				break
			}
			conds = append(conds, f.Cond)
			rs = f.Input
		}
	}
	if sc, ok := rs.(plan.Scan); ok {
		// The compiled shape is filter(…filter(extend(l)))— the peeled
		// filters stack above the extend, the left input hangs below it.
		base := c.depth
		c.depth = base + len(conds) + 1
		l, err := c.compile(ln)
		c.depth = base
		if err != nil {
			return nil, err
		}
		r, err := resolve(c.st, sc.TP)
		if err != nil {
			return nil, err
		}
		op := "extend"
		if leftOuter {
			op = "extendleft"
		}
		c.depth = base + len(conds)
		var it Iterator = newExtendIter(c.st, l, r, leftOuter)
		it = c.counted(op, sc.TP.String(), sc.Est, it)
		for i := len(conds) - 1; i >= 0; i-- {
			c.depth--
			it = c.counted("filter", conds[i].String(), 0, newFilterIter(c.st, it, conds[i]))
		}
		c.depth = base
		return it, nil
	}
	l, err := c.child(ln)
	if err != nil {
		return nil, err
	}
	r, err := c.child(rn)
	if err != nil {
		return nil, err
	}
	op := "hashjoin"
	if leftOuter {
		op = "leftjoin"
	}
	h := newHashJoinIter(l, r, leftOuter)
	h.acct = c.acct
	it := c.counted(op, "", 0, h)
	h.stats = c.lastStats()
	return it, nil
}

func limitDetail(x plan.Limit) string {
	d := ""
	if x.Limit > 0 {
		d = "limit " + strconv.Itoa(x.Limit)
	}
	if x.Offset > 0 {
		if d != "" {
			d += " "
		}
		d += "offset " + strconv.Itoa(x.Offset)
	}
	return d
}

// ---------------------------------------------------------------------------
// The volcano engine: the streaming executor behind the materializing
// Engine interface, so the existing *Result API and the reference-engine
// parity tests cover it unchanged.

type volcanoEngine struct{}

// NewVolcano returns the streaming Volcano engine: cost-based plans from
// internal/plan executed as an Open/Next/Close iterator tree. Evaluate
// materializes the stream; callers that want rows incrementally use
// Compile.
func NewVolcano() Engine { return volcanoEngine{} }

func (volcanoEngine) Name() string { return "volcano" }

func (volcanoEngine) Evaluate(ctx context.Context, st *storage.Store, q *sparql.Query) (*Result, error) {
	ex, err := Compile(st, q, plan.Options{})
	if err != nil {
		return nil, err
	}
	return Drain(ctx, ex)
}

// Compile as a method: the hook through which the session layer detects
// a streaming-capable engine and reaches the iterator tree (per-operator
// counters, planner decisions, incremental row delivery) behind the
// materializing Engine interface.
func (volcanoEngine) Compile(st *storage.Store, q *sparql.Query) (*Exec, error) {
	return Compile(st, q, plan.Options{})
}

// Drain opens the execution, materializes every row into a Result and
// closes it, polling ctx between row batches. The Exec's operator
// counters remain readable after Drain returns.
func Drain(ctx context.Context, ex *Exec) (*Result, error) {
	if err := ex.Open(ctx); err != nil {
		ex.Close()
		return nil, err
	}
	defer ex.Close()
	out := NewResult(ex.Vars()...)
	n := 0
	for {
		if n%rowCheckInterval == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		row, ok, err := ex.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Rows = append(out.Rows, row)
		n++
	}
}

// ---------------------------------------------------------------------------
// Operators.

// countedIter bumps its operator's row counter on every emitted row and
// polls ctx every rowCheckInterval rows, so cancellation reaches every
// operator boundary of the tree. With timed set (tracing/EXPLAIN
// ANALYZE) it additionally accumulates inclusive wall-clock time.
type countedIter struct {
	in    Iterator
	stats *OperatorStats
	ctx   context.Context
	n     int
	timed bool
}

func (c *countedIter) Open(ctx context.Context) error { c.ctx = ctx; return c.in.Open(ctx) }
func (c *countedIter) Close() error                   { return c.in.Close() }
func (c *countedIter) Vars() []string                 { return c.in.Vars() }

func (c *countedIter) Next() ([]storage.NodeID, bool, error) {
	if c.n++; c.n%rowCheckInterval == 0 {
		if err := ctxErr(c.ctx); err != nil {
			return nil, false, err
		}
	}
	c.stats.NextCalls++
	if c.timed {
		t0 := time.Now()
		row, ok, err := c.in.Next()
		c.stats.Time += time.Since(t0)
		if ok {
			c.stats.Rows++
		}
		return row, ok, err
	}
	row, ok, err := c.in.Next()
	if ok {
		c.stats.Rows++
	}
	return row, ok, err
}

// unitIter produces the single empty mapping.
type unitIter struct{ done bool }

func (u *unitIter) Open(ctx context.Context) error { u.done = false; return nil }
func (u *unitIter) Close() error                   { return nil }
func (u *unitIter) Vars() []string                 { return nil }

func (u *unitIter) Next() ([]storage.NodeID, bool, error) {
	if u.done {
		return nil, false, nil
	}
	u.done = true
	return []storage.NodeID{}, true, nil
}

// scanIter streams the matches of one resolved triple pattern straight
// from the store's per-predicate indexes — a cursor over the PSO run via
// PairAt for the unbound case, a posting-list walk when one side is a
// constant. Nothing is materialized.
type scanIter struct {
	st   *storage.Store
	r    resolved
	ctx  context.Context
	i    int // cursor: pair index or posting-list index
	list []storage.NodeID
	done bool
	n    int // checked rows since last ctx poll
}

func (s *scanIter) Vars() []string { return s.r.vars() }
func (s *scanIter) Close() error   { return nil }

func (s *scanIter) Open(ctx context.Context) error {
	s.ctx = ctx
	s.i = 0
	s.done = false
	s.list = nil
	if !s.r.ok {
		s.done = true
		return nil
	}
	switch {
	case s.r.sVar == "" && s.r.oVar == "":
	case s.r.sVar == "":
		s.list = s.st.Objects(s.r.pred, s.r.sID)
	case s.r.oVar == "":
		s.list = s.st.Subjects(s.r.pred, s.r.oID)
	}
	return nil
}

func (s *scanIter) Next() ([]storage.NodeID, bool, error) {
	if s.done {
		return nil, false, nil
	}
	if s.n++; s.n%rowCheckInterval == 0 {
		if err := ctxErr(s.ctx); err != nil {
			return nil, false, err
		}
	}
	r := s.r
	switch {
	case r.sVar == "" && r.oVar == "":
		s.done = true
		if s.st.HasTriple(r.sID, r.pred, r.oID) {
			return []storage.NodeID{}, true, nil
		}
		return nil, false, nil
	case r.sVar == "" || r.oVar == "":
		if s.i < len(s.list) {
			v := s.list[s.i]
			s.i++
			return []storage.NodeID{v}, true, nil
		}
		s.done = true
		return nil, false, nil
	default:
		n := s.st.PredCount(r.pred)
		for s.i < n {
			sub, obj := s.st.PairAt(r.pred, s.i)
			s.i++
			if r.sVar == r.oVar {
				if sub != obj {
					continue
				}
				return []storage.NodeID{sub}, true, nil
			}
			return []storage.NodeID{sub, obj}, true, nil
		}
		s.done = true
		return nil, false, nil
	}
}

// extendIter is the pipelined index-nested-loop join of an input stream
// with one triple pattern: each input row is extended through the
// cheapest applicable index access path, cursor-style, so rows flow from
// the leftmost scan to the client without materializing any intermediate
// — and without unbounded work per Next call, keeping cancellation
// prompt. With leftOuter it implements OPTIONAL against a scan: input
// rows with no extension survive padded.
type extendIter struct {
	st        *storage.Store
	in        Iterator
	r         resolved
	leftOuter bool

	vars   []string
	varCol map[string]int
	inVars int // input schema width (a prefix of vars)

	// Cursor over the extensions of the current input row.
	cur        []storage.NodeID // widened current input row; nil = pull next
	list       []storage.NodeID // posting list (one side known)
	li         int
	pi         int // pair cursor (neither side known)
	sVal, oVal storage.NodeID
	sKnown     bool
	oKnown     bool
	matched    bool

	ctx context.Context
	n   int
}

func newExtendIter(st *storage.Store, in Iterator, r resolved, leftOuter bool) *extendIter {
	e := &extendIter{st: st, in: in, r: r, leftOuter: leftOuter}
	e.vars = append(e.vars, in.Vars()...)
	e.inVars = len(e.vars)
	e.varCol = make(map[string]int, len(e.vars)+2)
	for i, v := range e.vars {
		e.varCol[v] = i
	}
	for _, v := range r.vars() {
		if _, ok := e.varCol[v]; !ok {
			e.varCol[v] = len(e.vars)
			e.vars = append(e.vars, v)
		}
	}
	return e
}

func (e *extendIter) Vars() []string { return e.vars }
func (e *extendIter) Close() error   { return e.in.Close() }

func (e *extendIter) Open(ctx context.Context) error {
	e.ctx = ctx
	e.cur = nil
	return e.in.Open(ctx)
}

// emitExt builds an output row extending the current input row with the
// pattern's subject/object values.
func (e *extendIter) emitExt(s, o storage.NodeID) []storage.NodeID {
	nr := append([]storage.NodeID(nil), e.cur...)
	if e.r.sVar != "" {
		nr[e.varCol[e.r.sVar]] = s
	}
	if e.r.oVar != "" {
		nr[e.varCol[e.r.oVar]] = o
	}
	e.matched = true
	return nr
}

func (e *extendIter) Next() ([]storage.NodeID, bool, error) {
	r := e.r
	for {
		if e.n++; e.n%rowCheckInterval == 0 {
			if err := ctxErr(e.ctx); err != nil {
				return nil, false, err
			}
		}
		if e.cur != nil {
			switch {
			case e.sKnown && e.oKnown:
				row := e.cur
				e.cur = nil
				if r.ok && e.st.HasTriple(e.sVal, r.pred, e.oVal) {
					e.matched = true
					return e.emitExtKnown(row), true, nil
				}
				if e.leftOuter {
					return row, true, nil
				}
				continue
			case e.sKnown:
				if e.li < len(e.list) {
					o := e.list[e.li]
					e.li++
					if r.sVar == r.oVar && o != e.sVal {
						continue
					}
					return e.emitExt(e.sVal, o), true, nil
				}
			case e.oKnown:
				if e.li < len(e.list) {
					s := e.list[e.li]
					e.li++
					if r.sVar == r.oVar && s != e.oVal {
						continue
					}
					return e.emitExt(s, e.oVal), true, nil
				}
			default:
				if e.pi < e.st.PredCount(r.pred) {
					s, o := e.st.PairAt(r.pred, e.pi)
					e.pi++
					if r.sVar == r.oVar && s != o {
						continue
					}
					return e.emitExt(s, o), true, nil
				}
			}
			// Cursor exhausted.
			row := e.cur
			e.cur = nil
			if e.leftOuter && !e.matched {
				return row, true, nil
			}
			continue
		}

		in, ok, err := e.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		// Widen the input row to the output schema.
		row := make([]storage.NodeID, len(e.vars))
		copy(row, in)
		for i := e.inVars; i < len(row); i++ {
			row[i] = Unbound
		}
		if !r.ok {
			// Unsatisfiable pattern: no extensions ever.
			if e.leftOuter {
				return row, true, nil
			}
			continue
		}
		e.cur = row
		e.matched = false
		e.li, e.pi = 0, 0
		e.sVal, e.sKnown = constOrBinding(r.sVar, r.sID, row, e.varCol)
		e.oVal, e.oKnown = constOrBinding(r.oVar, r.oID, row, e.varCol)
		switch {
		case e.sKnown && e.oKnown:
		case e.sKnown:
			e.list = e.st.Objects(r.pred, e.sVal)
		case e.oKnown:
			e.list = e.st.Subjects(r.pred, e.oVal)
		}
	}
}

// emitExtKnown is emitExt for the both-known case, where e.cur has
// already been cleared.
func (e *extendIter) emitExtKnown(row []storage.NodeID) []storage.NodeID {
	nr := append([]storage.NodeID(nil), row...)
	if e.r.sVar != "" {
		nr[e.varCol[e.r.sVar]] = e.sVal
	}
	if e.r.oVar != "" {
		nr[e.varCol[e.r.oVar]] = e.oVal
	}
	return nr
}

// hashJoinIter is the generic compatibility join: Open drains the right
// side into hash buckets (rows with unbound shared variables go to a
// wildcard list), then the left side streams through, probing. With
// leftOuter, unmatched left rows survive padded.
type hashJoinIter struct {
	l, r      Iterator
	leftOuter bool

	vars   []string
	shared []string
	lres   *Result // schema carrier for compatible()
	rres   *Result // drained right side

	lIdx, rIdx []int
	buckets    map[string][]int
	wildcards  []int

	// probe state
	lrow    []storage.NodeID
	cands   []int
	ci      int
	scanAll bool
	matched bool
	pending []storage.NodeID // left-outer padded row to emit
	n       int
	ctx     context.Context

	// resource accounting: the drained right side is the build-side
	// buffer this operator charges against the execution's budget.
	acct  *account
	stats *OperatorStats
}

func newHashJoinIter(l, r Iterator, leftOuter bool) *hashJoinIter {
	h := &hashJoinIter{l: l, r: r, leftOuter: leftOuter}
	lres := NewResult(l.Vars()...)
	rres := NewResult(r.Vars()...)
	h.lres, h.rres = lres, rres
	h.shared = sharedVars(lres, rres)
	h.vars = unionVars(lres, rres)
	h.lIdx = varIndexes(lres, h.shared)
	h.rIdx = varIndexes(rres, h.shared)
	return h
}

func (h *hashJoinIter) Vars() []string { return h.vars }

func (h *hashJoinIter) Close() error {
	err := h.l.Close()
	if err2 := h.r.Close(); err == nil {
		err = err2
	}
	return err
}

func (h *hashJoinIter) Open(ctx context.Context) error {
	h.ctx = ctx
	h.lrow = nil
	h.pending = nil
	h.rres.Rows = h.rres.Rows[:0]
	h.buckets = make(map[string][]int)
	h.wildcards = nil
	if h.acct != nil {
		h.acct.release(h.stats)
	}
	if err := h.l.Open(ctx); err != nil {
		return err
	}
	if err := h.r.Open(ctx); err != nil {
		return err
	}
	for {
		row, ok, err := h.r.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		i := len(h.rres.Rows)
		h.rres.Rows = append(h.rres.Rows, row)
		if allBound(row, h.rIdx) {
			k := keyOf(row, h.rIdx)
			h.buckets[k] = append(h.buckets[k], i)
		} else {
			h.wildcards = append(h.wildcards, i)
		}
		if h.acct != nil {
			if err := h.acct.charge(h.stats, 1, rowCostBytes(row)); err != nil {
				return err
			}
		}
		if i%rowCheckInterval == 0 {
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
	}
	return nil
}

// merge builds the output row from a left row and a right row (l's vars
// are a prefix of the output schema; bound right values win over padding).
func (h *hashJoinIter) merge(lrow, rrow []storage.NodeID) []storage.NodeID {
	merged := make([]storage.NodeID, len(h.vars))
	for k := range merged {
		merged[k] = Unbound
	}
	copy(merged, lrow)
	for j, v := range rrow {
		if v == Unbound {
			continue
		}
		oj := rTargetIndex(h.vars, h.rres.Vars[j])
		merged[oj] = v
	}
	return merged
}

func (h *hashJoinIter) pad(lrow []storage.NodeID) []storage.NodeID {
	merged := make([]storage.NodeID, len(h.vars))
	for k := range merged {
		merged[k] = Unbound
	}
	copy(merged, lrow)
	return merged
}

func (h *hashJoinIter) Next() ([]storage.NodeID, bool, error) {
	for {
		if h.pending != nil {
			row := h.pending
			h.pending = nil
			return row, true, nil
		}
		if h.lrow != nil {
			for {
				var ri int
				if h.scanAll {
					if h.ci >= len(h.rres.Rows) {
						break
					}
					ri = h.ci
				} else if h.ci < len(h.cands) {
					ri = h.cands[h.ci]
				} else if h.ci < len(h.cands)+len(h.wildcards) {
					ri = h.wildcards[h.ci-len(h.cands)]
				} else {
					break
				}
				h.ci++
				if compatible(h.lres, h.rres, h.lrow, h.rres.Rows[ri], h.shared) {
					h.matched = true
					return h.merge(h.lrow, h.rres.Rows[ri]), true, nil
				}
			}
			if h.leftOuter && !h.matched {
				row := h.pad(h.lrow)
				h.lrow = nil
				return row, true, nil
			}
			h.lrow = nil
		}
		lrow, ok, err := h.l.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if h.n++; h.n%rowCheckInterval == 0 {
			if err := ctxErr(h.ctx); err != nil {
				return nil, false, err
			}
		}
		h.lrow = lrow
		h.ci = 0
		h.matched = false
		if allBound(lrow, h.lIdx) {
			h.scanAll = false
			h.cands = h.buckets[keyOf(lrow, h.lIdx)]
		} else {
			h.scanAll = true
			h.cands = nil
		}
	}
}

// filterIter keeps the rows whose condition evaluates to true.
type filterIter struct {
	st   *storage.Store
	in   Iterator
	cond sparql.Condition
	cols map[string]int
}

func newFilterIter(st *storage.Store, in Iterator, cond sparql.Condition) *filterIter {
	cols := make(map[string]int)
	for i, v := range in.Vars() {
		cols[v] = i
	}
	return &filterIter{st: st, in: in, cond: cond, cols: cols}
}

func (f *filterIter) Vars() []string                 { return f.in.Vars() }
func (f *filterIter) Open(ctx context.Context) error { return f.in.Open(ctx) }
func (f *filterIter) Close() error                   { return f.in.Close() }

func (f *filterIter) Next() ([]storage.NodeID, bool, error) {
	for {
		row, ok, err := f.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if v, e := evalCond(f.st, f.cond, f.cols, row); v && !e {
			return row, true, nil
		}
	}
}

// unionIter streams the left side, then the right, both padded to the
// union schema.
type unionIter struct {
	l, r    Iterator
	vars    []string
	lMap    []int // output column of each left column
	rMap    []int
	onRight bool
}

func newUnionIter(l, r Iterator) *unionIter {
	lres := NewResult(l.Vars()...)
	rres := NewResult(r.Vars()...)
	vars := unionVars(lres, rres)
	u := &unionIter{l: l, r: r, vars: vars}
	u.lMap = make([]int, len(lres.Vars))
	for i, v := range lres.Vars {
		u.lMap[i] = rTargetIndex(vars, v)
	}
	u.rMap = make([]int, len(rres.Vars))
	for i, v := range rres.Vars {
		u.rMap[i] = rTargetIndex(vars, v)
	}
	return u
}

func (u *unionIter) Vars() []string { return u.vars }

func (u *unionIter) Open(ctx context.Context) error {
	u.onRight = false
	if err := u.l.Open(ctx); err != nil {
		return err
	}
	return u.r.Open(ctx)
}

func (u *unionIter) Close() error {
	err := u.l.Close()
	if err2 := u.r.Close(); err == nil {
		err = err2
	}
	return err
}

func (u *unionIter) project(row []storage.NodeID, m []int) []storage.NodeID {
	out := make([]storage.NodeID, len(u.vars))
	for k := range out {
		out[k] = Unbound
	}
	for i, oj := range m {
		out[oj] = row[i]
	}
	return out
}

func (u *unionIter) Next() ([]storage.NodeID, bool, error) {
	if !u.onRight {
		row, ok, err := u.l.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return u.project(row, u.lMap), true, nil
		}
		u.onRight = true
	}
	row, ok, err := u.r.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return u.project(row, u.rMap), true, nil
}

// distinctIter drops rows already seen (set semantics). Its seen-set is
// a buffering point: every distinct row charges the execution account.
type distinctIter struct {
	in    Iterator
	seen  map[string]bool
	acct  *account
	stats *OperatorStats
}

func (d *distinctIter) Vars() []string { return d.in.Vars() }
func (d *distinctIter) Close() error   { return d.in.Close() }

func (d *distinctIter) Open(ctx context.Context) error {
	d.seen = make(map[string]bool)
	if d.acct != nil {
		d.acct.release(d.stats)
	}
	return d.in.Open(ctx)
}

func (d *distinctIter) Next() ([]storage.NodeID, bool, error) {
	for {
		row, ok, err := d.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := rowKey(row)
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		if d.acct != nil {
			if err := d.acct.charge(d.stats, 1, keyCostBytes(k)); err != nil {
				return nil, false, err
			}
		}
		return row, true, nil
	}
}

// limitIter emits the first limit distinct rows after skipping offset
// distinct rows, then stops pulling from its input — the early-exit that
// makes LIMIT queries cheap under streaming execution. Counting distinct
// rows (rather than raw ones) keeps per-branch LIMIT pushdown sound
// under set semantics.
type limitIter struct {
	in      Iterator
	limit   int // 0 = unlimited
	offset  int
	seen    map[string]bool
	skipped int
	emitted int
	acct    *account
	stats   *OperatorStats
}

func (l *limitIter) Vars() []string { return l.in.Vars() }
func (l *limitIter) Close() error   { return l.in.Close() }

func (l *limitIter) Open(ctx context.Context) error {
	l.seen = make(map[string]bool)
	l.skipped = 0
	l.emitted = 0
	if l.acct != nil {
		l.acct.release(l.stats)
	}
	return l.in.Open(ctx)
}

func (l *limitIter) Next() ([]storage.NodeID, bool, error) {
	if l.limit > 0 && l.emitted >= l.limit {
		return nil, false, nil
	}
	for {
		row, ok, err := l.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := rowKey(row)
		if l.seen[k] {
			continue
		}
		l.seen[k] = true
		if l.acct != nil {
			if err := l.acct.charge(l.stats, 1, keyCostBytes(k)); err != nil {
				return nil, false, err
			}
		}
		if l.skipped < l.offset {
			l.skipped++
			continue
		}
		l.emitted++
		return row, true, nil
	}
}
