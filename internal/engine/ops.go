package engine

import (
	"context"
	"fmt"

	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// rowCheckInterval is the number of rows a join or scan loop processes
// between two context-cancellation checks.
const rowCheckInterval = 1024

// evalExpr evaluates a graph pattern expression with the given BGP
// evaluator plugged in; the operator algebra (AND = ⋈, OPTIONAL = left
// outer join, UNION = ∪) is shared by all engines, as is the ctx
// cancellation discipline: every operator node checks ctx, and the join
// loops check it every rowCheckInterval rows.
func evalExpr(ctx context.Context, st *storage.Store, e sparql.Expr, bgp func(context.Context, *storage.Store, sparql.BGP) (*Result, error)) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch x := e.(type) {
	case sparql.BGP:
		return bgp(ctx, st, x)
	case sparql.And:
		l, err := evalExpr(ctx, st, x.L, bgp)
		if err != nil {
			return nil, err
		}
		r, err := evalExpr(ctx, st, x.R, bgp)
		if err != nil {
			return nil, err
		}
		return join(ctx, l, r, false)
	case sparql.Optional:
		l, err := evalExpr(ctx, st, x.L, bgp)
		if err != nil {
			return nil, err
		}
		r, err := evalExpr(ctx, st, x.R, bgp)
		if err != nil {
			return nil, err
		}
		return join(ctx, l, r, true)
	case sparql.Union:
		l, err := evalExpr(ctx, st, x.L, bgp)
		if err != nil {
			return nil, err
		}
		r, err := evalExpr(ctx, st, x.R, bgp)
		if err != nil {
			return nil, err
		}
		return union(l, r), nil
	case sparql.Filter:
		inner, err := evalExpr(ctx, st, x.Inner, bgp)
		if err != nil {
			return nil, err
		}
		return applyFilter(st, x.Cond, inner), nil
	default:
		return nil, fmt.Errorf("engine: unknown expression %T", e)
	}
}

// join computes the compatibility join l ⋈ r; with leftOuter it computes
// the left outer join (OPTIONAL): rows of l without any compatible partner
// survive unextended.
func join(ctx context.Context, l, r *Result, leftOuter bool) (*Result, error) {
	shared := sharedVars(l, r)
	outVars := unionVars(l, r)
	out := NewResult(outVars...)

	lIdx := varIndexes(l, shared)
	rIdx := varIndexes(r, shared)

	// Hash r rows whose shared variables are all bound; rows with unbound
	// shared variables are compatibility wildcards and go to a scan list.
	buckets := make(map[string][]int, len(r.Rows))
	var wildcards []int
	for i, row := range r.Rows {
		if allBound(row, rIdx) {
			buckets[keyOf(row, rIdx)] = append(buckets[keyOf(row, rIdx)], i)
		} else {
			wildcards = append(wildcards, i)
		}
	}

	emit := func(lrow, rrow []storage.NodeID) {
		merged := make([]storage.NodeID, len(outVars))
		for k := range merged {
			merged[k] = Unbound
		}
		for j, v := range lrow {
			merged[j] = v // l's vars are a prefix of outVars
		}
		for j, v := range rrow {
			if v == Unbound {
				continue
			}
			oj := rTargetIndex(outVars, r.Vars[j])
			merged[oj] = v
		}
		out.Rows = append(out.Rows, merged)
	}

	for li, lrow := range l.Rows {
		if li%rowCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		matched := false
		if allBound(lrow, lIdx) {
			for _, ri := range buckets[keyOf(lrow, lIdx)] {
				if compatible(l, r, lrow, r.Rows[ri], shared) {
					emit(lrow, r.Rows[ri])
					matched = true
				}
			}
			for _, ri := range wildcards {
				if compatible(l, r, lrow, r.Rows[ri], shared) {
					emit(lrow, r.Rows[ri])
					matched = true
				}
			}
		} else {
			// l row itself has unbound shared vars: scan everything.
			for ri := range r.Rows {
				if compatible(l, r, lrow, r.Rows[ri], shared) {
					emit(lrow, r.Rows[ri])
					matched = true
				}
			}
		}
		if leftOuter && !matched {
			merged := make([]storage.NodeID, len(outVars))
			for k := range merged {
				merged[k] = Unbound
			}
			copy(merged, lrow)
			out.Rows = append(out.Rows, merged)
		}
	}
	out.Dedup()
	return out, nil
}

// union computes the set union, padding each side to the union schema.
func union(l, r *Result) *Result {
	outVars := unionVars(l, r)
	out := l.Project(outVars)
	rp := r.Project(outVars)
	out.Rows = append(out.Rows, rp.Rows...)
	out.Dedup()
	return out
}

func sharedVars(l, r *Result) []string {
	var out []string
	for _, v := range l.Vars {
		if r.VarIndex(v) >= 0 {
			out = append(out, v)
		}
	}
	return out
}

func unionVars(l, r *Result) []string {
	out := append([]string(nil), l.Vars...)
	for _, v := range r.Vars {
		if l.VarIndex(v) < 0 {
			out = append(out, v)
		}
	}
	return out
}

func varIndexes(res *Result, vars []string) []int {
	out := make([]int, len(vars))
	for i, v := range vars {
		out[i] = res.VarIndex(v)
	}
	return out
}

func allBound(row []storage.NodeID, idx []int) bool {
	for _, i := range idx {
		if row[i] == Unbound {
			return false
		}
	}
	return true
}

func keyOf(row []storage.NodeID, idx []int) string {
	key := make([]storage.NodeID, len(idx))
	for i, j := range idx {
		key[i] = row[j]
	}
	return rowKey(key)
}

// compatible implements µ1 ⇋ µ2: agreement on every shared variable bound
// in both mappings.
func compatible(l, r *Result, lrow, rrow []storage.NodeID, shared []string) bool {
	for _, v := range shared {
		lv := lrow[l.VarIndex(v)]
		rv := rrow[r.VarIndex(v)]
		if lv != Unbound && rv != Unbound && lv != rv {
			return false
		}
	}
	return true
}

func rTargetIndex(outVars []string, v string) int {
	for i, x := range outVars {
		if x == v {
			return i
		}
	}
	return -1
}
