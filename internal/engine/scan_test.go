package engine

import (
	"context"
	"testing"

	"dualsim/internal/rdf"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

func scanFixture(t *testing.T) *storage.Store {
	t.Helper()
	return mustStore(t, []rdf.Triple{
		rdf.T("a", "p", "b"),
		rdf.T("a", "p", "c"),
		rdf.T("b", "p", "c"),
		rdf.T("a", "q", "a"), // self-loop
	})
}

func mustResolve(t *testing.T, st *storage.Store, tp sparql.TriplePattern) resolved {
	t.Helper()
	r, err := resolve(st, tp)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestScanAccessPaths(t *testing.T) {
	st := scanFixture(t)
	cases := []struct {
		tp   sparql.TriplePattern
		rows int
		vars int
	}{
		{sparql.TriplePattern{S: sparql.V("x"), P: sparql.C("p"), O: sparql.V("y")}, 3, 2},
		{sparql.TriplePattern{S: sparql.C("a"), P: sparql.C("p"), O: sparql.V("y")}, 2, 1},
		{sparql.TriplePattern{S: sparql.V("x"), P: sparql.C("p"), O: sparql.C("c")}, 2, 1},
		{sparql.TriplePattern{S: sparql.C("a"), P: sparql.C("p"), O: sparql.C("b")}, 1, 0},
		{sparql.TriplePattern{S: sparql.C("a"), P: sparql.C("p"), O: sparql.C("a")}, 0, 0},
		{sparql.TriplePattern{S: sparql.V("x"), P: sparql.C("q"), O: sparql.V("x")}, 1, 1},
		{sparql.TriplePattern{S: sparql.V("x"), P: sparql.C("nope"), O: sparql.V("y")}, 0, 2},
		{sparql.TriplePattern{S: sparql.C("zz"), P: sparql.C("p"), O: sparql.V("y")}, 0, 1},
	}
	for i, c := range cases {
		r := mustResolve(t, st, c.tp)
		res := r.scan(st)
		if res.Len() != c.rows {
			t.Fatalf("case %d (%v): rows = %d, want %d", i, c.tp, res.Len(), c.rows)
		}
		if len(res.Vars) != c.vars {
			t.Fatalf("case %d: vars = %v, want %d", i, res.Vars, c.vars)
		}
	}
}

func TestEstimates(t *testing.T) {
	st := scanFixture(t)
	free := mustResolve(t, st, sparql.TriplePattern{S: sparql.V("x"), P: sparql.C("p"), O: sparql.V("y")})
	if got := free.estimate(st, nil); got != 3 {
		t.Fatalf("free estimate = %f, want 3", got)
	}
	// With the subject bound: count / distinct subjects = 3/2.
	if got := free.estimate(st, map[string]bool{"x": true}); got != 1.5 {
		t.Fatalf("s-bound estimate = %f, want 1.5", got)
	}
	// With the object bound: 3/2 distinct objects... objects are {b,c}: 3/2.
	if got := free.estimate(st, map[string]bool{"y": true}); got != 1.5 {
		t.Fatalf("o-bound estimate = %f, want 1.5", got)
	}
	if got := free.estimate(st, map[string]bool{"x": true, "y": true}); got != 1 {
		t.Fatalf("both-bound estimate = %f, want 1", got)
	}
	missing := mustResolve(t, st, sparql.TriplePattern{S: sparql.V("x"), P: sparql.C("nope"), O: sparql.V("y")})
	if got := missing.estimate(st, nil); got != 0 {
		t.Fatalf("missing-pred estimate = %f, want 0", got)
	}
}

func TestUnionSchemaAlignment(t *testing.T) {
	// UNION of disjoint schemas pads with Unbound.
	st := scanFixture(t)
	q := sparql.MustParse(`SELECT * WHERE { { ?x p ?y } UNION { ?z q ?z } }`)
	for _, e := range engines() {
		res, err := e.Evaluate(context.Background(), st, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Vars) != 3 {
			t.Fatalf("%s: vars = %v", e.Name(), res.Vars)
		}
		if res.Len() != 4 {
			t.Fatalf("%s: rows = %d, want 4", e.Name(), res.Len())
		}
		zi := res.VarIndex("z")
		unbound := 0
		for _, row := range res.Rows {
			if row[zi] == Unbound {
				unbound++
			}
		}
		if unbound != 3 {
			t.Fatalf("%s: %d unbound z, want 3", e.Name(), unbound)
		}
	}
}

func TestSortDeterminism(t *testing.T) {
	r := NewResult("a")
	r.Rows = [][]storage.NodeID{{3}, {1}, {2}, {Unbound}}
	r.Sort()
	if r.Rows[0][0] != 1 || r.Rows[1][0] != 2 || r.Rows[2][0] != 3 || r.Rows[3][0] != Unbound {
		t.Fatalf("Sort = %v", r.Rows)
	}
}

func mustJoin(t *testing.T, l, r *Result, leftOuter bool) *Result {
	t.Helper()
	out, err := join(context.Background(), l, r, leftOuter)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	return out
}

// TestJoinOnUnboundSharedVars: a row with an unbound shared variable is
// compatible with anything (the slow path of join).
func TestJoinOnUnboundSharedVars(t *testing.T) {
	st := scanFixture(t)
	// L: OPTIONAL gives unbound y for subjects without q… build directly:
	l := NewResult("x", "y")
	a, _ := st.TermID(rdf.NewIRI("a"))
	b, _ := st.TermID(rdf.NewIRI("b"))
	c, _ := st.TermID(rdf.NewIRI("c"))
	l.Rows = [][]storage.NodeID{{a, Unbound}, {b, c}}
	r := NewResult("y", "z")
	r.Rows = [][]storage.NodeID{{c, a}, {b, b}}

	joined := mustJoin(t, l, r, false)
	// Row (a, unbound) joins both r rows; row (b, c) joins only (c, a).
	if joined.Len() != 3 {
		t.Fatalf("joined = %d rows\n%s", joined.Len(), joined.Format(st))
	}
	left := mustJoin(t, l, NewResult("y", "z"), true)
	if left.Len() != 2 {
		t.Fatalf("left join against empty = %d rows", left.Len())
	}
}
