package engine

import (
	"context"
	"errors"
	"testing"

	"dualsim/internal/plan"
	"dualsim/internal/rdf"
	"dualsim/internal/sparql"
)

func resourceFixture(t *testing.T) []rdf.Triple {
	t.Helper()
	var ts []rdf.Triple
	for i := 0; i < 20; i++ {
		s := string(rune('a' + i%5))
		o := string(rune('k' + i%7))
		ts = append(ts, rdf.T("s"+s, "p", "o"+o), rdf.T("s"+s, "q", "o"+o))
	}
	return ts
}

func TestResourceAccountingAlwaysOn(t *testing.T) {
	st := mustStore(t, resourceFixture(t))
	q := sparql.MustParse(`SELECT * WHERE { ?x <p> ?y . }`)
	ex, err := Compile(st, q, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Drain(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("fixture query returned no rows")
	}
	r := ex.Resources()
	// The root distinct buffers every distinct row.
	if r.RowsBuffered != int64(res.Len()) {
		t.Fatalf("rowsBuffered = %d, want %d", r.RowsBuffered, res.Len())
	}
	if r.PeakBytes <= 0 || r.LimitBytes != 0 {
		t.Fatalf("resources = %+v", r)
	}
	// The distinct operator carries the attribution.
	var distinct *OperatorStats
	ops := ex.Operators()
	for i := range ops {
		if ops[i].Op == "distinct" {
			distinct = &ops[i]
		}
	}
	if distinct == nil || distinct.MemBytes <= 0 || distinct.RowsBuffered != int64(res.Len()) {
		t.Fatalf("distinct accounting = %+v", distinct)
	}
}

func TestHashJoinChargesBuildSide(t *testing.T) {
	st := mustStore(t, resourceFixture(t))
	// Disjoint variable sets force the generic hash join (no extend fast
	// path): the right side is drained and charged.
	q := sparql.MustParse(`SELECT * WHERE { ?x <p> ?y . ?z <q> ?w . }`)
	ex, err := Compile(st, q, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain(context.Background(), ex); err != nil {
		t.Fatal(err)
	}
	for _, op := range ex.Operators() {
		if op.Op == "hashjoin" {
			if op.MemBytes <= 0 || op.RowsBuffered <= 0 {
				t.Fatalf("hashjoin accounting = %+v", op)
			}
			return
		}
	}
	t.Skip("plan did not use a hash join")
}

func TestQueryMemoryBudgetExceeded(t *testing.T) {
	st := mustStore(t, resourceFixture(t))
	q := sparql.MustParse(`SELECT * WHERE { ?x <p> ?y . }`)
	ex, err := Compile(st, q, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex.SetMaxMemory(1) // any buffered row exceeds
	_, err = Drain(context.Background(), ex)
	if !errors.Is(err, ErrQueryMemoryExceeded) {
		t.Fatalf("err = %v, want ErrQueryMemoryExceeded", err)
	}
	if r := ex.Resources(); r.LimitBytes != 1 {
		t.Fatalf("limitBytes = %d, want 1", r.LimitBytes)
	}

	// A generous budget lets the same query through.
	ex2, err := Compile(st, q, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex2.SetMaxMemory(1 << 20)
	if _, err := Drain(context.Background(), ex2); err != nil {
		t.Fatalf("budgeted run failed: %v", err)
	}
}

func TestBudgetZeroRowQueryPasses(t *testing.T) {
	st := mustStore(t, resourceFixture(t))
	q := sparql.MustParse(`SELECT * WHERE { ?x <nosuch> ?y . }`)
	ex, err := Compile(st, q, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex.SetMaxMemory(1)
	res, err := Drain(context.Background(), ex)
	if err != nil || res.Len() != 0 {
		t.Fatalf("zero-row budgeted query: rows %v err %v", res, err)
	}
}
