package engine

import (
	"fmt"
	"math"

	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// resolved is a triple pattern with constants resolved against the store
// dictionary. A constant absent from the dictionary makes the pattern
// unsatisfiable (ok == false).
type resolved struct {
	sVar, oVar string         // variable names; "" for constants
	sID, oID   storage.NodeID // constant ids (valid when the name is "")
	pred       storage.PredID
	ok         bool
	src        sparql.TriplePattern
}

func resolve(st *storage.Store, tp sparql.TriplePattern) (resolved, error) {
	if tp.P.IsVar() {
		return resolved{}, fmt.Errorf("engine: variable predicate %s unsupported (pattern graphs are edge-labeled)", tp.P)
	}
	r := resolved{ok: true, src: tp}
	pid, ok := st.PredIDOf(tp.P.Const.Value)
	if !ok {
		r.ok = false
	}
	r.pred = pid
	if tp.S.IsVar() {
		r.sVar = tp.S.Var
	} else {
		id, ok := st.TermID(*tp.S.Const)
		if !ok {
			r.ok = false
		}
		r.sID = id
	}
	if tp.O.IsVar() {
		r.oVar = tp.O.Var
	} else {
		id, ok := st.TermID(*tp.O.Const)
		if !ok {
			r.ok = false
		}
		r.oID = id
	}
	return r, nil
}

// estimate returns the expected cardinality of the pattern given which of
// its variables are already bound — the statistics-driven cost model used
// for join ordering (cf. the paper's §5.3 remark on join order
// optimization).
func (r resolved) estimate(st *storage.Store, bound map[string]bool) float64 {
	if !r.ok {
		return 0
	}
	n := float64(st.PredCount(r.pred))
	if n == 0 {
		return 0
	}
	sBound := r.sVar == "" || bound[r.sVar]
	oBound := r.oVar == "" || bound[r.oVar]
	switch {
	case sBound && oBound:
		return 1
	case sBound:
		return n / math.Max(1, float64(st.DistinctSubjects(r.pred)))
	case oBound:
		return n / math.Max(1, float64(st.DistinctObjects(r.pred)))
	default:
		return n
	}
}

// vars returns the pattern's variables.
func (r resolved) vars() []string {
	var out []string
	if r.sVar != "" {
		out = append(out, r.sVar)
	}
	if r.oVar != "" && r.oVar != r.sVar {
		out = append(out, r.oVar)
	}
	return out
}

// scan materializes the pattern as a table over its variables.
func (r resolved) scan(st *storage.Store) *Result {
	out := NewResult(r.vars()...)
	if !r.ok {
		return out
	}
	switch {
	case r.sVar == "" && r.oVar == "":
		if st.HasTriple(r.sID, r.pred, r.oID) {
			out.Rows = append(out.Rows, []storage.NodeID{})
		}
	case r.sVar == "":
		for _, o := range st.Objects(r.pred, r.sID) {
			out.Rows = append(out.Rows, []storage.NodeID{o})
		}
	case r.oVar == "":
		for _, s := range st.Subjects(r.pred, r.oID) {
			out.Rows = append(out.Rows, []storage.NodeID{s})
		}
	case r.sVar == r.oVar:
		st.ForEachPair(r.pred, func(s, o storage.NodeID) bool {
			if s == o {
				out.Rows = append(out.Rows, []storage.NodeID{s})
			}
			return true
		})
	default:
		st.ForEachPair(r.pred, func(s, o storage.NodeID) bool {
			out.Rows = append(out.Rows, []storage.NodeID{s, o})
			return true
		})
	}
	return out
}
