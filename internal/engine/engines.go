package engine

import (
	"context"
	"sort"

	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// Engine evaluates SPARQL queries against a store.
type Engine interface {
	// Name identifies the engine in reports (Tables 4/5).
	Name() string
	// Evaluate computes the solution mapping set of q over st. It honours
	// ctx: cancellation or deadline expiry aborts the evaluation between
	// join steps and row batches, returning ctx.Err().
	Evaluate(ctx context.Context, st *storage.Store, q *sparql.Query) (*Result, error)
}

// ---------------------------------------------------------------------------
// HashJoin: materialize every pattern, hash-join in cardinality order.

type hashJoinEngine struct{}

// NewHashJoin returns the materializing hash-join engine (the in-memory
// RDFox stand-in of Table 4).
func NewHashJoin() Engine { return hashJoinEngine{} }

func (hashJoinEngine) Name() string { return "hashjoin" }

func (hashJoinEngine) Evaluate(ctx context.Context, st *storage.Store, q *sparql.Query) (*Result, error) {
	res, err := evalExpr(ctx, st, q.Expr, hashJoinBGP)
	if err != nil {
		return nil, err
	}
	return applyLimit(res, q), nil
}

func hashJoinBGP(ctx context.Context, st *storage.Store, b sparql.BGP) (*Result, error) {
	if len(b) == 0 {
		return unitResult(), nil
	}
	rs := make([]resolved, len(b))
	for i, tp := range b {
		r, err := resolve(st, tp)
		if err != nil {
			return nil, err
		}
		rs[i] = r
	}
	// Cheapest table first, then always join in the initial static
	// cardinality order — the engine relies on hashing rather than
	// clever ordering, like a materializing in-memory store.
	sort.SliceStable(rs, func(i, j int) bool {
		return rs[i].estimate(st, nil) < rs[j].estimate(st, nil)
	})
	acc := rs[0].scan(st)
	for _, r := range rs[1:] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if acc.Len() == 0 {
			// Join with anything stays empty; keep widening the schema.
			acc = NewResult(unionVars(acc, NewResult(r.vars()...))...)
			continue
		}
		var err error
		acc, err = join(ctx, acc, r.scan(st), false)
		if err != nil {
			return nil, err
		}
	}
	acc.Dedup()
	return acc, nil
}

// ---------------------------------------------------------------------------
// IndexNL: greedy cost-based ordering + index nested-loop extension.

type indexNLEngine struct{}

// NewIndexNL returns the index nested-loop engine with greedy join
// reordering (the Virtuoso stand-in of Table 5).
func NewIndexNL() Engine { return indexNLEngine{} }

func (indexNLEngine) Name() string { return "indexnl" }

func (indexNLEngine) Evaluate(ctx context.Context, st *storage.Store, q *sparql.Query) (*Result, error) {
	res, err := evalExpr(ctx, st, q.Expr, indexNLBGP)
	if err != nil {
		return nil, err
	}
	return applyLimit(res, q), nil
}

func indexNLBGP(ctx context.Context, st *storage.Store, b sparql.BGP) (*Result, error) {
	if len(b) == 0 {
		return unitResult(), nil
	}
	rs := make([]resolved, len(b))
	for i, tp := range b {
		r, err := resolve(st, tp)
		if err != nil {
			return nil, err
		}
		rs[i] = r
	}

	// Greedy ordering: repeatedly pick the cheapest pattern given the
	// variables bound so far, preferring connected patterns (those that
	// share a bound variable) over Cartesian ones.
	order := make([]resolved, 0, len(rs))
	used := make([]bool, len(rs))
	bound := make(map[string]bool)
	for len(order) < len(rs) {
		best, bestCost, bestConnected := -1, 0.0, false
		for i, r := range rs {
			if used[i] {
				continue
			}
			connected := len(bound) == 0 || sharesBound(r, bound)
			cost := r.estimate(st, bound)
			if best < 0 || (connected && !bestConnected) ||
				(connected == bestConnected && cost < bestCost) {
				best, bestCost, bestConnected = i, cost, connected
			}
		}
		used[best] = true
		order = append(order, rs[best])
		for _, v := range rs[best].vars() {
			bound[v] = true
		}
	}

	// Index nested loop over the chosen order.
	varOrder := make([]string, 0, len(bound))
	varCol := make(map[string]int)
	for _, r := range order {
		for _, v := range r.vars() {
			if _, ok := varCol[v]; !ok {
				varCol[v] = len(varOrder)
				varOrder = append(varOrder, v)
			}
		}
	}
	out := NewResult(varOrder...)
	current := [][]storage.NodeID{make([]storage.NodeID, len(varOrder))}
	for i := range current[0] {
		current[0][i] = Unbound
	}
	for _, r := range order {
		if !r.ok {
			return out, nil
		}
		var next [][]storage.NodeID
		for i, row := range current {
			if i%rowCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			extendRow(st, r, row, varCol, func(nr []storage.NodeID) {
				next = append(next, nr)
			})
		}
		current = next
		if len(current) == 0 {
			break
		}
	}
	out.Rows = current
	out.Dedup()
	return out, nil
}

func sharesBound(r resolved, bound map[string]bool) bool {
	for _, v := range r.vars() {
		if bound[v] {
			return true
		}
	}
	return false
}

// extendRow enumerates the extensions of a partial row by pattern r using
// the cheapest applicable index access path.
func extendRow(st *storage.Store, r resolved, row []storage.NodeID, varCol map[string]int, emit func([]storage.NodeID)) {
	sVal, sKnown := constOrBinding(r.sVar, r.sID, row, varCol)
	oVal, oKnown := constOrBinding(r.oVar, r.oID, row, varCol)

	push := func(s, o storage.NodeID) {
		nr := append([]storage.NodeID(nil), row...)
		if r.sVar != "" {
			nr[varCol[r.sVar]] = s
		}
		if r.oVar != "" {
			nr[varCol[r.oVar]] = o
		}
		emit(nr)
	}

	switch {
	case sKnown && oKnown:
		if st.HasTriple(sVal, r.pred, oVal) {
			push(sVal, oVal)
		}
	case sKnown:
		for _, o := range st.Objects(r.pred, sVal) {
			if r.sVar == r.oVar && o != sVal {
				continue
			}
			push(sVal, o)
		}
	case oKnown:
		for _, s := range st.Subjects(r.pred, oVal) {
			if r.sVar == r.oVar && s != oVal {
				continue
			}
			push(s, oVal)
		}
	default:
		st.ForEachPair(r.pred, func(s, o storage.NodeID) bool {
			if r.sVar == r.oVar && s != o {
				return true
			}
			push(s, o)
			return true
		})
	}
}

func constOrBinding(v string, constID storage.NodeID, row []storage.NodeID, varCol map[string]int) (storage.NodeID, bool) {
	if v == "" {
		return constID, true
	}
	if val := row[varCol[v]]; val != Unbound {
		return val, true
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Reference: executable denotational semantics, for tiny inputs only.

type referenceEngine struct{}

// NewReference returns the specification engine: a direct transcription of
// the Pérez et al. set semantics by brute-force enumeration. Exponential;
// use only on small stores (tests, examples).
func NewReference() Engine { return referenceEngine{} }

func (referenceEngine) Name() string { return "reference" }

func (referenceEngine) Evaluate(ctx context.Context, st *storage.Store, q *sparql.Query) (*Result, error) {
	res, err := evalExpr(ctx, st, q.Expr, referenceBGP)
	if err != nil {
		return nil, err
	}
	return applyLimit(res, q), nil
}

func referenceBGP(ctx context.Context, st *storage.Store, b sparql.BGP) (*Result, error) {
	if len(b) == 0 {
		return unitResult(), nil
	}
	rs := make([]resolved, len(b))
	for i, tp := range b {
		r, err := resolve(st, tp)
		if err != nil {
			return nil, err
		}
		rs[i] = r
	}
	var vars []string
	seen := make(map[string]bool)
	for _, r := range rs {
		for _, v := range r.vars() {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	out := NewResult(vars...)
	col := make(map[string]int, len(vars))
	for i, v := range vars {
		col[v] = i
	}

	// Enumerate every total assignment vars → O_DB and keep those whose
	// image satisfies all triple patterns — dom(µ) = vars(BGP).
	assign := make([]storage.NodeID, len(vars))
	checked := 0
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			if checked++; checked%rowCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			for _, r := range rs {
				if !r.ok {
					return nil
				}
				s, _ := constOrBinding(r.sVar, r.sID, assign, col)
				o, _ := constOrBinding(r.oVar, r.oID, assign, col)
				if !st.HasTriple(s, r.pred, o) {
					return nil
				}
			}
			out.Rows = append(out.Rows, append([]storage.NodeID(nil), assign...))
			return nil
		}
		for n := 0; n < st.NumNodes(); n++ {
			assign[i] = storage.NodeID(n)
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}
