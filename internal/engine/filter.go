package engine

import (
	"strconv"
	"strings"

	"dualsim/internal/rdf"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// Filter conditions follow the SPARQL three-valued logic: a condition
// evaluates to true, false or error, and only true keeps the row. An
// operand that is an unbound variable (or a variable outside the row's
// schema) raises an error; errors propagate through && / || / ! except
// where short-circuiting already decides the value (false && E = false,
// true || E = true). bound() never errors.

// evalCond evaluates c over one row. cols maps variable names to row
// columns. It returns the truth value and whether evaluation errored.
func evalCond(st *storage.Store, c sparql.Condition, cols map[string]int, row []storage.NodeID) (val, errv bool) {
	switch x := c.(type) {
	case sparql.Bound:
		i, ok := cols[x.Var]
		return ok && row[i] != Unbound, false
	case sparql.CondNot:
		v, e := evalCond(st, x.C, cols, row)
		if e {
			return false, true
		}
		return !v, false
	case sparql.CondAnd:
		lv, le := evalCond(st, x.L, cols, row)
		rv, re := evalCond(st, x.R, cols, row)
		if (!lv && !le) || (!rv && !re) {
			return false, false
		}
		if le || re {
			return false, true
		}
		return true, false
	case sparql.CondOr:
		lv, le := evalCond(st, x.L, cols, row)
		rv, re := evalCond(st, x.R, cols, row)
		if (lv && !le) || (rv && !re) {
			return true, false
		}
		if le || re {
			return false, true
		}
		return false, false
	case sparql.Comparison:
		lt, le := operandTerm(st, x.L, cols, row)
		rt, re := operandTerm(st, x.R, cols, row)
		if le || re {
			return false, true
		}
		return compareTerms(x.Op, lt, rt), false
	}
	return false, true
}

// operandTerm resolves a comparison operand to its RDF term; a variable
// that is unbound (or absent from the schema) errors.
func operandTerm(st *storage.Store, t sparql.Term, cols map[string]int, row []storage.NodeID) (rdf.Term, bool) {
	if t.IsVar() {
		i, ok := cols[t.Var]
		if !ok || row[i] == Unbound {
			return rdf.Term{}, true
		}
		return st.Term(row[i]), false
	}
	if t.Const == nil {
		return rdf.Term{}, true
	}
	return *t.Const, false
}

// compareTerms applies a comparison operator to two terms. Equality is
// term equality (kind and value); the orderings compare numerically when
// both values parse as numbers and lexically on the value otherwise.
func compareTerms(op string, a, b rdf.Term) bool {
	switch op {
	case sparql.OpEq:
		return a == b
	case sparql.OpNe:
		return a != b
	}
	var cmp int
	af, aerr := strconv.ParseFloat(a.Value, 64)
	bf, berr := strconv.ParseFloat(b.Value, 64)
	if aerr == nil && berr == nil {
		switch {
		case af < bf:
			cmp = -1
		case af > bf:
			cmp = 1
		}
	} else {
		cmp = strings.Compare(a.Value, b.Value)
	}
	switch op {
	case sparql.OpLt:
		return cmp < 0
	case sparql.OpLe:
		return cmp <= 0
	case sparql.OpGt:
		return cmp > 0
	case sparql.OpGe:
		return cmp >= 0
	}
	return false
}

// applyFilter keeps the rows whose condition evaluates to true.
func applyFilter(st *storage.Store, cond sparql.Condition, res *Result) *Result {
	cols := make(map[string]int, len(res.Vars))
	for i, v := range res.Vars {
		cols[v] = i
	}
	out := NewResult(res.Vars...)
	for _, row := range res.Rows {
		if v, e := evalCond(st, cond, cols, row); v && !e {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// applyLimit applies the query's LIMIT/OFFSET solution modifier to a
// materialized result. Set semantics have no inherent order, so rows are
// deduplicated and canonically sorted first — every engine then truncates
// to the same row set, keeping the engines comparable and the output
// deterministic.
func applyLimit(res *Result, q *sparql.Query) *Result {
	if q.Limit == 0 && q.Offset == 0 {
		return res
	}
	res.Dedup()
	res.Sort()
	lo := q.Offset
	if lo > len(res.Rows) {
		lo = len(res.Rows)
	}
	hi := len(res.Rows)
	if q.Limit > 0 && lo+q.Limit < hi {
		hi = lo + q.Limit
	}
	res.Rows = res.Rows[lo:hi]
	return res
}
