package engine

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dualsim/internal/rdf"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

func mustStore(t *testing.T, ts []rdf.Triple) *storage.Store {
	t.Helper()
	st, err := storage.FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// fig1a is the running-example database (see internal/core for the
// reconstruction notes).
func fig1a(t *testing.T) *storage.Store {
	return mustStore(t, []rdf.Triple{
		rdf.T("B._De_Palma", "directed", "Mission:_Impossible"),
		rdf.T("B._De_Palma", "awarded", "Oscar"),
		rdf.T("B._De_Palma", "born_in", "Newark"),
		rdf.T("B._De_Palma", "worked_with", "D._Koepp"),
		rdf.T("Mission:_Impossible", "genre", "Action"),
		rdf.T("Goldfinger", "genre", "Action"),
		rdf.T("G._Hamilton", "directed", "Goldfinger"),
		rdf.T("G._Hamilton", "born_in", "Paris"),
		rdf.T("G._Hamilton", "worked_with", "H._Saltzman"),
		rdf.T("H._Saltzman", "born_in", "Saint_John"),
		rdf.T("T._Young", "directed", "From_Russia_with_Love"),
		rdf.T("P.R._Hunt", "worked_with", "D._Koepp"),
		rdf.T("D._Koepp", "directed", "Mortdecai"),
		rdf.TL("Saint_John", "population", "70063"),
	})
}

func engines() []Engine {
	return []Engine{NewHashJoin(), NewIndexNL(), NewVolcano(), NewReference()}
}

func fastEngines() []Engine {
	return []Engine{NewHashJoin(), NewIndexNL(), NewVolcano()}
}

const queryX1 = `
SELECT * WHERE {
  ?director directed ?movie .
  ?director worked_with ?coworker . }`

const queryX2 = `
SELECT * WHERE {
  ?director directed ?movie .
  OPTIONAL { ?director worked_with ?coworker . } }`

// TestX1Results: (X1) has exactly the two matches named in the paper.
func TestX1Results(t *testing.T) {
	st := fig1a(t)
	q := sparql.MustParse(queryX1)
	for _, e := range engines() {
		res, err := e.Evaluate(context.Background(), st, q)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.Len() != 2 {
			t.Fatalf("%s: %d results, want 2\n%s", e.Name(), res.Len(), res.Format(st))
		}
		directors := bindings(t, st, res, "director")
		if !directors["B._De_Palma"] || !directors["G._Hamilton"] {
			t.Fatalf("%s: directors = %v", e.Name(), directors)
		}
	}
}

// TestX2Results: (X2) adds D. Koepp and T. Young via the optional pattern,
// exactly as the paper describes.
func TestX2Results(t *testing.T) {
	st := fig1a(t)
	q := sparql.MustParse(queryX2)
	for _, e := range engines() {
		res, err := e.Evaluate(context.Background(), st, q)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.Len() != 4 {
			t.Fatalf("%s: %d results, want 4\n%s", e.Name(), res.Len(), res.Format(st))
		}
		directors := bindings(t, st, res, "director")
		for _, d := range []string{"B._De_Palma", "G._Hamilton", "D._Koepp", "T._Young"} {
			if !directors[d] {
				t.Fatalf("%s: missing director %s", e.Name(), d)
			}
		}
		// The two optional-only rows leave ?coworker unbound.
		unbound := 0
		ci := res.VarIndex("coworker")
		for _, row := range res.Rows {
			if row[ci] == Unbound {
				unbound++
			}
		}
		if unbound != 2 {
			t.Fatalf("%s: %d unbound coworkers, want 2", e.Name(), unbound)
		}
	}
}

func bindings(t *testing.T, st *storage.Store, res *Result, v string) map[string]bool {
	t.Helper()
	i := res.VarIndex(v)
	if i < 0 {
		t.Fatalf("variable %s missing from result", v)
	}
	out := make(map[string]bool)
	for _, row := range res.Rows {
		if row[i] != Unbound {
			out[st.Term(row[i]).Value] = true
		}
	}
	return out
}

// TestX3NonWellDesigned evaluates the paper's (X3) on the Fig. 5(a)
// database; Figs. 5(b) and (c) show two of its matches, one of which uses
// the optional b-edge and one of which joins the a-edge with an unrelated
// c-edge (cross-product behaviour of non-well-designed patterns).
func TestX3NonWellDesigned(t *testing.T) {
	st := mustStore(t, []rdf.Triple{
		rdf.T("n1", "a", "n2"),
		rdf.T("n3", "a", "n2"), // second a-edge into n2 (Fig. 5(c) uses node 3)
		rdf.T("n4", "b", "n5"),
		rdf.T("n6", "d", "n5"),
		rdf.T("n4", "c", "n5"),
		rdf.T("n6", "d", "n2"),
	})
	// Fig. 5's database has edges 2-a->1? We keep the shape generic: what
	// matters is that v3's optional b-edge and mandatory c-edge interact.
	q := sparql.MustParse(`
SELECT * WHERE {
  { { ?v1 a ?v2 . } OPTIONAL { ?v3 b ?v2 . } }
  { ?v3 c ?v4 . } }`)
	if sparql.IsWellDesigned(q.Expr) {
		t.Fatal("X3 must be non-well-designed")
	}
	want, err := NewReference().Evaluate(context.Background(), st, q)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("fixture should produce matches")
	}
	for _, e := range fastEngines() {
		got, err := e.Evaluate(context.Background(), st, q)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s diverges from reference:\ngot:\n%s\nwant:\n%s",
				e.Name(), got.Format(st), want.Format(st))
		}
	}
}

func TestEmptyBGP(t *testing.T) {
	st := fig1a(t)
	q := &sparql.Query{Expr: sparql.BGP{}}
	for _, e := range engines() {
		res, err := e.Evaluate(context.Background(), st, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 || len(res.Vars) != 0 {
			t.Fatalf("%s: empty BGP = %v, want unit", e.Name(), res)
		}
	}
}

func TestConstantsOnlyPattern(t *testing.T) {
	st := fig1a(t)
	yes := sparql.MustParse(`SELECT * WHERE { <B._De_Palma> directed <Mission:_Impossible> }`)
	no := sparql.MustParse(`SELECT * WHERE { <B._De_Palma> directed Goldfinger }`)
	for _, e := range engines() {
		r1, err := e.Evaluate(context.Background(), st, yes)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Len() != 1 {
			t.Fatalf("%s: ask-true = %d rows", e.Name(), r1.Len())
		}
		r2, err := e.Evaluate(context.Background(), st, no)
		if err != nil {
			t.Fatal(err)
		}
		if r2.Len() != 0 {
			t.Fatalf("%s: ask-false = %d rows", e.Name(), r2.Len())
		}
	}
}

func TestUnknownConstantOrPredicate(t *testing.T) {
	st := fig1a(t)
	for _, src := range []string{
		`SELECT * WHERE { ?x directed Unknown_Movie }`,
		`SELECT * WHERE { ?x no_such_pred ?y }`,
	} {
		q := sparql.MustParse(src)
		for _, e := range engines() {
			res, err := e.Evaluate(context.Background(), st, q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Len() != 0 {
				t.Fatalf("%s on %q: %d rows, want 0", e.Name(), src, res.Len())
			}
		}
	}
}

func TestVariablePredicateRejected(t *testing.T) {
	st := fig1a(t)
	q := sparql.MustParse(`SELECT * WHERE { ?s ?p ?o }`)
	for _, e := range engines() {
		if _, err := e.Evaluate(context.Background(), st, q); err == nil {
			t.Fatalf("%s accepted a variable predicate", e.Name())
		}
	}
}

func TestSameVarTwice(t *testing.T) {
	st := mustStore(t, []rdf.Triple{
		rdf.T("a", "knows", "a"),
		rdf.T("a", "knows", "b"),
		rdf.T("c", "knows", "c"),
	})
	q := sparql.MustParse(`SELECT * WHERE { ?x knows ?x }`)
	for _, e := range engines() {
		res, err := e.Evaluate(context.Background(), st, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 2 {
			t.Fatalf("%s: self-loops = %d, want 2", e.Name(), res.Len())
		}
	}
}

func TestUnion(t *testing.T) {
	st := fig1a(t)
	q := sparql.MustParse(`SELECT * WHERE {
	  { ?x directed ?y } UNION { ?x worked_with ?y } }`)
	for _, e := range engines() {
		res, err := e.Evaluate(context.Background(), st, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 7 { // 4 directed + 3 worked_with
			t.Fatalf("%s: union = %d rows, want 7\n%s", e.Name(), res.Len(), res.Format(st))
		}
	}
}

func TestCartesianProduct(t *testing.T) {
	st := mustStore(t, []rdf.Triple{
		rdf.T("a", "p", "b"),
		rdf.T("c", "p", "d"),
		rdf.T("e", "q", "f"),
	})
	q := sparql.MustParse(`SELECT * WHERE { ?x p ?y . ?v q ?w }`)
	for _, e := range engines() {
		res, err := e.Evaluate(context.Background(), st, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 2 {
			t.Fatalf("%s: product = %d rows, want 2", e.Name(), res.Len())
		}
	}
}

// TestResultHelpers covers the Result utility surface.
func TestResultHelpers(t *testing.T) {
	r := NewResult("a", "b")
	r.Rows = append(r.Rows, []storage.NodeID{0, 1}, []storage.NodeID{0, 1}, []storage.NodeID{1, Unbound})
	r.Dedup()
	if r.Len() != 2 {
		t.Fatalf("Dedup left %d rows", r.Len())
	}
	p := r.Project([]string{"b", "a", "c"})
	if p.Rows[0][0] != 1 || p.Rows[0][1] != 0 || p.Rows[0][2] != Unbound {
		t.Fatalf("Project = %v", p.Rows[0])
	}
	if !r.Equal(r.Canonical()) {
		t.Fatal("Canonical changed semantics")
	}
	st := mustStore(t, []rdf.Triple{rdf.T("x", "p", "y")})
	if s := r.Format(st); !strings.Contains(s, "—") {
		t.Fatalf("Format lacks unbound marker: %q", s)
	}
}

// randomQuery draws a random expression over a small label space,
// including nested OPTIONAL, UNION and shared variables.
func randomQuery(r *rand.Rand, depth int, vars, preds int) sparql.Expr {
	if depth == 0 || r.Intn(3) == 0 {
		n := r.Intn(2) + 1
		bgp := make(sparql.BGP, n)
		for i := range bgp {
			bgp[i] = sparql.TriplePattern{
				S: randTerm(r, vars),
				P: sparql.C(fmt.Sprintf("p%d", r.Intn(preds))),
				O: randTerm(r, vars),
			}
		}
		return bgp
	}
	l := randomQuery(r, depth-1, vars, preds)
	rr := randomQuery(r, depth-1, vars, preds)
	switch r.Intn(3) {
	case 0:
		return sparql.And{L: l, R: rr}
	case 1:
		return sparql.Optional{L: l, R: rr}
	default:
		return sparql.Union{L: l, R: rr}
	}
}

func randTerm(r *rand.Rand, vars int) sparql.Term {
	if r.Intn(5) == 0 {
		return sparql.C(fmt.Sprintf("n%d", r.Intn(6)))
	}
	return sparql.V(fmt.Sprintf("v%d", r.Intn(vars)))
}

func randomTriples(r *rand.Rand, nodes, preds, edges int) []rdf.Triple {
	ts := make([]rdf.Triple, edges)
	for i := range ts {
		ts[i] = rdf.T(
			fmt.Sprintf("n%d", r.Intn(nodes)),
			fmt.Sprintf("p%d", r.Intn(preds)),
			fmt.Sprintf("n%d", r.Intn(nodes)))
	}
	return ts
}

// TestPropertyEnginesMatchReference is the central engine invariant: both
// production engines agree with the executable denotational semantics on
// random queries with AND, OPTIONAL, UNION, constants and shared
// variables.
func TestPropertyEnginesMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st, err := storage.FromTriples(randomTriples(r, 6, 2, 10))
		if err != nil {
			return false
		}
		q := &sparql.Query{Expr: randomQuery(r, 2, 3, 2)}
		want, err := NewReference().Evaluate(context.Background(), st, q)
		if err != nil {
			return false
		}
		for _, e := range fastEngines() {
			got, err := e.Evaluate(context.Background(), st, q)
			if err != nil {
				t.Logf("seed %d: %s error: %v", seed, e.Name(), err)
				return false
			}
			if !got.Equal(want) {
				t.Logf("seed %d query %s:\n%s got %d rows, reference %d rows",
					seed, q, e.Name(), got.Len(), want.Len())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
