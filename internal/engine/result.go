// Package engine implements SPARQL evaluation over the triple store with
// the formal set semantics of Pérez et al. (the semantics the paper's
// Sect. 4 builds on): a query evaluates to a set of partial mappings
// µ : vars(Q) → O_DB; AND is the compatibility join, OPTIONAL the left
// outer join, UNION the set union.
//
// Three engines are provided:
//
//   - HashJoin — evaluates every triple pattern to a table and combines
//     them with cardinality-ordered hash joins; materializing and
//     in-memory, it stands in for RDFox in the paper's Table 4.
//   - IndexNL — greedy cost-based join ordering with index nested-loop
//     extension over the store's PSO/POS indexes; it stands in for the
//     relational-technology store Virtuoso in Table 5.
//   - Reference — a direct executable transcription of the denotational
//     semantics, exponential and only suitable for tiny inputs; it is the
//     oracle the other engines are property-tested against.
//
// All engines reject variables in predicate position: the paper's pattern
// graphs are edge-labeled, so predicates are always constants.
package engine

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"dualsim/internal/storage"
)

// Unbound marks an unbound variable in a mapping row (µ is partial).
const Unbound = ^storage.NodeID(0)

// Result is a set of solution mappings. Rows are positional over Vars;
// Unbound encodes positions outside dom(µ).
type Result struct {
	Vars []string
	Rows [][]storage.NodeID
}

// NewResult returns an empty result over the given variables.
func NewResult(vars ...string) *Result {
	return &Result{Vars: vars}
}

// unitResult returns the result containing only the empty mapping µ∅ —
// the evaluation of the empty BGP.
func unitResult() *Result {
	return &Result{Vars: nil, Rows: [][]storage.NodeID{{}}}
}

// Len returns the number of mappings.
func (r *Result) Len() int { return len(r.Rows) }

// VarIndex returns the column of the named variable.
func (r *Result) VarIndex(v string) int {
	for i, x := range r.Vars {
		if x == v {
			return i
		}
	}
	return -1
}

// rowKey builds a canonical byte-string key of a row for set semantics.
func rowKey(row []storage.NodeID) string {
	buf := make([]byte, 4*len(row))
	for i, v := range row {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return string(buf)
}

// Dedup removes duplicate mappings in place (set semantics).
func (r *Result) Dedup() {
	seen := make(map[string]bool, len(r.Rows))
	out := r.Rows[:0]
	for _, row := range r.Rows {
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	r.Rows = out
}

// Sort orders rows canonically (for comparisons and goldens).
func (r *Result) Sort() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Project reorders/renames columns to the given variable order; missing
// variables become Unbound columns.
func (r *Result) Project(vars []string) *Result {
	idx := make([]int, len(vars))
	for i, v := range vars {
		idx[i] = r.VarIndex(v)
	}
	out := &Result{Vars: vars, Rows: make([][]storage.NodeID, len(r.Rows))}
	for i, row := range r.Rows {
		nr := make([]storage.NodeID, len(vars))
		for j, k := range idx {
			if k < 0 {
				nr[j] = Unbound
			} else {
				nr[j] = row[k]
			}
		}
		out.Rows[i] = nr
	}
	return out
}

// Canonical returns a sorted, deduplicated copy projected onto the sorted
// variable list — two results are semantically equal iff their Canonical
// forms are deep-equal.
func (r *Result) Canonical() *Result {
	vars := append([]string(nil), r.Vars...)
	sort.Strings(vars)
	out := r.Project(vars)
	out.Dedup()
	out.Sort()
	return out
}

// Equal reports semantic equality (same mapping set).
func (r *Result) Equal(other *Result) bool {
	a, b := r.Canonical(), other.Canonical()
	if len(a.Vars) != len(b.Vars) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i, v := range a.Vars {
		if b.Vars[i] != v {
			return false
		}
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	return true
}

// String renders the result as a table of decoded bindings (requires the
// originating store).
func (r *Result) Format(st *storage.Store) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Vars, "\t"))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('\t')
			}
			if v == Unbound {
				sb.WriteString("—")
			} else {
				sb.WriteString(st.Term(v).String())
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (r *Result) String() string {
	return fmt.Sprintf("result(%d vars, %d rows)", len(r.Vars), len(r.Rows))
}
