package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// randomCond draws a random filter condition over the same variable
// space randomQuery uses, mixing comparisons (variables, constants and
// literals on either side), bound() and the three connectives.
func randomCond(r *rand.Rand, depth, vars int) sparql.Condition {
	if depth == 0 || r.Intn(2) == 0 {
		if r.Intn(4) == 0 {
			return sparql.Bound{Var: fmt.Sprintf("v%d", r.Intn(vars))}
		}
		ops := []string{sparql.OpEq, sparql.OpNe, sparql.OpLt, sparql.OpLe, sparql.OpGt, sparql.OpGe}
		return sparql.Comparison{Op: ops[r.Intn(len(ops))], L: randTerm(r, vars), R: randTerm(r, vars)}
	}
	switch r.Intn(3) {
	case 0:
		return sparql.CondAnd{L: randomCond(r, depth-1, vars), R: randomCond(r, depth-1, vars)}
	case 1:
		return sparql.CondOr{L: randomCond(r, depth-1, vars), R: randomCond(r, depth-1, vars)}
	default:
		return sparql.CondNot{C: randomCond(r, depth-1, vars)}
	}
}

// randomFilteredExpr draws an expression with AND/OPTIONAL/UNION
// structure and sprinkles FILTER wrappers at the root and, half the
// time, around one operand of a random binary connective.
func randomFilteredExpr(r *rand.Rand, vars int) sparql.Expr {
	e := randomQuery(r, 2, vars, 2)
	if r.Intn(2) == 0 {
		l := sparql.Filter{Inner: randomQuery(r, 1, vars, 2), Cond: randomCond(r, 1, vars)}
		switch r.Intn(3) {
		case 0:
			e = sparql.And{L: l, R: e}
		case 1:
			e = sparql.Optional{L: e, R: l}
		default:
			e = sparql.Union{L: l, R: e}
		}
	}
	return sparql.Filter{Inner: e, Cond: randomCond(r, 2, vars)}
}

// TestDifferentialFilterAgainstReference extends the engine parity
// property to the FILTER surface: on random stores and random filtered
// queries (conditions over bound and unbound variables, constants and
// literals, all connectives), every production engine must produce
// exactly the reference's mapping set.
func TestDifferentialFilterAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		st, err := storage.FromTriples(randomTriples(r, 6, 2, 10))
		if err != nil {
			t.Fatal(err)
		}
		q := &sparql.Query{Expr: randomFilteredExpr(r, 3)}
		want, err := NewReference().Evaluate(context.Background(), st, q)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		for _, e := range fastEngines() {
			got, err := e.Evaluate(context.Background(), st, q)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, e.Name(), err)
			}
			if !got.Equal(want) {
				t.Fatalf("seed %d query %s:\n%s got %d rows, reference %d rows",
					seed, q, e.Name(), got.Len(), want.Len())
			}
		}
	}
}

// TestDifferentialLimitAgainstReference checks the LIMIT/OFFSET
// contract on random filtered queries. Set semantics fixes no row
// order, so engines are free to pick different windows; what must hold
// for every engine is that the truncated result is a set of distinct
// rows drawn from the full answer, of exactly the size the window
// dictates: min(limit, max(0, |full| − offset)).
func TestDifferentialLimitAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed + 10_000))
		st, err := storage.FromTriples(randomTriples(r, 6, 2, 10))
		if err != nil {
			t.Fatal(err)
		}
		expr := randomFilteredExpr(r, 3)
		full, err := NewReference().Evaluate(context.Background(), st, &sparql.Query{Expr: expr})
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		fullC := full.Canonical()
		inFull := make(map[string]bool, len(fullC.Rows))
		for _, row := range fullC.Rows {
			inFull[rowKey(row)] = true
		}
		limit, offset := r.Intn(4)+1, r.Intn(3)
		q := &sparql.Query{Expr: expr, Limit: limit, Offset: offset}
		wantLen := len(fullC.Rows) - offset
		if wantLen < 0 {
			wantLen = 0
		}
		if wantLen > limit {
			wantLen = limit
		}
		for _, e := range engines() {
			got, err := e.Evaluate(context.Background(), st, q)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, e.Name(), err)
			}
			gotC := got.Canonical()
			if len(gotC.Rows) != wantLen {
				t.Fatalf("seed %d query %s LIMIT %d OFFSET %d:\n%s returned %d distinct rows, want %d (full %d)",
					seed, expr, limit, offset, e.Name(), len(gotC.Rows), wantLen, len(fullC.Rows))
			}
			for _, row := range gotC.Rows {
				if !inFull[rowKey(row)] {
					t.Fatalf("seed %d: %s produced a row outside the full answer", seed, e.Name())
				}
			}
		}
	}
}
