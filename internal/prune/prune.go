// Package prune implements the paper's headline application (Sect. 5):
// per-query database pruning by dual simulation. The largest solution of
// the query's system of inequalities marks, per pattern edge (v, a, w),
// the a-triples whose endpoints lie in χS(v) × χS(w); every other triple
// is disqualified for the query and removed before handing the database to
// a query engine.
//
// Soundness (Theorem 2): every variable binding of every SPARQL match is
// contained in the largest solution, so no match's triples are pruned.
// For well-designed patterns, evaluating the query on the pruned store
// therefore produces the identical result set (property-tested). For
// non-well-designed nested optionals the optional *extensions* of result
// mappings may differ on the pruned store — pruning may remove
// cross-product filter structure that blocked an optional join — while
// the mandatory cores of all mappings are preserved (also
// property-tested; see TestNonWellDesignedPromotionNuance).
package prune

import (
	"context"

	"dualsim/internal/bitvec"
	"dualsim/internal/core"
	"dualsim/internal/engine"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// Pruning is the outcome of dual-simulation pruning for one query.
type Pruning struct {
	// Masks marks the kept triples per predicate by PSO position.
	Masks []*bitvec.Vector
	// Kept is the number of triples after pruning.
	Kept int
	// Total is the store size before pruning.
	Total int

	store *storage.Store
}

// Ratio returns the pruned fraction (1 = everything removed), the
// quantity behind the paper's ">95% of triples disqualified".
func (p *Pruning) Ratio() float64 {
	if p.Total == 0 {
		return 0
	}
	return 1 - float64(p.Kept)/float64(p.Total)
}

// Store materializes the pruned database (shared dictionaries, so node
// ids remain comparable with the original).
func (p *Pruning) Store() *storage.Store {
	return p.store.RestrictByMask(p.Masks)
}

// tripleCheckInterval is the number of triples the mask scan visits
// between two context-cancellation checks.
const tripleCheckInterval = 1 << 16

// Prune computes the kept-triple masks from a solved query relation.
func Prune(st *storage.Store, rel *core.QueryRelation) *Pruning {
	p, _ := PruneCtx(context.Background(), st, rel)
	return p
}

// PruneCtx is Prune honouring cancellation: the O(|D|) mask scan checks
// ctx every tripleCheckInterval triples and returns (nil, ctx.Err()).
func PruneCtx(ctx context.Context, st *storage.Store, rel *core.QueryRelation) (*Pruning, error) {
	out := &Pruning{
		Masks: make([]*bitvec.Vector, st.NumPreds()),
		Total: st.NumTriples(),
		store: st,
	}
	sinceCheck := 0
	for _, bs := range rel.Branches {
		if bs.MandatoryEmpty {
			// Theorem 1: no match exists in this branch; it retains
			// nothing.
			continue
		}
		for _, e := range bs.Branch.Edges {
			pid, ok := st.PredIDOf(e.Pred)
			if !ok {
				continue
			}
			chiS := bs.Sol.Chi[e.From]
			chiO := bs.Sol.Chi[e.To]
			if chiS.IsEmpty() || chiO.IsEmpty() {
				continue
			}
			mask := out.Masks[pid]
			if mask == nil {
				mask = bitvec.New(st.PredCount(pid))
				out.Masks[pid] = mask
			}
			for i := 0; i < st.PredCount(pid); i++ {
				if sinceCheck++; sinceCheck >= tripleCheckInterval {
					sinceCheck = 0
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				s, o := st.PairAt(pid, i)
				if chiS.Get(int(s)) && chiO.Get(int(o)) {
					mask.Set(i)
				}
			}
		}
	}
	for _, m := range out.Masks {
		if m != nil {
			out.Kept += m.Count()
		}
	}
	return out, nil
}

// PruneQuery is the one-call convenience wrapper: translate, solve, prune.
func PruneQuery(st *storage.Store, q *sparql.Query, cfg core.Config) (*Pruning, *core.QueryRelation, error) {
	return PruneQueryCtx(context.Background(), st, q, cfg)
}

// PruneQueryCtx is PruneQuery honouring cancellation during the solve
// and the mask scan.
func PruneQueryCtx(ctx context.Context, st *storage.Store, q *sparql.Query, cfg core.Config) (*Pruning, *core.QueryRelation, error) {
	rel, err := core.QueryDualSimulationCtx(ctx, st, q, cfg)
	if err != nil {
		return nil, nil, err
	}
	p, err := PruneCtx(ctx, st, rel)
	if err != nil {
		return nil, nil, err
	}
	return p, rel, nil
}

// TripleRef addresses one database triple by ids.
type TripleRef struct {
	S storage.NodeID
	P storage.PredID
	O storage.NodeID
}

// Required computes the triples that participate in at least one actual
// match of q — the paper's "No. Req. Triples" column of Table 3. The
// query is split into union-free branches (matching the SOI construction);
// each branch is evaluated with eng, and for every result mapping each
// BGP of the branch contributes its instantiated triples if and only if
// the mapping restricted to the BGP is a match of it (all variables bound
// and all instantiated triples present).
func Required(ctx context.Context, st *storage.Store, q *sparql.Query, eng engine.Engine) ([]TripleRef, error) {
	masks := make([]*bitvec.Vector, st.NumPreds())
	for _, branch := range sparql.UnionFreeBranches(q.Expr) {
		res, err := eng.Evaluate(ctx, st, &sparql.Query{Expr: branch})
		if err != nil {
			return nil, err
		}
		col := make(map[string]int, len(res.Vars))
		for i, v := range res.Vars {
			col[v] = i
		}
		for _, row := range res.Rows {
			markRequired(st, branch, row, col, masks, true)
		}
	}
	var out []TripleRef
	for p, m := range masks {
		if m == nil {
			continue
		}
		m.ForEach(func(i int) bool {
			s, o := st.PairAt(storage.PredID(p), i)
			out = append(out, TripleRef{S: s, P: storage.PredID(p), O: o})
			return true
		})
	}
	return out, nil
}

// RequiredCount is Required reduced to its cardinality.
func RequiredCount(ctx context.Context, st *storage.Store, q *sparql.Query, eng engine.Engine) (int, error) {
	refs, err := Required(ctx, st, q, eng)
	return len(refs), err
}

// markRequired walks a union-free branch. A subexpression's triples count
// only when the mapping actually matched that subexpression: the
// mandatory spine of the branch is matched by construction (active=true),
// while an OPTIONAL right side contributes only if the whole side's
// mandatory part is bound and present under the row — a promoted row may
// coincidentally instantiate one BGP of the optional part without the
// side having matched.
func markRequired(st *storage.Store, e sparql.Expr, row []storage.NodeID, col map[string]int, masks []*bitvec.Vector, active bool) {
	if !active {
		return
	}
	switch x := e.(type) {
	case sparql.BGP:
		if !matchedBGP(st, x, row, col) {
			return
		}
		for _, tp := range x {
			pid, _ := st.PredIDOf(tp.P.Const.Value)
			s, _ := termValue(st, tp.S, row, col)
			o, _ := termValue(st, tp.O, row, col)
			i := st.FindPair(pid, s, o)
			if masks[pid] == nil {
				masks[pid] = bitvec.New(st.PredCount(pid))
			}
			masks[pid].Set(i)
		}
	case sparql.And:
		markRequired(st, x.L, row, col, masks, true)
		markRequired(st, x.R, row, col, masks, true)
	case sparql.Optional:
		markRequired(st, x.L, row, col, masks, true)
		markRequired(st, x.R, row, col, masks, matched(st, x.R, row, col))
	}
}

// matched reports whether the row's bindings satisfy the mandatory part
// of e (dom(µ) covers mand(e) and every mandatory triple is in the
// store) — the condition under which the optional side e participated in
// the mapping.
func matched(st *storage.Store, e sparql.Expr, row []storage.NodeID, col map[string]int) bool {
	switch x := e.(type) {
	case sparql.BGP:
		return matchedBGP(st, x, row, col)
	case sparql.And:
		return matched(st, x.L, row, col) && matched(st, x.R, row, col)
	case sparql.Optional:
		return matched(st, x.L, row, col)
	}
	return false
}

func matchedBGP(st *storage.Store, bgp sparql.BGP, row []storage.NodeID, col map[string]int) bool {
	for _, tp := range bgp {
		if tp.P.IsVar() {
			return false
		}
		pid, ok := st.PredIDOf(tp.P.Const.Value)
		if !ok {
			return false
		}
		s, sOK := termValue(st, tp.S, row, col)
		o, oOK := termValue(st, tp.O, row, col)
		if !sOK || !oOK {
			return false
		}
		if st.FindPair(pid, s, o) < 0 {
			return false
		}
	}
	return true
}

func termValue(st *storage.Store, t sparql.Term, row []storage.NodeID, col map[string]int) (storage.NodeID, bool) {
	if t.IsVar() {
		i, ok := col[t.Var]
		if !ok || row[i] == engine.Unbound {
			return 0, false
		}
		return row[i], true
	}
	id, ok := st.TermID(*t.Const)
	return id, ok
}
